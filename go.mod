module androne

go 1.22
