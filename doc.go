// Package androne is a from-scratch reproduction of "AnDrone: Virtual Drone
// Computing in the Cloud" (Van't Hof and Nieh, EuroSys 2019): a
// drone-as-a-service system that multiplexes multiple isolated virtual
// drones — containerized Android Things instances — on one physical drone
// during a single flight.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// inventory), the runnable demos under examples/, and the command-line
// tools under cmd/. The benchmarks in bench_test.go regenerate every table
// and figure of the paper's evaluation; run them with
//
//	go test -bench=. -benchmem .
//
// or print the tables directly with
//
//	go run ./cmd/androne-bench -exp all
package androne
