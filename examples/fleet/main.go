// Fleet: the complete AnDrone drone-as-a-service loop at fleet scale. Three
// customers order virtual drones through the service; the Dorling-model
// planner allocates them across a two-drone fleet; flights execute with the
// full onboard virtualization stack; files are delivered per user and each
// order is billed by its metered energy, like a utility (paper §2).
package main

import (
	"fmt"
	"log"

	"androne/internal/apps"
	"androne/internal/core"
	"androne/internal/geo"
	"androne/internal/service"
)

func main() {
	cfg := service.DefaultConfig()
	cfg.FleetSize = 2
	cfg.Seed = "fleet-example"
	svc, err := service.New(cfg)
	check(err)
	fmt.Printf("service up: fleet of %d at %.5f,%.5f\n",
		len(svc.Fleet()), cfg.Base.Lat, cfg.Base.Lon)

	customers := []struct {
		user string
		n, e float64
	}{
		{"alice", 80, 0},
		{"bob", -90, 60},
		{"carol", 40, -110},
	}
	var orderIDs []string
	for _, c := range customers {
		def := &core.Definition{
			Owner: c.user, MaxDuration: 120, EnergyAllotted: 20000,
			WaypointDevices: []string{"camera", "flight-control"},
			Apps:            []string{apps.PhotoPackage},
			Waypoints: []geo.Waypoint{{
				Position:  geo.Position{LatLon: geo.OffsetNE(cfg.Base.LatLon, c.n, c.e), Alt: 15},
				MaxRadius: 40,
			}},
		}
		ord, err := svc.OrderJSON(c.user, c.user+"-photos", def)
		check(err)
		orderIDs = append(orderIDs, ord.ID)
		fmt.Printf("order %s placed by %s\n", ord.ID, c.user)
	}

	plan, err := svc.ProcessOrders()
	check(err)
	fmt.Printf("planned %d flight(s), est. %.0f s / %.0f J total\n",
		len(plan.Routes), plan.TotalDurationS(), plan.TotalEnergyJ())
	for _, r := range plan.Routes {
		fmt.Printf("  drone %d: %d stop(s)\n", r.Drone, len(r.Stops))
	}

	reports, err := svc.FlyScheduled(plan)
	check(err)
	for i, rep := range reports {
		fmt.Printf("flight %d: %.0f s, %.0f J, home=%v\n",
			i+1, rep.DurationS, rep.FlightEnergyJ, rep.ReturnedHome)
	}

	allGood := true
	for i, id := range orderIDs {
		ord, err := svc.Orders().Get(id)
		check(err)
		bill, _ := svc.BillFor(id)
		files := svc.Storage().List(customers[i].user)
		fmt.Printf("%s: status=%s files=%d bill=%s\n",
			customers[i].user, ord.Status, len(files), bill)
		if string(ord.Status) != "completed" || len(files) == 0 {
			allGood = false
		}
	}
	if !allGood {
		log.Fatal("fleet example failed")
	}
	fmt.Println("fleet example OK")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
