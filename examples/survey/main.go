// Survey: the paper's Figure 2 scenario — a construction-site survey virtual
// drone with two waypoints, each with its own survey area, flown by the
// autonomous survey app. Demonstrates the virtual drone JSON definition,
// per-waypoint geofences, lawnmower sweeps under VFC control, and file
// delivery.
package main

import (
	"fmt"
	"log"

	"androne/internal/apps"
	"androne/internal/core"
	"androne/internal/geo"
	"androne/internal/planner"
)

// figure2 is the paper's example definition, verbatim in structure.
const figure2 = `{
  "name": "construction-survey",
  "owner": "buildco",
  "waypoints": [
    { "latitude": 43.6084298, "longitude": -85.8110359, "altitude": 15, "max-radius": 60 },
    { "latitude": 43.6076409, "longitude": -85.8154457, "altitude": 15, "max-radius": 50 }
  ],
  "max-duration": 600,
  "energy-allotted": 45000,
  "continuous-devices": [],
  "waypoint-devices": ["camera", "flight-control"],
  "apps": ["com.androne.survey"],
  "app-args": {
    "com.androne.survey": {
      "spacing-m": 25,
      "survey-areas": [
        [[43.6087619, -85.8104110], [43.6087968, -85.8109877],
         [43.6084570, -85.8110225], [43.6084240, -85.8104646]],
        [[43.6078000, -85.8150000], [43.6078300, -85.8156000],
         [43.6074800, -85.8156400], [43.6074500, -85.8150400]]
      ]
    }
  }
}`

func main() {
	def, err := core.ParseDefinition([]byte(figure2))
	check(err)
	home := geo.Position{LatLon: geo.LatLon{Lat: 43.6080, Lon: -85.8130}, Alt: 0}

	drone, err := core.NewDrone(home, "survey-example")
	check(err)
	apps.RegisterAll(drone.VDC)
	vd, err := drone.VDC.Create(def)
	check(err)
	fmt.Printf("virtual drone %q created: %d waypoints, energy allotted %.0f J\n",
		vd.Name, len(def.Waypoints), def.EnergyAllotted)

	plan, err := planner.DefaultConfig(home).Plan([]planner.Task{{
		ID: def.Name, Waypoints: def.Waypoints,
		EnergyJ: def.EnergyAllotted, DurationS: def.MaxDuration,
	}})
	check(err)
	fmt.Printf("plan: %d route(s), estimated %.0f s total\n", len(plan.Routes), plan.TotalDurationS())

	env := core.NewCloudEnv()
	for i, route := range plan.Routes {
		report, err := drone.ExecuteRoute(route, env)
		check(err)
		fmt.Printf("route %d: %.0f s, %.0f J, AED pass %v\n",
			i+1, report.DurationS, report.FlightEnergyJ, report.AED.Pass)
		if rep := report.PerDrone[def.Name]; rep != nil {
			fmt.Printf("  survey: %d waypoint(s) this flight, completed=%v\n",
				rep.WaypointsVisited, rep.Completed)
		}
	}

	files := env.Storage.List("buildco")
	fmt.Printf("buildco's survey logs (%d):\n", len(files))
	for _, f := range files {
		data, _ := env.Storage.Get("buildco", f)
		fmt.Printf("  %s (%d bytes)\n", f, len(data))
	}
	if len(files) < 2 {
		log.Fatalf("expected a survey log per waypoint, got %d", len(files))
	}

	entry, err := env.VDR.Load(def.Name)
	check(err)
	fmt.Printf("VDR: %q saved, completed=%v\n", entry.Name, entry.Completed)
	fmt.Println("survey example OK")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
