// Geofence: demonstrates AnDrone's geofenced flight control (paper §4.3).
// An interactive virtual drone is granted control at its waypoint; commands
// outside its geofence are refused by the virtual flight controller, and
// when a gale pushes the drone out of the fence, the breach protocol runs:
// the app is informed, commands are disabled, the drone is guided back
// inside and loitered, then control is returned.
package main

import (
	"fmt"
	"log"
	"time"

	"androne/internal/apps"
	"androne/internal/core"
	"androne/internal/geo"
	"androne/internal/mavlink"
	"androne/internal/planner"
	"androne/internal/sdk"
)

func main() {
	home := geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0}
	drone, err := core.NewDrone(home, "geofence-example")
	check(err)
	apps.RegisterAll(drone.VDC)

	def := &core.Definition{
		Name: "fenced", Owner: "pilot", MaxDuration: 60, EnergyAllotted: 30000,
		WaypointDevices: []string{"camera", "flight-control"},
		Apps:            []string{apps.RemoteControlPackage},
		Waypoints: []geo.Waypoint{{
			Position:  geo.Position{LatLon: geo.OffsetNE(home.LatLon, 80, 0), Alt: 15},
			MaxRadius: 40,
		}},
	}
	vd, err := drone.VDC.Create(def)
	check(err)

	// Observe breach notifications the way an app would.
	var breachEvents, activeEvents int
	vd.SDKFor(apps.RemoteControlPackage).RegisterWaypointListener(sdk.ListenerFuncs{
		Breached: func() { breachEvents++ },
		Active:   func(geo.Waypoint) { activeEvents++ },
	})

	rc := apps.RemoteControlFor("fenced")
	rc.Queue(
		apps.Command{GotoNorth: 10, GotoEast: 10}, // inside the fence: accepted
		apps.Command{GotoNorth: 500, GotoEast: 0}, // far outside: refused by VFC
		apps.Command{GotoNorth: -10, GotoEast: 0}, // inside again
	)

	plan, err := planner.DefaultConfig(home).Plan([]planner.Task{{
		ID: def.Name, Waypoints: def.Waypoints,
		EnergyJ: def.EnergyAllotted, DurationS: def.MaxDuration,
	}})
	check(err)

	// A "weather" goroutine triggers an 18 m/s squall — stronger than the
	// tilt limit can fight — once the virtual drone holds its waypoint. The
	// squall's duration is bounded in *sim time* (SetWindFor), so the drone
	// is pushed out of its fence, the breach protocol runs, and recovery
	// succeeds deterministically once the air calms.
	flightDone := make(chan struct{})
	windDone := make(chan struct{})
	go func() {
		defer close(windDone)
		if !waitUntil(func() bool { at, _ := vd.AtWaypoint(); return at }, flightDone) {
			return
		}
		fmt.Println("weather: 25 s squall hits while the virtual drone holds its waypoint")
		drone.Sim.SetWindFor(18, 0, 2, 25)
	}()

	env := core.NewCloudEnv()
	report, err := drone.ExecuteRoute(plan.Routes[0], env)
	close(flightDone)
	<-windDone
	check(err)

	executed, rejected := rc.Stats()
	rep := report.PerDrone["fenced"]
	fmt.Printf("commands: %d executed, %d rejected by the VFC\n", executed, rejected)
	fmt.Printf("breaches handled: %d; app saw %d breach event(s), %d waypointActive\n",
		rep.Breaches, breachEvents, activeEvents)
	fmt.Printf("flight: %.0f s, returned home %v, mode now %s\n",
		report.DurationS, report.ReturnedHome, mavlink.ModeName(drone.FC.Mode()))

	if rejected == 0 {
		log.Fatal("geofence example failed: out-of-fence command was not rejected")
	}
	if rep.Breaches == 0 || breachEvents == 0 {
		log.Fatal("geofence example failed: breach protocol did not run")
	}
	if !report.ReturnedHome {
		log.Fatal("geofence example failed: flight did not continue home after breach")
	}
	fmt.Println("geofence example OK")
}

// waitUntil polls cond at 1 ms until true, or returns false if stop closes.
// A single reused ticker paces the loop; time.After here would allocate a
// fresh timer every millisecond for the whole wait.
func waitUntil(cond func() bool, stop <-chan struct{}) bool {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if cond() {
			return true
		}
		select {
		case <-stop:
			return false
		case <-tick.C:
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
