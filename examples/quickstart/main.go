// Quickstart: the basic AnDrone service loop from the paper's §2 in one
// file. A user orders a virtual drone through the portal with the photo app,
// AnDrone creates the virtual drone on a physical drone, flies the mission,
// and the user retrieves their photos from cloud storage afterwards.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"androne/internal/apps"
	"androne/internal/cloud"
	"androne/internal/core"
	"androne/internal/energy"
	"androne/internal/geo"
	"androne/internal/planner"
)

func main() {
	home := geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0}

	// --- Cloud side: the user orders a virtual drone. ---------------------
	orders := cloud.NewOrders()
	def := &core.Definition{
		Name:            "photo-drone",
		Owner:           "alice",
		MaxDuration:     120,
		EnergyAllotted:  20000,
		WaypointDevices: []string{"camera", "flight-control"},
		Apps:            []string{apps.PhotoPackage},
		AppArgs: map[string]json.RawMessage{
			apps.PhotoPackage: json.RawMessage(`{"shots": 3}`),
		},
		Waypoints: []geo.Waypoint{{
			Position:  geo.Position{LatLon: geo.OffsetNE(home.LatLon, 80, 40), Alt: 15},
			MaxRadius: 40,
		}},
	}
	defJSON, err := def.Encode()
	check(err)
	order, err := orders.Create("alice", def.Name, defJSON)
	check(err)
	bill := energy.DefaultRates().Compute(energy.Usage{EnergyJ: def.EnergyAllotted})
	fmt.Printf("order %s placed; estimated energy charge %.3f\n", order.ID, bill.EnergyCharge)

	// --- Drone side: the VDC creates the virtual drone and flies. ---------
	drone, err := core.NewDrone(home, "quickstart")
	check(err)
	apps.RegisterAll(drone.VDC)
	_, err = drone.VDC.Create(def)
	check(err)

	plan, err := planner.DefaultConfig(home).Plan([]planner.Task{{
		ID: def.Name, Waypoints: def.Waypoints,
		EnergyJ: def.EnergyAllotted, DurationS: def.MaxDuration,
	}})
	check(err)

	env := core.NewCloudEnv()
	report, err := drone.ExecuteRoute(plan.Routes[0], env)
	check(err)
	rep := report.PerDrone[def.Name]
	fmt.Printf("flight complete: %.0f s, %.0f J, returned home %v\n",
		report.DurationS, report.FlightEnergyJ, report.ReturnedHome)
	fmt.Printf("virtual drone: completed=%v, dwell %.1f s, %d file(s)\n",
		rep.Completed, rep.TimeUsedS, len(rep.Files))

	// --- Cloud side again: the user retrieves files. ----------------------
	files := env.Storage.List("alice")
	fmt.Printf("alice's cloud files (%d):\n", len(files))
	for _, f := range files {
		data, err := env.Storage.Get("alice", f)
		check(err)
		fmt.Printf("  %s (%d bytes)\n", f, len(data))
	}
	if len(files) == 0 {
		log.Fatal("quickstart failed: no files delivered")
	}
	fmt.Println("quickstart OK")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
