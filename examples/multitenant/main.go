// Multitenant: the paper's §6.6 experiment — three third-party virtual
// drones consolidated on one physical flight: an autonomous survey app, an
// interactive remote-control app driven by queued operator commands, and a
// traffic-watch app with continuous camera access between waypoints
// (suspended for privacy while other parties operate). Each party's files
// land in their own cloud storage.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"androne/internal/apps"
	"androne/internal/core"
	"androne/internal/geo"
	"androne/internal/planner"
)

func main() {
	home := geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0}
	drone, err := core.NewDrone(home, "multitenant")
	check(err)
	apps.RegisterAll(drone.VDC)

	// Party 1: autonomous survey for a real-estate company.
	survey := &core.Definition{
		Name: "survey", Owner: "realestate", MaxDuration: 240, EnergyAllotted: 30000,
		WaypointDevices: []string{"camera", "flight-control"},
		Apps:            []string{apps.SurveyPackage},
		AppArgs: map[string]json.RawMessage{
			apps.SurveyPackage: json.RawMessage(`{"spacing-m": 30}`),
		},
		Waypoints: []geo.Waypoint{{
			Position:  geo.Position{LatLon: geo.OffsetNE(home.LatLon, 100, 0), Alt: 15},
			MaxRadius: 50,
		}},
	}

	// Party 2: interactive control for a drone hobbyist.
	interactive := &core.Definition{
		Name: "interactive", Owner: "hobbyist", MaxDuration: 180, EnergyAllotted: 25000,
		WaypointDevices: []string{"camera", "flight-control"},
		Apps:            []string{apps.RemoteControlPackage},
		Waypoints: []geo.Waypoint{{
			Position:  geo.Position{LatLon: geo.OffsetNE(home.LatLon, -80, 80), Alt: 15},
			MaxRadius: 45,
		}},
	}

	// Party 3: a news company's traffic watcher with continuous camera
	// access between its two highway waypoints.
	traffic := &core.Definition{
		Name: "traffic", Owner: "newsco", MaxDuration: 200, EnergyAllotted: 25000,
		WaypointDevices:   []string{"flight-control"},
		ContinuousDevices: []string{"camera", "gps"},
		Apps:              []string{apps.TrafficWatchPackage},
		Waypoints: []geo.Waypoint{
			{Position: geo.Position{LatLon: geo.OffsetNE(home.LatLon, 20, -120), Alt: 15}, MaxRadius: 40},
			{Position: geo.Position{LatLon: geo.OffsetNE(home.LatLon, 140, -60), Alt: 15}, MaxRadius: 40},
		},
	}

	var tasks []planner.Task
	for _, def := range []*core.Definition{survey, interactive, traffic} {
		vd, err := drone.VDC.Create(def)
		check(err)
		fmt.Printf("created %q for %s\n", vd.Name, def.Owner)
		tasks = append(tasks, planner.Task{ID: def.Name, Waypoints: def.Waypoints,
			EnergyJ: def.EnergyAllotted, DurationS: def.MaxDuration})
	}

	// Feed the interactive party's "smartphone" command queue.
	ivd, err := drone.VDC.Get("interactive")
	check(err)
	rc := rcApp(ivd)
	rc.Queue(
		apps.Command{GotoNorth: 15, GotoEast: 0},
		apps.Command{GotoNorth: 15, GotoEast: 15},
		apps.Command{GotoNorth: 0, GotoEast: 0},
		apps.Command{Finish: true},
	)

	plan, err := planner.DefaultConfig(home).Plan(tasks)
	check(err)
	env := core.NewCloudEnv()
	for i, route := range plan.Routes {
		fmt.Printf("route %d: %d stops\n", i+1, len(route.Stops))
		report, err := drone.ExecuteRoute(route, env)
		check(err)
		fmt.Printf("  flight %.0f s, %.0f J, home=%v, AED pass=%v\n",
			report.DurationS, report.FlightEnergyJ, report.ReturnedHome, report.AED.Pass)
		for name, rep := range report.PerDrone {
			fmt.Printf("  %-12s waypoints=%d completed=%v files=%d\n",
				name, rep.WaypointsVisited, rep.Completed, len(rep.Files))
		}
	}

	executed, rejected := rc.Stats()
	fmt.Printf("interactive commands: %d executed, %d rejected\n", executed, rejected)

	for _, owner := range []string{"realestate", "hobbyist", "newsco"} {
		files := env.Storage.List(owner)
		fmt.Printf("%s: %d file(s) in cloud storage\n", owner, len(files))
	}
	if len(env.Storage.List("realestate")) == 0 || len(env.Storage.List("newsco")) == 0 {
		log.Fatal("multitenant failed: missing deliverables")
	}
	fmt.Println("multitenant example OK")
}

// rcApp digs the RemoteControl app instance out of the VDC for command
// injection (the smartphone front-end's role).
func rcApp(vd *core.VirtualDrone) *apps.RemoteControl {
	// The factory stored the lifecycle in the VDC; reach it through the
	// app's SDK-registered instance. Since core keeps lifecycles private,
	// the example registers its own accessor: the traffic of queued
	// commands goes through the package-level registry below.
	return apps.LastRemoteControl()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
