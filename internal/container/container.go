// Package container provides AnDrone's lightweight container runtime. It
// models what AnDrone uses Docker for on the drone: containers built from
// common read-only base disk images layered together with a writable layer
// on top, shared base layers across virtual drones to reduce storage,
// resource restrictions to prevent one virtual drone interfering with
// others, and built-in support for checkpointing a container (its diff from
// the base image) so virtual drones can be moved to the cloud, stored
// offline in the VDR, and reinstated on other drone hardware.
package container

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by the runtime.
var (
	ErrNotFound     = errors.New("container: not found")
	ErrExists       = errors.New("container: already exists")
	ErrOutOfMemory  = errors.New("container: insufficient memory")
	ErrBadState     = errors.New("container: invalid state for operation")
	ErrFileNotFound = errors.New("container: file not found")
)

// whiteout marks a path deleted in an upper layer, Docker-style.
const whiteout = ".wh."

// Layer is an immutable, content-addressed set of files.
type Layer struct {
	digest string
	files  map[string][]byte
}

// Digest returns the layer's content address.
func (l *Layer) Digest() string { return l.digest }

// Size returns the total bytes of file content in the layer.
func (l *Layer) Size() int {
	var n int
	for _, b := range l.files {
		n += len(b)
	}
	return n
}

// Files returns the sorted paths in the layer.
func (l *Layer) Files() []string {
	out := make([]string, 0, len(l.files))
	for p := range l.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// NewLayer builds a content-addressed layer from files. The file map is
// copied; the layer never aliases caller memory.
func NewLayer(files map[string][]byte) *Layer {
	cp := make(map[string][]byte, len(files))
	paths := make([]string, 0, len(files))
	for p, b := range files {
		cp[p] = append([]byte(nil), b...)
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := sha256.New()
	for _, p := range paths {
		fmt.Fprintf(h, "%s\x00%d\x00", p, len(cp[p]))
		h.Write(cp[p])
		h.Write([]byte{0})
	}
	return &Layer{digest: hex.EncodeToString(h.Sum(nil)), files: cp}
}

// Image is an ordered stack of layers (bottom first) plus metadata.
type Image struct {
	Name   string
	Layers []*Layer // bottom to top
}

// lookup reads a path through the image's layer stack, honoring whiteouts.
func (img *Image) lookup(path string) ([]byte, bool) {
	for i := len(img.Layers) - 1; i >= 0; i-- {
		l := img.Layers[i]
		if _, deleted := l.files[whiteout+path]; deleted {
			return nil, false
		}
		if b, ok := l.files[path]; ok {
			return b, true
		}
	}
	return nil, false
}

// Store is a content-addressed layer and image store shared by the runtime
// and the cloud VDR. Identical layers are stored once regardless of how many
// images or containers reference them.
type Store struct {
	mu     sync.Mutex
	layers map[string]*Layer
	images map[string]*Image
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{layers: make(map[string]*Layer), images: make(map[string]*Image)}
}

// AddLayer deduplicates and stores a layer, returning the canonical
// instance.
func (s *Store) AddLayer(l *Layer) *Layer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.layers[l.digest]; ok {
		return existing
	}
	s.layers[l.digest] = l
	return l
}

// AddImage registers an image, deduplicating its layers.
func (s *Store) AddImage(img *Image) *Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, l := range img.Layers {
		if existing, ok := s.layers[l.digest]; ok {
			img.Layers[i] = existing
		} else {
			s.layers[l.digest] = l
		}
	}
	s.images[img.Name] = img
	return img
}

// Image retrieves a registered image by name.
func (s *Store) Image(name string) (*Image, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, ok := s.images[name]
	if !ok {
		return nil, fmt.Errorf("%w: image %q", ErrNotFound, name)
	}
	return img, nil
}

// Layer retrieves a layer by digest.
func (s *Store) Layer(digest string) (*Layer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.layers[digest]
	if !ok {
		return nil, fmt.Errorf("%w: layer %s", ErrNotFound, digest)
	}
	return l, nil
}

// imageArchive is the serialized form of an image: named layer stack with
// full contents, self-verifying by digest.
type imageArchive struct {
	Name   string `json:"name"`
	Layers []struct {
		Digest string            `json:"digest"`
		Files  map[string][]byte `json:"files"`
	} `json:"layers"`
}

// ExportImage serializes an image (all layers) for shipping to another
// store — how base images reach new drone hardware or the cloud VDR.
func (s *Store) ExportImage(name string) ([]byte, error) {
	img, err := s.Image(name)
	if err != nil {
		return nil, err
	}
	var arc imageArchive
	arc.Name = img.Name
	for _, l := range img.Layers {
		entry := struct {
			Digest string            `json:"digest"`
			Files  map[string][]byte `json:"files"`
		}{Digest: l.digest, Files: l.files}
		arc.Layers = append(arc.Layers, entry)
	}
	return json.Marshal(arc)
}

// ImportImage reinstates an exported image, verifying each layer's content
// address and deduplicating against layers already present.
func (s *Store) ImportImage(data []byte) (*Image, error) {
	var arc imageArchive
	if err := json.Unmarshal(data, &arc); err != nil {
		return nil, fmt.Errorf("container: bad image archive: %w", err)
	}
	if arc.Name == "" {
		return nil, errors.New("container: image archive has no name")
	}
	img := &Image{Name: arc.Name}
	for i, le := range arc.Layers {
		l := NewLayer(le.Files)
		if l.digest != le.Digest {
			return nil, fmt.Errorf("container: layer %d digest mismatch (corrupt archive)", i)
		}
		img.Layers = append(img.Layers, l)
	}
	return s.AddImage(img), nil
}

// StorageBytes returns the total unique bytes stored — the figure that
// layered images keep small when many virtual drones share a base.
func (s *Store) StorageBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for _, l := range s.layers {
		n += l.Size()
	}
	return n
}

// State is a container lifecycle state.
type State int

// Container lifecycle states.
const (
	Created State = iota
	Running
	Stopped
)

func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Running:
		return "running"
	case Stopped:
		return "stopped"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Limits are the per-container resource restrictions AnDrone places on
// virtual drones to prevent abuse and excessive consumption.
type Limits struct {
	// MemoryMB is the container's resident memory footprint reserved at
	// start. Starting fails if the runtime cannot satisfy it.
	MemoryMB int
	// CPUShares is the container's relative CPU weight (Docker semantics;
	// 0 means the default of 1024).
	CPUShares int
}

func (l Limits) shares() int {
	if l.CPUShares <= 0 {
		return 1024
	}
	return l.CPUShares
}

// Container is a running or stoppable instance of an image with a private
// writable layer on top.
type Container struct {
	rt     *Runtime
	name   string
	image  *Image
	limits Limits

	mu    sync.Mutex
	state State
	upper map[string][]byte // writable layer, including whiteout markers
}

// Name returns the container's identifier (also its Binder namespace name).
func (c *Container) Name() string { return c.name }

// Image returns the image the container was created from.
func (c *Container) Image() *Image { return c.image }

// Limits returns the container's resource limits.
func (c *Container) Limits() Limits { return c.limits }

// State returns the current lifecycle state.
func (c *Container) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// ReadFile reads a path through the writable layer and image stack.
func (c *Container) ReadFile(path string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, deleted := c.upper[whiteout+path]; deleted {
		return nil, fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	if b, ok := c.upper[path]; ok {
		return append([]byte(nil), b...), nil
	}
	if b, ok := c.image.lookup(path); ok {
		return append([]byte(nil), b...), nil
	}
	return nil, fmt.Errorf("%w: %s", ErrFileNotFound, path)
}

// WriteFile writes a path into the writable layer (copy-on-write; the image
// is never modified).
func (c *Container) WriteFile(path string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.upper, whiteout+path)
	c.upper[path] = append([]byte(nil), data...)
}

// RemoveFile deletes a path from the container's view. Files from the image
// are masked with a whiteout marker.
func (c *Container) RemoveFile(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.visibleLocked(path) {
		return fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	delete(c.upper, path)
	if _, inImage := c.image.lookup(path); inImage {
		c.upper[whiteout+path] = nil
	}
	return nil
}

// ListFiles returns the sorted paths visible in the container.
func (c *Container) ListFiles() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	candidates := make(map[string]bool)
	for _, l := range c.image.Layers {
		for p := range l.files {
			if !strings.HasPrefix(p, whiteout) {
				candidates[p] = true
			}
		}
	}
	for p := range c.upper {
		if !strings.HasPrefix(p, whiteout) {
			candidates[p] = true
		}
	}
	var out []string
	for p := range candidates {
		if c.visibleLocked(p) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// visibleLocked reports whether path resolves to content through the
// writable layer and image stack. Caller holds c.mu.
func (c *Container) visibleLocked(path string) bool {
	if _, deleted := c.upper[whiteout+path]; deleted {
		return false
	}
	if _, ok := c.upper[path]; ok {
		return true
	}
	_, ok := c.image.lookup(path)
	return ok
}

// DiffLayer captures the writable layer as a content-addressed layer — the
// container's differences from its base image, which is all the VDR stores.
func (c *Container) DiffLayer() *Layer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return NewLayer(c.upper)
}

// Checkpoint is a serializable container state: its image reference plus
// diff layer. A checkpoint is fully self-contained given access to a store
// holding the base image, and can be reinstated on any drone (or non-drone)
// hardware.
type Checkpoint struct {
	Name      string            `json:"name"`
	ImageName string            `json:"image"`
	Limits    Limits            `json:"limits"`
	Upper     map[string][]byte `json:"upper"`
}

// Checkpoint serializes the container's state. The container may be in any
// state; AnDrone checkpoints stopped virtual drones at flight end.
func (c *Container) Checkpoint() ([]byte, error) {
	c.mu.Lock()
	upper := make(map[string][]byte, len(c.upper))
	for p, b := range c.upper { //vet:allow detguard checkpoint copy; JSON encoding sorts map keys
		upper[p] = append([]byte(nil), b...)
	}
	c.mu.Unlock()
	return json.Marshal(Checkpoint{
		Name:      c.name,
		ImageName: c.image.Name,
		Limits:    c.limits,
		Upper:     upper,
	})
}

// Runtime manages containers against a fixed memory budget, mirroring the
// prototype drone where 880 MB of the Pi's 1 GB is available and each
// virtual drone needs ~185 MB: starting a container that does not fit fails
// without interfering with the ones already running.
type Runtime struct {
	store *Store

	mu         sync.Mutex
	memTotalMB int
	memUsedMB  int
	containers map[string]*Container
}

// NewRuntime creates a runtime with the given memory budget in MB backed by
// the store.
func NewRuntime(store *Store, memTotalMB int) *Runtime {
	return &Runtime{
		store:      store,
		memTotalMB: memTotalMB,
		containers: make(map[string]*Container),
	}
}

// Store returns the runtime's backing image store.
func (rt *Runtime) Store() *Store { return rt.store }

// MemoryTotalMB returns the runtime's memory budget.
func (rt *Runtime) MemoryTotalMB() int { return rt.memTotalMB }

// MemoryUsedMB returns the memory reserved by running containers.
func (rt *Runtime) MemoryUsedMB() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.memUsedMB
}

// Create instantiates a container from a named image. The container starts
// in the Created state and consumes no memory until started.
func (rt *Runtime) Create(name, imageName string, limits Limits) (*Container, error) {
	img, err := rt.store.Image(imageName)
	if err != nil {
		return nil, err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.containers[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	c := &Container{
		rt:     rt,
		name:   name,
		image:  img,
		limits: limits,
		state:  Created,
		upper:  make(map[string][]byte),
	}
	rt.containers[name] = c
	return c, nil
}

// Restore reinstates a checkpointed container: same image, same diff layer.
func (rt *Runtime) Restore(data []byte) (*Container, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("container: bad checkpoint: %w", err)
	}
	c, err := rt.Create(cp.Name, cp.ImageName, cp.Limits)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	for p, b := range cp.Upper { //vet:allow detguard restore copy; per-key writes are order-independent
		c.upper[p] = append([]byte(nil), b...)
	}
	c.mu.Unlock()
	return c, nil
}

// Start reserves the container's memory and transitions it to Running.
func (rt *Runtime) Start(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c, ok := rt.containers[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == Running {
		return fmt.Errorf("%w: %q is already running", ErrBadState, name)
	}
	if rt.memUsedMB+c.limits.MemoryMB > rt.memTotalMB {
		return fmt.Errorf("%w: need %d MB, %d of %d MB in use",
			ErrOutOfMemory, c.limits.MemoryMB, rt.memUsedMB, rt.memTotalMB)
	}
	rt.memUsedMB += c.limits.MemoryMB
	c.state = Running
	return nil
}

// Stop releases the container's memory and transitions it to Stopped.
func (rt *Runtime) Stop(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c, ok := rt.containers[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != Running {
		return fmt.Errorf("%w: %q is not running", ErrBadState, name)
	}
	rt.memUsedMB -= c.limits.MemoryMB
	c.state = Stopped
	return nil
}

// Remove deletes a non-running container.
func (rt *Runtime) Remove(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c, ok := rt.containers[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if c.State() == Running {
		return fmt.Errorf("%w: %q is running", ErrBadState, name)
	}
	delete(rt.containers, name)
	return nil
}

// Get retrieves a container by name.
func (rt *Runtime) Get(name string) (*Container, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c, ok := rt.containers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return c, nil
}

// List returns the names of all containers, sorted.
func (rt *Runtime) List() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, len(rt.containers))
	for name := range rt.containers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Running returns the names of running containers, sorted.
func (rt *Runtime) Running() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []string
	for name, c := range rt.containers {
		if c.State() == Running {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// TotalCPUShares returns the sum of CPU shares across running containers,
// used by the scheduler model to apportion cores.
func (rt *Runtime) TotalCPUShares() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var total int
	for _, c := range rt.containers {
		if c.State() == Running {
			total += c.limits.shares()
		}
	}
	return total
}

// CPUFraction returns the fraction of CPU the named running container is
// entitled to under proportional-share scheduling.
func (rt *Runtime) CPUFraction(name string) (float64, error) {
	rt.mu.Lock()
	c, ok := rt.containers[name]
	rt.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	total := rt.TotalCPUShares()
	if total == 0 || c.State() != Running {
		return 0, nil
	}
	return float64(c.limits.shares()) / float64(total), nil
}
