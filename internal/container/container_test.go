package container

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func baseImage(store *Store) *Image {
	base := NewLayer(map[string][]byte{
		"/system/framework.jar": []byte("android-things-base"),
		"/system/init.rc":       []byte("boot services"),
		"/etc/hosts":            []byte("127.0.0.1 localhost"),
	})
	img := &Image{Name: "android-things:1.0.3", Layers: []*Layer{base}}
	return store.AddImage(img)
}

func TestLayerContentAddressing(t *testing.T) {
	a := NewLayer(map[string][]byte{"/a": []byte("x"), "/b": []byte("y")})
	b := NewLayer(map[string][]byte{"/b": []byte("y"), "/a": []byte("x")})
	if a.Digest() != b.Digest() {
		t.Fatal("identical content produced different digests")
	}
	c := NewLayer(map[string][]byte{"/a": []byte("x"), "/b": []byte("z")})
	if a.Digest() == c.Digest() {
		t.Fatal("different content produced the same digest")
	}
	// Path/content boundary confusion must not collide.
	d := NewLayer(map[string][]byte{"/ab": []byte("")})
	e := NewLayer(map[string][]byte{"/a": []byte("b")})
	if d.Digest() == e.Digest() {
		t.Fatal("boundary collision between path and content")
	}
}

func TestLayerDigestProperty(t *testing.T) {
	if err := quick.Check(func(p1, p2 string, b1, b2 []byte) bool {
		if p1 == p2 {
			// Duplicate keys collapse to whichever literal entry is last,
			// so the two maps would hold different values — not an
			// ordering property at all.
			return true
		}
		l1 := NewLayer(map[string][]byte{p1: b1, p2: b2})
		l2 := NewLayer(map[string][]byte{p2: b2, p1: b1})
		return l1.Digest() == l2.Digest()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayerDoesNotAliasCallerMemory(t *testing.T) {
	content := []byte("original")
	l := NewLayer(map[string][]byte{"/f": content})
	content[0] = 'X'
	l2 := NewLayer(map[string][]byte{"/f": []byte("original")})
	if l.Digest() != l2.Digest() {
		t.Fatal("layer aliased caller memory; mutation changed content")
	}
}

func TestStoreDeduplicatesLayers(t *testing.T) {
	store := NewStore()
	l1 := store.AddLayer(NewLayer(map[string][]byte{"/a": []byte("shared-base")}))
	l2 := store.AddLayer(NewLayer(map[string][]byte{"/a": []byte("shared-base")}))
	if l1 != l2 {
		t.Fatal("identical layers not deduplicated")
	}
	if store.StorageBytes() != l1.Size() {
		t.Fatalf("StorageBytes = %d, want %d", store.StorageBytes(), l1.Size())
	}
}

func TestSharedBaseImageStorage(t *testing.T) {
	// Many virtual drones sharing one base image cost one base plus diffs.
	store := NewStore()
	img := baseImage(store)
	baseBytes := store.StorageBytes()

	rt := NewRuntime(store, 880)
	var diffBytes int
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("vd%d", i)
		c, err := rt.Create(name, img.Name, Limits{MemoryMB: 10})
		if err != nil {
			t.Fatal(err)
		}
		c.WriteFile("/data/app.state", []byte(name))
		diff := store.AddLayer(c.DiffLayer())
		diffBytes += diff.Size()
	}
	total := store.StorageBytes()
	if total != baseBytes+diffBytes {
		t.Fatalf("storage = %d, want base %d + diffs %d", total, baseBytes, diffBytes)
	}
}

func TestContainerCopyOnWrite(t *testing.T) {
	store := NewStore()
	img := baseImage(store)
	rt := NewRuntime(store, 880)
	c1, _ := rt.Create("vd1", img.Name, Limits{MemoryMB: 185})
	c2, _ := rt.Create("vd2", img.Name, Limits{MemoryMB: 185})

	c1.WriteFile("/etc/hosts", []byte("modified"))
	got, err := c2.ReadFile("/etc/hosts")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("127.0.0.1 localhost")) {
		t.Fatalf("c2 sees c1's write: %q", got)
	}
	got, _ = c1.ReadFile("/etc/hosts")
	if !bytes.Equal(got, []byte("modified")) {
		t.Fatalf("c1 write not visible: %q", got)
	}
}

func TestContainerWhiteout(t *testing.T) {
	store := NewStore()
	img := baseImage(store)
	rt := NewRuntime(store, 880)
	c, _ := rt.Create("vd1", img.Name, Limits{MemoryMB: 185})

	if err := c.RemoveFile("/etc/hosts"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("/etc/hosts"); !errors.Is(err, ErrFileNotFound) {
		t.Fatalf("deleted file readable: %v", err)
	}
	for _, p := range c.ListFiles() {
		if p == "/etc/hosts" {
			t.Fatal("deleted file still listed")
		}
	}
	// Re-adding after deletion restores visibility.
	c.WriteFile("/etc/hosts", []byte("new"))
	got, err := c.ReadFile("/etc/hosts")
	if err != nil || !bytes.Equal(got, []byte("new")) {
		t.Fatalf("re-added file: %q, %v", got, err)
	}
	found := false
	for _, p := range c.ListFiles() {
		if p == "/etc/hosts" {
			found = true
		}
	}
	if !found {
		t.Fatal("re-added file not listed")
	}
}

func TestRemoveMissingFile(t *testing.T) {
	store := NewStore()
	img := baseImage(store)
	rt := NewRuntime(store, 880)
	c, _ := rt.Create("vd1", img.Name, Limits{MemoryMB: 185})
	if err := c.RemoveFile("/no/such"); !errors.Is(err, ErrFileNotFound) {
		t.Fatalf("err = %v, want ErrFileNotFound", err)
	}
}

func TestLifecycle(t *testing.T) {
	store := NewStore()
	img := baseImage(store)
	rt := NewRuntime(store, 880)
	c, err := rt.Create("vd1", img.Name, Limits{MemoryMB: 185})
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != Created {
		t.Fatalf("state = %v, want created", c.State())
	}
	if err := rt.Start("vd1"); err != nil {
		t.Fatal(err)
	}
	if c.State() != Running {
		t.Fatalf("state = %v, want running", c.State())
	}
	if err := rt.Start("vd1"); !errors.Is(err, ErrBadState) {
		t.Fatalf("double start: %v, want ErrBadState", err)
	}
	if err := rt.Remove("vd1"); !errors.Is(err, ErrBadState) {
		t.Fatalf("remove running: %v, want ErrBadState", err)
	}
	if err := rt.Stop("vd1"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Stop("vd1"); !errors.Is(err, ErrBadState) {
		t.Fatalf("double stop: %v, want ErrBadState", err)
	}
	if err := rt.Remove("vd1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Get("vd1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("removed container still present: %v", err)
	}
}

func TestMemoryBudgetFourthDroneFails(t *testing.T) {
	// The prototype: 880 MB available, ~100 MB host+VDC is outside the
	// runtime, 150 MB for device+flight containers, 185 MB per virtual
	// drone. Three virtual drones fit; a fourth fails to start without
	// interfering with the others.
	store := NewStore()
	img := baseImage(store)
	rt := NewRuntime(store, 880-100) // host/VDC accounted outside
	for _, c := range []struct {
		name string
		mb   int
	}{{"devcon", 75}, {"flightcon", 75}} {
		if _, err := rt.Create(c.name, img.Name, Limits{MemoryMB: c.mb}); err != nil {
			t.Fatal(err)
		}
		if err := rt.Start(c.name); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("vd%d", i)
		if _, err := rt.Create(name, img.Name, Limits{MemoryMB: 185}); err != nil {
			t.Fatal(err)
		}
		if err := rt.Start(name); err != nil {
			t.Fatalf("virtual drone %d failed to start: %v", i, err)
		}
	}
	if _, err := rt.Create("vd4", img.Name, Limits{MemoryMB: 185}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start("vd4"); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("fourth drone start: %v, want ErrOutOfMemory", err)
	}
	// The failure did not interfere with running drones.
	if got := len(rt.Running()); got != 5 {
		t.Fatalf("running containers = %d, want 5", got)
	}
	// Stopping one frees memory for the fourth.
	if err := rt.Stop("vd1"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start("vd4"); err != nil {
		t.Fatalf("fourth drone after freeing memory: %v", err)
	}
}

func TestMemoryAccounting(t *testing.T) {
	store := NewStore()
	img := baseImage(store)
	rt := NewRuntime(store, 500)
	rtMustCreate(t, rt, "a", img.Name, 100)
	rtMustCreate(t, rt, "b", img.Name, 200)
	if rt.MemoryUsedMB() != 0 {
		t.Fatalf("created containers reserve memory: %d", rt.MemoryUsedMB())
	}
	mustStart(t, rt, "a")
	mustStart(t, rt, "b")
	if rt.MemoryUsedMB() != 300 {
		t.Fatalf("used = %d, want 300", rt.MemoryUsedMB())
	}
	if err := rt.Stop("a"); err != nil {
		t.Fatal(err)
	}
	if rt.MemoryUsedMB() != 200 {
		t.Fatalf("after stop used = %d, want 200", rt.MemoryUsedMB())
	}
}

func TestCheckpointRestore(t *testing.T) {
	store := NewStore()
	img := baseImage(store)
	rt := NewRuntime(store, 880)
	c, _ := rt.Create("vd1", img.Name, Limits{MemoryMB: 185, CPUShares: 512})
	c.WriteFile("/data/com.example.survey/state", []byte("waypoint 1 of 2 done"))
	if err := c.RemoveFile("/etc/hosts"); err != nil {
		t.Fatal(err)
	}

	blob, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Restore on "different drone hardware": a fresh runtime sharing the
	// base image store (the VDR holds base images).
	rt2 := NewRuntime(store, 880)
	c2, err := rt2.Restore(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.ReadFile("/data/com.example.survey/state")
	if err != nil || !bytes.Equal(got, []byte("waypoint 1 of 2 done")) {
		t.Fatalf("restored state = %q, %v", got, err)
	}
	if _, err := c2.ReadFile("/etc/hosts"); !errors.Is(err, ErrFileNotFound) {
		t.Fatal("whiteout not preserved across checkpoint")
	}
	if c2.Limits().CPUShares != 512 {
		t.Fatalf("limits not preserved: %+v", c2.Limits())
	}
	// Base image content still visible.
	if _, err := c2.ReadFile("/system/framework.jar"); err != nil {
		t.Fatalf("base image content lost: %v", err)
	}
}

func TestRestoreBadBlob(t *testing.T) {
	rt := NewRuntime(NewStore(), 880)
	if _, err := rt.Restore([]byte("not json")); err == nil {
		t.Fatal("bad checkpoint accepted")
	}
}

func TestRestoreMissingImage(t *testing.T) {
	store := NewStore()
	img := baseImage(store)
	rt := NewRuntime(store, 880)
	c, _ := rt.Create("vd1", img.Name, Limits{MemoryMB: 185})
	blob, _ := c.Checkpoint()

	rt2 := NewRuntime(NewStore(), 880) // empty store, no base image
	if _, err := rt2.Restore(blob); !errors.Is(err, ErrNotFound) {
		t.Fatalf("restore without base image: %v, want ErrNotFound", err)
	}
}

func TestDuplicateContainerName(t *testing.T) {
	store := NewStore()
	img := baseImage(store)
	rt := NewRuntime(store, 880)
	rtMustCreate(t, rt, "vd1", img.Name, 10)
	if _, err := rt.Create("vd1", img.Name, Limits{MemoryMB: 10}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
}

func TestCreateUnknownImage(t *testing.T) {
	rt := NewRuntime(NewStore(), 880)
	if _, err := rt.Create("vd1", "nope", Limits{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestCPUShares(t *testing.T) {
	store := NewStore()
	img := baseImage(store)
	rt := NewRuntime(store, 880)
	rtMustCreate(t, rt, "a", img.Name, 10)
	rtMustCreate(t, rt, "b", img.Name, 10)
	mustStart(t, rt, "a")
	mustStart(t, rt, "b")
	// Defaults: equal shares.
	fa, err := rt.CPUFraction("a")
	if err != nil {
		t.Fatal(err)
	}
	if fa != 0.5 {
		t.Fatalf("fraction = %g, want 0.5", fa)
	}
	// Weighted container.
	c, _ := rt.Create("big", img.Name, Limits{MemoryMB: 10, CPUShares: 2048})
	mustStart(t, rt, "big")
	fb, _ := rt.CPUFraction("big")
	if fb != 0.5 {
		t.Fatalf("weighted fraction = %g, want 0.5 (2048 of 4096)", fb)
	}
	_ = c
	// Stopped containers get zero.
	if err := rt.Stop("a"); err != nil {
		t.Fatal(err)
	}
	fa, _ = rt.CPUFraction("a")
	if fa != 0 {
		t.Fatalf("stopped fraction = %g, want 0", fa)
	}
}

func TestLayeredImageStack(t *testing.T) {
	// An upper layer overrides and deletes files from a lower layer.
	store := NewStore()
	lower := NewLayer(map[string][]byte{"/a": []byte("1"), "/b": []byte("1"), "/c": []byte("1")})
	upper := NewLayer(map[string][]byte{"/a": []byte("2"), ".wh./b": nil})
	img := store.AddImage(&Image{Name: "stacked", Layers: []*Layer{lower, upper}})
	rt := NewRuntime(store, 880)
	c, _ := rt.Create("x", img.Name, Limits{MemoryMB: 10})

	got, _ := c.ReadFile("/a")
	if !bytes.Equal(got, []byte("2")) {
		t.Fatalf("/a = %q, want upper layer content", got)
	}
	if _, err := c.ReadFile("/b"); !errors.Is(err, ErrFileNotFound) {
		t.Fatal("image-level whiteout ignored")
	}
	if _, err := c.ReadFile("/c"); err != nil {
		t.Fatalf("/c lost: %v", err)
	}
}

func TestListFiles(t *testing.T) {
	store := NewStore()
	img := baseImage(store)
	rt := NewRuntime(store, 880)
	c, _ := rt.Create("vd1", img.Name, Limits{MemoryMB: 10})
	c.WriteFile("/data/x", []byte("1"))
	files := c.ListFiles()
	want := []string{"/data/x", "/etc/hosts", "/system/framework.jar", "/system/init.rc"}
	if len(files) != len(want) {
		t.Fatalf("ListFiles = %v, want %v", files, want)
	}
	for i := range want {
		if files[i] != want[i] {
			t.Fatalf("ListFiles = %v, want %v", files, want)
		}
	}
}

func rtMustCreate(t *testing.T, rt *Runtime, name, image string, mb int) {
	t.Helper()
	if _, err := rt.Create(name, image, Limits{MemoryMB: mb}); err != nil {
		t.Fatal(err)
	}
}

func mustStart(t *testing.T, rt *Runtime, name string) {
	t.Helper()
	if err := rt.Start(name); err != nil {
		t.Fatal(err)
	}
}

func TestImageExportImport(t *testing.T) {
	src := NewStore()
	img := baseImage(src)
	blob, err := src.ExportImage(img.Name)
	if err != nil {
		t.Fatal(err)
	}

	dst := NewStore()
	got, err := dst.ImportImage(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != img.Name || len(got.Layers) != len(img.Layers) {
		t.Fatalf("imported = %+v", got)
	}
	// Content identical: digests match layer for layer.
	for i := range img.Layers {
		if got.Layers[i].Digest() != img.Layers[i].Digest() {
			t.Fatalf("layer %d digest mismatch", i)
		}
	}
	// A container on the imported image reads base content.
	rt := NewRuntime(dst, 880)
	c, err := rt.Create("x", img.Name, Limits{MemoryMB: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("/etc/hosts"); err != nil {
		t.Fatal(err)
	}
}

func TestImportRejectsCorruptArchive(t *testing.T) {
	src := NewStore()
	img := baseImage(src)
	blob, _ := src.ExportImage(img.Name)

	// Corrupt the recorded digest: the recomputed content address must no
	// longer match (equivalently, any content change breaks the old digest).
	digest := img.Layers[0].Digest()
	bad := bytes.Replace(blob, []byte(digest[:8]), []byte("deadbeef"), 1)
	if bytes.Equal(bad, blob) {
		t.Fatal("test setup: digest not found in archive")
	}
	if _, err := NewStore().ImportImage(bad); err == nil {
		t.Fatal("corrupt archive accepted")
	}
	if _, err := NewStore().ImportImage([]byte("junk")); err == nil {
		t.Fatal("junk archive accepted")
	}
	if _, err := NewStore().ImportImage([]byte(`{"name":""}`)); err == nil {
		t.Fatal("nameless archive accepted")
	}
	if _, err := src.ExportImage("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("export missing: %v", err)
	}
}
