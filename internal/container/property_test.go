package container

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"testing"
	"testing/quick"
)

// TestContainerFilesystemModel model-checks the container's union
// filesystem against a plain map: random sequences of write/remove/read
// operations must behave identically.
func TestContainerFilesystemModel(t *testing.T) {
	paths := []string{"/a", "/b", "/sys/base", "/data/x", "/data/y"}

	check := func(ops []uint8) bool {
		store := NewStore()
		img := store.AddImage(&Image{Name: "m", Layers: []*Layer{
			NewLayer(map[string][]byte{"/sys/base": []byte("base"), "/a": []byte("A")}),
		}})
		_ = img
		rt := NewRuntime(store, 100)
		c, err := rt.Create("m", "m", Limits{MemoryMB: 1})
		if err != nil {
			return false
		}
		// Reference model.
		model := map[string][]byte{"/sys/base": []byte("base"), "/a": []byte("A")}

		for i, op := range ops {
			path := paths[int(op>>4)%len(paths)]
			switch op % 3 {
			case 0: // write
				content := []byte(fmt.Sprintf("v%d", i))
				c.WriteFile(path, content)
				model[path] = content
			case 1: // remove
				err := c.RemoveFile(path)
				_, existed := model[path]
				if existed != (err == nil) {
					return false
				}
				delete(model, path)
			case 2: // read
				got, err := c.ReadFile(path)
				want, existed := model[path]
				if existed != (err == nil) {
					return false
				}
				if existed && !bytes.Equal(got, want) {
					return false
				}
			}
		}
		// Final listing matches the model.
		files := c.ListFiles()
		if len(files) != len(model) {
			return false
		}
		for _, p := range files {
			if _, ok := model[p]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRestoreProperty: any sequence of writes/removes survives a
// checkpoint/restore round trip bit-for-bit.
func TestCheckpointRestoreProperty(t *testing.T) {
	check := func(writes map[string][]byte, removeBase bool) bool {
		store := NewStore()
		store.AddImage(&Image{Name: "m", Layers: []*Layer{
			NewLayer(map[string][]byte{"/base": []byte("B")}),
		}})
		rt := NewRuntime(store, 100)
		c, err := rt.Create("m", "m", Limits{MemoryMB: 1})
		if err != nil {
			return false
		}
		for p, data := range writes {
			if p == "" {
				continue
			}
			c.WriteFile("/w/"+sanitize(p), data)
		}
		if removeBase {
			if err := c.RemoveFile("/base"); err != nil {
				return false
			}
		}
		blob, err := c.Checkpoint()
		if err != nil {
			return false
		}
		rt2 := NewRuntime(store, 100)
		c2, err := rt2.Restore(blob)
		if err != nil {
			return false
		}
		for p, want := range writes {
			if p == "" {
				continue
			}
			got, err := c2.ReadFile("/w/" + sanitize(p))
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		_, err = c2.ReadFile("/base")
		if removeBase != errors.Is(err, ErrFileNotFound) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// sanitize maps an arbitrary string to a stable path-safe token.
func sanitize(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%x", h.Sum64())
}

// TestMemoryAccountingProperty: any sequence of start/stop keeps the
// runtime's memory ledger equal to the sum of running containers, and never
// above the budget.
func TestMemoryAccountingProperty(t *testing.T) {
	check := func(ops []uint8) bool {
		store := NewStore()
		store.AddImage(&Image{Name: "m", Layers: []*Layer{
			NewLayer(map[string][]byte{"/x": []byte("x")}),
		}})
		const budget = 500
		rt := NewRuntime(store, budget)
		sizes := []int{60, 110, 185, 240}
		running := map[string]int{}
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("c%d", i)
			if _, err := rt.Create(name, "m", Limits{MemoryMB: sizes[i%len(sizes)]}); err != nil {
				return false
			}
		}
		for _, op := range ops {
			name := fmt.Sprintf("c%d", int(op>>4)%6)
			size := sizes[(int(op>>4)%6)%len(sizes)]
			if op%2 == 0 {
				err := rt.Start(name)
				_, already := running[name]
				sum := total(running)
				switch {
				case already && err == nil:
					return false // double start must fail
				case !already && sum+size <= budget && err != nil:
					return false // should have fit
				case !already && sum+size > budget && err == nil:
					return false // overcommitted
				}
				if err == nil {
					running[name] = size
				}
			} else {
				err := rt.Stop(name)
				_, was := running[name]
				if was != (err == nil) {
					return false
				}
				delete(running, name)
			}
			if rt.MemoryUsedMB() != total(running) {
				return false
			}
			if rt.MemoryUsedMB() > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func total(m map[string]int) int {
	var t int
	for _, v := range m {
		t += v
	}
	return t
}
