// Unit, property, and allocation tests for the deterministic wakeup
// queue. The property tests drive a Queue and a brutally simple model
// oracle (an unsorted slice, min by linear scan) through the same op
// streams and require agreement after every operation: wakeups fire in
// (due tick, insertion order), none are lost or duplicated, and cancel
// hits exactly the wakeup its ID names. FuzzQueueOps (fuzz_test.go)
// feeds the same interpreter from the fuzz corpus.

package sched_test

import (
	"math/rand"
	"testing"

	"androne/internal/sched"
)

func TestFIFOWithinSameTick(t *testing.T) {
	q := sched.New()
	q.Schedule(5, 1, 100)
	q.Schedule(5, 2, 200)
	q.Schedule(3, 3, 300)
	q.Schedule(5, 4, 400)

	want := []sched.Wakeup{
		{Due: 3, Kind: 3, Arg: 300},
		{Due: 5, Kind: 1, Arg: 100},
		{Due: 5, Kind: 2, Arg: 200},
		{Due: 5, Kind: 4, Arg: 400},
	}
	for i, w := range want {
		got, ok := q.Pop()
		if !ok || got != w {
			t.Fatalf("pop %d: got %+v ok=%v, want %+v", i, got, ok, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue returned a wakeup")
	}
}

func TestCancelIsExact(t *testing.T) {
	q := sched.New()
	a := q.Schedule(1, 1, 0)
	b := q.Schedule(2, 2, 0)
	c := q.Schedule(3, 3, 0)

	if !q.Cancel(b) {
		t.Fatal("cancel of live wakeup returned false")
	}
	if q.Cancel(b) {
		t.Fatal("second cancel of the same ID returned true")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d after cancel, want 2", q.Len())
	}

	// The canceled slot is reused; the stale IDs must still miss.
	d := q.Schedule(0, 4, 0)
	if q.Cancel(b) {
		t.Fatal("stale ID canceled a reused slot's wakeup")
	}
	if q.Reschedule(b, 9) {
		t.Fatal("stale ID rescheduled a reused slot's wakeup")
	}

	var kinds []uint8
	for {
		w, ok := q.Pop()
		if !ok {
			break
		}
		kinds = append(kinds, w.Kind)
	}
	if len(kinds) != 3 || kinds[0] != 4 || kinds[1] != 1 || kinds[2] != 3 {
		t.Fatalf("fired kinds = %v, want [4 1 3]", kinds)
	}
	_, _, _ = a, c, d
}

func TestRescheduleKeepsIDAndPayload(t *testing.T) {
	q := sched.New()
	a := q.Schedule(10, 1, 111)
	q.Schedule(5, 2, 222)

	if !q.Reschedule(a, 2) {
		t.Fatal("reschedule of live wakeup returned false")
	}
	w, id, ok := q.Peek()
	if !ok || id != a || w.Due != 2 || w.Kind != 1 || w.Arg != 111 {
		t.Fatalf("peek after reschedule = %+v id=%d ok=%v", w, id, ok)
	}

	// Rescheduling onto an occupied tick files the moved wakeup after the
	// wakeups already queued there, like a cancel+schedule pair would.
	if !q.Reschedule(a, 5) {
		t.Fatal("second reschedule returned false")
	}
	w, _ = q.Pop()
	if w.Kind != 2 {
		t.Fatalf("first out after reschedule onto tie = kind %d, want 2", w.Kind)
	}
	w, _ = q.Pop()
	if w.Kind != 1 || w.Due != 5 {
		t.Fatalf("second out = %+v, want the rescheduled kind-1 wakeup", w)
	}
}

func TestPopDueBoundary(t *testing.T) {
	q := sched.New()
	q.Schedule(7, 1, 0)

	if _, ok := q.PopDue(6); ok {
		t.Fatal("PopDue(6) fired a wakeup due at 7")
	}
	w, ok := q.PopDue(7)
	if !ok || w.Due != 7 {
		t.Fatalf("PopDue(7) = %+v ok=%v, want the due wakeup", w, ok)
	}
	if _, ok := q.PopDue(7); ok {
		t.Fatal("PopDue on empty queue returned a wakeup")
	}
}

// TestQueueMatchesModelRandom drives random interleavings of
// schedule/cancel/reschedule/pop through the queue and the model oracle.
// Seeds are fixed so a failure replays exactly.
func TestQueueMatchesModelRandom(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(512)
		data := make([]byte, n)
		rng.Read(data)
		applyOps(t, data)
		if t.Failed() {
			t.Fatalf("seed %d diverged", seed)
		}
	}
}

// TestQueueZeroAllocSteadyState pins the warm queue at 0 allocs/op: once
// the arena, heap, and free list have grown to working size, a
// schedule/reschedule/cancel/pop cycle must not touch the heap — the
// dynamic twin of the //vet:hotpath verdicts on the same methods.
func TestQueueZeroAllocSteadyState(t *testing.T) {
	q := sched.New()
	ids := make([]sched.ID, 0, 256)
	for i := 0; i < 256; i++ {
		ids = append(ids, q.Schedule(uint64(i), uint8(i), uint64(i)))
	}
	for _, id := range ids {
		q.Cancel(id)
	}

	tick := uint64(1000)
	allocs := testing.AllocsPerRun(1000, func() {
		a := q.Schedule(tick+10, 1, 1)
		b := q.Schedule(tick+5, 2, 2)
		c := q.Schedule(tick+5, 3, 3)
		q.Reschedule(a, tick+1)
		q.Cancel(c)
		for {
			if _, ok := q.PopDue(tick + 20); !ok {
				break
			}
		}
		_ = b
		tick += 20
	})
	if allocs != 0 {
		t.Fatalf("steady-state scheduling allocated %.1f/op, want 0", allocs)
	}
}
