// Package sched provides the deterministic wakeup queue behind the
// event-driven fleet scheduler. A Queue holds timestamped wakeups
// (waypoint arrival, dwell or allotment expiry, link profile change,
// fault due-time, breach recovery retry, save/restore point) ordered by
// (due tick, insertion order): two wakeups due on the same tick fire in
// the order they were scheduled, so a run's event order is a pure
// function of the schedule calls, never of heap internals.
//
// The queue is built for the fleet's per-drone run loop:
//
//   - Determinism: ordering depends only on due ticks and insertion
//     sequence numbers. No wall clock, no randomized tie-breaks, no map
//     iteration — the whole package is safe inside //vet:detpath trees.
//   - Exact cancel: IDs carry a slot generation, so canceling (or
//     rescheduling) a wakeup affects exactly that wakeup; a stale ID
//     held across a slot reuse misses instead of killing a stranger.
//   - Zero steady-state allocation: slots are recycled through a free
//     list and the heap reuses its backing array, so once the arena is
//     warm, Schedule/Cancel/Reschedule/Pop run at 0 allocs/op (pinned
//     by TestQueueZeroAllocSteadyState and the hotpath analyzer).
//
// A Queue is not safe for concurrent use: each drone owns its queue,
// matching the fleet's share-nothing worker model.
package sched

// ID identifies an outstanding wakeup. The zero ID is never issued.
// IDs are single-use: once the wakeup fires or is canceled, the ID goes
// stale and Cancel/Reschedule on it return false, even if the internal
// slot has been reused by a later wakeup.
type ID uint64

// Wakeup is a timestamped wakeup. Kind and Arg are opaque to the queue;
// callers use them to route the wakeup (which phase of the run is due,
// which fault index fired) without any per-wakeup allocation.
type Wakeup struct {
	Due  uint64 // tick at which the wakeup fires
	Kind uint8  // caller-defined wakeup class
	Arg  uint64 // caller-defined payload
}

// item is one arena slot. A slot cycles between queued (pos >= 0) and
// free (pos == -1); gen increments on every release so stale IDs miss.
type item struct {
	w   Wakeup
	seq uint64 // insertion rank; breaks equal-due ties FIFO
	gen uint32 // slot generation, embedded in the ID
	pos int32  // index in Queue.heap, -1 when the slot is free
}

// Queue is a deterministic priority queue of wakeups. The zero Queue is
// ready to use.
type Queue struct {
	items []item  // slot arena; the high half of an ID indexes it
	heap  []int32 // binary min-heap of arena slots, ordered by (due, seq)
	free  []int32 // released arena slots awaiting reuse
	seq   uint64  // monotonic insertion counter
}

// New returns an empty queue.
func New() *Queue { return &Queue{} }

// Len reports the number of outstanding wakeups.
func (q *Queue) Len() int { return len(q.heap) }

// id composes the external ID for an occupied slot.
func id(slot int32, gen uint32) ID {
	return ID(uint64(slot+1)<<32 | uint64(gen))
}

// Schedule enqueues a wakeup for the given tick and returns its ID.
//
//vet:hotpath scheduler push: slot reuse keeps the steady state allocation-free
func (q *Queue) Schedule(due uint64, kind uint8, arg uint64) ID {
	var slot int32
	if n := len(q.free); n > 0 {
		slot = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		slot = int32(len(q.items))
		q.items = append(q.items, item{})
	}
	it := &q.items[slot]
	q.seq++
	it.w = Wakeup{Due: due, Kind: kind, Arg: arg}
	it.seq = q.seq
	it.pos = int32(len(q.heap))
	q.heap = append(q.heap, slot)
	q.siftUp(int(it.pos))
	return id(slot, it.gen)
}

// resolve maps an ID to its arena slot, or -1 if the ID is stale.
func (q *Queue) resolve(v ID) int32 {
	slot := int32(uint64(v)>>32) - 1
	if slot < 0 || int(slot) >= len(q.items) {
		return -1
	}
	it := &q.items[slot]
	if it.pos < 0 || it.gen != uint32(v) {
		return -1
	}
	return slot
}

// Cancel removes an outstanding wakeup. It reports whether the ID named
// a live wakeup; a stale ID (already fired, canceled, or slot reused) is
// a no-op returning false.
//
//vet:hotpath scheduler cancel: O(log n) in-place heap fix
func (q *Queue) Cancel(v ID) bool {
	slot := q.resolve(v)
	if slot < 0 {
		return false
	}
	q.removeAt(int(q.items[slot].pos))
	return true
}

// Reschedule moves an outstanding wakeup to a new due tick, keeping its
// payload and ID. The wakeup takes a fresh insertion rank, so among
// wakeups due the same tick it fires after those already queued — the
// same order a cancel-and-schedule pair would produce. Returns false if
// the ID is stale.
//
//vet:hotpath scheduler reschedule: O(log n) in-place heap fix
func (q *Queue) Reschedule(v ID, due uint64) bool {
	slot := q.resolve(v)
	if slot < 0 {
		return false
	}
	it := &q.items[slot]
	q.seq++
	it.w.Due = due
	it.seq = q.seq
	i := int(it.pos)
	if !q.siftDown(i) {
		q.siftUp(i)
	}
	return true
}

// Peek returns the earliest wakeup without removing it.
//
//vet:hotpath scheduler peek: reads the heap root only
func (q *Queue) Peek() (Wakeup, ID, bool) {
	if len(q.heap) == 0 {
		return Wakeup{}, 0, false
	}
	slot := q.heap[0]
	it := &q.items[slot]
	return it.w, id(slot, it.gen), true
}

// Pop removes and returns the earliest wakeup.
//
//vet:hotpath scheduler pop: O(log n) in-place heap fix
func (q *Queue) Pop() (Wakeup, bool) {
	if len(q.heap) == 0 {
		return Wakeup{}, false
	}
	w := q.items[q.heap[0]].w
	q.removeAt(0)
	return w, true
}

// PopDue removes and returns the earliest wakeup if it is due at or
// before now. This is the fleet loop's advance step: drain everything
// due this tick, then leap to Peek().Due.
//
//vet:hotpath scheduler advance: the event loop polls this per wakeup
func (q *Queue) PopDue(now uint64) (Wakeup, bool) {
	if len(q.heap) == 0 || q.items[q.heap[0]].w.Due > now {
		return Wakeup{}, false
	}
	return q.Pop()
}

// removeAt deletes the heap entry at index i and releases its slot.
func (q *Queue) removeAt(i int) {
	slot := q.heap[i]
	last := len(q.heap) - 1
	q.swap(i, last)
	q.heap = q.heap[:last]
	if i < last {
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
	it := &q.items[slot]
	it.pos = -1
	it.gen++
	q.free = append(q.free, slot)
}

// less orders arena slots by (due, insertion rank).
func (q *Queue) less(a, b int32) bool {
	ia, ib := &q.items[a], &q.items[b]
	if ia.w.Due != ib.w.Due {
		return ia.w.Due < ib.w.Due
	}
	return ia.seq < ib.seq
}

// swap exchanges two heap entries and refreshes their position indexes.
func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.items[q.heap[i]].pos = int32(i)
	q.items[q.heap[j]].pos = int32(j)
}

// siftUp restores the heap invariant toward the root.
func (q *Queue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap invariant toward the leaves, reporting
// whether anything moved (so callers know to try siftUp instead).
func (q *Queue) siftDown(i int) bool {
	moved := false
	n := len(q.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.less(q.heap[r], q.heap[l]) {
			min = r
		}
		if !q.less(q.heap[min], q.heap[i]) {
			break
		}
		q.swap(i, min)
		i = min
		moved = true
	}
	return moved
}
