// Fuzz target for the wakeup queue: the fuzzer explores op streams
// (schedule, cancel live, cancel stale, reschedule live, reschedule
// stale, pop, pop-due) and the interpreter checks the queue against the
// model oracle after every op, then drains both and requires the exact
// same firing sequence. Seed corpus lives in testdata/fuzz/FuzzQueueOps.

package sched_test

import (
	"testing"

	"androne/internal/sched"
)

// modelWakeup is one outstanding wakeup in the oracle.
type modelWakeup struct {
	w   sched.Wakeup
	seq uint64
	id  sched.ID
}

// model is the oracle: an unsorted slice with linear-scan min. Too slow
// to ship, simple enough to be obviously correct.
type model struct {
	live []modelWakeup
	seq  uint64
}

func (m *model) schedule(w sched.Wakeup, id sched.ID) {
	m.seq++
	m.live = append(m.live, modelWakeup{w: w, seq: m.seq, id: id})
}

func (m *model) find(id sched.ID) int {
	for i := range m.live {
		if m.live[i].id == id {
			return i
		}
	}
	return -1
}

func (m *model) cancel(id sched.ID) bool {
	i := m.find(id)
	if i < 0 {
		return false
	}
	m.live = append(m.live[:i], m.live[i+1:]...)
	return true
}

func (m *model) reschedule(id sched.ID, due uint64) bool {
	i := m.find(id)
	if i < 0 {
		return false
	}
	m.seq++
	m.live[i].w.Due = due
	m.live[i].seq = m.seq
	return true
}

// minIndex returns the index of the earliest (due, seq) wakeup, -1 when
// empty.
func (m *model) minIndex() int {
	best := -1
	for i := range m.live {
		if best < 0 ||
			m.live[i].w.Due < m.live[best].w.Due ||
			(m.live[i].w.Due == m.live[best].w.Due && m.live[i].seq < m.live[best].seq) {
			best = i
		}
	}
	return best
}

func (m *model) pop() (modelWakeup, bool) {
	i := m.minIndex()
	if i < 0 {
		return modelWakeup{}, false
	}
	mw := m.live[i]
	m.live = append(m.live[:i], m.live[i+1:]...)
	return mw, true
}

// applyOps interprets data as an op stream against both implementations.
// Byte layout per op: opcode, then the operands that opcode needs; the
// stream ends when operands run out.
func applyOps(t *testing.T, data []byte) {
	t.Helper()
	q := sched.New()
	m := &model{}
	var live []sched.ID  // IDs both sides believe outstanding
	var stale []sched.ID // IDs that have fired or been canceled

	take := func(i *int, n int) ([]byte, bool) {
		if *i+n > len(data) {
			return nil, false
		}
		b := data[*i : *i+n]
		*i += n
		return b, true
	}

	for i := 0; i < len(data); {
		op := data[i] % 8
		i++
		switch op {
		case 0, 1: // schedule
			b, ok := take(&i, 4)
			if !ok {
				return
			}
			w := sched.Wakeup{
				Due:  uint64(b[0])<<8 | uint64(b[1]),
				Kind: b[2] % 8,
				Arg:  uint64(b[3]),
			}
			id := q.Schedule(w.Due, w.Kind, w.Arg)
			if id == 0 {
				t.Fatal("Schedule returned the zero ID")
			}
			m.schedule(w, id)
			live = append(live, id)
		case 2: // cancel a live wakeup
			b, ok := take(&i, 1)
			if !ok || len(live) == 0 {
				continue
			}
			j := int(b[0]) % len(live)
			id := live[j]
			if got, want := q.Cancel(id), m.cancel(id); got != want || !got {
				t.Fatalf("Cancel(live %d) = %v, model %v", id, got, want)
			}
			live = append(live[:j], live[j+1:]...)
			stale = append(stale, id)
		case 3: // cancel a stale ID: must be an exact miss
			b, ok := take(&i, 1)
			if !ok || len(stale) == 0 {
				continue
			}
			id := stale[int(b[0])%len(stale)]
			if q.Cancel(id) {
				t.Fatalf("Cancel(stale %d) = true", id)
			}
			if m.find(id) >= 0 {
				t.Fatalf("model still holds stale ID %d", id)
			}
		case 4: // reschedule a live wakeup
			b, ok := take(&i, 3)
			if !ok || len(live) == 0 {
				continue
			}
			id := live[int(b[0])%len(live)]
			due := uint64(b[1])<<8 | uint64(b[2])
			if got, want := q.Reschedule(id, due), m.reschedule(id, due); got != want || !got {
				t.Fatalf("Reschedule(live %d) = %v, model %v", id, got, want)
			}
		case 5: // reschedule a stale ID: must be an exact miss
			b, ok := take(&i, 1)
			if !ok || len(stale) == 0 {
				continue
			}
			id := stale[int(b[0])%len(stale)]
			if q.Reschedule(id, 1) {
				t.Fatalf("Reschedule(stale %d) = true", id)
			}
		case 6: // pop the minimum
			w, ok := q.Pop()
			mw, mok := m.pop()
			if ok != mok || w != mw.w {
				t.Fatalf("Pop = %+v ok=%v, model %+v ok=%v", w, ok, mw.w, mok)
			}
			if ok {
				live = dropID(live, mw.id)
				stale = append(stale, mw.id)
			}
		case 7: // pop-due at a horizon
			b, ok := take(&i, 2)
			if !ok {
				return
			}
			now := uint64(b[0])<<8 | uint64(b[1])
			w, ok := q.PopDue(now)
			var mw modelWakeup
			mok := false
			if j := m.minIndex(); j >= 0 && m.live[j].w.Due <= now {
				mw, mok = m.pop()
			}
			if ok != mok || (ok && w != mw.w) {
				t.Fatalf("PopDue(%d) = %+v ok=%v, model %+v ok=%v", now, w, ok, mw.w, mok)
			}
			if ok {
				live = dropID(live, mw.id)
				stale = append(stale, mw.id)
			}
		}
		if q.Len() != len(m.live) {
			t.Fatalf("Len = %d, model holds %d", q.Len(), len(m.live))
		}
	}

	// Drain both sides: every surviving wakeup must fire exactly once, in
	// (due, insertion) order, with its payload intact.
	for {
		w, ok := q.Pop()
		mw, mok := m.pop()
		if ok != mok {
			t.Fatalf("drain: queue ok=%v, model ok=%v", ok, mok)
		}
		if !ok {
			break
		}
		if w != mw.w {
			t.Fatalf("drain: queue fired %+v, model %+v", w, mw.w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue reports Len=%d after drain", q.Len())
	}
}

func dropID(ids []sched.ID, id sched.ID) []sched.ID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

func FuzzQueueOps(f *testing.F) {
	// A hand-picked interleaving of every opcode, plus degenerate streams;
	// the checked-in corpus under testdata/fuzz extends these.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 5, 1, 7, 0, 0, 5, 2, 9, 6, 2, 0, 3, 0, 7, 0, 9})
	f.Add([]byte{1, 0, 1, 0, 1, 1, 0, 1, 1, 2, 4, 0, 0, 3, 2, 0, 3, 0, 5, 0, 6, 6, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		applyOps(t, data)
	})
}
