package loadgen

import (
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"androne/internal/cloud"
)

// tinyConfig is the smallest population that still exercises every phase:
// orders, two fly rounds, re-orders, and churn over the shared blob store.
func tinyConfig(seed string) Config {
	return Config{
		Tenants:         2,
		OrdersPerTenant: 1,
		BrowseRepeat:    5,
		ChurnRounds:     3,
		FleetSize:       2,
		Seed:            seed,
		Timeout:         2 * time.Minute,
	}
}

// TestHarnessFullWorkload drives the whole in-process workload and checks
// the result is coherent: traffic flowed, nothing errored, flights flew,
// churn scenarios passed, and the content-addressed store deduplicated
// the repeated checkpoints at >= 2x.
func TestHarnessFullWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("flies whole missions")
	}
	h, err := New(tinyConfig(t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", res.Requests, res.Errors)
	}
	if res.FlyRounds != 2 || res.FlySeconds <= 0 {
		t.Fatalf("fly rounds=%d seconds=%v", res.FlyRounds, res.FlySeconds)
	}
	if res.ChurnRuns != 6 || res.Violations != 0 {
		t.Fatalf("churn runs=%d violations=%d", res.ChurnRuns, res.Violations)
	}
	if res.P99Ms <= 0 || res.P50Ms > res.P99Ms {
		t.Fatalf("quantiles p50=%v p99=%v", res.P50Ms, res.P99Ms)
	}
	// The dedup gate the cloud bench enforces must hold at tiny scale too:
	// every churn round rewrites the same mission's layers.
	if res.DedupRatio < 2 {
		t.Fatalf("dedup ratio %.2f < 2 (blob: %+v)", res.DedupRatio, res.Blob)
	}
	// Interrupted churn orders resumed from the VDR must have completed.
	for i := 0; i < 2; i++ {
		tenant := tenantName(i)
		entry, err := h.Service().VDR().Load("churn-" + tenant)
		if err != nil {
			t.Fatalf("VDR load churn-%s: %v", tenant, err)
		}
		if !entry.Completed {
			t.Fatalf("churn-%s not completed after two fly rounds", tenant)
		}
	}
}

// TestFloodingTenantDoesNotRaiseVictimP99 is the isolation property the
// per-tenant admission front exists for: one tenant hammering the portal
// far over its rate gets shed, while another tenant's paced reads keep
// their latency. Runs under -race in CI.
func TestFloodingTenantDoesNotRaiseVictimP99(t *testing.T) {
	cfg := tinyConfig(t.Name())
	cfg.ChurnRounds = 0
	// A tight admission config so the flooder actually trips the limiter.
	cfg.Admission = cloud.AdmissionConfig{
		RatePerTenant: 200,
		Burst:         50,
		MaxInFlight:   16,
		MaxQueued:     32,
		MaxWait:       5 * time.Millisecond,
		RetryAfter:    time.Second,
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const floodN = 2000
	const victimN = 100
	var wg sync.WaitGroup
	floodShed := 0
	victimLats := make([]float64, 0, victimN)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < floodN/4; i++ {
				h.Get("flooder", "/api/orders?user=flooder")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < victimN; i++ {
			start := time.Now()
			status, err := h.Get("victim", "/api/apps")
			if err != nil {
				t.Errorf("victim request: %v", err)
				return
			}
			if status != http.StatusOK {
				t.Errorf("victim shed: status %d", status)
				return
			}
			victimLats = append(victimLats, time.Since(start).Seconds())
			time.Sleep(10 * time.Millisecond) // ~100 req/s, well under the bucket
		}
	}()
	wg.Wait()

	shedTotal := int(h.shed.Load())
	floodShed = shedTotal
	if floodShed == 0 {
		t.Fatalf("flooder was never shed across %d requests", floodN)
	}
	sort.Float64s(victimLats)
	p99 := quantile(victimLats, 0.99)
	// The victim must never wait behind the flooder's queue: its p99 stays
	// far below the shed path's MaxWait ceiling plus scheduling noise.
	if p99 > 0.100 {
		t.Fatalf("victim p99 = %.1f ms under flood (want < 100 ms)", p99*1000)
	}
}

// TestQuantile pins the small-sample quantile convention.
func TestQuantile(t *testing.T) {
	if got := quantile(nil, 0.99); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := quantile(s, 0.5); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := quantile(s, 0.99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
}
