// Package loadgen drives synthetic tenant populations through the full
// AnDrone service lifecycle — browse the app store, install an app, order a
// virtual drone, fly it, then churn save/restore cycles — against an
// in-process service plane or a remote portal. It records what the paper's
// cloud story needs numbers for: request latency quantiles, throughput,
// admission shed rate, and the checkpoint dedup ratio the content-addressed
// VDR achieves on the churn workload. cmd/androne-load is the CLI;
// androne-bench -exp cloud wraps a run in SLO gates and emits
// BENCH_cloud.json.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"androne/internal/apps"
	"androne/internal/cloud"
	"androne/internal/core"
	"androne/internal/geo"
	"androne/internal/service"
	"androne/internal/simharness"
)

// Config sizes a load run.
type Config struct {
	// Tenants is the synthetic tenant population.
	Tenants int
	// OrdersPerTenant is how many quick photo orders each tenant places.
	OrdersPerTenant int
	// BrowseRepeat is how many listing reads each tenant issues (the
	// latency sample).
	BrowseRepeat int
	// ChurnRounds is how many save/restore scenario runs each tenant
	// drives through the shared VDR (in-process only).
	ChurnRounds int
	// BaseURL targets a remote portal; empty runs an in-process service.
	BaseURL string
	// FleetSize for the in-process service.
	FleetSize int
	// Seed makes the in-process fleet deterministic.
	Seed string
	// Admission tunes the in-process front door; zero takes defaults.
	Admission cloud.AdmissionConfig
	// Timeout bounds every client request.
	Timeout time.Duration
}

// DefaultConfig is the full-size load run.
func DefaultConfig() Config {
	return Config{
		Tenants:         6,
		OrdersPerTenant: 1,
		BrowseRepeat:    25,
		ChurnRounds:     3,
		FleetSize:       2,
		Seed:            "androne-load",
		Timeout:         2 * time.Minute,
	}
}

// Result is what a load run measured.
type Result struct {
	Tenants       int     `json:"tenants"`
	Requests      int64   `json:"requests"`
	Shed          int64   `json:"shed"`
	Errors        int64   `json:"errors"`
	ShedRate      float64 `json:"shed-rate"`
	ThroughputRPS float64 `json:"throughput-rps"`
	P50Ms         float64 `json:"p50-ms"`
	P99Ms         float64 `json:"p99-ms"`
	HTTPSeconds   float64 `json:"http-seconds"`
	FlyRounds     int     `json:"fly-rounds"`
	FlySeconds    float64 `json:"fly-seconds"`
	ChurnRuns     int     `json:"churn-runs"`
	Violations    int     `json:"violations"`
	DedupRatio    float64 `json:"dedup-ratio"`
	Blob          cloud.BlobStats `json:"blob"`
}

// Harness is a load-generation session against one service plane.
type Harness struct {
	cfg    Config
	client *http.Client
	base   string
	svc    *service.Service
	blobs  *cloud.BlobStore
	env    *core.CloudEnv // shared churn environment over blobs
	close  func()

	mu        sync.Mutex
	latencies []float64 // seconds, tenant-facing requests only
	shed      atomic.Int64
	errors    atomic.Int64
	requests  atomic.Int64
}

// handlerTransport serves requests straight into an http.Handler — the
// in-process mode's network: no sockets, no listener, same HTTP semantics.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// New builds a harness. With cfg.BaseURL empty it boots an in-process
// service plane (fleet, portal, admission) with a shared content-addressed
// blob store so dedup is measurable; otherwise it points at the remote
// portal and skips the in-process-only phases.
func New(cfg Config) (*Harness, error) {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	h := &Harness{cfg: cfg}
	if cfg.BaseURL != "" {
		h.base = strings.TrimRight(cfg.BaseURL, "/")
		h.client = &http.Client{Timeout: cfg.Timeout}
		h.close = func() {}
		return h, nil
	}

	scfg := service.DefaultConfig()
	if cfg.FleetSize > 0 {
		scfg.FleetSize = cfg.FleetSize
	}
	if cfg.Seed != "" {
		scfg.Seed = cfg.Seed
	}
	scfg.Admission = cfg.Admission
	h.blobs = cloud.NewBlobStore()
	scfg.Blobs = h.blobs
	svc, err := service.New(scfg)
	if err != nil {
		return nil, err
	}
	if err := svc.SeedDemoApps(); err != nil {
		return nil, err
	}
	h.svc = svc
	h.env = &core.CloudEnv{
		Storage: cloud.NewStorage(),
		VDR:     cloud.NewVDRWith(h.blobs, cloud.DefaultQuotas()),
	}
	h.base = "http://androne.local"
	h.client = &http.Client{
		Timeout:   cfg.Timeout,
		Transport: handlerTransport{h: svc.Handler()},
	}
	h.close = svc.Close
	return h, nil
}

// Close releases the in-process service.
func (h *Harness) Close() { h.close() }

// Service returns the in-process service, or nil for a remote harness.
func (h *Harness) Service() *service.Service { return h.svc }

// do issues one request as tenant and records its latency and outcome.
// record=false keeps the request out of the latency sample (the admin fly
// call runs whole flights and would otherwise dominate p99; shed/error
// accounting still applies).
func (h *Harness) do(tenant, method, path string, body any, record bool) (int, error) {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, h.base+path, rd)
	if err != nil {
		return 0, err
	}
	req.Header.Set(cloud.TenantHeader, tenant)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := h.client.Do(req)
	lat := time.Since(start).Seconds()
	h.requests.Add(1)
	if err != nil {
		h.errors.Add(1)
		return 0, err
	}
	defer resp.Body.Close()
	var sink json.RawMessage
	_ = json.NewDecoder(resp.Body).Decode(&sink)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		h.shed.Add(1)
	case resp.StatusCode >= 400:
		h.errors.Add(1)
	}
	if record {
		h.mu.Lock()
		h.latencies = append(h.latencies, lat)
		h.mu.Unlock()
	}
	return resp.StatusCode, nil
}

// Get issues a GET as tenant (a test and workload primitive).
func (h *Harness) Get(tenant, path string) (int, error) {
	return h.do(tenant, http.MethodGet, path, nil, true)
}

// PostJSON issues a POST as tenant.
func (h *Harness) PostJSON(tenant, path string, body any) (int, error) {
	return h.do(tenant, http.MethodPost, path, body, true)
}

// postAdmin issues an unrecorded POST (fly rounds run whole flights).
func (h *Harness) postAdmin(path string) (int, error) {
	return h.do("operator", http.MethodPost, path, map[string]any{}, false)
}

// photoDef is the quick single-flight order: one waypoint, the photo app.
func photoDef(owner, name string, i int) *core.Definition {
	base := service.DefaultConfig().Base
	return &core.Definition{
		Name: name, Owner: owner, MaxDuration: 120, EnergyAllotted: 20000,
		WaypointDevices: []string{"camera", "flight-control"},
		Apps:            []string{apps.PhotoPackage},
		AppArgs: map[string]json.RawMessage{
			apps.PhotoPackage: json.RawMessage(`{"shots": 2}`),
		},
		Waypoints: []geo.Waypoint{{
			Position: geo.Position{
				LatLon: geo.OffsetNE(base.LatLon, float64(50+20*(i%5)), float64(-30*(i%3))),
				Alt:    15,
			},
			MaxRadius: 40,
		}},
	}
}

// churnDef is the interrupted order: two waypoints with an energy allotment
// that forces a battery split, so the drone is saved to the VDR between
// flights and restored on the next — every round trip writes checkpoint
// layers the blob store should dedup.
func churnDef(owner, name string) *core.Definition {
	base := service.DefaultConfig().Base
	d := photoDef(owner, name, 0)
	d.Name = name
	d.Apps = nil
	d.AppArgs = nil
	d.Waypoints = append(d.Waypoints, geo.Waypoint{
		Position:  geo.Position{LatLon: geo.OffsetNE(base.LatLon, -80, 0), Alt: 15},
		MaxRadius: 40,
	})
	d.EnergyAllotted = 170000
	d.MaxDuration = 400
	return d
}

// orderBody wraps a definition as the POST /api/orders payload.
func orderBody(user string, def *core.Definition) (map[string]any, error) {
	raw, err := def.Encode()
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"user": user, "name": def.Name, "definition": json.RawMessage(raw),
	}, nil
}

// tenantName returns the i-th synthetic tenant.
func tenantName(i int) string { return fmt.Sprintf("tenant-%02d", i) }

// lifecycle is one tenant's browse → install → order → poll pass.
func (h *Harness) lifecycle(tenant string, reorder bool) error {
	if _, err := h.Get(tenant, "/api/apps"); err != nil {
		return err
	}
	if _, err := h.Get(tenant, "/api/apps/"+apps.PhotoPackage); err != nil {
		return err
	}
	if !reorder {
		for i := 0; i < h.cfg.OrdersPerTenant; i++ {
			def := photoDef(tenant, fmt.Sprintf("ld-%s-%d", tenant, i), i)
			body, err := orderBody(tenant, def)
			if err != nil {
				return err
			}
			if _, err := h.PostJSON(tenant, "/api/orders", body); err != nil {
				return err
			}
		}
	}
	// The churn order is (re-)placed every pass: repeat orders of the same
	// virtual drone resume it from the VDR.
	body, err := orderBody(tenant, churnDef(tenant, "churn-"+tenant))
	if err != nil {
		return err
	}
	if _, err := h.PostJSON(tenant, "/api/orders", body); err != nil {
		return err
	}
	repeats := h.cfg.BrowseRepeat
	if repeats <= 0 {
		repeats = 1
	}
	for i := 0; i < repeats; i++ {
		if _, err := h.Get(tenant, "/api/orders?user="+tenant); err != nil {
			return err
		}
		if _, err := h.Get(tenant, "/api/vdr"); err != nil {
			return err
		}
	}
	return nil
}

// runTenants runs fn for every tenant concurrently, waits for all of them,
// and returns the first error.
func (h *Harness) runTenants(fn func(tenant string) error) error {
	errCh := make(chan error, h.cfg.Tenants)
	for i := 0; i < h.cfg.Tenants; i++ {
		go func(i int) {
			errCh <- fn(tenantName(i))
		}(i)
	}
	var first error
	for i := 0; i < h.cfg.Tenants; i++ {
		if err := <-errCh; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// churnScenarios drives each tenant's save/restore scenario over the shared
// blob store: same mission each round, so every layer the first round wrote
// should dedup in later rounds.
func (h *Harness) churnScenarios() (runs, violations int, err error) {
	if h.svc == nil || h.cfg.ChurnRounds <= 0 {
		return 0, 0, nil
	}
	for round := 0; round < h.cfg.ChurnRounds; round++ {
		for i := 0; i < h.cfg.Tenants; i++ {
			tenant := tenantName(i)
			sc := simharness.ByName("save-restore")
			sc.Seed = "load-churn-" + tenant
			sc.Drones[0].Name = "churn-sc-" + tenant
			sc.Drones[0].Owner = tenant
			sc.Faults[0].Target = sc.Drones[0].Name
			res, rerr := simharness.RunScenarioOver(sc, simharness.ModeLockstep, h.env)
			if rerr != nil {
				return runs, violations, rerr
			}
			runs++
			violations += len(res.Violations)
		}
	}
	return runs, violations, nil
}

// dedupRatio reports the blob store's ratio; the remote mode reads the
// gauge off /metrics instead.
func (h *Harness) dedupRatio() (float64, cloud.BlobStats) {
	if h.blobs != nil {
		st := h.blobs.Stats()
		return st.DedupRatio(), st
	}
	resp, err := h.client.Get(h.base + "/metrics")
	if err != nil {
		return 1, cloud.BlobStats{}
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 1, cloud.BlobStats{}
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "androne_vdr_dedup_ratio "); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil && v > 0 {
				return v, cloud.BlobStats{}
			}
		}
	}
	return 1, cloud.BlobStats{}
}

// quantile returns the q-quantile of sorted samples (seconds), or 0.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Run drives the whole workload and reports what it measured.
func (h *Harness) Run() (*Result, error) {
	httpStart := time.Now()

	// Pass 1: every tenant browses, installs, orders.
	if err := h.runTenants(func(t string) error { return h.lifecycle(t, false) }); err != nil {
		return nil, err
	}
	// Fly round 1: quick orders complete; churn orders are interrupted and
	// saved to the VDR mid-mission.
	flyStart := time.Now()
	flyRounds := 0
	if _, err := h.postAdmin("/api/admin/fly"); err != nil {
		return nil, err
	}
	flyRounds++
	flySeconds := time.Since(flyStart).Seconds()

	// Pass 2: tenants re-order their churn drones (resume from the VDR)
	// and keep polling; fly round 2 finishes the interrupted missions.
	if err := h.runTenants(func(t string) error { return h.lifecycle(t, true) }); err != nil {
		return nil, err
	}
	flyStart = time.Now()
	if _, err := h.postAdmin("/api/admin/fly"); err != nil {
		return nil, err
	}
	flyRounds++
	flySeconds += time.Since(flyStart).Seconds()
	httpSeconds := time.Since(httpStart).Seconds()

	// Save/restore scenario churn over the shared blob store.
	churnRuns, violations, err := h.churnScenarios()
	if err != nil {
		return nil, err
	}

	h.mu.Lock()
	lats := append([]float64(nil), h.latencies...)
	h.mu.Unlock()
	sort.Float64s(lats)
	requests := h.requests.Load()
	shed := h.shed.Load()
	ratio, blob := h.dedupRatio()

	res := &Result{
		Tenants:     h.cfg.Tenants,
		Requests:    requests,
		Shed:        shed,
		Errors:      h.errors.Load(),
		P50Ms:       quantile(lats, 0.50) * 1000,
		P99Ms:       quantile(lats, 0.99) * 1000,
		HTTPSeconds: httpSeconds,
		FlyRounds:   flyRounds,
		FlySeconds:  flySeconds,
		ChurnRuns:   churnRuns,
		Violations:  violations,
		DedupRatio:  ratio,
		Blob:        blob,
	}
	if requests > 0 {
		res.ShedRate = float64(shed) / float64(requests)
	}
	if httpSeconds > 0 {
		res.ThroughputRPS = float64(requests) / httpSeconds
	}
	return res, nil
}
