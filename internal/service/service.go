// Package service assembles the complete AnDrone drone-as-a-service system:
// the cloud portal takes virtual drone orders over HTTP, the flight planner
// allocates them to physical drone flights, the fleet flies the routes with
// the onboard virtualization stack, flight files land in each user's cloud
// storage, virtual drones are saved to the VDR, and orders are billed by
// energy — the whole Figure 4 workflow behind one type.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"androne/internal/apps"
	"androne/internal/cloud"
	"androne/internal/core"
	"androne/internal/energy"
	"androne/internal/geo"
	"androne/internal/planner"
)

// Errors.
var (
	ErrNothingToFly = errors.New("service: no scheduled orders")
)

// Config parameterizes the service.
type Config struct {
	// Base is the fleet's launch site.
	Base geo.Position
	// FleetSize is the number of physical drones.
	FleetSize int
	// Rates price energy, storage, and network usage.
	Rates energy.Rates
	// Seed makes the simulated fleet deterministic.
	Seed string
}

// DefaultConfig returns a single-drone service at the paper's test site.
func DefaultConfig() Config {
	return Config{
		Base:      geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0},
		FleetSize: 1,
		Rates:     energy.DefaultRates(),
		Seed:      "androne-service",
	}
}

// Service is the running AnDrone service.
type Service struct {
	cfg    Config
	portal *cloud.Portal
	apps   *cloud.AppStore
	files  *cloud.Storage
	vdr    *cloud.VDR
	orders *cloud.Orders

	mu    sync.Mutex
	fleet []*core.Drone
	bills map[string]energy.Bill      // order id -> bill
	defs  map[string]*core.Definition // staged definitions by vdrone name
}

// New boots the service: cloud components, portal, and the physical fleet.
func New(cfg Config) (*Service, error) {
	if cfg.FleetSize <= 0 {
		cfg.FleetSize = 1
	}
	s := &Service{
		cfg:    cfg,
		apps:   cloud.NewAppStore(),
		files:  cloud.NewStorage(),
		vdr:    cloud.NewVDR(),
		orders: cloud.NewOrders(),
		bills:  make(map[string]energy.Bill),
		defs:   make(map[string]*core.Definition),
	}
	pcfg := planner.DefaultConfig(cfg.Base)
	estimate := func(def []byte) (float64, float64, float64, error) {
		d, err := core.ParseDefinition(def)
		if err != nil {
			return 0, 0, 0, err
		}
		bill := cfg.Rates.Compute(energy.Usage{EnergyJ: d.EnergyAllotted})
		plan, err := pcfg.Plan([]planner.Task{taskFor("estimate", d)})
		if err != nil {
			return bill.EnergyCharge, 0, 0, nil
		}
		ws, we, err := plan.OperatingWindow(pcfg, "estimate")
		if err != nil {
			return bill.EnergyCharge, 0, 0, nil
		}
		return bill.EnergyCharge, ws, we, nil
	}
	s.portal = cloud.NewPortal(s.apps, s.files, s.vdr, s.orders,
		core.ValidateDefinitionJSON, estimate)

	for i := 0; i < cfg.FleetSize; i++ {
		d, err := core.NewDrone(cfg.Base, fmt.Sprintf("%s/drone-%d", cfg.Seed, i))
		if err != nil {
			return nil, err
		}
		apps.RegisterAll(d.VDC)
		s.fleet = append(s.fleet, d)
	}
	return s, nil
}

// Handler returns the portal's HTTP handler.
func (s *Service) Handler() http.Handler { return s.portal }

// AppStore exposes the app store for seeding.
func (s *Service) AppStore() *cloud.AppStore { return s.apps }

// Storage exposes user file storage.
func (s *Service) Storage() *cloud.Storage { return s.files }

// VDR exposes the virtual drone repository.
func (s *Service) VDR() *cloud.VDR { return s.vdr }

// Orders exposes the order book.
func (s *Service) Orders() *cloud.Orders { return s.orders }

// Fleet exposes the physical drones (for tests and tooling).
func (s *Service) Fleet() []*core.Drone { return s.fleet }

// BillFor returns the bill for a completed order.
func (s *Service) BillFor(orderID string) (energy.Bill, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bills[orderID]
	return b, ok
}

func taskFor(id string, d *core.Definition) planner.Task {
	return planner.Task{
		ID: id, Waypoints: d.Waypoints,
		EnergyJ: d.EnergyAllotted, DurationS: d.MaxDuration,
	}
}

// ProcessOrders moves pending orders to scheduled: it parses their
// definitions, creates virtual drones on the fleet (or restores them from
// the VDR for repeat orders), plans routes, and fills in each order's
// operating window and access info.
func (s *Service) ProcessOrders() (*planner.Plan, error) {
	pending := s.pendingOrders()
	if len(pending) == 0 {
		return nil, ErrNothingToFly
	}

	pcfg := planner.DefaultConfig(s.cfg.Base)
	pcfg.FleetSize = s.cfg.FleetSize
	// The prototype's memory supports at most three simultaneous virtual
	// drones per flight (§6.3).
	pcfg.MaxTasksPerRoute = 3

	var tasks []planner.Task
	for _, ord := range pending {
		def, err := core.ParseDefinition(ord.Definition)
		if err != nil {
			return nil, fmt.Errorf("service: order %s: %w", ord.ID, err)
		}
		def.Name = ord.Name
		if def.Owner == "" {
			def.Owner = ord.User
		}
		// Stage the definition; FlyScheduled instantiates it on whichever
		// drone its route lands on.
		s.mu.Lock()
		s.defs[def.Name] = def
		s.mu.Unlock()
		tasks = append(tasks, taskFor(def.Name, def))
	}

	plan, err := pcfg.Plan(tasks)
	if err != nil {
		return nil, err
	}
	for _, ord := range pending {
		ws, we, werr := plan.OperatingWindow(pcfg, ord.Name)
		_ = s.orders.Update(ord.ID, func(o *cloud.Order) {
			o.Status = cloud.OrderScheduled
			if werr == nil {
				o.WindowStartS, o.WindowEndS = ws, we
			}
			o.Access = cloud.AccessInfo{
				VFCAddr: "vfc://" + o.Name + ":5760",
				SSHAddr: "ssh://" + o.Name + ":22",
				VPNKey:  fmt.Sprintf("vpn-%s", o.ID),
			}
		})
	}
	return plan, nil
}

func (s *Service) pendingOrders() []cloud.Order {
	var out []cloud.Order
	for _, ord := range s.orders.List("") {
		if ord.Status == cloud.OrderPending {
			out = append(out, ord)
		}
	}
	return out
}

// FlyScheduled executes the plan across the fleet: each route flies on the
// drone the planner assigned it to, with virtual drones created on that
// drone (or restored from the VDR if they flew before — including on a
// different physical drone, the paper's migration path). Files are
// offloaded, virtual drones saved to the VDR, orders billed by metered
// energy plus storage, and marked completed or saved-for-resume. Flights
// run sequentially (the simulation is single-threaded); the fleet
// constraint shaped the routes.
func (s *Service) FlyScheduled(plan *planner.Plan) ([]*core.FlightReport, error) {
	if plan == nil || len(plan.Routes) == 0 {
		return nil, ErrNothingToFly
	}
	env := &core.CloudEnv{Storage: s.files, VDR: s.vdr}

	for _, ord := range s.orders.List("") {
		if ord.Status == cloud.OrderScheduled {
			_ = s.orders.Update(ord.ID, func(o *cloud.Order) { o.Status = cloud.OrderFlying })
		}
	}

	var reports []*core.FlightReport
	for i, route := range plan.Routes {
		drone := s.fleet[route.Drone%len(s.fleet)]
		for _, stop := range route.Stops {
			if _, err := drone.VDC.Get(stop.Task); err == nil {
				continue
			}
			if entry, err := s.vdr.Load(stop.Task); err == nil && !entry.Completed {
				if _, err := drone.VDC.Restore(entry); err != nil {
					return reports, fmt.Errorf("service: restoring %s: %w", stop.Task, err)
				}
				continue
			}
			s.mu.Lock()
			def := s.defs[stop.Task]
			s.mu.Unlock()
			if def == nil {
				return reports, fmt.Errorf("service: route %d references unknown task %q", i, stop.Task)
			}
			if _, err := drone.VDC.Create(def); err != nil {
				return reports, fmt.Errorf("service: creating %s: %w", stop.Task, err)
			}
		}
		report, err := drone.ExecuteRoute(route, env)
		if err != nil {
			return reports, fmt.Errorf("service: route %d: %w", i, err)
		}
		reports = append(reports, report)
	}

	// Settle orders: completion status and bills.
	byName := make(map[string]*core.VDReport)
	for _, rep := range reports {
		for name, vr := range rep.PerDrone {
			if agg, ok := byName[name]; ok {
				agg.WaypointsVisited += vr.WaypointsVisited
				agg.EnergyUsedJ += vr.EnergyUsedJ
				agg.TimeUsedS += vr.TimeUsedS
				agg.Files = append(agg.Files, vr.Files...)
				agg.Completed = vr.Completed
			} else {
				cp := *vr
				byName[name] = &cp
			}
		}
	}
	for _, ord := range s.orders.List("") {
		vr, ok := byName[ord.Name]
		if !ok {
			continue
		}
		status := cloud.OrderSaved
		if vr.Completed {
			status = cloud.OrderCompleted
		}
		bill := s.cfg.Rates.Compute(energy.Usage{
			EnergyJ:       vr.EnergyUsedJ,
			StorageBytes:  s.files.UsageBytes(ord.User),
			StorageMonths: 1,
		})
		s.mu.Lock()
		s.bills[ord.ID] = bill
		s.mu.Unlock()
		_ = s.orders.Update(ord.ID, func(o *cloud.Order) { o.Status = status })
	}
	return reports, nil
}

// Run is the whole service loop once: process pending orders and fly them.
func (s *Service) Run() ([]*core.FlightReport, error) {
	plan, err := s.ProcessOrders()
	if err != nil {
		return nil, err
	}
	return s.FlyScheduled(plan)
}

// OrderJSON is a convenience for tests and tools: place an order directly.
func (s *Service) OrderJSON(user, name string, def *core.Definition) (*cloud.Order, error) {
	raw, err := def.Encode()
	if err != nil {
		return nil, err
	}
	if err := core.ValidateDefinitionJSON(raw); err != nil {
		return nil, err
	}
	ord := s.orders.Create(user, cloud.SanitizeName(name), json.RawMessage(raw))
	return ord, nil
}
