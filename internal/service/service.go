// Package service assembles the complete AnDrone drone-as-a-service system:
// the cloud portal takes virtual drone orders over HTTP, the flight planner
// allocates them to physical drone flights, the fleet flies the routes with
// the onboard virtualization stack, flight files land in each user's cloud
// storage, virtual drones are saved to the VDR, and orders are billed by
// energy — the whole Figure 4 workflow behind one type.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"androne/internal/apps"
	"androne/internal/cloud"
	"androne/internal/core"
	"androne/internal/energy"
	"androne/internal/geo"
	"androne/internal/planner"
	"androne/internal/sdk"
	"androne/internal/telemetry"
)

// Errors.
var (
	ErrNothingToFly = errors.New("service: no scheduled orders")
)

// Config parameterizes the service.
type Config struct {
	// Base is the fleet's launch site.
	Base geo.Position
	// FleetSize is the number of physical drones.
	FleetSize int
	// Rates price energy, storage, and network usage.
	Rates energy.Rates
	// Seed makes the simulated fleet deterministic.
	Seed string
	// Quotas bounds each tenant's orders, storage bytes, and VDR layers;
	// the zero value takes cloud.DefaultQuotas.
	Quotas cloud.Quotas
	// Admission tunes the portal front door (token buckets, bounded
	// queue); zero-value fields take the cloud defaults.
	Admission cloud.AdmissionConfig
	// Blobs optionally shares a content-addressed blob store with other
	// service instances, so checkpoint layers dedup across them. Nil means
	// a private store.
	Blobs *cloud.BlobStore
}

// DefaultConfig returns a single-drone service at the paper's test site.
func DefaultConfig() Config {
	return Config{
		Base:      geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0},
		FleetSize: 1,
		Rates:     energy.DefaultRates(),
		Seed:      "androne-service",
	}
}

// Service is the running AnDrone service.
type Service struct {
	cfg     Config
	portal  *cloud.Portal
	apps    *cloud.AppStore
	files   *cloud.Storage
	vdr     *cloud.VDR
	orders  *cloud.Orders
	handler http.Handler
	// flyCh hands flight requests to the fly worker goroutine. The HTTP
	// fly handler only performs channel sends/receives: flight-critical
	// locks (binder, flight controller, flight log) are acquired on the
	// worker, never on a tenant-reachable call path — the lockorder
	// critical-path rule convicts the inline alternative.
	flyCh chan chan flyResult

	mu    sync.Mutex
	fleet []*core.Drone
	bills map[string]energy.Bill      // order id -> bill
	defs  map[string]*core.Definition // staged definitions by vdrone name
}

type flyResult struct {
	reports []*core.FlightReport
	err     error
}

// flyLoop is the fly worker: it serializes flight execution (the simulated
// fleet is single-threaded anyway) and keeps it off HTTP handler stacks.
func (s *Service) flyLoop() {
	for resp := range s.flyCh {
		reports, err := s.Run()
		resp <- flyResult{reports: reports, err: err}
	}
}

// New boots the service: cloud components, portal, and the physical fleet.
func New(cfg Config) (*Service, error) {
	if cfg.FleetSize <= 0 {
		cfg.FleetSize = 1
	}
	if cfg.Quotas == (cloud.Quotas{}) {
		cfg.Quotas = cloud.DefaultQuotas()
	}
	blobs := cfg.Blobs
	if blobs == nil {
		blobs = cloud.NewBlobStore()
	}
	s := &Service{
		cfg:    cfg,
		apps:   cloud.NewAppStore(),
		files:  cloud.NewStorageWith(cfg.Quotas),
		vdr:    cloud.NewVDRWith(blobs, cfg.Quotas),
		orders: cloud.NewOrdersWith(cfg.Quotas),
		bills:  make(map[string]energy.Bill),
		defs:   make(map[string]*core.Definition),
	}
	pcfg := planner.DefaultConfig(cfg.Base)
	estimate := func(def []byte) (float64, float64, float64, error) {
		d, err := core.ParseDefinition(def)
		if err != nil {
			return 0, 0, 0, err
		}
		bill := cfg.Rates.Compute(energy.Usage{EnergyJ: d.EnergyAllotted})
		plan, err := pcfg.Plan([]planner.Task{taskFor("estimate", d)})
		if err != nil {
			return bill.EnergyCharge, 0, 0, nil
		}
		ws, we, err := plan.OperatingWindow(pcfg, "estimate")
		if err != nil {
			return bill.EnergyCharge, 0, 0, nil
		}
		return bill.EnergyCharge, ws, we, nil
	}
	s.portal = cloud.NewPortal(s.apps, s.files, s.vdr, s.orders,
		core.ValidateDefinitionJSON, estimate)

	for i := 0; i < cfg.FleetSize; i++ {
		d, err := core.NewDrone(cfg.Base, fmt.Sprintf("%s/drone-%d", cfg.Seed, i))
		if err != nil {
			return nil, err
		}
		apps.RegisterAll(d.VDC)
		s.fleet = append(s.fleet, d)
	}
	s.flyCh = make(chan chan flyResult)
	go s.flyLoop()
	s.handler = s.assembleHandler()
	return s, nil
}

// Close stops the fly worker. The HTTP fly endpoint must not be used after
// Close; the rest of the service keeps working.
func (s *Service) Close() { close(s.flyCh) }

// assembleHandler builds the service's full HTTP surface: the portal API
// plus the operator endpoints, with the /api/ routes behind admission
// control. /metrics and /debug/trace stay outside admission — the ops
// plane must answer precisely when the service is shedding.
func (s *Service) assembleHandler() http.Handler {
	api := http.NewServeMux()
	api.Handle("/", s.portal)
	api.HandleFunc("POST /api/admin/fly", s.handleFly)
	api.HandleFunc("GET /api/admin/bills", s.handleBills)
	admitted := cloud.NewAdmission(s.cfg.Admission).Wrap(api)

	mux := http.NewServeMux()
	mux.Handle("/", admitted)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, telemetry.DefaultRegistry.Exposition())
	})
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleFly plans and flies all pending orders (POST /api/admin/fly). The
// flight itself runs on the fly worker; this handler just waits for it.
func (s *Service) handleFly(w http.ResponseWriter, r *http.Request) {
	resp := make(chan flyResult, 1)
	s.flyCh <- resp
	res := <-resp
	reports, err := res.reports, res.err
	if errors.Is(err, ErrNothingToFly) {
		writeJSON(w, http.StatusOK, map[string]any{"flights": 0})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	type flightSummary struct {
		DurationS float64 `json:"duration-s"`
		EnergyJ   float64 `json:"energy-j"`
		Home      bool    `json:"returned-home"`
		AEDPass   bool    `json:"aed-pass"`
	}
	out := make([]flightSummary, 0, len(reports))
	for _, rep := range reports {
		out = append(out, flightSummary{
			DurationS: rep.DurationS, EnergyJ: rep.FlightEnergyJ,
			Home: rep.ReturnedHome, AEDPass: rep.AED.Pass,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"flights": len(out), "reports": out})
}

// handleBills lists settled bills by order id (GET /api/admin/bills).
func (s *Service) handleBills(w http.ResponseWriter, r *http.Request) {
	bills := make(map[string]map[string]float64)
	for _, ord := range s.orders.List("") {
		if b, ok := s.BillFor(ord.ID); ok {
			bills[ord.ID] = map[string]float64{
				"energy": b.EnergyCharge, "storage": b.StorageCharge,
				"network": b.NetworkCharge, "total": b.Total(),
			}
		}
	}
	writeJSON(w, http.StatusOK, bills)
}

// handleTrace dumps recent trace events per fleet drone (GET /debug/trace);
// filter with ?drone=<virtual drone name>.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	droneName := r.URL.Query().Get("drone")
	key := telemetry.Key(0)
	if droneName != "" {
		// Lookup, not K: query strings must not grow the intern table.
		k, ok := telemetry.Lookup(droneName)
		if !ok {
			writeJSON(w, http.StatusNotFound,
				map[string]string{"error": "unknown drone: " + droneName})
			return
		}
		key = k
	}
	type fleetTrace struct {
		Fleet  int                     `json:"fleet"`
		Events []telemetry.RecordEvent `json:"events"`
	}
	out := make([]fleetTrace, 0, len(s.fleet))
	for i, d := range s.fleet {
		out = append(out, fleetTrace{
			Fleet:  i,
			Events: telemetry.DecodeEvents(d.Tel.Snapshot(key)),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// Handler returns the service's HTTP surface: the portal API and operator
// endpoints behind admission control, plus /metrics and /debug/trace.
func (s *Service) Handler() http.Handler { return s.handler }

// SeedDemoApps publishes the reference apps so the store is browsable out
// of the box.
func (s *Service) SeedDemoApps() error {
	entries := []struct {
		pkg, desc, manifest string
	}{
		{apps.SurveyPackage, "autonomous aerial survey with lawnmower sweeps", `
<androne-manifest package="com.androne.survey">
  <uses-permission name="camera" type="waypoint"/>
  <uses-permission name="flight-control" type="waypoint"/>
  <argument name="survey-areas" type="polygon-list" required="true"/>
  <argument name="spacing-m" type="number" required="false"/>
  <argument name="use-mission" type="bool" required="false"/>
</androne-manifest>`},
		{apps.PhotoPackage, "aerial snapshots at a waypoint", `
<androne-manifest package="com.androne.photo">
  <uses-permission name="camera" type="waypoint"/>
  <argument name="shots" type="number" required="false"/>
</androne-manifest>`},
		{apps.TrafficWatchPackage, "continuous traffic filming between waypoints", `
<androne-manifest package="com.androne.trafficwatch">
  <uses-permission name="camera" type="continuous"/>
  <uses-permission name="gps" type="continuous"/>
</androne-manifest>`},
		{apps.RemoteControlPackage, "interactive drone control from a smartphone", `
<androne-manifest package="com.androne.remotecontrol">
  <uses-permission name="camera" type="waypoint"/>
  <uses-permission name="flight-control" type="waypoint"/>
</androne-manifest>`},
	}
	for _, e := range entries {
		m, err := sdk.ParseManifest([]byte(e.manifest))
		if err != nil {
			return err
		}
		if err := s.apps.Publish(cloud.StoreApp{
			Package: e.pkg, Description: e.desc, Manifest: m,
			APK: []byte("apk:" + e.pkg),
		}); err != nil {
			return err
		}
	}
	return nil
}

// AppStore exposes the app store for seeding.
func (s *Service) AppStore() *cloud.AppStore { return s.apps }

// Storage exposes user file storage.
func (s *Service) Storage() *cloud.Storage { return s.files }

// VDR exposes the virtual drone repository.
func (s *Service) VDR() *cloud.VDR { return s.vdr }

// Orders exposes the order book.
func (s *Service) Orders() *cloud.Orders { return s.orders }

// Fleet exposes the physical drones (for tests and tooling).
func (s *Service) Fleet() []*core.Drone { return s.fleet }

// BillFor returns the bill for a completed order.
func (s *Service) BillFor(orderID string) (energy.Bill, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bills[orderID]
	return b, ok
}

func taskFor(id string, d *core.Definition) planner.Task {
	return planner.Task{
		ID: id, Waypoints: d.Waypoints,
		EnergyJ: d.EnergyAllotted, DurationS: d.MaxDuration,
	}
}

// ProcessOrders moves pending orders to scheduled: it parses their
// definitions, creates virtual drones on the fleet (or restores them from
// the VDR for repeat orders), plans routes, and fills in each order's
// operating window and access info.
func (s *Service) ProcessOrders() (*planner.Plan, error) {
	pending := s.pendingOrders()
	if len(pending) == 0 {
		return nil, ErrNothingToFly
	}

	pcfg := planner.DefaultConfig(s.cfg.Base)
	pcfg.FleetSize = s.cfg.FleetSize
	// The prototype's memory supports at most three simultaneous virtual
	// drones per flight (§6.3).
	pcfg.MaxTasksPerRoute = 3

	var tasks []planner.Task
	for _, ord := range pending {
		def, err := core.ParseDefinition(ord.Definition)
		if err != nil {
			return nil, fmt.Errorf("service: order %s: %w", ord.ID, err)
		}
		def.Name = ord.Name
		if def.Owner == "" {
			def.Owner = ord.User
		}
		// Stage the definition; FlyScheduled instantiates it on whichever
		// drone its route lands on.
		s.mu.Lock()
		s.defs[def.Name] = def
		s.mu.Unlock()
		tasks = append(tasks, taskFor(def.Name, def))
	}

	plan, err := pcfg.Plan(tasks)
	if err != nil {
		return nil, err
	}
	for _, ord := range pending {
		ws, we, werr := plan.OperatingWindow(pcfg, ord.Name)
		_ = s.orders.Update(ord.ID, func(o *cloud.Order) {
			o.Status = cloud.OrderScheduled
			if werr == nil {
				o.WindowStartS, o.WindowEndS = ws, we
			}
			o.Access = cloud.AccessInfo{
				VFCAddr: "vfc://" + o.Name + ":5760",
				SSHAddr: "ssh://" + o.Name + ":22",
				VPNKey:  fmt.Sprintf("vpn-%s", o.ID),
			}
		})
	}
	return plan, nil
}

func (s *Service) pendingOrders() []cloud.Order {
	var out []cloud.Order
	for _, ord := range s.orders.List("") {
		if ord.Status == cloud.OrderPending {
			out = append(out, ord)
		}
	}
	return out
}

// FlyScheduled executes the plan across the fleet: each route flies on the
// drone the planner assigned it to, with virtual drones created on that
// drone (or restored from the VDR if they flew before — including on a
// different physical drone, the paper's migration path). Files are
// offloaded, virtual drones saved to the VDR, orders billed by metered
// energy plus storage, and marked completed or saved-for-resume. Flights
// run sequentially (the simulation is single-threaded); the fleet
// constraint shaped the routes.
func (s *Service) FlyScheduled(plan *planner.Plan) ([]*core.FlightReport, error) {
	if plan == nil || len(plan.Routes) == 0 {
		return nil, ErrNothingToFly
	}
	env := &core.CloudEnv{Storage: s.files, VDR: s.vdr}

	for _, ord := range s.orders.List("") {
		if ord.Status == cloud.OrderScheduled {
			_ = s.orders.Update(ord.ID, func(o *cloud.Order) { o.Status = cloud.OrderFlying })
		}
	}

	var reports []*core.FlightReport
	for i, route := range plan.Routes {
		drone := s.fleet[route.Drone%len(s.fleet)]
		for _, stop := range route.Stops {
			if _, err := drone.VDC.Get(stop.Task); err == nil {
				continue
			}
			if entry, err := s.vdr.Load(stop.Task); err == nil && !entry.Completed {
				if _, err := drone.VDC.Restore(entry); err != nil {
					return reports, fmt.Errorf("service: restoring %s: %w", stop.Task, err)
				}
				continue
			}
			s.mu.Lock()
			def := s.defs[stop.Task]
			s.mu.Unlock()
			if def == nil {
				return reports, fmt.Errorf("service: route %d references unknown task %q", i, stop.Task)
			}
			if _, err := drone.VDC.Create(def); err != nil {
				return reports, fmt.Errorf("service: creating %s: %w", stop.Task, err)
			}
		}
		report, err := drone.ExecuteRoute(route, env)
		if err != nil {
			return reports, fmt.Errorf("service: route %d: %w", i, err)
		}
		reports = append(reports, report)
	}

	// Settle orders: completion status and bills.
	byName := make(map[string]*core.VDReport)
	for _, rep := range reports {
		for name, vr := range rep.PerDrone {
			if agg, ok := byName[name]; ok {
				agg.WaypointsVisited += vr.WaypointsVisited
				agg.EnergyUsedJ += vr.EnergyUsedJ
				agg.TimeUsedS += vr.TimeUsedS
				agg.Files = append(agg.Files, vr.Files...)
				agg.Completed = vr.Completed
			} else {
				cp := *vr
				byName[name] = &cp
			}
		}
	}
	for _, ord := range s.orders.List("") {
		vr, ok := byName[ord.Name]
		if !ok {
			continue
		}
		status := cloud.OrderSaved
		if vr.Completed {
			status = cloud.OrderCompleted
		}
		bill := s.cfg.Rates.Compute(energy.Usage{
			EnergyJ:       vr.EnergyUsedJ,
			StorageBytes:  s.files.UsageBytes(ord.User),
			StorageMonths: 1,
		})
		s.mu.Lock()
		s.bills[ord.ID] = bill
		s.mu.Unlock()
		_ = s.orders.Update(ord.ID, func(o *cloud.Order) { o.Status = status })
	}
	return reports, nil
}

// Run is the whole service loop once: process pending orders and fly them.
func (s *Service) Run() ([]*core.FlightReport, error) {
	plan, err := s.ProcessOrders()
	if err != nil {
		return nil, err
	}
	return s.FlyScheduled(plan)
}

// OrderJSON is a convenience for tests and tools: place an order directly.
func (s *Service) OrderJSON(user, name string, def *core.Definition) (*cloud.Order, error) {
	raw, err := def.Encode()
	if err != nil {
		return nil, err
	}
	if err := core.ValidateDefinitionJSON(raw); err != nil {
		return nil, err
	}
	return s.orders.Create(user, cloud.SanitizeName(name), json.RawMessage(raw))
}
