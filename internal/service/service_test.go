package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"androne/internal/apps"
	"androne/internal/cloud"
	"androne/internal/core"
	"androne/internal/geo"
)

func defFor(owner, name string, n, e float64, appPkgs ...string) *core.Definition {
	return &core.Definition{
		Name: name, Owner: owner, MaxDuration: 120, EnergyAllotted: 20000,
		WaypointDevices: []string{"camera", "flight-control"},
		Apps:            appPkgs,
		AppArgs: map[string]json.RawMessage{
			apps.PhotoPackage: json.RawMessage(`{"shots": 2}`),
		},
		Waypoints: []geo.Waypoint{{
			Position:  geo.Position{LatLon: geo.OffsetNE(DefaultConfig().Base.LatLon, n, e), Alt: 15},
			MaxRadius: 40,
		}},
	}
}

func TestServiceEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = t.Name()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ordA, err := s.OrderJSON("alice", "photo-a", defFor("alice", "photo-a", 60, 0, apps.PhotoPackage))
	if err != nil {
		t.Fatal(err)
	}
	ordB, err := s.OrderJSON("bob", "photo-b", defFor("bob", "photo-b", -60, 50, apps.PhotoPackage))
	if err != nil {
		t.Fatal(err)
	}

	reports, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no flights")
	}

	for _, id := range []string{ordA.ID, ordB.ID} {
		got, err := s.Orders().Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != cloud.OrderCompleted {
			t.Fatalf("order %s status = %s", id, got.Status)
		}
		if got.Access.VFCAddr == "" || got.WindowStartS <= 0 {
			t.Fatalf("order %s missing access/window: %+v", id, got)
		}
		bill, ok := s.BillFor(id)
		if !ok || bill.Total() <= 0 {
			t.Fatalf("order %s bill = %+v, %v", id, bill, ok)
		}
	}
	// Files delivered per user.
	if len(s.Storage().List("alice")) != 2 || len(s.Storage().List("bob")) != 2 {
		t.Fatalf("files: alice %v, bob %v", s.Storage().List("alice"), s.Storage().List("bob"))
	}
	// VDR holds both completed drones.
	if entries := s.VDR().List(); len(entries) != 2 {
		t.Fatalf("VDR = %d entries", len(entries))
	}
}

func TestServiceViaHTTPPortal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = t.Name()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Order through the HTTP API, as a user would.
	def := defFor("carol", "", 70, -30, apps.PhotoPackage)
	raw, _ := def.Encode()
	body, _ := json.Marshal(map[string]any{
		"user": "carol", "name": "Carol Photo Run", "definition": json.RawMessage(raw),
	})
	resp, err := http.Post(srv.URL+"/api/orders", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ord cloud.Order
	if err := json.NewDecoder(resp.Body).Decode(&ord); err != nil {
		t.Fatal(err)
	}
	if ord.EstimatedCharge <= 0 {
		t.Fatalf("no estimate: %+v", ord)
	}

	// The service flies.
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	// The user polls their order and downloads files over HTTP.
	got, err := http.Get(srv.URL + "/api/orders/" + ord.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	var final cloud.Order
	if err := json.NewDecoder(got.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	if final.Status != cloud.OrderCompleted {
		t.Fatalf("status = %s", final.Status)
	}

	list, err := http.Get(srv.URL + "/api/files/carol")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var files []string
	if err := json.NewDecoder(list.Body).Decode(&files); err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files = %v", files)
	}
	dl, err := http.Get(srv.URL + "/api/files/carol" + files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Body.Close()
	if dl.StatusCode != http.StatusOK {
		t.Fatalf("download status = %d", dl.StatusCode)
	}
}

func TestServiceNothingToFly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = t.Name()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); !errors.Is(err, ErrNothingToFly) {
		t.Fatalf("err = %v", err)
	}
}

func TestServiceInterruptedOrderSavedAndResumed(t *testing.T) {
	// A virtual drone whose app never completes is interrupted when its
	// time allotment exhausts: its order is marked saved (resumable), and a
	// repeat order resumes it from the VDR.
	cfg := DefaultConfig()
	cfg.Seed = t.Name()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	def := defFor("dave", "slowpoke", 60, 0) // no apps: nothing ever completes
	def.MaxDuration = 3
	ord, err := s.OrderJSON("dave", "slowpoke", def)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Orders().Get(ord.ID)
	// All waypoints were visited (it got its dwell), so the drone actually
	// completes; to force a save, use two waypoints with a tiny energy
	// budget instead.
	_ = got

	def2 := defFor("dave", "slowpoke2", 60, 0)
	def2.Waypoints = append(def2.Waypoints, geo.Waypoint{
		Position:  geo.Position{LatLon: geo.OffsetNE(DefaultConfig().Base.LatLon, -80, 0), Alt: 15},
		MaxRadius: 40,
	})
	def2.EnergyAllotted = 170000 // force a battery split across two flights
	def2.MaxDuration = 400
	if _, err := s.OrderJSON("dave", "slowpoke2", def2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	entry, err := s.VDR().Load("slowpoke2")
	if err != nil {
		t.Fatal(err)
	}
	if !entry.Completed {
		t.Fatalf("multi-flight order did not complete: %+v", entry.Name)
	}
}

func TestServiceFleetOfTwo(t *testing.T) {
	// With two physical drones, the planner may spread orders across the
	// fleet; every order still completes and bills.
	cfg := DefaultConfig()
	cfg.FleetSize = 2
	cfg.Seed = t.Name()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Fleet()) != 2 {
		t.Fatalf("fleet = %d", len(s.Fleet()))
	}
	var ids []string
	for i := 0; i < 3; i++ {
		name := string(rune('a'+i)) + "-run"
		ord, err := s.OrderJSON("user"+name, name,
			defFor("user"+name, name, float64(60+40*i), float64(-30*i), apps.PhotoPackage))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ord.ID)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		got, err := s.Orders().Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != cloud.OrderCompleted {
			t.Fatalf("order %s = %s", id, got.Status)
		}
		if _, ok := s.BillFor(id); !ok {
			t.Fatalf("order %s unbilled", id)
		}
	}
}

func TestVirtualDroneMigratesBetweenPhysicalDrones(t *testing.T) {
	// A two-waypoint order whose dwell energy forces two flights, with a
	// fleet of two: the planner assigns the flights to different physical
	// drones, so the virtual drone is saved to the VDR by drone 0 and
	// restored on drone 1 — the paper's "easily moved as needed to
	// different physical hardware".
	cfg := DefaultConfig()
	cfg.FleetSize = 2
	cfg.Seed = t.Name()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	def := defFor("eve", "mover", 60, 0)
	def.Waypoints = append(def.Waypoints, geo.Waypoint{
		Position:  geo.Position{LatLon: geo.OffsetNE(DefaultConfig().Base.LatLon, -70, 30), Alt: 15},
		MaxRadius: 40,
	})
	def.EnergyAllotted = 170000
	def.MaxDuration = 400
	ord, err := s.OrderJSON("eve", "mover", def)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.ProcessOrders()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Routes) < 2 {
		t.Skipf("planner fit both waypoints in one flight (%d routes)", len(plan.Routes))
	}
	drones := map[int]bool{}
	for _, r := range plan.Routes {
		drones[r.Drone] = true
	}
	if len(drones) < 2 {
		t.Skipf("both flights landed on one drone: %v", drones)
	}
	if _, err := s.FlyScheduled(plan); err != nil {
		t.Fatal(err)
	}
	entry, err := s.VDR().Load("mover")
	if err != nil {
		t.Fatal(err)
	}
	if !entry.Completed {
		t.Fatal("migrated virtual drone did not complete")
	}
	got, _ := s.Orders().Get(ord.ID)
	if got.Status != cloud.OrderCompleted {
		t.Fatalf("order status = %s", got.Status)
	}
}

func TestServiceScaleSixTenants(t *testing.T) {
	// Scale: six tenants with mixed apps (photos, mission-mode survey,
	// continuous traffic watch) across a two-drone fleet, all in one
	// service run.
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := DefaultConfig()
	cfg.FleetSize = 2
	cfg.Seed = t.Name()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := cfg.Base

	var ids []string
	order := func(user string, def *core.Definition) {
		t.Helper()
		ord, err := s.OrderJSON(user, def.Name, def)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ord.ID)
	}

	for i := 0; i < 3; i++ {
		user := "photo" + string(rune('a'+i))
		def := defFor(user, user, float64(50+40*i), float64(-40*i), apps.PhotoPackage)
		order(user, def)
	}
	survey := &core.Definition{
		Name: "svy", Owner: "svyco", MaxDuration: 240, EnergyAllotted: 35000,
		WaypointDevices: []string{"camera", "flight-control"},
		Apps:            []string{apps.SurveyPackage},
		AppArgs: map[string]json.RawMessage{
			apps.SurveyPackage: json.RawMessage(`{"spacing-m": 35, "use-mission": true}`),
		},
		Waypoints: []geo.Waypoint{{
			Position:  geo.Position{LatLon: geo.OffsetNE(base.LatLon, -100, 80), Alt: 15},
			MaxRadius: 50,
		}},
	}
	order("svyco", survey)
	traffic := &core.Definition{
		Name: "trf", Owner: "newsco", MaxDuration: 240, EnergyAllotted: 30000,
		WaypointDevices:   []string{"flight-control"},
		ContinuousDevices: []string{"camera", "gps"},
		Apps:              []string{apps.TrafficWatchPackage},
		Waypoints: []geo.Waypoint{
			{Position: geo.Position{LatLon: geo.OffsetNE(base.LatLon, 30, 120), Alt: 15}, MaxRadius: 40},
			{Position: geo.Position{LatLon: geo.OffsetNE(base.LatLon, 150, 40), Alt: 15}, MaxRadius: 40},
		},
	}
	order("newsco", traffic)
	rc := defFor("pilot", "rcx", -60, -90, apps.RemoteControlPackage)
	order("pilot", rc)
	apps.RemoteControlFor("rcx") // created lazily at fly time; nil here is fine

	reports, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if !rep.ReturnedHome {
			t.Fatalf("flight %d stranded", i)
		}
		if !rep.AED.Pass {
			t.Fatalf("flight %d AED: %+v", i, rep.AED)
		}
	}
	completed := 0
	for _, id := range ids {
		ord, err := s.Orders().Get(id)
		if err != nil {
			t.Fatal(err)
		}
		switch ord.Status {
		case cloud.OrderCompleted:
			completed++
			if _, ok := s.BillFor(id); !ok {
				t.Fatalf("completed order %s unbilled", id)
			}
		case cloud.OrderSaved:
			// The remote-control tenant has no operator queueing commands,
			// so it idles until its allotment exhausts — saved, not
			// completed, is correct.
		default:
			t.Fatalf("order %s stuck at %s", id, ord.Status)
		}
	}
	if completed < 5 {
		t.Fatalf("completed = %d of %d", completed, len(ids))
	}
	// Every photo/survey/traffic tenant has deliverables.
	for _, user := range []string{"photoa", "photob", "photoc", "svyco", "newsco"} {
		if len(s.Storage().List(user)) == 0 {
			t.Fatalf("%s has no files", user)
		}
	}
}
