package planner

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"androne/internal/geo"
)

// genTasks builds a deterministic random instance around the test base.
func genTasks(r *rng, nTasks, maxWp int, orderedFrac float64) []Task {
	tasks := make([]Task, 0, nTasks)
	for i := 0; i < nTasks; i++ {
		nw := 1 + int(r.uniform()*float64(maxWp))
		if nw > maxWp {
			nw = maxWp
		}
		wps := make([]geo.Waypoint, nw)
		for j := range wps {
			wps[j] = wpAt(r.uniform()*1600-800, r.uniform()*1600-800)
		}
		tasks = append(tasks, Task{
			ID: fmt.Sprintf("t%03d", i), Waypoints: wps,
			EnergyJ:   2000 + r.uniform()*28000,
			DurationS: 30 + r.uniform()*240,
			Ordered:   r.uniform() < orderedFrac,
		})
	}
	return tasks
}

// loadKernel builds a problem + kernel seeded by greedy for the tasks.
func loadKernel(cfg Config, tasks []Task) (*problem, *kernel) {
	ordered := orderedSet(tasks)
	cfg.ordered = ordered
	stops := explode(tasks)
	prob := cfg.newProblem(stops, ordered)
	k := newKernel(prob)
	k.load(cfg.greedyOrder(stops))
	return prob, k
}

func TestKernelParityRandomMoves(t *testing.T) {
	// The incremental cost must equal the naive from-scratch cost
	// bit-for-bit after every move, across fleet sizes, ordering
	// constraints, and capacity caps.
	cases := []struct {
		name    string
		fleet   int
		cap     int
		ordered float64
	}{
		{"single-route", 1, 0, 0},
		{"fleet", 4, 0, 0},
		{"ordered", 3, 0, 0.5},
		{"capped", 3, 3, 0.3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(base)
			cfg.FleetSize = tc.fleet
			cfg.MaxTasksPerRoute = tc.cap
			cfg.Seed = "parity-" + tc.name
			tasks := genTasks(newRNG(tc.name), 30, 3, tc.ordered)
			if n, err := cfg.KernelParity(tasks, 2000); err != nil {
				t.Fatalf("after %d moves: %v", n, err)
			}
		})
	}
}

func TestKernelApplyUndoExact(t *testing.T) {
	// A rejected move must leave every aggregate exactly as it was: apply
	// followed by undo restores the cost bit-for-bit (and the naive
	// recomputation agrees).
	cfg := DefaultConfig(base)
	cfg.FleetSize = 3
	cfg.MaxTasksPerRoute = 3
	tasks := genTasks(newRNG("undo"), 24, 3, 0.4)
	_, k := loadKernel(cfg, tasks)
	r := newRNG("undo/moves")
	for i := 0; i < 3000; i++ {
		before := k.cost()
		m := k.apply(k.randomMove(r))
		k.undo(m)
		if after := k.cost(); after != before {
			t.Fatalf("move %d: cost %d -> %d after apply+undo", i, before, after)
		}
		// Drift the state with an accepted move so undo is exercised from
		// many configurations.
		k.apply(k.randomMove(r))
	}
	if got, want := k.cost(), k.recompute(); got != want {
		t.Fatalf("final incremental cost %d != naive %d", got, want)
	}
}

func TestKernelStepZeroAlloc(t *testing.T) {
	// The warm move loop is pinned at zero allocations per step.
	cfg := DefaultConfig(base)
	cfg.FleetSize = 3
	tasks := genTasks(newRNG("alloc"), 40, 3, 0.3)
	_, k := loadKernel(cfg, tasks)
	r := newRNG("alloc/run")
	for i := 0; i < 5000; i++ {
		k.step(r, 1e9)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			k.step(r, 1e9)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm move loop allocates %.2f times per 100 steps, want 0", allocs)
	}
}

func TestKernelAnnealNeverWorseThanSeed(t *testing.T) {
	// Property: anneal never returns a tour costlier than its input, and
	// the best snapshot really has the reported cost.
	for _, seed := range []string{"p1", "p2", "p3"} {
		cfg := DefaultConfig(base)
		cfg.FleetSize = 2
		tasks := genTasks(newRNG(seed), 25, 3, 0.3)
		prob, k := loadKernel(cfg, tasks)
		seedCost := k.cost()
		k.anneal(newRNG(seed+"/chain"), 4000)
		if k.bestCost > seedCost {
			t.Fatalf("seed %s: anneal best %d worse than input %d", seed, k.bestCost, seedCost)
		}
		// Reload the kernel from the best snapshot: its cost must equal
		// the reported bestCost bit-for-bit.
		routes := make([][]int32, prob.nRoutes)
		for ri := 0; ri < prob.nRoutes; ri++ {
			s := int32(prob.n + ri)
			for x := k.bestNext[s]; x != s; x = k.bestNext[x] {
				routes[ri] = append(routes[ri], x)
			}
		}
		best := k.bestCost
		k.load(routes)
		if k.cost() != best {
			t.Fatalf("seed %s: snapshot cost %d != reported best %d", seed, k.cost(), best)
		}
	}
}

func TestPlanRestartDeterminism(t *testing.T) {
	// The winning plan is bit-identical at any worker count.
	cfg := DefaultConfig(base)
	cfg.FleetSize = 3
	cfg.Restarts = 6
	cfg.Iterations = 3000
	tasks := genTasks(newRNG("det"), 30, 3, 0.3)

	cfg.Workers = 1
	serial, err := cfg.Plan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// At least 4 workers so the pool really interleaves on small hosts.
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	cfg.Workers = workers
	parallel, err := cfg.Plan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("plan differs between workers=1 and workers=%d", workers)
	}
	if err := serial.Validate(cfg, tasks); err != nil {
		t.Fatal(err)
	}
}

// splitByBatteryRef is the pre-incremental splitByBattery, kept verbatim as
// the reference: the incremental version must reproduce its output exactly.
func splitByBatteryRef(cfg Config, r Route, budget float64) []Route {
	if len(r.Stops) == 0 {
		return nil
	}
	var out []Route
	var cur []Stop
	for _, s := range r.Stops {
		trial := append(append([]Stop(nil), cur...), s)
		overBudget := cfg.routeEnergy(trial) > budget
		overCap := cfg.MaxTasksPerRoute > 0 && distinctTasks(trial) > cfg.MaxTasksPerRoute
		if (overBudget || overCap) && len(cur) > 0 {
			out = append(out, Route{Stops: cur})
			cur = []Stop{s}
			continue
		}
		cur = trial
	}
	if len(cur) > 0 {
		out = append(out, Route{Stops: cur})
	}
	return out
}

func TestSplitByBatteryMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		cap  int
		frac float64 // budget as a fraction of the route's total energy
	}{
		{"loose", 0, 1.5},
		{"tight", 0, 0.3},
		{"very-tight", 0, 0.12},
		{"capped", 2, 0.5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(base)
			cfg.MaxTasksPerRoute = tc.cap
			stops := explode(genTasks(newRNG("split-"+tc.name), 20, 3, 0))
			total := cfg.routeEnergy(stops)
			budget := total * tc.frac
			got := cfg.splitByBattery(Route{Stops: stops}, budget)
			want := splitByBatteryRef(cfg, Route{Stops: stops}, budget)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("incremental split differs from reference: %d vs %d flights", len(got), len(want))
			}
		})
	}
}

func TestGreedySeedQuality(t *testing.T) {
	// The nearest-neighbor seed must never cost more than a random-order
	// round-robin seed on the benchmark-style instances.
	for _, seed := range []string{"g1", "g2", "g3"} {
		cfg := DefaultConfig(base)
		cfg.FleetSize = 3
		stops := explode(genTasks(newRNG(seed), 40, 2, 0))
		cfg.ordered = map[string]bool{}

		greedyCost := cfg.cost(cfg.greedy(stops))

		// Random-order seed: shuffle, then deal round-robin.
		r := newRNG(seed + "/shuffle")
		perm := make([]int, len(stops))
		for i := range perm {
			perm[i] = i
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := kintn(r, i+1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		random := make([][]Stop, cfg.FleetSize)
		for i, pi := range perm {
			random[i%cfg.FleetSize] = append(random[i%cfg.FleetSize], stops[pi])
		}
		randomCost := cfg.cost(random)

		if greedyCost > randomCost {
			t.Fatalf("seed %s: greedy cost %.1f worse than random seed %.1f", seed, greedyCost, randomCost)
		}
	}
}

func TestPlanStopsReplansSubset(t *testing.T) {
	// PlanStops is the campaign re-planning entry point: planning a subset
	// of exploded stops must yield a plan covering exactly those stops.
	cfg := DefaultConfig(base)
	cfg.FleetSize = 2
	tasks := genTasks(newRNG("replan"), 10, 3, 0.3)
	stops := explode(tasks)
	subset := stops[len(stops)/2:]
	var orderedIDs []string
	for _, task := range tasks {
		if task.Ordered {
			orderedIDs = append(orderedIDs, task.ID)
		}
	}
	plan, err := cfg.PlanStops(append([]Stop(nil), subset...), orderedIDs)
	if err != nil {
		t.Fatal(err)
	}
	planned := 0
	for _, r := range plan.Routes {
		planned += len(r.Stops)
	}
	if planned != len(subset) {
		t.Fatalf("replanned %d stops, want %d", planned, len(subset))
	}
	// Ordered tasks keep ascending index order in the replanned remainder.
	ordered := make(map[string]bool)
	for _, id := range orderedIDs {
		ordered[id] = true
	}
	last := make(map[string]int)
	for _, r := range plan.Routes {
		for _, s := range r.Stops {
			if !ordered[s.Task] {
				continue
			}
			if prev, ok := last[s.Task]; ok && s.Index <= prev {
				t.Fatalf("ordered task %s replanned out of order (%d after %d)", s.Task, s.Index, prev)
			}
			last[s.Task] = s.Index
		}
	}
}
