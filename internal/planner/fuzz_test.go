package planner

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"androne/internal/geo"
)

// decodeTasks derives a bounded, always-well-formed task set from fuzz
// bytes: six bytes per task (waypoint count, position offsets, energy,
// duration, flags). IDs are unique by construction; energies run past the
// single-stop battery budget so the ErrInfeasible path is reachable.
func decodeTasks(data []byte) []Task {
	var tasks []Task
	for i := 0; i+6 <= len(data) && len(tasks) < 24; i += 6 {
		b := data[i : i+6]
		nw := 1 + int(b[0]%3)
		wps := make([]geo.Waypoint, nw)
		for j := range wps {
			wps[j] = wpAt(
				float64(int8(b[1]))*7+40*float64(j),
				float64(int8(b[2]))*7-25*float64(j),
			)
		}
		tasks = append(tasks, Task{
			ID:        fmt.Sprintf("t%02d", len(tasks)),
			Waypoints: wps,
			EnergyJ:   float64(b[3]) * 700,
			DurationS: float64(b[4]),
			Ordered:   b[5]&1 == 1,
		})
	}
	return tasks
}

// FuzzPlannerPlan checks the planner's total-function contract: arbitrary
// byte-derived instances must either plan successfully and pass Validate,
// or fail with a typed error — never panic — and the same seed must
// reproduce the plan bit-for-bit.
func FuzzPlannerPlan(f *testing.F) {
	f.Add([]byte{2, 16, 32, 40, 90, 1, 1, 224, 200, 30, 60, 0}, uint8(2), "androne")
	f.Add([]byte{0, 0, 0, 255, 0, 0}, uint8(1), "edge")
	f.Add([]byte{1, 127, 129, 60, 120, 1, 2, 50, 50, 20, 45, 0, 0, 10, 10, 10, 10, 1}, uint8(7), "mixed")
	f.Fuzz(func(t *testing.T, data []byte, fleet uint8, seed string) {
		tasks := decodeTasks(data)
		cfg := DefaultConfig(base)
		cfg.FleetSize = 1 + int(fleet%4)
		cfg.MaxTasksPerRoute = int(fleet % 5) // 0 = unlimited
		cfg.Iterations = 400
		cfg.Restarts = 2
		cfg.Workers = 2
		cfg.Seed = seed

		plan, err := cfg.Plan(tasks)
		if err != nil {
			if !errors.Is(err, ErrInfeasible) && !errors.Is(err, ErrNoFleet) && !errors.Is(err, ErrDuplicateTask) {
				t.Fatalf("untyped planner error: %v", err)
			}
			return
		}
		if err := plan.Validate(cfg, tasks); err != nil {
			t.Fatalf("plan fails its own validation: %v", err)
		}
		again, err := cfg.Plan(tasks)
		if err != nil {
			t.Fatalf("second plan errored: %v", err)
		}
		if !reflect.DeepEqual(plan, again) {
			t.Fatal("same seed produced different plans")
		}
	})
}
