package planner

import (
	"androne/internal/geo"
)

// legTable caches 3-D leg distances between planner nodes. Node ids 0..n-1
// are stops; id n is the base (all route sentinels collapse onto it, since
// every route starts and ends at base). Distances are computed lazily with
// geo.Distance3D the first time a pair is actually touched by a move, then
// reused.
//
// The cache is a performance device only: Distance3D is a pure function of
// the two positions, so a hit and a miss yield the bit-identical float64 —
// cache layout, eviction, and sharing can never change a plan.
type legTable struct {
	n   int            // base id; valid ids are 0..n
	pos []geo.Position // id -> position (pos[n] = base)

	// Small instances use a dense (n+1)² matrix with 0 as the "unset"
	// sentinel. A genuinely zero distance (two stops at the same position)
	// is simply recomputed on every lookup, which stays correct.
	dense []float64

	// Larger instances use a fixed-size open-addressing table; on probe
	// overflow the distance is recomputed without caching.
	keys []int64
	vals []float64
	mask int
}

const (
	// legDenseLimit bounds the dense matrix: (1024)² float64s is 8 MiB.
	legDenseLimit = 1024
	// legProbeMax bounds open-addressing probes before falling back to a
	// direct computation.
	legProbeMax = 16
	// legProbeEntries caps the probe table size (1<<20 entries = 16 MiB).
	legProbeEntries = 1 << 20
)

func newLegTable(stops []Stop, base geo.Position) *legTable {
	t := &legTable{n: len(stops)}
	t.pos = make([]geo.Position, t.n+1)
	for i, s := range stops {
		t.pos[i] = s.Waypoint.Position
	}
	t.pos[t.n] = base
	if t.n+1 <= legDenseLimit {
		t.dense = make([]float64, (t.n+1)*(t.n+1))
		return t
	}
	want := (t.n + 1) * 64
	if want > legProbeEntries {
		want = legProbeEntries
	}
	size := 1
	for size < want {
		size <<= 1
	}
	t.keys = make([]int64, size)
	t.vals = make([]float64, size)
	t.mask = size - 1
	return t
}

// dist returns the 3-D distance between node ids i and j.
func (t *legTable) dist(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	if t.dense != nil {
		k := i*(t.n+1) + j
		if d := t.dense[k]; d != 0 {
			return d
		}
		d := geo.Distance3D(t.pos[i], t.pos[j])
		t.dense[k] = d
		return d
	}
	key := int64(i)*int64(t.n+1) + int64(j) + 1 // +1 keeps 0 as "empty"
	h := int(splitmix64(uint64(key))) & t.mask
	for probe := 0; probe < legProbeMax; probe++ {
		switch t.keys[h] {
		case key:
			return t.vals[h]
		case 0:
			d := geo.Distance3D(t.pos[i], t.pos[j])
			t.keys[h] = key
			t.vals[h] = d
			return d
		}
		h = (h + 1) & t.mask
	}
	return geo.Distance3D(t.pos[i], t.pos[j])
}

// splitmix64 is the SplitMix64 finalizer, used to spread leg keys over the
// probe table deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
