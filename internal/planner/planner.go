// Package planner implements AnDrone's cloud flight planner: it allocates
// virtual drones to physical drone flights and orders their waypoints, based
// on the multirotor energy consumption model and drone-delivery vehicle
// routing algorithm of Dorling et al. (simulated annealing over routes,
// minimizing completion time subject to a fleet size constraint). Virtual
// drone waypoints play the role of delivery locations, with the energy
// allotted to each virtual drone at its waypoints added to the route's
// energy cost.
//
// Faithful to the paper, the algorithm treats all waypoints independently:
// users may not prescribe a traversal order, and the planner may visit
// waypoints of one virtual drone in the middle of another's set.
package planner

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"androne/internal/energy"
	"androne/internal/geo"
)

// Task is one virtual drone's flight request.
type Task struct {
	// ID is the virtual drone name.
	ID string
	// Waypoints the virtual drone must visit.
	Waypoints []geo.Waypoint
	// EnergyJ is the energy allotted for the virtual drone's operation at
	// its waypoints (energy-allotted in the definition).
	EnergyJ float64
	// DurationS is the maximum dwell across waypoints (max-duration).
	DurationS float64
	// Ordered requires the task's waypoints to be visited in declaration
	// order on a single flight. The paper's base algorithm treats all
	// waypoints independently and calls ordering support future work; this
	// implements that extension via annealing penalties plus a repair pass.
	Ordered bool
}

// Stop is one waypoint visit in a route.
type Stop struct {
	Task     string
	Index    int // waypoint index within the task
	Waypoint geo.Waypoint
	// DwellJ and DwellS are the energy/time reserved for the virtual drone
	// at this stop.
	DwellJ float64
	DwellS float64
}

// Route is the ordered plan for one physical drone flight, starting and
// ending at base.
type Route struct {
	Drone     int
	Stops     []Stop
	EnergyJ   float64 // total estimated energy including dwells
	DurationS float64 // total estimated duration including dwells
}

// Plan is the planner's output.
type Plan struct {
	Base   geo.Position
	Routes []Route
}

// TotalDurationS returns the summed duration of all routes (the Dorling
// objective minimizes total delivery time).
func (p *Plan) TotalDurationS() float64 {
	var total float64
	for _, r := range p.Routes {
		total += r.DurationS
	}
	return total
}

// TotalEnergyJ returns the summed energy of all routes.
func (p *Plan) TotalEnergyJ() float64 {
	var total float64
	for _, r := range p.Routes {
		total += r.EnergyJ
	}
	return total
}

// Config parameterizes the planner.
type Config struct {
	// Base is the launch/landing location.
	Base geo.Position
	// FleetSize is the number of physical drones (the constraint).
	FleetSize int
	// BatteryJ is usable energy per drone per flight.
	BatteryJ float64
	// ReserveFrac is the battery fraction held in reserve (e.g. 0.2).
	ReserveFrac float64
	// CruiseMS is planning cruise speed.
	CruiseMS float64
	// Model is the energy model.
	Model energy.Multirotor
	// MaxTasksPerRoute caps how many distinct virtual drones share one
	// flight (0 = unlimited). The prototype's memory supports three
	// simultaneous virtual drones, so its planner uses 3.
	MaxTasksPerRoute int
	// Iterations bounds each annealing chain (0 = default).
	Iterations int
	// Seed makes planning deterministic.
	Seed string
	// Restarts is the number of independent annealing chains; the best
	// result wins (0 = single chain). Chain i derives its own RNG from
	// Seed as "<Seed>/restart-%02d".
	Restarts int
	// Workers bounds how many restart chains run concurrently (0 = serial).
	// The winning plan is bit-identical at any worker count: chains are
	// seeded independently and the winner is picked by (cost, restart
	// index), never by completion order.
	Workers int

	// ordered is populated from the tasks at Plan time.
	ordered map[string]bool
}

// DefaultConfig returns a config for the prototype drone.
func DefaultConfig(base geo.Position) Config {
	return Config{
		Base:        base,
		FleetSize:   1,
		BatteryJ:    199800,
		ReserveFrac: 0.25,
		CruiseMS:    8,
		Model:       energy.DefaultMultirotor(),
		Iterations:  20000,
		Seed:        "androne",
		Restarts:    4,
	}
}

// Errors.
var (
	ErrNoFleet       = errors.New("planner: fleet size must be positive")
	ErrInfeasible    = errors.New("planner: no feasible plan within battery limits")
	ErrDuplicateTask = errors.New("planner: duplicate task id")
)

// Plan computes routes for the tasks.
//
//vet:detpath plans must be bit-identical across runs and worker counts
func (cfg Config) Plan(tasks []Task) (*Plan, error) {
	if cfg.FleetSize <= 0 {
		return nil, ErrNoFleet
	}
	seen := make(map[string]bool, len(tasks))
	var orderedIDs []string
	for _, t := range tasks {
		if seen[t.ID] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateTask, t.ID)
		}
		seen[t.ID] = true
		if t.Ordered {
			orderedIDs = append(orderedIDs, t.ID)
		}
	}
	return cfg.PlanStops(explode(tasks), orderedIDs)
}

// PlanStops plans a raw stop set — the entry point for re-planning the
// unflown remainder of a delivery campaign, where tasks are already
// exploded into stops. orderedIDs lists tasks whose remaining waypoints
// must still be visited in ascending index order.
//
//vet:detpath plans must be bit-identical across runs and worker counts
func (cfg Config) PlanStops(stops []Stop, orderedIDs []string) (*Plan, error) {
	if cfg.FleetSize <= 0 {
		return nil, ErrNoFleet
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20000
	}
	if len(stops) == 0 {
		return &Plan{Base: cfg.Base}, nil
	}
	// Any single stop that cannot be served on a full battery is infeasible.
	budget := cfg.BatteryJ * (1 - cfg.ReserveFrac)
	for _, s := range stops {
		if cfg.routeEnergy([]Stop{s}) > budget {
			return nil, fmt.Errorf("%w: stop %s/%d needs %.0f J > budget %.0f J",
				ErrInfeasible, s.Task, s.Index, cfg.routeEnergy([]Stop{s}), budget)
		}
	}

	ordered := make(map[string]bool, len(orderedIDs))
	for _, id := range orderedIDs {
		ordered[id] = true
	}
	cfg.ordered = ordered

	prob := cfg.newProblem(stops, ordered)
	seed := cfg.greedyOrder(stops)
	win := cfg.annealRestarts(prob, seed)
	routes := extractRoutes(prob, win)
	repairOrder(routes, ordered)

	// Post-process: split any route that exceeds the battery budget into
	// multiple flights by the same drone (appended as extra routes).
	var final []Route
	for _, r := range routes {
		final = append(final, cfg.splitByBattery(Route{Stops: r}, budget)...)
	}
	for i := range final {
		final[i].Drone = i % cfg.FleetSize
		final[i].EnergyJ = cfg.routeEnergy(final[i].Stops)
		final[i].DurationS = cfg.routeDuration(final[i].Stops)
	}
	return &Plan{Base: cfg.Base, Routes: final}, nil
}

// annealRestarts runs the configured number of independent annealing chains
// over a bounded worker pool and returns the winning tour (the next-links
// array of the best chain). Each chain depends only on its own derived seed
// and the shared immutable problem, and the winner is selected by (cost,
// restart index), so the result does not depend on how many workers ran the
// chains or in what order they finished.
func (cfg Config) annealRestarts(prob *problem, seed [][]int32) []int32 {
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > restarts {
		workers = restarts
	}
	type result struct {
		cost int64
		next []int32
	}
	results := make([]result, restarts)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One kernel (and leg-table) per worker, reused across the
			// restarts it draws from the queue.
			k := newKernel(prob)
			for ri := range idx {
				k.load(seed)
				k.anneal(newRNG(fmt.Sprintf("%s/restart-%02d", cfg.Seed, ri)), cfg.Iterations)
				results[ri] = result{cost: k.bestCost, next: append([]int32(nil), k.bestNext...)}
			}
		}()
	}
	for ri := 0; ri < restarts; ri++ {
		idx <- ri
	}
	close(idx)
	wg.Wait()
	best := 0
	for ri := 1; ri < restarts; ri++ {
		if results[ri].cost < results[best].cost {
			best = ri
		}
	}
	return results[best].next
}

// explode flattens tasks into independent stops with dwell costs split
// evenly across each task's waypoints.
func explode(tasks []Task) []Stop {
	var out []Stop
	for _, t := range tasks {
		if len(t.Waypoints) == 0 {
			continue
		}
		n := float64(len(t.Waypoints))
		for i, wp := range t.Waypoints {
			out = append(out, Stop{
				Task: t.ID, Index: i, Waypoint: wp,
				DwellJ: t.EnergyJ / n, DwellS: t.DurationS / n,
			})
		}
	}
	return out
}

// routeEnergy estimates the energy for base -> stops... -> base.
func (cfg Config) routeEnergy(stops []Stop) float64 {
	if len(stops) == 0 {
		return 0
	}
	var total float64
	prev := cfg.Base
	for _, s := range stops {
		total += cfg.Model.LegEnergyJ(geo.Distance3D(prev, s.Waypoint.Position), cfg.CruiseMS, 0)
		total += s.DwellJ
		prev = s.Waypoint.Position
	}
	total += cfg.Model.LegEnergyJ(geo.Distance3D(prev, cfg.Base), cfg.CruiseMS, 0)
	return total
}

// routeDuration estimates the duration for base -> stops... -> base.
func (cfg Config) routeDuration(stops []Stop) float64 {
	if len(stops) == 0 {
		return 0
	}
	var total float64
	prev := cfg.Base
	for _, s := range stops {
		total += geo.Distance3D(prev, s.Waypoint.Position) / cfg.CruiseMS
		total += s.DwellS
		prev = s.Waypoint.Position
	}
	total += geo.Distance3D(prev, cfg.Base) / cfg.CruiseMS
	return total
}

// greedy builds initial routes: nearest-neighbor assignment over the fleet.
func (cfg Config) greedy(stops []Stop) [][]Stop {
	order := cfg.greedyOrder(stops)
	routes := make([][]Stop, len(order))
	for r, ids := range order {
		for _, i := range ids {
			routes[r] = append(routes[r], stops[i])
		}
	}
	return routes
}

// greedyOrder is the cached-distance nearest-neighbor seed: every stop is
// projected once onto the base's local tangent plane, candidates are ranked
// by squared Euclidean distance, and removal from the remaining set is a
// swap with the tail — the O(N²) haversine evaluations of the old seed
// become N projections plus cheap float compares.
func (cfg Config) greedyOrder(stops []Stop) [][]int32 {
	n := len(stops)
	north := make([]float64, n)
	east := make([]float64, n)
	alt := make([]float64, n)
	for i, s := range stops {
		north[i], east[i] = geo.NE(cfg.Base.LatLon, s.Waypoint.Position.LatLon)
		alt[i] = s.Waypoint.Position.Alt - cfg.Base.Alt
	}
	routes := make([][]int32, cfg.FleetSize)
	cn := make([]float64, cfg.FleetSize) // per-drone cursor, base = origin
	ce := make([]float64, cfg.FleetSize)
	ca := make([]float64, cfg.FleetSize)
	remaining := make([]int32, n)
	for i := range remaining {
		remaining[i] = int32(i)
	}
	drone := 0
	for len(remaining) > 0 {
		// Pick the unvisited stop closest to this drone's current position.
		best, bestD := 0, math.Inf(1)
		for i, id := range remaining {
			dn := north[id] - cn[drone]
			de := east[id] - ce[drone]
			da := alt[id] - ca[drone]
			if d := dn*dn + de*de + da*da; d < bestD {
				best, bestD = i, d
			}
		}
		id := remaining[best]
		remaining[best] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		routes[drone] = append(routes[drone], id)
		cn[drone], ce[drone], ca[drone] = north[id], east[id], alt[id]
		drone = (drone + 1) % cfg.FleetSize
	}
	return routes
}

// cost is the annealing objective: total duration plus large penalties for
// battery violations and (for ordered tasks) order violations.
func (cfg Config) cost(routes [][]Stop) float64 {
	budget := cfg.BatteryJ * (1 - cfg.ReserveFrac)
	var total float64
	for _, r := range routes {
		total += cfg.routeDuration(r)
		if e := cfg.routeEnergy(r); e > budget {
			total += (e - budget) * 10 // heavy penalty per excess joule
		}
	}
	total += 1e5 * float64(orderViolations(routes, cfg.ordered))
	if cfg.MaxTasksPerRoute > 0 {
		for _, r := range routes {
			if n := distinctTasks(r); n > cfg.MaxTasksPerRoute {
				total += 1e5 * float64(n-cfg.MaxTasksPerRoute)
			}
		}
	}
	return total
}

func distinctTasks(stops []Stop) int {
	seen := make(map[string]bool, len(stops))
	for _, s := range stops {
		seen[s.Task] = true
	}
	return len(seen)
}

// orderViolations counts ordering constraint breaks: inversions of an
// ordered task within a route, plus splits of an ordered task across routes.
func orderViolations(routes [][]Stop, ordered map[string]bool) int {
	if len(ordered) == 0 {
		return 0
	}
	violations := 0
	routeOf := make(map[string]int)
	for ri, r := range routes {
		lastIdx := make(map[string]int)
		for _, s := range r {
			if !ordered[s.Task] {
				continue
			}
			if prevRoute, seen := routeOf[s.Task]; seen && prevRoute != ri {
				violations++ // split across routes
			}
			routeOf[s.Task] = ri
			if prev, seen := lastIdx[s.Task]; seen && s.Index < prev {
				violations++ // inversion
			}
			lastIdx[s.Task] = s.Index
		}
	}
	return violations
}

// repairOrder rewrites each ordered task's stops into ascending waypoint
// order across the whole plan — slots are collected route-major, the task's
// stops are sorted by index, and written back into the same slots — so the
// final route sequence always complies even if annealing left an inversion
// or scattered an ordered task across routes. (Tasks are iterated in
// first-seen order, not map order, to keep plans deterministic.)
func repairOrder(routes [][]Stop, ordered map[string]bool) {
	if len(ordered) == 0 {
		return
	}
	type slotList struct {
		stops []Stop
		slots [][2]int // (route, position) pairs in route-major order
	}
	var firstSeen []string
	byTask := make(map[string]*slotList)
	for ri, r := range routes {
		for i, s := range r {
			if !ordered[s.Task] {
				continue
			}
			sl := byTask[s.Task]
			if sl == nil {
				sl = &slotList{}
				byTask[s.Task] = sl
				firstSeen = append(firstSeen, s.Task)
			}
			sl.stops = append(sl.stops, s)
			sl.slots = append(sl.slots, [2]int{ri, i})
		}
	}
	for _, task := range firstSeen {
		sl := byTask[task]
		sort.Slice(sl.stops, func(a, b int) bool { return sl.stops[a].Index < sl.stops[b].Index })
		for k, pos := range sl.slots {
			routes[pos[0]][pos[1]] = sl.stops[k]
		}
	}
}

// baselineAnneal is the pre-kernel annealer, retained as the benchmark
// baseline: every iteration clones all routes and recomputes the full O(N)
// float objective. Plan no longer uses it — the incremental integer kernel
// in kernel.go replaced it — but androne-bench times it against the kernel
// to quantify the rewrite.
func (cfg Config) baselineAnneal(routes [][]Stop) [][]Stop {
	r := newRNG(cfg.Seed)
	cur := cloneRoutes(routes)
	best := cloneRoutes(routes)
	curCost := cfg.cost(cur)
	bestCost := curCost

	temp := math.Max(curCost*0.1, 1)
	cooling := math.Pow(0.001/temp, 1/float64(cfg.Iterations))
	for i := 0; i < cfg.Iterations; i++ {
		cand := cloneRoutes(cur)
		if !mutate(cand, r) {
			break // nothing to mutate
		}
		c := cfg.cost(cand)
		if c < curCost || r.uniform() < math.Exp((curCost-c)/temp) {
			cur, curCost = cand, c
			if c < bestCost {
				best, bestCost = cloneRoutes(cand), c
			}
		}
		temp *= cooling
	}
	return best
}

// mutate applies a random relocate or swap move in place. Returns false if
// there are no stops.
func mutate(routes [][]Stop, r *rng) bool {
	var total int
	for _, rt := range routes {
		total += len(rt)
	}
	if total == 0 {
		return false
	}
	if total == 1 && len(routes) == 1 {
		return false
	}
	if r.uniform() < 0.5 && total >= 2 {
		// Swap two stops (possibly across routes).
		i1, j1 := pick(routes, r)
		i2, j2 := pick(routes, r)
		routes[i1][j1], routes[i2][j2] = routes[i2][j2], routes[i1][j1]
		return true
	}
	// Relocate a stop to a random position in a random route.
	i, j := pick(routes, r)
	s := routes[i][j]
	routes[i] = append(routes[i][:j], routes[i][j+1:]...)
	k := int(r.uniform() * float64(len(routes)))
	if k >= len(routes) {
		k = len(routes) - 1
	}
	pos := int(r.uniform() * float64(len(routes[k])+1))
	if pos > len(routes[k]) {
		pos = len(routes[k])
	}
	routes[k] = append(routes[k][:pos], append([]Stop{s}, routes[k][pos:]...)...)
	return true
}

// pick selects a random (route, index) among non-empty routes.
func pick(routes [][]Stop, r *rng) (int, int) {
	for {
		i := int(r.uniform() * float64(len(routes)))
		if i >= len(routes) {
			i = len(routes) - 1
		}
		if len(routes[i]) == 0 {
			continue
		}
		j := int(r.uniform() * float64(len(routes[i])))
		if j >= len(routes[i]) {
			j = len(routes[i]) - 1
		}
		return i, j
	}
}

// splitByBattery splits a route into feasible flights greedily: each flight
// respects the battery budget and, when configured, the per-flight virtual
// drone capacity. The prefix energy of the flight under construction is
// accumulated incrementally — in the exact left-to-right addition order
// routeEnergy uses, so every trial energy (and therefore every split
// decision) is bit-identical to re-summing the whole prefix — turning the
// old O(N²) re-evaluation into O(N) total work.
func (cfg Config) splitByBattery(r Route, budget float64) []Route {
	if len(r.Stops) == 0 {
		return nil
	}
	var out []Route
	var cur []Stop
	var prefix float64 // base -> ... -> last, dwells included, return leg excluded
	var last geo.Position
	var tasks []string // distinct tasks in cur; tracked only when capped
	hasTask := func(t string) bool {
		for _, x := range tasks {
			if x == t {
				return true
			}
		}
		return false
	}
	start := func(s Stop) {
		cur = []Stop{s}
		prefix = cfg.Model.LegEnergyJ(geo.Distance3D(cfg.Base, s.Waypoint.Position), cfg.CruiseMS, 0) + s.DwellJ
		last = s.Waypoint.Position
		tasks = tasks[:0]
		if cfg.MaxTasksPerRoute > 0 {
			tasks = append(tasks, s.Task)
		}
	}
	for _, s := range r.Stops {
		if len(cur) == 0 {
			start(s)
			continue
		}
		legIn := cfg.Model.LegEnergyJ(geo.Distance3D(last, s.Waypoint.Position), cfg.CruiseMS, 0)
		legBack := cfg.Model.LegEnergyJ(geo.Distance3D(s.Waypoint.Position, cfg.Base), cfg.CruiseMS, 0)
		overBudget := prefix+legIn+s.DwellJ+legBack > budget
		newTask := cfg.MaxTasksPerRoute > 0 && !hasTask(s.Task)
		overCap := newTask && len(tasks)+1 > cfg.MaxTasksPerRoute
		if overBudget || overCap {
			out = append(out, Route{Stops: cur})
			start(s)
			continue
		}
		cur = append(cur, s)
		prefix += legIn
		prefix += s.DwellJ
		last = s.Waypoint.Position
		if newTask {
			tasks = append(tasks, s.Task)
		}
	}
	if len(cur) > 0 {
		out = append(out, Route{Stops: cur})
	}
	return out
}

func cloneRoutes(routes [][]Stop) [][]Stop {
	out := make([][]Stop, len(routes))
	for i, r := range routes {
		out[i] = append([]Stop(nil), r...)
	}
	return out
}

// OperatingWindow estimates when a task's first waypoint will be reached
// within a plan, as offsets in seconds from flight start — the estimate the
// portal shows users so they can take over control on time.
func (p *Plan) OperatingWindow(cfg Config, task string) (startS, endS float64, err error) {
	for _, r := range p.Routes {
		var t float64
		prev := p.Base
		for _, s := range r.Stops {
			t += geo.Distance3D(prev, s.Waypoint.Position) / cfg.CruiseMS
			if s.Task == task {
				return t, t + s.DwellS, nil
			}
			t += s.DwellS
			prev = s.Waypoint.Position
		}
	}
	return 0, 0, fmt.Errorf("planner: task %q not in plan", task)
}

// Validate checks plan invariants: every task waypoint appears exactly once
// and every route respects the battery budget.
func (p *Plan) Validate(cfg Config, tasks []Task) error {
	want := make(map[string]bool)
	for _, t := range tasks {
		for i := range t.Waypoints {
			want[fmt.Sprintf("%s/%d", t.ID, i)] = true
		}
	}
	budget := cfg.BatteryJ * (1 - cfg.ReserveFrac)
	for _, r := range p.Routes {
		if e := cfg.routeEnergy(r.Stops); e > budget+1e-6 {
			return fmt.Errorf("planner: route %d energy %.0f exceeds budget %.0f", r.Drone, e, budget)
		}
		if cfg.MaxTasksPerRoute > 0 {
			if n := distinctTasks(r.Stops); n > cfg.MaxTasksPerRoute {
				return fmt.Errorf("planner: route %d carries %d virtual drones, cap %d",
					r.Drone, n, cfg.MaxTasksPerRoute)
			}
		}
		for _, s := range r.Stops {
			key := fmt.Sprintf("%s/%d", s.Task, s.Index)
			if !want[key] {
				return fmt.Errorf("planner: stop %s duplicated or unknown", key)
			}
			delete(want, key)
		}
	}
	if len(want) > 0 {
		return fmt.Errorf("planner: %d waypoints unplanned", len(want))
	}
	// Ordered tasks must be visited in ascending index order across the
	// plan's route sequence.
	lastIdx := make(map[string]int)
	for _, t := range tasks {
		if t.Ordered {
			lastIdx[t.ID] = -1
		}
	}
	for _, r := range p.Routes {
		for _, s := range r.Stops {
			prev, tracked := lastIdx[s.Task]
			if !tracked {
				continue
			}
			if s.Index <= prev {
				return fmt.Errorf("planner: ordered task %s visited out of order (%d after %d)",
					s.Task, s.Index, prev)
			}
			lastIdx[s.Task] = s.Index
		}
	}
	return nil
}

// --------------------------------------------------------------------------

type rng struct{ state uint64 }

func newRNG(seed string) *rng {
	h := fnv.New64a()
	h.Write([]byte(seed))
	s := h.Sum64()
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{state: s}
}

func (r *rng) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *rng) uniform() float64 { return (float64(r.next()>>11) + 0.5) / (1 << 53) }
