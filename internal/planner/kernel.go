// The incremental annealing kernel. The annealing objective is evaluated in
// integer cost units (1 unit = 1 µs of duration = 1 µJ of energy): integer
// addition is exact and associative, so a move's delta applied to running
// aggregates leaves exactly the cost a from-scratch recomputation would
// produce — the incremental kernel and the naive kernel agree bit-for-bit on
// any move sequence, which recompute() and the parity gates verify.
//
// Routes live in one doubly-linked list per fleet drone: nodes 0..n-1 are
// stops, nodes n..n+R-1 are route sentinels (base). A swap or relocate move
// touches at most eight legs, so evaluation is O(1) leg-delta arithmetic
// over the lazy leg table, and a rejected move is undone in place. The warm
// move loop (step) performs no allocation and takes no locks.

package planner

import (
	"math"

	"androne/internal/geo"
)

const (
	// unitScale converts planner seconds/joules into kernel cost units.
	unitScale = 1e6
	// orderPenaltyUnits mirrors the float objective's 1e5-second penalty
	// per ordering/capacity violation.
	orderPenaltyUnits = int64(1e5 * unitScale)
	// batteryPenaltyFactor mirrors the float objective's 10x penalty per
	// joule of battery-budget excess.
	batteryPenaltyFactor = 10
)

func toUnits(x float64) int64 { return int64(x*unitScale + 0.5) }

// problem is the immutable planning instance shared by all restart chains:
// stop metadata flattened into dense arrays, integer dwell costs, and the
// lazily-filled leg table factory inputs.
type problem struct {
	stops   []Stop
	n       int // stop count; node ids n..n+nRoutes-1 are route sentinels
	nRoutes int
	nTasks  int

	task     []int32 // stop -> dense task index
	wpIdx    []int32 // stop -> waypoint index within its task
	orderedT []bool  // task -> must be visited in index order
	dwellDur []int64 // stop dwell time, units
	dwellEn  []int64 // stop dwell energy, units

	durPerM    float64 // cruise seconds per meter
	enPerM     float64 // cruise joules per meter (LegEnergyJ is linear in distance)
	budget     int64   // per-flight energy budget, units
	cap        int32   // MaxTasksPerRoute (0 = unlimited)
	anyOrdered bool
	base       geo.Position
}

// newProblem flattens the stops into the kernel's dense representation.
func (cfg *Config) newProblem(stops []Stop, ordered map[string]bool) *problem {
	n := len(stops)
	p := &problem{
		stops: stops, n: n, nRoutes: cfg.FleetSize, base: cfg.Base,
		task:     make([]int32, n),
		wpIdx:    make([]int32, n),
		dwellDur: make([]int64, n),
		dwellEn:  make([]int64, n),
		durPerM:  1 / cfg.CruiseMS,
		enPerM:   cfg.Model.LegEnergyJ(1, cfg.CruiseMS, 0),
		budget:   toUnits(cfg.BatteryJ * (1 - cfg.ReserveFrac)),
		cap:      int32(cfg.MaxTasksPerRoute),
	}
	ids := make(map[string]int32, n)
	for i, s := range stops {
		id, ok := ids[s.Task]
		if !ok {
			id = int32(len(p.orderedT))
			ids[s.Task] = id
			p.orderedT = append(p.orderedT, ordered[s.Task])
			if ordered[s.Task] {
				p.anyOrdered = true
			}
		}
		p.task[i] = id
		p.wpIdx[i] = int32(s.Index)
		p.dwellDur[i] = toUnits(s.DwellS)
		p.dwellEn[i] = toUnits(s.DwellJ)
	}
	p.nTasks = len(p.orderedT)
	return p
}

// kernel is one chain's mutable annealing state. A kernel is confined to a
// single worker goroutine; workers reuse one kernel (and its leg table)
// across the restarts they execute.
type kernel struct {
	p      *problem
	legs   *legTable
	nNodes int

	next, prev []int32 // doubly-linked tour per route
	routeOf    []int32 // node -> route index

	// Incremental aggregates. durTot/batPen are sums over routes; the
	// violation counters weight into the cost via orderPenaltyUnits.
	routeDur   []int64 // per route, includes dwells
	routeEn    []int64
	durTot     int64
	batPen     int64
	trc        []int32 // task-route count, indexed task*nRoutes+route
	distinct   []int32 // route -> distinct task count
	taskRoutes []int32 // ordered task -> number of routes holding it
	capOver    int64   // Σ max(0, distinct[r] - cap)
	splitViol  int64   // Σ max(0, taskRoutes[t] - 1), ordered tasks only
	adjViol    int64   // adjacent-edge order inversions

	bestNext []int32
	bestCost int64
}

func newKernel(p *problem) *kernel {
	nn := p.n + p.nRoutes
	return &kernel{
		p: p, legs: newLegTable(p.stops, p.base), nNodes: nn,
		next: make([]int32, nn), prev: make([]int32, nn),
		routeOf:  make([]int32, nn),
		routeDur: make([]int64, p.nRoutes), routeEn: make([]int64, p.nRoutes),
		trc:      make([]int32, p.nTasks*p.nRoutes),
		distinct: make([]int32, p.nRoutes),
		taskRoutes: make([]int32, p.nTasks),
		bestNext: make([]int32, nn),
	}
}

// id maps a node to its leg-table id (all sentinels collapse onto base).
func (k *kernel) id(x int32) int {
	if int(x) >= k.p.n {
		return k.p.n
	}
	return int(x)
}

// leg returns the (duration, energy) cost in units of the edge i -> j.
func (k *kernel) leg(i, j int32) (dur, en int64) {
	d := k.legs.dist(k.id(i), k.id(j))
	return int64(d*k.p.durPerM*unitScale + 0.5), int64(d*k.p.enPerM*unitScale + 0.5)
}

func penalty(en, budget int64) int64 {
	if en > budget {
		return batteryPenaltyFactor * (en - budget)
	}
	return 0
}

// isViol reports whether the edge u -> v breaks an ordering constraint:
// both are stops of the same ordered task with the second waypoint index
// below the first.
func (k *kernel) isViol(u, v int32) bool {
	p := k.p
	if int(u) >= p.n || int(v) >= p.n {
		return false
	}
	t := p.task[u]
	return t == p.task[v] && p.orderedT[t] && p.wpIdx[v] < p.wpIdx[u]
}

// cost is the current objective in units: total duration, battery-excess
// penalty, and the ordering/split/capacity violation penalties.
func (k *kernel) cost() int64 {
	return k.durTot + k.batPen + (k.adjViol+k.splitViol+k.capOver)*orderPenaltyUnits
}

// load (re)builds the linked lists and aggregates from seed routes of stop
// indices. O(N); called once per restart.
func (k *kernel) load(routes [][]int32) {
	p := k.p
	for i := range k.trc {
		k.trc[i] = 0
	}
	for i := range k.taskRoutes {
		k.taskRoutes[i] = 0
	}
	k.durTot, k.batPen, k.capOver, k.splitViol, k.adjViol = 0, 0, 0, 0, 0
	for r := 0; r < p.nRoutes; r++ {
		s := int32(p.n + r)
		k.next[s], k.prev[s] = s, s
		k.routeOf[s] = int32(r)
		k.routeDur[r], k.routeEn[r] = 0, 0
		k.distinct[r] = 0
	}
	for r, route := range routes {
		s := int32(p.n + r)
		tail := s
		for _, x := range route {
			k.next[tail], k.prev[x] = x, tail
			k.routeOf[x] = int32(r)
			tail = x
		}
		k.next[tail], k.prev[s] = s, tail
	}
	for r := 0; r < p.nRoutes; r++ {
		s := int32(p.n + r)
		var dur, en int64
		for x := k.next[s]; x != s; x = k.next[x] {
			d, e := k.leg(k.prev[x], x)
			dur += d + p.dwellDur[x]
			en += e + p.dwellEn[x]
			t := p.task[x]
			c := &k.trc[int(t)*p.nRoutes+r]
			if *c == 0 {
				k.distinct[r]++
				if p.orderedT[t] {
					k.taskRoutes[t]++
				}
			}
			*c++
			if k.isViol(k.prev[x], x) {
				k.adjViol++
			}
		}
		d, e := k.leg(k.prev[s], s)
		dur += d
		en += e
		k.routeDur[r], k.routeEn[r] = dur, en
		k.durTot += dur
		k.batPen += penalty(en, p.budget)
		if p.cap > 0 && k.distinct[r] > p.cap {
			k.capOver += int64(k.distinct[r] - p.cap)
		}
	}
	for t := 0; t < p.nTasks; t++ {
		if k.taskRoutes[t] > 1 {
			k.splitViol += int64(k.taskRoutes[t] - 1)
		}
	}
	k.bestCost = k.cost()
	copy(k.bestNext, k.next)
}

// unlink removes stop x from its route, updating every aggregate by the
// exact integer delta.
func (k *kernel) unlink(x int32) {
	p := k.p
	a, b := k.prev[x], k.next[x]
	r := k.routeOf[x]
	axD, axE := k.leg(a, x)
	xbD, xbE := k.leg(x, b)
	abD, abE := k.leg(a, b)
	dDur := abD - axD - xbD - p.dwellDur[x]
	dEn := abE - axE - xbE - p.dwellEn[x]
	k.routeDur[r] += dDur
	k.durTot += dDur
	oldEn := k.routeEn[r]
	k.routeEn[r] = oldEn + dEn
	k.batPen += penalty(oldEn+dEn, p.budget) - penalty(oldEn, p.budget)
	if p.anyOrdered {
		if k.isViol(a, x) {
			k.adjViol--
		}
		if k.isViol(x, b) {
			k.adjViol--
		}
		if k.isViol(a, b) {
			k.adjViol++
		}
	}
	t := p.task[x]
	c := &k.trc[int(t)*p.nRoutes+int(r)]
	*c--
	if *c == 0 {
		k.distinct[r]--
		if p.cap > 0 && k.distinct[r] >= p.cap {
			k.capOver--
		}
		if p.orderedT[t] {
			k.taskRoutes[t]--
			if k.taskRoutes[t] >= 1 {
				k.splitViol--
			}
		}
	}
	k.next[a], k.prev[b] = b, a
}

// insertAfter links stop x back in immediately after node at (a stop or a
// route sentinel), mirroring unlink's aggregate deltas.
func (k *kernel) insertAfter(x, at int32) {
	p := k.p
	b := k.next[at]
	r := k.routeOf[at]
	axD, axE := k.leg(at, x)
	xbD, xbE := k.leg(x, b)
	abD, abE := k.leg(at, b)
	dDur := axD + xbD - abD + p.dwellDur[x]
	dEn := axE + xbE - abE + p.dwellEn[x]
	k.routeDur[r] += dDur
	k.durTot += dDur
	oldEn := k.routeEn[r]
	k.routeEn[r] = oldEn + dEn
	k.batPen += penalty(oldEn+dEn, p.budget) - penalty(oldEn, p.budget)
	if p.anyOrdered {
		if k.isViol(at, b) {
			k.adjViol--
		}
		if k.isViol(at, x) {
			k.adjViol++
		}
		if k.isViol(x, b) {
			k.adjViol++
		}
	}
	t := p.task[x]
	c := &k.trc[int(t)*p.nRoutes+int(r)]
	if *c == 0 {
		k.distinct[r]++
		if p.cap > 0 && k.distinct[r] > p.cap {
			k.capOver++
		}
		if p.orderedT[t] {
			k.taskRoutes[t]++
			if k.taskRoutes[t] > 1 {
				k.splitViol++
			}
		}
	}
	*c++
	k.next[at], k.prev[x] = x, at
	k.next[x], k.prev[b] = b, x
	k.routeOf[x] = r
}

// Move kinds.
const (
	moveSwap     = int32(0)
	moveRelocate = int32(1)
)

// move is one candidate mutation. Relocate records the original predecessor
// so a rejected move is undone in place; swap is its own inverse.
type move struct {
	kind  int32
	a, b  int32 // swap: the two stops; relocate: stop and insertion anchor
	prevA int32
}

func kintn(r *rng, n int) int {
	i := int(r.uniform() * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// randomMove draws the next move. The caller guarantees a move exists
// (n >= 2, or n == 1 with more than one route).
func (k *kernel) randomMove(r *rng) move {
	n := k.p.n
	if n >= 2 && r.uniform() < 0.5 {
		a := kintn(r, n)
		b := kintn(r, n)
		for b == a {
			b = kintn(r, n)
		}
		return move{kind: moveSwap, a: int32(a), b: int32(b)}
	}
	a := int32(kintn(r, n))
	t := int32(kintn(r, k.nNodes))
	for t == a || t == k.prev[a] {
		t = int32(kintn(r, k.nNodes))
	}
	return move{kind: moveRelocate, a: a, b: t}
}

// swap exchanges the tour positions of stops a and b. It is an involution:
// applying it twice restores the links and, because every aggregate delta
// is exact integer arithmetic over pure leg values, the aggregates too.
func (k *kernel) swap(a, b int32) {
	switch {
	case k.next[a] == b:
		k.unlink(a)
		k.insertAfter(a, b)
	case k.next[b] == a:
		k.unlink(b)
		k.insertAfter(b, a)
	default:
		pa, pb := k.prev[a], k.prev[b]
		k.unlink(a)
		k.unlink(b)
		k.insertAfter(a, pb)
		k.insertAfter(b, pa)
	}
}

// apply performs the move and returns it annotated for undo.
func (k *kernel) apply(m move) move {
	if m.kind == moveSwap {
		k.swap(m.a, m.b)
		return m
	}
	m.prevA = k.prev[m.a]
	k.unlink(m.a)
	k.insertAfter(m.a, m.b)
	return m
}

// undo reverts a move applied by apply.
func (k *kernel) undo(m move) {
	if m.kind == moveSwap {
		k.swap(m.a, m.b)
		return
	}
	k.unlink(m.a)
	k.insertAfter(m.a, m.prevA)
}

// step is one warm-loop annealing iteration: draw a move, apply it, accept
// by the Metropolis criterion or undo in place, and snapshot the tour on
// improvement. No allocation, no locking.
//
//vet:hotpath the annealing move loop runs O(iterations x restarts) per plan
func (k *kernel) step(r *rng, temp float64) {
	m := k.randomMove(r)
	before := k.cost()
	m = k.apply(m)
	after := k.cost()
	if after < before || r.uniform() < math.Exp(float64(before-after)/temp) {
		if after < k.bestCost {
			k.bestCost = after
			copy(k.bestNext, k.next)
		}
		return
	}
	k.undo(m)
}

// anneal runs one chain over the loaded state with geometric cooling,
// leaving the best tour found in bestNext/bestCost. load must have been
// called first.
func (k *kernel) anneal(r *rng, iterations int) {
	if k.p.n == 0 || (k.p.n == 1 && k.p.nRoutes == 1) {
		return
	}
	temp := math.Max(float64(k.bestCost)*0.1, unitScale)
	cooling := math.Pow(0.001*unitScale/temp, 1/float64(iterations))
	for i := 0; i < iterations; i++ {
		k.step(r, temp)
		temp *= cooling
	}
}

// recompute walks the link structure and rebuilds the objective from
// scratch — the naive kernel. The incremental aggregates must match its
// result bit-for-bit after any move sequence; the parity tests and the
// benchmark gate enforce exactly that.
func (k *kernel) recompute() int64 {
	p := k.p
	var durTot, batPen, capOver, splitViol, adjViol int64
	taskRoutes := make([]int32, p.nTasks)
	cnt := make([]int32, p.nTasks)
	touched := make([]int32, 0, p.nTasks)
	for r := 0; r < p.nRoutes; r++ {
		s := int32(p.n + r)
		var dur, en int64
		var distinct int32
		touched = touched[:0]
		for x := k.next[s]; x != s; x = k.next[x] {
			d, e := k.leg(k.prev[x], x)
			dur += d + p.dwellDur[x]
			en += e + p.dwellEn[x]
			t := p.task[x]
			if cnt[t] == 0 {
				distinct++
				touched = append(touched, t)
				if p.orderedT[t] {
					taskRoutes[t]++
				}
			}
			cnt[t]++
			if k.isViol(k.prev[x], x) {
				adjViol++
			}
		}
		d, e := k.leg(k.prev[s], s)
		dur += d
		en += e
		durTot += dur
		batPen += penalty(en, p.budget)
		if p.cap > 0 && distinct > p.cap {
			capOver += int64(distinct - p.cap)
		}
		for _, t := range touched {
			cnt[t] = 0
		}
	}
	for t := 0; t < p.nTasks; t++ {
		if taskRoutes[t] > 1 {
			splitViol += int64(taskRoutes[t] - 1)
		}
	}
	return durTot + batPen + (adjViol+splitViol+capOver)*orderPenaltyUnits
}

// extractRoutes materializes the tour into per-route stop slices.
func extractRoutes(p *problem, next []int32) [][]Stop {
	routes := make([][]Stop, p.nRoutes)
	for r := 0; r < p.nRoutes; r++ {
		s := int32(p.n + r)
		for x := next[s]; x != s; x = next[x] {
			routes[r] = append(routes[r], p.stops[x])
		}
	}
	return routes
}
