package planner

import (
	"errors"
	"fmt"
	"testing"

	"androne/internal/geo"
)

var base = geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0}

func wpAt(n, e float64) geo.Waypoint {
	return geo.Waypoint{
		Position:  geo.Position{LatLon: geo.OffsetNE(base.LatLon, n, e), Alt: 15},
		MaxRadius: 30,
	}
}

func exampleTasks() []Task {
	return []Task{
		{ID: "survey", Waypoints: []geo.Waypoint{wpAt(200, 0), wpAt(250, 100)}, EnergyJ: 45000, DurationS: 600},
		{ID: "interactive", Waypoints: []geo.Waypoint{wpAt(-150, 200)}, EnergyJ: 20000, DurationS: 300},
		{ID: "direct", Waypoints: []geo.Waypoint{wpAt(100, -300)}, EnergyJ: 15000, DurationS: 240},
	}
}

func TestPlanCoversAllWaypoints(t *testing.T) {
	cfg := DefaultConfig(base)
	plan, err := cfg.Plan(exampleTasks())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(cfg, exampleTasks()); err != nil {
		t.Fatal(err)
	}
	var stops int
	for _, r := range plan.Routes {
		stops += len(r.Stops)
	}
	if stops != 4 {
		t.Fatalf("stops = %d, want 4", stops)
	}
}

func TestPlanDeterministic(t *testing.T) {
	cfg := DefaultConfig(base)
	p1, err := cfg.Plan(exampleTasks())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cfg.Plan(exampleTasks())
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalDurationS() != p2.TotalDurationS() || p1.TotalEnergyJ() != p2.TotalEnergyJ() {
		t.Fatal("same seed produced different plans")
	}
}

func TestAnnealingNotWorseThanGreedy(t *testing.T) {
	cfg := DefaultConfig(base)
	tasks := exampleTasks()
	stops := explode(tasks)
	greedyCost := cfg.cost(cfg.greedy(stops))
	plan, err := cfg.Plan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild route lists to cost the final plan the same way.
	final := make([][]Stop, len(plan.Routes))
	for i, r := range plan.Routes {
		final[i] = r.Stops
	}
	if c := cfg.cost(final); c > greedyCost*1.01 {
		t.Fatalf("annealed cost %.1f worse than greedy %.1f", c, greedyCost)
	}
}

func TestFleetConstraint(t *testing.T) {
	cfg := DefaultConfig(base)
	cfg.FleetSize = 2
	plan, err := cfg.Plan(exampleTasks())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plan.Routes {
		if r.Drone < 0 || r.Drone >= 2 {
			t.Fatalf("route assigned to drone %d with fleet 2", r.Drone)
		}
	}
	if err := plan.Validate(cfg, exampleTasks()); err != nil {
		t.Fatal(err)
	}
}

func TestBatterySplit(t *testing.T) {
	// Many dwell-heavy waypoints exceed one battery: the planner must split
	// them across multiple flights, each within budget.
	cfg := DefaultConfig(base)
	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, Task{
			ID:        fmt.Sprintf("vd%d", i),
			Waypoints: []geo.Waypoint{wpAt(float64(100+50*i), float64(50*i))},
			EnergyJ:   40000, // dwells alone exceed one 150k budget after 4
			DurationS: 300,
		})
	}
	plan, err := cfg.Plan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Routes) < 2 {
		t.Fatalf("routes = %d, want battery-driven split", len(plan.Routes))
	}
	if err := plan.Validate(cfg, tasks); err != nil {
		t.Fatal(err)
	}
}

func TestInfeasibleSingleStop(t *testing.T) {
	cfg := DefaultConfig(base)
	tasks := []Task{{ID: "greedy", Waypoints: []geo.Waypoint{wpAt(100, 0)}, EnergyJ: 1e9}}
	if _, err := cfg.Plan(tasks); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestNoFleet(t *testing.T) {
	cfg := DefaultConfig(base)
	cfg.FleetSize = 0
	if _, err := cfg.Plan(exampleTasks()); !errors.Is(err, ErrNoFleet) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyTasks(t *testing.T) {
	cfg := DefaultConfig(base)
	plan, err := cfg.Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Routes) != 0 {
		t.Fatalf("routes = %d", len(plan.Routes))
	}
	if plan.TotalDurationS() != 0 || plan.TotalEnergyJ() != 0 {
		t.Fatal("empty plan has nonzero totals")
	}
}

func TestSingleWaypoint(t *testing.T) {
	cfg := DefaultConfig(base)
	tasks := []Task{{ID: "one", Waypoints: []geo.Waypoint{wpAt(100, 100)}, EnergyJ: 5000, DurationS: 60}}
	plan, err := cfg.Plan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Routes) != 1 || len(plan.Routes[0].Stops) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	r := plan.Routes[0]
	// Route includes out-and-back travel plus the dwell.
	if r.DurationS <= 60 {
		t.Fatalf("duration = %.1f, want > dwell", r.DurationS)
	}
	if r.EnergyJ <= 5000 {
		t.Fatalf("energy = %.0f, want > dwell", r.EnergyJ)
	}
}

func TestOperatingWindow(t *testing.T) {
	cfg := DefaultConfig(base)
	tasks := exampleTasks()
	plan, err := cfg.Plan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	start, end, err := plan.OperatingWindow(cfg, "interactive")
	if err != nil {
		t.Fatal(err)
	}
	if start <= 0 {
		t.Fatalf("window start = %g", start)
	}
	if end < start+300 {
		t.Fatalf("window = [%g, %g], dwell 300 missing", start, end)
	}
	if _, _, err := plan.OperatingWindow(cfg, "nope"); err == nil {
		t.Fatal("window for unknown task")
	}
}

func TestDwellSplitAcrossWaypoints(t *testing.T) {
	stops := explode([]Task{{ID: "x", Waypoints: []geo.Waypoint{wpAt(1, 1), wpAt(2, 2)}, EnergyJ: 100, DurationS: 60}})
	if len(stops) != 2 {
		t.Fatalf("stops = %d", len(stops))
	}
	for _, s := range stops {
		if s.DwellJ != 50 || s.DwellS != 30 {
			t.Fatalf("dwell = %g J / %g s", s.DwellJ, s.DwellS)
		}
	}
}

func TestValidateCatchesMissingStop(t *testing.T) {
	cfg := DefaultConfig(base)
	tasks := exampleTasks()
	plan, err := cfg.Plan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Drop a stop.
	plan.Routes[0].Stops = plan.Routes[0].Stops[1:]
	if err := plan.Validate(cfg, tasks); err == nil {
		t.Fatal("validation passed with a missing stop")
	}
}

func TestManyWaypointsAllPlanned(t *testing.T) {
	cfg := DefaultConfig(base)
	cfg.Iterations = 5000
	cfg.FleetSize = 3
	var tasks []Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, Task{
			ID: fmt.Sprintf("t%d", i),
			Waypoints: []geo.Waypoint{
				wpAt(float64(i*60), float64(-i*40)),
				wpAt(float64(i*60+30), float64(i*25)),
			},
			EnergyJ:   8000,
			DurationS: 120,
		})
	}
	plan, err := cfg.Plan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(cfg, tasks); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedWaypoints(t *testing.T) {
	// The future-work extension: a task whose waypoints must be traversed
	// in declaration order, even when the geometry favors the reverse.
	cfg := DefaultConfig(base)
	tasks := []Task{
		{
			ID:      "tour",
			Ordered: true,
			// Declared far-to-near so a pure distance objective would
			// reverse them.
			Waypoints: []geo.Waypoint{wpAt(400, 0), wpAt(250, 50), wpAt(100, 0)},
			EnergyJ:   15000, DurationS: 300,
		},
		{ID: "other", Waypoints: []geo.Waypoint{wpAt(-100, -100)}, EnergyJ: 5000, DurationS: 60},
	}
	plan, err := cfg.Plan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(cfg, tasks); err != nil {
		t.Fatal(err)
	}
	// Indices of "tour" appear in ascending order across the plan.
	prev := -1
	for _, r := range plan.Routes {
		for _, s := range r.Stops {
			if s.Task != "tour" {
				continue
			}
			if s.Index <= prev {
				t.Fatalf("tour visited out of order: %d after %d", s.Index, prev)
			}
			prev = s.Index
		}
	}
	if prev != 2 {
		t.Fatalf("tour incomplete: last index %d", prev)
	}
}

func TestUnorderedMayReorder(t *testing.T) {
	// Without Ordered, the planner is free to reverse the declared order
	// (the paper's documented limitation); verify Validate accepts that.
	cfg := DefaultConfig(base)
	tasks := []Task{{
		ID:        "free",
		Waypoints: []geo.Waypoint{wpAt(400, 0), wpAt(100, 0)},
		EnergyJ:   10000, DurationS: 120,
	}}
	plan, err := cfg.Plan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(cfg, tasks); err != nil {
		t.Fatal(err)
	}
	// The nearer waypoint (index 1) should come first from a base at 0.
	var first Stop
	for _, r := range plan.Routes {
		if len(r.Stops) > 0 {
			first = r.Stops[0]
			break
		}
	}
	if first.Index != 1 {
		t.Logf("planner chose declared order anyway (allowed): first index %d", first.Index)
	}
}

func TestOrderViolationsCounter(t *testing.T) {
	ordered := map[string]bool{"a": true}
	mk := func(task string, idx int) Stop { return Stop{Task: task, Index: idx} }
	// Inversion within a route.
	if v := orderViolations([][]Stop{{mk("a", 1), mk("a", 0)}}, ordered); v != 1 {
		t.Fatalf("inversion violations = %d", v)
	}
	// Split across routes.
	if v := orderViolations([][]Stop{{mk("a", 0)}, {mk("a", 1)}}, ordered); v != 1 {
		t.Fatalf("split violations = %d", v)
	}
	// Clean.
	if v := orderViolations([][]Stop{{mk("a", 0), mk("b", 5), mk("a", 1)}}, ordered); v != 0 {
		t.Fatalf("clean violations = %d", v)
	}
	// Unordered tasks never count.
	if v := orderViolations([][]Stop{{mk("b", 3), mk("b", 1)}}, ordered); v != 0 {
		t.Fatalf("unordered counted: %d", v)
	}
}

func TestRepairOrder(t *testing.T) {
	ordered := map[string]bool{"a": true}
	routes := [][]Stop{{
		{Task: "a", Index: 2}, {Task: "b", Index: 0}, {Task: "a", Index: 0}, {Task: "a", Index: 1},
	}}
	repairOrder(routes, ordered)
	// Slots 0, 2, 3 held task a; after repair they hold indices 0, 1, 2.
	got := []int{routes[0][0].Index, routes[0][2].Index, routes[0][3].Index}
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("repair = %v", got)
	}
	if routes[0][1].Task != "b" {
		t.Fatal("repair disturbed other tasks")
	}
}

func TestMaxTasksPerRoute(t *testing.T) {
	// The prototype supports three simultaneous virtual drones; the planner
	// must not put more than three distinct tasks on one flight.
	cfg := DefaultConfig(base)
	cfg.MaxTasksPerRoute = 3
	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, Task{
			ID:        fmt.Sprintf("vd%d", i),
			Waypoints: []geo.Waypoint{wpAt(float64(60+30*i), float64(-20*i))},
			EnergyJ:   5000, DurationS: 60,
		})
	}
	plan, err := cfg.Plan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(cfg, tasks); err != nil {
		t.Fatal(err)
	}
	if len(plan.Routes) < 2 {
		t.Fatalf("routes = %d, want capacity-driven split", len(plan.Routes))
	}
	for i, r := range plan.Routes {
		if n := distinctTasks(r.Stops); n > 3 {
			t.Fatalf("route %d carries %d tasks", i, n)
		}
	}
}
