// Exported benchmark hooks: thin wrappers over the unexported annealing
// machinery so androne-bench can time the incremental kernel against the
// cloning baseline and drive the parity gate, without widening the planner
// API surface.

package planner

import "fmt"

// BaselineAnneal runs the pre-kernel cloning annealer for the configured
// iteration count on the greedy seed and returns its final float objective.
// Every iteration clones all routes and recomputes the full O(N) cost —
// the shape Plan had before the incremental kernel.
func (cfg Config) BaselineAnneal(tasks []Task) float64 {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20000
	}
	cfg.ordered = orderedSet(tasks)
	routes := cfg.greedy(explode(tasks))
	return cfg.cost(cfg.baselineAnneal(routes))
}

// KernelAnneal runs one incremental-kernel chain (greedy seed, single
// restart, same Seed) for the configured iteration count and returns the
// best integer cost found.
func (cfg Config) KernelAnneal(tasks []Task) int64 {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20000
	}
	ordered := orderedSet(tasks)
	cfg.ordered = ordered
	stops := explode(tasks)
	prob := cfg.newProblem(stops, ordered)
	k := newKernel(prob)
	k.load(cfg.greedyOrder(stops))
	k.anneal(newRNG(cfg.Seed), cfg.Iterations)
	return k.bestCost
}

// KernelParity drives `moves` kernel moves (unconditionally accepted, so
// the tour wanders far from the seed) and after every move compares the
// incrementally-maintained cost against the naive from-scratch kernel.
// Returns the number of moves checked; a non-nil error reports the first
// bit-level mismatch.
func (cfg Config) KernelParity(tasks []Task, moves int) (int, error) {
	ordered := orderedSet(tasks)
	cfg.ordered = ordered
	stops := explode(tasks)
	prob := cfg.newProblem(stops, ordered)
	if prob.n == 0 || (prob.n == 1 && prob.nRoutes == 1) {
		return 0, nil
	}
	k := newKernel(prob)
	k.load(cfg.greedyOrder(stops))
	if got, want := k.cost(), k.recompute(); got != want {
		return 0, fmt.Errorf("planner: seed cost mismatch: incremental %d, naive %d", got, want)
	}
	r := newRNG(cfg.Seed + "/parity")
	for i := 0; i < moves; i++ {
		k.apply(k.randomMove(r))
		if got, want := k.cost(), k.recompute(); got != want {
			return i, fmt.Errorf("planner: cost mismatch after move %d: incremental %d, naive %d", i, got, want)
		}
	}
	return moves, nil
}

func orderedSet(tasks []Task) map[string]bool {
	ordered := make(map[string]bool)
	for _, t := range tasks {
		if t.Ordered {
			ordered[t.ID] = true
		}
	}
	return ordered
}
