package simharness

import (
	"encoding/json"

	"androne/internal/apps"
)

// Builtins returns the canonical scenario set: nine end-to-end flights
// covering the paper's claims under nominal conditions, under every
// fault class the harness injects, and under a duty-cycled idle/fly
// profile. All are expected to pass their invariant checkers.
func Builtins() []*Scenario {
	return []*Scenario{
		surveyBaseline(),
		multiTenant(),
		breachLoiter(),
		motorDegraded(),
		squall(),
		lossyGCS(),
		revokedMidflight(),
		saveRestoreMidMission(),
		dutyCycle(),
	}
}

// Sabotaged returns scenarios with an enforcement layer deliberately
// broken; each must FAIL its matching invariant checker — the harness's
// proof that the checkers can detect real violations.
func Sabotaged() []*Scenario {
	whitelist := breachLoiter()
	whitelist.Name = "sabotage-whitelist"
	whitelist.Seed = "sabotage-whitelist-1"
	whitelist.Faults = nil
	whitelist.Sabotage = "whitelist"

	// A drone with an 8-second time budget and a dwell cap far beyond it:
	// the runner ignores exhaustion, so the guard must fire.
	allotment := &Scenario{
		Name: "sabotage-allotment",
		Seed: "sabotage-allotment-1",
		Drones: []DroneSpec{{
			Name: "starved", Owner: "alice",
			MaxDurationS: 8, EnergyJ: 45000,
			Waypoints: []WaypointSpec{{NorthM: 60, AltM: 15, RadiusM: 40, DwellS: 10}},
		}},
		Sabotage: "allotment",
	}
	return []*Scenario{whitelist, allotment}
}

// ByName resolves a scenario name against the builtin and sabotaged sets.
func ByName(name string) *Scenario {
	for _, s := range append(Builtins(), Sabotaged()...) {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func surveyBaseline() *Scenario {
	return &Scenario{
		Name: "survey-baseline",
		Seed: "survey-baseline-1",
		Drones: []DroneSpec{{
			Name: "survey", Owner: "buildco",
			Apps:         []string{apps.SurveyPackage},
			MaxDurationS: 300, EnergyJ: 40000,
			AppArgs: map[string]json.RawMessage{
				apps.SurveyPackage: json.RawMessage(`{"spacing-m": 30}`),
			},
			Waypoints: []WaypointSpec{{NorthM: 80, AltM: 15, RadiusM: 50}},
		}},
	}
}

func multiTenant() *Scenario {
	return &Scenario{
		Name: "multi-tenant",
		Seed: "multi-tenant-1",
		Drones: []DroneSpec{
			{
				Name: "shots", Owner: "alice",
				Apps:      []string{apps.PhotoPackage},
				Waypoints: []WaypointSpec{{NorthM: 60, EastM: 20, AltM: 15, RadiusM: 40}},
			},
			{
				Name: "watcher", Owner: "city",
				Apps:              []string{apps.TrafficWatchPackage},
				ContinuousDevices: []string{"camera"},
				WaypointDevices:   []string{"camera"},
				Waypoints:         []WaypointSpec{{NorthM: 120, EastM: -30, AltM: 15, RadiusM: 40}},
			},
		},
	}
}

func breachLoiter() *Scenario {
	return &Scenario{
		Name: "breach-loiter",
		Seed: "breach-loiter-1",
		Drones: []DroneSpec{{
			Name: "tenant", Owner: "alice",
			Waypoints: []WaypointSpec{{NorthM: 70, AltM: 15, RadiusM: 40, DwellS: 6}},
		}},
		Pilot: &PilotSpec{Target: "tenant"},
		Faults: []Fault{{
			Kind: FaultBreach, Target: "tenant", From: "dwell", AtS: 3,
		}},
	}
}

func motorDegraded() *Scenario {
	return &Scenario{
		Name: "motor-degraded",
		Seed: "motor-degraded-1",
		Drones: []DroneSpec{{
			Name: "survey", Owner: "buildco",
			Apps:         []string{apps.SurveyPackage},
			MaxDurationS: 300, EnergyJ: 40000,
			AppArgs: map[string]json.RawMessage{
				apps.SurveyPackage: json.RawMessage(`{"spacing-m": 30}`),
			},
			Waypoints: []WaypointSpec{{NorthM: 80, AltM: 15, RadiusM: 50}},
		}},
		Faults: []Fault{{
			Kind: FaultMotor, From: "start", AtS: 5, Motor: 2, Efficiency: 0.85,
		}},
	}
}

func squall() *Scenario {
	return &Scenario{
		Name: "squall",
		Seed: "squall-1",
		Drones: []DroneSpec{{
			Name: "shots", Owner: "alice",
			Apps:      []string{apps.PhotoPackage},
			Waypoints: []WaypointSpec{{NorthM: 60, AltM: 15, RadiusM: 40}},
		}},
		Faults: []Fault{{
			Kind: FaultWind, From: "dwell", AtS: 1,
			WindN: 5, WindE: 3, GustStd: 1.5, WindForS: 8,
		}},
	}
}

func lossyGCS() *Scenario {
	return &Scenario{
		Name: "lossy-gcs",
		Seed: "lossy-gcs-1",
		Drones: []DroneSpec{{
			Name: "tenant", Owner: "alice",
			Waypoints: []WaypointSpec{{NorthM: 70, AltM: 15, RadiusM: 40, DwellS: 5}},
		}},
		Pilot: &PilotSpec{Target: "tenant", PeriodTicks: 5},
		Faults: []Fault{{
			Kind: FaultLink, From: "dwell", AtS: 2, LossProb: 0.3, MeanMS: 300,
		}},
	}
}

func revokedMidflight() *Scenario {
	return &Scenario{
		Name: "revoked-midflight",
		Seed: "revoked-midflight-1",
		Drones: []DroneSpec{{
			Name: "shots", Owner: "alice",
			Apps:      []string{apps.PhotoPackage},
			Waypoints: []WaypointSpec{{NorthM: 60, AltM: 15, RadiusM: 40, DwellS: 3}},
		}},
		Faults: []Fault{{
			Kind: FaultRevoke, Target: "shots", From: "dwell", AtS: 0.5,
			Permission: "camera",
		}},
	}
}

// dutyCycle is the fleet-at-scale profile: a long parked hold before a
// short flight, then a post-landing hold. Lockstep pays 40 fast-loop
// steps for every parked tick; the event-driven runner leaps the holds,
// which is where the fleet10k speedup comes from. Both modes must still
// produce bit-identical traces (the differential suite runs this one
// like any other builtin).
func dutyCycle() *Scenario {
	return &Scenario{
		Name: "duty-cycle",
		Seed: "duty-cycle-1",
		Drones: []DroneSpec{{
			Name: "sentry", Owner: "city",
			Apps:      []string{apps.PhotoPackage},
			Waypoints: []WaypointSpec{{NorthM: 40, AltM: 12, RadiusM: 40, DwellS: 4}},
		}},
		HoldBeforeS: 600,
		HoldAfterS:  30,
	}
}

func saveRestoreMidMission() *Scenario {
	return &Scenario{
		Name: "save-restore",
		Seed: "save-restore-1",
		Drones: []DroneSpec{{
			Name: "survey", Owner: "buildco",
			Apps:         []string{apps.SurveyPackage},
			MaxDurationS: 400, EnergyJ: 45000,
			AppArgs: map[string]json.RawMessage{
				apps.SurveyPackage: json.RawMessage(`{"spacing-m": 30}`),
			},
			Waypoints: []WaypointSpec{
				{NorthM: 80, AltM: 15, RadiusM: 50},
				{NorthM: 140, EastM: 40, AltM: 15, RadiusM: 50},
			},
		}},
		Faults: []Fault{{
			// Becomes eligible between the two waypoints: the checkpoint
			// must round-trip visited progress, allotment, marked files.
			Kind: FaultSaveRestore, Target: "survey", From: "dwell", AtS: 8,
		}},
	}
}
