package simharness

import (
	"fmt"

	"androne/internal/cloud"
	"androne/internal/mavlink"
	"androne/internal/mavproxy"
)

// Checker is a pluggable invariant: Tick runs after every harness tick,
// Finish once after the flight-end workflow. Checkers record failures via
// Runner.Violate and must be deterministic (no map iteration, no clocks).
type Checker interface {
	Name() string
	Tick(r *Runner)
	Finish(r *Runner)
}

// DefaultCheckers returns the paper's invariant set.
func DefaultCheckers() []Checker {
	return []Checker{
		newWhitelistCanary(),
		newAllotmentGuard(),
		&breachConduct{},
		&fileDelivery{},
		&orderLifecycle{},
	}
}

// --------------------------------------------------------------------------
// Whitelist canary

// whitelistCanary probes the paper's confinement claim from the outside:
// denied messages never reach the flight controller, so the only way to
// observe enforcement is to send a command that is in NO template —
// COMPONENT_ARM_DISARM — into every active VFC and assert it never comes
// back accepted. The probe is harmless even if it leaks (the drone is
// already armed), but an accepted ack proves a non-whitelisted command
// reached the controller.
type whitelistCanary struct {
	period int
}

func newWhitelistCanary() *whitelistCanary { return &whitelistCanary{period: 20} }

func (c *whitelistCanary) Name() string { return "whitelist-canary" }

func (c *whitelistCanary) Tick(r *Runner) {
	if r.tick%c.period != 0 {
		return
	}
	for _, name := range r.DroneNames() {
		vd, err := r.Drone().VDC.Get(name)
		if err != nil || vd.VFC.State() != mavproxy.VFCActive {
			continue
		}
		canary := &mavlink.CommandLong{Command: mavlink.CmdComponentArmDisarm, Param1: 1}
		for _, reply := range vd.VFC.Send(canary) {
			ack, ok := reply.(*mavlink.CommandAck)
			if !ok {
				continue
			}
			if ack.Result == mavlink.ResultAccepted {
				r.Violate(c.Name(), name,
					"non-whitelisted COMPONENT_ARM_DISARM accepted by the controller")
			}
		}
	}
}

func (c *whitelistCanary) Finish(r *Runner) {}

// --------------------------------------------------------------------------
// Allotment guard

// allotmentGuard enforces the allotment claim: once a virtual drone's
// energy or time budget is exhausted, flight control must be taken away.
// The Allotment type clamps at zero, so "never negative" is recast as its
// operational consequence — an exhausted drone must not stay in control
// beyond a one-second grace window.
type allotmentGuard struct {
	over  map[string]int
	fired map[string]bool
}

func newAllotmentGuard() *allotmentGuard {
	return &allotmentGuard{over: make(map[string]int), fired: make(map[string]bool)}
}

func (c *allotmentGuard) Name() string { return "allotment-guard" }

// graceTicks is how long an exhausted drone may remain active before the
// checker fires: one second of sim time for the orchestrator to notice and
// revoke.
const graceTicks = 10

func (c *allotmentGuard) Tick(r *Runner) {
	for _, name := range r.DroneNames() {
		vd, err := r.Drone().VDC.Get(name)
		if err != nil {
			c.over[name] = 0
			continue
		}
		if vd.Allotment.Exhausted() && vd.VFC.State() == mavproxy.VFCActive {
			c.over[name]++
		} else {
			c.over[name] = 0
		}
		if c.over[name] > graceTicks && !c.fired[name] {
			c.fired[name] = true
			r.Violate(c.Name(), name, fmt.Sprintf(
				"allotment exhausted (time %.1fs, energy %.0fJ left) but VFC still active after %.1fs",
				vd.Allotment.TimeLeftS(), vd.Allotment.EnergyLeftJ(),
				float64(c.over[name])*TickS))
		}
	}
}

func (c *allotmentGuard) Finish(r *Runner) {}

// --------------------------------------------------------------------------
// Breach conduct

// breachConduct enforces the paper's breach protocol: a geofence breach
// must never trigger the stock failsafe landing — the drone is guided back
// inside the fence and then LOITERS, returning control to the virtual
// drone. While a recovery is in progress the controller must never be in
// LAND mode, and the mode at the moment recovery completes must be loiter.
type breachConduct struct {
	recovering map[string]bool
}

func (c *breachConduct) Name() string { return "breach-conduct" }

func (c *breachConduct) Tick(r *Runner) {
	if c.recovering == nil {
		c.recovering = make(map[string]bool)
	}
	for _, name := range r.DroneNames() {
		vd, err := r.Drone().VDC.Get(name)
		if err != nil {
			c.recovering[name] = false
			continue
		}
		rec := vd.VFC.Recovering()
		mode := r.Drone().FC.Mode()
		if rec {
			if mode == mavlink.ModeLand {
				r.Violate(c.Name(), name, "controller in LAND mode during breach recovery")
			}
			if r.Drone().Sim.OnGround() {
				r.Violate(c.Name(), name, "drone landed during breach recovery")
			}
		} else if c.recovering[name] {
			// Recovery just completed: the protocol ends in loiter.
			if mode != mavlink.ModeLoiter {
				r.Violate(c.Name(), name,
					"recovery ended in "+modeName(mode)+", want loiter")
			}
		}
		c.recovering[name] = rec
	}
}

func (c *breachConduct) Finish(r *Runner) {}

// --------------------------------------------------------------------------
// File delivery

// fileDelivery verifies the offload claim at flight end: every file an app
// marked for its user is present in cloud storage under the owner's
// account.
type fileDelivery struct{}

func (c *fileDelivery) Name() string { return "file-delivery" }

func (c *fileDelivery) Tick(r *Runner) {}

func (c *fileDelivery) Finish(r *Runner) {
	for _, name := range r.DroneNames() {
		m := r.meta[name]
		for _, dst := range m.files {
			if _, err := r.Env().Storage.Get(m.owner, dst); err != nil {
				r.Violate(c.Name(), name, "marked file missing from cloud storage: "+dst)
			}
		}
	}
}

// --------------------------------------------------------------------------
// Order lifecycle

// orderLifecycle verifies the Figure 4 workflow closed out: every order
// ends completed (all waypoints served) or saved (resumable from the VDR),
// never stuck pending/scheduled/flying, and every virtual drone was
// checkpointed into the VDR.
type orderLifecycle struct{}

func (c *orderLifecycle) Name() string { return "order-lifecycle" }

func (c *orderLifecycle) Tick(r *Runner) {}

func (c *orderLifecycle) Finish(r *Runner) {
	for _, name := range r.DroneNames() {
		m := r.meta[name]
		ord, err := r.orders.Get(m.orderID)
		if err != nil {
			r.Violate(c.Name(), name, "order vanished: "+m.orderID)
			continue
		}
		if ord.Status != cloud.OrderCompleted && ord.Status != cloud.OrderSaved {
			r.Violate(c.Name(), name,
				fmt.Sprintf("order %s ended %q, want completed or saved", ord.ID, ord.Status))
		}
		if _, err := r.Env().VDR.Load(name); err != nil {
			r.Violate(c.Name(), name, "not in VDR at flight end")
		}
	}
}
