package simharness

import (
	"reflect"
	"testing"

	"androne/internal/telemetry"
)

// replaySabotage is the breach-loiter shape with the whitelist sabotage and
// a mid-dwell downgrade: one run must yield (a) a violation dump proving the
// canary caught the sabotaged whitelist, and (b) a black-box record whose
// event stream contains the injected fault, a command the VFC rejected, and
// the VDC breach decision that followed — the flight recorder's reason-why
// chain for the incident.
func replaySabotage() *Scenario {
	return &Scenario{
		Name: "replay-sabotage",
		Seed: "replay-sabotage-1",
		Drones: []DroneSpec{{
			Name: "tenant", Owner: "alice",
			Waypoints: []WaypointSpec{{NorthM: 70, AltM: 15, RadiusM: 40, DwellS: 6}},
		}},
		Pilot:    &PilotSpec{Target: "tenant"},
		Sabotage: "whitelist",
		Faults: []Fault{
			// The canary probes every 2 s, so it catches the sabotaged
			// whitelist before the downgrade swaps it out again...
			{Kind: FaultDowngrade, Target: "tenant", From: "dwell", AtS: 2.5},
			// ...and the downgraded whitelist rejects the canary/pilot while
			// the induced breach plays out.
			{Kind: FaultBreach, Target: "tenant", From: "dwell", AtS: 4},
		},
	}
}

// kindIndex returns the index of the first event of the given kind at or
// after from, or -1.
func kindIndex(events []telemetry.RecordEvent, kind string, from int) int {
	for i := from; i < len(events); i++ {
		if events[i].Kind == kind {
			return i
		}
	}
	return -1
}

func TestFlightRecordCapturesFaultRejectAndDecision(t *testing.T) {
	res, err := RunScenario(replaySabotage())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Passed() {
		t.Fatalf("sabotaged scenario passed; the whitelist canary should have fired")
	}
	if len(res.FlightRecords) == 0 {
		t.Fatalf("no flight records dumped")
	}

	var sawViolationDump, sawChain bool
	for _, rec := range res.FlightRecords {
		if rec.Trigger == "violation:whitelist-canary" {
			sawViolationDump = true
		}
		// The chain: injected fault -> VFC rejection -> VDC breach decision,
		// in sequence order within one record.
		i := kindIndex(rec.Events, "harness.fault", 0)
		if i < 0 {
			continue
		}
		j := kindIndex(rec.Events, "vfc.reject", i+1)
		if j < 0 {
			continue
		}
		if k := kindIndex(rec.Events, "vdc.breach", j+1); k >= 0 {
			sawChain = true
			if rec.Drone != "tenant" {
				t.Errorf("chain record labeled %q, want tenant", rec.Drone)
			}
		}
	}
	if !sawViolationDump {
		var triggers []string
		for _, rec := range res.FlightRecords {
			triggers = append(triggers, rec.Trigger)
		}
		t.Errorf("no violation:whitelist-canary dump; triggers: %v", triggers)
	}
	if !sawChain {
		t.Errorf("no record contains harness.fault -> vfc.reject -> vdc.breach in order")
	}
}

func TestFlightRecordsDeterministicReplay(t *testing.T) {
	first, err := RunScenario(replaySabotage())
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	second, err := RunScenario(replaySabotage())
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if len(first.FlightRecords) == 0 {
		t.Fatalf("no flight records to compare")
	}
	if !reflect.DeepEqual(first.FlightRecords, second.FlightRecords) {
		t.Fatalf("flight records differ between identically-seeded runs:\nfirst:  %d records\nsecond: %d records",
			len(first.FlightRecords), len(second.FlightRecords))
	}
}
