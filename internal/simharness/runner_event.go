// Event-driven run mode: instead of unconditionally stepping every
// harness tick, the runner paces itself through a deterministic priority
// queue of timestamped wakeups (internal/sched) — takeoff climb checks,
// waypoint-arrival probes, dwell metering, RTL progress, ground-hold
// expiry, and the exact due ticks of the fault plan. Between the current
// tick and the next wakeup the runner leaps over runs of provably idle
// ticks with core.Drone.BulkAdvanceTicks, which replays the accumulator
// arithmetic of the skipped ticks bit-exactly.
//
// The equivalence argument has three legs, each enforced by tests:
//
//  1. Leaps happen only when the stack is at a fixed point of the tick:
//     the drone is structurally idle (disarmed controller over a parked
//     airframe), the idle fingerprint — every physics and controller
//     field except the pure accumulators — was unchanged by the previous
//     tick, and the harness itself is quiescent (no active or recovering
//     VFC, no induced breach in flight, no pending fault retry). Under
//     those conditions a stepped tick changes only the accumulators that
//     BulkAdvanceTicks replays, and the per-tick proxy flush, pilot,
//     breach relay, and checker calls are all no-ops.
//  2. Wakeups only bound leaps, so a spurious wakeup costs one stepped
//     tick, never correctness; a missing wakeup could leap past a due
//     time, so fault due ticks are computed with the same float
//     comparison the lockstep faultDue evaluates.
//  3. The differential suite (equivalence_test.go) runs every builtin
//     and sabotaged scenario in both modes across seeds and requires
//     bit-identical traces, violations, and tick counts.
package simharness

import (
	"androne/internal/core"
	"androne/internal/flight"
	"androne/internal/mavproxy"
	"androne/internal/sched"
)

// Mode selects how the Runner advances simulation time.
type Mode int

const (
	// ModeLockstep steps every harness tick unconditionally — the
	// original runner, kept as the differential suite's oracle.
	ModeLockstep Mode = iota
	// ModeEvent advances through scheduled wakeups and leaps over
	// provably idle ticks. Must be trace-identical to ModeLockstep.
	ModeEvent
)

// stepsPerTick is the number of fast-loop steps in one harness tick
// (exact: TickS and FastLoopHz are untyped constants, 0.1 * 400 = 40),
// matching what core.Drone.StepSeconds(TickS) executes.
const stepsPerTick = int(TickS * flight.FastLoopHz)

// Wakeup kinds. Arg carries the fault index for wakeFault.
const (
	wakeHoldEnd uint8 = iota // a ground-hold phase reaches its end tick
	wakeFault                // a fault plan entry's exact due tick
	wakeTakeoff              // takeoff climb progress probe
	wakeTransit              // waypoint-arrival probe
	wakeDwell                // dwell metering / allotment-expiry probe
	wakeRTL                  // return-and-land progress probe
)

// tickOnce advances exactly one harness tick. In lockstep mode it steps
// directly; in event mode it schedules a next-tick wakeup and advances
// through the queue, so every active-phase tick flows through the same
// scheduler machinery as the bulk leaps.
func (r *Runner) tickOnce(kind uint8) {
	if r.mode != ModeEvent {
		r.stepTick()
		return
	}
	r.queue.Schedule(uint64(r.tick+1), kind, 0)
	r.advanceToNextWakeup()
}

// advanceToNextWakeup advances the stack to the earliest scheduled
// wakeup's tick and pops it. Ticks strictly before the wakeup are leapt
// over in bulk when the drone is provably idle; the wakeup tick itself is
// always stepped, so whatever the wakeup was scheduled to observe (a
// fault coming due, a hold ending) happens under a full tick.
//
//vet:detpath event-mode time advance feeds the same trace hashes as lockstep
func (r *Runner) advanceToNextWakeup() (sched.Wakeup, bool) {
	w, _, ok := r.queue.Peek()
	if !ok {
		return sched.Wakeup{}, false
	}
	target := int(w.Due)
	for r.tick < target {
		if k := target - 1 - r.tick; k > 0 && r.fpStable && r.drone.IdleEligible() && r.quiescent() {
			r.drone.BulkAdvanceTicks(k, stepsPerTick)
			r.tick += k
			// The leap is the identity on all fingerprinted state, so
			// stability carries over the gap; the loop now steps the
			// final tick before the wakeup.
			continue
		}
		r.stepTick()
		r.noteFingerprint()
	}
	out, _ := r.queue.Pop()
	return out, true
}

// noteFingerprint records whether the tick that just ran was the
// identity on all non-accumulator drone state. Two equal fingerprints in
// a row are the entry ticket for a bulk leap; any state change (motor
// thrust still decaying after landing, an estimator still converging, a
// fault mutating physics) breaks stability and forces per-tick stepping
// until the stack settles again.
func (r *Runner) noteFingerprint() {
	fp := r.drone.IdleFingerprint()
	r.fpStable = fp == r.lastFP
	r.lastFP = fp
}

// quiescent reports whether skipping a tick's non-stepping work — proxy
// metric folds, fault retries, the scripted pilot, breach relay, and the
// invariant checkers — is the identity. All of those only act on active
// or recovering VFCs, open breaches, induced pushes, or pending faults.
func (r *Runner) quiescent() bool {
	for _, f := range r.faults {
		if !f.fired && f.pending {
			return false
		}
	}
	for _, name := range r.names {
		m := r.meta[name]
		if m.pushTarget != nil || m.breachOpen {
			return false
		}
		vd, err := r.drone.VDC.Get(name)
		if err != nil {
			continue // saved to the VDR and not restored; inert
		}
		if vd.VFC.State() == mavproxy.VFCActive || vd.VFC.Recovering() {
			return false
		}
	}
	return true
}

// holdTicks converts a hold duration to whole ticks identically in both
// modes (plain float division would put 600/0.1 just under 6000).
func holdTicks(seconds float64) int {
	return int(seconds/TickS + 0.5)
}

// hold parks the run for the given sim seconds — the duty-cycle idle
// between flights. Lockstep pays for every tick; event mode schedules
// the hold's end and the exact due ticks of any fault landing inside the
// window, then leaps the gaps.
func (r *Runner) hold(seconds float64) {
	n := holdTicks(seconds)
	if n <= 0 {
		return
	}
	end := r.tick + n
	if r.mode != ModeEvent {
		for r.tick < end {
			r.stepTick()
		}
		return
	}
	ids := make([]sched.ID, 0, 1+len(r.faults))
	ids = append(ids, r.queue.Schedule(uint64(end), wakeHoldEnd, 0))
	ids = append(ids, r.scheduleFaultWakeups(end)...)
	for r.tick < end {
		if _, ok := r.advanceToNextWakeup(); !ok {
			break // defensive: the hold-end wakeup is always scheduled
		}
	}
	for _, id := range ids {
		r.queue.Cancel(id) // already-fired IDs are stale and miss exactly
	}
}

// scheduleFaultWakeups schedules one wakeup per unfired fault that comes
// due inside the hold window, at its exact lockstep due tick. Pending
// faults (due but awaiting an eligible moment) need no wakeup: they
// block quiescence instead, so every tick is stepped and retried.
func (r *Runner) scheduleFaultWakeups(end int) []sched.ID {
	var ids []sched.ID
	for i, f := range r.faults {
		if f.fired || f.pending {
			continue
		}
		due, ok := r.faultDueTick(f)
		if !ok || due > end {
			continue
		}
		if due <= r.tick {
			due = r.tick + 1
		}
		ids = append(ids, r.queue.Schedule(uint64(due), wakeFault, uint64(i)))
	}
	return ids
}

// faultDueTick computes the smallest tick at which faultDue(f) becomes
// true, verifying candidates with the identical float comparison so the
// event runner fires faults on exactly the lockstep tick. ok=false when
// the fault's anchor clock is not running yet (pre-liftoff, or no dwell
// grant) — such a fault cannot come due during the current hold.
func (r *Runner) faultDueTick(f *faultState) (int, bool) {
	var anchor int
	switch f.From {
	case "dwell":
		name := f.Target
		if name == "" {
			if f.Kind == FaultLink && r.sc.Pilot != nil {
				name = r.sc.Pilot.Target
			} else {
				name = r.names[0]
			}
		}
		m := r.meta[name]
		if m == nil || m.dwellTick < 0 {
			return 0, false
		}
		anchor = m.dwellTick
	default: // "start": relative to liftoff
		if r.liftoff < 0 {
			return 0, false
		}
		anchor = r.liftoff
	}
	due := func(t int) bool { return float64(t-anchor)*TickS >= f.AtS }
	t := anchor + int(f.AtS/TickS)
	if t < anchor {
		t = anchor
	}
	for !due(t) {
		t++
	}
	for t > anchor && due(t-1) {
		t--
	}
	return t, true
}

// RunScenarioMode builds the stack and runs sc under the given
// time-advance mode. ModeEvent must produce a Result bit-identical to
// ModeLockstep — same trace, same violations, same tick count — which
// the differential equivalence suite enforces for every builtin.
//
//vet:detpath event-driven scenario runs feed the same trace hashes as lockstep
func RunScenarioMode(sc *Scenario, mode Mode) (*Result, error) {
	return RunScenarioOver(sc, mode, nil)
}

// RunScenarioOver runs sc like RunScenarioMode but over a caller-supplied
// cloud environment (nil means a private one). Sharing an environment lets
// many scenario runs save into one storage/VDR pair — the load harness's
// churn workload saves every run's checkpoints through one content-
// addressed blob store to make the cross-run dedup ratio measurable.
func RunScenarioOver(sc *Scenario, mode Mode, env *core.CloudEnv) (*Result, error) {
	r, err := NewRunner(sc)
	if err != nil {
		return nil, err
	}
	if env != nil {
		r.env = env
	}
	r.mode = mode
	if mode == ModeEvent {
		r.queue = sched.New()
	}
	return r.Run()
}
