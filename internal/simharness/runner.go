package simharness

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"

	"androne/internal/android"
	"androne/internal/apps"
	"androne/internal/cloud"
	"androne/internal/core"
	"androne/internal/gcs"
	"androne/internal/geo"
	"androne/internal/mavlink"
	"androne/internal/mavproxy"
	"androne/internal/netem"
	"androne/internal/sched"
	"androne/internal/sdk"
	"androne/internal/telemetry"
)

// TickS is the harness tick in sim seconds: physics and the controller
// advance at the fast-loop rate inside each tick, the proxy at 10 Hz.
const TickS = 0.1

// Home is the fixed home position every scenario flies from.
var Home = geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0}

// Event is one tick-stamped trace entry.
type Event struct {
	Tick   int     `json:"tick"`
	TimeS  float64 `json:"time-s"`
	Kind   string  `json:"kind"`
	Drone  string  `json:"drone,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("[%05d %7.1fs] %-14s", e.Tick, e.TimeS, e.Kind)
	if e.Drone != "" {
		s += " " + e.Drone
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Violation is one invariant checker failure.
type Violation struct {
	Tick    int    `json:"tick"`
	Checker string `json:"checker"`
	Drone   string `json:"drone,omitempty"`
	Detail  string `json:"detail"`
}

func (v Violation) String() string {
	s := fmt.Sprintf("[%05d] %s", v.Tick, v.Checker)
	if v.Drone != "" {
		s += " " + v.Drone
	}
	return s + ": " + v.Detail
}

// Result is a completed scenario run.
type Result struct {
	Scenario   string      `json:"scenario"`
	Seed       string      `json:"seed"`
	Ticks      int         `json:"ticks"`
	SimSeconds float64     `json:"sim-seconds"`
	Events     []Event     `json:"events"`
	Violations []Violation `json:"violations"`
	Orders     []cloud.Order
	// FlightRecords are the black-box dumps the flight recorder archived
	// during the run: one per invariant violation, geofence recovery,
	// permission revocation, and VDR save.
	FlightRecords []telemetry.FlightRecord `json:"flight-records,omitempty"`
}

// Passed reports whether the run finished with no invariant violations.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

// Trace renders the event trace one line per event; identical seeds must
// yield identical traces (the determinism contract the tests enforce).
func (r *Result) Trace() string {
	var b strings.Builder
	for _, e := range r.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// droneMeta is the runner's per-virtual-drone bookkeeping.
type droneMeta struct {
	spec       DroneSpec
	orderID    string
	dwellTick  int // tick of the first waypoint grant (-1 until then)
	breaches   int
	breachOpen bool
	// pushTarget, when set, is re-asserted through the master connection
	// every tick until the fence trips: the induced breach must win the
	// tug-of-war against a pilot re-targeting the drone inside the fence.
	pushTarget *geo.Position
	saved      bool
	// expected files captured before teardown, for the delivery checker.
	owner string
	files []string
}

// faultState tracks one fault through its trigger.
type faultState struct {
	Fault
	fired   bool
	pending bool // due but waiting for an eligible moment (save-restore)
}

// Runner executes one scenario.
type Runner struct {
	sc      *Scenario
	drone   *core.Drone
	env     *core.CloudEnv
	orders  *cloud.Orders
	station *gcs.Station

	checkers []Checker
	events   []Event
	fails    []Violation
	tick     int
	liftoff  int // tick of takeoff completion (-1 before)
	meta     map[string]*droneMeta
	names    []string // declaration order
	faults   []*faultState
	pilotN   int

	sabotageAllotment bool

	// Event-driven mode state (zero in lockstep; see runner_event.go).
	mode     Mode
	queue    *sched.Queue
	lastFP   uint64
	fpStable bool
}

// NewRunner builds the full stack for a scenario: drone, cloud environment,
// orders, virtual drones, optional GCS pilot, checkers.
func NewRunner(sc *Scenario) (*Runner, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	d, err := core.NewDrone(Home, sc.Seed)
	if err != nil {
		return nil, err
	}
	apps.RegisterAll(d.VDC)

	r := &Runner{
		sc:      sc,
		drone:   d,
		env:     core.NewCloudEnv(),
		orders:  cloud.NewOrders(),
		liftoff: -1,
		meta:    make(map[string]*droneMeta),
	}
	r.sabotageAllotment = sc.Sabotage == "allotment"
	for _, f := range sc.Faults {
		fs := &faultState{Fault: f}
		if fs.From == "" {
			fs.From = "start"
		}
		r.faults = append(r.faults, fs)
	}

	// Order and create every virtual drone (Figure 4: pending → scheduled).
	for _, spec := range sc.Drones {
		def := specToDefinition(spec)
		defJSON, err := def.Encode()
		if err != nil {
			return nil, err
		}
		ord, err := r.orders.Create(spec.Owner, spec.Name, defJSON)
		if err != nil {
			return nil, fmt.Errorf("simharness: ordering %q: %w", spec.Name, err)
		}
		if _, err := d.VDC.Create(def); err != nil {
			return nil, fmt.Errorf("simharness: creating %q: %w", spec.Name, err)
		}
		_ = r.orders.Update(ord.ID, func(o *cloud.Order) {
			o.Status = cloud.OrderScheduled
		})
		r.meta[spec.Name] = &droneMeta{
			spec: spec, orderID: ord.ID, dwellTick: -1, owner: spec.Owner,
		}
		r.names = append(r.names, spec.Name)
	}

	if sc.Sabotage == "whitelist" {
		// A template that wrongly admits ARM/DISARM: the canary checker
		// must catch the first command that leaks through.
		broken := mavproxy.TemplateStandard()
		broken.Name = "sabotaged"
		broken.Commands[mavlink.CmdComponentArmDisarm] = true
		if err := d.Proxy.SetWhitelist(r.names[0], broken); err != nil {
			return nil, err
		}
	}

	if sc.Pilot != nil {
		target := sc.Pilot.Target
		// Resolve the VFC per call so the pilot survives a mid-mission
		// save/restore of its target (the VFC object is replaced).
		ep := gcs.EndpointFunc{
			SendFn: func(m mavlink.Message) []mavlink.Message {
				v, err := d.Proxy.VFCByName(target)
				if err != nil {
					return nil
				}
				return v.Send(m)
			},
			TelemetryFn: func() []mavlink.Message {
				v, err := d.Proxy.VFCByName(target)
				if err != nil {
					return nil
				}
				return v.Telemetry()
			},
		}
		r.station = gcs.New(ep, pilotProfile(sc.Pilot.Profile),
			[]byte("vpn-"+sc.Seed), sc.Seed+"/gcs")
	}

	r.checkers = DefaultCheckers()
	return r, nil
}

func pilotProfile(name string) netem.Profile {
	switch name {
	case "rf":
		return netem.RFHobby()
	case "wired":
		return netem.WiredFios()
	default:
		return netem.CellularLTE()
	}
}

func specToDefinition(spec DroneSpec) *core.Definition {
	def := &core.Definition{
		Name:              spec.Name,
		Owner:             spec.Owner,
		MaxDuration:       spec.MaxDurationS,
		EnergyAllotted:    spec.EnergyJ,
		Apps:              spec.Apps,
		AppArgs:           spec.AppArgs,
		WaypointDevices:   spec.WaypointDevices,
		ContinuousDevices: spec.ContinuousDevices,
	}
	if def.MaxDuration == 0 {
		def.MaxDuration = 600
	}
	if def.EnergyAllotted == 0 {
		def.EnergyAllotted = 45000
	}
	if def.WaypointDevices == nil {
		def.WaypointDevices = []string{"camera", sdk.FlightControlDevice}
	}
	for _, w := range spec.Waypoints {
		def.Waypoints = append(def.Waypoints, geo.Waypoint{
			Position: geo.Position{
				LatLon: geo.OffsetNE(Home.LatLon, w.NorthM, w.EastM),
				Alt:    w.AltM,
			},
			MaxRadius: w.RadiusM,
		})
	}
	return def
}

// --------------------------------------------------------------------------
// Event and violation recording

func (r *Runner) now() float64 { return float64(r.tick) * TickS }

func (r *Runner) event(kind, drone, detail string) {
	r.events = append(r.events, Event{
		Tick: r.tick, TimeS: r.now(), Kind: kind, Drone: drone, Detail: detail,
	})
	// Mirror into the flight recorder so black-box dumps interleave the
	// harness's view (faults fired, pilot actions) with the stack's own
	// events. Harness events are rare, so interning per call is fine here.
	r.drone.Tel.Emit(telemetry.K(drone), telemetry.K("harness."+kind), 0, 0, detail)
}

// Violate records an invariant violation (also mirrored into the trace) and
// dumps the flight recorder: the black box is most valuable at the moment an
// invariant breaks.
func (r *Runner) Violate(checker, drone, detail string) {
	r.fails = append(r.fails, Violation{
		Tick: r.tick, Checker: checker, Drone: drone, Detail: detail,
	})
	r.event("VIOLATION", drone, checker+": "+detail)
	r.drone.Tel.Dump(telemetry.K(drone), "violation:"+checker, nil)
}

// Drone exposes the assembled stack to checkers.
func (r *Runner) Drone() *core.Drone { return r.drone }

// Env exposes the cloud environment to checkers.
func (r *Runner) Env() *core.CloudEnv { return r.env }

// DroneNames returns the scenario's virtual drone names in declaration
// order (checkers must never iterate a map).
func (r *Runner) DroneNames() []string { return r.names }

// --------------------------------------------------------------------------
// The tick

// stepTick advances the whole stack one harness tick: physics + controller
// at the fast-loop rate (proxy ticked inside), then fault triggers, the
// scripted pilot, breach relay, and every invariant checker.
func (r *Runner) stepTick() {
	r.drone.StepSeconds(TickS)
	r.tick++
	r.fireFaults()
	r.pushBreaches()
	r.pilotAct()
	r.relayBreaches()
	for _, c := range r.checkers {
		c.Tick(r)
	}
}

// relayBreaches forwards VFC breach/recovery transitions to the VDC as SDK
// events and the trace, as the flight orchestrator does.
func (r *Runner) relayBreaches() {
	for _, name := range r.names {
		vd, err := r.drone.VDC.Get(name)
		if err != nil {
			continue
		}
		m := r.meta[name]
		rec := vd.VFC.Recovering()
		if rec && !m.breachOpen {
			m.breaches++
			m.breachOpen = true
			r.drone.VDC.NotifyBreach(name)
			r.event("breach", name, "geofence breached; recovery started")
		} else if !rec && m.breachOpen {
			m.breachOpen = false
			r.drone.VDC.NotifyControlReturned(name)
			r.event("recovered", name, fmt.Sprintf("mode=%s", modeName(r.drone.FC.Mode())))
		}
	}
}

func modeName(m uint32) string {
	switch m {
	case mavlink.ModeStabilize:
		return "stabilize"
	case mavlink.ModeGuided:
		return "guided"
	case mavlink.ModeLoiter:
		return "loiter"
	case mavlink.ModeLand:
		return "land"
	case mavlink.ModeRTL:
		return "rtl"
	case mavlink.ModeAuto:
		return "auto"
	}
	return fmt.Sprintf("mode-%d", m)
}

// --------------------------------------------------------------------------
// Faults

func (r *Runner) fireFaults() {
	for _, f := range r.faults {
		if f.fired {
			continue
		}
		if !f.pending && !r.faultDue(f) {
			continue
		}
		if f.Kind == FaultSaveRestore && !r.saveRestoreEligible(f.Target) {
			f.pending = true
			continue
		}
		f.fired = true
		f.pending = false
		r.applyFault(f)
	}
}

// faultDue evaluates the fault's anchor clock.
func (r *Runner) faultDue(f *faultState) bool {
	switch f.From {
	case "dwell":
		// Untargeted faults (wind, link) anchor on the pilot's drone if
		// there is one, else the first drone's dwell.
		anchor := f.Target
		if anchor == "" {
			if f.Kind == FaultLink && r.sc.Pilot != nil {
				anchor = r.sc.Pilot.Target
			} else {
				anchor = r.names[0]
			}
		}
		m := r.meta[anchor]
		if m == nil || m.dwellTick < 0 {
			return false
		}
		return float64(r.tick-m.dwellTick)*TickS >= f.AtS
	default: // "start": relative to liftoff
		if r.liftoff < 0 {
			return false
		}
		return float64(r.tick-r.liftoff)*TickS >= f.AtS
	}
}

// saveRestoreEligible: the target must have visited at least one waypoint
// and not currently hold one, so progress round-tripping is observable and
// the save does not tear an active waypoint grant down.
func (r *Runner) saveRestoreEligible(name string) bool {
	vd, err := r.drone.VDC.Get(name)
	if err != nil {
		return false
	}
	visited, _ := vd.Progress()
	at, _ := vd.AtWaypoint()
	return visited >= 1 && !at
}

func (r *Runner) applyFault(f *faultState) {
	switch f.Kind {
	case FaultMotor:
		r.drone.Sim.SetMotorHealth(f.Motor, f.Efficiency)
		r.event("fault", "", fmt.Sprintf("motor %d efficiency %.0f%%", f.Motor, f.Efficiency*100))
	case FaultWind:
		r.drone.Sim.SetWindFor(f.WindN, f.WindE, f.GustStd, f.WindForS)
		r.event("fault", "", fmt.Sprintf("wind squall N=%.1f E=%.1f gust=%.1f for %.0fs",
			f.WindN, f.WindE, f.GustStd, f.WindForS))
	case FaultLink:
		p := netem.Profile{
			Name: "degraded", MeanMS: f.MeanMS, StdMS: 30, MinMS: 50,
			SpikeProb: 0.01, SpikeMaxMS: 800, LossProb: f.LossProb,
		}
		if p.MeanMS == 0 {
			p.MeanMS = 250
		}
		r.station.SetLinkProfile(p)
		r.event("fault", r.sc.Pilot.Target,
			fmt.Sprintf("gcs link degraded mean=%.0fms loss=%.3f", p.MeanMS, p.LossProb))
	case FaultRevoke:
		r.revokePermission(f.Target, f.Permission)
	case FaultBreach:
		r.forceBreach(f.Target)
	case FaultSaveRestore:
		r.saveRestore(f.Target)
	case FaultDowngrade:
		if err := r.drone.Proxy.SetWhitelist(f.Target, mavproxy.TemplateGuidedOnly()); err == nil {
			r.event("fault", f.Target, "whitelist downgraded to guided-only")
		}
	}
}

func (r *Runner) revokePermission(name, device string) {
	vd, err := r.drone.VDC.Get(name)
	if err != nil {
		return
	}
	perm := map[string]string{
		"camera":                android.PermCamera,
		"gps":                   android.PermLocation,
		"sensors":               android.PermSensors,
		"microphone":            android.PermAudio,
		sdk.FlightControlDevice: android.PermFlightControl,
	}[device]
	if perm == "" {
		return
	}
	am := vd.Instance.ActivityManager()
	for _, pkg := range vd.Def.Apps {
		am.Revoke(vd.UIDFor(pkg), perm)
	}
	r.event("fault", name, "revoked "+device+" permission")
	r.drone.Tel.Dump(telemetry.K(name), "permission-revoked", nil)
}

// forceBreach pushes the drone outside the target's active geofence
// through the trusted master connection — a deterministic stand-in for any
// force (wind, drift, a hostile pilot) carrying the drone over the fence.
// The proxy's breach protocol must take over from here.
func (r *Runner) forceBreach(name string) {
	vd, err := r.drone.VDC.Get(name)
	if err != nil {
		return
	}
	at, idx := vd.AtWaypoint()
	if !at {
		return
	}
	wp := vd.Def.Waypoints[idx]
	outside := geo.Position{
		LatLon: geo.OffsetNE(wp.LatLon, wp.MaxRadius*1.5, 0),
		Alt:    wp.Alt,
	}
	r.meta[name].pushTarget = &outside
	r.event("fault", name, fmt.Sprintf("breach induced: pushing %.0fm outside fence", wp.MaxRadius*0.5))
}

// pushBreaches drives pending induced breaches: the master connection
// re-asserts the outbound target every tick (overriding any pilot
// re-targeting) until the controller's fence trips, then lets the breach
// protocol take over.
func (r *Runner) pushBreaches() {
	for _, name := range r.names {
		m := r.meta[name]
		if m.pushTarget == nil {
			continue
		}
		vd, err := r.drone.VDC.Get(name)
		if err != nil || vd.VFC.State() != mavproxy.VFCActive {
			m.pushTarget = nil // waypoint over; the push failed to land
			continue
		}
		if vd.VFC.Recovering() {
			m.pushTarget = nil // fence tripped, protocol running
			continue
		}
		master := r.drone.Proxy.Master().Controller()
		if master.SetModeNum(mavlink.ModeGuided) != nil {
			continue
		}
		_ = master.GotoPosition(*m.pushTarget, 0) //vet:allow errflow adversarial push; rejection by the VFC is an accepted outcome
	}
}

// saveRestore checkpoints the target into the VDR and restores it,
// asserting mission progress, allotment, and marked files round-trip.
func (r *Runner) saveRestore(name string) {
	vd, err := r.drone.VDC.Get(name)
	if err != nil {
		return
	}
	beforeVisited, beforeTotal := vd.Progress()
	beforeTime := vd.Allotment.TimeLeftS()
	beforeEnergy := vd.Allotment.EnergyLeftJ()
	beforeMarked := len(vd.MarkedFiles())

	entry, err := r.drone.VDC.Save(name)
	if err != nil {
		r.Violate("restore-roundtrip", name, "save failed: "+err.Error())
		return
	}
	if err := r.env.VDR.Save(entry); err != nil {
		r.Violate("restore-roundtrip", name, "VDR save failed: "+err.Error())
		return
	}
	r.event("save", name, fmt.Sprintf("checkpointed to VDR (%d/%d waypoints)", beforeVisited, beforeTotal))

	loaded, err := r.env.VDR.Load(name)
	if err != nil {
		r.Violate("restore-roundtrip", name, "VDR load failed: "+err.Error())
		return
	}
	restored, err := r.drone.VDC.Restore(loaded)
	if err != nil {
		r.Violate("restore-roundtrip", name, "restore failed: "+err.Error())
		return
	}
	afterVisited, afterTotal := restored.Progress()
	if afterVisited != beforeVisited || afterTotal != beforeTotal {
		r.Violate("restore-roundtrip", name, fmt.Sprintf(
			"progress %d/%d became %d/%d", beforeVisited, beforeTotal, afterVisited, afterTotal))
	}
	if diff := restored.Allotment.TimeLeftS() - beforeTime; diff > 0.01 || diff < -0.01 {
		r.Violate("restore-roundtrip", name, fmt.Sprintf(
			"time allotment %.1fs became %.1fs", beforeTime, restored.Allotment.TimeLeftS()))
	}
	if diff := restored.Allotment.EnergyLeftJ() - beforeEnergy; diff > 1 || diff < -1 {
		r.Violate("restore-roundtrip", name, fmt.Sprintf(
			"energy allotment %.0fJ became %.0fJ", beforeEnergy, restored.Allotment.EnergyLeftJ()))
	}
	if got := len(restored.MarkedFiles()); got != beforeMarked {
		r.Violate("restore-roundtrip", name, fmt.Sprintf(
			"marked files %d became %d", beforeMarked, got))
	}
	r.event("restore", name, fmt.Sprintf("restored from VDR (%d/%d waypoints)", afterVisited, afterTotal))
}

// --------------------------------------------------------------------------
// Scripted pilot

// pilotAct sends the next scripted GCS command when the pilot's target VFC
// is active: a cycle of in-fence position nudges, yaw, loiter, and guided
// — each through MAVLink framing, the VPN tunnel, and the emulated link.
func (r *Runner) pilotAct() {
	if r.station == nil {
		return
	}
	period := r.sc.Pilot.PeriodTicks
	if period == 0 {
		period = 10
	}
	if r.tick%period != 0 {
		return
	}
	target := r.sc.Pilot.Target
	vd, err := r.drone.VDC.Get(target)
	if err != nil || vd.VFC.State() != mavproxy.VFCActive {
		return
	}
	at, idx := vd.AtWaypoint()
	if !at {
		return
	}
	wp := vd.Def.Waypoints[idx]

	var msg mavlink.Message
	var what string
	switch r.pilotN % 4 {
	case 0:
		// Small in-fence nudge east of center.
		tgt := geo.OffsetNE(wp.LatLon, 0, wp.MaxRadius*0.2)
		msg = &mavlink.SetPositionTargetGlobalInt{
			LatE7: mavlink.LatLonToE7(tgt.Lat),
			LonE7: mavlink.LatLonToE7(tgt.Lon),
			Alt:   float32(wp.Alt),
		}
		what = "goto"
	case 1:
		msg = &mavlink.CommandLong{Command: mavlink.CmdConditionYaw,
			Param1: float32((r.pilotN * 45) % 360)}
		what = "yaw"
	case 2:
		msg = &mavlink.CommandLong{Command: mavlink.CmdNavLoiterUnlim}
		what = "loiter"
	default:
		msg = &mavlink.SetMode{CustomMode: mavlink.ModeGuided}
		what = "guided"
	}
	r.pilotN++

	replies, _, err := r.station.Send(msg)
	switch {
	case errors.Is(err, gcs.ErrLost):
		r.event("pilot", target, what+" lost on link")
	case err != nil:
		r.Violate("gcs-path", target, what+": "+err.Error())
	default:
		r.event("pilot", target, what+" "+ackSummary(replies))
	}
}

func ackSummary(replies []mavlink.Message) string {
	for _, m := range replies {
		if ack, ok := m.(*mavlink.CommandAck); ok {
			switch ack.Result {
			case mavlink.ResultAccepted:
				return "accepted"
			case mavlink.ResultDenied:
				return "denied"
			case mavlink.ResultTemporarilyRejected:
				return "rejected"
			default:
				return fmt.Sprintf("result-%d", ack.Result)
			}
		}
	}
	return "no-ack"
}

// --------------------------------------------------------------------------
// The mission

// Run executes the scenario end to end and returns the result. The flight
// mirrors core.ExecuteRoute — takeoff, per-stop transit/grant/dwell/leave,
// RTL, offload, VDR save — but advances tick-by-tick so faults, the pilot,
// and the checkers interleave with flight at harness resolution.
func (r *Runner) Run() (*Result, error) {
	maxTicks := r.sc.MaxTicks
	if maxTicks == 0 {
		maxTicks = 12000
	}

	if r.sc.HoldBeforeS > 0 {
		r.hold(r.sc.HoldBeforeS)
		r.event("hold", "", fmt.Sprintf("pre-flight ground hold %.0fs", r.sc.HoldBeforeS))
	}

	if err := r.takeoff(); err != nil {
		return nil, err
	}

	for _, name := range r.names {
		m := r.meta[name]
		for idx := range m.spec.Waypoints {
			if r.tick >= maxTicks {
				r.event("abort", "", "tick budget exhausted")
				break
			}
			if err := r.visit(name, idx); err != nil {
				return nil, err
			}
		}
	}

	r.returnHome()

	if r.sc.HoldAfterS > 0 {
		r.hold(r.sc.HoldAfterS)
		r.event("hold", "", fmt.Sprintf("post-flight ground hold %.0fs", r.sc.HoldAfterS))
	}

	r.offloadAndSave()

	for _, c := range r.checkers {
		c.Finish(r)
	}

	res := &Result{
		Scenario:      r.sc.Name,
		Seed:          r.sc.Seed,
		Ticks:         r.tick,
		SimSeconds:    r.now(),
		Events:        r.events,
		Violations:    r.fails,
		Orders:        r.orders.List(""),
		FlightRecords: r.drone.Tel.Records(),
	}
	return res, nil
}

func (r *Runner) takeoff() error {
	master := r.drone.Proxy.Master().Controller()
	r.tickOnce(wakeTakeoff) // let the estimator acquire a fix
	if err := master.SetModeNum(mavlink.ModeGuided); err != nil {
		return err
	}
	if err := master.Arm(); err != nil {
		return err
	}
	if err := master.Takeoff(core.TransitAltM); err != nil {
		return err
	}
	for i := 0; i < int(60/TickS); i++ {
		r.tickOnce(wakeTakeoff)
		if r.drone.Sim.AltitudeAGL() > core.TransitAltM-0.6 {
			break
		}
	}
	if r.drone.Sim.AltitudeAGL() <= core.TransitAltM-0.6 {
		return fmt.Errorf("simharness: takeoff did not complete (alt %.1f m)", r.drone.Sim.AltitudeAGL())
	}
	r.liftoff = r.tick
	r.event("takeoff", "", fmt.Sprintf("airborne at %dm", core.TransitAltM))

	// The portal hands out access once the drone is up (Figure 4).
	for _, name := range r.names {
		m := r.meta[name]
		_ = r.orders.Update(m.orderID, func(o *cloud.Order) {
			o.Status = cloud.OrderFlying
			o.Access = cloud.AccessInfo{
				VFCAddr: "vfc://" + name + ":5760",
				SSHAddr: "ssh://" + name + ":22",
				VPNKey:  "vpn-" + r.sc.Seed,
			}
		})
	}
	return nil
}

// visit flies to one waypoint, grants it, and dwells.
func (r *Runner) visit(name string, idx int) error {
	vd, err := r.drone.VDC.Get(name)
	if err != nil {
		return err
	}
	wp := vd.Def.Waypoints[idx]
	master := r.drone.Proxy.Master().Controller()

	// Transit under the flight planner's control.
	if err := master.SetModeNum(mavlink.ModeGuided); err != nil {
		return err
	}
	if err := master.GotoPosition(wp.Position, 0); err != nil {
		return err
	}
	r.event("transit", name, fmt.Sprintf("to waypoint %d", idx))
	dist := geo.Distance3D(r.drone.Sim.Position(), wp.Position)
	timeout := dist/2 + 30
	reached := false
	for elapsed := 0.0; elapsed < timeout; elapsed += TickS {
		r.tickOnce(wakeTransit)
		r.drone.VDC.TickTransit(TickS)
		if geo.Distance3D(r.drone.Sim.Position(), wp.Position) < 2 {
			reached = true
			break
		}
	}
	if !reached {
		return fmt.Errorf("simharness: could not reach waypoint %s/%d", name, idx)
	}

	// The save/restore fault may have replaced the VirtualDrone object.
	vd, err = r.drone.VDC.Get(name)
	if err != nil {
		return err
	}
	if err := r.drone.VDC.WaypointReached(name, idx); err != nil {
		return err
	}
	m := r.meta[name]
	if m.dwellTick < 0 {
		m.dwellTick = r.tick
	}
	r.event("reached", name, fmt.Sprintf("waypoint %d granted", idx))

	// Dwell: apps tick, the allotment is metered, the pilot flies.
	dwellCap := m.spec.Waypoints[idx].DwellS
	if dwellCap == 0 {
		dwellCap = 20
	}
	dwellCap = dwellCap*3 + 30
	lastEnergy := r.drone.Sim.EnergyUsedJ()
	why := "dwell cap"
	for elapsed := 0.0; elapsed < dwellCap; elapsed += TickS {
		r.tickOnce(wakeDwell)
		r.drone.VDC.TickActive(name, TickS)
		energyNow := r.drone.Sim.EnergyUsedJ()
		exhausted := r.drone.VDC.MeterActive(name, TickS, energyNow-lastEnergy)
		lastEnergy = energyNow
		if exhausted && !r.sabotageAllotment {
			why = "allotment exhausted"
			break
		}
		if vd.CompleteRequested() {
			why = "app completed"
			break
		}
	}
	r.event("dwell-end", name, why)

	if err := r.drone.VDC.WaypointLeft(name, idx); err != nil {
		return err
	}
	r.event("left", name, fmt.Sprintf("waypoint %d revoked", idx))
	return nil
}

func (r *Runner) returnHome() {
	master := r.drone.Proxy.Master().Controller()
	if err := master.SetModeNum(mavlink.ModeRTL); err != nil {
		r.event("rtl", "", "rtl refused: "+err.Error())
		return
	}
	r.event("rtl", "", "returning to launch")
	for elapsed := 0.0; elapsed < 240; elapsed += TickS {
		r.tickOnce(wakeRTL)
		if r.drone.Sim.OnGround() && !master.Armed() {
			break
		}
	}
	if r.drone.Sim.OnGround() {
		r.event("landed", "", fmt.Sprintf("flight %.0fs, %.0fJ",
			r.now(), r.drone.Sim.EnergyUsedJ()))
	} else {
		r.event("landed", "", "did not land within cap")
	}
}

// offloadAndSave is the flight-end workflow: marked files go to cloud
// storage, every virtual drone is checkpointed into the VDR, orders close.
func (r *Runner) offloadAndSave() {
	for _, name := range r.names {
		vd, err := r.drone.VDC.Get(name)
		if err != nil {
			continue // already saved mid-mission and not restored
		}
		m := r.meta[name]
		for _, p := range vd.MarkedFiles() {
			data, err := vd.Container.ReadFile(p)
			if err != nil {
				r.Violate("file-delivery", name, "marked file unreadable: "+p)
				continue
			}
			dst := path.Join("/", name, p)
			if err := r.env.Storage.Put(vd.Def.Owner, dst, data); err != nil {
				r.Violate("file-delivery", name, "offload refused: "+err.Error())
				continue
			}
			m.files = append(m.files, dst)
		}
		sort.Strings(m.files)
		if len(m.files) > 0 {
			r.event("offload", name, fmt.Sprintf("%d files to cloud storage", len(m.files)))
		}
		completed := vd.Done()

		entry, err := r.drone.VDC.Save(name)
		if err != nil {
			r.Violate("vdr-save", name, err.Error())
			continue
		}
		if err := r.env.VDR.Save(entry); err != nil {
			r.Violate("vdr-save", name, err.Error())
			continue
		}
		m.saved = true
		r.event("saved", name, fmt.Sprintf("to VDR, completed=%v", completed))

		status := cloud.OrderSaved
		if completed {
			status = cloud.OrderCompleted
		}
		_ = r.orders.Update(m.orderID, func(o *cloud.Order) { o.Status = status })
	}
}

// RunScenario is the one-call entry: build the stack, run in lockstep,
// return the result.
//
//vet:detpath scenario runs feed trace hashes and violation rendering
func RunScenario(sc *Scenario) (*Result, error) {
	return RunScenarioMode(sc, ModeLockstep)
}
