package simharness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBuiltinScenarios runs every canonical scenario end to end and
// requires a clean invariant record plus the key mission milestones.
func TestBuiltinScenarios(t *testing.T) {
	for _, sc := range Builtins() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			trace := res.Trace()
			for _, want := range []string{"takeoff", "reached", "left", "landed", "saved"} {
				if !strings.Contains(trace, want) {
					t.Errorf("trace missing %q event:\n%s", want, trace)
				}
			}
			// Every order must have closed out.
			for _, o := range res.Orders {
				if o.Status != "completed" && o.Status != "saved" {
					t.Errorf("order %s ended %q", o.ID, o.Status)
				}
			}
		})
	}
}

// TestDeterminism is the harness's core contract: the same scenario (same
// seed) must produce the identical tick-stamped event trace.
func TestDeterminism(t *testing.T) {
	for _, sc := range Builtins() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if a.Trace() != b.Trace() {
				t.Errorf("same seed, different traces:\n--- run 1:\n%s--- run 2:\n%s",
					a.Trace(), b.Trace())
			}
			if a.Ticks != b.Ticks {
				t.Errorf("ticks %d vs %d", a.Ticks, b.Ticks)
			}
		})
	}
}

// TestSeedChangesTrace guards against the trace being insensitive to the
// seed (which would make TestDeterminism vacuous). A calm no-pilot flight
// IS seed-insensitive by design, so use the lossy-GCS scenario, where the
// seed drives the link's loss and latency draws.
func TestSeedChangesTrace(t *testing.T) {
	sc := lossyGCS()
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc2 := lossyGCS()
	sc2.Seed = "another-seed"
	b, err := RunScenario(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace() == b.Trace() {
		t.Error("different seeds produced identical traces")
	}
}

// TestSabotageDetected proves the checkers can fail: deliberately broken
// enforcement must be caught by the matching checker, and only by it.
func TestSabotageDetected(t *testing.T) {
	wantChecker := map[string]string{
		"sabotage-whitelist": "whitelist-canary",
		"sabotage-allotment": "allotment-guard",
	}
	for _, sc := range Sabotaged() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Passed() {
				t.Fatalf("sabotaged scenario passed all checkers:\n%s", res.Trace())
			}
			want := wantChecker[sc.Name]
			for _, v := range res.Violations {
				if v.Checker != want {
					t.Errorf("unexpected checker %q fired: %s", v.Checker, v)
				}
			}
		})
	}
}

// TestBreachProtocolObserved pins the breach scenario's conduct: the fence
// trips, recovery runs, and it ends in loiter — never a failsafe landing
// mid-mission.
func TestBreachProtocolObserved(t *testing.T) {
	res, err := RunScenario(breachLoiter())
	if err != nil {
		t.Fatal(err)
	}
	trace := res.Trace()
	if !strings.Contains(trace, "geofence breached") {
		t.Fatalf("breach never tripped:\n%s", trace)
	}
	if !strings.Contains(trace, "recovered") || !strings.Contains(trace, "mode=loiter") {
		t.Fatalf("recovery did not end in loiter:\n%s", trace)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestSaveRestoreRoundTrips pins the mid-mission checkpoint: the scenario
// saves after the first waypoint and the restored drone finishes the
// second, delivering a file from each.
func TestSaveRestoreRoundTrips(t *testing.T) {
	res, err := RunScenario(saveRestoreMidMission())
	if err != nil {
		t.Fatal(err)
	}
	trace := res.Trace()
	if !strings.Contains(trace, "checkpointed to VDR (1/2 waypoints)") {
		t.Fatalf("no mid-mission save:\n%s", trace)
	}
	if !strings.Contains(trace, "restored from VDR (1/2 waypoints)") {
		t.Fatalf("no mid-mission restore:\n%s", trace)
	}
	if !strings.Contains(trace, "waypoint 1 revoked") {
		t.Fatalf("restored drone never finished waypoint 1:\n%s", trace)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestScenarioValidation covers the declarative schema's error paths.
func TestScenarioValidation(t *testing.T) {
	valid := func() *Scenario { return breachLoiter() }
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"no name", func(s *Scenario) { s.Name = "" }, "no name"},
		{"no drones", func(s *Scenario) { s.Drones = nil }, "no drones"},
		{"dup drone", func(s *Scenario) { s.Drones = append(s.Drones, s.Drones[0]) }, "duplicate"},
		{"no waypoints", func(s *Scenario) { s.Drones[0].Waypoints = nil }, "no waypoints"},
		{"bad pilot", func(s *Scenario) { s.Pilot.Target = "ghost" }, "unknown drone"},
		{"bad fault kind", func(s *Scenario) { s.Faults[0].Kind = "emp" }, "unknown kind"},
		{"bad fault target", func(s *Scenario) { s.Faults[0].Target = "ghost" }, "unknown target"},
		{"bad anchor", func(s *Scenario) { s.Faults[0].From = "noon" }, "unknown anchor"},
		{"link needs pilot", func(s *Scenario) {
			s.Pilot = nil
			s.Faults[0] = Fault{Kind: FaultLink, AtS: 1}
		}, "needs a pilot"},
		{"bad sabotage", func(s *Scenario) { s.Sabotage = "gremlins" }, "unknown sabotage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := valid()
			tc.mutate(sc)
			err := sc.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want containing %q", err, tc.want)
			}
		})
	}
	if err := valid().Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

// TestLoadScenarioJSON round-trips a scenario through its JSON file form —
// the same path the androne-sim CLI uses.
func TestLoadScenarioJSON(t *testing.T) {
	sc := lossyGCS()
	raw, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace() != b.Trace() {
		t.Error("JSON round-trip changed the trace")
	}

	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("loading malformed JSON succeeded")
	}
}

// TestByName resolves every shipped scenario and rejects unknown names.
func TestByName(t *testing.T) {
	for _, sc := range append(Builtins(), Sabotaged()...) {
		if got := ByName(sc.Name); got == nil || got.Name != sc.Name {
			t.Errorf("ByName(%q) = %v", sc.Name, got)
		}
	}
	if ByName("no-such-scenario") != nil {
		t.Error("ByName resolved an unknown name")
	}
}
