package simharness

import (
	"fmt"
	"strings"
	"testing"
)

// violationLines renders violations the way the determinism hash sees
// them: one String() line per violation.
func violationLines(r *Result) string {
	var b strings.Builder
	for _, v := range r.Violations {
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// firstDiff returns the first differing line between two multi-line
// strings, for readable failure output.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var la, lb string
		if i < len(al) {
			la = al[i]
		}
		if i < len(bl) {
			lb = bl[i]
		}
		if la != lb {
			return fmt.Sprintf("line %d:\n  lockstep: %q\n  event:    %q", i+1, la, lb)
		}
	}
	return "no differing line (lengths differ?)"
}

// TestEventModeEquivalence is the differential suite: every builtin and
// sabotaged scenario, across seed variants, must produce bit-identical
// results in event-driven mode and lockstep mode — same trace, same
// violations, same tick count, same sim duration. Lockstep is the
// oracle; any divergence is a bug in the event scheduler's leap logic.
func TestEventModeEquivalence(t *testing.T) {
	scens := append(Builtins(), Sabotaged()...)
	for _, base := range scens {
		base := base
		t.Run(base.Name, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < equivSeeds; i++ {
				seed := base.Seed
				if i > 0 {
					seed = fmt.Sprintf("%s-eq%d", base.Seed, i)
				}
				lockSC := *base
				lockSC.Seed = seed
				lock, err := RunScenarioMode(&lockSC, ModeLockstep)
				if err != nil {
					t.Fatalf("seed %q lockstep: %v", seed, err)
				}
				evSC := *base
				evSC.Seed = seed
				ev, err := RunScenarioMode(&evSC, ModeEvent)
				if err != nil {
					t.Fatalf("seed %q event: %v", seed, err)
				}

				if lock.Ticks != ev.Ticks {
					t.Errorf("seed %q: ticks diverged: lockstep %d event %d",
						seed, lock.Ticks, ev.Ticks)
				}
				if lock.SimSeconds != ev.SimSeconds {
					t.Errorf("seed %q: sim seconds diverged: lockstep %v event %v",
						seed, lock.SimSeconds, ev.SimSeconds)
				}
				if lt, et := lock.Trace(), ev.Trace(); lt != et {
					t.Errorf("seed %q: trace diverged at %s", seed, firstDiff(lt, et))
				}
				if lv, evv := violationLines(lock), violationLines(ev); lv != evv {
					t.Errorf("seed %q: violations diverged at %s", seed, firstDiff(lv, evv))
				}
			}
		})
	}
}

// TestEventModeLeapsDutyCycle guards against the equivalence suite
// passing vacuously: the event runner must actually be event-driven, not
// a lockstep clone. The duty-cycle scenario holds parked for 10 minutes;
// if the run completes with bit-identical results (checked above), the
// only way it can also be cheap is if the holds were leapt. Here we just
// pin the structural signal: the scenario's tick count covers the holds.
func TestEventModeLeapsDutyCycle(t *testing.T) {
	res, err := RunScenarioMode(dutyCycle(), ModeEvent)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("duty-cycle violated invariants: %v", res.Violations)
	}
	if min := holdTicks(600); res.Ticks < min {
		t.Fatalf("duty-cycle ran %d ticks; pre-flight hold alone is %d", res.Ticks, min)
	}
}

// TestEventModeFaultDuringHold aims two faults into the post-flight
// ground hold — one anchored on liftoff, one on the first dwell grant —
// so the event runner must schedule fault wakeups mid-hold, step the
// squall (a parked drone in wind is not idle), and resume leaping after
// it expires, all while staying bit-identical to lockstep. This is the
// hardest equivalence case: a missing or misplaced wakeup fires the
// fault on the wrong tick and diverges the trace.
func TestEventModeFaultDuringHold(t *testing.T) {
	base := ByName("duty-cycle")
	sc := *base
	sc.Name = "duty-cycle-squall-hold"
	sc.Seed = "squall-hold-1"
	sc.HoldBeforeS = 30
	sc.HoldAfterS = 180
	sc.Faults = []Fault{
		{Kind: FaultWind, From: "start", AtS: 150, WindN: 6, WindE: -4, GustStd: 1.5, WindForS: 20},
		{Kind: FaultWind, From: "dwell", AtS: 120, WindN: -3, WindE: 5, GustStd: 1.0, WindForS: 10},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}

	lockSC, evSC := sc, sc
	lock, err := RunScenarioMode(&lockSC, ModeLockstep)
	if err != nil {
		t.Fatalf("lockstep: %v", err)
	}
	ev, err := RunScenarioMode(&evSC, ModeEvent)
	if err != nil {
		t.Fatalf("event: %v", err)
	}

	if lock.Ticks != ev.Ticks {
		t.Errorf("ticks: lockstep %d, event %d", lock.Ticks, ev.Ticks)
	}
	if lt, et := lock.Trace(), ev.Trace(); lt != et {
		t.Errorf("traces differ: %s", firstDiff(lt, et))
	}
	if lv, evl := violationLines(lock), violationLines(ev); lv != evl {
		t.Errorf("violations differ: %s", firstDiff(lv, evl))
	}

	// Non-vacuity: both squalls actually fired, and after the flight was
	// over — i.e. inside the post-landing hold, where only a scheduled
	// wakeup can place them.
	landed := -1
	var faults []int
	for _, e := range lock.Events {
		switch e.Kind {
		case "landed":
			landed = e.Tick
		case "fault":
			faults = append(faults, e.Tick)
		}
	}
	if landed < 0 {
		t.Fatal("no landed event in lockstep trace")
	}
	if len(faults) != 2 {
		t.Fatalf("want 2 fault events, got %d", len(faults))
	}
	for _, ft := range faults {
		if ft <= landed {
			t.Errorf("fault at tick %d fired before landing (tick %d); not a during-hold fault", ft, landed)
		}
	}
}
