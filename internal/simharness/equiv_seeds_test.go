//go:build !race

package simharness

// equivSeeds is how many seed variants the differential equivalence
// suite runs per scenario. Race builds trim it (equiv_seeds_race_test.go)
// — the race detector makes each run ~10x slower and one seed already
// exercises every code path; the full seed sweep runs in the plain build.
const equivSeeds = 4
