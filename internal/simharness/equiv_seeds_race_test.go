//go:build race

package simharness

// Race builds run a trimmed seed sweep; see equiv_seeds_test.go.
const equivSeeds = 2
