// Package simharness is the end-to-end scenario runner for the AnDrone
// reproduction: it wires cloud orders and the VDR, the VDC's virtual
// drones, the device container, the MAVProxy VFCs, the flight controller,
// the SITL physics, and the emulated GCS link into one deterministic
// tick-driven simulation, injects faults from a declarative plan, and
// checks the paper's cross-layer invariants after every tick.
//
// Scenarios are declarative (Go structs or JSON): the virtual drones to
// order (waypoints as metric offsets from home, apps, allotments), an
// optional scripted GCS pilot on one virtual drone's VFC, and a timed
// fault plan. All randomness flows from the scenario seed through the
// string-seeded RNGs in sitl and netem, so the same scenario always
// produces the same tick-stamped event trace.
package simharness

import (
	"encoding/json"
	"fmt"
	"os"
)

// Scenario is a declarative end-to-end simulation.
type Scenario struct {
	// Name labels the scenario in traces and test output.
	Name string `json:"name"`
	// Seed feeds every RNG in the stack (physics, links, apps).
	Seed string `json:"seed"`
	// Drones are the virtual drones to order, visited in declaration
	// order, each waypoint in order — a fixed route so traces are stable.
	Drones []DroneSpec `json:"drones"`
	// Pilot optionally scripts a ground station driving one VFC over an
	// emulated link (exercising netem, the VPN tunnel, MAVLink framing,
	// and the whitelist on the real wire path).
	Pilot *PilotSpec `json:"pilot,omitempty"`
	// Faults is the timed fault plan.
	Faults []Fault `json:"faults,omitempty"`
	// Sabotage deliberately breaks an enforcement layer so the matching
	// invariant checker must fire: "whitelist" installs a template that
	// wrongly admits arm/disarm on the first drone's VFC; "allotment"
	// makes the runner ignore exhaustion instead of revoking control.
	// Used to prove the checkers can fail; "" for real runs.
	Sabotage string `json:"sabotage,omitempty"`
	// MaxTicks caps the simulation (0 = default 12000 ticks = 20 min sim).
	MaxTicks int `json:"max-ticks,omitempty"`
	// HoldBeforeS parks the drone on the ground for this many sim seconds
	// before takeoff — the duty-cycle idle an event-driven run leaps over
	// while lockstep pays for every tick. Hold ticks count against
	// MaxTicks.
	HoldBeforeS float64 `json:"hold-before-s,omitempty"`
	// HoldAfterS parks the drone after landing, before offload and VDR
	// save. Unlike the pre-takeoff hold, motor thrust and the attitude
	// estimate decay for a long while after touchdown, so this phase
	// mostly exercises the event runner's lockstep fallback.
	HoldAfterS float64 `json:"hold-after-s,omitempty"`
}

// DroneSpec orders one virtual drone.
type DroneSpec struct {
	Name  string   `json:"name"`
	Owner string   `json:"owner"`
	Apps  []string `json:"apps,omitempty"`
	// Waypoints as metric offsets from the drone's home position.
	Waypoints []WaypointSpec `json:"waypoints"`
	// MaxDurationS and EnergyJ are the allotment; zero values default to
	// 600 s / 45 kJ.
	MaxDurationS float64 `json:"max-duration-s,omitempty"`
	EnergyJ      float64 `json:"energy-j,omitempty"`
	// WaypointDevices defaults to camera + flight-control when empty.
	WaypointDevices   []string `json:"waypoint-devices,omitempty"`
	ContinuousDevices []string `json:"continuous-devices,omitempty"`
	// AppArgs maps app package to its JSON arguments.
	AppArgs map[string]json.RawMessage `json:"app-args,omitempty"`
}

// WaypointSpec is one waypoint as offsets from home.
type WaypointSpec struct {
	NorthM  float64 `json:"north-m"`
	EastM   float64 `json:"east-m"`
	AltM    float64 `json:"alt-m"`
	RadiusM float64 `json:"radius-m"`
	// DwellS sizes the dwell cap at this waypoint (0 = 20 s).
	DwellS float64 `json:"dwell-s,omitempty"`
}

// PilotSpec scripts a GCS on one VFC.
type PilotSpec struct {
	// Target names the virtual drone whose VFC the station drives.
	Target string `json:"target"`
	// Profile selects the link: "lte" (default), "rf", or "wired".
	Profile string `json:"profile,omitempty"`
	// PeriodTicks spaces pilot commands (0 = every 10 ticks = 1 s sim).
	PeriodTicks int `json:"period-ticks,omitempty"`
}

// Fault kinds.
const (
	// FaultMotor degrades one motor's efficiency (sitl.SetMotorHealth).
	FaultMotor = "motor"
	// FaultWind applies a timed wind squall (sitl.SetWindFor).
	FaultWind = "wind"
	// FaultLink swaps the GCS link to a degraded profile (needs a pilot).
	FaultLink = "link"
	// FaultRevoke revokes an Android permission from the target's apps.
	FaultRevoke = "revoke"
	// FaultBreach drives the drone outside the active geofence through the
	// trusted master connection, triggering the breach protocol.
	FaultBreach = "breach"
	// FaultSaveRestore checkpoints the target to the VDR mid-mission and
	// restores it, asserting progress round-trips.
	FaultSaveRestore = "save-restore"
	// FaultDowngrade swaps the target's whitelist to guided-only
	// mid-service (the provider downgrading a customer's control level).
	FaultDowngrade = "downgrade"
)

// Fault is one timed fault.
type Fault struct {
	Kind string `json:"kind"`
	// Target names the virtual drone the fault applies to (unused for
	// motor/wind, which hit the physical drone).
	Target string `json:"target,omitempty"`
	// From anchors AtS: "start" (liftoff, default) or "dwell" (the
	// target's first waypoint grant, so faults land inside the dwell
	// regardless of transit duration).
	From string `json:"from,omitempty"`
	// AtS is seconds of sim time after the anchor.
	AtS float64 `json:"at-s"`

	// Motor parameters.
	Motor      int     `json:"motor,omitempty"`
	Efficiency float64 `json:"efficiency,omitempty"`
	// Wind parameters.
	WindN    float64 `json:"wind-n,omitempty"`
	WindE    float64 `json:"wind-e,omitempty"`
	GustStd  float64 `json:"gust-std,omitempty"`
	WindForS float64 `json:"wind-for-s,omitempty"`
	// Link parameters.
	LossProb float64 `json:"loss-prob,omitempty"`
	MeanMS   float64 `json:"mean-ms,omitempty"`
	// Revoke parameter: "camera", "gps", "sensors", "microphone",
	// "flight-control".
	Permission string `json:"permission,omitempty"`
}

// Validate rejects scenarios the runner cannot execute.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("simharness: scenario has no name")
	}
	if len(s.Drones) == 0 {
		return fmt.Errorf("simharness: scenario %q has no drones", s.Name)
	}
	names := make(map[string]bool)
	for _, d := range s.Drones {
		if d.Name == "" {
			return fmt.Errorf("simharness: scenario %q: drone with no name", s.Name)
		}
		if names[d.Name] {
			return fmt.Errorf("simharness: scenario %q: duplicate drone %q", s.Name, d.Name)
		}
		names[d.Name] = true
		if len(d.Waypoints) == 0 {
			return fmt.Errorf("simharness: drone %q has no waypoints", d.Name)
		}
	}
	if s.Pilot != nil && !names[s.Pilot.Target] {
		return fmt.Errorf("simharness: pilot targets unknown drone %q", s.Pilot.Target)
	}
	for i, f := range s.Faults {
		switch f.Kind {
		case FaultMotor, FaultWind:
		case FaultLink:
			if s.Pilot == nil {
				return fmt.Errorf("simharness: fault %d: %q needs a pilot", i, f.Kind)
			}
		case FaultRevoke, FaultBreach, FaultSaveRestore, FaultDowngrade:
			if !names[f.Target] {
				return fmt.Errorf("simharness: fault %d: unknown target %q", i, f.Target)
			}
		default:
			return fmt.Errorf("simharness: fault %d: unknown kind %q", i, f.Kind)
		}
		switch f.From {
		case "", "start", "dwell":
		default:
			return fmt.Errorf("simharness: fault %d: unknown anchor %q", i, f.From)
		}
	}
	switch s.Sabotage {
	case "", "whitelist", "allotment":
	default:
		return fmt.Errorf("simharness: unknown sabotage %q", s.Sabotage)
	}
	if s.HoldBeforeS < 0 || s.HoldAfterS < 0 {
		return fmt.Errorf("simharness: scenario %q: negative ground hold", s.Name)
	}
	return nil
}

// Load reads a scenario from a JSON file.
func Load(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Scenario
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("simharness: parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
