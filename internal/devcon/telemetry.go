// Flight-recorder instrumentation for the shared device services. Device
// traffic is tracked at the acquire/release/deny granularity rather than
// per read — a tenant polling the IMU at 10 Hz would otherwise evict
// everything interesting from its ring. Emissions happen in handleTxn,
// which holds no devcon locks.

package devcon

import "androne/internal/telemetry"

var (
	mAcquires = telemetry.NewCounter("androne_dev_acquires_total",
		"First uses of a device service by a (container, pid) pair.")
	mReleases = telemetry.NewCounter("androne_dev_releases_total",
		"Device service releases (explicit CmdRelease).")
	mDenials = telemetry.NewCounter("androne_dev_denials_total",
		"Device requests refused by permission check or VDC policy.")
)

// Trace event kinds.
var (
	kAcquire = telemetry.K("dev.acquire")
	kRelease = telemetry.K("dev.release")
	kDeny    = telemetry.K("dev.deny")
)

// SetRecorder attaches a flight recorder to the device container. Call
// during drone bring-up, before tenant traffic starts.
func (dc *DeviceContainer) SetRecorder(r *telemetry.Recorder) { dc.tel = r }
