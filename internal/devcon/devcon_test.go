package devcon

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"androne/internal/android"
	"androne/internal/binder"
	"androne/internal/devices"
	"androne/internal/geo"
)

type fakeWorld struct {
	pos geo.Position
}

func (w *fakeWorld) Position() geo.Position                   { return w.pos }
func (w *fakeWorld) VelocityNED() (float64, float64, float64) { return 0, 0, 0 }
func (w *fakeWorld) Attitude() (float64, float64, float64)    { return 0, 0, 0 }
func (w *fakeWorld) AccelBody() (float64, float64, float64)   { return 0, 0, -9.81 }
func (w *fakeWorld) GyroBody() (float64, float64, float64)    { return 0, 0, 0 }
func (w *fakeWorld) Now() time.Time                           { return time.Unix(1700000000, 0) }

func newRegistry(w devices.WorldSource) *devices.Registry {
	r := devices.NewRegistry()
	r.Add(devices.NewCamera("camera0", w, 32, 24))
	r.Add(devices.NewGPS("gps0", w, 0))
	r.Add(devices.NewIMU("imu0", w, 0, 0))
	r.Add(devices.NewBarometer("baro0", w, 250, 0))
	r.Add(devices.NewMagnetometer("mag0", w))
	r.Add(devices.NewMicrophone("mic0", w, 8000))
	return r
}

// env is a full device-container test environment with n virtual drones.
type env struct {
	driver *binder.Driver
	dc     *DeviceContainer
	vds    []*android.Instance
}

func newEnv(t *testing.T, nDrones int, policy Policy) *env {
	t.Helper()
	w := &fakeWorld{pos: geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 15}}
	d := binder.NewDriver()
	dc, err := New(d, newRegistry(w), policy)
	if err != nil {
		t.Fatal(err)
	}
	e := &env{driver: d, dc: dc}
	for i := 0; i < nDrones; i++ {
		ns, err := d.CreateNamespace(vdName(i))
		if err != nil {
			t.Fatal(err)
		}
		in, err := BootBridged(ns)
		if err != nil {
			t.Fatal(err)
		}
		e.vds = append(e.vds, in)
	}
	return e
}

func vdName(i int) string { return string(rune('a'+i)) + "-vdrone" }

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table1 rows = %d, want 4", len(rows))
	}
	want := map[string][]devices.Kind{
		SvcAudioFlinger:    {devices.KindMicrophone, devices.KindSpeaker},
		SvcCamera:          {devices.KindCamera},
		SvcLocationManager: {devices.KindGPS},
		SvcSensorService:   {devices.KindIMU, devices.KindBarometer, devices.KindMagnetometer},
	}
	for _, row := range rows {
		kinds, ok := want[row.Service]
		if !ok {
			t.Fatalf("unexpected service %q", row.Service)
		}
		if len(kinds) != len(row.Devices) {
			t.Fatalf("%s devices = %v, want %v", row.Service, row.Devices, kinds)
		}
	}
}

func TestSharedServicesVisibleInVirtualDrones(t *testing.T) {
	e := newEnv(t, 2, nil)
	for i, vd := range e.vds {
		svcs := vd.ServiceManager().Services()
		got := make(map[string]bool, len(svcs))
		for _, s := range svcs {
			got[s] = true
		}
		for _, want := range SharedServices {
			if !got[want] {
				t.Errorf("vdrone %d missing shared service %q (has %v)", i, want, svcs)
			}
		}
	}
}

func TestFutureVirtualDroneReceivesServices(t *testing.T) {
	e := newEnv(t, 0, nil)
	ns, err := e.driver.CreateNamespace("late-vdrone")
	if err != nil {
		t.Fatal(err)
	}
	in, err := BootBridged(ns)
	if err != nil {
		t.Fatal(err)
	}
	svcs := in.ServiceManager().Services()
	found := false
	for _, s := range svcs {
		if s == SvcCamera {
			found = true
		}
	}
	if !found {
		t.Fatalf("late vdrone services = %v, missing %s", svcs, SvcCamera)
	}
}

func TestDeviceContainerHoldsHardwareExclusively(t *testing.T) {
	w := &fakeWorld{}
	reg := newRegistry(w)
	d := binder.NewDriver()
	if _, err := New(d, reg, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open("camera0", "vd1"); !errors.Is(err, devices.ErrBusy) {
		t.Fatalf("direct hardware open: %v, want ErrBusy", err)
	}
}

func TestAppCaptureWithPermission(t *testing.T) {
	e := newEnv(t, 1, nil)
	vd := e.vds[0]
	const uid = 10001
	vd.ActivityManager().Grant(uid, android.PermCamera)

	app := android.NewClient(vd.Namespace(), uid)
	h, err := app.GetService(SvcCamera)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := app.Call(h, CmdCapture, nil)
	if err != nil {
		t.Fatal(err)
	}
	var frame devices.Frame
	if err := json.Unmarshal(out, &frame); err != nil {
		t.Fatal(err)
	}
	if frame.Width != 32 || frame.Height != 24 || len(frame.Pixels) != 32*24 {
		t.Fatalf("frame = %dx%d, %d pixels", frame.Width, frame.Height, len(frame.Pixels))
	}
	if frame.Position.Lat == 0 {
		t.Fatal("frame missing position")
	}
}

func TestAppDeniedWithoutPermission(t *testing.T) {
	e := newEnv(t, 1, nil)
	vd := e.vds[0]
	app := android.NewClient(vd.Namespace(), 10002) // no grant
	h, err := app.GetService(SvcCamera)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := app.Call(h, CmdCapture, nil); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("err = %v, want ErrPermissionDenied", err)
	}
}

func TestPermissionIsPerContainer(t *testing.T) {
	// The same uid granted in vd a must not be granted in vd b: the check
	// goes to the calling container's ActivityManager.
	e := newEnv(t, 2, nil)
	const uid = 10001
	e.vds[0].ActivityManager().Grant(uid, android.PermCamera)

	for i, wantOK := range []bool{true, false} {
		app := android.NewClient(e.vds[i].Namespace(), uid)
		h, err := app.GetService(SvcCamera)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = app.Call(h, CmdCapture, nil)
		if wantOK && err != nil {
			t.Errorf("vd %d: %v", i, err)
		}
		if !wantOK && !errors.Is(err, ErrPermissionDenied) {
			t.Errorf("vd %d: err = %v, want ErrPermissionDenied", i, err)
		}
	}
}

func TestVDCPolicyDenies(t *testing.T) {
	blocked := PolicyFunc(func(c string, k devices.Kind) bool {
		return k != devices.KindCamera // camera suspended (e.g. at another party's waypoint)
	})
	e := newEnv(t, 1, blocked)
	vd := e.vds[0]
	const uid = 10001
	vd.ActivityManager().Grant(uid, android.PermCamera)
	vd.ActivityManager().Grant(uid, android.PermLocation)

	app := android.NewClient(vd.Namespace(), uid)
	ch, _ := app.GetService(SvcCamera)
	if _, _, err := app.Call(ch, CmdCapture, nil); !errors.Is(err, ErrPolicyDenied) {
		t.Fatalf("camera: %v, want ErrPolicyDenied", err)
	}
	// GPS still allowed: policy is per device kind.
	lh, _ := app.GetService(SvcLocationManager)
	if _, _, err := app.Call(lh, CmdGetFix, nil); err != nil {
		t.Fatalf("gps: %v", err)
	}
}

func TestPolicySwapRevokesImmediately(t *testing.T) {
	e := newEnv(t, 1, nil)
	vd := e.vds[0]
	const uid = 10001
	vd.ActivityManager().Grant(uid, android.PermCamera)
	app := android.NewClient(vd.Namespace(), uid)
	h, _ := app.GetService(SvcCamera)
	if _, _, err := app.Call(h, CmdCapture, nil); err != nil {
		t.Fatal(err)
	}
	// VDC revokes camera (drone left the waypoint).
	e.dc.SetPolicy(PolicyFunc(func(string, devices.Kind) bool { return false }))
	if _, _, err := app.Call(h, CmdCapture, nil); !errors.Is(err, ErrPolicyDenied) {
		t.Fatalf("after revoke: %v, want ErrPolicyDenied", err)
	}
}

func TestSensorAndLocationReads(t *testing.T) {
	e := newEnv(t, 1, nil)
	vd := e.vds[0]
	const uid = 10001
	am := vd.ActivityManager()
	am.Grant(uid, android.PermSensors)
	am.Grant(uid, android.PermLocation)
	am.Grant(uid, android.PermAudio)
	app := android.NewClient(vd.Namespace(), uid)

	// GPS fix.
	lh, _ := app.GetService(SvcLocationManager)
	out, _, err := app.Call(lh, CmdGetFix, nil)
	if err != nil {
		t.Fatal(err)
	}
	var fix devices.Fix
	if err := json.Unmarshal(out, &fix); err != nil {
		t.Fatal(err)
	}
	if fix.Position.Lat != 43.6084298 {
		t.Fatalf("fix = %+v", fix)
	}

	// IMU.
	sh, _ := app.GetService(SvcSensorService)
	out, _, err = app.Call(sh, CmdReadIMU, nil)
	if err != nil {
		t.Fatal(err)
	}
	var imu devices.IMUSample
	if err := json.Unmarshal(out, &imu); err != nil {
		t.Fatal(err)
	}
	if imu.AccelZ != -9.81 {
		t.Fatalf("imu = %+v", imu)
	}

	// Barometer.
	out, _, err = app.Call(sh, CmdReadBaro, nil)
	if err != nil {
		t.Fatal(err)
	}
	var baro map[string]float64
	if err := json.Unmarshal(out, &baro); err != nil {
		t.Fatal(err)
	}
	if baro["pressure"] < 90000 || baro["pressure"] > 102000 {
		t.Fatalf("pressure = %v", baro)
	}

	// Magnetometer.
	out, _, err = app.Call(sh, CmdReadMag, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mag map[string]float64
	if err := json.Unmarshal(out, &mag); err != nil {
		t.Fatal(err)
	}
	if mag["heading"] != 0 {
		t.Fatalf("heading = %v", mag)
	}

	// Audio.
	ah, _ := app.GetService(SvcAudioFlinger)
	req, _ := json.Marshal(map[string]int{"Samples": 256})
	out, _, err = app.Call(ah, CmdReadAudio, req)
	if err != nil {
		t.Fatal(err)
	}
	var audio map[string][]byte
	if err := json.Unmarshal(out, &audio); err != nil {
		t.Fatal(err)
	}
	if len(audio["pcm"]) != 512 {
		t.Fatalf("pcm bytes = %d", len(audio["pcm"]))
	}
}

func TestAudioBadRequests(t *testing.T) {
	e := newEnv(t, 1, nil)
	vd := e.vds[0]
	const uid = 10001
	vd.ActivityManager().Grant(uid, android.PermAudio)
	app := android.NewClient(vd.Namespace(), uid)
	ah, _ := app.GetService(SvcAudioFlinger)
	if _, _, err := app.Call(ah, CmdReadAudio, []byte("not json")); err == nil {
		t.Fatal("malformed request accepted")
	}
	req, _ := json.Marshal(map[string]int{"Samples": -5})
	if _, _, err := app.Call(ah, CmdReadAudio, req); err == nil {
		t.Fatal("negative sample count accepted")
	}
	req, _ = json.Marshal(map[string]int{"Samples": 1 << 21})
	if _, _, err := app.Call(ah, CmdReadAudio, req); err == nil {
		t.Fatal("oversized sample count accepted")
	}
}

func TestUsageTrackingAndRelease(t *testing.T) {
	e := newEnv(t, 1, nil)
	vd := e.vds[0]
	const uid = 10001
	vd.ActivityManager().Grant(uid, android.PermCamera)
	app := android.NewClient(vd.Namespace(), uid)
	h, _ := app.GetService(SvcCamera)
	if _, _, err := app.Call(h, CmdCapture, nil); err != nil {
		t.Fatal(err)
	}

	container := vd.Namespace().Name()
	users := e.dc.ActiveUsers(SvcCamera, container)
	if len(users) != 1 || users[0] != app.Proc().PID() {
		t.Fatalf("ActiveUsers = %v, want [%d]", users, app.Proc().PID())
	}
	// Voluntary release (the AnDrone SDK path).
	if _, _, err := app.Call(h, CmdRelease, nil); err != nil {
		t.Fatal(err)
	}
	if users := e.dc.ActiveUsers(SvcCamera, container); len(users) != 0 {
		t.Fatalf("after release: %v", users)
	}

	// Re-acquire, then container-level teardown.
	if _, _, err := app.Call(h, CmdCapture, nil); err != nil {
		t.Fatal(err)
	}
	e.dc.ReleaseContainer(container)
	if users := e.dc.ActiveUsers(SvcCamera, container); len(users) != 0 {
		t.Fatalf("after container release: %v", users)
	}
}

func TestDeniedAccessNotTracked(t *testing.T) {
	e := newEnv(t, 1, nil)
	vd := e.vds[0]
	app := android.NewClient(vd.Namespace(), 10001) // no permission
	h, _ := app.GetService(SvcCamera)
	_, _, _ = app.Call(h, CmdCapture, nil)
	if users := e.dc.ActiveUsers(SvcCamera, vd.Namespace().Name()); len(users) != 0 {
		t.Fatalf("denied access tracked: %v", users)
	}
}

func TestLocalFlightBridgeAccess(t *testing.T) {
	// The flight container's HAL bridge runs as a native daemon. Booted via
	// BootBridged in its own namespace, with system uid, it reaches GPS and
	// sensors through the shared services.
	e := newEnv(t, 0, nil)
	ns, err := e.driver.CreateNamespace("flightcon")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BootBridged(ns); err != nil {
		t.Fatal(err)
	}
	bridge := android.NewClient(ns, 0) // native root daemon
	lh, err := bridge.GetService(SvcLocationManager)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := bridge.Call(lh, CmdGetFix, nil)
	if err != nil {
		t.Fatal(err)
	}
	var fix devices.Fix
	if err := json.Unmarshal(out, &fix); err != nil {
		t.Fatal(err)
	}
	if fix.Satellites < 4 {
		t.Fatalf("fix = %+v", fix)
	}
}

func TestMissingHardwareFailsBoot(t *testing.T) {
	w := &fakeWorld{}
	reg := devices.NewRegistry()
	reg.Add(devices.NewCamera("camera0", w, 8, 8)) // only a camera
	d := binder.NewDriver()
	if _, err := New(d, reg, nil); err == nil {
		t.Fatal("boot succeeded without required devices")
	}
}

func TestUnsupportedCode(t *testing.T) {
	e := newEnv(t, 1, nil)
	vd := e.vds[0]
	const uid = 10001
	vd.ActivityManager().Grant(uid, android.PermCamera)
	app := android.NewClient(vd.Namespace(), uid)
	h, _ := app.GetService(SvcCamera)
	// GPS command sent to the camera service.
	if _, _, err := app.Call(h, CmdGetFix, nil); err == nil {
		t.Fatal("camera service answered a GPS command")
	}
}

func TestSpeakerPlayback(t *testing.T) {
	w := &fakeWorld{}
	reg := newRegistry(w)
	spk := devices.NewSpeaker("spk0", 8000)
	reg.Add(spk)
	d := binder.NewDriver()
	dc, err := New(d, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ns, _ := d.CreateNamespace("vd-audio")
	vd, err := BootBridged(ns)
	if err != nil {
		t.Fatal(err)
	}
	const uid = 10001
	vd.ActivityManager().Grant(uid, android.PermAudio)
	app := android.NewClient(ns, uid)
	h, err := app.GetService(SvcAudioFlinger)
	if err != nil {
		t.Fatal(err)
	}
	pcm := make([]byte, 256)
	req, _ := json.Marshal(map[string][]byte{"PCM": pcm})
	out, _, err := app.Call(h, CmdPlayAudio, req)
	if err != nil {
		t.Fatal(err)
	}
	var res map[string]int
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if res["played"] != 128 {
		t.Fatalf("played = %d", res["played"])
	}
	if spk.SamplesPlayed() != 128 {
		t.Fatalf("speaker consumed %d", spk.SamplesPlayed())
	}
	// Oversized and empty payloads rejected.
	big, _ := json.Marshal(map[string][]byte{"PCM": make([]byte, 3<<20)})
	if _, _, err := app.Call(h, CmdPlayAudio, big); err == nil {
		t.Fatal("oversized playback accepted")
	}
	empty, _ := json.Marshal(map[string][]byte{"PCM": nil})
	if _, _, err := app.Call(h, CmdPlayAudio, empty); err == nil {
		t.Fatal("empty playback accepted")
	}
	_ = dc
}

func TestSpeakerAbsent(t *testing.T) {
	// Without speaker hardware, playback fails cleanly; everything else
	// works (the prototype drone has no speaker).
	e := newEnv(t, 1, nil)
	vd := e.vds[0]
	const uid = 10001
	vd.ActivityManager().Grant(uid, android.PermAudio)
	app := android.NewClient(vd.Namespace(), uid)
	h, _ := app.GetService(SvcAudioFlinger)
	req, _ := json.Marshal(map[string][]byte{"PCM": make([]byte, 16)})
	if _, _, err := app.Call(h, CmdPlayAudio, req); err == nil {
		t.Fatal("playback succeeded without hardware")
	}
}
