// Package devcon implements AnDrone's device container: a special container
// running a minimal Android instance with direct access to hardware devices,
// hosting the single set of Android device services and multiplexing them to
// every virtual drone container.
//
// The device container's ServiceManager publishes the services in the shared
// list (paper Table 1) to all namespaces via the PUBLISH_TO_ALL_NS ioctl.
// Virtual drone ServiceManagers publish their ActivityManager to the device
// container via PUBLISH_TO_DEV_CON so device services can route
// checkPermission() calls back to the *calling* container's ActivityManager
// — identified by the container id Binder stamps on each transaction — and
// additionally query the VDC's device-access policy.
package devcon

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"androne/internal/android"
	"androne/internal/binder"
	"androne/internal/devices"
	"androne/internal/telemetry"
)

// NamespaceName is the device container's Binder namespace.
const NamespaceName = "devcon"

// Shared device service names and the devices they manage (paper Table 1).
const (
	SvcAudioFlinger    = "media.audio_flinger" // microphone, speakers
	SvcCamera          = "media.camera"        // camera
	SvcLocationManager = "location"            // GPS
	SvcSensorService   = "sensorservice"       // motion, environmental sensors
)

// SharedServices is the pre-specified list of services the device
// container's ServiceManager publishes to all namespaces.
var SharedServices = []string{SvcAudioFlinger, SvcCamera, SvcLocationManager, SvcSensorService}

// ServiceDevices maps each shared service to the devices it manages,
// regenerating paper Table 1.
var ServiceDevices = map[string][]devices.Kind{
	SvcAudioFlinger:    {devices.KindMicrophone, devices.KindSpeaker},
	SvcCamera:          {devices.KindCamera},
	SvcLocationManager: {devices.KindGPS},
	SvcSensorService:   {devices.KindIMU, devices.KindBarometer, devices.KindMagnetometer},
}

// Device service command codes.
const (
	CmdCapture = binder.CodeUser + 16 + iota
	CmdGetFix
	CmdReadIMU
	CmdReadBaro
	CmdReadMag
	CmdReadAudio
	CmdPlayAudio
	CmdRelease
)

// Errors.
var (
	ErrPermissionDenied = errors.New("devcon: permission denied")
	ErrPolicyDenied     = errors.New("devcon: device access denied by VDC policy")
)

// Policy is the VDC's device-access decision interface: checkPermission()
// in the device container queries it in addition to the calling container's
// ActivityManager, so device access can be granted or revoked per waypoint.
type Policy interface {
	// AllowDevice reports whether the container may use the device kind now.
	AllowDevice(container string, kind devices.Kind) bool
}

// AllowAll is a Policy that grants everything — the configuration of a
// vanilla Android instance without the VDC.
type AllowAll struct{}

// AllowDevice implements Policy.
func (AllowAll) AllowDevice(string, devices.Kind) bool { return true }

// PolicyFunc adapts a function to Policy.
type PolicyFunc func(container string, kind devices.Kind) bool

// AllowDevice implements Policy.
func (f PolicyFunc) AllowDevice(c string, k devices.Kind) bool { return f(c, k) }

// DeviceContainer is the running device container.
type DeviceContainer struct {
	inst *android.Instance
	reg  *devices.Registry

	mu       sync.Mutex
	policy   Policy
	services map[string]*deviceService

	// tel is the drone's flight recorder; nil when running without one.
	// Set during bring-up (SetRecorder), before tenant traffic.
	tel *telemetry.Recorder

	// hardware opened exclusively by the device container
	camera  *devices.Camera
	gps     *devices.GPS
	imu     *devices.IMU
	baro    *devices.Barometer
	mag     *devices.Magnetometer
	mic     *devices.Microphone
	speaker *devices.Speaker // optional; drones are usually speakerless
}

// New boots the device container: creates its namespace, designates it as
// the Binder device namespace, opens all hardware devices exclusively, and
// starts the shared device services with a ServiceManager hook that
// publishes them to all namespaces.
func New(d *binder.Driver, reg *devices.Registry, policy Policy) (*DeviceContainer, error) {
	if policy == nil {
		policy = AllowAll{}
	}
	ns, err := d.CreateNamespace(NamespaceName)
	if err != nil {
		return nil, err
	}
	d.SetDeviceNamespace(ns)

	dc := &DeviceContainer{reg: reg, policy: policy, services: make(map[string]*deviceService)}

	shared := make(map[string]bool, len(SharedServices))
	for _, s := range SharedServices {
		shared[s] = true
	}
	hook := func(sm *android.ServiceManager, name string, h binder.Handle) error {
		// When the device container's ServiceManager receives a new service
		// registration it checks the pre-specified shared list and publishes
		// matches to all running (and future) virtual drone namespaces. A
		// failed publish fails the registration: a device service invisible
		// to tenant namespaces (and absent from the kernel-side replay list)
		// must not come up looking healthy.
		if shared[name] {
			if err := sm.Proc().PublishToAllNS(name, h); err != nil {
				return fmt.Errorf("devcon: publishing %s to all namespaces: %w", name, err)
			}
		}
		return nil
	}
	inst, err := android.Boot(ns, android.WithServiceManagerHook(hook))
	if err != nil {
		return nil, fmt.Errorf("devcon: boot: %w", err)
	}
	dc.inst = inst

	if err := dc.openHardware(); err != nil {
		return nil, err
	}
	if err := dc.startServices(); err != nil {
		return nil, err
	}
	return dc, nil
}

// openHardware acquires exclusive access to every physical device, creating
// for each device the illusion that it is used by one task at a time.
func (dc *DeviceContainer) openHardware() error {
	open := func(kind devices.Kind) (devices.Device, error) {
		names := dc.reg.ByKind(kind)
		if len(names) == 0 {
			return nil, fmt.Errorf("devcon: no %s device", kind)
		}
		return dc.reg.Open(names[0], NamespaceName)
	}
	var err error
	grab := func(kind devices.Kind) devices.Device {
		if err != nil {
			return nil
		}
		var d devices.Device
		d, err = open(kind)
		return d
	}
	cam := grab(devices.KindCamera)
	gps := grab(devices.KindGPS)
	imu := grab(devices.KindIMU)
	baro := grab(devices.KindBarometer)
	mag := grab(devices.KindMagnetometer)
	mic := grab(devices.KindMicrophone)
	if err != nil {
		return err
	}
	dc.camera = cam.(*devices.Camera)
	dc.gps = gps.(*devices.GPS)
	dc.imu = imu.(*devices.IMU)
	dc.baro = baro.(*devices.Barometer)
	dc.mag = mag.(*devices.Magnetometer)
	dc.mic = mic.(*devices.Microphone)
	// Speaker is optional hardware.
	if names := dc.reg.ByKind(devices.KindSpeaker); len(names) > 0 {
		if d, err := dc.reg.Open(names[0], NamespaceName); err == nil {
			dc.speaker = d.(*devices.Speaker)
		}
	}
	return nil
}

func (dc *DeviceContainer) startServices() error {
	specs := []struct {
		name string
		kind devices.Kind
		perm string
	}{
		{SvcCamera, devices.KindCamera, android.PermCamera},
		{SvcLocationManager, devices.KindGPS, android.PermLocation},
		{SvcSensorService, devices.KindIMU, android.PermSensors},
		{SvcAudioFlinger, devices.KindMicrophone, android.PermAudio},
	}
	for _, s := range specs {
		svc := &deviceService{
			dc:    dc,
			name:  s.name,
			kind:  s.kind,
			perm:  s.perm,
			users: make(map[string]map[int]bool),
		}
		svc.client = android.NewClient(dc.inst.Namespace(), 0)
		node := svc.client.Proc().NewNode(s.name, svc.handleTxn)
		if err := svc.client.AddService(s.name, node); err != nil {
			return fmt.Errorf("devcon: registering %s: %w", s.name, err)
		}
		dc.mu.Lock()
		dc.services[s.name] = svc
		dc.mu.Unlock()
	}
	return nil
}

// Instance returns the device container's Android instance.
func (dc *DeviceContainer) Instance() *android.Instance { return dc.inst }

// SetPolicy swaps the VDC policy (the VDC installs itself after boot).
func (dc *DeviceContainer) SetPolicy(p Policy) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if p == nil {
		p = AllowAll{}
	}
	dc.policy = p
}

func (dc *DeviceContainer) currentPolicy() Policy {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.policy
}

// ActiveUsers returns the PIDs from container that have accessed the named
// service since their last release — what the VDC asks before terminating
// processes that ignore a revocation notice.
func (dc *DeviceContainer) ActiveUsers(service, container string) []int {
	dc.mu.Lock()
	svc := dc.services[service]
	dc.mu.Unlock()
	if svc == nil {
		return nil
	}
	return svc.activeUsers(container)
}

// ReleaseContainer clears usage tracking for a container across all
// services, used when a virtual drone is stopped.
func (dc *DeviceContainer) ReleaseContainer(container string) {
	dc.mu.Lock()
	svcs := make([]*deviceService, 0, len(dc.services))
	for _, s := range dc.services { //vet:allow detguard per-service bookkeeping clear; services independent
		svcs = append(svcs, s)
	}
	dc.mu.Unlock()
	for _, s := range svcs {
		s.releaseContainer(container)
	}
}

// Table1 renders the service-to-device mapping, regenerating paper Table 1.
func Table1() []struct {
	Service string
	Devices []devices.Kind
} {
	names := make([]string, 0, len(ServiceDevices))
	for n := range ServiceDevices {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		Service string
		Devices []devices.Kind
	}, 0, len(names))
	for _, n := range names {
		out = append(out, struct {
			Service string
			Devices []devices.Kind
		}{n, ServiceDevices[n]})
	}
	return out
}

// ---------------------------------------------------------------------------
// Device services

type deviceService struct {
	dc     *DeviceContainer
	name   string
	kind   devices.Kind
	perm   string
	client *android.Client

	mu    sync.Mutex
	users map[string]map[int]bool // container -> pids
}

// checkPermission implements the modified permission check: ask the calling
// container's ActivityManager (located via its PUBLISH_TO_DEV_CON scoped
// name), then the VDC policy.
func (s *deviceService) checkPermission(sender binder.Sender) error {
	if sender.Container == NamespaceName {
		// Local callers (the flight container bridge attaches its own AM;
		// devcon-internal callers use the local one).
		local := s.dc.inst.ActivityManager()
		if !local.CheckPermission(s.perm, sender.EUID) {
			return fmt.Errorf("%w: %s for uid %d (local)", ErrPermissionDenied, s.perm, sender.EUID)
		}
	} else {
		amName := binder.ScopedName(android.ActivityService, sender.Container)
		h, err := s.client.GetService(amName)
		if err != nil {
			return fmt.Errorf("%w: no ActivityManager for container %q", ErrPermissionDenied, sender.Container)
		}
		out, _, err := s.client.Call(h, android.CmdCheckPermission, android.CheckPermissionData(s.perm, sender.EUID))
		if err != nil {
			return fmt.Errorf("devcon: permission check: %w", err)
		}
		if string(out) != "granted" {
			return fmt.Errorf("%w: %s for uid %d in %s", ErrPermissionDenied, s.perm, sender.EUID, sender.Container)
		}
	}
	if !s.dc.currentPolicy().AllowDevice(sender.Container, s.kind) {
		return fmt.Errorf("%w: %s for %s", ErrPolicyDenied, s.kind, sender.Container)
	}
	return nil
}

// trackUse records the sender as an active user and reports whether this
// (container, pid) pair is newly acquiring the service.
func (s *deviceService) trackUse(sender binder.Sender) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	set, ok := s.users[sender.Container]
	if !ok {
		set = make(map[int]bool)
		s.users[sender.Container] = set
	}
	isNew := !set[sender.PID]
	set[sender.PID] = true
	return isNew
}

func (s *deviceService) release(sender binder.Sender) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if set, ok := s.users[sender.Container]; ok {
		delete(set, sender.PID)
		if len(set) == 0 {
			delete(s.users, sender.Container)
		}
	}
}

func (s *deviceService) releaseContainer(container string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.users, container)
}

func (s *deviceService) activeUsers(container string) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.users[container]
	out := make([]int, 0, len(set))
	for pid := range set {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

func (s *deviceService) handleTxn(txn binder.Txn) (binder.Reply, error) {
	if txn.Code == CmdRelease {
		s.release(txn.Sender)
		mReleases.Inc()
		s.dc.tel.Emit(telemetry.K(txn.Sender.Container), kRelease, int64(txn.Sender.PID), 0, s.name)
		return binder.Reply{}, nil
	}
	if txn.Code == binder.CodePing {
		return binder.Reply{}, nil
	}
	if err := s.checkPermission(txn.Sender); err != nil {
		mDenials.Inc()
		reason := "permission"
		if errors.Is(err, ErrPolicyDenied) {
			reason = "policy"
		}
		s.dc.tel.Emit(telemetry.K(txn.Sender.Container), kDeny, int64(txn.Sender.PID), int64(txn.Code), reason)
		return binder.Reply{}, err
	}
	reply, err := s.serve(txn)
	if err == nil && s.trackUse(txn.Sender) {
		mAcquires.Inc()
		s.dc.tel.Emit(telemetry.K(txn.Sender.Container), kAcquire, int64(txn.Sender.PID), 0, s.name)
	}
	return reply, err
}

func (s *deviceService) serve(txn binder.Txn) (binder.Reply, error) {
	dc := s.dc
	marshal := func(v any) (binder.Reply, error) {
		b, err := json.Marshal(v)
		if err != nil {
			return binder.Reply{}, err
		}
		return binder.Reply{Data: b}, nil
	}
	switch txn.Code {
	case CmdCapture:
		if s.name != SvcCamera {
			break
		}
		return marshal(dc.camera.Capture())
	case CmdGetFix:
		if s.name != SvcLocationManager {
			break
		}
		return marshal(dc.gps.Read())
	case CmdReadIMU:
		if s.name != SvcSensorService {
			break
		}
		return marshal(dc.imu.Read())
	case CmdReadBaro:
		if s.name != SvcSensorService {
			break
		}
		return marshal(map[string]float64{"pressure": dc.baro.Read()})
	case CmdReadMag:
		if s.name != SvcSensorService {
			break
		}
		return marshal(map[string]float64{"heading": dc.mag.HeadingDeg()})
	case CmdReadAudio:
		if s.name != SvcAudioFlinger {
			break
		}
		var req struct{ Samples int }
		if err := json.Unmarshal(txn.Data, &req); err != nil {
			return binder.Reply{}, fmt.Errorf("devcon: bad audio request: %w", err)
		}
		if req.Samples <= 0 || req.Samples > 1<<20 {
			return binder.Reply{}, fmt.Errorf("devcon: audio sample count %d out of range", req.Samples)
		}
		buf := make([]byte, req.Samples*2)
		dc.mic.Read(buf)
		return marshal(map[string][]byte{"pcm": buf})
	case CmdPlayAudio:
		if s.name != SvcAudioFlinger {
			break
		}
		if dc.speaker == nil {
			return binder.Reply{}, errors.New("devcon: no speaker hardware")
		}
		var req struct{ PCM []byte }
		if err := json.Unmarshal(txn.Data, &req); err != nil {
			return binder.Reply{}, fmt.Errorf("devcon: bad playback request: %w", err)
		}
		if len(req.PCM) == 0 || len(req.PCM) > 2<<20 {
			return binder.Reply{}, fmt.Errorf("devcon: playback size %d out of range", len(req.PCM))
		}
		played := dc.speaker.Play(req.PCM)
		return marshal(map[string]int{"played": played})
	}
	return binder.Reply{}, fmt.Errorf("devcon: %s: unsupported code %d", s.name, txn.Code)
}

// ---------------------------------------------------------------------------
// Virtual drone / flight container boot support

// BootBridged boots an Android instance in ns wired for AnDrone: its
// ServiceManager publishes the ActivityManager to the device container
// (PUBLISH_TO_DEV_CON) as soon as the ActivityManager registers, so the
// shared device services can perform cross-container permission checks. The
// flight container's HAL bridge boots the same way.
func BootBridged(ns *binder.Namespace) (*android.Instance, error) {
	hook := func(sm *android.ServiceManager, name string, h binder.Handle) error {
		if name == android.ActivityService {
			// Without this publication the device container cannot bridge
			// checkPermission back to this container's ActivityManager, so
			// every later device request would be refused (or worse, served
			// against a stale manager). Fail the boot loudly instead.
			if err := sm.Proc().PublishToDevCon(name, h); err != nil {
				return fmt.Errorf("devcon: publishing %s to device container: %w", name, err)
			}
		}
		return nil
	}
	return android.Boot(ns, android.WithServiceManagerHook(hook))
}
