package sitl

import (
	"math"
	"testing"
)

// TestParkedPredicate exercises every disqualifier: commanded thrust, a
// pending squall expiry, and an active gust process each make the sim
// ineligible for bulk advance.
func TestParkedPredicate(t *testing.T) {
	s := newSim()
	run(s, 0.5)
	if !s.Parked() {
		t.Fatal("at-rest sim not Parked")
	}

	s.SetMotors([4]float64{0.1, 0.1, 0.1, 0.1})
	if s.Parked() {
		t.Error("Parked with commanded thrust")
	}
	s.SetMotors([4]float64{})

	s.SetWindFor(3, 0, 0, 5)
	if s.Parked() {
		t.Error("Parked with a pending squall expiry")
	}
	run(s, 6) // squall expires; SetWindFor's zero restore clears gustStd
	if !s.Parked() {
		t.Fatal("not Parked after squall expired")
	}

	s.SetWind(0, 0, 1.2)
	if s.Parked() {
		t.Error("Parked with an active gust process")
	}
}

// TestAdvanceParkedBitExact proves the contract AdvanceParked sells: for
// a parked sim with a stable fingerprint, leaping n steps lands on state
// bit-identical to stepping them, including the float accumulation order
// of the energy integral.
func TestAdvanceParkedBitExact(t *testing.T) {
	const dt = 1.0 / 400
	a, b := newSim(), newSim()
	run(a, 0.5)
	run(b, 0.5)

	fp := b.Fingerprint()
	if fp != b.Fingerprint() {
		t.Fatal("Fingerprint not deterministic")
	}
	b.Step(dt)
	a.Step(dt)
	if b.Fingerprint() != fp {
		t.Fatal("parked fingerprint not stable across a step")
	}

	const steps = 4000 // 100 harness ticks of 40
	for i := 0; i < steps; i++ {
		a.Step(dt)
	}
	b.AdvanceParked(0, dt) // no-op guards
	b.AdvanceParked(-1, dt)
	b.AdvanceParked(steps, 0)
	b.AdvanceParked(steps, dt)

	if ae, be := a.EnergyUsedJ(), b.EnergyUsedJ(); ae != be {
		t.Errorf("energy: stepped %v leapt %v (diff %g)", ae, be, math.Abs(ae-be))
	}
	if !a.Now().Equal(b.Now()) {
		t.Errorf("sim clock: stepped %v leapt %v", a.Now(), b.Now())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprints diverge after leap")
	}

	// The leap must be invisible to everything downstream: fly both and
	// compare trajectories bit-for-bit.
	f := DefaultParams().HoverThrustFrac()
	cmd := [4]float64{1.2 * f, 1.2 * f, 1.2 * f, 1.2 * f}
	a.SetMotors(cmd)
	b.SetMotors(cmd)
	for i := 0; i < 800; i++ {
		a.Step(dt)
		b.Step(dt)
		if aa, ba := a.AltitudeAGL(), b.AltitudeAGL(); aa != ba {
			t.Fatalf("step %d: altitude diverged %v vs %v", i, aa, ba)
		}
	}
	if a.AltitudeAGL() < 1 {
		t.Fatal("comparison vacuous: drone never left the ground")
	}
}
