// Idle fast-forward support for the event-driven fleet scheduler.
//
// A drone parked on the ground with zero motor command is a fixed point
// of Step up to two pure accumulators: energyUsedJ (avionics draw) and
// simTime. Every other field either stays bit-identical (velocities,
// rates, attitude, and accelerations are re-zeroed by the ground-contact
// clamp; motor thrust has decayed to a plateau where the first-order lag
// increment rounds to nothing) or is never touched (the gust RNG is only
// consumed while gustStd > 0). AdvanceParked exploits this: it replays
// the accumulator arithmetic of n steps with the exact float operations
// Step performs, so an event-driven run that leaps over parked ticks
// lands on bit-identical state.
//
// Callers must not trust the predicate alone: the event runner combines
// Parked with fingerprint stability across two consecutive ticks (the
// fingerprint covers all non-accumulator state, RNG included), and the
// differential equivalence suite holds the whole construction to
// bit-identical traces against the lockstep oracle.

package sitl

import (
	"math"
	"time"
)

// Parked reports whether the simulation is structurally eligible for a
// bulk idle advance: resting on the ground, zero commanded thrust, no
// pending squall expiry (windUntil compares against the sim clock, which
// keeps accumulating during a leap), and no gust process consuming the
// RNG. It deliberately does not prove the state is a fixed point — the
// caller pairs it with fingerprint stability.
func (s *Sim) Parked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.onGround &&
		s.windUntil.IsZero() &&
		s.gustStd == 0 &&
		s.motorCmd == [4]float64{}
}

// Fingerprint hashes every simulation field except the two pure
// accumulators (simTime, energyUsedJ). Two equal fingerprints one tick
// apart mean the intervening 40 fast-loop steps were the identity on all
// hashed state — the event runner's entry ticket for a bulk leap.
func (s *Sim) Fingerprint() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := fpInit
	for _, f := range [...]float64{
		s.n, s.e, s.d, s.vn, s.ve, s.vd,
		s.roll, s.pitch, s.yaw, s.p_, s.q_, s.r_,
		s.motorCmd[0], s.motorCmd[1], s.motorCmd[2], s.motorCmd[3],
		s.motorThrust[0], s.motorThrust[1], s.motorThrust[2], s.motorThrust[3],
		s.motorEff[0], s.motorEff[1], s.motorEff[2], s.motorEff[3],
		s.an, s.ae, s.ad,
		s.windMeanN, s.windMeanE, s.gustStd, s.gustN, s.gustE,
		s.powerW,
	} {
		h = fpMix(h, math.Float64bits(f))
	}
	h = fpMix(h, uint64(s.windUntil.UnixNano()))
	if s.windUntil.IsZero() {
		h = fpMix(h, 1)
	}
	if s.onGround {
		h = fpMix(h, 2)
	}
	h = fpMix(h, s.rng.state)
	return h
}

// AdvanceParked fast-forwards a parked simulation by steps fast-loop
// iterations of dt seconds, replaying exactly the accumulator arithmetic
// Step would perform: energyUsedJ grows by the same per-step float add
// (powerW is constant while parked — thrust is at its decay plateau, so
// the induced-power term underflows to zero), and simTime advances by
// the same per-step duration. All other state is left untouched, which
// is exactly what Step would do.
func (s *Sim) AdvanceParked(steps int, dt float64) {
	if steps <= 0 || dt <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	inc := s.powerW * dt
	e := s.energyUsedJ
	for i := 0; i < steps; i++ {
		e += inc
	}
	s.energyUsedJ = e
	stepDur := time.Duration(dt * float64(time.Second))
	s.simTime = s.simTime.Add(time.Duration(steps) * stepDur)
}

// FNV-1a folding for state fingerprints.
const (
	fpInit  uint64 = 14695981039346656037
	fpPrime uint64 = 1099511628211
)

func fpMix(h, v uint64) uint64 {
	h ^= v
	return h * fpPrime
}
