// Package sitl is AnDrone's software-in-the-loop quadcopter physics
// simulation, standing in for the paper's prototype hardware (DJI Flame
// Wheel F450 frame, four T-Motor MN2213 950Kv motors with 9.5" propellers,
// Turnigy 5000 mAh 3S battery) and for the ArduPilot SITL simulator used in
// the paper's §6.6 experiment.
//
// The model is a 6-DOF rigid body driven by four first-order-lag motors in
// an X configuration, with linear drag, an Ornstein-Uhlenbeck wind gust
// model, a momentum-theory power model (the same physics underlying the
// Dorling et al. energy model the flight planner uses), and a LiPo battery
// with voltage sag. It implements devices.WorldSource, so the device
// container's sensors read from it exactly as drivers read from hardware.
package sitl

import (
	"hash/fnv"
	"math"
	"sync"
	"time"

	"androne/internal/geo"
)

// Gravity is standard gravity in m/s^2.
const Gravity = 9.80665

// AirDensity is sea-level air density in kg/m^3.
const AirDensity = 1.225

// Params are the physical constants of the simulated quadcopter.
type Params struct {
	MassKg         float64 // all-up weight
	ArmLenM        float64 // motor arm length
	MaxMotorThrust float64 // newtons per motor at full command
	Ixx, Iyy, Izz  float64 // moments of inertia, kg m^2
	LinDrag        float64 // linear drag coefficient, N per (m/s)
	AngDrag        float64 // angular drag, N m per (rad/s)
	MotorTau       float64 // motor first-order lag time constant, s
	PropRadiusM    float64 // propeller radius
	YawTorqueCoef  float64 // N m of yaw torque per N of thrust
	Eta            float64 // overall powertrain efficiency (0..1)
	BatteryJ       float64 // usable battery energy, joules
	AvionicsW      float64 // constant avionics draw (SBC etc.), watts
}

// DefaultParams returns constants matching the paper's prototype: ~1.6 kg
// AUW, 0.225 m arms, ~8.5 N max thrust per motor, 9.5" props, and a
// 5000 mAh 3S battery (~200 kJ). Hover draw lands near 150 W, giving the
// ~20 minute flight time the paper cites for consumer drones.
func DefaultParams() Params {
	return Params{
		MassKg:         1.6,
		ArmLenM:        0.225,
		MaxMotorThrust: 8.5,
		Ixx:            0.02,
		Iyy:            0.02,
		Izz:            0.04,
		LinDrag:        0.35,
		AngDrag:        0.02,
		MotorTau:       0.05,
		PropRadiusM:    0.12,
		YawTorqueCoef:  0.016,
		Eta:            0.60,
		BatteryJ:       199800,
		AvionicsW:      3.4, // the fully stressed SBC draw measured in §6.4
	}
}

// HoverThrustFrac returns the per-motor command that balances gravity.
func (p Params) HoverThrustFrac() float64 {
	return p.MassKg * Gravity / 4 / p.MaxMotorThrust
}

// Sim is the quadcopter simulation. All methods are safe for concurrent use;
// the flight controller steps it from its fast loop while device models read
// from it.
type Sim struct {
	mu sync.Mutex

	p    Params
	home geo.Position

	// State. NED frame relative to home; body frame x-forward y-right
	// z-down; attitude as roll/pitch/yaw Euler angles.
	n, e, d          float64 // position, meters (d negative above ground)
	vn, ve, vd       float64 // velocity, m/s
	roll, pitch, yaw float64
	p_, q_, r_       float64 // body rates, rad/s

	motorCmd    [4]float64 // commanded thrust fraction 0..1
	motorThrust [4]float64 // actual thrust, N (first-order lag)
	motorEff    [4]float64 // health factor 0..1 (failure injection), 0 value = 1

	// accelWorld is the most recent world-frame acceleration, for the
	// accelerometer model.
	an, ae, ad float64

	// Wind.
	windMeanN, windMeanE float64
	gustStd              float64
	gustN, gustE         float64
	windUntil            time.Time // if set, wind reverts to calm at this sim time

	// Battery.
	energyUsedJ float64
	powerW      float64

	// Clock.
	simTime  time.Time
	onGround bool

	rng *rng
}

// New creates a simulation at rest on the ground at home. seed makes wind
// and any stochastic behaviour reproducible.
func New(home geo.Position, p Params, seed string) *Sim {
	return &Sim{
		p:        p,
		home:     home,
		d:        0,
		onGround: true,
		simTime:  time.Unix(1700000000, 0),
		rng:      newRNG(seed),
	}
}

// SetMotors sets the four motor thrust commands, clamped to [0, 1]. Motor
// order is X configuration: 0 front-right, 1 back-left, 2 front-left,
// 3 back-right (ArduPilot numbering, zero-based).
func (s *Sim) SetMotors(cmd [4]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, c := range cmd {
		s.motorCmd[i] = clamp(c, 0, 1)
	}
}

// SetMotorHealth injects a motor fault: eff is the motor's remaining thrust
// capability in (0, 1]; pass eff <= 0 for a complete failure. The failsafe
// reaction to such faults is the flight controller's job (on the prototype,
// the Navio2's on-board microcontroller failsafe).
func (s *Sim) SetMotorHealth(motor int, eff float64) {
	if motor < 0 || motor >= 4 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if eff <= 0 {
		s.motorEff[motor] = -1
	} else {
		s.motorEff[motor] = clamp(eff, 0.01, 1)
	}
}

// SetWind configures mean wind (north/east, m/s) and gust intensity.
func (s *Sim) SetWind(meanN, meanE, gustStd float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.windMeanN, s.windMeanE, s.gustStd = meanN, meanE, gustStd
	s.windUntil = time.Time{}
}

// SetWindFor applies wind for a bounded sim-time duration, after which the
// air calms — a deterministic gust or squall, independent of how fast the
// simulation runs relative to wall clock.
func (s *Sim) SetWindFor(meanN, meanE, gustStd, seconds float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.windMeanN, s.windMeanE, s.gustStd = meanN, meanE, gustStd
	s.windUntil = s.simTime.Add(time.Duration(seconds * float64(time.Second)))
}

// Step advances the simulation by dt seconds.
func (s *Sim) Step(dt float64) {
	if dt <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.p

	// Motor lag toward command, derated by injected motor health.
	for i := range s.motorThrust {
		eff := s.motorEff[i]
		if eff == 0 {
			eff = 1 // zero value means healthy
		} else if eff < 0 {
			eff = 0 // fully failed
		}
		target := s.motorCmd[i] * p.MaxMotorThrust * eff
		alpha := dt / (p.MotorTau + dt)
		s.motorThrust[i] += alpha * (target - s.motorThrust[i])
	}
	f0, f1, f2, f3 := s.motorThrust[0], s.motorThrust[1], s.motorThrust[2], s.motorThrust[3]
	thrust := f0 + f1 + f2 + f3

	// Torques. Motor positions (x fwd, y right), a = arm/sqrt(2):
	//   0 FR (+a,+a) CCW, 1 BL (-a,-a) CCW, 2 FL (+a,-a) CW, 3 BR (-a,+a) CW.
	a := p.ArmLenM / math.Sqrt2
	tauX := a * (f1 + f2 - f0 - f3)               // roll: left motors up rolls right
	tauY := a * (f0 + f2 - f1 - f3)               // pitch: front motors up pitches up
	tauZ := p.YawTorqueCoef * (f0 + f1 - f2 - f3) // yaw reaction: CCW rotors yaw body CW

	// Angular dynamics with damping.
	s.p_ += dt * (tauX - p.AngDrag*s.p_*math.Abs(s.p_)*10 - 0.2*s.p_) / p.Ixx
	s.q_ += dt * (tauY - p.AngDrag*s.q_*math.Abs(s.q_)*10 - 0.2*s.q_) / p.Iyy
	s.r_ += dt * (tauZ - p.AngDrag*s.r_*math.Abs(s.r_)*10 - 0.2*s.r_) / p.Izz

	// Euler kinematics (well-conditioned away from ±90° pitch, which the
	// controller's tilt limits guarantee).
	cr, sr := math.Cos(s.roll), math.Sin(s.roll)
	cp, sp := math.Cos(s.pitch), math.Sin(s.pitch)
	tp := math.Tan(s.pitch)
	s.roll += dt * (s.p_ + s.q_*sr*tp + s.r_*cr*tp)
	s.pitch += dt * (s.q_*cr - s.r_*sr)
	s.yaw += dt * (s.q_*sr/cp + s.r_*cr/cp)
	s.yaw = wrapPi(s.yaw)

	// A bounded squall expires on sim time.
	if !s.windUntil.IsZero() && s.simTime.After(s.windUntil) {
		s.windMeanN, s.windMeanE, s.gustStd = 0, 0, 0
		s.gustN, s.gustE = 0, 0
		s.windUntil = time.Time{}
	}

	// Wind gusts: Ornstein-Uhlenbeck with 2 s correlation time.
	if s.gustStd > 0 {
		tau := 2.0
		s.gustN += -s.gustN/tau*dt + s.gustStd*math.Sqrt(dt/tau)*s.rng.gauss()
		s.gustE += -s.gustE/tau*dt + s.gustStd*math.Sqrt(dt/tau)*s.rng.gauss()
	}
	windN := s.windMeanN + s.gustN
	windE := s.windMeanE + s.gustE

	// Linear dynamics. Body thrust is -z (up); rotate to world NED.
	cy, sy := math.Cos(s.yaw), math.Sin(s.yaw)
	cr, sr = math.Cos(s.roll), math.Sin(s.roll)
	cp, sp = math.Cos(s.pitch), math.Sin(s.pitch)
	// Third column of the body-to-world rotation (ZYX Euler), times -T.
	fx := -(cy*sp*cr + sy*sr) * thrust
	fy := -(sy*sp*cr - cy*sr) * thrust
	fz := -(cp * cr) * thrust

	relVn, relVe := s.vn-windN, s.ve-windE
	s.an = (fx - p.LinDrag*relVn) / p.MassKg
	s.ae = (fy - p.LinDrag*relVe) / p.MassKg
	s.ad = (fz-p.LinDrag*s.vd)/p.MassKg + Gravity

	s.vn += dt * s.an
	s.ve += dt * s.ae
	s.vd += dt * s.ad
	s.n += dt * s.vn
	s.e += dt * s.ve
	s.d += dt * s.vd

	// Ground contact: the drone rests at d=0 and cannot descend below it.
	if s.d >= 0 {
		s.d = 0
		if s.vd > 0 {
			s.vd = 0
		}
		s.onGround = s.vd >= -1e-9 && thrust < p.MassKg*Gravity
		if s.onGround {
			// Friction kills horizontal motion and attitude settles level.
			s.vn, s.ve = 0, 0
			s.p_, s.q_, s.r_ = 0, 0, 0
			s.roll, s.pitch = 0, 0
			s.an, s.ae, s.ad = 0, 0, 0
		}
	} else {
		s.onGround = false
	}

	// Power: momentum-theory induced power per rotor, f^(3/2)/sqrt(2 rho A),
	// divided by powertrain efficiency, plus constant avionics draw.
	area := math.Pi * p.PropRadiusM * p.PropRadiusM
	denom := math.Sqrt(2 * AirDensity * area)
	var pw float64
	for _, f := range s.motorThrust {
		if f > 0 {
			pw += math.Pow(f, 1.5) / denom
		}
	}
	s.powerW = pw/p.Eta + p.AvionicsW
	s.energyUsedJ += s.powerW * dt

	s.simTime = s.simTime.Add(time.Duration(dt * float64(time.Second)))
}

// --------------------------------------------------------------------------
// devices.WorldSource

// Position returns the drone's geodetic position.
func (s *Sim) Position() geo.Position {
	s.mu.Lock()
	defer s.mu.Unlock()
	ll := geo.OffsetNE(s.home.LatLon, s.n, s.e)
	return geo.Position{LatLon: ll, Alt: s.home.Alt - s.d}
}

// VelocityNED returns velocity in north/east/down m/s.
func (s *Sim) VelocityNED() (float64, float64, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vn, s.ve, s.vd
}

// Attitude returns roll, pitch, yaw in radians.
func (s *Sim) Attitude() (float64, float64, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.roll, s.pitch, s.yaw
}

// AccelBody returns the accelerometer reading: body-frame specific force.
func (s *Sim) AccelBody() (float64, float64, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Specific force f = R^T (a - g) in NED (g = +Gravity down).
	axw, ayw, azw := s.an, s.ae, s.ad-Gravity
	cr, sr := math.Cos(s.roll), math.Sin(s.roll)
	cp, sp := math.Cos(s.pitch), math.Sin(s.pitch)
	cy, sy := math.Cos(s.yaw), math.Sin(s.yaw)
	// R^T rows are R's columns (ZYX Euler body-to-world).
	bx := cy*cp*axw + sy*cp*ayw - sp*azw
	by := (cy*sp*sr-sy*cr)*axw + (sy*sp*sr+cy*cr)*ayw + cp*sr*azw
	bz := (cy*sp*cr+sy*sr)*axw + (sy*sp*cr-cy*sr)*ayw + cp*cr*azw
	return bx, by, bz
}

// GyroBody returns body angular rates in rad/s.
func (s *Sim) GyroBody() (float64, float64, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p_, s.q_, s.r_
}

// Now returns simulation time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simTime
}

// --------------------------------------------------------------------------
// Additional state accessors

// Home returns the home (takeoff) position.
func (s *Sim) Home() geo.Position { return s.home }

// OnGround reports whether the drone is resting on the ground.
func (s *Sim) OnGround() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.onGround
}

// AltitudeAGL returns altitude above the home plane in meters.
func (s *Sim) AltitudeAGL() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return -s.d
}

// PowerW returns instantaneous electrical power draw in watts.
func (s *Sim) PowerW() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.powerW
}

// EnergyUsedJ returns cumulative energy drawn from the battery in joules.
func (s *Sim) EnergyUsedJ() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.energyUsedJ
}

// BatteryRemaining returns the battery state of charge in [0, 1].
func (s *Sim) BatteryRemaining() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	soc := 1 - s.energyUsedJ/s.p.BatteryJ
	return clamp(soc, 0, 1)
}

// BatteryVoltage models 3S LiPo sag: 12.6 V full, dropping with state of
// charge and with instantaneous current.
func (s *Sim) BatteryVoltage() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	soc := clamp(1-s.energyUsedJ/s.p.BatteryJ, 0, 1)
	v := 9.9 + 2.7*soc
	current := s.powerW / math.Max(v, 9)
	return v - 0.02*current
}

// Params returns the simulation's physical constants.
func (s *Sim) Params() Params { return s.p }

// NE returns the drone's north/east offset from home in meters.
func (s *Sim) NE() (north, east float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n, s.e
}

// --------------------------------------------------------------------------

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func wrapPi(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// rng is a deterministic Gaussian source.
type rng struct {
	state uint64
}

func newRNG(seed string) *rng {
	h := fnv.New64a()
	h.Write([]byte(seed))
	s := h.Sum64()
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{state: s}
}

func (r *rng) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *rng) uniform() float64 { return (float64(r.next()>>11) + 0.5) / (1 << 53) }

func (r *rng) gauss() float64 {
	u1, u2 := r.uniform(), r.uniform()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
