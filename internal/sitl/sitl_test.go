package sitl

import (
	"math"
	"testing"

	"androne/internal/geo"
)

var home = geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0}

func newSim() *Sim { return New(home, DefaultParams(), "test") }

// run steps the sim at the 400 Hz fast-loop rate for the given seconds.
func run(s *Sim, seconds float64) {
	const dt = 1.0 / 400
	for t := 0.0; t < seconds; t += dt {
		s.Step(dt)
	}
}

func TestAtRest(t *testing.T) {
	s := newSim()
	run(s, 1)
	if !s.OnGround() {
		t.Fatal("drone lifted with motors off")
	}
	p := s.Position()
	if geo.Distance(p.LatLon, home.LatLon) > 0.01 || p.Alt != 0 {
		t.Fatalf("drifted to %v", p)
	}
	// Only avionics draw.
	if pw := s.PowerW(); math.Abs(pw-DefaultParams().AvionicsW) > 0.01 {
		t.Fatalf("idle power = %g W", pw)
	}
}

func TestHoverThrustFrac(t *testing.T) {
	f := DefaultParams().HoverThrustFrac()
	if f < 0.3 || f > 0.7 {
		t.Fatalf("hover fraction = %g, want mid-stick", f)
	}
}

func TestTakeoffAndClimb(t *testing.T) {
	s := newSim()
	f := DefaultParams().HoverThrustFrac()
	s.SetMotors([4]float64{1.2 * f, 1.2 * f, 1.2 * f, 1.2 * f})
	run(s, 3)
	if s.OnGround() {
		t.Fatal("did not take off at 1.2x hover thrust")
	}
	if alt := s.AltitudeAGL(); alt < 3 {
		t.Fatalf("altitude after 3s = %g m", alt)
	}
	// Level attitude: symmetric thrust produces no torque.
	r, p, _ := s.Attitude()
	if math.Abs(r) > 0.01 || math.Abs(p) > 0.01 {
		t.Fatalf("attitude drifted: roll %g pitch %g", r, p)
	}
}

func TestMotorCutFallsToGround(t *testing.T) {
	s := newSim()
	f := DefaultParams().HoverThrustFrac()
	s.SetMotors([4]float64{1.3 * f, 1.3 * f, 1.3 * f, 1.3 * f})
	run(s, 3)
	alt := s.AltitudeAGL()
	if alt < 3 {
		t.Fatalf("setup: altitude %g", alt)
	}
	s.SetMotors([4]float64{})
	run(s, 10)
	if !s.OnGround() {
		t.Fatalf("still airborne at %g m with motors off", s.AltitudeAGL())
	}
	if s.AltitudeAGL() != 0 {
		t.Fatalf("resting below/above ground: %g", s.AltitudeAGL())
	}
}

func TestGroundIsFloor(t *testing.T) {
	s := newSim()
	run(s, 5)
	if alt := s.AltitudeAGL(); alt < 0 {
		t.Fatalf("fell through the ground: %g", alt)
	}
}

func TestRollTorqueSign(t *testing.T) {
	s := newSim()
	f := DefaultParams().HoverThrustFrac()
	// Left motors (1=BL, 2=FL) stronger: roll right (positive).
	s.SetMotors([4]float64{f * 1.2, f * 1.3, f * 1.3, f * 1.2})
	run(s, 0.3)
	roll, _, _ := s.Attitude()
	if roll <= 0 {
		t.Fatalf("roll = %g, want positive (right)", roll)
	}
}

func TestPitchTorqueSign(t *testing.T) {
	s := newSim()
	f := DefaultParams().HoverThrustFrac()
	// Front motors (0=FR, 2=FL) stronger: pitch up (positive).
	s.SetMotors([4]float64{f * 1.3, f * 1.2, f * 1.3, f * 1.2})
	run(s, 0.3)
	_, pitch, _ := s.Attitude()
	if pitch <= 0 {
		t.Fatalf("pitch = %g, want positive (nose up)", pitch)
	}
}

func TestYawTorqueSign(t *testing.T) {
	s := newSim()
	f := DefaultParams().HoverThrustFrac()
	// CCW rotors (0, 1) stronger: body yaws clockwise (positive r, z down).
	s.SetMotors([4]float64{f * 1.4, f * 1.4, f * 1.0, f * 1.0})
	run(s, 0.5)
	_, _, gz := s.GyroBody()
	if gz <= 0 {
		t.Fatalf("yaw rate = %g, want positive", gz)
	}
}

func TestTiltProducesHorizontalMotion(t *testing.T) {
	s := newSim()
	f := DefaultParams().HoverThrustFrac()
	up := [4]float64{1.3 * f, 1.3 * f, 1.3 * f, 1.3 * f}
	s.SetMotors(up)
	run(s, 2)
	// Pitch nose down briefly (back motors stronger), then hold level.
	s.SetMotors([4]float64{1.25 * f, 1.35 * f, 1.25 * f, 1.35 * f})
	run(s, 0.2)
	s.SetMotors(up)
	run(s, 2)
	n, _ := s.NE()
	if n <= 0.5 {
		t.Fatalf("north displacement = %g, want forward motion after nose-down", n)
	}
}

func TestHoverPowerRealistic(t *testing.T) {
	s := newSim()
	f := DefaultParams().HoverThrustFrac()
	s.SetMotors([4]float64{f, f, f, f})
	run(s, 3)
	pw := s.PowerW()
	// F450-class hover draw: roughly 100-250 W.
	if pw < 100 || pw > 250 {
		t.Fatalf("hover power = %g W", pw)
	}
	// Endurance = battery / hover power: consumer drones fly ~15-30 min.
	endurance := DefaultParams().BatteryJ / pw / 60
	if endurance < 12 || endurance > 35 {
		t.Fatalf("hover endurance = %g min", endurance)
	}
}

func TestEnergyMonotonic(t *testing.T) {
	s := newSim()
	f := DefaultParams().HoverThrustFrac()
	s.SetMotors([4]float64{f, f, f, f})
	prev := 0.0
	for i := 0; i < 400; i++ {
		s.Step(1.0 / 400)
		if e := s.EnergyUsedJ(); e < prev {
			t.Fatalf("energy decreased: %g -> %g", prev, e)
		} else {
			prev = e
		}
	}
	if prev <= 0 {
		t.Fatal("no energy consumed while flying")
	}
}

func TestBatteryModel(t *testing.T) {
	s := newSim()
	if v := s.BatteryVoltage(); v < 12.4 || v > 12.7 {
		t.Fatalf("full battery voltage = %g", v)
	}
	if soc := s.BatteryRemaining(); soc != 1 {
		t.Fatalf("initial soc = %g", soc)
	}
	f := DefaultParams().HoverThrustFrac()
	s.SetMotors([4]float64{1.1 * f, 1.1 * f, 1.1 * f, 1.1 * f})
	run(s, 30)
	if soc := s.BatteryRemaining(); soc >= 1 || soc < 0.9 {
		t.Fatalf("soc after 30 s flight = %g", soc)
	}
	if v := s.BatteryVoltage(); v >= 12.6 {
		t.Fatalf("voltage did not sag under load: %g", v)
	}
}

func TestWindDrift(t *testing.T) {
	s := newSim()
	s.SetWind(3, 0, 0) // 3 m/s from the south pushing north
	f := DefaultParams().HoverThrustFrac()
	s.SetMotors([4]float64{1.05 * f, 1.05 * f, 1.05 * f, 1.05 * f})
	run(s, 5)
	n, e := s.NE()
	if n <= 1 {
		t.Fatalf("north drift = %g, want downwind motion", n)
	}
	if math.Abs(e) > math.Abs(n)/2 {
		t.Fatalf("east drift %g exceeds half of north drift %g", e, n)
	}
}

func TestDeterminism(t *testing.T) {
	s1, s2 := New(home, DefaultParams(), "same"), New(home, DefaultParams(), "same")
	f := DefaultParams().HoverThrustFrac()
	for _, s := range []*Sim{s1, s2} {
		s.SetWind(1, -1, 0.5)
		s.SetMotors([4]float64{1.2 * f, 1.2 * f, 1.2 * f, 1.2 * f})
	}
	run(s1, 2)
	run(s2, 2)
	p1, p2 := s1.Position(), s2.Position()
	if p1 != p2 {
		t.Fatalf("same seed diverged: %v vs %v", p1, p2)
	}
	if s1.EnergyUsedJ() != s2.EnergyUsedJ() {
		t.Fatal("energy diverged")
	}
}

func TestAccelBodyAtRest(t *testing.T) {
	s := newSim()
	run(s, 0.5)
	ax, ay, az := s.AccelBody()
	if math.Abs(ax) > 1e-6 || math.Abs(ay) > 1e-6 {
		t.Fatalf("lateral accel at rest: %g %g", ax, ay)
	}
	if math.Abs(az+Gravity) > 1e-6 {
		t.Fatalf("accelZ at rest = %g, want %g", az, -Gravity)
	}
}

func TestNowAdvances(t *testing.T) {
	s := newSim()
	t0 := s.Now()
	run(s, 1)
	dt := s.Now().Sub(t0)
	if dt.Seconds() < 0.99 || dt.Seconds() > 1.01 {
		t.Fatalf("sim clock advanced %v for 1s of steps", dt)
	}
}

func TestZeroStepIgnored(t *testing.T) {
	s := newSim()
	before := s.Now()
	s.Step(0)
	s.Step(-1)
	if !s.Now().Equal(before) {
		t.Fatal("non-positive dt advanced the clock")
	}
}

func TestPositionGeodesy(t *testing.T) {
	s := newSim()
	f := DefaultParams().HoverThrustFrac()
	up := [4]float64{1.3 * f, 1.3 * f, 1.3 * f, 1.3 * f}
	s.SetMotors(up)
	run(s, 2)
	s.SetWind(5, 0, 0)
	run(s, 5)
	p := s.Position()
	if p.Lat <= home.Lat {
		t.Fatalf("northward drift did not increase latitude: %v", p)
	}
	n, _ := s.NE()
	if d := geo.Distance(home.LatLon, p.LatLon); math.Abs(d-n) > 0.1*n+0.5 {
		t.Fatalf("geodesy inconsistent: NE north %g m vs distance %g m", n, d)
	}
}

func TestSetWindForExpires(t *testing.T) {
	s := newSim()
	f := DefaultParams().HoverThrustFrac()
	s.SetMotors([4]float64{1.05 * f, 1.05 * f, 1.05 * f, 1.05 * f})
	s.SetWindFor(5, 0, 0, 3) // 3 s squall
	run(s, 3.5)
	n1, _ := s.NE()
	if n1 < 1 {
		t.Fatalf("squall had no effect: drift %.2f m", n1)
	}
	// After expiry the air is calm: drift stops growing (drag decays the
	// velocity the squall imparted).
	run(s, 6)
	vn, _, _ := s.VelocityNED()
	if math.Abs(vn) > 1.5 {
		t.Fatalf("wind still pushing after expiry: vn = %.2f", vn)
	}
	// SetWind cancels any pending expiry.
	s.SetWind(3, 0, 0)
	run(s, 10)
	vn, _, _ = s.VelocityNED()
	if vn < 1 {
		t.Fatalf("unbounded wind expired: vn = %.2f", vn)
	}
}

func TestBatteryDepletion(t *testing.T) {
	p := DefaultParams()
	p.BatteryJ = 2000 // tiny pack
	s := New(home, p, "deplete")
	f := p.HoverThrustFrac()
	s.SetMotors([4]float64{1.1 * f, 1.1 * f, 1.1 * f, 1.1 * f})
	run(s, 30)
	if soc := s.BatteryRemaining(); soc != 0 {
		t.Fatalf("soc = %g, want clamped 0", soc)
	}
	if v := s.BatteryVoltage(); v < 8 || v > 10.5 {
		t.Fatalf("depleted voltage = %g", v)
	}
	if s.Params().BatteryJ != 2000 {
		t.Fatal("Params accessor")
	}
	if s.Home() != home {
		t.Fatal("Home accessor")
	}
}

func TestMotorHealthBounds(t *testing.T) {
	s := newSim()
	s.SetMotorHealth(-1, 0.5) // out of range: ignored
	s.SetMotorHealth(7, 0.5)
	f := DefaultParams().HoverThrustFrac()
	s.SetMotors([4]float64{1.2 * f, 1.2 * f, 1.2 * f, 1.2 * f})
	run(s, 2)
	if s.OnGround() {
		t.Fatal("out-of-range health injection affected motors")
	}
	// Clamped health: eff > 1 behaves as 1.
	s2 := newSim()
	s2.SetMotorHealth(0, 5)
	s2.SetMotors([4]float64{1.2 * f, 1.2 * f, 1.2 * f, 1.2 * f})
	run(s2, 2)
	r, p, _ := s2.Attitude()
	if math.Abs(r) > 0.05 || math.Abs(p) > 0.05 {
		t.Fatalf("health clamp broken: roll %g pitch %g", r, p)
	}
}
