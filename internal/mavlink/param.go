package mavlink

import "encoding/binary"

// Parameter protocol message ids (MAVLink common dialect).
const (
	MsgIDParamRequestRead = 20
	MsgIDParamRequestList = 21
	MsgIDParamValue       = 22
	MsgIDParamSet         = 23
)

func init() {
	crcExtra[MsgIDParamRequestRead] = 214
	crcExtra[MsgIDParamRequestList] = 159
	crcExtra[MsgIDParamValue] = 220
	crcExtra[MsgIDParamSet] = 168
}

// paramIDLen is the fixed parameter name field width.
const paramIDLen = 16

func putParamID(b []byte, id string) {
	copy(b[:paramIDLen], id)
}

func getParamID(b []byte) string {
	s := b[:paramIDLen]
	for i, c := range s {
		if c == 0 {
			return string(s[:i])
		}
	}
	return string(s)
}

// ParamRequestRead asks for one parameter by name (index unsupported here).
type ParamRequestRead struct {
	ParamID         string
	TargetSystem    uint8
	TargetComponent uint8
}

// ID implements Message.
func (*ParamRequestRead) ID() uint8 { return MsgIDParamRequestRead }

// MarshalPayload implements Message.
func (p *ParamRequestRead) MarshalPayload() []byte {
	b := make([]byte, 2+paramIDLen+2)
	binary.LittleEndian.PutUint16(b[0:], 0xFFFF) // index -1: by name
	putParamID(b[2:], p.ParamID)
	b[2+paramIDLen] = p.TargetSystem
	b[3+paramIDLen] = p.TargetComponent
	return b
}

// UnmarshalPayload implements Message.
func (p *ParamRequestRead) UnmarshalPayload(b []byte) error {
	if len(b) < 2+paramIDLen+2 {
		return ErrShortFrame
	}
	p.ParamID = getParamID(b[2:])
	p.TargetSystem = b[2+paramIDLen]
	p.TargetComponent = b[3+paramIDLen]
	return nil
}

// ParamRequestList asks for the full parameter table.
type ParamRequestList struct {
	TargetSystem    uint8
	TargetComponent uint8
}

// ID implements Message.
func (*ParamRequestList) ID() uint8 { return MsgIDParamRequestList }

// MarshalPayload implements Message.
func (p *ParamRequestList) MarshalPayload() []byte {
	return []byte{p.TargetSystem, p.TargetComponent}
}

// UnmarshalPayload implements Message.
func (p *ParamRequestList) UnmarshalPayload(b []byte) error {
	if len(b) < 2 {
		return ErrShortFrame
	}
	p.TargetSystem = b[0]
	p.TargetComponent = b[1]
	return nil
}

// ParamValue announces one parameter's value.
type ParamValue struct {
	Value      float32
	ParamCount uint16
	ParamIndex uint16
	ParamID    string
	ParamType  uint8
}

// ID implements Message.
func (*ParamValue) ID() uint8 { return MsgIDParamValue }

// MarshalPayload implements Message.
func (p *ParamValue) MarshalPayload() []byte {
	b := make([]byte, 4+2+2+paramIDLen+1)
	putF32(b[0:], p.Value)
	binary.LittleEndian.PutUint16(b[4:], p.ParamCount)
	binary.LittleEndian.PutUint16(b[6:], p.ParamIndex)
	putParamID(b[8:], p.ParamID)
	b[8+paramIDLen] = p.ParamType
	return b
}

// UnmarshalPayload implements Message.
func (p *ParamValue) UnmarshalPayload(b []byte) error {
	if len(b) < 4+2+2+paramIDLen+1 {
		return ErrShortFrame
	}
	p.Value = getF32(b[0:])
	p.ParamCount = binary.LittleEndian.Uint16(b[4:])
	p.ParamIndex = binary.LittleEndian.Uint16(b[6:])
	p.ParamID = getParamID(b[8:])
	p.ParamType = b[8+paramIDLen]
	return nil
}

// ParamSet writes a parameter.
type ParamSet struct {
	Value           float32
	ParamID         string
	TargetSystem    uint8
	TargetComponent uint8
	ParamType       uint8
}

// ID implements Message.
func (*ParamSet) ID() uint8 { return MsgIDParamSet }

// MarshalPayload implements Message.
func (p *ParamSet) MarshalPayload() []byte {
	b := make([]byte, 4+2+paramIDLen+1)
	putF32(b[0:], p.Value)
	b[4] = p.TargetSystem
	b[5] = p.TargetComponent
	putParamID(b[6:], p.ParamID)
	b[6+paramIDLen] = p.ParamType
	return b
}

// UnmarshalPayload implements Message.
func (p *ParamSet) UnmarshalPayload(b []byte) error {
	if len(b) < 4+2+paramIDLen+1 {
		return ErrShortFrame
	}
	p.Value = getF32(b[0:])
	p.TargetSystem = b[4]
	p.TargetComponent = b[5]
	p.ParamID = getParamID(b[6:])
	p.ParamType = b[6+paramIDLen]
	return nil
}
