// Package mavlink implements the Micro Air Vehicle Link protocol framing
// and the message subset AnDrone uses: heartbeats, telemetry (attitude,
// global position, system status), commands (COMMAND_LONG and acks), guided
// position targets, mode changes, and status text. Framing follows MAVLink
// v1: a magic byte, length, sequence, system and component ids, message id,
// payload, and an X.25 CRC-16 seeded with a per-message CRC_EXTRA byte so
// incompatible dialects fail the checksum.
//
// The flight controller, MAVProxy, the virtual flight controllers, the
// cloud flight planner, and ground stations all speak this package.
package mavlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Magic is the MAVLink v1 frame start marker.
const Magic = 0xFE

// maxPayload is the MAVLink v1 payload limit.
const maxPayload = 255

// Well-known system/component ids.
const (
	SysIDAutopilot     = 1
	CompIDAutopilot    = 1
	SysIDGroundStation = 255
)

// Message ids (MAVLink common dialect).
const (
	MsgIDHeartbeat               = 0
	MsgIDSysStatus               = 1
	MsgIDSetMode                 = 11
	MsgIDAttitude                = 30
	MsgIDGlobalPositionInt       = 33
	MsgIDCommandLong             = 76
	MsgIDCommandAck              = 77
	MsgIDSetPositionTargetGlobal = 86
	MsgIDStatusText              = 253
)

// crcExtra is the per-message CRC seed byte from the MAVLink common dialect.
var crcExtra = map[uint8]uint8{
	MsgIDHeartbeat:               50,
	MsgIDSysStatus:               124,
	MsgIDSetMode:                 89,
	MsgIDAttitude:                39,
	MsgIDGlobalPositionInt:       104,
	MsgIDCommandLong:             152,
	MsgIDCommandAck:              143,
	MsgIDSetPositionTargetGlobal: 5,
	MsgIDStatusText:              83,
}

// MAV_CMD command numbers.
const (
	CmdNavWaypoint        = 16
	CmdNavReturnToLaunch  = 20
	CmdNavLand            = 21
	CmdNavTakeoff         = 22
	CmdNavLoiterUnlim     = 17
	CmdConditionYaw       = 115
	CmdDoSetMode          = 176
	CmdDoChangeSpeed      = 178
	CmdComponentArmDisarm = 400
)

// MAV_RESULT command ack results.
const (
	ResultAccepted            = 0
	ResultTemporarilyRejected = 1
	ResultDenied              = 2
	ResultUnsupported         = 3
	ResultFailed              = 4
)

// ArduPilot Copter flight mode numbers (custom_mode in heartbeats).
const (
	ModeStabilize = 0
	ModeAltHold   = 2
	ModeAuto      = 3
	ModeGuided    = 4
	ModeLoiter    = 5
	ModeRTL       = 6
	ModeLand      = 9
)

// ModeName returns a human-readable flight mode name.
func ModeName(mode uint32) string {
	switch mode {
	case ModeStabilize:
		return "STABILIZE"
	case ModeAltHold:
		return "ALT_HOLD"
	case ModeAuto:
		return "AUTO"
	case ModeGuided:
		return "GUIDED"
	case ModeLoiter:
		return "LOITER"
	case ModeRTL:
		return "RTL"
	case ModeLand:
		return "LAND"
	}
	return fmt.Sprintf("MODE(%d)", mode)
}

// MAV_MODE_FLAG bits.
const (
	ModeFlagSafetyArmed       = 1 << 7
	ModeFlagCustomModeEnabled = 1 << 0
)

// STATUSTEXT severities (subset).
const (
	SeverityCritical = 2
	SeverityWarning  = 4
	SeverityInfo     = 6
)

// Message is a MAVLink message body.
type Message interface {
	// ID returns the MAVLink message id.
	ID() uint8
	// MarshalPayload encodes the payload in wire order.
	MarshalPayload() []byte
	// UnmarshalPayload decodes a wire payload.
	UnmarshalPayload(b []byte) error
}

// Frame is a decoded MAVLink frame.
type Frame struct {
	Seq     uint8
	SysID   uint8
	CompID  uint8
	Message Message
}

// Errors.
var (
	ErrBadCRC     = errors.New("mavlink: bad checksum")
	ErrShortFrame = errors.New("mavlink: truncated frame")
	ErrUnknownMsg = errors.New("mavlink: unknown message id")
)

// x25 computes the MAVLink CRC-16/X.25 over data, continuing from crc.
func x25(crc uint16, data []byte) uint16 {
	for _, b := range data {
		tmp := b ^ byte(crc&0xFF)
		tmp ^= tmp << 4
		crc = (crc >> 8) ^ (uint16(tmp) << 8) ^ (uint16(tmp) << 3) ^ (uint16(tmp) >> 4)
	}
	return crc
}

// PayloadAppender is the allocation-free sibling of MarshalPayload:
// messages that implement it append their wire payload into a caller-owned
// buffer. AppendEncode uses it when available, so hot encode paths with a
// scratch buffer (the GCS station's per-link frames, the telemetry
// downlink) stay off the heap entirely.
type PayloadAppender interface {
	AppendPayload(b []byte) []byte
}

// Encode serializes a message into a freshly allocated wire frame.
func Encode(seq, sysID, compID uint8, msg Message) ([]byte, error) {
	return AppendEncode(nil, seq, sysID, compID, msg)
}

// AppendEncode serializes a message into a wire frame appended to dst,
// reusing dst's capacity — the scratch-buffer form of Encode. As with
// append, the caller must use the returned slice, not dst. On error dst is
// returned truncated to its original length.
func AppendEncode(dst []byte, seq, sysID, compID uint8, msg Message) ([]byte, error) {
	extra, ok := crcExtra[msg.ID()]
	if !ok {
		return dst, fmt.Errorf("%w: %d", ErrUnknownMsg, msg.ID())
	}
	start := len(dst)
	dst = append(dst, Magic, 0, seq, sysID, compID, msg.ID())
	if pa, ok := msg.(PayloadAppender); ok {
		dst = pa.AppendPayload(dst)
	} else {
		dst = append(dst, msg.MarshalPayload()...)
	}
	plen := len(dst) - start - 6
	if plen > maxPayload {
		return dst[:start], fmt.Errorf("mavlink: payload %d exceeds %d", plen, maxPayload)
	}
	dst[start+1] = uint8(plen)
	crc := x25(0xFFFF, dst[start+1:]) // magic excluded
	crc = x25(crc, []byte{extra})
	dst = binary.LittleEndian.AppendUint16(dst, crc)
	return dst, nil
}

// Decoder is a resynchronizing streaming MAVLink parser.
type Decoder struct {
	buf []byte
}

// Write appends raw bytes to the decoder.
func (d *Decoder) Write(b []byte) {
	d.buf = append(d.buf, b...)
}

// Next extracts the next complete valid frame, skipping garbage. It returns
// nil when no complete frame is buffered. Frames with bad checksums or
// unknown ids are dropped and scanning continues.
func (d *Decoder) Next() *Frame {
	for {
		// Find magic.
		start := -1
		for i, b := range d.buf {
			if b == Magic {
				start = i
				break
			}
		}
		if start < 0 {
			d.buf = d.buf[:0]
			return nil
		}
		d.buf = d.buf[start:]
		if len(d.buf) < 8 {
			return nil // header incomplete
		}
		plen := int(d.buf[1])
		total := 8 + plen
		if len(d.buf) < total {
			return nil
		}
		raw := d.buf[:total]
		frame, err := decodeFrame(raw)
		if err != nil {
			// Drop the magic byte and resync.
			d.buf = d.buf[1:]
			continue
		}
		d.buf = append(d.buf[:0], d.buf[total:]...)
		return frame
	}
}

// Decode parses a single exact frame.
func Decode(raw []byte) (*Frame, error) {
	if len(raw) < 8 {
		return nil, ErrShortFrame
	}
	if int(raw[1])+8 != len(raw) {
		return nil, ErrShortFrame
	}
	return decodeFrame(raw)
}

func decodeFrame(raw []byte) (*Frame, error) {
	if raw[0] != Magic {
		return nil, errors.New("mavlink: bad magic")
	}
	plen := int(raw[1])
	msgID := raw[5]
	extra, ok := crcExtra[msgID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownMsg, msgID)
	}
	body := raw[1 : 6+plen]
	crc := x25(0xFFFF, body)
	crc = x25(crc, []byte{extra})
	got := binary.LittleEndian.Uint16(raw[6+plen:])
	if crc != got {
		return nil, ErrBadCRC
	}
	msg := newMessage(msgID)
	if msg == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownMsg, msgID)
	}
	if err := msg.UnmarshalPayload(raw[6 : 6+plen]); err != nil {
		return nil, err
	}
	return &Frame{Seq: raw[2], SysID: raw[3], CompID: raw[4], Message: msg}, nil
}

func newMessage(id uint8) Message {
	switch id {
	case MsgIDHeartbeat:
		return &Heartbeat{}
	case MsgIDSysStatus:
		return &SysStatus{}
	case MsgIDSetMode:
		return &SetMode{}
	case MsgIDAttitude:
		return &Attitude{}
	case MsgIDGlobalPositionInt:
		return &GlobalPositionInt{}
	case MsgIDCommandLong:
		return &CommandLong{}
	case MsgIDCommandAck:
		return &CommandAck{}
	case MsgIDSetPositionTargetGlobal:
		return &SetPositionTargetGlobalInt{}
	case MsgIDStatusText:
		return &StatusText{}
	case MsgIDMissionCount:
		return &MissionCount{}
	case MsgIDMissionClearAll:
		return &MissionClearAll{}
	case MsgIDMissionAck:
		return &MissionAck{}
	case MsgIDMissionRequestInt:
		return &MissionRequestInt{}
	case MsgIDMissionItemInt:
		return &MissionItemInt{}
	case MsgIDParamRequestRead:
		return &ParamRequestRead{}
	case MsgIDParamRequestList:
		return &ParamRequestList{}
	case MsgIDParamValue:
		return &ParamValue{}
	case MsgIDParamSet:
		return &ParamSet{}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Messages. Payload layouts follow MAVLink wire order (fields sorted by
// size, descending, then declaration order).

// Heartbeat announces presence, type, and flight mode.
type Heartbeat struct {
	CustomMode     uint32 // flight mode
	Type           uint8  // MAV_TYPE (2 = quadrotor)
	Autopilot      uint8  // MAV_AUTOPILOT (3 = ArduPilot)
	BaseMode       uint8  // MAV_MODE_FLAG bits
	SystemStatus   uint8  // MAV_STATE
	MavlinkVersion uint8
}

// ID implements Message.
func (*Heartbeat) ID() uint8 { return MsgIDHeartbeat }

// Armed reports the SAFETY_ARMED base-mode bit.
func (h *Heartbeat) Armed() bool { return h.BaseMode&ModeFlagSafetyArmed != 0 }

// MarshalPayload implements Message.
func (h *Heartbeat) MarshalPayload() []byte {
	return h.AppendPayload(make([]byte, 0, 9))
}

// AppendPayload implements PayloadAppender.
func (h *Heartbeat) AppendPayload(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, h.CustomMode)
	return append(b, h.Type, h.Autopilot, h.BaseMode, h.SystemStatus, h.MavlinkVersion)
}

// UnmarshalPayload implements Message.
func (h *Heartbeat) UnmarshalPayload(b []byte) error {
	if len(b) < 9 {
		return ErrShortFrame
	}
	h.CustomMode = binary.LittleEndian.Uint32(b[0:])
	h.Type = b[4]
	h.Autopilot = b[5]
	h.BaseMode = b[6]
	h.SystemStatus = b[7]
	h.MavlinkVersion = b[8]
	return nil
}

// SysStatus carries battery and load telemetry.
type SysStatus struct {
	VoltageBatteryMV uint16 // mV
	CurrentBatterycA int16  // cA (10 mA)
	Load             uint16 // 0..1000
	BatteryRemaining int8   // percent, -1 unknown
}

// ID implements Message.
func (*SysStatus) ID() uint8 { return MsgIDSysStatus }

// MarshalPayload implements Message.
func (s *SysStatus) MarshalPayload() []byte {
	return s.AppendPayload(make([]byte, 0, 7))
}

// AppendPayload implements PayloadAppender.
func (s *SysStatus) AppendPayload(b []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, s.VoltageBatteryMV)
	b = binary.LittleEndian.AppendUint16(b, uint16(s.CurrentBatterycA))
	b = binary.LittleEndian.AppendUint16(b, s.Load)
	return append(b, uint8(s.BatteryRemaining))
}

// UnmarshalPayload implements Message.
func (s *SysStatus) UnmarshalPayload(b []byte) error {
	if len(b) < 7 {
		return ErrShortFrame
	}
	s.VoltageBatteryMV = binary.LittleEndian.Uint16(b[0:])
	s.CurrentBatterycA = int16(binary.LittleEndian.Uint16(b[2:]))
	s.Load = binary.LittleEndian.Uint16(b[4:])
	s.BatteryRemaining = int8(b[6])
	return nil
}

// SetMode requests a flight mode change.
type SetMode struct {
	CustomMode   uint32
	TargetSystem uint8
	BaseMode     uint8
}

// ID implements Message.
func (*SetMode) ID() uint8 { return MsgIDSetMode }

// MarshalPayload implements Message.
func (m *SetMode) MarshalPayload() []byte {
	b := make([]byte, 6)
	binary.LittleEndian.PutUint32(b[0:], m.CustomMode)
	b[4] = m.TargetSystem
	b[5] = m.BaseMode
	return b
}

// UnmarshalPayload implements Message.
func (m *SetMode) UnmarshalPayload(b []byte) error {
	if len(b) < 6 {
		return ErrShortFrame
	}
	m.CustomMode = binary.LittleEndian.Uint32(b[0:])
	m.TargetSystem = b[4]
	m.BaseMode = b[5]
	return nil
}

// Attitude is roll/pitch/yaw telemetry in radians.
type Attitude struct {
	TimeBootMs uint32
	Roll       float32
	Pitch      float32
	Yaw        float32
	RollSpeed  float32
	PitchSpeed float32
	YawSpeed   float32
}

// ID implements Message.
func (*Attitude) ID() uint8 { return MsgIDAttitude }

// MarshalPayload implements Message.
func (a *Attitude) MarshalPayload() []byte {
	return a.AppendPayload(make([]byte, 0, 28))
}

// AppendPayload implements PayloadAppender.
func (a *Attitude) AppendPayload(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, a.TimeBootMs)
	for _, f := range [...]float32{a.Roll, a.Pitch, a.Yaw, a.RollSpeed, a.PitchSpeed, a.YawSpeed} {
		b = appendF32(b, f)
	}
	return b
}

// UnmarshalPayload implements Message.
func (a *Attitude) UnmarshalPayload(b []byte) error {
	if len(b) < 28 {
		return ErrShortFrame
	}
	a.TimeBootMs = binary.LittleEndian.Uint32(b[0:])
	a.Roll = getF32(b[4:])
	a.Pitch = getF32(b[8:])
	a.Yaw = getF32(b[12:])
	a.RollSpeed = getF32(b[16:])
	a.PitchSpeed = getF32(b[20:])
	a.YawSpeed = getF32(b[24:])
	return nil
}

// GlobalPositionInt is the fused global position estimate. Lat/Lon are
// degrees * 1e7; altitudes are millimeters; velocities cm/s; heading cdeg.
type GlobalPositionInt struct {
	TimeBootMs    uint32
	LatE7         int32
	LonE7         int32
	AltMM         int32 // MSL
	RelativeAltMM int32 // above home
	Vx            int16 // cm/s north
	Vy            int16 // cm/s east
	Vz            int16 // cm/s down
	HdgCdeg       uint16
}

// ID implements Message.
func (*GlobalPositionInt) ID() uint8 { return MsgIDGlobalPositionInt }

// MarshalPayload implements Message.
func (g *GlobalPositionInt) MarshalPayload() []byte {
	return g.AppendPayload(make([]byte, 0, 28))
}

// AppendPayload implements PayloadAppender.
func (g *GlobalPositionInt) AppendPayload(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, g.TimeBootMs)
	b = binary.LittleEndian.AppendUint32(b, uint32(g.LatE7))
	b = binary.LittleEndian.AppendUint32(b, uint32(g.LonE7))
	b = binary.LittleEndian.AppendUint32(b, uint32(g.AltMM))
	b = binary.LittleEndian.AppendUint32(b, uint32(g.RelativeAltMM))
	b = binary.LittleEndian.AppendUint16(b, uint16(g.Vx))
	b = binary.LittleEndian.AppendUint16(b, uint16(g.Vy))
	b = binary.LittleEndian.AppendUint16(b, uint16(g.Vz))
	return binary.LittleEndian.AppendUint16(b, g.HdgCdeg)
}

// UnmarshalPayload implements Message.
func (g *GlobalPositionInt) UnmarshalPayload(b []byte) error {
	if len(b) < 28 {
		return ErrShortFrame
	}
	g.TimeBootMs = binary.LittleEndian.Uint32(b[0:])
	g.LatE7 = int32(binary.LittleEndian.Uint32(b[4:]))
	g.LonE7 = int32(binary.LittleEndian.Uint32(b[8:]))
	g.AltMM = int32(binary.LittleEndian.Uint32(b[12:]))
	g.RelativeAltMM = int32(binary.LittleEndian.Uint32(b[16:]))
	g.Vx = int16(binary.LittleEndian.Uint16(b[20:]))
	g.Vy = int16(binary.LittleEndian.Uint16(b[22:]))
	g.Vz = int16(binary.LittleEndian.Uint16(b[24:]))
	g.HdgCdeg = binary.LittleEndian.Uint16(b[26:])
	return nil
}

// CommandLong is the general command carrier.
type CommandLong struct {
	Param1, Param2, Param3, Param4 float32
	Param5, Param6, Param7         float32
	Command                        uint16
	TargetSystem                   uint8
	TargetComponent                uint8
	Confirmation                   uint8
}

// ID implements Message.
func (*CommandLong) ID() uint8 { return MsgIDCommandLong }

// MarshalPayload implements Message.
func (c *CommandLong) MarshalPayload() []byte {
	return c.AppendPayload(make([]byte, 0, 33))
}

// AppendPayload implements PayloadAppender.
func (c *CommandLong) AppendPayload(b []byte) []byte {
	for _, p := range [...]float32{c.Param1, c.Param2, c.Param3, c.Param4, c.Param5, c.Param6, c.Param7} {
		b = appendF32(b, p)
	}
	b = binary.LittleEndian.AppendUint16(b, c.Command)
	return append(b, c.TargetSystem, c.TargetComponent, c.Confirmation)
}

// UnmarshalPayload implements Message.
func (c *CommandLong) UnmarshalPayload(b []byte) error {
	if len(b) < 33 {
		return ErrShortFrame
	}
	params := []*float32{&c.Param1, &c.Param2, &c.Param3, &c.Param4, &c.Param5, &c.Param6, &c.Param7}
	for i, p := range params {
		*p = getF32(b[i*4:])
	}
	c.Command = binary.LittleEndian.Uint16(b[28:])
	c.TargetSystem = b[30]
	c.TargetComponent = b[31]
	c.Confirmation = b[32]
	return nil
}

// CommandAck reports command acceptance or rejection.
type CommandAck struct {
	Command uint16
	Result  uint8
}

// ID implements Message.
func (*CommandAck) ID() uint8 { return MsgIDCommandAck }

// MarshalPayload implements Message.
func (c *CommandAck) MarshalPayload() []byte {
	return c.AppendPayload(make([]byte, 0, 3))
}

// AppendPayload implements PayloadAppender.
func (c *CommandAck) AppendPayload(b []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, c.Command)
	return append(b, c.Result)
}

// UnmarshalPayload implements Message.
func (c *CommandAck) UnmarshalPayload(b []byte) error {
	if len(b) < 3 {
		return ErrShortFrame
	}
	c.Command = binary.LittleEndian.Uint16(b[0:])
	c.Result = b[2]
	return nil
}

// SetPositionTargetGlobalInt is the guided-mode position/velocity target.
type SetPositionTargetGlobalInt struct {
	TimeBootMs      uint32
	LatE7           int32
	LonE7           int32
	Alt             float32 // meters, relative to home in our usage
	Vx, Vy, Vz      float32 // m/s
	TypeMask        uint16
	TargetSystem    uint8
	TargetComponent uint8
	CoordinateFrame uint8
}

// ID implements Message.
func (*SetPositionTargetGlobalInt) ID() uint8 { return MsgIDSetPositionTargetGlobal }

// MarshalPayload implements Message.
func (s *SetPositionTargetGlobalInt) MarshalPayload() []byte {
	b := make([]byte, 33)
	binary.LittleEndian.PutUint32(b[0:], s.TimeBootMs)
	binary.LittleEndian.PutUint32(b[4:], uint32(s.LatE7))
	binary.LittleEndian.PutUint32(b[8:], uint32(s.LonE7))
	putF32(b[12:], s.Alt)
	putF32(b[16:], s.Vx)
	putF32(b[20:], s.Vy)
	putF32(b[24:], s.Vz)
	binary.LittleEndian.PutUint16(b[28:], s.TypeMask)
	b[30] = s.TargetSystem
	b[31] = s.TargetComponent
	b[32] = s.CoordinateFrame
	return b
}

// UnmarshalPayload implements Message.
func (s *SetPositionTargetGlobalInt) UnmarshalPayload(b []byte) error {
	if len(b) < 33 {
		return ErrShortFrame
	}
	s.TimeBootMs = binary.LittleEndian.Uint32(b[0:])
	s.LatE7 = int32(binary.LittleEndian.Uint32(b[4:]))
	s.LonE7 = int32(binary.LittleEndian.Uint32(b[8:]))
	s.Alt = getF32(b[12:])
	s.Vx = getF32(b[16:])
	s.Vy = getF32(b[20:])
	s.Vz = getF32(b[24:])
	s.TypeMask = binary.LittleEndian.Uint16(b[28:])
	s.TargetSystem = b[30]
	s.TargetComponent = b[31]
	s.CoordinateFrame = b[32]
	return nil
}

// StatusText is a severity-tagged text notification (50 chars max).
type StatusText struct {
	Severity uint8
	Text     string
}

// ID implements Message.
func (*StatusText) ID() uint8 { return MsgIDStatusText }

// MarshalPayload implements Message.
func (s *StatusText) MarshalPayload() []byte {
	b := make([]byte, 51)
	b[0] = s.Severity
	copy(b[1:], s.Text)
	return b
}

// UnmarshalPayload implements Message.
func (s *StatusText) UnmarshalPayload(b []byte) error {
	if len(b) < 2 {
		return ErrShortFrame
	}
	s.Severity = b[0]
	text := b[1:]
	for i, c := range text {
		if c == 0 {
			text = text[:i]
			break
		}
	}
	s.Text = string(text)
	return nil
}

func putF32(b []byte, f float32) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(f))
}

func appendF32(b []byte, f float32) []byte {
	return binary.LittleEndian.AppendUint32(b, math.Float32bits(f))
}

func getF32(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}

// ---------------------------------------------------------------------------
// Unit helpers

// LatLonToE7 converts degrees to the int32 1e7 fixed-point wire unit.
func LatLonToE7(deg float64) int32 { return int32(math.Round(deg * 1e7)) }

// E7ToLatLon converts the wire unit back to degrees.
func E7ToLatLon(e7 int32) float64 { return float64(e7) / 1e7 }
