package mavlink

import (
	"bytes"
	"testing"
)

// seedMessages covers every message type the dialect decodes, with non-zero
// fields so the corpus exercises real payload bytes.
func seedMessages() []Message {
	return []Message{
		&Heartbeat{CustomMode: ModeGuided, Type: 2, Autopilot: 3, BaseMode: ModeFlagSafetyArmed | ModeFlagCustomModeEnabled, SystemStatus: 4, MavlinkVersion: 3},
		&SysStatus{VoltageBatteryMV: 12600, CurrentBatterycA: -150, Load: 420, BatteryRemaining: 87},
		&SetMode{CustomMode: ModeLoiter, TargetSystem: 1, BaseMode: ModeFlagCustomModeEnabled},
		&Attitude{TimeBootMs: 123456, Roll: 0.1, Pitch: -0.2, Yaw: 1.57, RollSpeed: 0.01, PitchSpeed: -0.02, YawSpeed: 0.3},
		&GlobalPositionInt{TimeBootMs: 99, LatE7: 436084298, LonE7: -858110359, AltMM: 15000, RelativeAltMM: 15000, Vx: 120, Vy: -30, Vz: 5, HdgCdeg: 27000},
		&CommandLong{Param1: 1, Param2: 4, Param7: 15, Command: CmdNavTakeoff, TargetSystem: 1, TargetComponent: 1, Confirmation: 0},
		&CommandAck{Command: CmdNavTakeoff, Result: ResultAccepted},
		&SetPositionTargetGlobalInt{TimeBootMs: 7, LatE7: 436084298, LonE7: -858110359, Alt: 15, Vx: 2, TypeMask: 0x0FF8, TargetSystem: 1, CoordinateFrame: 6},
		&StatusText{Severity: SeverityWarning, Text: "geofence breached"},
		&MissionCount{Count: 3, TargetSystem: 1, TargetComponent: 1},
		&MissionClearAll{TargetSystem: 1, TargetComponent: 1},
		&MissionAck{TargetSystem: 1, TargetComponent: 1, Type: MissionAccepted},
		&MissionRequestInt{Seq: 2, TargetSystem: 1, TargetComponent: 1},
		&MissionItemInt{Param1: 1, LatE7: 436084298, LonE7: -858110359, Alt: 20, Seq: 1, Command: CmdNavWaypoint, Frame: 6, Autocontinue: 1},
		&ParamRequestRead{ParamID: "WPNAV_SPEED", TargetSystem: 1, TargetComponent: 1},
		&ParamRequestList{TargetSystem: 1, TargetComponent: 1},
		&ParamValue{Value: 500, ParamCount: 4, ParamIndex: 1, ParamID: "WPNAV_SPEED", ParamType: 9},
		&ParamSet{Value: 750, ParamID: "WPNAV_SPEED", TargetSystem: 1, TargetComponent: 1},
	}
}

// FuzzParse feeds arbitrary bytes to both the streaming decoder and the
// single-frame parser. Neither may panic, and any frame that decodes must
// survive an encode→decode→encode round trip bit-exactly: once the parser
// has normalized a frame, re-serialization is a fixed point.
func FuzzParse(f *testing.F) {
	for i, m := range seedMessages() {
		raw, err := Encode(uint8(i), SysIDAutopilot, CompIDAutopilot, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		// A frame behind garbage exercises resynchronization.
		f.Add(append([]byte{0x00, Magic, 0x13, 0x37}, raw...))
	}
	f.Add([]byte{})
	f.Add([]byte{Magic})
	f.Add([]byte{Magic, 0xFF, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Decoder
		d.Write(data)
		for i := 0; i < 128; i++ {
			fr := d.Next()
			if fr == nil {
				break
			}
			fuzzRoundTrip(t, fr)
		}
		if fr, err := Decode(data); err == nil {
			fuzzRoundTrip(t, fr)
		}
	})
}

// fuzzRoundTrip asserts encode(decode(encode(frame))) is a fixed point.
func fuzzRoundTrip(t *testing.T, fr *Frame) {
	t.Helper()
	re, err := Encode(fr.Seq, fr.SysID, fr.CompID, fr.Message)
	if err != nil {
		t.Fatalf("re-encode of decoded %T: %v", fr.Message, err)
	}
	fr2, err := Decode(re)
	if err != nil {
		t.Fatalf("decode of re-encoded %T: %v", fr.Message, err)
	}
	re2, err := Encode(fr2.Seq, fr2.SysID, fr2.CompID, fr2.Message)
	if err != nil {
		t.Fatalf("second re-encode of %T: %v", fr.Message, err)
	}
	if !bytes.Equal(re, re2) {
		t.Fatalf("%T not a round-trip fixed point:\n  first  %x\n  second %x", fr.Message, re, re2)
	}
}
