package mavlink

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	raw, err := Encode(7, SysIDAutopilot, CompIDAutopilot, msg)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if frame.Seq != 7 || frame.SysID != SysIDAutopilot || frame.CompID != CompIDAutopilot {
		t.Fatalf("header = %+v", frame)
	}
	if frame.Message.ID() != msg.ID() {
		t.Fatalf("id = %d, want %d", frame.Message.ID(), msg.ID())
	}
	return frame.Message
}

func TestHeartbeatRoundTrip(t *testing.T) {
	in := &Heartbeat{CustomMode: ModeGuided, Type: 2, Autopilot: 3,
		BaseMode: ModeFlagSafetyArmed | ModeFlagCustomModeEnabled, SystemStatus: 4, MavlinkVersion: 3}
	out := roundTrip(t, in).(*Heartbeat)
	if *out != *in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
	if !out.Armed() {
		t.Fatal("armed bit lost")
	}
}

func TestSysStatusRoundTrip(t *testing.T) {
	in := &SysStatus{VoltageBatteryMV: 11100, CurrentBatterycA: -250, Load: 450, BatteryRemaining: 87}
	out := roundTrip(t, in).(*SysStatus)
	if *out != *in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestSetModeRoundTrip(t *testing.T) {
	in := &SetMode{CustomMode: ModeLoiter, TargetSystem: 1, BaseMode: ModeFlagCustomModeEnabled}
	out := roundTrip(t, in).(*SetMode)
	if *out != *in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestAttitudeRoundTrip(t *testing.T) {
	in := &Attitude{TimeBootMs: 123456, Roll: 0.01, Pitch: -0.02, Yaw: 1.57, RollSpeed: 0.1, PitchSpeed: -0.1, YawSpeed: 0.5}
	out := roundTrip(t, in).(*Attitude)
	if *out != *in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestGlobalPositionIntRoundTrip(t *testing.T) {
	in := &GlobalPositionInt{TimeBootMs: 9999, LatE7: 436084298, LonE7: -858110359,
		AltMM: 265000, RelativeAltMM: 15000, Vx: 120, Vy: -30, Vz: 5, HdgCdeg: 27000}
	out := roundTrip(t, in).(*GlobalPositionInt)
	if *out != *in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestCommandLongRoundTrip(t *testing.T) {
	in := &CommandLong{Param1: 1, Param4: -90, Param7: 15.5, Command: CmdNavTakeoff,
		TargetSystem: 1, TargetComponent: 1, Confirmation: 0}
	out := roundTrip(t, in).(*CommandLong)
	if *out != *in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestCommandAckRoundTrip(t *testing.T) {
	in := &CommandAck{Command: CmdComponentArmDisarm, Result: ResultDenied}
	out := roundTrip(t, in).(*CommandAck)
	if *out != *in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestSetPositionTargetRoundTrip(t *testing.T) {
	in := &SetPositionTargetGlobalInt{TimeBootMs: 5, LatE7: 436076409, LonE7: -858154457,
		Alt: 15, Vx: 2.5, TypeMask: 0x0FF8, TargetSystem: 1, TargetComponent: 1, CoordinateFrame: 6}
	out := roundTrip(t, in).(*SetPositionTargetGlobalInt)
	if *out != *in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestStatusTextRoundTrip(t *testing.T) {
	in := &StatusText{Severity: SeverityWarning, Text: "geofence breached"}
	out := roundTrip(t, in).(*StatusText)
	if out.Severity != in.Severity || out.Text != in.Text {
		t.Fatalf("got %+v, want %+v", out, in)
	}
	// Max-length text survives.
	long := &StatusText{Severity: SeverityInfo, Text: string(bytes.Repeat([]byte("x"), 50))}
	out = roundTrip(t, long).(*StatusText)
	if out.Text != long.Text {
		t.Fatalf("long text = %q", out.Text)
	}
}

func TestCorruptionDetected(t *testing.T) {
	raw, err := Encode(0, 1, 1, &Heartbeat{CustomMode: ModeGuided})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(raw); i++ {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0xA5
		if _, err := Decode(bad); err == nil {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode([]byte{Magic, 3}); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecoderStream(t *testing.T) {
	var stream []byte
	msgs := []Message{
		&Heartbeat{CustomMode: ModeLoiter},
		&Attitude{Yaw: 3.14},
		&CommandAck{Command: CmdNavLand, Result: ResultAccepted},
	}
	for i, m := range msgs {
		raw, err := Encode(uint8(i), 1, 1, m)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, raw...)
	}

	var d Decoder
	// Feed one byte at a time to exercise partial-frame handling.
	var got []*Frame
	for _, b := range stream {
		d.Write([]byte{b})
		for {
			f := d.Next()
			if f == nil {
				break
			}
			got = append(got, f)
		}
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d frames, want 3", len(got))
	}
	for i, f := range got {
		if f.Seq != uint8(i) {
			t.Fatalf("frame %d seq = %d", i, f.Seq)
		}
		if f.Message.ID() != msgs[i].ID() {
			t.Fatalf("frame %d id = %d, want %d", i, f.Message.ID(), msgs[i].ID())
		}
	}
}

func TestDecoderResyncAfterGarbage(t *testing.T) {
	good, _ := Encode(1, 1, 1, &Heartbeat{CustomMode: ModeRTL})
	var d Decoder
	// Garbage including a false magic whose bogus 2-byte "payload" completes
	// once the real frame arrives, fails CRC, and forces a resync.
	d.Write([]byte{0x00, 0x55, Magic, 0x02})
	d.Write(good)
	var frames []*Frame
	for {
		f := d.Next()
		if f == nil {
			break
		}
		frames = append(frames, f)
	}
	if len(frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(frames))
	}
	hb := frames[0].Message.(*Heartbeat)
	if hb.CustomMode != ModeRTL {
		t.Fatalf("mode = %d", hb.CustomMode)
	}
}

func TestDecoderDropsCorruptAndContinues(t *testing.T) {
	bad, _ := Encode(1, 1, 1, &Heartbeat{})
	bad[7] ^= 0xFF // corrupt payload
	good, _ := Encode(2, 1, 1, &CommandAck{Command: CmdNavTakeoff, Result: ResultAccepted})
	var d Decoder
	d.Write(bad)
	d.Write(good)
	var frames []*Frame
	for {
		f := d.Next()
		if f == nil {
			break
		}
		frames = append(frames, f)
	}
	if len(frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(frames))
	}
	if frames[0].Message.ID() != MsgIDCommandAck {
		t.Fatalf("got id %d", frames[0].Message.ID())
	}
}

func TestEncodeUnknownMessage(t *testing.T) {
	if _, err := Encode(0, 1, 1, bogusMsg{}); !errors.Is(err, ErrUnknownMsg) {
		t.Fatalf("err = %v", err)
	}
}

type bogusMsg struct{}

func (bogusMsg) ID() uint8                     { return 200 }
func (bogusMsg) MarshalPayload() []byte        { return nil }
func (bogusMsg) UnmarshalPayload([]byte) error { return nil }

func TestLatLonE7RoundTrip(t *testing.T) {
	if err := quick.Check(func(raw float64) bool {
		deg := math.Mod(raw, 180)
		if math.IsNaN(deg) {
			deg = 0
		}
		back := E7ToLatLon(LatLonToE7(deg))
		return math.Abs(back-deg) < 1e-7+1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommandLongPropertyRoundTrip(t *testing.T) {
	if err := quick.Check(func(p1, p7 float32, cmd uint16, sys, comp, conf uint8) bool {
		if math.IsNaN(float64(p1)) || math.IsNaN(float64(p7)) {
			return true
		}
		in := &CommandLong{Param1: p1, Param7: p7, Command: cmd,
			TargetSystem: sys, TargetComponent: comp, Confirmation: conf}
		raw, err := Encode(0, 1, 1, in)
		if err != nil {
			return false
		}
		f, err := Decode(raw)
		if err != nil {
			return false
		}
		out := f.Message.(*CommandLong)
		return *out == *in
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestX25KnownVector(t *testing.T) {
	// CRC-16/MCRF4XX of "123456789" is 0x6F91.
	if got := x25(0xFFFF, []byte("123456789")); got != 0x6F91 {
		t.Fatalf("x25 = %#04x, want 0x6f91", got)
	}
}

func TestModeName(t *testing.T) {
	cases := map[uint32]string{
		ModeStabilize: "STABILIZE", ModeGuided: "GUIDED", ModeLoiter: "LOITER",
		ModeRTL: "RTL", ModeLand: "LAND", ModeAuto: "AUTO", ModeAltHold: "ALT_HOLD",
		99: "MODE(99)",
	}
	for mode, want := range cases {
		if got := ModeName(mode); got != want {
			t.Errorf("ModeName(%d) = %q, want %q", mode, got, want)
		}
	}
}

func TestMissionMessagesRoundTrip(t *testing.T) {
	msgs := []Message{
		&MissionCount{Count: 12, TargetSystem: 1, TargetComponent: 1},
		&MissionClearAll{TargetSystem: 1, TargetComponent: 1},
		&MissionAck{TargetSystem: 1, TargetComponent: 1, Type: MissionAccepted},
		&MissionRequestInt{Seq: 7, TargetSystem: 1, TargetComponent: 1},
		&MissionItemInt{
			Param4: -90, LatE7: 436084298, LonE7: -858110359, Alt: 15,
			Seq: 3, Command: CmdNavWaypoint, Frame: 6, Autocontinue: 1,
		},
	}
	for _, in := range msgs {
		raw, err := Encode(1, 1, 1, in)
		if err != nil {
			t.Fatalf("%T: %v", in, err)
		}
		f, err := Decode(raw)
		if err != nil {
			t.Fatalf("%T: %v", in, err)
		}
		if f.Message.ID() != in.ID() {
			t.Fatalf("%T: id %d", in, f.Message.ID())
		}
	}
	// Full-field item round trip.
	in := &MissionItemInt{Param1: 1, Param2: 2, Param3: 3, Param4: 4,
		LatE7: 1, LonE7: -2, Alt: 3.5, Seq: 9, Command: CmdNavWaypoint,
		TargetSystem: 1, TargetComponent: 2, Frame: 6, Current: 1, Autocontinue: 1}
	raw, _ := Encode(0, 1, 1, in)
	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	out := f.Message.(*MissionItemInt)
	if *out != *in {
		t.Fatalf("got %+v want %+v", out, in)
	}
}

func TestParamMessagesRoundTrip(t *testing.T) {
	msgs := []Message{
		&ParamRequestRead{ParamID: "WPNAV_SPEED", TargetSystem: 1, TargetComponent: 1},
		&ParamRequestList{TargetSystem: 1, TargetComponent: 1},
		&ParamValue{Value: 800, ParamCount: 6, ParamIndex: 2, ParamID: "WPNAV_SPEED", ParamType: 9},
		&ParamSet{Value: 500, ParamID: "ANGLE_MAX", TargetSystem: 1, TargetComponent: 1, ParamType: 9},
	}
	for _, in := range msgs {
		raw, err := Encode(1, 1, 1, in)
		if err != nil {
			t.Fatalf("%T: %v", in, err)
		}
		f, err := Decode(raw)
		if err != nil {
			t.Fatalf("%T: %v", in, err)
		}
		if f.Message.ID() != in.ID() {
			t.Fatalf("%T: id %d", in, f.Message.ID())
		}
	}
	// Name fidelity through the fixed-width field.
	in := &ParamValue{ParamID: "A_SIXTEEN_CHAR_X", Value: 1}
	raw, _ := Encode(0, 1, 1, in)
	f, _ := Decode(raw)
	if got := f.Message.(*ParamValue).ParamID; got != "A_SIXTEEN_CHAR_X" {
		t.Fatalf("param id = %q", got)
	}
}
