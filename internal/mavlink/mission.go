package mavlink

import "encoding/binary"

// Mission protocol message ids (MAVLink common dialect).
const (
	MsgIDMissionCount      = 44
	MsgIDMissionClearAll   = 45
	MsgIDMissionAck        = 47
	MsgIDMissionRequestInt = 51
	MsgIDMissionItemInt    = 73
)

// MISSION_ACK results (MAV_MISSION_RESULT).
const (
	MissionAccepted     = 0
	MissionError        = 1
	MissionUnsupported  = 3
	MissionDenied       = 5
	MissionInvalidParam = 7
	MissionInvalidSeq   = 13
)

func init() {
	// Per-message CRC seeds from the common dialect.
	crcExtra[MsgIDMissionCount] = 221
	crcExtra[MsgIDMissionClearAll] = 232
	crcExtra[MsgIDMissionAck] = 153
	crcExtra[MsgIDMissionRequestInt] = 196
	crcExtra[MsgIDMissionItemInt] = 38
}

// MissionCount opens a mission upload of Count items.
type MissionCount struct {
	Count           uint16
	TargetSystem    uint8
	TargetComponent uint8
}

// ID implements Message.
func (*MissionCount) ID() uint8 { return MsgIDMissionCount }

// MarshalPayload implements Message.
func (m *MissionCount) MarshalPayload() []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint16(b[0:], m.Count)
	b[2] = m.TargetSystem
	b[3] = m.TargetComponent
	return b
}

// UnmarshalPayload implements Message.
func (m *MissionCount) UnmarshalPayload(b []byte) error {
	if len(b) < 4 {
		return ErrShortFrame
	}
	m.Count = binary.LittleEndian.Uint16(b[0:])
	m.TargetSystem = b[2]
	m.TargetComponent = b[3]
	return nil
}

// MissionClearAll erases the stored mission.
type MissionClearAll struct {
	TargetSystem    uint8
	TargetComponent uint8
}

// ID implements Message.
func (*MissionClearAll) ID() uint8 { return MsgIDMissionClearAll }

// MarshalPayload implements Message.
func (m *MissionClearAll) MarshalPayload() []byte {
	return []byte{m.TargetSystem, m.TargetComponent}
}

// UnmarshalPayload implements Message.
func (m *MissionClearAll) UnmarshalPayload(b []byte) error {
	if len(b) < 2 {
		return ErrShortFrame
	}
	m.TargetSystem = b[0]
	m.TargetComponent = b[1]
	return nil
}

// MissionAck closes a mission transaction.
type MissionAck struct {
	TargetSystem    uint8
	TargetComponent uint8
	Type            uint8 // MAV_MISSION_RESULT
}

// ID implements Message.
func (*MissionAck) ID() uint8 { return MsgIDMissionAck }

// MarshalPayload implements Message.
func (m *MissionAck) MarshalPayload() []byte {
	return []byte{m.TargetSystem, m.TargetComponent, m.Type}
}

// UnmarshalPayload implements Message.
func (m *MissionAck) UnmarshalPayload(b []byte) error {
	if len(b) < 3 {
		return ErrShortFrame
	}
	m.TargetSystem = b[0]
	m.TargetComponent = b[1]
	m.Type = b[2]
	return nil
}

// MissionRequestInt asks the uploader for item seq.
type MissionRequestInt struct {
	Seq             uint16
	TargetSystem    uint8
	TargetComponent uint8
}

// ID implements Message.
func (*MissionRequestInt) ID() uint8 { return MsgIDMissionRequestInt }

// MarshalPayload implements Message.
func (m *MissionRequestInt) MarshalPayload() []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint16(b[0:], m.Seq)
	b[2] = m.TargetSystem
	b[3] = m.TargetComponent
	return b
}

// UnmarshalPayload implements Message.
func (m *MissionRequestInt) UnmarshalPayload(b []byte) error {
	if len(b) < 4 {
		return ErrShortFrame
	}
	m.Seq = binary.LittleEndian.Uint16(b[0:])
	m.TargetSystem = b[2]
	m.TargetComponent = b[3]
	return nil
}

// MissionItemInt is one mission item with fixed-point coordinates.
type MissionItemInt struct {
	Param1, Param2, Param3, Param4 float32
	LatE7                          int32
	LonE7                          int32
	Alt                            float32 // meters, relative in our usage
	Seq                            uint16
	Command                        uint16
	TargetSystem                   uint8
	TargetComponent                uint8
	Frame                          uint8
	Current                        uint8
	Autocontinue                   uint8
}

// ID implements Message.
func (*MissionItemInt) ID() uint8 { return MsgIDMissionItemInt }

// MarshalPayload implements Message.
func (m *MissionItemInt) MarshalPayload() []byte {
	b := make([]byte, 37)
	putF32(b[0:], m.Param1)
	putF32(b[4:], m.Param2)
	putF32(b[8:], m.Param3)
	putF32(b[12:], m.Param4)
	binary.LittleEndian.PutUint32(b[16:], uint32(m.LatE7))
	binary.LittleEndian.PutUint32(b[20:], uint32(m.LonE7))
	putF32(b[24:], m.Alt)
	binary.LittleEndian.PutUint16(b[28:], m.Seq)
	binary.LittleEndian.PutUint16(b[30:], m.Command)
	b[32] = m.TargetSystem
	b[33] = m.TargetComponent
	b[34] = m.Frame
	b[35] = m.Current
	b[36] = m.Autocontinue
	return b
}

// UnmarshalPayload implements Message.
func (m *MissionItemInt) UnmarshalPayload(b []byte) error {
	if len(b) < 37 {
		return ErrShortFrame
	}
	m.Param1 = getF32(b[0:])
	m.Param2 = getF32(b[4:])
	m.Param3 = getF32(b[8:])
	m.Param4 = getF32(b[12:])
	m.LatE7 = int32(binary.LittleEndian.Uint32(b[16:]))
	m.LonE7 = int32(binary.LittleEndian.Uint32(b[20:]))
	m.Alt = getF32(b[24:])
	m.Seq = binary.LittleEndian.Uint16(b[28:])
	m.Command = binary.LittleEndian.Uint16(b[30:])
	m.TargetSystem = b[32]
	m.TargetComponent = b[33]
	m.Frame = b[34]
	m.Current = b[35]
	m.Autocontinue = b[36]
	return nil
}
