//go:build !race

// Overhead guardrails for the flight-recorder hot path. These assertions
// are about the recorder's own cost, so they are skipped under the race
// detector (whose instrumentation multiplies atomics cost) and use
// allocation counts plus generous min-of-trials wall-clock bounds rather
// than tight ratios, to stay honest on loaded CI machines. The committed
// BENCH_baseline.json carries the precise enabled-vs-disabled numbers.

package telemetry

import (
	"testing"
	"time"
)

// TestEmitZeroAlloc pins the core hot-path promise: once a drone's ring
// exists, Emit allocates nothing.
func TestEmitZeroAlloc(t *testing.T) {
	r := NewRecorderSized(256, 64)
	d, kind := K("alloc-probe"), K("test.op")
	r.Emit(d, kind, 0, 0, "warm") // materialize the drone ring
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(d, kind, 1, 2, "steady")
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCounterZeroAlloc pins the metrics hot path.
func TestCounterZeroAlloc(t *testing.T) {
	c := NewCounterIn(NewRegistry(), "alloc_probe_total", "x")
	allocs := testing.AllocsPerRun(1000, func() { c.Inc() })
	if allocs != 0 {
		t.Fatalf("Counter.Inc allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEmitCostBudget bounds the absolute per-event cost. The DESIGN.md
// budget is ~100 ns/event on the instrumented paths; the test allows 2 µs
// so it only fails on a real regression (an allocation, a lock convoy, a
// syscall), never on scheduler noise.
func TestEmitCostBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	r := NewRecorderSized(1024, 256)
	d, kind := K("cost-probe"), K("test.op")
	r.Emit(d, kind, 0, 0, "warm")
	const iters = 50000
	best := time.Duration(1 << 62)
	for trial := 0; trial < 5; trial++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			r.Emit(d, kind, int64(i), 0, "steady")
		}
		if el := time.Since(start); el < best {
			best = el
		}
	}
	perOp := best / iters
	if perOp > 2*time.Microsecond {
		t.Fatalf("Emit costs %v/op, budget is 2µs", perOp)
	}
}

// TestDisabledEmitIsCheaper proves the SetEnabled(false) escape hatch:
// with telemetry off, Emit must degrade to (at most) a fraction of the
// enabled cost — it is a single atomic load and a branch.
func TestDisabledEmitIsCheaper(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	r := NewRecorderSized(1024, 256)
	d, kind := K("disabled-probe"), K("test.op")
	r.Emit(d, kind, 0, 0, "warm")
	const iters = 50000
	measure := func() time.Duration {
		best := time.Duration(1 << 62)
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				r.Emit(d, kind, int64(i), 0, "steady")
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}
	on := measure()
	SetEnabled(false)
	off := measure()
	SetEnabled(true)
	// Generous: disabled must not cost more than enabled plus noise.
	if off > on*2 {
		t.Fatalf("disabled emit (%v) slower than enabled (%v)", off, on)
	}
}
