package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKeyInterning(t *testing.T) {
	a := K("drone-a")
	if a == 0 {
		t.Fatalf("K returned the reserved zero key")
	}
	if K("drone-a") != a {
		t.Fatalf("interning is not idempotent")
	}
	if got := KeyName(a); got != "drone-a" {
		t.Fatalf("KeyName = %q, want drone-a", got)
	}
	if got := KeyName(0); got != "" {
		t.Fatalf("KeyName(0) = %q, want empty", got)
	}
	if got := KeyName(Key(1 << 30)); got != "" {
		t.Fatalf("KeyName(unknown) = %q, want empty", got)
	}
}

func TestNilAndDisabledRecorder(t *testing.T) {
	var r *Recorder
	r.Emit(K("x"), K("y"), 1, 2, "nil-safe")
	r.SetTick(7)
	if r.Tick() != 0 || r.Snapshot(0) != nil || r.Records() != nil {
		t.Fatalf("nil recorder must be inert")
	}

	r = NewRecorder()
	SetEnabled(false)
	r.Emit(K("x"), K("y"), 1, 2, "dropped")
	SetEnabled(true)
	if got := len(r.Snapshot(0)); got != 0 {
		t.Fatalf("disabled Emit recorded %d events", got)
	}
}

func TestEmitSnapshotAndMerge(t *testing.T) {
	r := NewRecorderSized(16, 4)
	alice, bob := K("alice"), K("bob")
	kind := K("test.op")

	r.SetTick(3)
	r.Emit(0, K("sys.mode"), 4, 0, "loiter") // system-wide
	r.Emit(alice, kind, 1, 0, "")
	r.Emit(bob, kind, 2, 0, "")
	r.Emit(alice, kind, 3, 0, "")

	got := r.Snapshot(alice)
	if len(got) != 3 {
		t.Fatalf("alice snapshot has %d events, want 3 (2 own + 1 system)", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("snapshot not Seq-ordered: %+v", got)
		}
	}
	if got[0].Drone != 0 || got[0].Tick != 3 {
		t.Fatalf("first event should be the tick-3 system event, got %+v", got[0])
	}
	if len(r.Snapshot(0)) != 4 {
		t.Fatalf("global snapshot should hold all 4 events")
	}
}

func TestPerDroneRingIsolation(t *testing.T) {
	r := NewRecorderSized(8, 4)
	quiet, chatty := K("quiet"), K("chatty")
	kind := K("test.op")
	r.Emit(quiet, kind, 42, 0, "keep-me")
	for i := 0; i < 100; i++ {
		r.Emit(chatty, kind, int64(i), 0, "")
	}
	// The chatty drone evicted quiet's event from the global ring, but not
	// from quiet's own ring.
	got := r.Snapshot(quiet)
	if len(got) != 1 || got[0].A != 42 {
		t.Fatalf("quiet drone lost its history: %+v", got)
	}
	if own := r.Snapshot(chatty); len(own) != 4 {
		t.Fatalf("chatty ring should be capped at 4, got %d", len(own))
	}
}

func TestRingWrap(t *testing.T) {
	r := NewRecorderSized(4, 4)
	for i := 0; i < 10; i++ {
		r.Emit(0, K("wrap"), int64(i), 0, "")
	}
	got := r.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("ring should keep last 4, got %d", len(got))
	}
	if got[0].A != 6 || got[3].A != 9 {
		t.Fatalf("ring kept wrong window: %+v", got)
	}
}

func TestDumpAndRecords(t *testing.T) {
	r := NewRecorderSized(32, 8)
	d := K("dumper")
	r.SetTick(11)
	r.Emit(d, K("test.op"), 5, 6, "hello")
	rec := r.Dump(d, "unit-test", map[string]float64{"tries": 3})
	if rec.Drone != "dumper" || rec.Trigger != "unit-test" || rec.Tick != 11 {
		t.Fatalf("bad record header: %+v", rec)
	}
	if rec.Meta["tries"] != 3 {
		t.Fatalf("meta lost: %+v", rec.Meta)
	}
	if len(rec.Events) != 1 || rec.Events[0].Kind != "test.op" ||
		rec.Events[0].Note != "hello" || rec.Events[0].A != 5 {
		t.Fatalf("bad decoded events: %+v", rec.Events)
	}

	for i := 0; i < maxRecords+10; i++ {
		r.Dump(d, "flood", nil)
	}
	if got := len(r.Records()); got != maxRecords {
		t.Fatalf("records not bounded: %d", got)
	}
	since := r.RecordsSince(rec.Seq)
	if len(since) != maxRecords {
		t.Fatalf("RecordsSince = %d, want %d", len(since), maxRecords)
	}
}

func TestParseRecords(t *testing.T) {
	single := []byte(`{"trigger":"t","tick":1,"seq":2,"events":[]}`)
	recs, err := ParseRecords(single)
	if err != nil || len(recs) != 1 || recs[0].Trigger != "t" {
		t.Fatalf("single parse: %v %+v", err, recs)
	}
	array := []byte(`[{"trigger":"a","events":[]},{"trigger":"b","events":[]}]`)
	recs, err = ParseRecords(array)
	if err != nil || len(recs) != 2 || recs[1].Trigger != "b" {
		t.Fatalf("array parse: %v %+v", err, recs)
	}
	if _, err := ParseRecords([]byte("  ")); err == nil {
		t.Fatalf("empty input should error")
	}
	if _, err := ParseRecords([]byte("{nope")); err == nil {
		t.Fatalf("bad json should error")
	}
}

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := NewCounterIn(reg, "test_counter_total", "a counter")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	g := NewGaugeIn(reg, "test_gauge", "a gauge")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %g, want 6", got)
	}
	exp := reg.Exposition()
	for _, want := range []string{
		"# TYPE test_counter_total counter",
		"test_counter_total 3.5",
		"# TYPE test_gauge gauge",
		"test_gauge 6",
	} {
		if !strings.Contains(exp, want) {
			t.Fatalf("exposition missing %q:\n%s", want, exp)
		}
	}
	// Sorted by name: counter before gauge.
	if strings.Index(exp, "test_counter_total") > strings.Index(exp, "test_gauge") {
		t.Fatalf("exposition not sorted:\n%s", exp)
	}
}

func TestDisabledMetricsDropUpdates(t *testing.T) {
	reg := NewRegistry()
	c := NewCounterIn(reg, "test_disabled_total", "d")
	SetEnabled(false)
	c.Inc()
	SetEnabled(true)
	if c.Value() != 0 {
		t.Fatalf("disabled counter still counted")
	}
}

func TestHistogram(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogramIn(reg, "test_latency_ns", "latency",
		ExponentialBounds(100, 10, 4)) // 100, 1000, 10000, 100000
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile should be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(50) // bucket le=100
	}
	for i := 0; i < 9; i++ {
		h.Observe(5000) // bucket le=10000
	}
	h.Observe(1e9) // beyond last bound -> +Inf
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %g, want 100", q)
	}
	if q := h.Quantile(0.99); q != 10000 {
		t.Fatalf("p99 = %g, want 10000", q)
	}
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("p100 = %g, want +Inf", q)
	}
	exp := reg.Exposition()
	for _, want := range []string{
		`test_latency_ns{quantile="0.5"} 100`,
		"test_latency_ns_count 100",
	} {
		if !strings.Contains(exp, want) {
			t.Fatalf("exposition missing %q:\n%s", want, exp)
		}
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	reg := NewRegistry()
	NewCounterIn(reg, "dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate registration should panic")
		}
	}()
	NewCounterIn(reg, "dup_total", "y")
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("descending bounds should panic")
		}
	}()
	NewHistogramIn(NewRegistry(), "bad_bounds", "x", []float64{10, 5})
}

func TestConcurrentEmit(t *testing.T) {
	r := NewRecorderSized(64, 16)
	kind := K("race.op")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d := K("worker")
			for i := 0; i < 200; i++ {
				r.Emit(d, kind, int64(id), int64(i), "")
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Snapshot(0)); got != 64 {
		t.Fatalf("global ring should be full: %d", got)
	}
}

func TestFlusher(t *testing.T) {
	r := NewRecorderSized(16, 8)
	got := make(chan []FlightRecord, 8)
	stop := r.StartFlusher(5*time.Millisecond, func(recs []FlightRecord) {
		got <- recs
	})
	defer stop()
	r.Emit(K("f"), K("test.op"), 1, 0, "")
	r.Dump(K("f"), "flush-me", nil)
	select {
	case recs := <-got:
		if len(recs) != 1 || recs[0].Trigger != "flush-me" {
			t.Fatalf("flusher delivered %+v", recs)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("flusher never delivered")
	}
	stop()
	stop() // idempotent
}
