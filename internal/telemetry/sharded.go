// ShardedCount: the lock-free sibling of LocalCount. LocalCount batches
// increments under the owner's mutex, which is perfect while the hot path
// holds that mutex anyway — but useless once the hot path stops taking the
// lock at all (the fleet's de-contended binder Transact). A single shared
// atomic counter would reintroduce the contention the lock removal bought
// back: every core bouncing one cache line. ShardedCount spreads the
// increments across cache-line-padded atomic cells selected by a caller
// hint (a PID, a goroutine-stable index), so parallel writers touch
// disjoint lines; Flush folds the cells into the parent Counter.

package telemetry

import "sync/atomic"

// countShards is the number of padded cells. Power of two so the hint can
// be masked; 16 covers the core counts the fleet targets without wasting
// a page per counter.
const countShards = 16

// paddedCell is an atomic counter padded out to a 64-byte cache line so
// neighbouring cells never false-share.
type paddedCell struct {
	v atomic.Uint64
	_ [56]byte
}

// ShardedCount is a concurrency-safe sharded extension of a Counter for
// lock-free hot paths. Unlike LocalCount it pays one atomic add per Inc
// (there is no mutex to hide behind), but writers with different hints
// never contend on a cache line, so throughput scales with cores instead
// of collapsing onto one line. The parent's Value lags the truth by the
// unfolded cell contents between flushes — call Flush from a cold periodic
// path to bound the staleness, exactly as with LocalCount.
type ShardedCount struct {
	c      *Counter
	shards [countShards]paddedCell
}

// Sharded returns a new sharded extension of c.
func (c *Counter) Sharded() *ShardedCount { return &ShardedCount{c: c} }

// Inc adds one to the cell selected by hint. Safe for any number of
// concurrent callers; callers that pass a stable, distinct hint (their
// PID, worker index) get a private cache line.
//
//vet:hotpath lock-free metric shard: one padded atomic add
func (s *ShardedCount) Inc(hint int) {
	if !enabled.Load() {
		return
	}
	s.shards[uint(hint)&(countShards-1)].v.Add(1)
}

// Flush folds every cell into the parent counter. Safe concurrently with
// Inc (each cell is drained with an atomic swap); increments landing
// during the sweep are picked up by the next flush.
func (s *ShardedCount) Flush() {
	var total uint64
	for i := range s.shards {
		total += s.shards[i].v.Swap(0)
	}
	if total > 0 {
		s.c.ints.Add(total)
	}
}
