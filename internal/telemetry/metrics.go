// Metrics: a process-global registry of counters, gauges, and bounded
// histograms. Instruments are declared as package-level vars in the
// instrumented packages (binder, mavproxy, core, devcon, flight) and
// updated with lock-free atomics; the portal's /metrics endpoint renders
// the registry as a Prometheus-style text exposition.

package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 stored as bits in a uint64 for lock-free
// add/set.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) get() float64  { return math.Float64frombits(f.bits.Load()) }

// instrument is anything the registry can render.
type instrument interface {
	metricName() string
	metricHelp() string
	metricType() string
	render(w *strings.Builder)
}

// Registry holds a named set of instruments.
type Registry struct {
	mu    sync.Mutex
	insts map[string]instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{insts: make(map[string]instrument)}
}

// DefaultRegistry is the process-global registry that the package-level
// constructors register into and /metrics renders.
var DefaultRegistry = NewRegistry()

func (r *Registry) register(in instrument) {
	name := in.metricName() // dynamic dispatch must happen outside r.mu
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.insts[name]; dup {
		panic("telemetry: duplicate metric " + name)
	}
	r.insts[name] = in
}

// Exposition renders every registered instrument in name order as
// Prometheus-style text.
func (r *Registry) Exposition() string {
	r.mu.Lock()
	names := make([]string, 0, len(r.insts))
	for name := range r.insts {
		names = append(names, name)
	}
	insts := make([]instrument, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		insts = append(insts, r.insts[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, in := range insts {
		fmt.Fprintf(&b, "# HELP %s %s\n", in.metricName(), in.metricHelp())
		fmt.Fprintf(&b, "# TYPE %s %s\n", in.metricName(), in.metricType())
		in.render(&b)
	}
	return b.String()
}

// Counter is a monotonically increasing value. Integer increments (Inc)
// take a plain atomic-add fast path; fractional accumulation (Add) pays a
// CAS loop. The rendered value is the sum of both parts.
type Counter struct {
	name, help string
	ints       atomic.Uint64
	val        atomicFloat
}

// NewCounter registers a counter in the default registry.
func NewCounter(name, help string) *Counter {
	return NewCounterIn(DefaultRegistry, name, help)
}

// NewCounterIn registers a counter in reg.
func NewCounterIn(reg *Registry, name, help string) *Counter {
	c := &Counter{name: name, help: help}
	reg.register(c)
	return c
}

// Inc adds one. This is the hot-path update — a single atomic add.
//
//vet:hotpath metric fast path: one atomic add, nothing else
func (c *Counter) Inc() {
	if !enabled.Load() {
		return
	}
	c.ints.Add(1)
}

// Add adds v (which must be non-negative) to the counter. Updates are
// dropped while telemetry is disabled so A/B overhead runs measure a true
// zero-cost baseline.
func (c *Counter) Add(v float64) {
	if !enabled.Load() {
		return
	}
	c.val.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return float64(c.ints.Load()) + c.val.get() }

// localFlushEvery is how many shard increments accumulate before the batch
// is folded into the parent counter with one atomic add.
const localFlushEvery = 64

// LocalCount is a single-writer shard of a Counter for hot paths that
// already hold a lock: even uncontended, an atomic read-modify-write is a
// full memory fence, which costs ~10ns inside a store-heavy path. Inc is a
// plain increment; every localFlushEvery-th call folds the batch into the
// parent with one atomic add. The owner must serialize Inc and Flush under
// its own mutex, and the parent's Value lags the truth by at most
// localFlushEvery-1 per shard between flushes — call Flush from a cold
// periodic path (a tick, a deactivation) to bound the staleness.
type LocalCount struct {
	c *Counter
	n uint32
}

// Local returns a new single-writer shard of c.
func (c *Counter) Local() *LocalCount { return &LocalCount{c: c} }

// Inc adds one to the shard. The caller must hold the lock that
// serializes this shard.
//
//vet:hotpath lock-amortized metric shard: a plain increment
func (l *LocalCount) Inc() {
	if !enabled.Load() {
		return
	}
	l.n++
	if l.n >= localFlushEvery {
		l.c.ints.Add(uint64(l.n))
		l.n = 0
	}
}

// Flush folds the shard's remainder into the parent counter, under the
// same lock that serializes Inc.
func (l *LocalCount) Flush() {
	if l.n > 0 {
		l.c.ints.Add(uint64(l.n))
		l.n = 0
	}
}

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) render(w *strings.Builder) {
	fmt.Fprintf(w, "%s %g\n", c.name, c.Value())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	val        atomicFloat
}

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string) *Gauge {
	return NewGaugeIn(DefaultRegistry, name, help)
}

// NewGaugeIn registers a gauge in reg.
func NewGaugeIn(reg *Registry, name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	reg.register(g)
	return g
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.val.set(v)
}

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if !enabled.Load() {
		return
	}
	g.val.add(v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.val.get() }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) render(w *strings.Builder) {
	fmt.Fprintf(w, "%s %g\n", g.name, g.Value())
}

// Histogram is a bounded histogram: observations are counted into a fixed
// set of upper-bound buckets, and quantiles are exported from the bucket
// counts. Memory is fixed at construction time regardless of observation
// volume.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; implicit +Inf last
	counts     []atomic.Uint64
	sum        atomicFloat
	count      atomic.Uint64
}

// exportedQuantiles are the quantiles every histogram renders.
var exportedQuantiles = []float64{0.5, 0.9, 0.99}

// NewHistogram registers a histogram with the given ascending upper
// bounds in the default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return NewHistogramIn(DefaultRegistry, name, help, bounds)
}

// NewHistogramIn registers a histogram in reg.
func NewHistogramIn(reg *Registry, name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must ascend")
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1), // +1 for +Inf
	}
	reg.register(h)
	return h
}

// ExponentialBounds returns n ascending bounds starting at start and
// multiplying by factor — the usual shape for latency histograms.
func ExponentialBounds(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.get() }

// Quantile returns the upper bound of the bucket containing quantile q
// (0 < q <= 1). With no observations it returns 0; observations beyond
// the last bound report +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricType() string { return "summary" }
func (h *Histogram) render(w *strings.Builder) {
	for _, q := range exportedQuantiles {
		fmt.Fprintf(w, "%s{quantile=%q} %g\n", h.name, fmt.Sprintf("%g", q), h.Quantile(q))
	}
	fmt.Fprintf(w, "%s_sum %g\n", h.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
}

// The telemetry plane's own meta-metrics.
var (
	mEvents = NewCounter("androne_telemetry_events_total",
		"Trace events recorded across all recorders.")
	mDumps = NewCounter("androne_telemetry_dumps_total",
		"Black-box FlightRecord dumps taken.")
)
