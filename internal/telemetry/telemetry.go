// Package telemetry is AnDrone's flight recorder: an always-on,
// low-overhead observability subsystem for the virtual-drone stack.
//
// It has three planes:
//
//   - A trace Recorder: fixed-capacity, mutex-striped ring buffers (one
//     global ring plus one ring per drone) of tick-stamped Events. The hot
//     path allocates nothing in steady state — events are written in place
//     into preallocated ring slots (the slots are the event pool) and all
//     label strings are interned to small integer Keys up front.
//   - A metrics registry (metrics.go): counters, gauges, and bounded
//     histograms with exported quantiles, surfaced as a text exposition.
//   - Black-box dumps (record.go): on an invariant violation, geofence
//     breach, permission revocation, or VDR save, Dump snapshots the last
//     N events for a drone into a JSON-serializable FlightRecord.
//
// Timestamps are simulation ticks, not wall clock: the owner of the
// Recorder (core.Drone) advances the tick as it steps the simulation, so
// identical seeds produce identical traces and FlightRecords. Callers must
// never emit while holding a production lock — Emit takes the recorder's
// own stripe locks, and the locksafe analyzer enforces the ordering.
package telemetry

import (
	"sync"
	"sync/atomic"
)

// Key is an interned label. Key 0 is the empty string and addresses the
// global (system-wide) scope when used as a drone label.
type Key uint32

var keyTab = struct {
	mu     sync.RWMutex
	byName map[string]Key
	names  []string
}{
	byName: map[string]Key{"": 0},
	names:  []string{""},
}

// K interns name and returns its Key. Interning is idempotent and safe for
// concurrent use; hot paths should intern once at construction time and
// emit with the cached Key.
func K(name string) Key {
	keyTab.mu.RLock()
	k, ok := keyTab.byName[name]
	keyTab.mu.RUnlock()
	if ok {
		return k
	}
	keyTab.mu.Lock()
	defer keyTab.mu.Unlock()
	if k, ok := keyTab.byName[name]; ok {
		return k
	}
	k = Key(len(keyTab.names))
	keyTab.names = append(keyTab.names, name)
	keyTab.byName[name] = k
	return k
}

// Lookup returns the Key for name without interning it — for callers
// handling untrusted input (HTTP query parameters) that must not grow the
// intern table.
func Lookup(name string) (Key, bool) {
	keyTab.mu.RLock()
	defer keyTab.mu.RUnlock()
	k, ok := keyTab.byName[name]
	return k, ok
}

// KeyName resolves an interned Key back to its string.
func KeyName(k Key) string {
	keyTab.mu.RLock()
	defer keyTab.mu.RUnlock()
	if int(k) >= len(keyTab.names) {
		return ""
	}
	return keyTab.names[k]
}

// enabled is the global kill switch. Telemetry is on by default
// ("always-on"); SetEnabled(false) exists for overhead A/B measurement and
// for callers that must run with zero observability cost.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns all recording and metric updates on or off.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether telemetry is recording.
func Enabled() bool { return enabled.Load() }

// Event is one trace record. A and B are event-specific operands (a
// command id, a pid, a millijoule count); Note is a short static string —
// emitters must pass constants or preformatted strings, never build one
// per event on a hot path.
type Event struct {
	Seq   uint64 // global emission order within one Recorder
	Tick  uint64 // simulation tick at emission time
	Kind  Key
	Drone Key // 0 = system-wide
	A, B  int64
	Note  string
}

// ring is a fixed-capacity circular event buffer. It does not lock itself;
// the owner (Recorder.gmu or a stripe mutex) serializes access.
type ring struct {
	buf []Event
	n   uint64 // total events ever written
}

func newRing(capacity int) *ring { return &ring{buf: make([]Event, capacity)} } //vet:allow hotpath one-time lazy ring init per drone; amortized to zero

func (g *ring) put(ev Event) {
	g.buf[g.n%uint64(len(g.buf))] = ev
	g.n++
}

// snapshot copies the buffered events oldest-first.
func (g *ring) snapshot() []Event {
	size := uint64(len(g.buf))
	count := g.n
	if count > size {
		count = size
	}
	out := make([]Event, 0, count)
	for i := g.n - count; i < g.n; i++ {
		out = append(out, g.buf[i%size])
	}
	return out
}

// nStripes is the number of lock stripes over the per-drone rings. A small
// power of two: a physical drone hosts a handful of virtual drones, so the
// goal is lock independence between drones, not massive fan-out.
const nStripes = 8

type stripe struct {
	mu    sync.Mutex
	rings map[Key]*ring
}

// Recorder is a per-physical-drone flight recorder: one global ring of all
// events plus a striped ring per drone label, a monotonic simulation tick,
// and the bounded list of black-box FlightRecords dumped so far.
type Recorder struct {
	seq  atomic.Uint64
	tick atomic.Uint64

	gmu    sync.Mutex
	global *ring

	stripes     [nStripes]stripe
	perDroneCap int

	rmu     sync.Mutex
	records []FlightRecord
}

// Ring sizing (see DESIGN.md "Telemetry & flight recorder"): the global
// ring holds the last ~100 s of a busy 8-virtual-drone flight at the
// harness's 10 Hz decision rate; per-drone rings hold the last ~25 s of
// one drone's own activity, which is what a black-box dump wants.
const (
	DefaultGlobalCap   = 1024
	DefaultPerDroneCap = 256
	maxRecords         = 64 // bounded black-box archive per Recorder
)

// NewRecorder returns a Recorder with the default ring sizes.
func NewRecorder() *Recorder {
	return NewRecorderSized(DefaultGlobalCap, DefaultPerDroneCap)
}

// NewRecorderSized returns a Recorder with explicit global and per-drone
// ring capacities.
func NewRecorderSized(globalCap, perDroneCap int) *Recorder {
	if globalCap < 1 {
		globalCap = 1
	}
	if perDroneCap < 1 {
		perDroneCap = 1
	}
	r := &Recorder{global: newRing(globalCap), perDroneCap: perDroneCap}
	for i := range r.stripes {
		r.stripes[i].rings = make(map[Key]*ring)
	}
	return r
}

// SetTick advances the recorder's monotonic simulation tick. The drone's
// stepping loop calls this; nothing else should.
func (r *Recorder) SetTick(t uint64) {
	if r == nil {
		return
	}
	r.tick.Store(t)
}

// AdvanceTick increments the monotonic simulation tick by one — the
// stepping loop's convenience over SetTick.
func (r *Recorder) AdvanceTick() {
	if r == nil {
		return
	}
	r.tick.Add(1)
}

// AdvanceTicks advances the monotonic simulation tick by n at once — the
// event-driven stepping loop's bulk leap over quiescent ticks. Equivalent
// to n AdvanceTick calls with no events in between.
func (r *Recorder) AdvanceTicks(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.tick.Add(uint64(n))
}

// Tick returns the current simulation tick.
func (r *Recorder) Tick() uint64 {
	if r == nil {
		return 0
	}
	return r.tick.Load()
}

// Emit records one event. Safe on a nil Recorder and when telemetry is
// disabled (both are cheap no-ops). Every event lands in the global ring;
// drone-scoped events additionally land in that drone's own ring so a
// chatty neighbor cannot evict another drone's history.
//
//vet:hotpath steady-state emit writes into preallocated ring slots
func (r *Recorder) Emit(drone, kind Key, a, b int64, note string) {
	if r == nil || !enabled.Load() {
		return
	}
	ev := Event{
		Seq:   r.seq.Add(1),
		Tick:  r.tick.Load(),
		Kind:  kind,
		Drone: drone,
		A:     a,
		B:     b,
		Note:  note,
	}
	r.gmu.Lock()
	r.global.put(ev)
	r.gmu.Unlock()
	if drone != 0 {
		s := &r.stripes[uint32(drone)%nStripes]
		s.mu.Lock()
		rg := s.rings[drone]
		if rg == nil {
			rg = newRing(r.perDroneCap)
			s.rings[drone] = rg
		}
		rg.put(ev)
		s.mu.Unlock()
	}
	mEvents.Inc()
}

// Snapshot returns the buffered events relevant to drone, oldest first:
// the drone's own ring merged (by Seq) with the system-wide events from
// the global ring. Snapshot(0) returns the whole global ring.
func (r *Recorder) Snapshot(drone Key) []Event {
	if r == nil {
		return nil
	}
	r.gmu.Lock()
	glob := r.global.snapshot()
	r.gmu.Unlock()
	if drone == 0 {
		return glob
	}
	var own []Event
	s := &r.stripes[uint32(drone)%nStripes]
	s.mu.Lock()
	if rg := s.rings[drone]; rg != nil {
		own = rg.snapshot()
	}
	s.mu.Unlock()
	sys := glob[:0:0]
	for _, ev := range glob {
		if ev.Drone == 0 {
			sys = append(sys, ev)
		}
	}
	return mergeBySeq(own, sys)
}

// mergeBySeq merges two Seq-ascending event slices into one.
func mergeBySeq(a, b []Event) []Event {
	out := make([]Event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Seq <= b[j].Seq {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
