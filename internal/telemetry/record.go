// Black-box dumps: FlightRecord is the typed, JSON-serializable snapshot
// of a drone's recent event stream, taken at a trigger point (invariant
// violation, geofence breach, permission revocation, VDR save). Records
// decode interned keys to strings so a saved file is self-contained.

package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// RecordEvent is one decoded event inside a FlightRecord.
type RecordEvent struct {
	Seq   uint64 `json:"seq"`
	Tick  uint64 `json:"tick"`
	Kind  string `json:"kind"`
	Drone string `json:"drone,omitempty"`
	A     int64  `json:"a,omitempty"`
	B     int64  `json:"b,omitempty"`
	Note  string `json:"note,omitempty"`
}

// FlightRecord is a black-box dump: the last N events relevant to one
// drone (or the whole system when Drone is empty), plus the trigger that
// caused the dump and any trigger-specific metadata (e.g. breach-recovery
// retry counts).
type FlightRecord struct {
	Drone   string             `json:"drone,omitempty"`
	Trigger string             `json:"trigger"`
	Tick    uint64             `json:"tick"`
	Seq     uint64             `json:"seq"`
	Meta    map[string]float64 `json:"meta,omitempty"`
	Events  []RecordEvent      `json:"events"`
}

// Dump snapshots the event stream for drone into a FlightRecord tagged
// with trigger, archives it in the recorder's bounded record list, and
// returns it. meta may be nil. Dump is a cold path — it allocates freely,
// but the record it produces must be replay-identical.
//
//vet:detpath black-box dumps are compared bit-for-bit across replays
func (r *Recorder) Dump(drone Key, trigger string, meta map[string]float64) FlightRecord {
	if r == nil || !enabled.Load() {
		return FlightRecord{Trigger: trigger}
	}
	events := r.Snapshot(drone)
	rec := FlightRecord{
		Drone:   KeyName(drone),
		Trigger: trigger,
		Tick:    r.tick.Load(),
		Seq:     r.seq.Add(1),
		Meta:    meta,
		Events:  decodeEvents(events),
	}
	r.rmu.Lock()
	r.records = append(r.records, rec)
	if len(r.records) > maxRecords {
		r.records = r.records[len(r.records)-maxRecords:]
	}
	r.rmu.Unlock()
	mDumps.Inc()
	return rec
}

// DecodeEvents resolves the interned keys in a raw event snapshot to
// strings — the form HTTP trace endpoints and CLIs render.
//
//vet:detpath decoded traces must render identically across replays
func DecodeEvents(events []Event) []RecordEvent { return decodeEvents(events) }

func decodeEvents(events []Event) []RecordEvent {
	out := make([]RecordEvent, len(events))
	for i, ev := range events {
		out[i] = RecordEvent{
			Seq:   ev.Seq,
			Tick:  ev.Tick,
			Kind:  KeyName(ev.Kind),
			Drone: KeyName(ev.Drone),
			A:     ev.A,
			B:     ev.B,
			Note:  ev.Note,
		}
	}
	return out
}

// Records returns a copy of the archived FlightRecords, oldest first.
func (r *Recorder) Records() []FlightRecord {
	if r == nil {
		return nil
	}
	r.rmu.Lock()
	defer r.rmu.Unlock()
	return append([]FlightRecord(nil), r.records...)
}

// RecordsSince returns the archived records with Seq greater than seq —
// the flusher's incremental read.
func (r *Recorder) RecordsSince(seq uint64) []FlightRecord {
	if r == nil {
		return nil
	}
	r.rmu.Lock()
	defer r.rmu.Unlock()
	var out []FlightRecord
	for _, rec := range r.records {
		if rec.Seq > seq {
			out = append(out, rec)
		}
	}
	return out
}

// ParseRecords decodes a saved FlightRecord file: either a single JSON
// object or a JSON array of records.
func ParseRecords(data []byte) ([]FlightRecord, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("telemetry: empty record file")
	}
	if trimmed[0] == '[' {
		var recs []FlightRecord
		if err := json.Unmarshal(trimmed, &recs); err != nil {
			return nil, fmt.Errorf("telemetry: parse records: %w", err)
		}
		return recs, nil
	}
	var rec FlightRecord
	if err := json.Unmarshal(trimmed, &rec); err != nil {
		return nil, fmt.Errorf("telemetry: parse record: %w", err)
	}
	return []FlightRecord{rec}, nil
}

// StartFlusher spawns a background goroutine that every interval hands
// newly archived FlightRecords to sink, and returns a stop function. The
// sink runs on the flusher goroutine with no recorder locks held, so it
// may block or take its own locks freely.
func (r *Recorder) StartFlusher(interval time.Duration, sink func([]FlightRecord)) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		var lastSeq uint64
		for {
			select {
			case <-done:
				return
			case <-t.C:
				recs := r.RecordsSince(lastSeq)
				if len(recs) == 0 {
					continue
				}
				lastSeq = recs[len(recs)-1].Seq
				sink(recs)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
