package flight

import (
	"androne/internal/devices"
	"androne/internal/geo"
	"androne/internal/sitl"
)

// DirectSensors wraps device models directly, the configuration used when
// the flight controller runs on dedicated hardware (or in tests). On
// AnDrone's shared hardware the same interface is implemented by the HAL
// bridge into the device container (see package core).
type DirectSensors struct {
	GPS  *devices.GPS
	Imu  *devices.IMU
	Baro *devices.Barometer
	Mag  *devices.Magnetometer
	Sim  *sitl.Sim
}

// Fix implements Sensors.
func (d *DirectSensors) Fix() devices.Fix { return d.GPS.Read() }

// IMU implements Sensors.
func (d *DirectSensors) IMU() devices.IMUSample { return d.Imu.Read() }

// Pressure implements Sensors.
func (d *DirectSensors) Pressure() float64 { return d.Baro.Read() }

// Heading implements Sensors.
func (d *DirectSensors) Heading() float64 { return d.Mag.HeadingDeg() }

// Battery implements Sensors.
func (d *DirectSensors) Battery() (float64, float64) {
	return d.Sim.BatteryRemaining(), d.Sim.BatteryVoltage()
}

// Vehicle couples a physics simulation with a flight controller and steps
// them in lockstep at the fast-loop rate — the harness used by tests,
// examples, and the §6.6 multi-waypoint experiment.
type Vehicle struct {
	Sim        *sitl.Sim
	Controller *Controller
}

// NewVehicle builds a simulated vehicle at home with ideal sensors. opts are
// passed through to the controller.
func NewVehicle(home geo.Position, seed string, opts ...Option) *Vehicle {
	return NewVehicleParams(home, sitl.DefaultParams(), seed, opts...)
}

// NewVehicleParams builds a simulated vehicle with explicit physics params.
func NewVehicleParams(home geo.Position, params sitl.Params, seed string, opts ...Option) *Vehicle {
	sim := sitl.New(home, params, seed)
	sensors := &DirectSensors{
		GPS:  devices.NewGPS("gps0", sim, 0),
		Imu:  devices.NewIMU("imu0", sim, 0, 0),
		Baro: devices.NewBarometer("baro0", sim, home.Alt, 0),
		Mag:  devices.NewMagnetometer("mag0", sim),
		Sim:  sim,
	}
	opts = append([]Option{WithHoverFraction(params.HoverThrustFrac())}, opts...)
	ctl := NewController(sensors, sim, home, opts...)
	return &Vehicle{Sim: sim, Controller: ctl}
}

// StepSeconds advances sim and controller together for the given sim time.
func (v *Vehicle) StepSeconds(seconds float64) {
	steps := int(seconds * FastLoopHz)
	for i := 0; i < steps; i++ {
		v.Sim.Step(FastLoopDT)
		v.Controller.Step(FastLoopDT)
		r, p, y := v.Sim.Attitude()
		v.Controller.RecordTruth(r, p, y)
	}
}

// RunUntil steps until cond returns true or the timeout (sim seconds)
// elapses; it reports whether cond was met.
func (v *Vehicle) RunUntil(cond func() bool, timeoutS float64) bool {
	steps := int(timeoutS * FastLoopHz)
	for i := 0; i < steps; i++ {
		v.Sim.Step(FastLoopDT)
		v.Controller.Step(FastLoopDT)
		r, p, y := v.Sim.Attitude()
		v.Controller.RecordTruth(r, p, y)
		if i%40 == 0 && cond() { // check at 10 Hz
			return true
		}
	}
	return cond()
}
