// Package flight implements the real-time flight controller AnDrone runs in
// its flight container — the role ArduPilot Copter plays on the prototype.
// The controller runs a 400 Hz fast loop ("ArduPilot's most demanding
// real-time requirement"): it reads inertial sensors, updates a
// complementary-filter attitude estimate, and closes a rate → attitude →
// velocity → position PID cascade onto a four-motor mixer. It speaks
// MAVLink: commands in (arm, takeoff, mode changes, guided position
// targets), telemetry and acks out.
//
// Flight modes follow ArduPilot Copter: STABILIZE, GUIDED, LOITER, RTL,
// LAND, AUTO. Geofence support is pluggable: the stock behaviour on breach
// is a failsafe landing; AnDrone's flight container overrides it with the
// recover-and-loiter sequence described in the paper (see package mavproxy).
package flight

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"androne/internal/devices"
	"androne/internal/geo"
	"androne/internal/mavlink"
	"androne/internal/telemetry"
)

// FastLoopHz is the controller's fast loop rate.
const FastLoopHz = 400

// FastLoopDT is the fast loop period in seconds.
const FastLoopDT = 1.0 / FastLoopHz

// Sensors is the controller's view of the drone's sensors. On AnDrone
// hardware this is the HAL bridge into the device container's services; in
// tests it can wrap devices directly.
type Sensors interface {
	// Fix returns the current GPS reading.
	Fix() devices.Fix
	// IMU returns the current inertial sample.
	IMU() devices.IMUSample
	// Pressure returns barometric pressure in Pa.
	Pressure() float64
	// Heading returns magnetic heading in degrees.
	Heading() float64
	// Battery returns state of charge [0,1] and voltage.
	Battery() (soc float64, voltage float64)
}

// MotorSink receives motor thrust-fraction commands from the mixer.
type MotorSink interface {
	SetMotors(cmd [4]float64)
}

// Errors.
var (
	ErrNotArmed    = errors.New("flight: not armed")
	ErrWrongMode   = errors.New("flight: operation invalid in current mode")
	ErrUnsafe      = errors.New("flight: arming check failed")
	ErrBadArgument = errors.New("flight: bad argument")
)

// BreachAction is invoked when the geofence is breached. The stock action
// lands; AnDrone's flight container installs the recover-and-loiter
// sequence.
type BreachAction func(c *Controller)

// FailsafeLand is the stock geofence breach action: switch to LAND. It is
// the last resort — there is no safer state to fall back to if the mode
// switch itself is refused.
func FailsafeLand(c *Controller) {
	_ = c.SetModeNum(mavlink.ModeLand) //vet:allow errflow last-resort failsafe; no safer fallback exists
}

// Limits bound what the controller will do regardless of commands.
type Limits struct {
	MaxTiltRad   float64 // attitude command limit
	MaxClimbMS   float64 // max climb rate
	MaxDescentMS float64 // max descent rate
	MaxSpeedMS   float64 // max horizontal speed
}

// DefaultLimits returns conservative Copter-like limits.
func DefaultLimits() Limits {
	return Limits{MaxTiltRad: 0.35, MaxClimbMS: 2.5, MaxDescentMS: 1.5, MaxSpeedMS: 8}
}

// Controller is the flight controller.
type Controller struct {
	mu sync.Mutex

	sensors Sensors
	motors  MotorSink
	home    geo.Position
	limits  Limits

	hoverFrac float64 // feed-forward collective for hover

	// State machine.
	armed bool
	mode  uint32

	// Attitude estimate (complementary filter).
	estRoll, estPitch, estYaw float64

	// Position/velocity estimate from GPS.
	posN, posE, alt  float64
	velN, velE, velD float64
	haveFix          bool

	// Targets.
	tgtN, tgtE, tgtAlt float64
	tgtYaw             float64
	speedLimit         float64 // guided speed override, 0 = limits.MaxSpeedMS
	takeoffAlt         float64
	landing            bool

	// Mission for AUTO mode.
	mission    []geo.Position
	missionIdx int
	// Mission upload transaction (MAVLink mission protocol).
	uploadTotal int
	uploadNext  int
	uploadItems []geo.Position
	uploading   bool

	// Integrators.
	iRateP, iRateQ, iRateR float64
	iVelZ                  float64

	// Geofence.
	fence    *geo.Fence
	breach   BreachAction
	breached bool

	// Battery failsafe: below this state of charge the controller forces
	// RTL (0 disables).
	battFailsafeFrac float64
	battFailsafed    bool

	// rtlAltM is the minimum altitude for the return leg (RTL_ALT).
	rtlAltM float64

	// Diagnostics.
	timeS     float64
	loopCount uint64
	log       *Log

	// Telemetry. stepCount is atomic (not under c.mu) so the latency
	// sampling decision can be made before the step's sensor reads; tel is
	// set at construction time and may be nil.
	stepCount atomic.Uint64
	tel       *telemetry.Recorder

	// MAVLink reply scratch. HandleMessage is a serial endpoint (one
	// in-flight message per controller, as on a real telemetry link), so
	// the scratch is single-writer without c.mu; the returned slice and
	// the ack it points at are valid until the next HandleMessage call.
	// This is what keeps the accepted-command path at 0 allocs/op.
	ackScratch   mavlink.CommandAck
	replyScratch [1]mavlink.Message
}

// Option configures a Controller.
type Option func(*Controller)

// WithLimits overrides the default limits.
func WithLimits(l Limits) Option { return func(c *Controller) { c.limits = l } }

// WithHoverFraction sets the hover feed-forward (per-motor thrust fraction
// that balances gravity). Defaults to 0.46, the prototype's value.
func WithHoverFraction(f float64) Option { return func(c *Controller) { c.hoverFrac = f } }

// WithLog attaches a flight log that records estimate-vs-truth attitude for
// the AED analyzer.
func WithLog(l *Log) Option { return func(c *Controller) { c.log = l } }

// WithBatteryFailsafe forces RTL when the battery state of charge drops
// below frac (e.g. 0.2). Zero disables the failsafe.
func WithBatteryFailsafe(frac float64) Option {
	return func(c *Controller) { c.battFailsafeFrac = frac }
}

// NewController creates a controller for a vehicle at home.
func NewController(s Sensors, m MotorSink, home geo.Position, opts ...Option) *Controller {
	c := &Controller{
		sensors:   s,
		motors:    m,
		home:      home,
		limits:    DefaultLimits(),
		hoverFrac: 0.46,
		mode:      mavlink.ModeStabilize,
		breach:    FailsafeLand,
		rtlAltM:   15,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// --------------------------------------------------------------------------
// Mode and arming API

// Armed reports the arming state.
func (c *Controller) Armed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.armed
}

// Mode returns the current flight mode number.
func (c *Controller) Mode() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// Arm arms the motors. Arming requires a position fix.
func (c *Controller) Arm() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.haveFix {
		return fmt.Errorf("%w: no position estimate", ErrUnsafe) //vet:allow hotpath cold error path (arm without a fix)
	}
	c.armed = true
	return nil
}

// Disarm stops the motors immediately. The armed flag drops under the
// lock; the motor write — an interface call into the device backend —
// happens after release so the lock is never held across foreign code.
func (c *Controller) Disarm() {
	c.mu.Lock()
	c.armed = false
	c.mu.Unlock()
	c.motors.SetMotors([4]float64{})
}

// SetModeNum switches flight mode.
func (c *Controller) SetModeNum(mode uint32) error {
	c.mu.Lock()
	err := c.setModeLocked(mode)
	c.mu.Unlock()
	if err == nil {
		mModeChanges.Inc()
		c.tel.Emit(0, kModeChange, int64(mode), 0, "")
	}
	return err
}

func (c *Controller) setModeLocked(mode uint32) error {
	switch mode {
	case mavlink.ModeStabilize, mavlink.ModeAltHold:
		c.mode = mode
	case mavlink.ModeGuided, mavlink.ModeLoiter:
		// Hold current position until told otherwise.
		c.tgtN, c.tgtE, c.tgtAlt = c.posN, c.posE, c.alt
		c.tgtYaw = c.estYaw
		c.landing = false
		c.mode = mode
	case mavlink.ModeLand:
		c.tgtN, c.tgtE = c.posN, c.posE
		c.landing = true
		c.mode = mode
	case mavlink.ModeRTL:
		c.tgtN, c.tgtE = 0, 0
		c.tgtAlt = math.Max(c.alt, c.rtlAltM)
		c.landing = false
		c.mode = mode
	case mavlink.ModeAuto:
		if len(c.mission) == 0 {
			return fmt.Errorf("%w: empty mission", ErrBadArgument) //vet:allow hotpath cold error path (mode rejection)
		}
		c.missionIdx = 0
		c.setGuidedTargetLocked(c.mission[0])
		c.landing = false
		c.mode = mode
	default:
		return fmt.Errorf("%w: mode %d", ErrBadArgument, mode) //vet:allow hotpath cold error path (mode rejection)
	}
	return nil
}

// Takeoff climbs to alt meters above home. Requires GUIDED mode and armed.
func (c *Controller) Takeoff(alt float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed {
		return ErrNotArmed
	}
	if c.mode != mavlink.ModeGuided {
		return fmt.Errorf("%w: takeoff requires GUIDED", ErrWrongMode) //vet:allow hotpath cold error path (takeoff precondition)
	}
	if alt <= 0 {
		return fmt.Errorf("%w: altitude %g", ErrBadArgument, alt) //vet:allow hotpath cold error path (takeoff precondition)
	}
	c.tgtN, c.tgtE = c.posN, c.posE
	c.tgtAlt = alt
	c.landing = false
	return nil
}

// GotoPosition commands a guided-mode target with an optional speed limit
// (0 uses the default).
func (c *Controller) GotoPosition(p geo.Position, speed float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed {
		return ErrNotArmed
	}
	if c.mode != mavlink.ModeGuided {
		return fmt.Errorf("%w: goto requires GUIDED", ErrWrongMode) //vet:allow hotpath cold error path (goto precondition)
	}
	if speed < 0 {
		return fmt.Errorf("%w: speed %g", ErrBadArgument, speed) //vet:allow hotpath cold error path (goto precondition)
	}
	c.speedLimit = speed
	c.setGuidedTargetLocked(p)
	return nil
}

func (c *Controller) setGuidedTargetLocked(p geo.Position) {
	n, e := geo.NE(c.home.LatLon, p.LatLon)
	c.tgtN, c.tgtE, c.tgtAlt = n, e, p.Alt
	c.landing = false
}

// SetYaw sets the yaw target in radians.
func (c *Controller) SetYaw(yaw float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tgtYaw = wrapPi(yaw)
}

// SetMission loads an AUTO-mode waypoint list.
func (c *Controller) SetMission(wps []geo.Position) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mission = append([]geo.Position(nil), wps...)
	c.missionIdx = 0
}

// SetFence installs a geofence and breach action (nil action keeps the
// current one; the zero-value default is FailsafeLand).
func (c *Controller) SetFence(f *geo.Fence, action BreachAction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fence = f
	c.breached = false
	if action != nil {
		c.breach = action
	}
}

// Fence returns the current geofence, or nil.
func (c *Controller) Fence() *geo.Fence {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fence
}

// Estimate returns the controller's position estimate.
func (c *Controller) Estimate() geo.Position {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.estimateLocked()
}

func (c *Controller) estimateLocked() geo.Position {
	ll := geo.OffsetNE(c.home.LatLon, c.posN, c.posE)
	return geo.Position{LatLon: ll, Alt: c.alt}
}

// EstimatedAttitude returns the attitude estimate in radians.
func (c *Controller) EstimatedAttitude() (roll, pitch, yaw float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.estRoll, c.estPitch, c.estYaw
}

// MissionIndex returns the current AUTO waypoint index.
func (c *Controller) MissionIndex() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.missionIdx
}

// --------------------------------------------------------------------------
// Fast loop

// Step runs one fast-loop iteration of dt seconds (normally FastLoopDT).
//
// Sensor reads and the motor write are interface calls into device
// backends that hold their own locks, so they happen outside c.mu: the
// sensor sample is taken first, the control math runs under the lock, and
// the motor command is published after release. A concurrent reader thus
// observes a command at most one fast-loop period (2.5 ms) stale — the
// same guarantee an ESC bus gives — and the lock can never participate in
// a cycle through a device implementation.
//
//vet:hotpath the 400 Hz fast loop: one step must stay allocation-free
func (c *Controller) Step(dt float64) {
	if dt <= 0 {
		return
	}
	var t0 time.Time
	sampled := telemetry.Enabled() && c.stepCount.Add(1)%stepSampleEvery == 0
	if sampled {
		t0 = time.Now() //vet:allow detguard wall clock feeds only the sampled latency histogram
	}
	imu := c.sensors.IMU()
	hdg := c.sensors.Heading()

	c.mu.Lock()
	c.timeS += dt
	c.loopCount++
	// Position/velocity update at 50 Hz (GPS-rate) to mirror the real
	// sensor pipeline.
	gpsTick := c.loopCount%8 == 1
	c.mu.Unlock()

	var fix devices.Fix
	var soc float64
	if gpsTick {
		fix = c.sensors.Fix()
		soc, _ = c.sensors.Battery()
	}

	c.mu.Lock()
	cmd := c.stepLocked(imu, hdg, fix, soc, gpsTick, dt)
	c.mu.Unlock()
	c.motors.SetMotors(cmd)
	if sampled {
		mStepNS.Observe(float64(time.Since(t0).Nanoseconds())) //vet:allow detguard wall clock feeds only the sampled latency histogram
	}
}

// stepLocked runs the estimator and control math and returns the motor
// command to publish. All sensor samples arrive as arguments; the only
// foreign code it may reach is the breach action, which checkFenceLocked
// already invokes with the lock released.
func (c *Controller) stepLocked(imu devices.IMUSample, hdg float64, fix devices.Fix, soc float64, gpsTick bool, dt float64) [4]float64 {
	c.updateAttitudeEstimate(imu, hdg, dt)

	if gpsTick {
		n, e := geo.NE(c.home.LatLon, fix.Position.LatLon)
		c.posN, c.posE, c.alt = n, e, fix.Position.Alt
		c.velN, c.velE, c.velD = fix.VelN, fix.VelE, fix.VelD
		c.haveFix = true
		c.checkFenceLocked()
		c.checkBatteryLocked(soc)
	}

	if !c.armed {
		c.logSample()
		return [4]float64{}
	}

	// Mode logic chooses position/climb targets.
	desN, desE, desAlt := c.tgtN, c.tgtE, c.tgtAlt
	climbOverride := math.NaN()
	switch c.mode {
	case mavlink.ModeStabilize, mavlink.ModeAltHold:
		// Hold level attitude at hover throttle; drift is the pilot's
		// problem, as on the real vehicle.
		desN, desE, desAlt = c.posN, c.posE, c.alt
	case mavlink.ModeLand:
		climbOverride = -0.7
	case mavlink.ModeRTL:
		// Reach home horizontally, then land.
		if math.Hypot(c.posN-c.tgtN, c.posE-c.tgtE) < 1.5 {
			c.landing = true
		}
		if c.landing {
			climbOverride = -0.7
		}
	case mavlink.ModeAuto:
		if math.Hypot(c.posN-c.tgtN, c.posE-c.tgtE) < 1.5 && math.Abs(c.alt-c.tgtAlt) < 1 {
			if c.missionIdx < len(c.mission)-1 {
				c.missionIdx++
				c.setGuidedTargetLocked(c.mission[c.missionIdx])
			}
		}
		desN, desE, desAlt = c.tgtN, c.tgtE, c.tgtAlt
	}

	// Landing completion: on the ground with no commanded climb.
	if (c.mode == mavlink.ModeLand || (c.mode == mavlink.ModeRTL && c.landing)) &&
		c.alt < 0.08 && math.Abs(c.velD) < 0.2 {
		c.armed = false
		c.logSample()
		return [4]float64{}
	}

	// Position -> velocity.
	vmax := c.limits.MaxSpeedMS
	if c.speedLimit > 0 && c.speedLimit < vmax {
		vmax = c.speedLimit
	}
	dvN := 1.0 * (desN - c.posN)
	dvE := 1.0 * (desE - c.posE)
	if sp := math.Hypot(dvN, dvE); sp > vmax {
		dvN, dvE = dvN/sp*vmax, dvE/sp*vmax
	}

	// Velocity -> tilt. Desired acceleration maps to lean angles.
	accN := 1.2 * (dvN - c.velN)
	accE := 1.2 * (dvE - c.velE)
	cy, sy := math.Cos(c.estYaw), math.Sin(c.estYaw)
	accX := cy*accN + sy*accE  // body forward
	accY := -sy*accN + cy*accE // body right
	// Forward acceleration needs nose-down (negative) pitch.
	desPitch := clamp(-accX/9.81, -c.limits.MaxTiltRad, c.limits.MaxTiltRad)
	desRoll := clamp(accY/9.81, -c.limits.MaxTiltRad, c.limits.MaxTiltRad)

	// Altitude -> climb rate -> collective.
	var climb float64
	if !math.IsNaN(climbOverride) {
		climb = climbOverride
	} else {
		climb = clamp(1.0*(desAlt-c.alt), -c.limits.MaxDescentMS, c.limits.MaxClimbMS)
	}
	climbErr := climb - (-c.velD) // velD is down-positive
	c.iVelZ = clamp(c.iVelZ+0.02*climbErr*dt, -0.08, 0.08)
	collective := c.hoverFrac + 0.10*climbErr + c.iVelZ

	// Attitude -> rates.
	desP := 6 * wrapPi(desRoll-c.estRoll)
	desQ := 6 * wrapPi(desPitch-c.estPitch)
	desR := clamp(3*wrapPi(c.tgtYaw-c.estYaw), -1.5, 1.5)

	// Rates -> torque demands (normalized motor units).
	errP := desP - imu.GyroX
	errQ := desQ - imu.GyroY
	errR := desR - imu.GyroZ
	c.iRateP = clamp(c.iRateP+0.02*errP*dt, -0.05, 0.05)
	c.iRateQ = clamp(c.iRateQ+0.02*errQ*dt, -0.05, 0.05)
	c.iRateR = clamp(c.iRateR+0.05*errR*dt, -0.05, 0.05)
	rOut := clamp(0.05*errP+c.iRateP, -0.25, 0.25)
	pOut := clamp(0.05*errQ+c.iRateQ, -0.25, 0.25)
	yOut := clamp(0.10*errR+c.iRateR, -0.15, 0.15)

	// Mixer (matches the X-configuration torque model):
	//   f0 FR = col - R + P + Y     f1 BL = col + R - P + Y
	//   f2 FL = col + R + P - Y     f3 BR = col - R - P - Y
	var m [4]float64
	m[0] = collective - rOut + pOut + yOut
	m[1] = collective + rOut - pOut + yOut
	m[2] = collective + rOut + pOut - yOut
	m[3] = collective - rOut - pOut - yOut
	for i := range m {
		m[i] = clamp(m[i], 0, 1)
	}
	c.logSample()
	return m
}

// updateAttitudeEstimate runs the complementary filter. hdgDeg is the
// magnetometer heading in degrees, sampled by the caller before locking.
func (c *Controller) updateAttitudeEstimate(imu devices.IMUSample, hdgDeg, dt float64) {
	// Gyro integration.
	cr, sr := math.Cos(c.estRoll), math.Sin(c.estRoll)
	tp := math.Tan(c.estPitch)
	cp := math.Cos(c.estPitch)
	c.estRoll += dt * (imu.GyroX + imu.GyroY*sr*tp + imu.GyroZ*cr*tp)
	c.estPitch += dt * (imu.GyroY*cr - imu.GyroZ*sr)
	c.estYaw += dt * (imu.GyroY*sr/cp + imu.GyroZ*cr/cp)

	// Accelerometer tilt correction. Only trust the accelerometer when the
	// specific force magnitude is close to 1 g AND rotation is slow —
	// during coordinated acceleration the specific force aligns with body-z
	// regardless of tilt and would pull the estimate toward level.
	g := math.Sqrt(imu.AccelX*imu.AccelX + imu.AccelY*imu.AccelY + imu.AccelZ*imu.AccelZ)
	rate := math.Abs(imu.GyroX) + math.Abs(imu.GyroY) + math.Abs(imu.GyroZ)
	if g > 9.6 && g < 10.0 && rate < 0.1 {
		rollAcc := math.Atan2(-imu.AccelY, -imu.AccelZ)
		pitchAcc := math.Atan2(imu.AccelX, math.Hypot(imu.AccelY, imu.AccelZ))
		// A slow correction (tau ~ 5 s at 400 Hz) removes gyro drift without
		// letting small coordinated tilts drag the estimate toward level.
		const k = 0.0005
		c.estRoll += k * wrapPi(rollAcc-c.estRoll)
		c.estPitch += k * wrapPi(pitchAcc-c.estPitch)
	}

	// Magnetometer yaw correction.
	hdg := hdgDeg * math.Pi / 180
	c.estYaw += 0.02 * wrapPi(hdg-c.estYaw)
	c.estYaw = wrapPi(c.estYaw)
	c.estRoll = wrapPi(c.estRoll)
	c.estPitch = clamp(c.estPitch, -1.2, 1.2)
}

// checkFenceLocked runs the geofence check against the position estimate.
func (c *Controller) checkFenceLocked() {
	if c.fence == nil || !c.armed {
		return
	}
	pos := c.estimateLocked()
	if c.fence.Contains(pos) {
		c.breached = false
		return
	}
	if c.breached {
		return // act once per breach
	}
	c.breached = true
	if c.breach != nil {
		action := c.breach
		// Run outside the lock: breach actions call back into the
		// controller (mode changes, target updates).
		c.mu.Unlock()
		action(c)
		c.mu.Lock()
	}
}

// checkBatteryLocked forces RTL when the state of charge drops below the
// failsafe threshold, once per discharge. soc is the state of charge
// sampled by the caller before locking.
func (c *Controller) checkBatteryLocked(soc float64) {
	if c.battFailsafeFrac <= 0 || c.battFailsafed || !c.armed {
		return
	}
	if soc >= c.battFailsafeFrac {
		return
	}
	if c.mode == mavlink.ModeRTL || c.mode == mavlink.ModeLand {
		c.battFailsafed = true
		return
	}
	c.battFailsafed = true
	_ = c.setModeLocked(mavlink.ModeRTL)
}

// BatteryFailsafed reports whether the low-battery failsafe has fired.
func (c *Controller) BatteryFailsafed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.battFailsafed
}

// Breached reports whether the fence is currently breached.
func (c *Controller) Breached() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breached
}

func (c *Controller) logSample() {
	if c.log == nil {
		return
	}
	c.log.add(Sample{
		T:        c.timeS,
		EstRoll:  c.estRoll,
		EstPitch: c.estPitch,
		EstYaw:   c.estYaw,
	})
}

// RecordTruth lets the harness attach ground-truth attitude to the most
// recent log sample (on hardware, the "canonical" attitude comes from log
// post-processing; in simulation it is the sim state).
func (c *Controller) RecordTruth(roll, pitch, yaw float64) {
	if c.log == nil {
		return
	}
	c.log.setTruth(roll, pitch, yaw)
}

// --------------------------------------------------------------------------
// MAVLink server

// HandleMessage processes one inbound MAVLink message and returns any
// immediate replies (acks). Telemetry is produced separately by Telemetry.
func (c *Controller) HandleMessage(msg mavlink.Message) []mavlink.Message {
	switch m := msg.(type) {
	case *mavlink.CommandLong:
		return c.handleCommand(m)
	case *mavlink.SetMode:
		res := uint8(mavlink.ResultAccepted)
		if err := c.SetModeNum(m.CustomMode); err != nil {
			res = mavlink.ResultDenied
		}
		return c.ackReply(mavlink.CmdDoSetMode, res)
	case *mavlink.SetPositionTargetGlobalInt:
		p := geo.Position{
			LatLon: geo.LatLon{Lat: mavlink.E7ToLatLon(m.LatE7), Lon: mavlink.E7ToLatLon(m.LonE7)},
			Alt:    float64(m.Alt),
		}
		if err := c.GotoPosition(p, 0); err != nil {
			return c.ackReply(mavlink.MsgIDSetPositionTargetGlobal, mavlink.ResultDenied)
		}
		return nil // position targets are not acked in MAVLink
	case *mavlink.ParamRequestList, *mavlink.ParamRequestRead, *mavlink.ParamSet:
		return c.handleParam(msg)
	case *mavlink.MissionCount:
		return c.handleMissionCount(m)
	case *mavlink.MissionItemInt:
		return c.handleMissionItem(m)
	case *mavlink.MissionClearAll:
		c.mu.Lock()
		c.mission = nil
		c.missionIdx = 0
		c.uploading = false
		c.mu.Unlock()
		return []mavlink.Message{&mavlink.MissionAck{Type: mavlink.MissionAccepted}} //vet:allow hotpath mission-protocol reply; not the steady-state stream
	case *mavlink.Heartbeat:
		return nil
	}
	return nil
}

// handleMissionCount opens a mission upload (the MAVLink mission protocol:
// the vehicle requests each item in turn).
func (c *Controller) handleMissionCount(m *mavlink.MissionCount) []mavlink.Message {
	const maxItems = 512
	if m.Count == 0 || m.Count > maxItems {
		return []mavlink.Message{&mavlink.MissionAck{Type: mavlink.MissionInvalidParam}} //vet:allow hotpath mission-protocol reply; not the steady-state stream
	}
	c.mu.Lock()
	c.uploading = true
	c.uploadTotal = int(m.Count)
	c.uploadNext = 0
	c.uploadItems = c.uploadItems[:0]
	c.mu.Unlock()
	return []mavlink.Message{&mavlink.MissionRequestInt{Seq: 0}} //vet:allow hotpath mission-protocol reply; not the steady-state stream
}

// handleMissionItem accepts the next mission item, requesting the following
// one or closing the transaction with an ack.
func (c *Controller) handleMissionItem(m *mavlink.MissionItemInt) []mavlink.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.uploading {
		return []mavlink.Message{&mavlink.MissionAck{Type: mavlink.MissionError}} //vet:allow hotpath mission-protocol reply; not the steady-state stream
	}
	if int(m.Seq) != c.uploadNext {
		c.uploading = false
		return []mavlink.Message{&mavlink.MissionAck{Type: mavlink.MissionInvalidSeq}} //vet:allow hotpath mission-protocol reply; not the steady-state stream
	}
	if m.Command != mavlink.CmdNavWaypoint {
		c.uploading = false
		return []mavlink.Message{&mavlink.MissionAck{Type: mavlink.MissionUnsupported}} //vet:allow hotpath mission-protocol reply; not the steady-state stream
	}
	c.uploadItems = append(c.uploadItems, geo.Position{
		LatLon: geo.LatLon{Lat: mavlink.E7ToLatLon(m.LatE7), Lon: mavlink.E7ToLatLon(m.LonE7)},
		Alt:    float64(m.Alt),
	})
	c.uploadNext++
	if c.uploadNext < c.uploadTotal {
		return []mavlink.Message{&mavlink.MissionRequestInt{Seq: uint16(c.uploadNext)}} //vet:allow hotpath mission-protocol reply; not the steady-state stream
	}
	c.mission = append([]geo.Position(nil), c.uploadItems...)
	c.missionIdx = 0
	c.uploading = false
	return []mavlink.Message{&mavlink.MissionAck{Type: mavlink.MissionAccepted}} //vet:allow hotpath mission-protocol reply; not the steady-state stream
}

// ackReply fills the reply scratch with a command ack — the allocation-free
// reply for the hot accepted/denied command paths (see the scratch fields'
// serial-endpoint contract).
func (c *Controller) ackReply(cmd uint16, res uint8) []mavlink.Message {
	c.ackScratch = mavlink.CommandAck{Command: cmd, Result: res}
	c.replyScratch[0] = &c.ackScratch
	return c.replyScratch[:]
}

func (c *Controller) handleCommand(m *mavlink.CommandLong) []mavlink.Message {
	ack := func(res uint8) []mavlink.Message { //vet:allow hotpath non-escaping closure; conservative FuncLit rule
		return c.ackReply(m.Command, res)
	}
	fail := func(err error) []mavlink.Message { //vet:allow hotpath non-escaping closure; conservative FuncLit rule
		if err == nil {
			return ack(mavlink.ResultAccepted)
		}
		return ack(mavlink.ResultDenied)
	}
	switch m.Command {
	case mavlink.CmdComponentArmDisarm:
		if m.Param1 >= 0.5 {
			return fail(c.Arm())
		}
		c.Disarm()
		return ack(mavlink.ResultAccepted)
	case mavlink.CmdNavTakeoff:
		return fail(c.Takeoff(float64(m.Param7)))
	case mavlink.CmdNavLand:
		return fail(c.SetModeNum(mavlink.ModeLand))
	case mavlink.CmdNavReturnToLaunch:
		return fail(c.SetModeNum(mavlink.ModeRTL))
	case mavlink.CmdNavLoiterUnlim:
		return fail(c.SetModeNum(mavlink.ModeLoiter))
	case mavlink.CmdDoSetMode:
		return fail(c.SetModeNum(uint32(m.Param2)))
	case mavlink.CmdConditionYaw:
		c.SetYaw(float64(m.Param1) * math.Pi / 180)
		return ack(mavlink.ResultAccepted)
	case mavlink.CmdDoChangeSpeed:
		c.mu.Lock()
		c.speedLimit = float64(m.Param2)
		c.mu.Unlock()
		return ack(mavlink.ResultAccepted)
	}
	return ack(mavlink.ResultUnsupported)
}

// Telemetry returns the controller's current telemetry set: heartbeat,
// attitude, global position, and system status.
func (c *Controller) Telemetry() []mavlink.Message {
	// Battery is an interface call into the device backend; sample it
	// before taking the controller lock.
	soc, volt := c.sensors.Battery()
	c.mu.Lock()
	defer c.mu.Unlock()
	base := uint8(mavlink.ModeFlagCustomModeEnabled)
	if c.armed {
		base |= mavlink.ModeFlagSafetyArmed
	}
	pos := c.estimateLocked()
	hdg := math.Mod(c.estYaw*180/math.Pi+360, 360)
	return []mavlink.Message{
		&mavlink.Heartbeat{CustomMode: c.mode, Type: 2, Autopilot: 3, BaseMode: base, SystemStatus: 4, MavlinkVersion: 3},
		&mavlink.Attitude{
			TimeBootMs: uint32(c.timeS * 1000),
			Roll:       float32(c.estRoll), Pitch: float32(c.estPitch), Yaw: float32(c.estYaw),
		},
		&mavlink.GlobalPositionInt{
			TimeBootMs:    uint32(c.timeS * 1000),
			LatE7:         mavlink.LatLonToE7(pos.Lat),
			LonE7:         mavlink.LatLonToE7(pos.Lon),
			AltMM:         int32((pos.Alt + c.home.Alt) * 1000),
			RelativeAltMM: int32(pos.Alt * 1000),
			Vx:            int16(c.velN * 100), Vy: int16(c.velE * 100), Vz: int16(c.velD * 100),
			HdgCdeg: uint16(hdg * 100),
		},
		&mavlink.SysStatus{
			VoltageBatteryMV: uint16(volt * 1000),
			BatteryRemaining: int8(soc * 100),
			Load:             450,
		},
	}
}

// --------------------------------------------------------------------------

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func wrapPi(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
