// Idle fast-forward support for the event-driven fleet scheduler.
//
// A disarmed controller over a motionless world is a fixed point of Step
// up to three counters: timeS, loopCount, and stepCount. The estimator
// re-derives exactly the same attitude from the frozen IMU (pre-takeoff
// the estimate is exactly zero and every correction term rounds to
// zero), the 50 Hz GPS branch rewrites position/velocity fields with the
// same frozen values, the fence check and battery failsafe both early
// out while disarmed, and the motor command published is all-zeros —
// idempotent against a parked simulation. AdvanceDisarmed replays just
// the counters with the exact per-step arithmetic.
//
// The flight log is the one deliberate divergence: lockstep appends one
// sample per fast-loop step while a bulk leap appends none. The log
// feeds the AED analysis and black-box records, never the trace hash, so
// the determinism contract is unaffected (DESIGN.md "Event-driven
// scheduling").

package flight

import "math"

// Disarmed reports whether the controller is structurally eligible for a
// bulk idle advance. Armed controllers run control math whose integrator
// updates are never identity.
func (c *Controller) Disarmed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.armed
}

// Fingerprint hashes every controller field except the pure step
// counters (timeS, loopCount, stepCount) and the flight log. Equal
// fingerprints one tick apart mean the intervening steps changed nothing
// the control law can later observe — paired with sitl.Sim.Fingerprint
// it gates the event runner's bulk leaps.
func (c *Controller) Fingerprint() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := fpInit
	for _, f := range [...]float64{
		c.hoverFrac,
		c.estRoll, c.estPitch, c.estYaw,
		c.posN, c.posE, c.alt,
		c.velN, c.velE, c.velD,
		c.tgtN, c.tgtE, c.tgtAlt, c.tgtYaw,
		c.speedLimit, c.takeoffAlt,
		c.iRateP, c.iRateQ, c.iRateR, c.iVelZ,
		c.battFailsafeFrac, c.rtlAltM,
	} {
		h = fpMix(h, math.Float64bits(f))
	}
	h = fpMix(h, uint64(c.mode))
	h = fpMix(h, uint64(c.missionIdx))
	h = fpMix(h, uint64(len(c.mission)))
	h = fpMix(h, uint64(c.uploadTotal))
	h = fpMix(h, uint64(c.uploadNext))
	h = fpMix(h, uint64(len(c.uploadItems)))
	for i, b := range [...]bool{
		c.armed, c.haveFix, c.landing, c.uploading,
		c.breached, c.battFailsafed, c.fence != nil,
	} {
		if b {
			h = fpMix(h, uint64(i)+1)
		}
	}
	return h
}

// AdvanceDisarmed fast-forwards a disarmed controller by steps fast-loop
// iterations of dt seconds, replaying exactly the counter arithmetic
// Step would perform: timeS grows by the same per-step float add,
// loopCount by one per step (the 50 Hz GPS phase is preserved because
// callers leap whole harness ticks of 40 steps, and 40 ≡ 0 mod 8), and
// the atomic stepCount by one per step so latency-sampling phase
// survives the leap. No flight-log samples are appended.
func (c *Controller) AdvanceDisarmed(steps int, dt float64) {
	if steps <= 0 || dt <= 0 {
		return
	}
	c.stepCount.Add(uint64(steps))
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.timeS
	for i := 0; i < steps; i++ {
		t += dt
	}
	c.timeS = t
	c.loopCount += uint64(steps)
}

// FNV-1a folding for state fingerprints (mirrors internal/sitl).
const (
	fpInit  uint64 = 14695981039346656037
	fpPrime uint64 = 1099511628211
)

func fpMix(h, v uint64) uint64 {
	h ^= v
	return h * fpPrime
}
