package flight

import (
	"math"
	"testing"

	"androne/internal/mavlink"
)

// TestDisarmedPredicate: an armed controller is never eligible for a
// bulk advance, whatever the airframe is doing.
func TestDisarmedPredicate(t *testing.T) {
	v := prepare(t)
	if !v.Controller.Disarmed() {
		t.Fatal("fresh controller not Disarmed")
	}
	takeoffTo(t, v, 10)
	if v.Controller.Disarmed() {
		t.Error("Disarmed while armed and flying")
	}
}

// TestAdvanceDisarmedBitExact proves the controller half of the leap
// contract: a disarmed controller over a parked sim, fast-forwarded with
// AdvanceDisarmed + AdvanceParked, is bit-identical to one that stepped
// every fast-loop iteration — including the later flight it flies.
func TestAdvanceDisarmedBitExact(t *testing.T) {
	a := NewVehicle(home, t.Name())
	b := NewVehicle(home, t.Name())
	a.StepSeconds(0.5)
	b.StepSeconds(0.5)

	fp := b.Controller.Fingerprint()
	if fp != b.Controller.Fingerprint() {
		t.Fatal("Fingerprint not deterministic")
	}
	a.StepSeconds(0.1)
	b.StepSeconds(0.1)
	if b.Controller.Fingerprint() != fp {
		t.Fatal("disarmed fingerprint not stable across a tick")
	}

	const steps = 4000 // whole harness ticks: 40 ≡ 0 mod 8 keeps GPS phase
	a.StepSeconds(float64(steps) * FastLoopDT)
	b.Controller.AdvanceDisarmed(0, FastLoopDT) // no-op guards
	b.Controller.AdvanceDisarmed(steps, 0)
	b.Sim.AdvanceParked(steps, FastLoopDT)
	b.Controller.AdvanceDisarmed(steps, FastLoopDT)

	if a.Controller.Fingerprint() != b.Controller.Fingerprint() {
		t.Error("controller fingerprints diverge after leap")
	}
	if a.Sim.Fingerprint() != b.Sim.Fingerprint() {
		t.Error("sim fingerprints diverge after leap")
	}

	for _, v := range []*Vehicle{a, b} {
		c := v.Controller
		if err := c.SetModeNum(mavlink.ModeGuided); err != nil {
			t.Fatal(err)
		}
		if err := c.Arm(); err != nil {
			t.Fatal(err)
		}
		if err := c.Takeoff(12); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 800; i++ {
		a.StepSeconds(FastLoopDT)
		b.StepSeconds(FastLoopDT)
		if aa, ba := a.Sim.AltitudeAGL(), b.Sim.AltitudeAGL(); aa != ba {
			t.Fatalf("step %d: altitude diverged %v vs %v", i, aa, ba)
		}
	}
	if alt := a.Sim.AltitudeAGL(); math.Abs(alt) < 1 {
		t.Fatal("comparison vacuous: drone never left the ground")
	}
}
