package flight

import (
	"sync"
	"testing"

	"androne/internal/mavlink"
)

// TestConcurrentReadersDuringFlight drives the fast loop while tenant-side
// goroutines hammer every reader API — the VFC telemetry path, state
// queries, and MAVLink dispatch. Run under -race this exercises the
// invariant the locksafe refactor established: c.mu is never held across a
// sensor or motor interface call, so the controller lock cannot order
// against the sim's internal lock.
func TestConcurrentReadersDuringFlight(t *testing.T) {
	v := prepare(t)
	c := v.Controller
	if err := c.SetModeNum(mavlink.ModeGuided); err != nil {
		t.Fatal(err)
	}
	if err := c.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := c.Takeoff(10); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	readers := []func(){
		func() { c.Telemetry() },
		func() { c.Estimate() },
		func() { c.EstimatedAttitude() },
		func() { _ = c.Armed() },
		func() { _ = c.Mode() },
		func() { _ = c.Breached() },
		func() { _ = c.BatteryFailsafed() },
		func() { _ = c.MissionIndex() },
		func() { c.HandleMessage(&mavlink.Heartbeat{}) },
	}
	for _, read := range readers {
		wg.Add(1)
		go func(read func()) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					read()
				}
			}
		}(read)
	}

	v.StepSeconds(2)
	close(stop)
	wg.Wait()

	if !c.Armed() {
		t.Fatal("controller disarmed itself during concurrent reads")
	}
}

// TestConcurrentDisarm races Disarm against the fast loop: the motor-cut
// write happens outside the lock and must not tear against Step's motor
// command publication.
func TestConcurrentDisarm(t *testing.T) {
	v := prepare(t)
	c := v.Controller
	if err := c.SetModeNum(mavlink.ModeGuided); err != nil {
		t.Fatal(err)
	}
	if err := c.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := c.Takeoff(5); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Disarm()
	}()
	v.StepSeconds(1)
	<-done

	if c.Armed() {
		t.Fatal("Disarm lost")
	}
}
