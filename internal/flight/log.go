package flight

import (
	"math"
	"sync"
)

// Sample is one flight log record: the controller's attitude estimate and,
// when available, the canonical (ground-truth) attitude.
type Sample struct {
	T                            float64 // seconds since boot
	EstRoll, EstPitch, EstYaw    float64
	TrueRoll, TruePitch, TrueYaw float64
	HasTruth                     bool
}

// Log is a flight log, the input to the Attitude Estimate Divergence
// analyzer the paper uses (DroneKit Log Analyzer) to show that virtual
// drone workloads do not destabilize the drone.
type Log struct {
	mu      sync.Mutex
	samples []Sample
}

// NewLog creates an empty flight log.
func NewLog() *Log { return &Log{} }

func (l *Log) add(s Sample) {
	l.mu.Lock() //vet:allow hotpath opt-in AED flight log; off in fleet runs
	defer l.mu.Unlock()
	l.samples = append(l.samples, s)
}

func (l *Log) setTruth(roll, pitch, yaw float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return
	}
	s := &l.samples[len(l.samples)-1]
	s.TrueRoll, s.TruePitch, s.TrueYaw = roll, pitch, yaw
	s.HasTruth = true
}

// Samples returns a copy of the recorded samples.
func (l *Log) Samples() []Sample {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Sample(nil), l.samples...)
}

// Len returns the number of samples.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// AEDResult is the Attitude Estimate Divergence verdict: the flight is
// unstable if yaw, pitch, or roll diverges more than ThresholdDeg from the
// canonical attitude for longer than ThresholdSec.
type AEDResult struct {
	MaxDivergenceDeg  float64
	LongestExcursionS float64
	Pass              bool
}

// AED analyzer thresholds (DroneKit Log Analyzer defaults cited in §6.2).
const (
	AEDThresholdDeg = 5.0
	AEDThresholdSec = 0.5
)

// AnalyzeAED runs the Attitude Estimate Divergence analysis over the log.
func AnalyzeAED(l *Log) AEDResult {
	samples := l.Samples()
	res := AEDResult{Pass: true}
	excursionStart := -1.0
	for _, s := range samples {
		if !s.HasTruth {
			continue
		}
		div := math.Max(angDiffDeg(s.EstRoll, s.TrueRoll),
			math.Max(angDiffDeg(s.EstPitch, s.TruePitch), angDiffDeg(s.EstYaw, s.TrueYaw)))
		if div > res.MaxDivergenceDeg {
			res.MaxDivergenceDeg = div
		}
		if div > AEDThresholdDeg {
			if excursionStart < 0 {
				excursionStart = s.T
			}
			if dur := s.T - excursionStart; dur > res.LongestExcursionS {
				res.LongestExcursionS = dur
			}
		} else {
			excursionStart = -1
		}
	}
	if res.LongestExcursionS > AEDThresholdSec {
		res.Pass = false
	}
	return res
}

func angDiffDeg(a, b float64) float64 {
	return math.Abs(wrapPi(a-b)) * 180 / math.Pi
}
