package flight

import (
	"math"
	"testing"

	"androne/internal/geo"
	"androne/internal/mavlink"
	"androne/internal/sitl"
)

func TestBatteryFailsafeForcesRTL(t *testing.T) {
	// A tiny battery drains within the flight; the failsafe must force RTL
	// and bring the drone home before the pack dies.
	params := sitl.DefaultParams()
	params.BatteryJ = 22000 // ~2.4 min of hover
	v := NewVehicleParams(home, params, t.Name(), WithBatteryFailsafe(0.35))
	v.StepSeconds(0.1)
	c := v.Controller
	if err := c.SetModeNum(mavlink.ModeGuided); err != nil {
		t.Fatal(err)
	}
	if err := c.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := c.Takeoff(15); err != nil {
		t.Fatal(err)
	}
	v.RunUntil(func() bool { return v.Sim.AltitudeAGL() > 14 }, 30)
	// Park the drone away from home so RTL has real work to do.
	target := geo.Position{LatLon: geo.OffsetNE(home.LatLon, 60, 0), Alt: 15}
	if err := c.GotoPosition(target, 0); err != nil {
		t.Fatal(err)
	}
	v.RunUntil(func() bool { return geo.Distance3D(v.Sim.Position(), target) < 2 }, 60)

	// Loiter until the battery sags below the threshold.
	ok := v.RunUntil(func() bool { return c.BatteryFailsafed() }, 200)
	if !ok {
		t.Fatalf("failsafe never fired; soc %.2f", v.Sim.BatteryRemaining())
	}
	if c.Mode() != mavlink.ModeRTL && c.Mode() != mavlink.ModeLand {
		t.Fatalf("mode after failsafe = %s", mavlink.ModeName(c.Mode()))
	}
	ok = v.RunUntil(func() bool { return v.Sim.OnGround() && !c.Armed() }, 120)
	if !ok {
		t.Fatal("did not land after failsafe")
	}
	n, e := v.Sim.NE()
	if math.Hypot(n, e) > 3 {
		t.Fatalf("failsafe landed %.1f m from home", math.Hypot(n, e))
	}
	if v.Sim.BatteryRemaining() <= 0 {
		t.Fatal("battery fully depleted before landing")
	}
}

func TestBatteryFailsafeDisabledByDefault(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 10)
	v.StepSeconds(5)
	if v.Controller.BatteryFailsafed() {
		t.Fatal("failsafe fired while disabled")
	}
}

func TestMotorDegradationCompensated(t *testing.T) {
	// A 20% thrust loss on one motor: the rate-loop integrators retrim and
	// the drone keeps holding its hover position.
	v := prepare(t)
	takeoffTo(t, v, 12)
	if err := v.Controller.SetModeNum(mavlink.ModeLoiter); err != nil {
		t.Fatal(err)
	}
	p0 := v.Sim.Position()
	v.Sim.SetMotorHealth(0, 0.80)
	v.StepSeconds(10)
	if v.Sim.OnGround() {
		t.Fatal("crashed with a 20% degraded motor")
	}
	if d := geo.Distance3D(p0, v.Sim.Position()); d > 5 {
		t.Fatalf("drifted %.1f m with a degraded motor", d)
	}
	roll, pitch, _ := v.Sim.Attitude()
	if math.Abs(roll) > 0.15 || math.Abs(pitch) > 0.15 {
		t.Fatalf("attitude not retrimmed: roll %.2f pitch %.2f", roll, pitch)
	}
}

func TestMotorFailureCrashes(t *testing.T) {
	// Complete loss of one motor is unrecoverable for a quadcopter: the
	// vehicle departs controlled flight. This documents the boundary the
	// paper's hardware failsafe (Navio2 microcontroller) exists for.
	v := prepare(t)
	takeoffTo(t, v, 20)
	if err := v.Controller.SetModeNum(mavlink.ModeLoiter); err != nil {
		t.Fatal(err)
	}
	v.Sim.SetMotorHealth(2, 0)
	ok := v.RunUntil(func() bool {
		roll, pitch, _ := v.Sim.Attitude()
		return v.Sim.OnGround() || math.Abs(roll) > 0.8 || math.Abs(pitch) > 0.8
	}, 30)
	if !ok {
		t.Fatal("quad held position with a dead motor; model too forgiving")
	}
}
