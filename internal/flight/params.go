package flight

import (
	"math"
	"sort"

	"androne/internal/mavlink"
)

// Tunable parameters, named as ArduPilot names them. Values use ArduPilot's
// units (cm/s, centidegrees, cm) on the wire and are clamped to
// provider-configured hard bounds when set.
const (
	ParamWPNavSpeed = "WPNAV_SPEED"  // horizontal speed limit, cm/s
	ParamSpeedUp    = "PILOT_SPD_UP" // climb rate limit, cm/s
	ParamSpeedDown  = "PILOT_SPD_DN" // descent rate limit, cm/s
	ParamAngleMax   = "ANGLE_MAX"    // tilt limit, centidegrees
	ParamRTLAlt     = "RTL_ALT"      // return altitude, cm
	ParamFSBattPct  = "FS_BATT_PCT"  // battery failsafe threshold, percent (0 = off)
)

// paramNames is the stable parameter table order.
var paramNames = []string{
	ParamAngleMax, ParamFSBattPct, ParamSpeedDown, ParamSpeedUp, ParamRTLAlt, ParamWPNavSpeed,
}

func init() { sort.Strings(paramNames) }

// paramGet reads a parameter in wire units. Caller holds c.mu.
func (c *Controller) paramGetLocked(name string) (float32, bool) {
	switch name {
	case ParamWPNavSpeed:
		return float32(c.limits.MaxSpeedMS * 100), true
	case ParamSpeedUp:
		return float32(c.limits.MaxClimbMS * 100), true
	case ParamSpeedDown:
		return float32(c.limits.MaxDescentMS * 100), true
	case ParamAngleMax:
		return float32(c.limits.MaxTiltRad * 180 / math.Pi * 100), true
	case ParamRTLAlt:
		return float32(c.rtlAltM * 100), true
	case ParamFSBattPct:
		return float32(c.battFailsafeFrac * 100), true
	}
	return 0, false
}

// paramSetLocked writes a parameter, clamping to hard safety bounds. Caller
// holds c.mu. Returns the value actually stored.
func (c *Controller) paramSetLocked(name string, v float32) (float32, bool) {
	clamp64 := func(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) } //vet:allow hotpath non-escaping closure; conservative FuncLit rule
	switch name {
	case ParamWPNavSpeed:
		c.limits.MaxSpeedMS = clamp64(float64(v)/100, 0.5, 12)
	case ParamSpeedUp:
		c.limits.MaxClimbMS = clamp64(float64(v)/100, 0.5, 4)
	case ParamSpeedDown:
		c.limits.MaxDescentMS = clamp64(float64(v)/100, 0.3, 2.5)
	case ParamAngleMax:
		c.limits.MaxTiltRad = clamp64(float64(v)/100*math.Pi/180, 0.1, 0.6)
	case ParamRTLAlt:
		c.rtlAltM = clamp64(float64(v)/100, 2, 100)
	case ParamFSBattPct:
		c.battFailsafeFrac = clamp64(float64(v)/100, 0, 0.5)
		c.battFailsafed = false
	default:
		return 0, false
	}
	got, _ := c.paramGetLocked(name)
	return got, true
}

// handleParam processes the MAVLink parameter protocol.
func (c *Controller) handleParam(msg mavlink.Message) []mavlink.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch m := msg.(type) {
	case *mavlink.ParamRequestList:
		out := make([]mavlink.Message, 0, len(paramNames)) //vet:allow hotpath param-protocol reply; not the steady-state stream
		for i, name := range paramNames {
			v, _ := c.paramGetLocked(name)
			out = append(out, &mavlink.ParamValue{ //vet:allow hotpath param-protocol reply; not the steady-state stream
				Value: v, ParamCount: uint16(len(paramNames)), ParamIndex: uint16(i),
				ParamID: name, ParamType: 9, // MAV_PARAM_TYPE_REAL32
			})
		}
		return out
	case *mavlink.ParamRequestRead:
		if v, ok := c.paramGetLocked(m.ParamID); ok {
			return []mavlink.Message{&mavlink.ParamValue{ //vet:allow hotpath param-protocol reply; not the steady-state stream
				Value: v, ParamCount: uint16(len(paramNames)),
				ParamID: m.ParamID, ParamType: 9,
			}}
		}
		return nil
	case *mavlink.ParamSet:
		if v, ok := c.paramSetLocked(m.ParamID, m.Value); ok {
			// MAVLink confirms a set by echoing the (possibly clamped)
			// stored value.
			return []mavlink.Message{&mavlink.ParamValue{ //vet:allow hotpath param-protocol reply; not the steady-state stream
				Value: v, ParamCount: uint16(len(paramNames)),
				ParamID: m.ParamID, ParamType: 9,
			}}
		}
		return nil
	}
	return nil
}
