// Flight-recorder instrumentation for the 400 Hz control loop. The fast
// loop is the most latency-sensitive code in the repo, so it pays one
// atomic load per step plus a 1-in-64 sampled wall-clock measurement into
// a bounded histogram; mode changes (a rare, decision-shaped event) are
// traced individually. Wall-clock samples feed metrics only, never trace
// events, so traces stay deterministic under a fixed seed.

package flight

import "androne/internal/telemetry"

// stepSampleEvery is the fast-loop latency sampling period: at 400 Hz,
// one sample every 160 ms.
const stepSampleEvery = 64

var (
	mStepNS = telemetry.NewHistogram("androne_flight_step_ns",
		"Sampled fast-loop step latency in nanoseconds.",
		telemetry.ExponentialBounds(250, 2, 16)) // 250ns .. ~8ms
	mModeChanges = telemetry.NewCounter("androne_flight_mode_changes_total",
		"Successful externally commanded flight-mode changes.")
)

// Trace event kinds.
var kModeChange = telemetry.K("flight.mode-change")

// WithRecorder attaches a flight recorder to the controller.
func WithRecorder(r *telemetry.Recorder) Option {
	return func(c *Controller) { c.tel = r }
}
