package flight

import (
	"errors"
	"math"
	"testing"

	"androne/internal/geo"
	"androne/internal/mavlink"
)

var home = geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0}

// prepare builds a vehicle, waits for a position fix, and returns it.
func prepare(t *testing.T, opts ...Option) *Vehicle {
	t.Helper()
	v := NewVehicle(home, t.Name(), opts...)
	v.StepSeconds(0.1) // let the estimator get a fix
	return v
}

// takeoffTo arms, switches to GUIDED, and climbs to alt.
func takeoffTo(t *testing.T, v *Vehicle, alt float64) {
	t.Helper()
	c := v.Controller
	if err := c.SetModeNum(mavlink.ModeGuided); err != nil {
		t.Fatal(err)
	}
	if err := c.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := c.Takeoff(alt); err != nil {
		t.Fatal(err)
	}
	ok := v.RunUntil(func() bool {
		return math.Abs(v.Sim.AltitudeAGL()-alt) < 0.5
	}, 30)
	if !ok {
		t.Fatalf("takeoff to %gm failed; at %.2fm", alt, v.Sim.AltitudeAGL())
	}
}

func TestArmRequiresFix(t *testing.T) {
	v := NewVehicle(home, "nofix")
	if err := v.Controller.Arm(); !errors.Is(err, ErrUnsafe) {
		t.Fatalf("arm without fix: %v", err)
	}
	v.StepSeconds(0.1)
	if err := v.Controller.Arm(); err != nil {
		t.Fatalf("arm with fix: %v", err)
	}
}

func TestTakeoffAndHold(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 15)
	// Hold for 10 s; altitude stays near target, position near home.
	v.StepSeconds(10)
	if alt := v.Sim.AltitudeAGL(); math.Abs(alt-15) > 1 {
		t.Fatalf("altitude hold = %.2f m", alt)
	}
	n, e := v.Sim.NE()
	if math.Hypot(n, e) > 2 {
		t.Fatalf("horizontal drift = %.2f m", math.Hypot(n, e))
	}
}

func TestTakeoffRequiresGuidedAndArmed(t *testing.T) {
	v := prepare(t)
	c := v.Controller
	if err := c.Takeoff(10); !errors.Is(err, ErrNotArmed) {
		t.Fatalf("takeoff disarmed: %v", err)
	}
	if err := c.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := c.Takeoff(10); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("takeoff in STABILIZE: %v", err)
	}
	if err := c.SetModeNum(mavlink.ModeGuided); err != nil {
		t.Fatal(err)
	}
	if err := c.Takeoff(-3); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("negative takeoff alt: %v", err)
	}
}

func TestGuidedGoto(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 15)
	target := geo.Position{LatLon: geo.OffsetNE(home.LatLon, 60, 40), Alt: 15}
	if err := v.Controller.GotoPosition(target, 0); err != nil {
		t.Fatal(err)
	}
	ok := v.RunUntil(func() bool {
		return geo.Distance3D(v.Sim.Position(), target) < 1.5
	}, 60)
	if !ok {
		t.Fatalf("did not reach target; at %v, %.1f m away",
			v.Sim.Position(), geo.Distance3D(v.Sim.Position(), target))
	}
	// Speed respected the limit during transit (terminal check).
	vn, ve, _ := v.Sim.VelocityNED()
	if sp := math.Hypot(vn, ve); sp > DefaultLimits().MaxSpeedMS+1 {
		t.Fatalf("speed = %.1f m/s", sp)
	}
}

func TestGuidedSpeedLimit(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 15)
	target := geo.Position{LatLon: geo.OffsetNE(home.LatLon, 120, 0), Alt: 15}
	if err := v.Controller.GotoPosition(target, 2.0); err != nil {
		t.Fatal(err)
	}
	// Measure peak speed over the transit.
	peak := 0.0
	for i := 0; i < 20*FastLoopHz; i++ {
		v.Sim.Step(FastLoopDT)
		v.Controller.Step(FastLoopDT)
		vn, ve, _ := v.Sim.VelocityNED()
		if sp := math.Hypot(vn, ve); sp > peak {
			peak = sp
		}
	}
	if peak > 3.0 {
		t.Fatalf("peak speed %.2f m/s with 2 m/s limit", peak)
	}
	if peak < 1.0 {
		t.Fatalf("peak speed %.2f m/s; vehicle did not move", peak)
	}
}

func TestLoiterHolds(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 12)
	if err := v.Controller.SetModeNum(mavlink.ModeLoiter); err != nil {
		t.Fatal(err)
	}
	p0 := v.Sim.Position()
	v.StepSeconds(8)
	if d := geo.Distance3D(p0, v.Sim.Position()); d > 2 {
		t.Fatalf("loiter drifted %.2f m", d)
	}
}

func TestLoiterHoldsInWind(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 12)
	v.Sim.SetWind(4, -2, 0.5)
	if err := v.Controller.SetModeNum(mavlink.ModeLoiter); err != nil {
		t.Fatal(err)
	}
	p0 := v.Sim.Position()
	v.StepSeconds(10)
	if d := geo.Distance3D(p0, v.Sim.Position()); d > 4 {
		t.Fatalf("loiter in wind drifted %.2f m", d)
	}
}

func TestLand(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 10)
	if err := v.Controller.SetModeNum(mavlink.ModeLand); err != nil {
		t.Fatal(err)
	}
	ok := v.RunUntil(func() bool { return v.Sim.OnGround() && !v.Controller.Armed() }, 40)
	if !ok {
		t.Fatalf("landing incomplete: alt %.2f armed %v", v.Sim.AltitudeAGL(), v.Controller.Armed())
	}
}

func TestRTL(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 15)
	target := geo.Position{LatLon: geo.OffsetNE(home.LatLon, 50, 0), Alt: 15}
	if err := v.Controller.GotoPosition(target, 0); err != nil {
		t.Fatal(err)
	}
	v.RunUntil(func() bool { return geo.Distance3D(v.Sim.Position(), target) < 2 }, 60)

	if err := v.Controller.SetModeNum(mavlink.ModeRTL); err != nil {
		t.Fatal(err)
	}
	ok := v.RunUntil(func() bool { return v.Sim.OnGround() && !v.Controller.Armed() }, 90)
	if !ok {
		t.Fatal("RTL did not complete")
	}
	n, e := v.Sim.NE()
	if math.Hypot(n, e) > 3 {
		t.Fatalf("RTL landed %.1f m from home", math.Hypot(n, e))
	}
}

func TestAutoMission(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 15)
	wps := []geo.Position{
		{LatLon: geo.OffsetNE(home.LatLon, 30, 0), Alt: 15},
		{LatLon: geo.OffsetNE(home.LatLon, 30, 30), Alt: 20},
		{LatLon: geo.OffsetNE(home.LatLon, 0, 30), Alt: 15},
	}
	v.Controller.SetMission(wps)
	if err := v.Controller.SetModeNum(mavlink.ModeAuto); err != nil {
		t.Fatal(err)
	}
	ok := v.RunUntil(func() bool {
		return v.Controller.MissionIndex() == 2 &&
			geo.Distance3D(v.Sim.Position(), wps[2]) < 2
	}, 120)
	if !ok {
		t.Fatalf("mission incomplete: idx %d pos %v", v.Controller.MissionIndex(), v.Sim.Position())
	}
}

func TestAutoRequiresMission(t *testing.T) {
	v := prepare(t)
	if err := v.Controller.SetModeNum(mavlink.ModeAuto); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("AUTO without mission: %v", err)
	}
}

func TestBadMode(t *testing.T) {
	v := prepare(t)
	if err := v.Controller.SetModeNum(77); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("err = %v", err)
	}
}

func TestDisarmCutsMotors(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 10)
	v.Controller.Disarm()
	ok := v.RunUntil(func() bool { return v.Sim.OnGround() }, 20)
	if !ok {
		t.Fatal("did not fall after disarm")
	}
}

func TestGeofenceStockFailsafeLands(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 15)
	fence := geo.Fence{Center: geo.Position{LatLon: home.LatLon, Alt: 15}, Radius: 30}
	v.Controller.SetFence(&fence, nil) // stock action: FailsafeLand

	// Command a target outside the fence.
	target := geo.Position{LatLon: geo.OffsetNE(home.LatLon, 100, 0), Alt: 15}
	if err := v.Controller.GotoPosition(target, 0); err != nil {
		t.Fatal(err)
	}
	ok := v.RunUntil(func() bool { return v.Controller.Mode() == mavlink.ModeLand }, 60)
	if !ok {
		t.Fatal("stock breach action did not trigger LAND")
	}
	if !v.Controller.Breached() {
		t.Fatal("breach flag not set")
	}
}

func TestGeofenceCustomAction(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 15)
	fence := geo.Fence{Center: geo.Position{LatLon: home.LatLon, Alt: 15}, Radius: 30}
	calls := 0
	v.Controller.SetFence(&fence, func(c *Controller) {
		calls++
		_ = c.SetModeNum(mavlink.ModeLoiter)
	})
	target := geo.Position{LatLon: geo.OffsetNE(home.LatLon, 100, 0), Alt: 15}
	if err := v.Controller.GotoPosition(target, 0); err != nil {
		t.Fatal(err)
	}
	ok := v.RunUntil(func() bool { return calls > 0 }, 60)
	if !ok {
		t.Fatal("custom breach action not invoked")
	}
	v.StepSeconds(5)
	if calls != 1 {
		t.Fatalf("breach action called %d times for one breach", calls)
	}
	if v.Controller.Mode() != mavlink.ModeLoiter {
		t.Fatalf("mode = %s", mavlink.ModeName(v.Controller.Mode()))
	}
}

func TestAttitudeEstimateTracksTruth(t *testing.T) {
	log := NewLog()
	v := NewVehicle(home, "aed", WithLog(log))
	v.StepSeconds(0.1)
	takeoffTo(t, v, 12)
	target := geo.Position{LatLon: geo.OffsetNE(home.LatLon, 40, 40), Alt: 15}
	if err := v.Controller.GotoPosition(target, 0); err != nil {
		t.Fatal(err)
	}
	v.StepSeconds(20)

	res := AnalyzeAED(log)
	if !res.Pass {
		t.Fatalf("AED failed: max divergence %.1f deg, excursion %.2f s",
			res.MaxDivergenceDeg, res.LongestExcursionS)
	}
	if log.Len() == 0 {
		t.Fatal("log empty")
	}
}

func TestMavlinkArmTakeoffLand(t *testing.T) {
	v := prepare(t)
	c := v.Controller

	// GUIDED via DO_SET_MODE.
	replies := c.HandleMessage(&mavlink.CommandLong{Command: mavlink.CmdDoSetMode, Param2: mavlink.ModeGuided})
	checkAck(t, replies, mavlink.CmdDoSetMode, mavlink.ResultAccepted)

	// Arm.
	replies = c.HandleMessage(&mavlink.CommandLong{Command: mavlink.CmdComponentArmDisarm, Param1: 1})
	checkAck(t, replies, mavlink.CmdComponentArmDisarm, mavlink.ResultAccepted)
	if !c.Armed() {
		t.Fatal("not armed")
	}

	// Takeoff to 10 m.
	replies = c.HandleMessage(&mavlink.CommandLong{Command: mavlink.CmdNavTakeoff, Param7: 10})
	checkAck(t, replies, mavlink.CmdNavTakeoff, mavlink.ResultAccepted)
	ok := v.RunUntil(func() bool { return math.Abs(v.Sim.AltitudeAGL()-10) < 0.5 }, 30)
	if !ok {
		t.Fatalf("takeoff failed: %.2f", v.Sim.AltitudeAGL())
	}

	// Position target.
	tgt := geo.OffsetNE(home.LatLon, 20, 0)
	c.HandleMessage(&mavlink.SetPositionTargetGlobalInt{
		LatE7: mavlink.LatLonToE7(tgt.Lat), LonE7: mavlink.LatLonToE7(tgt.Lon), Alt: 10,
	})
	ok = v.RunUntil(func() bool {
		n, _ := v.Sim.NE()
		return n > 18
	}, 40)
	if !ok {
		t.Fatal("position target not honored")
	}

	// Land.
	replies = c.HandleMessage(&mavlink.CommandLong{Command: mavlink.CmdNavLand})
	checkAck(t, replies, mavlink.CmdNavLand, mavlink.ResultAccepted)
	ok = v.RunUntil(func() bool { return v.Sim.OnGround() }, 40)
	if !ok {
		t.Fatal("did not land")
	}
}

func TestMavlinkDeniedCommands(t *testing.T) {
	v := prepare(t)
	c := v.Controller
	// Takeoff while disarmed is denied.
	replies := c.HandleMessage(&mavlink.CommandLong{Command: mavlink.CmdNavTakeoff, Param7: 10})
	checkAck(t, replies, mavlink.CmdNavTakeoff, mavlink.ResultDenied)
	// Unknown command is unsupported.
	replies = c.HandleMessage(&mavlink.CommandLong{Command: 9999})
	checkAck(t, replies, 9999, mavlink.ResultUnsupported)
}

func TestTelemetry(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 10)
	tele := v.Controller.Telemetry()
	if len(tele) != 4 {
		t.Fatalf("telemetry count = %d", len(tele))
	}
	hb := tele[0].(*mavlink.Heartbeat)
	if !hb.Armed() || hb.CustomMode != mavlink.ModeGuided {
		t.Fatalf("heartbeat = %+v", hb)
	}
	gp := tele[2].(*mavlink.GlobalPositionInt)
	if alt := float64(gp.RelativeAltMM) / 1000; math.Abs(alt-10) > 1 {
		t.Fatalf("telemetry altitude = %.2f", alt)
	}
	ss := tele[3].(*mavlink.SysStatus)
	if ss.BatteryRemaining < 50 || ss.VoltageBatteryMV < 9000 {
		t.Fatalf("sysstatus = %+v", ss)
	}
}

func TestConditionYawAndChangeSpeed(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 10)
	c := v.Controller
	replies := c.HandleMessage(&mavlink.CommandLong{Command: mavlink.CmdConditionYaw, Param1: 90})
	checkAck(t, replies, mavlink.CmdConditionYaw, mavlink.ResultAccepted)
	v.StepSeconds(6)
	_, _, yaw := v.Sim.Attitude()
	if math.Abs(yaw-math.Pi/2) > 0.2 {
		t.Fatalf("yaw = %.2f rad, want ~1.57", yaw)
	}
	replies = c.HandleMessage(&mavlink.CommandLong{Command: mavlink.CmdDoChangeSpeed, Param2: 3})
	checkAck(t, replies, mavlink.CmdDoChangeSpeed, mavlink.ResultAccepted)
}

func checkAck(t *testing.T, replies []mavlink.Message, cmd uint16, want uint8) {
	t.Helper()
	if len(replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(replies))
	}
	ack, ok := replies[0].(*mavlink.CommandAck)
	if !ok {
		t.Fatalf("reply type %T", replies[0])
	}
	if ack.Command != cmd || ack.Result != want {
		t.Fatalf("ack = %+v, want cmd %d result %d", ack, cmd, want)
	}
}

func TestMissionUploadProtocol(t *testing.T) {
	v := prepare(t)
	takeoffTo(t, v, 15)
	c := v.Controller

	items := [][2]float64{{30, 0}, {30, 30}, {0, 30}}
	replies := c.HandleMessage(&mavlink.MissionCount{Count: uint16(len(items))})
	req, ok := replies[0].(*mavlink.MissionRequestInt)
	if !ok || req.Seq != 0 {
		t.Fatalf("reply = %v", replies)
	}
	for i, ne := range items {
		ll := geo.OffsetNE(home.LatLon, ne[0], ne[1])
		replies = c.HandleMessage(&mavlink.MissionItemInt{
			Seq: uint16(i), Command: mavlink.CmdNavWaypoint,
			LatE7: mavlink.LatLonToE7(ll.Lat), LonE7: mavlink.LatLonToE7(ll.Lon), Alt: 15,
		})
		if i < len(items)-1 {
			req, ok := replies[0].(*mavlink.MissionRequestInt)
			if !ok || int(req.Seq) != i+1 {
				t.Fatalf("item %d reply = %v", i, replies)
			}
		}
	}
	ack, ok := replies[0].(*mavlink.MissionAck)
	if !ok || ack.Type != mavlink.MissionAccepted {
		t.Fatalf("final reply = %v", replies)
	}

	// Fly the mission.
	if err := c.SetModeNum(mavlink.ModeAuto); err != nil {
		t.Fatal(err)
	}
	last := geo.Position{LatLon: geo.OffsetNE(home.LatLon, 0, 30), Alt: 15}
	ok2 := v.RunUntil(func() bool {
		return c.MissionIndex() == 2 && geo.Distance3D(v.Sim.Position(), last) < 2
	}, 120)
	if !ok2 {
		t.Fatalf("mission incomplete: idx %d", c.MissionIndex())
	}
}

func TestMissionUploadErrors(t *testing.T) {
	v := prepare(t)
	c := v.Controller
	// Item without an open transaction.
	replies := c.HandleMessage(&mavlink.MissionItemInt{Seq: 0, Command: mavlink.CmdNavWaypoint})
	if ack := replies[0].(*mavlink.MissionAck); ack.Type != mavlink.MissionError {
		t.Fatalf("ack = %d", ack.Type)
	}
	// Zero and oversized counts.
	for _, n := range []uint16{0, 4096} {
		replies = c.HandleMessage(&mavlink.MissionCount{Count: n})
		if ack := replies[0].(*mavlink.MissionAck); ack.Type != mavlink.MissionInvalidParam {
			t.Fatalf("count %d ack = %d", n, ack.Type)
		}
	}
	// Out-of-order sequence aborts the transaction.
	c.HandleMessage(&mavlink.MissionCount{Count: 2})
	replies = c.HandleMessage(&mavlink.MissionItemInt{Seq: 1, Command: mavlink.CmdNavWaypoint})
	if ack := replies[0].(*mavlink.MissionAck); ack.Type != mavlink.MissionInvalidSeq {
		t.Fatalf("ack = %d", ack.Type)
	}
	// Unsupported command type.
	c.HandleMessage(&mavlink.MissionCount{Count: 1})
	replies = c.HandleMessage(&mavlink.MissionItemInt{Seq: 0, Command: mavlink.CmdNavTakeoff})
	if ack := replies[0].(*mavlink.MissionAck); ack.Type != mavlink.MissionUnsupported {
		t.Fatalf("ack = %d", ack.Type)
	}
	// Clear-all wipes any loaded mission.
	c.SetMission([]geo.Position{{LatLon: home.LatLon, Alt: 10}})
	replies = c.HandleMessage(&mavlink.MissionClearAll{})
	if ack := replies[0].(*mavlink.MissionAck); ack.Type != mavlink.MissionAccepted {
		t.Fatalf("clear ack = %d", ack.Type)
	}
	if err := c.SetModeNum(mavlink.ModeAuto); err == nil {
		t.Fatal("AUTO with cleared mission accepted")
	}
}

func TestParamProtocol(t *testing.T) {
	v := prepare(t)
	c := v.Controller

	// Full table.
	replies := c.HandleMessage(&mavlink.ParamRequestList{})
	if len(replies) != 6 {
		t.Fatalf("param count = %d", len(replies))
	}
	byName := map[string]float32{}
	for _, m := range replies {
		pv := m.(*mavlink.ParamValue)
		byName[pv.ParamID] = pv.Value
	}
	if byName[ParamWPNavSpeed] != 800 { // 8 m/s default in cm/s
		t.Fatalf("WPNAV_SPEED = %g", byName[ParamWPNavSpeed])
	}
	if byName[ParamRTLAlt] != 1500 {
		t.Fatalf("RTL_ALT = %g", byName[ParamRTLAlt])
	}

	// Single read.
	replies = c.HandleMessage(&mavlink.ParamRequestRead{ParamID: ParamAngleMax})
	if len(replies) != 1 {
		t.Fatalf("read replies = %v", replies)
	}
	angle := replies[0].(*mavlink.ParamValue).Value
	if angle < 1900 || angle > 2100 { // 0.35 rad ~ 2005 cdeg
		t.Fatalf("ANGLE_MAX = %g", angle)
	}
	// Unknown parameter: silence.
	if replies = c.HandleMessage(&mavlink.ParamRequestRead{ParamID: "NOPE"}); len(replies) != 0 {
		t.Fatalf("unknown read = %v", replies)
	}

	// Set within bounds: echoed.
	replies = c.HandleMessage(&mavlink.ParamSet{ParamID: ParamWPNavSpeed, Value: 500})
	if got := replies[0].(*mavlink.ParamValue).Value; got != 500 {
		t.Fatalf("set echo = %g", got)
	}
	// Set beyond the hard bound: clamped.
	replies = c.HandleMessage(&mavlink.ParamSet{ParamID: ParamWPNavSpeed, Value: 99999})
	if got := replies[0].(*mavlink.ParamValue).Value; got != 1200 {
		t.Fatalf("clamped echo = %g, want 1200 (12 m/s)", got)
	}
}

func TestParamSetAffectsFlight(t *testing.T) {
	v := prepare(t)
	c := v.Controller
	c.HandleMessage(&mavlink.ParamSet{ParamID: ParamWPNavSpeed, Value: 200}) // 2 m/s
	takeoffTo(t, v, 15)
	if err := c.GotoPosition(geo.Position{LatLon: geo.OffsetNE(home.LatLon, 120, 0), Alt: 15}, 0); err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for i := 0; i < 15*FastLoopHz; i++ {
		v.Sim.Step(FastLoopDT)
		c.Step(FastLoopDT)
		vn, ve, _ := v.Sim.VelocityNED()
		if sp := math.Hypot(vn, ve); sp > peak {
			peak = sp
		}
	}
	if peak > 3.0 {
		t.Fatalf("peak %.2f m/s with WPNAV_SPEED=200", peak)
	}
	// RTL altitude parameter is honored.
	c.HandleMessage(&mavlink.ParamSet{ParamID: ParamRTLAlt, Value: 3000}) // 30 m
	if err := c.SetModeNum(mavlink.ModeRTL); err != nil {
		t.Fatal(err)
	}
	climbed := v.RunUntil(func() bool { return v.Sim.AltitudeAGL() > 28 }, 60)
	if !climbed {
		t.Fatalf("RTL did not climb to RTL_ALT: %.1f m", v.Sim.AltitudeAGL())
	}
}
