// Allocation budget for the 400 Hz fast loop. One Controller.Step — the
// sensor reads, estimator, control math, and motor write — must not
// allocate: a per-step allocation at fleet scale turns into GC pressure
// that shows up as missed control deadlines, and androne-vet's hotpath
// analyzer enforces the same contract statically. This test pins the
// budget at zero so the two checks vouch for each other.

package flight

import (
	"testing"

	"androne/internal/geo"
	"androne/internal/mavlink"
)

// TestStepZeroAlloc pins one fast-loop step (armed, guided, mid-flight, so
// the full estimator and position controller run) at 0 allocs/op.
func TestStepZeroAlloc(t *testing.T) {
	home := geo.Position{LatLon: geo.LatLon{Lat: 47.397742, Lon: 8.545594}, Alt: 488}
	v := NewVehicle(home, "alloc-test")
	v.StepSeconds(0.5) // settle the estimator
	c := v.Controller
	if err := c.SetModeNum(mavlink.ModeGuided); err != nil {
		t.Fatal(err)
	}
	if err := c.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := c.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	v.StepSeconds(2) // climb into a working flight state

	allocs := testing.AllocsPerRun(1000, func() {
		v.Sim.Step(FastLoopDT)
		c.Step(FastLoopDT)
	})
	if allocs != 0 {
		t.Fatalf("fast-loop step allocated %.1f/op, want 0", allocs)
	}
}
