package bench

import (
	"androne/internal/core"
	"androne/internal/geo"
)

// benchHome is the standard experiment site (the paper's Figure 2 area).
var benchHome = geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0}

// benchDefinition builds a minimal valid virtual drone definition for
// capacity and flight experiments.
func benchDefinition(name string) *core.Definition {
	return &core.Definition{
		Name:           name,
		Owner:          "bench",
		MaxDuration:    120,
		EnergyAllotted: 20000,
		WaypointDevices: []string{
			"camera", "flight-control",
		},
		Waypoints: []geo.Waypoint{{
			Position:  geo.Position{LatLon: geo.OffsetNE(benchHome.LatLon, 60, 0), Alt: 15},
			MaxRadius: 40,
		}},
	}
}
