package bench

import (
	"hash/fnv"

	"androne/internal/flight"
	"androne/internal/mavlink"
	"androne/internal/rtos"
)

// JitterResult couples Figure 11's scheduling latencies back into flight
// stability: a hover where fast-loop cycles whose wakeup latency exceeded
// the 2,500 µs period are skipped (the loop overran), then analyzed with
// the AED criterion — the mechanism behind §6.2's claim that "occasionally
// missing ArduPilot's fast loop deadline will not cause significant
// stability issues".
type JitterResult struct {
	Scenario    rtos.Scenario
	Cycles      int
	MissedLoops int
	AED         flight.AEDResult
}

// HoverUnderSchedulingLatency hovers for the given sim seconds while the
// controller's wakeups experience the scenario's latency distribution.
func HoverUnderSchedulingLatency(sc rtos.Scenario, seconds float64, seed string) (JitterResult, error) {
	sampler := rtos.NewSampler(sc, seed)
	return hoverWithMisses(seconds, seed, func() bool {
		return sampler.Next() > rtos.ArduPilotDeadlineUs
	})
}

// HoverWithLoopMissProb hovers while each control cycle is skipped with the
// given probability — the synthetic boundary case showing when loop misses
// do destabilize the vehicle.
func HoverWithLoopMissProb(missProb, seconds float64, seed string) (JitterResult, error) {
	r := newXorshift(seed)
	return hoverWithMisses(seconds, seed, func() bool {
		return r.uniform() < missProb
	})
}

func hoverWithMisses(seconds float64, seed string, miss func() bool) (JitterResult, error) {
	log := flight.NewLog()
	v := flight.NewVehicle(benchHome, "jitter/"+seed, flight.WithLog(log))
	// Gusty wind makes the hover demand active control, so missed control
	// cycles have a consequence to measure.
	v.Sim.SetWind(3, -2, 1.2)
	v.StepSeconds(0.1)
	c := v.Controller
	if err := c.SetModeNum(mavlink.ModeGuided); err != nil {
		return JitterResult{}, err
	}
	if err := c.Arm(); err != nil {
		return JitterResult{}, err
	}
	if err := c.Takeoff(12); err != nil {
		return JitterResult{}, err
	}
	v.RunUntil(func() bool { return v.Sim.AltitudeAGL() > 11.5 }, 30)

	res := JitterResult{}
	steps := int(seconds * flight.FastLoopHz)
	for i := 0; i < steps; i++ {
		v.Sim.Step(flight.FastLoopDT)
		res.Cycles++
		if miss() {
			// The controller overran this period: sensors age, motors hold
			// their last commands.
			res.MissedLoops++
			continue
		}
		c.Step(flight.FastLoopDT)
		r, p, y := v.Sim.Attitude()
		c.RecordTruth(r, p, y)
	}
	res.AED = flight.AnalyzeAED(log)
	return res, nil
}

// xorshift is a tiny local uniform source (bench-only).
type xorshift struct{ state uint64 }

func newXorshift(seed string) *xorshift {
	h := fnv.New64a()
	h.Write([]byte(seed))
	s := h.Sum64()
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &xorshift{state: s}
}

func (x *xorshift) uniform() float64 {
	x.state ^= x.state << 13
	x.state ^= x.state >> 7
	x.state ^= x.state << 17
	return (float64(x.state>>11) + 0.5) / (1 << 53)
}
