// Package bench implements the workloads and experiment harnesses behind
// the paper's evaluation (§6): PassMark-class CPU/disk/memory micro
// workloads, the contention model that regenerates Figure 10 (runtime
// overhead vs number of virtual drones and kernel configuration), the
// memory usage sweep of Figure 12 (measured against the real container
// runtime), the power sweep of Figure 13, the cyclictest scenarios of
// Figure 11, the §6.5 network latency experiment, and the §6.6
// multi-waypoint flight.
package bench

import (
	"fmt"

	"androne/internal/container"
	"androne/internal/core"
	"androne/internal/devcon"
	"androne/internal/energy"
	"androne/internal/netem"
	"androne/internal/rtos"
)

// --------------------------------------------------------------------------
// PassMark-class workloads (real code, used by the testing.B benches)

// CPUWorkload performs integer and floating point work akin to PassMark's
// CPU test, returning a checksum so the compiler cannot elide it.
func CPUWorkload(iterations int) uint64 {
	var sum uint64
	f := 1.0001
	for i := 0; i < iterations; i++ {
		// Integer mix.
		x := uint64(i)*2654435761 + 0x9E3779B9
		x ^= x >> 16
		sum += x
		// Floating point mix.
		f = f*1.0000001 + float64(i%7)*1e-9
	}
	return sum + uint64(f)
}

// DiskWorkload exercises the container filesystem: it writes, reads back,
// and deletes files through a container's copy-on-write layer, the way the
// PassMark disk test hits the SD card through Docker's storage driver.
// Returns total bytes moved.
func DiskWorkload(c *container.Container, files, sizeBytes int) (int, error) {
	buf := make([]byte, sizeBytes)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	var moved int
	for i := 0; i < files; i++ {
		path := fmt.Sprintf("/data/bench/file-%d", i)
		c.WriteFile(path, buf)
		moved += sizeBytes
		got, err := c.ReadFile(path)
		if err != nil {
			return moved, err
		}
		moved += len(got)
		if err := c.RemoveFile(path); err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// MemoryWorkload performs large sequential copies akin to PassMark's memory
// test, returning a checksum.
func MemoryWorkload(bytes int) byte {
	src := make([]byte, bytes)
	dst := make([]byte, bytes)
	for i := range src {
		src[i] = byte(i)
	}
	copy(dst, src)
	var sum byte
	for _, b := range dst {
		sum ^= b
	}
	return sum
}

// --------------------------------------------------------------------------
// Figure 10: runtime overhead

// OverheadResult is one Figure 10 group: normalized slowdown vs stock
// Android Things running a single PassMark instance (1.0 = stock; higher is
// slower).
type OverheadResult struct {
	Drones int
	Kernel rtos.Kernel
	CPU    float64
	Disk   float64
	Memory float64
}

// Contention model constants, calibrated to the prototype: <=1.5% single
// virtual drone overhead; roughly linear CPU scaling; disk 2x / 2.2x and
// memory 1.8x / 2.3x at three drones for PREEMPT / PREEMPT_RT.
const (
	containerOverhead  = 0.013 // virtualization cost for a single instance
	diskInterference   = 0.50  // added slowdown per extra drone (PREEMPT)
	diskInterferenceRT = 0.60
	memInterference    = 0.40
	memInterferenceRT  = 0.65
	rtSchedTax         = 0.030 // PREEMPT_RT per-extra-drone CPU cost
)

// RuntimeOverhead evaluates the contention model for a configuration. The
// mechanism: N simultaneous PassMark instances share the four cores
// (CPU-bound work divides evenly, so slowdown is linear in N, plus the
// container virtualization overhead); disk and memory are bandwidth-bound
// rather than core-bound, so their interference grows more slowly; the
// fully preemptible kernel pays extra scheduling cost as the task count
// grows.
func RuntimeOverhead(drones int, kernel rtos.Kernel) OverheadResult {
	if drones < 1 {
		drones = 1
	}
	n := float64(drones)
	cpu := n * (1 + containerOverhead)
	disk := 1 + diskInterference*(n-1) + containerOverhead
	mem := 1 + memInterference*(n-1) + containerOverhead
	if kernel == rtos.PreemptRT {
		cpu *= 1 + rtSchedTax*(n-1)
		disk = 1 + diskInterferenceRT*(n-1) + containerOverhead
		mem = 1 + memInterferenceRT*(n-1) + containerOverhead
	}
	return OverheadResult{Drones: drones, Kernel: kernel, CPU: cpu, Disk: disk, Memory: mem}
}

// Figure10 returns all six Figure 10 groups (1-3 drones x 2 kernels).
func Figure10() []OverheadResult {
	var out []OverheadResult
	for _, k := range []rtos.Kernel{rtos.Preempt, rtos.PreemptRT} {
		for n := 1; n <= 3; n++ {
			out = append(out, RuntimeOverhead(n, k))
		}
	}
	return out
}

// --------------------------------------------------------------------------
// Figure 11: cyclictest

// Figure11 runs cyclictest for all six scenarios.
func Figure11(loops int, seed string) map[rtos.Scenario]*rtos.Histogram {
	out := make(map[rtos.Scenario]*rtos.Histogram)
	for _, k := range []rtos.Kernel{rtos.Preempt, rtos.PreemptRT} {
		for _, w := range []rtos.Workload{rtos.Idle, rtos.PassMark, rtos.Stress} {
			sc := rtos.Scenario{Kernel: k, Load: w}
			out[sc] = rtos.RunCyclictest(sc, loops, seed)
		}
	}
	return out
}

// --------------------------------------------------------------------------
// Figure 12: memory usage

// MemoryRow is one Figure 12 bar.
type MemoryRow struct {
	Config string
	UsedMB int
}

// Figure12 measures memory usage against the real container runtime: base
// system, device+flight containers, then one to three virtual drones. A
// fourth virtual drone fails to start.
func Figure12() ([]MemoryRow, error) {
	rows := []MemoryRow{{Config: "Base", UsedMB: core.MemHostVDCMB}}

	d, err := core.NewDrone(benchHome, "fig12")
	if err != nil {
		return nil, err
	}
	rows = append(rows, MemoryRow{Config: "Dev+Flight Con", UsedMB: core.MemHostVDCMB + d.Runtime.MemoryUsedMB()})

	for i := 1; i <= 3; i++ {
		def := benchDefinition(fmt.Sprintf("vd%d", i))
		if _, err := d.VDC.Create(def); err != nil {
			return nil, fmt.Errorf("bench: vdrone %d: %w", i, err)
		}
		rows = append(rows, MemoryRow{
			Config: fmt.Sprintf("%d VDrone", i),
			UsedMB: core.MemHostVDCMB + d.Runtime.MemoryUsedMB(),
		})
	}
	return rows, nil
}

// FourthDroneFails verifies the §6.3 boundary: with three virtual drones
// running, a fourth cannot start but does not interfere.
func FourthDroneFails() (bool, error) {
	d, err := core.NewDrone(benchHome, "fig12-4th")
	if err != nil {
		return false, err
	}
	for i := 1; i <= 3; i++ {
		if _, err := d.VDC.Create(benchDefinition(fmt.Sprintf("vd%d", i))); err != nil {
			return false, err
		}
	}
	_, err = d.VDC.Create(benchDefinition("vd4"))
	stillRunning := len(d.Runtime.Running()) == 5 // devcon, flightcon, 3 drones
	return err != nil && stillRunning, nil
}

// --------------------------------------------------------------------------
// Figure 13: power consumption

// PowerRow is one Figure 13 bar.
type PowerRow struct {
	Config     string
	PowerW     float64
	Normalized float64 // vs stock Android Things idle
}

// Figure13 evaluates the SBC power model for the §6.4 configurations.
func Figure13() []PowerRow {
	stock := energy.StockIdleW()
	configs := []struct {
		name string
		cfg  energy.SBCConfig
	}{
		{"Base", energy.SBCConfig{}},
		{"Dev+Flight Con", energy.SBCConfig{DevFlightContainers: true}},
		{"1 VDrone", energy.SBCConfig{DevFlightContainers: true, VirtualDrones: 1}},
		{"2 VDrone", energy.SBCConfig{DevFlightContainers: true, VirtualDrones: 2}},
		{"3 VDrone", energy.SBCConfig{DevFlightContainers: true, VirtualDrones: 3}},
	}
	var out []PowerRow
	for _, c := range configs {
		w := energy.SBCPowerW(c.cfg)
		out = append(out, PowerRow{Config: c.name, PowerW: w, Normalized: w / stock})
	}
	return out
}

// StressedPowerW returns the fully stressed draw, identical across
// configurations (§6.4).
func StressedPowerW() float64 {
	return energy.SBCPowerW(energy.SBCConfig{Stressed: true})
}

// --------------------------------------------------------------------------
// Table 1

// Table1 re-exports the device container's service-device mapping.
func Table1() []struct {
	Service string
	Devices []string
} {
	var out []struct {
		Service string
		Devices []string
	}
	for _, row := range devcon.Table1() {
		var devs []string
		for _, k := range row.Devices {
			devs = append(devs, string(k))
		}
		out = append(out, struct {
			Service string
			Devices []string
		}{row.Service, devs})
	}
	return out
}

// --------------------------------------------------------------------------
// §6.5: network latency

// NetworkResult pairs the cellular measurement with the RF baseline.
type NetworkResult struct {
	Cellular netem.Stats
	RF       netem.Stats
	Wired    netem.Stats
}

// NetworkExperiment replays the §6.5 measurement: n MAVLink commands over
// the cellular link, with RF and wired baselines.
func NetworkExperiment(n int, seed string) NetworkResult {
	return NetworkResult{
		Cellular: netem.NewLink(netem.CellularLTE(), seed).Measure(n),
		RF:       netem.NewLink(netem.RFHobby(), seed).Measure(n),
		Wired:    netem.NewLink(netem.WiredFios(), seed).Measure(n),
	}
}
