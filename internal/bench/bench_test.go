package bench

import (
	"math"
	"testing"

	"androne/internal/container"
	"androne/internal/rtos"
)

func TestCPUWorkloadDeterministic(t *testing.T) {
	a := CPUWorkload(10000)
	b := CPUWorkload(10000)
	if a != b {
		t.Fatal("CPU workload nondeterministic")
	}
	if CPUWorkload(100) == CPUWorkload(200) {
		t.Fatal("workload insensitive to iterations")
	}
}

func TestDiskWorkload(t *testing.T) {
	store := container.NewStore()
	store.AddImage(&container.Image{Name: "img", Layers: []*container.Layer{
		container.NewLayer(map[string][]byte{"/base": []byte("x")}),
	}})
	rt := container.NewRuntime(store, 100)
	c, err := rt.Create("bench", "img", container.Limits{MemoryMB: 10})
	if err != nil {
		t.Fatal(err)
	}
	moved, err := DiskWorkload(c, 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 8*1024*2 {
		t.Fatalf("moved = %d", moved)
	}
	// Files were cleaned up.
	if files := c.ListFiles(); len(files) != 1 {
		t.Fatalf("leftover files: %v", files)
	}
}

func TestMemoryWorkload(t *testing.T) {
	if MemoryWorkload(1<<16) != MemoryWorkload(1<<16) {
		t.Fatal("memory workload nondeterministic")
	}
}

func TestFigure10Shape(t *testing.T) {
	rows := Figure10()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(drones int, k rtos.Kernel) OverheadResult {
		for _, r := range rows {
			if r.Drones == drones && r.Kernel == k {
				return r
			}
		}
		t.Fatalf("missing row %d/%v", drones, k)
		return OverheadResult{}
	}

	// Single virtual drone: at most 1.5% overhead on all metrics.
	for _, k := range []rtos.Kernel{rtos.Preempt, rtos.PreemptRT} {
		r := get(1, k)
		for name, v := range map[string]float64{"cpu": r.CPU, "disk": r.Disk, "mem": r.Memory} {
			if v > 1.015*1.035 { // RT single instance allows the sched tax=0 anyway
				t.Errorf("1 drone %v %s overhead = %.3f, want <= ~1.5%%", k, name, v)
			}
			if v < 1 {
				t.Errorf("%s faster than stock: %.3f", name, v)
			}
		}
	}

	// CPU scales roughly linearly with drones.
	for _, k := range []rtos.Kernel{rtos.Preempt, rtos.PreemptRT} {
		for n := 1; n <= 3; n++ {
			r := get(n, k)
			if math.Abs(r.CPU-float64(n)) > 0.25*float64(n) {
				t.Errorf("%v %d drones CPU = %.2f, want ~%d (linear)", k, n, r.CPU, n)
			}
		}
	}

	// Three drones: disk ~2x / 2.2x, memory ~1.8x / 2.3x.
	p3, rt3 := get(3, rtos.Preempt), get(3, rtos.PreemptRT)
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"PREEMPT disk", p3.Disk, 2.0},
		{"RT disk", rt3.Disk, 2.2},
		{"PREEMPT memory", p3.Memory, 1.8},
		{"RT memory", rt3.Memory, 2.3},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.15 {
			t.Errorf("%s = %.2f, want ~%.1f", c.name, c.got, c.want)
		}
	}
	// The RT kernel performs somewhat worse than PREEMPT with three drones.
	if rt3.CPU <= p3.CPU {
		t.Error("RT CPU not worse than PREEMPT at 3 drones")
	}
	if rt3.Disk <= p3.Disk || rt3.Memory <= p3.Memory {
		t.Error("RT disk/memory not worse than PREEMPT at 3 drones")
	}
	// Degenerate input clamps.
	if r := RuntimeOverhead(0, rtos.Preempt); r.Drones != 1 {
		t.Errorf("clamp failed: %+v", r)
	}
}

func TestFigure11AllScenarios(t *testing.T) {
	hists := Figure11(50000, "t")
	if len(hists) != 6 {
		t.Fatalf("scenarios = %d", len(hists))
	}
	for sc, h := range hists {
		if h.Count() != 50000 {
			t.Fatalf("%v count = %d", sc, h.Count())
		}
		if sc.Kernel == rtos.PreemptRT && h.Exceeds(rtos.ArduPilotDeadlineUs) != 0 {
			t.Errorf("%v exceeded deadline", sc)
		}
	}
}

func TestFigure12Memory(t *testing.T) {
	rows, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	// Paper values: <100, ~250, ~435, ~620, ~805 MB.
	want := []int{100, 250, 435, 620, 805}
	for i, r := range rows {
		if r.UsedMB != want[i] {
			t.Errorf("%s = %d MB, want %d", r.Config, r.UsedMB, want[i])
		}
	}
	// All configurations fit within the 880 MB envelope.
	for _, r := range rows {
		if r.UsedMB > 880 {
			t.Errorf("%s exceeds available memory: %d", r.Config, r.UsedMB)
		}
	}
	ok, err := FourthDroneFails()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("fourth drone did not fail cleanly")
	}
}

func TestFigure13Power(t *testing.T) {
	rows := Figure13()
	if len(rows) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if math.Abs(r.Normalized-1) > 0.03 {
			t.Errorf("%s normalized = %.3f, want within 3%% of stock", r.Config, r.Normalized)
		}
	}
	last := rows[len(rows)-1]
	if last.PowerW < 1.65 || last.PowerW > 1.75 {
		t.Errorf("3 drones idle = %.2f W, want ~1.7", last.PowerW)
	}
	if got := StressedPowerW(); got != 3.4 {
		t.Errorf("stressed power = %g W, want 3.4", got)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	found := map[string]bool{}
	for _, r := range rows {
		found[r.Service] = true
		if len(r.Devices) == 0 {
			t.Errorf("%s has no devices", r.Service)
		}
	}
	for _, svc := range []string{"media.audio_flinger", "media.camera", "location", "sensorservice"} {
		if !found[svc] {
			t.Errorf("missing service %s", svc)
		}
	}
}

func TestNetworkExperiment(t *testing.T) {
	res := NetworkExperiment(150000, "paper")
	if res.Cellular.MeanMS < 65 || res.Cellular.MeanMS > 75 {
		t.Errorf("cellular mean = %.1f", res.Cellular.MeanMS)
	}
	if res.Cellular.MaxMS > 356 {
		t.Errorf("cellular max = %.1f", res.Cellular.MaxMS)
	}
	if res.RF.MeanMS < 8 || res.RF.MeanMS > 85 {
		t.Errorf("RF mean = %.1f", res.RF.MeanMS)
	}
	if res.Wired.MeanMS >= res.Cellular.MeanMS {
		t.Error("wired not faster than cellular")
	}
}

func TestHoverUnderSchedulingLatency(t *testing.T) {
	// PREEMPT under stress misses some loops but the hover stays stable
	// (the paper's §6.2 claim); PREEMPT_RT misses none.
	pre, err := HoverUnderSchedulingLatency(rtos.Scenario{Kernel: rtos.Preempt, Load: rtos.Stress}, 20, "t")
	if err != nil {
		t.Fatal(err)
	}
	if pre.MissedLoops == 0 {
		t.Error("PREEMPT/stress missed no loops; contrast lost")
	}
	if frac := float64(pre.MissedLoops) / float64(pre.Cycles); frac > 0.05 {
		t.Errorf("missed %.1f%% of loops; model too pessimistic", frac*100)
	}
	if !pre.AED.Pass {
		t.Errorf("occasional misses destabilized the hover: %+v", pre.AED)
	}

	rt, err := HoverUnderSchedulingLatency(rtos.Scenario{Kernel: rtos.PreemptRT, Load: rtos.Stress}, 20, "t")
	if err != nil {
		t.Fatal(err)
	}
	if rt.MissedLoops != 0 {
		t.Errorf("RT missed %d loops", rt.MissedLoops)
	}
	if !rt.AED.Pass {
		t.Errorf("RT hover unstable: %+v", rt.AED)
	}
}

func TestHoverMissProbBoundary(t *testing.T) {
	// Rare misses are harmless; losing most cycles is not — the mechanism
	// matters, the simulation is not insensitive to it.
	mild, err := HoverWithLoopMissProb(0.01, 20, "mild")
	if err != nil {
		t.Fatal(err)
	}
	if !mild.AED.Pass {
		t.Errorf("1%% misses destabilized: %+v", mild.AED)
	}
	severe, err := HoverWithLoopMissProb(0.97, 20, "severe")
	if err != nil {
		t.Fatal(err)
	}
	if severe.AED.Pass && severe.AED.MaxDivergenceDeg < 1 {
		t.Errorf("97%% loop loss had no effect: %+v (model insensitive)", severe.AED)
	}
}
