package campaign

import (
	"errors"
	"reflect"
	"testing"

	"androne/internal/geo"
	"androne/internal/planner"
)

var base = geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0}

func testConfig(t *testing.T, n int, seed string) Config {
	t.Helper()
	pcfg := planner.DefaultConfig(base)
	pcfg.FleetSize = 2
	pcfg.Iterations = 2000
	pcfg.Restarts = 2
	pcfg.Seed = seed
	return Config{
		Planner:    pcfg,
		Deliveries: RingDeliveries(n, seed, base),
		Seed:       seed,
	}
}

func TestCampaignPlannedVsDebited(t *testing.T) {
	// The happy path: every planned waypoint is flown and each route's
	// debited energy lands inside the tolerance band around its plan.
	res, err := testConfig(t, 5, "camp-ok").Run()
	if err != nil {
		t.Fatalf("campaign failed (max deviation %.2f): %v", res.MaxDeviationFrac, err)
	}
	if res.WaypointsVisited != res.WaypointsPlanned || res.WaypointsPlanned == 0 {
		t.Fatalf("visited %d of %d planned waypoints", res.WaypointsVisited, res.WaypointsPlanned)
	}
	if res.Replans != 0 {
		t.Fatalf("unexpected replans: %d", res.Replans)
	}
	for _, fr := range res.Flights {
		if fr.ActualJ <= 0 || fr.PlannedJ <= 0 {
			t.Fatalf("flight missing energy accounting: %+v", fr)
		}
	}
	t.Logf("%d flights, max deviation %.1f%%", len(res.Flights), res.MaxDeviationFrac*100)
}

func TestCampaignFaultTriggersReplan(t *testing.T) {
	// Losing a drone mid-route must re-plan the unflown remainder onto the
	// survivors and still cover every planned waypoint.
	cfg := testConfig(t, 5, "camp-fault")
	cfg.Fault = &Fault{Route: 0, AfterStops: 1}
	res, err := cfg.Run()
	if err != nil {
		t.Fatalf("faulted campaign failed: %v", err)
	}
	if res.Replans != 1 {
		t.Fatalf("replans = %d, want 1", res.Replans)
	}
	if res.WaypointsVisited != res.WaypointsPlanned {
		t.Fatalf("visited %d of %d planned waypoints after replan",
			res.WaypointsVisited, res.WaypointsPlanned)
	}
	var aborted, replanned int
	for _, fr := range res.Flights {
		if fr.Aborted {
			aborted++
		}
		if fr.Replanned {
			replanned++
		}
	}
	if aborted != 1 || replanned == 0 {
		t.Fatalf("aborted=%d replanned=%d, want exactly one abort and >=1 replanned flight", aborted, replanned)
	}
}

func TestCampaignSabotageTripsChecker(t *testing.T) {
	// The negative control: a planner fed a broken energy model must be
	// caught by the planned-vs-debited invariant, not sail through.
	cfg := testConfig(t, 4, "camp-sab")
	cfg.Sabotage = true
	res, err := cfg.Run()
	if !errors.Is(err, ErrEnergyCheck) {
		t.Fatalf("sabotaged campaign returned %v (max deviation %.2f), want ErrEnergyCheck",
			err, res.MaxDeviationFrac)
	}
}

func TestRingDeliveriesDeterministic(t *testing.T) {
	a := RingDeliveries(6, "ring", base)
	b := RingDeliveries(6, "ring", base)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different campaigns")
	}
	c := RingDeliveries(6, "ring2", base)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical campaigns")
	}
}
