// Package campaign closes the planner-to-fleet loop: a delivery campaign is
// planned by internal/planner, every route is flown end-to-end on its
// assigned physical drone via core.ExecuteRoute (takeoff, per-stop virtual
// drone dwells with allotment metering, RTL, VDR checkpointing), and an
// invariant checker ties each route's planned energy budget to the energy
// the flight actually debited from the simulated battery. When a drone
// faults mid-route, the unflown remainder — the truncated route's tail plus
// every later route assigned to the lost drone — is re-planned onto the
// surviving fleet through planner.PlanStops, with partially-complete
// virtual drones restored from the VDR on their new carrier (the paper's
// migration path).
package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"androne/internal/android"
	"androne/internal/core"
	"androne/internal/geo"
	"androne/internal/planner"
	"androne/internal/sdk"
)

// Delivery is one order in a campaign: a set of waypoints and the per-stop
// operating time. Planner tasks and virtual drone definitions are both
// derived from it, so the planned dwell budget and the flown dwell agree by
// construction.
type Delivery struct {
	Name      string
	Waypoints []geo.Waypoint
	DwellS    float64 // operating time per waypoint
}

// Fault injects a mid-campaign drone loss: the flight at queue position
// Route is aborted after AfterStops stops (the drone returns to base, its
// virtual drones checkpoint to the VDR, and it is pulled from service).
type Fault struct {
	Route      int
	AfterStops int
}

// Config parameterizes a campaign run.
type Config struct {
	// Planner configures the flight planner; FleetSize is also the number
	// of physical drones booted.
	Planner    planner.Config
	Deliveries []Delivery
	// Seed derives per-drone simulation seeds ("<Seed>/pd-%02d").
	Seed string
	// ToleranceFrac bounds |actual - planned| flight energy per completed
	// route, as a fraction of planned (0 = default 0.35; the slack absorbs
	// what the cruise-leg plan does not model: takeoff and landing climbs,
	// acceleration, and dwell-position corrections).
	ToleranceFrac float64
	// Fault, when set, injects a drone loss and exercises re-planning.
	Fault *Fault
	// Sabotage feeds the planner a broken energy model (lossless
	// powertrain, no parasitics, optimistic dwell budgets). The flights
	// still burn real energy, so the planned-vs-debited checker must trip
	// — the campaign's own negative control.
	Sabotage bool
}

// FlightReport is one flown route's outcome.
type FlightReport struct {
	Drone         int     `json:"drone"`
	Stops         int     `json:"stops"`
	PlannedJ      float64 `json:"planned-j"`
	ActualJ       float64 `json:"actual-j"`
	DeviationFrac float64 `json:"deviation-frac"`
	Aborted       bool    `json:"aborted,omitempty"`
	Replanned     bool    `json:"replanned,omitempty"`
}

// Result summarizes the campaign.
type Result struct {
	Flights          []FlightReport `json:"flights"`
	Replans          int            `json:"replans"`
	WaypointsPlanned int            `json:"waypoints-planned"`
	WaypointsVisited int            `json:"waypoints-visited"`
	MaxDeviationFrac float64        `json:"max-deviation-frac"`
}

// ErrEnergyCheck reports a route whose debited energy strayed outside the
// tolerance band around its planned budget.
var ErrEnergyCheck = errors.New("campaign: planned-vs-debited energy check failed")

const dwellAppPkg = "campaign.dwell"

// maxResidentVDs is how many virtual drones fit on one physical drone under
// the container store's memory admission (3 x 185 MB VDs alongside the
// platform's own containers within the 780 MB budget).
const maxResidentVDs = 3

// dwellApp operates at each waypoint for a configured time, then signals
// completion; it is the campaign's stand-in for a tenant app.
type dwellApp struct {
	ctx     *core.AppContext
	dwellS  float64
	active  bool
	elapsed float64
	done    bool
}

func newDwellFactory() core.AppFactory {
	return func(ctx *core.AppContext) android.Lifecycle {
		a := &dwellApp{ctx: ctx, dwellS: 10}
		var args struct {
			DwellS float64 `json:"dwell-s"`
		}
		if err := json.Unmarshal(ctx.Args, &args); err == nil && args.DwellS > 0 {
			a.dwellS = args.DwellS
		}
		ctx.SDK.RegisterWaypointListener(sdk.ListenerFuncs{
			Active:   func(geo.Waypoint) { a.active, a.elapsed, a.done = true, 0, false },
			Inactive: func(geo.Waypoint) { a.active = false },
		})
		return a
	}
}

func (a *dwellApp) OnCreate(*android.App, []byte)           {}
func (a *dwellApp) OnSaveInstanceState(*android.App) []byte { return nil }
func (a *dwellApp) OnDestroy(*android.App)                  {}

func (a *dwellApp) Tick(dt float64) {
	if !a.active || a.done {
		return
	}
	a.elapsed += dt
	if a.elapsed >= a.dwellS {
		a.done = true
		a.ctx.SDK.WaypointCompleted()
	}
}

// tasksAndDefs derives the planner tasks and virtual drone definitions from
// the deliveries. The planner task carries the expected dwell energy (the
// hover estimate for the requested operating time); the definition's
// allotment gets headroom on top so metering never truncates a dwell the
// plan paid for.
func (cfg *Config) tasksAndDefs() ([]planner.Task, map[string]*core.Definition) {
	model := cfg.Planner.Model
	tasks := make([]planner.Task, 0, len(cfg.Deliveries))
	defs := make(map[string]*core.Definition, len(cfg.Deliveries))
	for _, d := range cfg.Deliveries {
		totalDwellS := d.DwellS * float64(len(d.Waypoints))
		dwellJ := model.HoverEnergyJ(totalDwellS, 0)
		tasks = append(tasks, planner.Task{
			ID: d.Name, Waypoints: d.Waypoints,
			EnergyJ: dwellJ, DurationS: totalDwellS,
		})
		defs[d.Name] = &core.Definition{
			Name: d.Name, Owner: d.Name + "-owner",
			Waypoints:       d.Waypoints,
			MaxDuration:     totalDwellS + 30,
			EnergyAllotted:  dwellJ * 1.25,
			WaypointDevices: []string{"camera", "flight-control"},
			Apps:            []string{dwellAppPkg},
			AppArgs: map[string]json.RawMessage{
				dwellAppPkg: json.RawMessage(fmt.Sprintf(`{"dwell-s": %g}`, d.DwellS)),
			},
		}
	}
	return tasks, defs
}

// Run plans and flies the campaign.
func (cfg Config) Run() (*Result, error) {
	if cfg.ToleranceFrac <= 0 {
		cfg.ToleranceFrac = 0.35
	}
	if cfg.Seed == "" {
		cfg.Seed = "campaign"
	}
	tasks, defs := cfg.tasksAndDefs()

	pcfg := cfg.Planner
	if pcfg.MaxTasksPerRoute <= 0 || pcfg.MaxTasksPerRoute > maxResidentVDs {
		// Container admission caps how many 185 MB virtual drones fit on a
		// physical drone at once; routes must respect it or VD installation
		// fails before takeoff.
		pcfg.MaxTasksPerRoute = maxResidentVDs
	}
	if cfg.Sabotage {
		// A planner fed a broken model: lossless powertrain, no drag or
		// avionics draw, and dwell budgets a third of the hover estimate.
		pcfg.Model.Eta = 1
		pcfg.Model.ParasiticW = 0
		pcfg.Model.DragN = 0
		for i := range tasks {
			tasks[i].EnergyJ /= 3
		}
	}
	plan, err := pcfg.Plan(tasks)
	if err != nil {
		return nil, err
	}

	env := core.NewCloudEnv()
	fleetSize := pcfg.FleetSize
	drones := make([]*core.Drone, fleetSize)
	alive := make([]bool, fleetSize)
	for i := range alive {
		alive[i] = true
	}
	droneFor := func(i int) (*core.Drone, error) {
		if drones[i] == nil {
			d, err := core.NewDrone(pcfg.Base, fmt.Sprintf("%s/pd-%02d", cfg.Seed, i))
			if err != nil {
				return nil, err
			}
			d.VDC.RegisterAppFactory(dwellAppPkg, newDwellFactory())
			drones[i] = d
		}
		return drones[i], nil
	}

	res := &Result{}
	queue := append([]planner.Route(nil), plan.Routes...)
	for _, r := range queue {
		res.WaypointsPlanned += len(r.Stops)
	}

	faultArmed := cfg.Fault != nil
	for qi := 0; qi < len(queue); qi++ {
		route := queue[qi]
		if len(route.Stops) == 0 {
			continue
		}
		d, err := droneFor(route.Drone)
		if err != nil {
			return res, err
		}
		// Install the route's virtual drones: restore from the VDR when
		// they flew before (possibly on a different physical drone),
		// otherwise create them fresh.
		for _, stop := range route.Stops {
			if _, err := d.VDC.Get(stop.Task); err == nil {
				continue
			}
			if entry, err := env.VDR.Load(stop.Task); err == nil && !entry.Completed {
				if _, err := d.VDC.Restore(entry); err != nil {
					return res, fmt.Errorf("campaign: restoring %s: %w", stop.Task, err)
				}
				continue
			}
			def := defs[stop.Task]
			if def == nil {
				return res, fmt.Errorf("campaign: route references unknown delivery %q", stop.Task)
			}
			if _, err := d.VDC.Create(def); err != nil {
				return res, fmt.Errorf("campaign: creating %s: %w", stop.Task, err)
			}
		}

		flown := route
		aborted := false
		if faultArmed && qi == cfg.Fault.Route {
			m := cfg.Fault.AfterStops
			if m > len(route.Stops) {
				m = len(route.Stops)
			}
			flown = planner.Route{Drone: route.Drone, Stops: route.Stops[:m]}
			aborted = true
			faultArmed = false
		}
		report, err := d.ExecuteRoute(flown, env)
		if err != nil {
			return res, fmt.Errorf("campaign: route %d: %w", qi, err)
		}
		fr := FlightReport{
			Drone: route.Drone, Stops: len(flown.Stops),
			ActualJ: report.FlightEnergyJ,
			Aborted: aborted, Replanned: qi >= len(plan.Routes),
		}
		res.WaypointsVisited += len(flown.Stops)

		if aborted {
			// The drone is lost to the campaign; gather everything it left
			// unflown and re-plan it onto the surviving fleet.
			alive[route.Drone] = false
			rest := append([]planner.Stop(nil), route.Stops[len(flown.Stops):]...)
			for j := qi + 1; j < len(queue); j++ {
				if queue[j].Drone == route.Drone {
					rest = append(rest, queue[j].Stops...)
					queue[j].Stops = nil
				}
			}
			var aliveIdx []int
			for i, ok := range alive {
				if ok {
					aliveIdx = append(aliveIdx, i)
				}
			}
			if len(rest) > 0 {
				if len(aliveIdx) == 0 {
					return res, fmt.Errorf("campaign: no surviving drones for %d unflown stops", len(rest))
				}
				rcfg := pcfg
				rcfg.FleetSize = len(aliveIdx)
				rcfg.Seed = pcfg.Seed + "/replan"
				rplan, err := rcfg.PlanStops(rest, nil)
				if err != nil {
					return res, fmt.Errorf("campaign: re-planning remainder: %w", err)
				}
				res.Replans++
				for _, nr := range rplan.Routes {
					nr.Drone = aliveIdx[nr.Drone%len(aliveIdx)]
					queue = append(queue, nr)
				}
			}
		} else {
			fr.PlannedJ = route.EnergyJ
			dev := fr.ActualJ - fr.PlannedJ
			if dev < 0 {
				dev = -dev
			}
			fr.DeviationFrac = dev / fr.PlannedJ
			if fr.DeviationFrac > res.MaxDeviationFrac {
				res.MaxDeviationFrac = fr.DeviationFrac
			}
		}
		res.Flights = append(res.Flights, fr)
	}

	if res.WaypointsVisited != res.WaypointsPlanned {
		return res, fmt.Errorf("campaign: flew %d of %d planned waypoints",
			res.WaypointsVisited, res.WaypointsPlanned)
	}
	if res.MaxDeviationFrac > cfg.ToleranceFrac {
		return res, fmt.Errorf("%w: worst route off by %.0f%% of planned (tolerance %.0f%%)",
			ErrEnergyCheck, res.MaxDeviationFrac*100, cfg.ToleranceFrac*100)
	}
	return res, nil
}

// RingDeliveries builds a deterministic n-delivery campaign spread around
// the base: radii 150-450 m, one or two waypoints each, dwells of 15-35 s.
func RingDeliveries(n int, seed string, base geo.Position) []Delivery {
	r := newRNG(seed)
	out := make([]Delivery, 0, n)
	for i := 0; i < n; i++ {
		nw := 1
		if r.uniform() < 0.4 {
			nw = 2
		}
		wps := make([]geo.Waypoint, nw)
		for j := range wps {
			ang := r.uniform() * 2 * math.Pi
			rad := 150 + r.uniform()*300
			wps[j] = geo.Waypoint{
				Position: geo.Position{
					LatLon: geo.OffsetNE(base.LatLon, rad*math.Cos(ang), rad*math.Sin(ang)),
					Alt:    15,
				},
				MaxRadius: 40,
			}
		}
		out = append(out, Delivery{
			Name:      fmt.Sprintf("order-%02d", i),
			Waypoints: wps,
			DwellS:    15 + r.uniform()*20,
		})
	}
	return out
}

// rng is a tiny deterministic generator (xorshift over an FNV-1a seed) so
// campaign instances are reproducible from their seed string.
type rng struct{ state uint64 }

func newRNG(seed string) *rng {
	h := fnv.New64a()
	h.Write([]byte(seed))
	s := h.Sum64()
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{state: s}
}

func (r *rng) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *rng) uniform() float64 { return (float64(r.next()>>11) + 0.5) / (1 << 53) }
