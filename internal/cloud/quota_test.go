package cloud

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestStorageQuota exercises the per-tenant byte quota: writes past the cap
// fail typed, overwrites are delta-charged, and tenants are isolated.
func TestStorageQuota(t *testing.T) {
	s := NewStorageWith(Quotas{MaxStorageBytesPerTenant: 10})
	if err := s.Put("alice", "a.bin", []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alice", "b.bin", []byte("123")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota put: %v", err)
	}
	// The refused write must not be partially applied.
	if _, err := s.Get("alice", "b.bin"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("refused file exists: %v", err)
	}
	if got := s.UsageBytes("alice"); got != 8 {
		t.Fatalf("usage = %d, want 8", got)
	}
	// Overwriting the same path is charged by the delta: shrinking frees.
	if err := s.Put("alice", "a.bin", []byte("1234")); err != nil {
		t.Fatalf("shrinking overwrite: %v", err)
	}
	if got := s.UsageBytes("alice"); got != 4 {
		t.Fatalf("usage after shrink = %d, want 4", got)
	}
	if err := s.Put("alice", "b.bin", []byte("123456")); err != nil {
		t.Fatalf("put inside freed quota: %v", err)
	}
	// Growing past the cap fails even for an existing path.
	if err := s.Put("alice", "a.bin", bytes.Repeat([]byte("x"), 8)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("growing overwrite past quota: %v", err)
	}
	// Bob has his own account.
	if err := s.Put("bob", "b.bin", []byte("0123456789")); err != nil {
		t.Fatalf("bob throttled by alice: %v", err)
	}
	// The unlimited default still works.
	free := NewStorage()
	if err := free.Put("carol", "big.bin", bytes.Repeat([]byte("y"), 1<<16)); err != nil {
		t.Fatal(err)
	}
}

// TestPortalQuotaMapsTo413 drives a tenant over its order quota through
// the HTTP API and expects 413 with the typed error's message, while
// another tenant still orders fine.
func TestPortalQuotaMapsTo413(t *testing.T) {
	orders := NewOrdersWith(Quotas{MaxOrdersPerTenant: 1})
	p := NewPortal(NewAppStore(), NewStorage(), NewVDR(), orders, nil, nil)

	post := func(user, name string) *httptest.ResponseRecorder {
		t.Helper()
		body, _ := json.Marshal(map[string]any{
			"user": user, "name": name, "definition": json.RawMessage(`{"waypoints":[]}`),
		})
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/api/orders", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		p.ServeHTTP(rec, req)
		return rec
	}

	if rec := post("alice", "first"); rec.Code != http.StatusCreated {
		t.Fatalf("first order: %d %s", rec.Code, rec.Body)
	}
	rec := post("alice", "second")
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-quota order: %d %s", rec.Code, rec.Body)
	}
	var errBody map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &errBody); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBody["error"], "quota") {
		t.Fatalf("error body %q does not mention the quota", errBody["error"])
	}
	if rec := post("bob", "only"); rec.Code != http.StatusCreated {
		t.Fatalf("bob throttled by alice's quota: %d %s", rec.Code, rec.Body)
	}
}
