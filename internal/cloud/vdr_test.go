package cloud

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"androne/internal/container"
)

// canonicalCheckpoint builds checkpoint bytes exactly as the container
// runtime emits them, so the layer splitter takes the split path rather
// than the opaque fallback.
func canonicalCheckpoint(t *testing.T, name string, upper map[string][]byte) []byte {
	t.Helper()
	raw, err := json.Marshal(container.Checkpoint{
		Name:      name,
		ImageName: "androne/minimal-android",
		Limits:    container.Limits{MemoryMB: 512, CPUShares: 1024},
		Upper:     upper,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func layerKinds(m Manifest) []string {
	kinds := make([]string, 0, len(m.Layers))
	for _, l := range m.Layers {
		kinds = append(kinds, l.Kind)
	}
	return kinds
}

// TestVDRLayeredRoundTrip saves a canonical checkpoint, checks it splits
// into the expected layers, and requires Load to reassemble the exact
// bytes Save was handed — the property the VDC's splice detection and the
// simharness restore invariants ride on.
func TestVDRLayeredRoundTrip(t *testing.T) {
	v := NewVDR()
	cp := canonicalCheckpoint(t, "survey", map[string][]byte{
		"/data/app/com.androne.photo/code":  []byte("apk"),
		"/data/data/com.androne.photo/shot": []byte("jpeg"),
		FlightProgressPath:                  []byte(`{"waypoint":1}`),
		"/out/photos/wp1.jpg":               []byte("payload"),
	})
	e := VDREntry{
		Name: "survey", Owner: "buildco",
		Definition: []byte(`{"name":"survey"}`),
		Checkpoint: cp,
		SavedAt:    time.Unix(1700000000, 0).UTC(),
	}
	if err := v.Save(e); err != nil {
		t.Fatal(err)
	}

	m, err := v.Manifest("survey")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{LayerDefinition, LayerBase, LayerAppSet, LayerState}
	if got := layerKinds(m); len(got) != len(want) {
		t.Fatalf("layers = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("layers = %v, want %v", got, want)
			}
		}
	}
	if m.ContainerName != "survey" {
		t.Fatalf("manifest container name %q", m.ContainerName)
	}

	got, err := v.Load("survey")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Checkpoint, cp) {
		t.Fatal("checkpoint did not round-trip bit-identical through the layers")
	}
	if !bytes.Equal(got.Definition, e.Definition) || got.Owner != "buildco" || !got.SavedAt.Equal(e.SavedAt) {
		t.Fatalf("entry fields lost: %+v", got)
	}

	// The split rule: app files live in the appset layer, the per-flight
	// progress file and outputs in the state layer.
	appset, state := splitUpper(map[string][]byte{
		"/data/app/x":        []byte("a"),
		FlightProgressPath:   []byte("p"),
		"/out/result":        []byte("o"),
		"/data/data/x/prefs": []byte("s"),
	})
	if len(appset) != 2 || len(state) != 2 {
		t.Fatalf("split: appset %v state %v", appset, state)
	}
	if _, inApp := appset[FlightProgressPath]; inApp {
		t.Fatal("progress file leaked into the stable appset layer")
	}
}

// TestVDRLayerDedupAcrossChurn pins why the format exists: across a
// save/restore churn only the state layer changes, and across tenants on
// the same image the base layer is shared — so physical bytes stay near
// one generation while logical bytes grow per save.
func TestVDRLayerDedupAcrossChurn(t *testing.T) {
	store := NewBlobStore()
	v := NewVDRWith(store, DefaultQuotas())
	upper := func(progress string) map[string][]byte {
		return map[string][]byte{
			"/data/app/com.androne.photo/code": bytes.Repeat([]byte("apk"), 1000),
			FlightProgressPath:                 []byte(progress),
		}
	}
	save := func(name, owner, progress string) {
		t.Helper()
		err := v.Save(VDREntry{
			Name: name, Owner: owner,
			Definition: []byte(`{"name":"` + name + `"}`),
			Checkpoint: canonicalCheckpoint(t, name, upper(progress)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	save("drone-a", "alice", `{"wp":1}`)
	base := store.Stats()

	// Churn: same drone, new progress. Definition, base, and appset layers
	// must all dedup; only the small state layer is new.
	save("drone-a", "alice", `{"wp":2}`)
	st := store.Stats()
	if st.DedupHits < base.DedupHits+3 {
		t.Fatalf("churn save deduped %d layers, want >= 3 (stats %+v)", st.DedupHits-base.DedupHits, st)
	}
	newPhysical := st.PhysicalBytes - base.PhysicalBytes
	if newPhysical >= 1000 {
		t.Fatalf("churn save stored %d new bytes; the 3 KB appset should have deduped", newPhysical)
	}

	// A second tenant's drone on the same image shares the base layer.
	before := store.Stats().DedupHits
	save("drone-b", "bob", `{"wp":1}`)
	if store.Stats().DedupHits <= before {
		t.Fatal("cross-tenant save shared no layers (base should dedup)")
	}

	// An identical re-save is a 100% dedup hit: zero new physical bytes.
	phys := store.Stats().PhysicalBytes
	save("drone-a", "alice", `{"wp":2}`)
	if got := store.Stats().PhysicalBytes; got != phys {
		t.Fatalf("identical re-save stored %d new bytes", got-phys)
	}
	if ratio := store.Stats().DedupRatio(); ratio <= 1.5 {
		t.Fatalf("dedup ratio %.2f after churn, want > 1.5", ratio)
	}
}

// TestVDRLayerQuota exercises the per-tenant layer quota: saves past the
// cap fail typed, replacement of the same entry needs no headroom, and
// other tenants are unaffected.
func TestVDRLayerQuota(t *testing.T) {
	v := NewVDRWith(NewBlobStore(), Quotas{MaxVDRLayersPerTenant: 2})
	one := VDREntry{Name: "a1", Owner: "alice", Definition: []byte(`{"a":1}`)}
	if err := v.Save(one); err != nil {
		t.Fatal(err)
	}
	if err := v.Save(VDREntry{Name: "a2", Owner: "alice", Definition: []byte(`{"a":2}`)}); err != nil {
		t.Fatal(err)
	}
	err := v.Save(VDREntry{Name: "a3", Owner: "alice", Definition: []byte(`{"a":3}`)})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third layer for alice: %v", err)
	}
	// Steady-state churn: replacing a1 swaps layers 1-for-1 and fits.
	one.Completed = true
	if err := v.Save(one); err != nil {
		t.Fatalf("replacement save should fit inside the quota: %v", err)
	}
	if err := v.Save(VDREntry{Name: "b1", Owner: "bob", Definition: []byte(`{"b":1}`)}); err != nil {
		t.Fatalf("bob must not be throttled by alice's quota: %v", err)
	}
	if got := v.OwnerLayers("alice"); got != 2 {
		t.Fatalf("alice holds %d layers, want 2", got)
	}
}

// TestVDRCorruptLayerSurfaces corrupts one stored layer and expects Load
// to fail loudly while List degrades to metadata for that entry instead of
// crashing or hiding it.
func TestVDRCorruptLayerSurfaces(t *testing.T) {
	store := NewBlobStore()
	v := NewVDRWith(store, DefaultQuotas())
	cp := canonicalCheckpoint(t, "frail", map[string][]byte{FlightProgressPath: []byte("{}")})
	if err := v.Save(VDREntry{Name: "frail", Owner: "carol", Definition: []byte(`{}`), Checkpoint: cp}); err != nil {
		t.Fatal(err)
	}
	m, err := v.Manifest("frail")
	if err != nil {
		t.Fatal(err)
	}
	var stateDigest string
	for _, l := range m.Layers {
		if l.Kind == LayerState {
			stateDigest = l.Digest
		}
	}
	store.mu.Lock()
	store.blobs[stateDigest].data[0] ^= 0xFF
	store.mu.Unlock()

	if _, err := v.Load("frail"); !errors.Is(err, ErrLayerCorrupt) {
		t.Fatalf("Load of corrupt entry: %v", err)
	}
	entries := v.List()
	if len(entries) != 1 || entries[0].Name != "frail" {
		t.Fatalf("List hid the corrupt entry: %+v", entries)
	}
	if entries[0].Checkpoint != nil || entries[0].Definition != nil {
		t.Fatal("List returned unverified layer bytes for a corrupt entry")
	}
}

// TestVDROpaqueFallback stores a checkpoint that is not canonical
// container JSON and expects a single opaque layer that still round-trips
// exactly — the compatibility guarantee for hand-built entries.
func TestVDROpaqueFallback(t *testing.T) {
	v := NewVDR()
	raw := []byte("not-json-checkpoint-bytes")
	if err := v.Save(VDREntry{Name: "legacy", Owner: "dave", Checkpoint: raw}); err != nil {
		t.Fatal(err)
	}
	m, _ := v.Manifest("legacy")
	if len(m.Layers) != 1 || m.Layers[0].Kind != LayerOpaque {
		t.Fatalf("layers = %v, want one opaque", layerKinds(m))
	}
	got, err := v.Load("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Checkpoint, raw) {
		t.Fatal("opaque checkpoint did not round-trip")
	}
}

// TestVDRDeleteReleasesLayers deletes an entry and checks the quota
// account drains and the layers drop to zero references (into the
// retention pool, where an unrelated future save could still revive them).
func TestVDRDeleteReleasesLayers(t *testing.T) {
	store := NewBlobStore()
	v := NewVDRWith(store, DefaultQuotas())
	if err := v.Save(VDREntry{Name: "gone", Owner: "erin", Definition: []byte(`{"x":1}`)}); err != nil {
		t.Fatal(err)
	}
	m, _ := v.Manifest("gone")
	v.Delete("gone")
	if got := v.OwnerLayers("erin"); got != 0 {
		t.Fatalf("erin still holds %d layers", got)
	}
	if _, err := v.Load("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load after delete: %v", err)
	}
	if _, refs, ok := store.Stat(m.Layers[0].Digest); !ok || refs != 0 {
		t.Fatalf("deleted entry's layer refs = %d, %v; want retained at 0", refs, ok)
	}
	v.Delete("gone") // idempotent
}
