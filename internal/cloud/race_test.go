package cloud

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestOrdersConcurrentAccess hammers the order book from many goroutines.
// Under -race this verifies that Get/List hand out snapshots (readers never
// share memory with writers) and that Update's optimistic commit protocol
// is atomic: every one of the N increments below must land.
func TestOrdersConcurrentAccess(t *testing.T) {
	o := NewOrders()
	ord, err := o.Create("alice", "stress", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := o.Update(ord.ID, func(u *Order) { u.EstimatedCharge++ }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Readers overlap the writers; the race detector checks they never
	// observe shared mutable state.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if got, err := o.Get(ord.ID); err != nil || got.User != "alice" {
					t.Errorf("Get: %v %v", got, err)
					return
				}
				o.List("alice")
				if _, err := o.Create("bob", fmt.Sprintf("b-%d-%d", r, i), json.RawMessage(`{}`)); err != nil {
					t.Errorf("Create: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	got, err := o.Get(ord.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(writers * perWriter); got.EstimatedCharge != want {
		t.Fatalf("EstimatedCharge = %v, want %v (lost updates)", got.EstimatedCharge, want)
	}
}

// TestOrdersSnapshotIsolation checks that mutating a returned order does
// not leak into the store.
func TestOrdersSnapshotIsolation(t *testing.T) {
	o := NewOrders()
	ord, err := o.Create("alice", "iso", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	ord.Status = OrderFlying // caller scribbles on its copy

	got, err := o.Get(ord.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != OrderPending {
		t.Fatalf("store saw caller's scribble: %v", got.Status)
	}
	got.Status = OrderCompleted
	again, _ := o.Get(ord.ID)
	if again.Status != OrderPending {
		t.Fatalf("Get returned shared memory: %v", again.Status)
	}
}
