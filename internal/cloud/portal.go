package cloud

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// DefinitionValidator checks a virtual drone definition; the portal rejects
// orders whose definitions do not validate. Package core supplies the real
// validator, keeping the cloud service decoupled from the definition schema.
type DefinitionValidator func(def []byte) error

// EstimateFunc previews the billing charge and operating window for a
// definition (energy allotment and waypoints).
type EstimateFunc func(def []byte) (charge float64, windowStartS, windowEndS float64, err error)

// Portal is the AnDrone web portal: the HTTP front door for ordering and
// configuring virtual drones, browsing the app store, and retrieving flight
// files from cloud storage.
type Portal struct {
	Apps     *AppStore
	Files    *Storage
	Repo     *VDR
	Orders   *Orders
	Validate DefinitionValidator
	Estimate EstimateFunc

	mux *http.ServeMux
	// batch coalesces concurrent identical listing reads (order and VDR
	// listings), the portal's hottest fan-in endpoints.
	batch batchGroup
}

// NewPortal assembles the portal over the cloud components. validate may be
// nil (all definitions accepted); estimate may be nil (no previews).
func NewPortal(apps *AppStore, files *Storage, repo *VDR, orders *Orders,
	validate DefinitionValidator, estimate EstimateFunc) *Portal {
	p := &Portal{Apps: apps, Files: files, Repo: repo, Orders: orders,
		Validate: validate, Estimate: estimate}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/apps", p.listApps)
	mux.HandleFunc("GET /api/apps/{pkg}", p.getApp)
	mux.HandleFunc("POST /api/apps", p.publishApp)
	mux.HandleFunc("POST /api/orders", p.createOrder)
	mux.HandleFunc("GET /api/orders", p.listOrders)
	mux.HandleFunc("GET /api/orders/{id}", p.getOrder)
	mux.HandleFunc("GET /api/files/{user}", p.listFiles)
	mux.HandleFunc("GET /api/files/{user}/{path...}", p.getFile)
	mux.HandleFunc("GET /api/vdr", p.listVDR)
	p.mux = mux
	return p
}

// ServeHTTP implements http.Handler.
func (p *Portal) ServeHTTP(w http.ResponseWriter, r *http.Request) { p.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrExists):
		status = http.StatusConflict
	case errors.Is(err, ErrQuotaExceeded):
		status = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (p *Portal) listApps(w http.ResponseWriter, r *http.Request) {
	apps := p.Apps.List()
	// Strip APK bytes from listings.
	for i := range apps {
		apps[i].APK = nil
	}
	writeJSON(w, http.StatusOK, apps)
}

func (p *Portal) getApp(w http.ResponseWriter, r *http.Request) {
	app, err := p.Apps.Get(r.PathValue("pkg"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, app)
}

func (p *Portal) publishApp(w http.ResponseWriter, r *http.Request) {
	var app StoreApp
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&app); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := p.Apps.Publish(app); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"package": app.Package})
}

// orderRequest is the POST /api/orders body.
type orderRequest struct {
	User       string          `json:"user"`
	Name       string          `json:"name"`
	Definition json.RawMessage `json:"definition"`
}

func (p *Portal) createOrder(w http.ResponseWriter, r *http.Request) {
	var req orderRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.User == "" || len(req.Definition) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "user and definition required"})
		return
	}
	if p.Validate != nil {
		if err := p.Validate(req.Definition); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
	}
	name := SanitizeName(req.Name)
	if req.Name == "" {
		name = ""
	}
	ord, err := p.Orders.Create(req.User, name, req.Definition)
	if err != nil {
		writeError(w, err)
		return
	}
	if p.Estimate != nil {
		if charge, ws, we, err := p.Estimate(req.Definition); err == nil {
			_ = p.Orders.Update(ord.ID, func(o *Order) {
				o.EstimatedCharge = charge
				o.WindowStartS, o.WindowEndS = ws, we
			})
		}
	}
	got, err := p.Orders.Get(ord.ID)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, got)
}

// writeJSONBytes writes a pre-rendered JSON body (the batched listings).
func writeJSONBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func (p *Portal) listOrders(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	body := p.batch.Do("orders:"+user, func() []byte {
		b, err := json.Marshal(p.Orders.List(user))
		if err != nil {
			return []byte("[]")
		}
		return b
	})
	writeJSONBytes(w, http.StatusOK, body)
}

func (p *Portal) getOrder(w http.ResponseWriter, r *http.Request) {
	ord, err := p.Orders.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ord)
}

func (p *Portal) listFiles(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, p.Files.List(r.PathValue("user")))
}

func (p *Portal) getFile(w http.ResponseWriter, r *http.Request) {
	user := r.PathValue("user")
	path := r.PathValue("path")
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	data, err := p.Files.Get(user, path)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	_, _ = w.Write(data)
}

func (p *Portal) listVDR(w http.ResponseWriter, r *http.Request) {
	// Manifests are the layer-level view: a few hundred bytes per entry,
	// no checkpoint reassembly, no payload bytes leaked into listings.
	body := p.batch.Do("vdr", func() []byte {
		b, err := json.Marshal(p.Repo.Manifests())
		if err != nil {
			return []byte("[]")
		}
		return b
	})
	writeJSONBytes(w, http.StatusOK, body)
}
