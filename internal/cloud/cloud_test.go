package cloud

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"androne/internal/sdk"
)

func surveyApp(t *testing.T) StoreApp {
	t.Helper()
	m, err := sdk.ParseManifest([]byte(`
<androne-manifest package="com.example.survey">
  <uses-permission name="camera" type="waypoint"/>
  <uses-permission name="flight-control" type="waypoint"/>
  <argument name="survey-areas" type="polygon-list" required="true"/>
</androne-manifest>`))
	if err != nil {
		t.Fatal(err)
	}
	return StoreApp{Package: "com.example.survey", Description: "aerial field survey",
		Manifest: m, APK: []byte("dex-bytecode")}
}

func TestAppStore(t *testing.T) {
	s := NewAppStore()
	if err := s.Publish(surveyApp(t)); err != nil {
		t.Fatal(err)
	}
	app, err := s.Get("com.example.survey")
	if err != nil {
		t.Fatal(err)
	}
	if app.Description != "aerial field survey" {
		t.Fatalf("app = %+v", app)
	}
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if got := s.List(); len(got) != 1 {
		t.Fatalf("list = %v", got)
	}
}

func TestAppStoreRejectsBadApps(t *testing.T) {
	s := NewAppStore()
	if err := s.Publish(StoreApp{Package: "x"}); err == nil {
		t.Fatal("app without manifest accepted")
	}
	app := surveyApp(t)
	app.Package = "different"
	if err := s.Publish(app); err == nil {
		t.Fatal("package/manifest mismatch accepted")
	}
}

func mustPut(t *testing.T, st *Storage, user, path string, data []byte) {
	t.Helper()
	if err := st.Put(user, path, data); err != nil {
		t.Fatal(err)
	}
}

func TestStorage(t *testing.T) {
	st := NewStorage()
	mustPut(t, st, "alice", "/flight-1/survey.mp4", []byte("video"))
	mustPut(t, st, "alice", "/flight-1/report.json", []byte("{}"))
	mustPut(t, st, "bob", "/flight-2/photo.jpg", []byte("jpeg"))

	got, err := st.Get("alice", "/flight-1/survey.mp4")
	if err != nil || !bytes.Equal(got, []byte("video")) {
		t.Fatalf("get = %q, %v", got, err)
	}
	if _, err := st.Get("bob", "/flight-1/survey.mp4"); !errors.Is(err, ErrNotFound) {
		t.Fatal("cross-user file access")
	}
	if files := st.List("alice"); len(files) != 2 || files[0] != "/flight-1/report.json" {
		t.Fatalf("list = %v", files)
	}
	if n := st.UsageBytes("alice"); n != 7 {
		t.Fatalf("usage = %d", n)
	}
	if n := st.UsageBytes("nobody"); n != 0 {
		t.Fatalf("usage = %d", n)
	}
}

func TestVDR(t *testing.T) {
	v := NewVDR()
	e := VDREntry{Name: "vd1", Owner: "alice", Definition: []byte("{}"),
		Checkpoint: []byte("diff"), SavedAt: time.Unix(1700000000, 0)}
	if err := v.Save(e); err != nil {
		t.Fatal(err)
	}
	got, err := v.Load("vd1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != "alice" || !bytes.Equal(got.Checkpoint, []byte("diff")) {
		t.Fatalf("entry = %+v", got)
	}
	if _, err := v.Load("vd2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if got := v.List(); len(got) != 1 {
		t.Fatalf("list = %v", got)
	}
	v.Delete("vd1")
	if _, err := v.Load("vd1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("delete did not remove entry")
	}
}

func TestOrders(t *testing.T) {
	o := NewOrders()
	a, err := o.Create("alice", "survey-drone", json.RawMessage(`{"waypoints":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Create("bob", "b", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatal("duplicate order ids")
	}
	if a.Status != OrderPending {
		t.Fatalf("status = %v", a.Status)
	}
	if err := o.Update(a.ID, func(ord *Order) { ord.Status = OrderFlying }); err != nil {
		t.Fatal(err)
	}
	got, _ := o.Get(a.ID)
	if got.Status != OrderFlying {
		t.Fatal("update lost")
	}
	if err := o.Update("nope", func(*Order) {}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if l := o.List("alice"); len(l) != 1 || l[0].User != "alice" {
		t.Fatalf("list(alice) = %v", l)
	}
	if l := o.List(""); len(l) != 2 {
		t.Fatalf("list all = %v", l)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"Survey Drone #1": "survey-drone--1",
		"ok-name-9":       "ok-name-9",
		"":                "vdrone",
		"ALL_CAPS":        "all-caps",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// --------------------------------------------------------------------------
// Portal HTTP tests

func newTestPortal(t *testing.T) (*Portal, *httptest.Server) {
	t.Helper()
	validate := func(def []byte) error {
		var v struct {
			Waypoints []json.RawMessage `json:"waypoints"`
		}
		if err := json.Unmarshal(def, &v); err != nil {
			return err
		}
		if len(v.Waypoints) == 0 {
			return errors.New("no waypoints")
		}
		return nil
	}
	estimate := func(def []byte) (float64, float64, float64, error) {
		return 0.42, 120, 420, nil
	}
	p := NewPortal(NewAppStore(), NewStorage(), NewVDR(), NewOrders(), validate, estimate)
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestPortalOrderFlow(t *testing.T) {
	_, srv := newTestPortal(t)

	def := json.RawMessage(`{"waypoints":[{"latitude":43.6,"longitude":-85.8,"altitude":15,"max-radius":30}]}`)
	resp := postJSON(t, srv.URL+"/api/orders", map[string]any{
		"user": "alice", "name": "Survey Drone", "definition": def,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ord Order
	if err := json.NewDecoder(resp.Body).Decode(&ord); err != nil {
		t.Fatal(err)
	}
	if ord.ID == "" || ord.Name != "survey-drone" {
		t.Fatalf("order = %+v", ord)
	}
	if ord.EstimatedCharge != 0.42 || ord.WindowStartS != 120 {
		t.Fatalf("estimate not applied: %+v", ord)
	}

	// Retrieve it.
	got, err := http.Get(srv.URL + "/api/orders/" + ord.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	if got.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d", got.StatusCode)
	}

	// List by user.
	lst, err := http.Get(srv.URL + "/api/orders?user=alice")
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Body.Close()
	var orders []Order
	if err := json.NewDecoder(lst.Body).Decode(&orders); err != nil {
		t.Fatal(err)
	}
	if len(orders) != 1 {
		t.Fatalf("orders = %v", orders)
	}
}

func TestPortalRejectsBadOrders(t *testing.T) {
	_, srv := newTestPortal(t)
	// Invalid definition (no waypoints).
	resp := postJSON(t, srv.URL+"/api/orders", map[string]any{
		"user": "alice", "definition": json.RawMessage(`{"waypoints":[]}`),
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Missing user.
	resp = postJSON(t, srv.URL+"/api/orders", map[string]any{
		"definition": json.RawMessage(`{"waypoints":[1]}`),
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Unknown order id.
	got, err := http.Get(srv.URL + "/api/orders/ord-9999")
	if err != nil {
		t.Fatal(err)
	}
	got.Body.Close()
	if got.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", got.StatusCode)
	}
}

func TestPortalAppStoreAPI(t *testing.T) {
	p, srv := newTestPortal(t)
	if err := p.Apps.Publish(surveyApp(t)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/api/apps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var apps []StoreApp
	if err := json.NewDecoder(resp.Body).Decode(&apps); err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 || apps[0].Package != "com.example.survey" {
		t.Fatalf("apps = %v", apps)
	}
	if apps[0].APK != nil {
		t.Fatal("listing leaked APK bytes")
	}

	one, err := http.Get(srv.URL + "/api/apps/com.example.survey")
	if err != nil {
		t.Fatal(err)
	}
	defer one.Body.Close()
	var app StoreApp
	if err := json.NewDecoder(one.Body).Decode(&app); err != nil {
		t.Fatal(err)
	}
	if len(app.APK) == 0 {
		t.Fatal("app fetch missing APK")
	}

	// Publish over HTTP.
	resp2 := postJSON(t, srv.URL+"/api/apps", surveyApp(t))
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("publish status = %d", resp2.StatusCode)
	}
	// Bad publish.
	resp3 := postJSON(t, srv.URL+"/api/apps", StoreApp{Package: "x"})
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad publish status = %d", resp3.StatusCode)
	}
}

func TestPortalFilesAPI(t *testing.T) {
	p, srv := newTestPortal(t)
	mustPut(t, p.Files, "alice", "/flight-1/survey.mp4", []byte("video-bytes"))

	resp, err := http.Get(srv.URL + "/api/files/alice")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var files []string
	if err := json.NewDecoder(resp.Body).Decode(&files); err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("files = %v", files)
	}

	got, err := http.Get(srv.URL + "/api/files/alice/flight-1/survey.mp4")
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	if got.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", got.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(got.Body); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "video-bytes" {
		t.Fatalf("body = %q", buf.String())
	}

	missing, err := http.Get(srv.URL + "/api/files/alice/nope.txt")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", missing.StatusCode)
	}
}

func TestPortalVDRAPI(t *testing.T) {
	p, srv := newTestPortal(t)
	if err := p.Repo.Save(VDREntry{Name: "vd1", Owner: "alice", Definition: []byte("{}"), Checkpoint: []byte("big")}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/api/vdr")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []VDREntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "vd1" {
		t.Fatalf("entries = %v", entries)
	}
	if entries[0].Checkpoint != nil {
		t.Fatal("listing leaked checkpoint bytes")
	}
}

func TestPortalOrderNameDefaults(t *testing.T) {
	_, srv := newTestPortal(t)
	resp := postJSON(t, srv.URL+"/api/orders", map[string]any{
		"user": "bob", "definition": json.RawMessage(`{"waypoints":[1]}`),
	})
	defer resp.Body.Close()
	var ord Order
	if err := json.NewDecoder(resp.Body).Decode(&ord); err != nil {
		t.Fatal(err)
	}
	if ord.Name != ord.ID {
		t.Fatalf("default name = %q, want order id %q", ord.Name, ord.ID)
	}
}

// TestOrderIDsSequential pins the sharded ID contract: every ID is unique
// across the whole book, carries its owning shard's prefix, and is
// monotonically increasing within that shard — the properties the old
// single-counter test checked, generalized to N counters.
func TestOrderIDsSequential(t *testing.T) {
	o := NewOrders()
	seen := make(map[string]bool)
	lastPerShard := make(map[int]string)
	for i := 0; i < 10; i++ {
		for _, user := range []string{"alice", "bob", "carol", "dave"} {
			ord, err := o.Create(user, "n", nil)
			if err != nil {
				t.Fatal(err)
			}
			if seen[ord.ID] {
				t.Fatalf("duplicate id %q", ord.ID)
			}
			seen[ord.ID] = true
			shard := ShardOf(user)
			if want := fmt.Sprintf("ord-%02d-", shard); !strings.HasPrefix(ord.ID, want) {
				t.Fatalf("id %q lacks shard prefix %q", ord.ID, want)
			}
			if last := lastPerShard[shard]; last != "" && ord.ID <= last {
				t.Fatalf("shard %d id %q not after %q", shard, ord.ID, last)
			}
			lastPerShard[shard] = ord.ID
		}
	}
}

// TestOrdersQuota pins the per-tenant order cap: the quota'd tenant is
// refused with ErrQuotaExceeded while other tenants keep ordering.
func TestOrdersQuota(t *testing.T) {
	o := NewOrdersWith(Quotas{MaxOrdersPerTenant: 2})
	for i := 0; i < 2; i++ {
		if _, err := o.Create("alice", "n", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := o.Create("alice", "n", nil); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	if _, err := o.Create("bob", "n", nil); err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}
	if n := o.Count("alice"); n != 2 {
		t.Fatalf("Count(alice) = %d", n)
	}
}
