package cloud

import "sync"

// batchGroup coalesces concurrent identical reads (singleflight): while one
// caller renders the order or VDR listing, callers arriving with the same
// key wait for that result instead of re-rendering it. Listings are the
// portal's broadest reads — every tenant dashboard polls them — so under
// fan-in they would otherwise serialize the shard sweeps back to back.
type batchGroup struct {
	mu    sync.Mutex
	calls map[string]*batchCall
}

type batchCall struct {
	wg  sync.WaitGroup
	val []byte
}

// Do returns fn()'s bytes for key, sharing one execution among concurrent
// callers. The result is only shared, never cached: the next caller after
// completion re-renders.
func (g *batchGroup) Do(key string, fn func() []byte) []byte {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*batchCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		mBatchedReads.Inc()
		return c.val
	}
	c := &batchCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val = fn()
	return c.val
}
