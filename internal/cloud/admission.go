package cloud

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Admission control is the portal's front door (ROADMAP item 2): per-tenant
// token buckets bound each tenant's request rate, and a bounded in-service
// queue bounds total concurrency. Requests past either bound are shed with
// 429 + Retry-After instead of queuing without limit — under overload the
// portal answers some requests fast and refuses the rest cheaply, rather
// than answering all of them late. One flooding tenant exhausts its own
// bucket, not the service: the isolation contract is pinned by
// TestFloodingTenantIsolation.

// TenantHeader carries the tenant identity on portal requests. Admission
// falls back to the user query parameter, then to "anon" — so unauthenticated
// probes share one bucket instead of each minting a fresh one.
const TenantHeader = "X-Androne-User"

// RateLimiter applies a token bucket per tenant: capacity burst, refilled
// at rate tokens/second, one token per request. The zero rate disables
// limiting. The clock is injectable so refill arithmetic is testable
// without sleeping.
type RateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter; now may be nil for the wall clock.
func NewRateLimiter(rate, burst float64, now func() time.Time) *RateLimiter {
	if now == nil {
		now = time.Now
	}
	return &RateLimiter{rate: rate, burst: burst, now: now,
		buckets: make(map[string]*tokenBucket)}
}

// Allow consumes one token from tenant's bucket, reporting false when the
// bucket is dry. New tenants start with a full burst.
func (l *RateLimiter) Allow(tenant string) bool {
	if l.rate <= 0 {
		return true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports tenant's current balance without refilling — a test hook.
func (l *RateLimiter) Tokens(tenant string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b, ok := l.buckets[tenant]; ok {
		return b.tokens
	}
	return l.burst
}

// AdmissionConfig tunes the front door. Zero values take the defaults
// noted per field.
type AdmissionConfig struct {
	// RatePerTenant is each tenant's sustained requests/second (default
	// 200; <0 disables rate limiting).
	RatePerTenant float64
	// Burst is each tenant's bucket capacity (default 2×rate).
	Burst float64
	// MaxInFlight bounds requests being served at once (default 64).
	MaxInFlight int
	// MaxQueued bounds requests waiting for an in-flight slot; arrivals
	// beyond it are shed immediately (default 256).
	MaxQueued int
	// MaxWait is how long a queued request waits for a slot before being
	// shed (default 250ms).
	MaxWait time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// Now is the test clock for the rate limiter (nil = wall clock).
	Now func() time.Time
}

// Admission is the portal's admission-control middleware.
type Admission struct {
	limiter    *RateLimiter
	sem        chan struct{}
	maxQueued  int64
	queued     atomic.Int64
	maxWait    time.Duration
	retryAfter time.Duration
}

// NewAdmission builds the middleware from cfg.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.RatePerTenant == 0 {
		cfg.RatePerTenant = 200
	}
	if cfg.Burst == 0 {
		cfg.Burst = 2 * cfg.RatePerTenant
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxQueued == 0 {
		cfg.MaxQueued = 256
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = 250 * time.Millisecond
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = time.Second
	}
	return &Admission{
		limiter:    NewRateLimiter(cfg.RatePerTenant, cfg.Burst, cfg.Now),
		sem:        make(chan struct{}, cfg.MaxInFlight),
		maxQueued:  int64(cfg.MaxQueued),
		maxWait:    cfg.MaxWait,
		retryAfter: cfg.RetryAfter,
	}
}

// TenantOf extracts the tenant identity from a request.
func TenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	if t := r.URL.Query().Get("user"); t != "" {
		return t
	}
	return "anon"
}

// endpointOf classifies a request for the per-endpoint latency histograms.
// (Manual classification: http.Request.Pattern needs a newer Go than the
// module targets.)
func endpointOf(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/api/apps", strings.HasPrefix(p, "/api/apps/"):
		return "apps"
	case p == "/api/orders":
		return "orders"
	case strings.HasPrefix(p, "/api/orders/"):
		return "order"
	case strings.HasPrefix(p, "/api/files/"):
		return "files"
	case p == "/api/vdr":
		return "vdr"
	default:
		return "other"
	}
}

// acquire takes an in-flight slot, waiting up to maxWait in the bounded
// queue. It reports false when the request must be shed.
func (a *Admission) acquire() bool {
	select {
	case a.sem <- struct{}{}:
		return true
	default:
	}
	if a.queued.Add(1) > a.maxQueued {
		a.queued.Add(-1)
		return false
	}
	defer a.queued.Add(-1)
	t := time.NewTimer(a.maxWait)
	defer t.Stop()
	select {
	case a.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	}
}

func (a *Admission) shed(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", int(a.retryAfter.Seconds()+0.5)))
	writeJSON(w, http.StatusTooManyRequests,
		map[string]string{"error": "overloaded: " + reason + ", retry later"})
}

// Wrap applies admission control around next: token bucket per tenant,
// then the bounded queue, then per-endpoint latency accounting.
func (a *Admission) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endpoint := endpointOf(r)
		if !a.limiter.Allow(TenantOf(r)) {
			mShedRate.Inc()
			a.shed(w, "tenant rate limit")
			return
		}
		if !a.acquire() {
			mShedQueue.Inc()
			a.shed(w, "service queue full")
			return
		}
		start := time.Now()
		next.ServeHTTP(w, r)
		<-a.sem
		mAdmitted.Inc()
		if h, ok := mEndpointLatency[endpoint]; ok {
			h.Observe(time.Since(start).Seconds())
		}
	})
}
