package cloud

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestBlobPutGetRoundTrip(t *testing.T) {
	s := NewBlobStore()
	data := []byte("layer-bytes")
	d := s.Put(data)
	if d != Digest(data) {
		t.Fatalf("Put digest %s != Digest %s", d, Digest(data))
	}
	got, err := s.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	// Returned bytes are a copy: scribbling must not corrupt the store.
	got[0] = 'X'
	again, err := s.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("Get handed out shared memory")
	}
	if _, err := s.Get(Digest([]byte("absent"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing blob: %v", err)
	}
}

func TestBlobDedupAccounting(t *testing.T) {
	s := NewBlobStore()
	data := []byte("shared-layer-payload")
	d1 := s.Put(data)
	d2 := s.Put(data)
	if d1 != d2 {
		t.Fatalf("digests differ: %s %s", d1, d2)
	}
	st := s.Stats()
	n := int64(len(data))
	if st.Blobs != 1 || st.LogicalBytes != 2*n || st.PhysicalBytes != n || st.DedupHits != 1 {
		t.Fatalf("stats after double put: %+v", st)
	}
	if got := st.DedupRatio(); got != 2 {
		t.Fatalf("DedupRatio = %v, want 2", got)
	}
	if size, refs, ok := s.Stat(d1); !ok || size != n || refs != 2 {
		t.Fatalf("Stat = %d, %d, %v", size, refs, ok)
	}
	if (BlobStats{}).DedupRatio() != 1 {
		t.Fatal("empty store must report ratio 1")
	}
}

// TestBlobRetentionRevive is the churn contract: a blob briefly dropped to
// zero references must be revived — not re-stored — by the next identical
// Put, so the save → replace → save cycle costs no physical bytes.
func TestBlobRetentionRevive(t *testing.T) {
	s := NewBlobStore()
	data := []byte("checkpoint-layer-generation")
	d := s.Put(data)
	s.Unref(d) // zero refs: retained, not evicted
	st := s.Stats()
	if st.Blobs != 1 || st.LiveBytes != 0 || st.RetainedBytes != int64(len(data)) || st.GCFreedBytes != 0 {
		t.Fatalf("after unref: %+v", st)
	}
	// Retained blobs still serve reads.
	if _, err := s.Get(d); err != nil {
		t.Fatalf("Get of retained blob: %v", err)
	}
	if s.Put(data) != d {
		t.Fatal("re-put changed digest")
	}
	st = s.Stats()
	if st.PhysicalBytes != int64(len(data)) {
		t.Fatalf("revive re-stored bytes: %+v", st)
	}
	if st.DedupHits != 1 || st.RetainedBytes != 0 || st.LiveBytes != int64(len(data)) {
		t.Fatalf("after revive: %+v", st)
	}
	// Ref also revives.
	s.Unref(d)
	if !s.Ref(d) {
		t.Fatal("Ref of retained blob failed")
	}
	if got := s.Stats(); got.RetainedBytes != 0 || got.LiveBytes != int64(len(data)) {
		t.Fatalf("after Ref revive: %+v", got)
	}
}

// TestBlobRetentionEviction pins the budget: the pool evicts oldest-freed
// first, revived blobs are skipped at their stale queue position, and a
// zero-budget store frees eagerly.
func TestBlobRetentionEviction(t *testing.T) {
	mk := func(i int) []byte { return []byte(fmt.Sprintf("blob-%02d-0123456789", i)) }
	s := NewBlobStoreRetain(int64(2 * len(mk(0))))
	var digests []string
	for i := 0; i < 4; i++ {
		digests = append(digests, s.Put(mk(i)))
	}
	s.Unref(digests[0])
	s.Unref(digests[1])
	// Pool is exactly at budget; blob 0 and 1 retained.
	if st := s.Stats(); st.GCFreedBytes != 0 || st.Blobs != 4 {
		t.Fatalf("at budget: %+v", st)
	}
	// Revive 0, then free two more: the stale queue entry for 0 must be
	// skipped and the oldest actually-free blobs (1, then 2) evicted.
	if !s.Ref(digests[0]) {
		t.Fatal("revive failed")
	}
	s.Unref(digests[2])
	s.Unref(digests[3])
	if _, err := s.Get(digests[1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("blob 1 should be evicted: %v", err)
	}
	if _, err := s.Get(digests[0]); err != nil {
		t.Fatalf("revived blob 0 evicted: %v", err)
	}
	if _, err := s.Get(digests[3]); err != nil {
		t.Fatalf("newest-freed blob 3 should be retained: %v", err)
	}
	if st := s.Stats(); st.GCFreedBytes == 0 {
		t.Fatalf("nothing evicted: %+v", st)
	}

	eager := NewBlobStoreRetain(0)
	d := eager.Put([]byte("x"))
	eager.Unref(d)
	if _, err := eager.Get(d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("zero-retention store must free eagerly: %v", err)
	}
	if st := eager.Stats(); st.Blobs != 0 || st.GCFreedBytes != 1 {
		t.Fatalf("eager stats: %+v", st)
	}
}

func TestBlobUnrefUnknownIsNoop(t *testing.T) {
	s := NewBlobStore()
	s.Unref(Digest([]byte("never-stored")))
	if st := s.Stats(); st != (BlobStats{}) {
		t.Fatalf("unknown unref mutated accounting: %+v", st)
	}
}

// TestBlobCorruptionDetected flips a stored byte and expects Get to refuse
// with ErrLayerCorrupt rather than return silently wrong bytes.
func TestBlobCorruptionDetected(t *testing.T) {
	s := NewBlobStore()
	d := s.Put([]byte("pristine-layer"))
	s.mu.Lock()
	s.blobs[d].data[0] ^= 0xFF
	s.mu.Unlock()
	if _, err := s.Get(d); !errors.Is(err, ErrLayerCorrupt) {
		t.Fatalf("corrupt blob: %v", err)
	}
}

// TestBlobRefOpsZeroAlloc pins the read-path refcount operations
// allocation-free: the flight save path runs them per layer under the
// store mutex, and an allocation there would show up in the hotpath
// analyzer's zero-alloc contract.
func TestBlobRefOpsZeroAlloc(t *testing.T) {
	s := NewBlobStore()
	d := s.Put([]byte("pinned-layer"))
	s.Put([]byte("pinned-layer")) // refs=2 so Unref never hits the pool path
	if avg := testing.AllocsPerRun(200, func() {
		if !s.Ref(d) {
			t.Fatal("Ref failed")
		}
		if _, _, ok := s.Stat(d); !ok {
			t.Fatal("Stat failed")
		}
		s.Unref(d)
	}); avg != 0 {
		t.Fatalf("Ref/Stat/Unref allocate %.1f per op, want 0", avg)
	}
}
