package cloud

import "androne/internal/telemetry"

// The service plane's instruments, registered once in the process-global
// registry and rendered by /metrics. Admission outcomes and per-endpoint
// latency come from the middleware (admission.go); storage dedup gauges are
// refreshed by the VDR after each save.
var (
	mAdmitted = telemetry.NewCounter("androne_portal_admitted_total",
		"Requests admitted through the portal front door.")
	mShedRate = telemetry.NewCounter("androne_portal_shed_rate_total",
		"Requests shed by a tenant's token bucket (429).")
	mShedQueue = telemetry.NewCounter("androne_portal_shed_queue_total",
		"Requests shed by the bounded service queue (429).")
	mBatchedReads = telemetry.NewCounter("androne_portal_batched_reads_total",
		"Listing reads served from a coalesced in-flight render.")

	mEndpointLatency = map[string]*telemetry.Histogram{
		"apps":   newLatency("apps"),
		"orders": newLatency("orders"),
		"order":  newLatency("order"),
		"files":  newLatency("files"),
		"vdr":    newLatency("vdr"),
		"other":  newLatency("other"),
	}

	mVDRDedupRatio = telemetry.NewGauge("androne_vdr_dedup_ratio",
		"Cumulative logical/physical bytes across VDR blob stores (>= 1).")
	mVDRLiveBytes = telemetry.NewGauge("androne_vdr_live_bytes",
		"Live (referenced) checkpoint-layer bytes across VDR blob stores.")
	mVDRDedupHits = telemetry.NewCounter("androne_vdr_dedup_hits_total",
		"Layer writes deduplicated against an existing blob.")
	mVDRGCFreed = telemetry.NewCounter("androne_vdr_gc_freed_bytes_total",
		"Bytes freed by refcount GC across VDR blob stores.")
)

// newLatency builds one endpoint's latency histogram: 0.1ms to ~3.3s in
// 15 doubling buckets.
func newLatency(endpoint string) *telemetry.Histogram {
	return telemetry.NewHistogram(
		"androne_portal_latency_"+endpoint+"_seconds",
		"Portal request latency for the "+endpoint+" endpoint.",
		telemetry.ExponentialBounds(0.0001, 2, 15))
}
