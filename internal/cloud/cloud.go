// Package cloud implements AnDrone's cloud service components (paper §4,
// Figure 3): the web portal users order virtual drones through, the app
// store providing apps for virtual drones, general storage for drone flight
// data, and the virtual drone repository (VDR) which stores preconfigured
// virtual drone definitions and saved container state for later use or
// reuse. The flight planner lives in package planner; package core wires
// everything together.
package cloud

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"androne/internal/sdk"
)

// Errors.
var (
	ErrNotFound = errors.New("cloud: not found")
	ErrExists   = errors.New("cloud: already exists")
)

// --------------------------------------------------------------------------
// App store

// StoreApp is an app published to the AnDrone app store.
type StoreApp struct {
	Package     string        `json:"package"`
	Description string        `json:"description"`
	Manifest    *sdk.Manifest `json:"manifest"`
	APK         []byte        `json:"apk,omitempty"`
}

// AppStore is the AnDrone app store.
type AppStore struct {
	mu   sync.Mutex
	apps map[string]StoreApp
}

// NewAppStore creates an empty app store.
func NewAppStore() *AppStore {
	return &AppStore{apps: make(map[string]StoreApp)}
}

// Publish adds or updates an app. The manifest must validate.
func (s *AppStore) Publish(app StoreApp) error {
	if app.Manifest == nil {
		return fmt.Errorf("cloud: app %q has no manifest", app.Package)
	}
	if err := app.Manifest.Validate(); err != nil {
		return err
	}
	if app.Package != app.Manifest.Package {
		return fmt.Errorf("cloud: package %q does not match manifest %q", app.Package, app.Manifest.Package)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apps[app.Package] = app
	return nil
}

// Get retrieves an app by package name.
func (s *AppStore) Get(pkg string) (StoreApp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	app, ok := s.apps[pkg]
	if !ok {
		return StoreApp{}, fmt.Errorf("%w: app %q", ErrNotFound, pkg)
	}
	return app, nil
}

// List returns all published apps sorted by package.
func (s *AppStore) List() []StoreApp {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoreApp, 0, len(s.apps))
	for _, a := range s.apps {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Package < out[j].Package })
	return out
}

// --------------------------------------------------------------------------
// Cloud storage

// Storage is the general per-user file storage that flight files are
// offloaded to; users retrieve files on demand after the flight.
type Storage struct {
	mu    sync.Mutex
	files map[string]map[string][]byte // user -> path -> contents
}

// NewStorage creates empty storage.
func NewStorage() *Storage {
	return &Storage{files: make(map[string]map[string][]byte)}
}

// Put stores a file for a user.
func (s *Storage) Put(user, path string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.files[user]
	if !ok {
		m = make(map[string][]byte)
		s.files[user] = m
	}
	m[path] = append([]byte(nil), data...)
}

// Get retrieves a user's file.
func (s *Storage) Get(user, path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[user][path]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, user, path)
	}
	return append([]byte(nil), data...), nil
}

// List returns a user's file paths, sorted.
func (s *Storage) List(user string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.files[user]))
	for p := range s.files[user] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// UsageBytes returns a user's stored bytes (the billing input).
func (s *Storage) UsageBytes(user string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, data := range s.files[user] {
		n += int64(len(data))
	}
	return n
}

// --------------------------------------------------------------------------
// Virtual drone repository

// VDREntry is a stored virtual drone: its JSON definition plus, when it has
// flown before, its container checkpoint (diff from the base image) so it
// can be resumed on a later flight, on any drone hardware.
type VDREntry struct {
	Name       string    `json:"name"`
	Owner      string    `json:"owner"`
	Definition []byte    `json:"definition"`
	Checkpoint []byte    `json:"checkpoint,omitempty"`
	SavedAt    time.Time `json:"saved-at"`
	Completed  bool      `json:"completed"`
}

// VDR is the virtual drone repository.
type VDR struct {
	mu      sync.Mutex
	entries map[string]VDREntry
}

// NewVDR creates an empty repository.
func NewVDR() *VDR {
	return &VDR{entries: make(map[string]VDREntry)}
}

// Save stores or updates a virtual drone entry.
func (v *VDR) Save(e VDREntry) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.entries[e.Name] = e
}

// Load retrieves a virtual drone entry.
func (v *VDR) Load(name string) (VDREntry, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e, ok := v.entries[name]
	if !ok {
		return VDREntry{}, fmt.Errorf("%w: virtual drone %q", ErrNotFound, name)
	}
	return e, nil
}

// Delete removes an entry.
func (v *VDR) Delete(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.entries, name)
}

// List returns entries sorted by name.
func (v *VDR) List() []VDREntry {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]VDREntry, 0, len(v.entries))
	for _, e := range v.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --------------------------------------------------------------------------
// Orders

// OrderStatus tracks a virtual drone order through the Figure 4 workflow.
type OrderStatus string

// Order statuses.
const (
	OrderPending   OrderStatus = "pending"
	OrderScheduled OrderStatus = "scheduled"
	OrderFlying    OrderStatus = "flying"
	OrderCompleted OrderStatus = "completed"
	OrderSaved     OrderStatus = "saved" // interrupted; resumable from VDR
)

// AccessInfo is what the portal provides once a drone takes off: how the
// user may connect to their virtual drone, much like a newly deployed
// cloud server.
type AccessInfo struct {
	VFCAddr string `json:"vfc-addr"`
	SSHAddr string `json:"ssh-addr"`
	VPNKey  string `json:"vpn-key"`
}

// Order is a virtual drone order.
type Order struct {
	ID         string          `json:"id"`
	User       string          `json:"user"`
	Name       string          `json:"name"` // virtual drone name
	Definition json.RawMessage `json:"definition"`
	Status     OrderStatus     `json:"status"`
	// WindowStartS/WindowEndS estimate when the drone reaches the order's
	// first waypoint, as seconds from flight start.
	WindowStartS float64    `json:"window-start-s"`
	WindowEndS   float64    `json:"window-end-s"`
	Access       AccessInfo `json:"access"`
	// EstimatedCharge previews the energy bill for the allotment.
	EstimatedCharge float64 `json:"estimated-charge"`

	// gen counts committed mutations; Update uses it to detect conflicting
	// writers without holding the lock across the caller's function.
	gen uint64
}

// Orders tracks portal orders.
type Orders struct {
	mu     sync.Mutex
	next   int
	orders map[string]*Order
}

// NewOrders creates an empty order book.
func NewOrders() *Orders {
	return &Orders{orders: make(map[string]*Order)}
}

// Create registers a new pending order and assigns its id. An empty name
// defaults to the id. The returned Order is the caller's private copy.
func (o *Orders) Create(user, name string, def json.RawMessage) *Order {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.next++
	ord := &Order{
		ID:         fmt.Sprintf("ord-%04d", o.next),
		User:       user,
		Name:       name,
		Definition: append(json.RawMessage(nil), def...),
		Status:     OrderPending,
	}
	if ord.Name == "" {
		ord.Name = ord.ID
	}
	o.orders[ord.ID] = ord
	cp := *ord
	return &cp
}

// Get retrieves a snapshot of an order. Returning a copy keeps readers
// (e.g. handlers serializing the order) race-free against Update.
func (o *Orders) Get(id string) (*Order, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ord, ok := o.orders[id]
	if !ok {
		return nil, fmt.Errorf("%w: order %q", ErrNotFound, id)
	}
	cp := *ord
	return &cp, nil
}

// Update applies fn to an order atomically. fn runs on a private copy with
// no lock held — it may not observe other orders mid-change, and it cannot
// deadlock by calling back into Orders. The mutation commits only if no
// other writer got there first; on conflict the read-modify-write retries
// with a fresh copy.
func (o *Orders) Update(id string, fn func(*Order)) error {
	for {
		o.mu.Lock()
		ord, ok := o.orders[id]
		if !ok {
			o.mu.Unlock()
			return fmt.Errorf("%w: order %q", ErrNotFound, id)
		}
		cp := *ord
		o.mu.Unlock()

		fn(&cp)

		o.mu.Lock()
		cur, ok := o.orders[id]
		if !ok {
			o.mu.Unlock()
			return fmt.Errorf("%w: order %q", ErrNotFound, id)
		}
		if cur.gen != cp.gen {
			o.mu.Unlock()
			continue
		}
		cp.gen++
		*cur = cp
		o.mu.Unlock()
		return nil
	}
}

// List returns orders sorted by id, optionally filtered by user ("" = all).
func (o *Orders) List(user string) []Order {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Order, 0, len(o.orders))
	for _, ord := range o.orders {
		if user == "" || ord.User == user {
			out = append(out, *ord)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SanitizeName makes a user-supplied name safe for use as a container and
// namespace identifier.
func SanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('-')
		}
	}
	out := b.String()
	if out == "" {
		out = "vdrone"
	}
	return out
}
