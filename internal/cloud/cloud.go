// Package cloud implements AnDrone's cloud service components (paper §4,
// Figure 3): the web portal users order virtual drones through, the app
// store providing apps for virtual drones, general storage for drone flight
// data, and the virtual drone repository (VDR) which stores preconfigured
// virtual drone definitions and saved container state for later use or
// reuse. The flight planner lives in package planner; package core wires
// everything together.
//
// The data plane is built for many tenants sharing one service: order and
// storage state is sharded by tenant hash (shard.go), checkpoints are
// content-addressed and deduplicated (blob.go, vdr.go), and the portal
// front door applies per-tenant admission control (admission.go).
package cloud

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"androne/internal/sdk"
)

// Errors.
var (
	ErrNotFound = errors.New("cloud: not found")
	ErrExists   = errors.New("cloud: already exists")
	// ErrQuotaExceeded rejects a write that would push a tenant past its
	// quota (orders, storage bytes, or VDR layers). The portal maps it to
	// 413 Request Entity Too Large.
	ErrQuotaExceeded = errors.New("cloud: tenant quota exceeded")
	// ErrLayerCorrupt means stored checkpoint bytes no longer match their
	// content address or cannot be decoded; restoring from them would be
	// silently wrong, so they are refused loudly.
	ErrLayerCorrupt = errors.New("cloud: checkpoint layer corrupt")
)

// --------------------------------------------------------------------------
// App store

// StoreApp is an app published to the AnDrone app store.
type StoreApp struct {
	Package     string        `json:"package"`
	Description string        `json:"description"`
	Manifest    *sdk.Manifest `json:"manifest"`
	APK         []byte        `json:"apk,omitempty"`
}

// AppStore is the AnDrone app store.
type AppStore struct {
	mu   sync.Mutex
	apps map[string]StoreApp
}

// NewAppStore creates an empty app store.
func NewAppStore() *AppStore {
	return &AppStore{apps: make(map[string]StoreApp)}
}

// Publish adds or updates an app. The manifest must validate.
func (s *AppStore) Publish(app StoreApp) error {
	if app.Manifest == nil {
		return fmt.Errorf("cloud: app %q has no manifest", app.Package)
	}
	if err := app.Manifest.Validate(); err != nil {
		return err
	}
	if app.Package != app.Manifest.Package {
		return fmt.Errorf("cloud: package %q does not match manifest %q", app.Package, app.Manifest.Package)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apps[app.Package] = app
	return nil
}

// Get retrieves an app by package name.
func (s *AppStore) Get(pkg string) (StoreApp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	app, ok := s.apps[pkg]
	if !ok {
		return StoreApp{}, fmt.Errorf("%w: app %q", ErrNotFound, pkg)
	}
	return app, nil
}

// List returns all published apps sorted by package.
func (s *AppStore) List() []StoreApp {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoreApp, 0, len(s.apps))
	for _, a := range s.apps {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Package < out[j].Package })
	return out
}

// SanitizeName makes a user-supplied name safe for use as a container and
// namespace identifier.
func SanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('-')
		}
	}
	out := b.String()
	if out == "" {
		out = "vdrone"
	}
	return out
}
