package cloud

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// DefaultBlobRetention is the zero-ref retention budget: how many bytes of
// unreferenced blobs the store keeps resident before the GC actually
// evicts. Retention is what makes checkpoint churn cheap — a save that
// replaces a manifest briefly drops its predecessor's layers to zero
// references, and the next identical save must revive them, not re-store
// them.
const DefaultBlobRetention = 32 << 20

// BlobStore is a content-addressed blob store: byte payloads keyed by their
// sha256, stored once no matter how many owners reference them. It is the
// storage layer under the layered VDR — the paper leans on Docker's shared
// base layers to keep per-drone state small, and content addressing is how
// that sharing becomes measurable: identical layers across checkpoints (or
// across tenants) cost physical bytes once.
//
// Blobs are reference counted, and the refcount drives a deferred GC: Put
// on an existing digest is a dedup hit and bumps the refcount; Unref drops
// it, and a blob at zero references moves to a bounded retention pool
// (FIFO by the order it was freed) instead of being evicted on the spot.
// A later Put or Ref of the same digest revives it from the pool for free;
// only when the pool exceeds its byte budget are the oldest zero-ref blobs
// actually evicted. Without retention, the save → replace → save cycle of
// a churning drone would thrash: the replacing save unrefs the old
// generation's layers moments before an identical next generation re-puts
// them. The cumulative logical/physical write counters never decrease, so
// the dedup ratio (logical/physical) is monotone and meaningful across
// churn even as old checkpoint generations are collected.
type BlobStore struct {
	mu    sync.Mutex
	blobs map[string]*blob

	// Zero-ref retention pool: freed blobs queue here until the budget
	// overflows. Queue entries are matched against the blob's freedSeq so
	// a revived-then-refreed blob is only evicted at its newest position.
	retainBytes  int64
	zeroRefBytes int64
	gcSeq        uint64
	gcq          []gcEntry

	// Cumulative write-side accounting (monotone).
	logicalBytes  int64 // every byte handed to Put
	physicalBytes int64 // bytes that were actually new
	dedupHits     int64
	gcFreedBytes  int64 // bytes actually evicted (not merely unreferenced)

	// Live accounting (follows refs).
	liveBytes int64
}

type blob struct {
	data []byte
	refs int64
	// freedSeq is the GC sequence at which refs last hit zero; 0 while
	// referenced.
	freedSeq uint64
}

type gcEntry struct {
	digest string
	seq    uint64
}

// NewBlobStore creates an empty store with the default retention budget.
func NewBlobStore() *BlobStore {
	return NewBlobStoreRetain(DefaultBlobRetention)
}

// NewBlobStoreRetain creates an empty store retaining up to retain bytes
// of zero-ref blobs (0 evicts eagerly at the last Unref).
func NewBlobStoreRetain(retain int64) *BlobStore {
	return &BlobStore{blobs: make(map[string]*blob), retainBytes: retain}
}

// Digest returns the content address of data.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// reviveLocked pulls a zero-ref blob back out of the retention pool. Its
// stale queue entry stays behind and misses at trim time (freedSeq moved
// on).
func (s *BlobStore) reviveLocked(b *blob) {
	n := int64(len(b.data))
	s.zeroRefBytes -= n
	s.liveBytes += n
	b.freedSeq = 0
}

// Put stores data under its content address and returns the digest. If the
// digest already exists the stored bytes are reused (a dedup hit) and only
// the reference count grows — including blobs sitting unreferenced in the
// retention pool, which are revived; either way the caller owns one new
// reference.
func (s *BlobStore) Put(data []byte) string {
	d := Digest(data)
	n := int64(len(data))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logicalBytes += n
	if b, ok := s.blobs[d]; ok {
		if b.refs <= 0 {
			s.reviveLocked(b)
		}
		b.refs++
		s.dedupHits++
		mVDRDedupHits.Inc()
		return d
	}
	s.blobs[d] = &blob{data: append([]byte(nil), data...), refs: 1}
	s.physicalBytes += n
	s.liveBytes += n
	return d
}

// Get returns a copy of the blob's bytes, verifying them against the digest
// so corrupted storage is an error at read time, never a silently wrong
// restore.
func (s *BlobStore) Get(digest string) ([]byte, error) {
	s.mu.Lock()
	b, ok := s.blobs[digest]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: blob %.12s", ErrNotFound, digest)
	}
	data := append([]byte(nil), b.data...)
	s.mu.Unlock()
	if Digest(data) != digest {
		return nil, fmt.Errorf("%w: blob %.12s fails its digest", ErrLayerCorrupt, digest)
	}
	return data, nil
}

// Ref takes one more reference on an existing blob, reviving it if it was
// sitting unreferenced in the retention pool. It reports false when the
// digest is unknown. The read path stays allocation-free (pinned by
// TestBlobRefOpsZeroAlloc): a map probe and integer bumps under the
// store's mutex.
func (s *BlobStore) Ref(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[digest]
	if !ok {
		return false
	}
	if b.refs <= 0 {
		s.reviveLocked(b)
	}
	b.refs++
	return true
}

// Unref drops one reference; the last reference moves the blob into the
// retention pool and trims the pool to its budget. Unknown digests are
// ignored (a double-free cannot resurrect accounting).
func (s *BlobStore) Unref(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[digest]
	if !ok {
		return
	}
	b.refs--
	if b.refs <= 0 {
		n := int64(len(b.data))
		s.liveBytes -= n
		s.zeroRefBytes += n
		s.gcSeq++
		b.freedSeq = s.gcSeq
		s.gcq = append(s.gcq, gcEntry{digest: digest, seq: s.gcSeq})
		s.trimLocked()
	}
}

// trimLocked evicts the oldest zero-ref blobs until the retention pool is
// back under budget. Queue entries whose blob was revived (or re-freed at
// a newer sequence) are stale and skipped; the deterministic FIFO order
// means no map iteration on the save path.
func (s *BlobStore) trimLocked() {
	for s.zeroRefBytes > s.retainBytes && len(s.gcq) > 0 {
		e := s.gcq[0]
		s.gcq = s.gcq[1:]
		b, ok := s.blobs[e.digest]
		if !ok || b.refs > 0 || b.freedSeq != e.seq {
			continue
		}
		n := int64(len(b.data))
		s.zeroRefBytes -= n
		s.gcFreedBytes += n
		mVDRGCFreed.Add(float64(n))
		delete(s.blobs, e.digest)
	}
}

// Stat returns a blob's size and reference count without copying it; ok is
// false for unknown digests (including evicted ones). A retained zero-ref
// blob reports refs 0. Allocation-free, like Ref.
func (s *BlobStore) Stat(digest string) (size int64, refs int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, found := s.blobs[digest]
	if !found {
		return 0, 0, false
	}
	return int64(len(b.data)), b.refs, true
}

// BlobStats is a point-in-time snapshot of the store's accounting.
type BlobStats struct {
	Blobs         int   `json:"blobs"`
	LiveBytes     int64 `json:"live-bytes"`
	RetainedBytes int64 `json:"retained-bytes"`
	LogicalBytes  int64 `json:"logical-bytes"`
	PhysicalBytes int64 `json:"physical-bytes"`
	DedupHits     int64 `json:"dedup-hits"`
	GCFreedBytes  int64 `json:"gc-freed-bytes"`
}

// DedupRatio is cumulative logical bytes written over physical bytes
// stored — 1.0 means no sharing, N means every byte was stored once and
// referenced N times on average. Zero-write stores report 1.0.
func (st BlobStats) DedupRatio() float64 {
	if st.PhysicalBytes == 0 {
		return 1
	}
	return float64(st.LogicalBytes) / float64(st.PhysicalBytes)
}

// Stats snapshots the store's accounting.
func (s *BlobStore) Stats() BlobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return BlobStats{
		Blobs:         len(s.blobs),
		LiveBytes:     s.liveBytes,
		RetainedBytes: s.zeroRefBytes,
		LogicalBytes:  s.logicalBytes,
		PhysicalBytes: s.physicalBytes,
		DedupHits:     s.dedupHits,
		GCFreedBytes:  s.gcFreedBytes,
	}
}
