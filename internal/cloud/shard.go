package cloud

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Tenant state — orders and per-user storage — is sharded by tenant hash so
// one service instance does not serialize every tenant behind a single
// mutex. All writes for a tenant go through the owning shard's mutex; no
// operation holds two shard locks at once, so shards cannot deadlock
// against each other and a hot tenant contends only with the ~1/NumShards
// of tenants that hash beside it.

// NumShards is the shard fan-out for orders and storage. Sixteen shards
// keep the ID prefix two digits while comfortably exceeding the core
// counts this repo targets.
const NumShards = 16

// ShardOf maps a tenant to its owning shard: FNV-1a over the user name,
// reduced mod NumShards. Exported so tests can pick colliding or disjoint
// tenants deliberately.
func ShardOf(user string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(user); i++ {
		h ^= uint32(user[i])
		h *= prime32
	}
	return int(h % NumShards)
}

// Quotas bounds what one tenant may hold. Zero values mean unlimited;
// DefaultQuotas is what the service plane runs with unless configured.
type Quotas struct {
	// MaxOrdersPerTenant caps orders a tenant may create (they are never
	// deleted, so this is a lifetime cap per service instance).
	MaxOrdersPerTenant int `json:"max-orders-per-tenant"`
	// MaxStorageBytesPerTenant caps a tenant's cloud storage footprint.
	MaxStorageBytesPerTenant int64 `json:"max-storage-bytes-per-tenant"`
	// MaxVDRLayersPerTenant caps live checkpoint layers a tenant holds.
	MaxVDRLayersPerTenant int `json:"max-vdr-layers-per-tenant"`
}

// DefaultQuotas is roomy for a dev host: hundreds of orders, tens of
// megabytes of flight files, and save/restore churn headroom per tenant.
func DefaultQuotas() Quotas {
	return Quotas{
		MaxOrdersPerTenant:       512,
		MaxStorageBytesPerTenant: 64 << 20,
		MaxVDRLayersPerTenant:    4096,
	}
}

// --------------------------------------------------------------------------
// Cloud storage

// Storage is the general per-user file storage that flight files are
// offloaded to; users retrieve files on demand after the flight. A tenant's
// files live entirely in the shard ShardOf(user) selects.
type Storage struct {
	maxBytes int64
	shards   [NumShards]storageShard
}

type storageShard struct {
	mu    sync.Mutex
	files map[string]map[string][]byte // user -> path -> contents
	usage map[string]int64             // user -> stored bytes
}

// NewStorage creates empty storage with default quotas.
func NewStorage() *Storage { return NewStorageWith(DefaultQuotas()) }

// NewStorageWith creates empty storage enforcing q's per-tenant byte quota.
func NewStorageWith(q Quotas) *Storage {
	s := &Storage{maxBytes: q.MaxStorageBytesPerTenant}
	for i := range s.shards {
		s.shards[i].files = make(map[string]map[string][]byte)
		s.shards[i].usage = make(map[string]int64)
	}
	return s
}

func (s *Storage) shard(user string) *storageShard {
	return &s.shards[ShardOf(user)]
}

// Put stores a file for a user. It fails with ErrQuotaExceeded when the
// write would push the user past the per-tenant byte quota (overwrites are
// charged by the delta, so rewriting a file in place always fits).
func (s *Storage) Put(user, path string, data []byte) error {
	sh := s.shard(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.files[user]
	if !ok {
		m = make(map[string][]byte)
	}
	next := sh.usage[user] - int64(len(m[path])) + int64(len(data))
	if s.maxBytes > 0 && next > s.maxBytes {
		return fmt.Errorf("%w: tenant %q storage would reach %d bytes (quota %d)",
			ErrQuotaExceeded, user, next, s.maxBytes)
	}
	if !ok {
		sh.files[user] = m
	}
	m[path] = append([]byte(nil), data...)
	sh.usage[user] = next
	return nil
}

// Get retrieves a user's file.
func (s *Storage) Get(user, path string) ([]byte, error) {
	sh := s.shard(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	data, ok := sh.files[user][path]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, user, path)
	}
	return append([]byte(nil), data...), nil
}

// List returns a user's file paths, sorted.
func (s *Storage) List(user string) []string {
	sh := s.shard(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]string, 0, len(sh.files[user]))
	for p := range sh.files[user] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// UsageBytes returns a user's stored bytes (the billing and quota input).
func (s *Storage) UsageBytes(user string) int64 {
	sh := s.shard(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.usage[user]
}

// --------------------------------------------------------------------------
// Orders

// OrderStatus tracks a virtual drone order through the Figure 4 workflow.
type OrderStatus string

// Order statuses.
const (
	OrderPending   OrderStatus = "pending"
	OrderScheduled OrderStatus = "scheduled"
	OrderFlying    OrderStatus = "flying"
	OrderCompleted OrderStatus = "completed"
	OrderSaved     OrderStatus = "saved" // interrupted; resumable from VDR
)

// AccessInfo is what the portal provides once a drone takes off: how the
// user may connect to their virtual drone, much like a newly deployed
// cloud server.
type AccessInfo struct {
	VFCAddr string `json:"vfc-addr"`
	SSHAddr string `json:"ssh-addr"`
	VPNKey  string `json:"vpn-key"`
}

// Order is a virtual drone order.
type Order struct {
	ID         string          `json:"id"`
	User       string          `json:"user"`
	Name       string          `json:"name"` // virtual drone name
	Definition json.RawMessage `json:"definition"`
	Status     OrderStatus     `json:"status"`
	// WindowStartS/WindowEndS estimate when the drone reaches the order's
	// first waypoint, as seconds from flight start.
	WindowStartS float64    `json:"window-start-s"`
	WindowEndS   float64    `json:"window-end-s"`
	Access       AccessInfo `json:"access"`
	// EstimatedCharge previews the energy bill for the allotment.
	EstimatedCharge float64 `json:"estimated-charge"`

	// gen counts committed mutations; Update uses it to detect conflicting
	// writers without holding the lock across the caller's function.
	gen uint64
}

// Orders tracks portal orders, sharded by ordering tenant. IDs are
// shard-prefixed — ord-SS-NNNNNN — so every shard can assign IDs from its
// own counter with no cross-shard coordination and no collisions: the
// (shard, counter) pair is unique by construction, and IDs within a shard
// are monotonically increasing.
type Orders struct {
	maxOrders int
	shards    [NumShards]orderShard
}

type orderShard struct {
	mu      sync.Mutex
	next    int
	orders  map[string]*Order
	perUser map[string]int
}

// NewOrders creates an empty order book with default quotas.
func NewOrders() *Orders { return NewOrdersWith(DefaultQuotas()) }

// NewOrdersWith creates an empty order book enforcing q's per-tenant order
// quota.
func NewOrdersWith(q Quotas) *Orders {
	o := &Orders{maxOrders: q.MaxOrdersPerTenant}
	for i := range o.shards {
		o.shards[i].orders = make(map[string]*Order)
		o.shards[i].perUser = make(map[string]int)
	}
	return o
}

// orderID builds the shard-prefixed ID.
func orderID(shard, seq int) string {
	return fmt.Sprintf("ord-%02d-%06d", shard, seq)
}

// shardForID routes an order ID back to the shard that minted it; ok is
// false for IDs no shard could have issued.
func (o *Orders) shardForID(id string) (*orderShard, bool) {
	rest, found := strings.CutPrefix(id, "ord-")
	if !found {
		return nil, false
	}
	idx := strings.IndexByte(rest, '-')
	if idx <= 0 {
		return nil, false
	}
	n, err := strconv.Atoi(rest[:idx])
	if err != nil || n < 0 || n >= NumShards {
		return nil, false
	}
	return &o.shards[n], true
}

// Create registers a new pending order and assigns its id. An empty name
// defaults to the id. The returned Order is the caller's private copy. It
// fails with ErrQuotaExceeded once the tenant reaches its order quota.
func (o *Orders) Create(user, name string, def json.RawMessage) (*Order, error) {
	shardIdx := ShardOf(user)
	sh := &o.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if o.maxOrders > 0 && sh.perUser[user] >= o.maxOrders {
		return nil, fmt.Errorf("%w: tenant %q already holds %d orders",
			ErrQuotaExceeded, user, sh.perUser[user])
	}
	sh.next++
	ord := &Order{
		ID:         orderID(shardIdx, sh.next),
		User:       user,
		Name:       name,
		Definition: append(json.RawMessage(nil), def...),
		Status:     OrderPending,
	}
	if ord.Name == "" {
		ord.Name = ord.ID
	}
	sh.orders[ord.ID] = ord
	sh.perUser[user]++
	cp := *ord
	return &cp, nil
}

// Get retrieves a snapshot of an order. Returning a copy keeps readers
// (e.g. handlers serializing the order) race-free against Update.
func (o *Orders) Get(id string) (*Order, error) {
	sh, ok := o.shardForID(id)
	if !ok {
		return nil, fmt.Errorf("%w: order %q", ErrNotFound, id)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ord, ok := sh.orders[id]
	if !ok {
		return nil, fmt.Errorf("%w: order %q", ErrNotFound, id)
	}
	cp := *ord
	return &cp, nil
}

// Update applies fn to an order atomically. fn runs on a private copy with
// no lock held — it may not observe other orders mid-change, and it cannot
// deadlock by calling back into Orders. The mutation commits only if no
// other writer got there first; on conflict the read-modify-write retries
// with a fresh copy.
func (o *Orders) Update(id string, fn func(*Order)) error {
	sh, ok := o.shardForID(id)
	if !ok {
		return fmt.Errorf("%w: order %q", ErrNotFound, id)
	}
	for {
		sh.mu.Lock()
		ord, ok := sh.orders[id]
		if !ok {
			sh.mu.Unlock()
			return fmt.Errorf("%w: order %q", ErrNotFound, id)
		}
		cp := *ord
		sh.mu.Unlock()

		fn(&cp)

		sh.mu.Lock()
		cur, ok := sh.orders[id]
		if !ok {
			sh.mu.Unlock()
			return fmt.Errorf("%w: order %q", ErrNotFound, id)
		}
		if cur.gen != cp.gen {
			sh.mu.Unlock()
			continue
		}
		cp.gen++
		*cur = cp
		sh.mu.Unlock()
		return nil
	}
}

// List returns orders sorted by id, optionally filtered by user ("" = all).
// A user filter touches only the owning shard; the full listing visits
// shards one at a time — never two locks at once.
func (o *Orders) List(user string) []Order {
	var out []Order
	if user != "" {
		sh := &o.shards[ShardOf(user)]
		sh.mu.Lock()
		for _, ord := range sh.orders {
			if ord.User == user {
				out = append(out, *ord)
			}
		}
		sh.mu.Unlock()
	} else {
		for i := range o.shards {
			sh := &o.shards[i]
			sh.mu.Lock()
			for _, ord := range sh.orders {
				out = append(out, *ord)
			}
			sh.mu.Unlock()
		}
	}
	if out == nil {
		out = []Order{}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Count returns how many orders user holds (the quota input).
func (o *Orders) Count(user string) int {
	sh := &o.shards[ShardOf(user)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.perUser[user]
}
