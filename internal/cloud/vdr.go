package cloud

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"androne/internal/container"
)

// The virtual drone repository stores checkpoints content-addressed: each
// entry is a small manifest referencing hashed layers in a BlobStore. A
// checkpoint splits along the same seams the paper's Docker prototype
// shares (§4): the base image reference, the installed app set under
// /data/, and the per-flight runtime state (progress, outputs). Layers that
// do not change between saves — the definition while an order repeats, the
// app set across a save/restore churn, the base reference across every
// drone in the fleet — are stored once and reference-counted, which is what
// makes checkpoint dedup a measurable number instead of a slide-ware claim.
//
// The pre-layered VDREntry API (Save/Load/Delete/List) is preserved as a
// compatibility shim: Load reassembles an entry bit-identical to what Save
// was handed, so the VDC's splice-detection contract (a checkpoint whose
// container name disagrees with its definition must not come up) holds
// unchanged through the new format. Checkpoints that do not round-trip the
// canonical container encoding — hand-built or corrupted test entries —
// fall back to a single opaque layer rather than guessing.

// FlightProgressPath is where the VDC persists per-flight progress inside
// a container. It changes every save, so the layer splitter keeps it out of
// the stable app-set layer; package core writes it (the constant lives here
// because core already imports cloud, not the other way around).
const FlightProgressPath = "/data/androne/progress.json"

// Layer kinds.
const (
	LayerDefinition = "definition" // the virtual drone definition JSON
	LayerBase       = "base"       // base image reference + limits
	LayerAppSet     = "appset"     // /data/ upper files (app + instance state)
	LayerState      = "state"      // everything else: progress, outputs
	LayerOpaque     = "opaque"     // non-canonical checkpoint, stored whole
)

// LayerRef points a manifest at one content-addressed layer.
type LayerRef struct {
	Kind   string `json:"kind"`
	Digest string `json:"digest"`
	Size   int64  `json:"size"`
}

// Manifest is a stored virtual drone: identity plus layer references. It is
// what the portal lists — a few hundred bytes regardless of checkpoint
// size.
type Manifest struct {
	Name string `json:"name"`
	// ContainerName is the name recorded inside the checkpoint, kept
	// separately so reassembly is exact; the VDC compares it against the
	// definition's identity on restore (splice detection).
	ContainerName string     `json:"container-name,omitempty"`
	Owner         string     `json:"owner"`
	SavedAt       time.Time  `json:"saved-at"`
	Completed     bool       `json:"completed"`
	Layers        []LayerRef `json:"layers"`
}

// VDREntry is the compatibility view of a stored virtual drone: its JSON
// definition plus, when it has flown before, its container checkpoint (diff
// from the base image) so it can be resumed on a later flight, on any drone
// hardware.
type VDREntry struct {
	Name       string    `json:"name"`
	Owner      string    `json:"owner"`
	Definition []byte    `json:"definition"`
	Checkpoint []byte    `json:"checkpoint,omitempty"`
	SavedAt    time.Time `json:"saved-at"`
	Completed  bool      `json:"completed"`
}

// VDR is the virtual drone repository.
type VDR struct {
	mu          sync.Mutex
	store       *BlobStore
	manifests   map[string]*Manifest
	ownerLayers map[string]int
	maxLayers   int // per-tenant live layer quota
}

// NewVDR creates a repository over a private blob store with default
// quotas.
func NewVDR() *VDR {
	return NewVDRWith(NewBlobStore(), DefaultQuotas())
}

// NewVDRWith creates a repository over store — shared stores are how
// dedup spans repositories (one service plane, many drones) — with q's
// per-tenant layer quota.
func NewVDRWith(store *BlobStore, q Quotas) *VDR {
	return &VDR{
		store:       store,
		manifests:   make(map[string]*Manifest),
		ownerLayers: make(map[string]int),
		maxLayers:   q.MaxVDRLayersPerTenant,
	}
}

// Store exposes the underlying blob store (dedup stats live there).
func (v *VDR) Store() *BlobStore { return v.store }

// layerPayload is a layer before it is content-addressed.
type layerPayload struct {
	kind string
	data []byte
}

// splitUpper partitions a checkpoint's writable layer: /data/ paths except
// the flight-progress file form the app-set layer, the rest the state
// layer. Keys are walked in sorted order so the split is deterministic.
func splitUpper(upper map[string][]byte) (appset, state map[string][]byte) {
	appset = make(map[string][]byte)
	state = make(map[string][]byte)
	paths := make([]string, 0, len(upper))
	for p := range upper {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if p != FlightProgressPath && strings.HasPrefix(p, "/data/") {
			appset[p] = upper[p]
		} else {
			state[p] = upper[p]
		}
	}
	return appset, state
}

// baseLayer is the shared part of every checkpoint on the same image.
type baseLayer struct {
	Image  string           `json:"image"`
	Limits container.Limits `json:"limits"`
}

// buildLayers decomposes an entry. The checkpoint splits into
// base/appset/state only when the decomposition provably reassembles to the
// original bytes; otherwise it is stored as one opaque layer.
func buildLayers(e VDREntry) (layers []layerPayload, containerName string) {
	if len(e.Definition) > 0 {
		layers = append(layers, layerPayload{LayerDefinition, e.Definition})
	}
	if len(e.Checkpoint) == 0 {
		return layers, ""
	}
	var cp container.Checkpoint
	if err := json.Unmarshal(e.Checkpoint, &cp); err == nil {
		appset, state := splitUpper(cp.Upper)
		base, berr := json.Marshal(baseLayer{Image: cp.ImageName, Limits: cp.Limits})
		appsetJSON, aerr := json.Marshal(appset)
		stateJSON, serr := json.Marshal(state)
		if berr == nil && aerr == nil && serr == nil {
			rebuilt, rerr := assembleCheckpoint(cp.Name, base, appsetJSON, stateJSON)
			if rerr == nil && bytes.Equal(rebuilt, e.Checkpoint) {
				split := layers
				split = append(split, layerPayload{LayerBase, base})
				if len(appset) > 0 {
					split = append(split, layerPayload{LayerAppSet, appsetJSON})
				}
				if len(state) > 0 {
					split = append(split, layerPayload{LayerState, stateJSON})
				}
				return split, cp.Name
			}
		}
	}
	return append(layers, layerPayload{LayerOpaque, e.Checkpoint}), ""
}

// assembleCheckpoint is the inverse of buildLayers' split: canonical
// container.Checkpoint JSON from the base layer plus merged upper maps.
func assembleCheckpoint(name string, base, appsetJSON, stateJSON []byte) ([]byte, error) {
	var b baseLayer
	if err := json.Unmarshal(base, &b); err != nil {
		return nil, fmt.Errorf("%w: base layer: %v", ErrLayerCorrupt, err)
	}
	upper := make(map[string][]byte)
	for _, part := range [][]byte{appsetJSON, stateJSON} {
		if part == nil {
			continue
		}
		var m map[string][]byte
		if err := json.Unmarshal(part, &m); err != nil {
			return nil, fmt.Errorf("%w: upper layer: %v", ErrLayerCorrupt, err)
		}
		paths := make([]string, 0, len(m))
		for p := range m {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			upper[p] = m[p]
		}
	}
	return json.Marshal(container.Checkpoint{
		Name: name, ImageName: b.Image, Limits: b.Limits, Upper: upper,
	})
}

// Save stores or updates a virtual drone entry, deduplicating its layers
// against everything already in the blob store. It fails with
// ErrQuotaExceeded when the entry would push its owner past the per-tenant
// layer quota (the previous generation of the same entry is counted as
// replaced, so steady-state churn needs no headroom).
func (v *VDR) Save(e VDREntry) error {
	if err := v.save(e); err != nil {
		return err
	}
	st := v.store.Stats()
	mVDRDedupRatio.Set(st.DedupRatio())
	mVDRLiveBytes.Set(float64(st.LiveBytes))
	return nil
}

func (v *VDR) save(e VDREntry) error {
	layers, containerName := buildLayers(e)

	v.mu.Lock()
	defer v.mu.Unlock()
	old := v.manifests[e.Name]
	owned := v.ownerLayers[e.Owner]
	if old != nil && old.Owner == e.Owner {
		owned -= len(old.Layers)
	}
	if v.maxLayers > 0 && owned+len(layers) > v.maxLayers {
		return fmt.Errorf("%w: tenant %q holds %d VDR layers, +%d exceeds the %d-layer quota",
			ErrQuotaExceeded, e.Owner, owned, len(layers), v.maxLayers)
	}

	m := &Manifest{
		Name:          e.Name,
		ContainerName: containerName,
		Owner:         e.Owner,
		SavedAt:       e.SavedAt,
		Completed:     e.Completed,
		Layers:        make([]LayerRef, 0, len(layers)),
	}
	for _, lp := range layers {
		d := v.store.Put(lp.data)
		m.Layers = append(m.Layers, LayerRef{Kind: lp.kind, Digest: d, Size: int64(len(lp.data))})
	}
	if old != nil {
		v.ownerLayers[old.Owner] -= len(old.Layers)
		for _, ref := range old.Layers {
			v.store.Unref(ref.Digest)
		}
	}
	v.manifests[e.Name] = m
	v.ownerLayers[e.Owner] += len(m.Layers)
	return nil
}

// assemble reconstructs the compatibility entry from a manifest copy.
func (v *VDR) assemble(m Manifest) (VDREntry, error) {
	e := VDREntry{Name: m.Name, Owner: m.Owner, SavedAt: m.SavedAt, Completed: m.Completed}
	var base, appset, state []byte
	for _, ref := range m.Layers {
		data, err := v.store.Get(ref.Digest)
		if err != nil {
			return VDREntry{}, fmt.Errorf("virtual drone %q, %s layer: %w", m.Name, ref.Kind, err)
		}
		switch ref.Kind {
		case LayerDefinition:
			e.Definition = data
		case LayerOpaque:
			e.Checkpoint = data
		case LayerBase:
			base = data
		case LayerAppSet:
			appset = data
		case LayerState:
			state = data
		default:
			return VDREntry{}, fmt.Errorf("%w: virtual drone %q has unknown layer kind %q",
				ErrLayerCorrupt, m.Name, ref.Kind)
		}
	}
	if base != nil {
		cp, err := assembleCheckpoint(m.ContainerName, base, appset, state)
		if err != nil {
			return VDREntry{}, fmt.Errorf("virtual drone %q: %w", m.Name, err)
		}
		e.Checkpoint = cp
	}
	return e, nil
}

// Load retrieves a virtual drone entry, reassembled bit-identical to what
// Save was handed and digest-verified layer by layer.
func (v *VDR) Load(name string) (VDREntry, error) {
	v.mu.Lock()
	m, ok := v.manifests[name]
	if !ok {
		v.mu.Unlock()
		return VDREntry{}, fmt.Errorf("%w: virtual drone %q", ErrNotFound, name)
	}
	cp := *m
	cp.Layers = append([]LayerRef(nil), m.Layers...)
	v.mu.Unlock()
	return v.assemble(cp)
}

// Manifest returns the stored manifest for name — the cheap, layer-level
// view the portal lists.
func (v *VDR) Manifest(name string) (Manifest, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.manifests[name]
	if !ok {
		return Manifest{}, fmt.Errorf("%w: virtual drone %q", ErrNotFound, name)
	}
	cp := *m
	cp.Layers = append([]LayerRef(nil), m.Layers...)
	return cp, nil
}

// Delete removes an entry and releases its layers; the last reference to a
// layer frees its bytes.
func (v *VDR) Delete(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.manifests[name]
	if !ok {
		return
	}
	v.ownerLayers[m.Owner] -= len(m.Layers)
	if v.ownerLayers[m.Owner] <= 0 {
		delete(v.ownerLayers, m.Owner)
	}
	for _, ref := range m.Layers {
		v.store.Unref(ref.Digest)
	}
	delete(v.manifests, name)
}

// OwnerLayers returns how many live layers owner holds (the quota input).
func (v *VDR) OwnerLayers(owner string) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.ownerLayers[owner]
}

// names returns manifest names sorted.
func (v *VDR) names() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.manifests))
	for n := range v.manifests {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// List returns fully reassembled entries sorted by name. Entries whose
// layers fail verification are returned with metadata only — listing must
// not hide a corrupt entry, and must not crash on one either.
func (v *VDR) List() []VDREntry {
	names := v.names()
	out := make([]VDREntry, 0, len(names))
	for _, n := range names {
		e, err := v.Load(n)
		if err != nil {
			if m, merr := v.Manifest(n); merr == nil {
				e = VDREntry{Name: m.Name, Owner: m.Owner, SavedAt: m.SavedAt, Completed: m.Completed}
			} else {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// Manifests returns all manifests sorted by name — the portal's listing
// path, which never touches layer bytes.
func (v *VDR) Manifests() []Manifest {
	names := v.names()
	out := make([]Manifest, 0, len(names))
	for _, n := range names {
		if m, err := v.Manifest(n); err == nil {
			out = append(out, m)
		}
	}
	return out
}
