package cloud

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRateLimiterTable drives the token bucket over an injected clock
// through refill and burst edge cases — no sleeping, exact arithmetic.
func TestRateLimiterTable(t *testing.T) {
	base := time.Unix(1000, 0)
	cases := []struct {
		name  string
		rate  float64
		burst float64
		// steps: advance the clock by dt, call Allow n times, expect ok
		// admitted.
		steps []struct {
			dt time.Duration
			n  int
			ok int
		}
	}{
		{
			name: "burst-then-dry", rate: 10, burst: 3,
			steps: []struct {
				dt time.Duration
				n  int
				ok int
			}{
				{0, 5, 3}, // full burst admits 3, then dry
			},
		},
		{
			name: "exact-refill", rate: 10, burst: 3,
			steps: []struct {
				dt time.Duration
				n  int
				ok int
			}{
				{0, 3, 3},
				{100 * time.Millisecond, 2, 1}, // 0.1s * 10/s = exactly 1 token
				{50 * time.Millisecond, 1, 0},  // 0.5 tokens: under the whole-token bar
				{50 * time.Millisecond, 1, 1},  // the other half arrives
			},
		},
		{
			name: "refill-caps-at-burst", rate: 100, burst: 2,
			steps: []struct {
				dt time.Duration
				n  int
				ok int
			}{
				{0, 2, 2},
				{time.Hour, 5, 2}, // an idle hour never banks more than burst
			},
		},
		{
			name: "sustained-rate", rate: 5, burst: 1,
			steps: []struct {
				dt time.Duration
				n  int
				ok int
			}{
				{0, 1, 1},
				{200 * time.Millisecond, 1, 1},
				{200 * time.Millisecond, 1, 1},
				{0, 1, 0}, // same instant: no refill
			},
		},
		{
			name: "zero-rate-disables", rate: 0, burst: 0,
			steps: []struct {
				dt time.Duration
				n  int
				ok int
			}{
				{0, 100, 100},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			now := base
			l := NewRateLimiter(tc.rate, tc.burst, func() time.Time { return now })
			for i, st := range tc.steps {
				now = now.Add(st.dt)
				admitted := 0
				for j := 0; j < st.n; j++ {
					if l.Allow("tenant") {
						admitted++
					}
				}
				if admitted != st.ok {
					t.Fatalf("step %d: admitted %d of %d, want %d (balance %v)",
						i, admitted, st.n, st.ok, l.Tokens("tenant"))
				}
			}
		})
	}
}

// TestRateLimiterPerTenantBuckets checks one tenant draining its bucket
// leaves a fresh tenant's burst untouched.
func TestRateLimiterPerTenantBuckets(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewRateLimiter(1, 2, func() time.Time { return now })
	for i := 0; i < 5; i++ {
		l.Allow("greedy")
	}
	if l.Allow("greedy") {
		t.Fatal("greedy should be dry")
	}
	if !l.Allow("modest") || !l.Allow("modest") {
		t.Fatal("modest tenant's burst was consumed by greedy")
	}
}

// TestAdmissionQueueOverflowSheds saturates MaxInFlight with parked
// handlers, then exceeds MaxQueued from many goroutines: the overflow must
// shed 429 with Retry-After, and releasing the parked handlers must drain
// everything with no goroutine stuck. Run under -race in CI.
func TestAdmissionQueueOverflowSheds(t *testing.T) {
	adm := NewAdmission(AdmissionConfig{
		RatePerTenant: -1, // isolate the queue path from the rate limiter
		MaxInFlight:   2,
		MaxQueued:     3,
		MaxWait:       2 * time.Second,
		RetryAfter:    7 * time.Second,
	})
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	h := adm.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	do := func(tenant string) {
		defer wg.Done()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/api/orders", nil)
		req.Header.Set(TenantHeader, tenant)
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			ok.Add(1)
		case http.StatusTooManyRequests:
			shed.Add(1)
			if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra != 7 {
				t.Errorf("Retry-After = %q, want 7", rec.Header().Get("Retry-After"))
			}
		default:
			t.Errorf("status %d", rec.Code)
		}
	}

	// Fill both in-flight slots and wait until they are actually serving.
	wg.Add(2)
	go do("t-0")
	go do("t-1")
	<-entered
	<-entered

	// 8 more arrivals compete for 3 queue slots: at least 5 shed at once,
	// the rest drain when the parked handlers release.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go do("t-" + strconv.Itoa(2+i))
	}
	for deadline := time.Now().Add(5 * time.Second); shed.Load() < 5; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d shed (want >= 5)", shed.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < 3; i++ {
		<-entered // the queued requests get their turn
	}
	wg.Wait()
	if got := ok.Load() + shed.Load(); got != 10 {
		t.Fatalf("accounted %d of 10 requests (ok %d, shed %d)", got, ok.Load(), shed.Load())
	}
	if ok.Load() != 5 {
		t.Fatalf("ok = %d, want 5 (2 in flight + 3 queued)", ok.Load())
	}
}

// TestAdmissionMaxWaitSheds parks the only in-flight slot and checks a
// queued request is shed once MaxWait elapses instead of waiting forever.
func TestAdmissionMaxWaitSheds(t *testing.T) {
	adm := NewAdmission(AdmissionConfig{
		RatePerTenant: -1,
		MaxInFlight:   1,
		MaxQueued:     4,
		MaxWait:       10 * time.Millisecond,
	})
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	h := adm.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	}))
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/vdr", nil))
	}()
	<-entered

	rec := httptest.NewRecorder()
	start := time.Now()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/vdr", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if waited := time.Since(start); waited < 10*time.Millisecond {
		t.Fatalf("shed after %v, before MaxWait", waited)
	}
	close(release)
}

// TestTenantOf pins the identity fallback chain: header, then user query
// parameter, then the shared anonymous bucket.
func TestTenantOf(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/api/orders?user=bob", nil)
	req.Header.Set(TenantHeader, "alice")
	if got := TenantOf(req); got != "alice" {
		t.Fatalf("header tenant = %q", got)
	}
	req.Header.Del(TenantHeader)
	if got := TenantOf(req); got != "bob" {
		t.Fatalf("query tenant = %q", got)
	}
	if got := TenantOf(httptest.NewRequest(http.MethodGet, "/api/orders", nil)); got != "anon" {
		t.Fatalf("anonymous tenant = %q", got)
	}
}

// TestEndpointClassification pins the endpoint labels the latency
// histograms are keyed by.
func TestEndpointClassification(t *testing.T) {
	cases := map[string]string{
		"/api/apps":              "apps",
		"/api/apps/com.x.y":      "apps",
		"/api/orders":            "orders",
		"/api/orders/ord-03-000": "order",
		"/api/files/alice/a.jpg": "files",
		"/api/vdr":               "vdr",
		"/metrics":               "other",
	}
	for path, want := range cases {
		if got := endpointOf(httptest.NewRequest(http.MethodGet, path, nil)); got != want {
			t.Errorf("endpointOf(%s) = %q, want %q", path, got, want)
		}
	}
}

// TestBatchGroupCoalesces runs many concurrent reads of one key through
// the batch group and checks the expensive fn ran far fewer times than the
// number of callers while everyone got the same bytes.
func TestBatchGroupCoalesces(t *testing.T) {
	var g batchGroup
	var calls atomic.Int64
	gate := make(chan struct{})
	const callers = 32
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.Do("orders:alice", func() []byte {
				calls.Add(1)
				<-gate // hold the first call open so the rest pile on
				return []byte(`["order"]`)
			})
		}(i)
	}
	// Let the herd arrive, then release the in-flight call.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if n := calls.Load(); n >= callers {
		t.Fatalf("fn ran %d times for %d callers; nothing coalesced", n, callers)
	}
	for i := range results {
		if string(results[i]) != `["order"]` {
			t.Fatalf("caller %d got %q", i, results[i])
		}
	}
	// After the flight lands, a new call runs fn again (results are
	// shared, not cached).
	before := calls.Load()
	g.Do("orders:alice", func() []byte { calls.Add(1); return nil })
	if calls.Load() != before+1 {
		t.Fatal("batch group cached a completed result")
	}
}
