package android

import (
	"errors"
	"testing"

	"androne/internal/binder"
)

func bootVD(t *testing.T, d *binder.Driver, name string, opts ...Option) *Instance {
	t.Helper()
	ns, err := d.CreateNamespace(name)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Boot(ns, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestBootRegistersActivityManager(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	svcs := in.ServiceManager().Services()
	if len(svcs) != 1 || svcs[0] != ActivityService {
		t.Fatalf("services after boot = %v", svcs)
	}
}

func TestClientServiceLookup(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	c := NewClient(in.Namespace(), 10001)
	h, err := c.GetService(ActivityService)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Call(h, binder.CodePing, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetService("nope"); err == nil {
		t.Fatal("lookup of missing service succeeded")
	}
}

func TestPermissionModel(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	am := in.ActivityManager()

	const uid = 10001
	if am.CheckPermission(PermCamera, uid) {
		t.Fatal("ungranted permission allowed")
	}
	am.Grant(uid, PermCamera)
	if !am.CheckPermission(PermCamera, uid) {
		t.Fatal("granted permission denied")
	}
	am.Revoke(uid, PermCamera)
	if am.CheckPermission(PermCamera, uid) {
		t.Fatal("revoked permission allowed")
	}
	// System uid holds everything.
	if !am.CheckPermission(PermFlightControl, 0) {
		t.Fatal("system uid denied")
	}
}

func TestCheckPermissionOverBinder(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	in.ActivityManager().Grant(10001, PermLocation)

	c := NewClient(in.Namespace(), 500)
	h, err := c.GetService(ActivityService)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := c.Call(h, CmdCheckPermission, CheckPermissionData(PermLocation, 10001))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "granted" {
		t.Fatalf("check = %q", out)
	}
	out, _, err = c.Call(h, CmdCheckPermission, CheckPermissionData(PermCamera, 10001))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "denied" {
		t.Fatalf("check = %q", out)
	}
	// Malformed payloads are rejected, not crash.
	if _, _, err := c.Call(h, CmdCheckPermission, []byte("nodelimiter")); err == nil {
		t.Fatal("malformed CheckPermission accepted")
	}
}

type recordingApp struct {
	created   int
	destroyed int
	lastSaved []byte
	state     []byte
}

func (r *recordingApp) OnCreate(app *App, saved []byte) {
	r.created++
	r.lastSaved = saved
}
func (r *recordingApp) OnSaveInstanceState(app *App) []byte { return r.state }
func (r *recordingApp) OnDestroy(app *App)                  { r.destroyed++ }

func TestAppLifecycle(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	rec := &recordingApp{state: []byte("progress=2/5")}
	app := in.Install("com.example.survey", 10001, rec)

	if app.State() != AppStopped {
		t.Fatalf("initial state = %v", app.State())
	}
	if err := in.StartApp("com.example.survey"); err != nil {
		t.Fatal(err)
	}
	if app.State() != AppRunning {
		t.Fatalf("state = %v", app.State())
	}
	if rec.created != 1 {
		t.Fatalf("created = %d", rec.created)
	}
	if rec.lastSaved != nil {
		t.Fatalf("first start got saved state %q", rec.lastSaved)
	}
	if err := in.StartApp("com.example.survey"); !errors.Is(err, ErrAppRunning) {
		t.Fatalf("double start: %v", err)
	}

	// Graceful stop saves instance state.
	if err := in.StopApp("com.example.survey"); err != nil {
		t.Fatal(err)
	}
	if app.State() != AppStopped {
		t.Fatalf("state = %v", app.State())
	}
	if rec.destroyed != 1 {
		t.Fatalf("destroyed = %d", rec.destroyed)
	}
	if string(app.SavedState()) != "progress=2/5" {
		t.Fatalf("saved = %q", app.SavedState())
	}

	// Restart delivers the saved state to onCreate: the mechanism that
	// resumes virtual drones on a later flight.
	if err := in.StartApp("com.example.survey"); err != nil {
		t.Fatal(err)
	}
	if string(rec.lastSaved) != "progress=2/5" {
		t.Fatalf("restored state = %q", rec.lastSaved)
	}
}

func TestStopAppIdempotent(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	in.Install("a", 10001, nil)
	if err := in.StopApp("a"); err != nil {
		t.Fatalf("stopping stopped app: %v", err)
	}
	if err := in.StopApp("missing"); !errors.Is(err, ErrNoApp) {
		t.Fatalf("err = %v", err)
	}
}

func TestKillProcess(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	rec := &recordingApp{state: []byte("should-not-save")}
	app := in.Install("com.example.rogue", 10001, rec)
	if err := in.StartApp("com.example.rogue"); err != nil {
		t.Fatal(err)
	}
	pid := app.Client().Proc().PID()

	in.ActivityManager().KillProcess(pid)
	if app.State() != AppKilled {
		t.Fatalf("state after kill = %v", app.State())
	}
	// Kill does NOT run lifecycle callbacks: no save, no destroy.
	if rec.destroyed != 0 {
		t.Fatal("kill ran onDestroy")
	}
	if app.SavedState() != nil && len(app.SavedState()) > 0 {
		t.Fatalf("kill saved state %q", app.SavedState())
	}
}

func TestKillProcessOverBinder(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	app := in.Install("com.example.rogue", 10001, nil)
	if err := in.StartApp("com.example.rogue"); err != nil {
		t.Fatal(err)
	}
	pid := app.Client().Proc().PID()

	sys := NewClient(in.Namespace(), 0)
	h, err := sys.GetService(ActivityService)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Call(h, CmdKillProcess, []byte(itoa(pid))); err != nil {
		t.Fatal(err)
	}
	if app.State() != AppKilled {
		t.Fatalf("state = %v", app.State())
	}
}

func TestSetSavedStateForVDRRestore(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	rec := &recordingApp{}
	app := in.Install("com.example.survey", 10001, rec)
	app.SetSavedState([]byte("from-vdr"))
	if err := in.StartApp("com.example.survey"); err != nil {
		t.Fatal(err)
	}
	if string(rec.lastSaved) != "from-vdr" {
		t.Fatalf("restored = %q", rec.lastSaved)
	}
}

func TestShutdownStopsAllApps(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	a := in.Install("a", 10001, nil)
	b := in.Install("b", 10002, nil)
	if err := in.StartApp("a"); err != nil {
		t.Fatal(err)
	}
	if err := in.StartApp("b"); err != nil {
		t.Fatal(err)
	}
	in.Shutdown()
	if a.State() != AppStopped || b.State() != AppStopped {
		t.Fatalf("states = %v, %v", a.State(), b.State())
	}
}

func TestTwoInstancesIsolated(t *testing.T) {
	d := binder.NewDriver()
	in1 := bootVD(t, d, "vd1")
	in2 := bootVD(t, d, "vd2")

	// A service registered in vd1 is invisible in vd2.
	c1 := NewClient(in1.Namespace(), 10001)
	node := c1.Proc().NewNode("mysvc", func(txn binder.Txn) (binder.Reply, error) {
		return binder.Reply{Data: []byte("vd1")}, nil
	})
	if err := c1.AddService("mysvc", node); err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(in2.Namespace(), 10001)
	if _, err := c2.GetService("mysvc"); err == nil {
		t.Fatal("cross-container service lookup succeeded")
	}

	// Permissions are per-container.
	in1.ActivityManager().Grant(10001, PermCamera)
	if in2.ActivityManager().CheckPermission(PermCamera, 10001) {
		t.Fatal("permission leaked across containers")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestServiceManagerPrunesDeadServices(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	owner := NewClient(in.Namespace(), 10001)
	node := owner.Proc().NewNode("flaky", func(binder.Txn) (binder.Reply, error) {
		return binder.Reply{}, nil
	})
	if err := owner.AddService("flaky", node); err != nil {
		t.Fatal(err)
	}
	c := NewClient(in.Namespace(), 10002)
	if _, err := c.GetService("flaky"); err != nil {
		t.Fatal(err)
	}
	// The service's process crashes: the registration disappears.
	owner.Proc().Exit()
	if _, err := c.GetService("flaky"); err == nil {
		t.Fatal("dead service still registered")
	}
	for _, s := range in.ServiceManager().Services() {
		if s == "flaky" {
			t.Fatal("dead service listed")
		}
	}
}

func TestReRegisterAfterDeath(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	oldOwner := NewClient(in.Namespace(), 10001)
	oldNode := oldOwner.Proc().NewNode("svc", func(binder.Txn) (binder.Reply, error) {
		return binder.Reply{Data: []byte("old")}, nil
	})
	if err := oldOwner.AddService("svc", oldNode); err != nil {
		t.Fatal(err)
	}
	// Replacement registers, then the old process dies: the death callback
	// must not remove the new registration.
	newOwner := NewClient(in.Namespace(), 10003)
	newNode := newOwner.Proc().NewNode("svc", func(binder.Txn) (binder.Reply, error) {
		return binder.Reply{Data: []byte("new")}, nil
	})
	if err := newOwner.AddService("svc", newNode); err != nil {
		t.Fatal(err)
	}
	oldOwner.Proc().Exit()
	c := NewClient(in.Namespace(), 10002)
	h, err := c.GetService("svc")
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := c.Call(h, binder.CodeUser, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "new" {
		t.Fatalf("got %q", out)
	}
}

func TestServiceManagerProtocolExtras(t *testing.T) {
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	c := NewClient(in.Namespace(), 10001)

	// CheckService: absent vs present (no error either way).
	out, _, err := c.Proc().Transact(binder.ContextManagerHandle, binder.CodeCheckService, []byte("nope"), nil)
	if err != nil || string(out) != "absent" {
		t.Fatalf("check absent = %q, %v", out, err)
	}
	node := c.Proc().NewNode("svc", func(binder.Txn) (binder.Reply, error) { return binder.Reply{}, nil })
	if err := c.AddService("svc", node); err != nil {
		t.Fatal(err)
	}
	_, hs, err := c.Proc().Transact(binder.ContextManagerHandle, binder.CodeCheckService, []byte("svc"), nil)
	if err != nil || len(hs) != 1 {
		t.Fatalf("check present: %v handles, %v", hs, err)
	}

	// ListServices over Binder.
	out, _, err = c.Proc().Transact(binder.ContextManagerHandle, binder.CodeListServices, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "activity,svc" {
		t.Fatalf("list = %q", out)
	}

	// Unknown codes are errors on both managers.
	if _, _, err := c.Proc().Transact(binder.ContextManagerHandle, 9999, nil, nil); err == nil {
		t.Fatal("unknown SM code accepted")
	}
	h, _ := c.GetService(ActivityService)
	if _, _, err := c.Call(h, 9999, nil); err == nil {
		t.Fatal("unknown AM code accepted")
	}
	// Malformed AddService (no object).
	if _, _, err := c.Proc().Transact(binder.ContextManagerHandle, binder.CodeAddService, []byte("x"), nil); err == nil {
		t.Fatal("AddService without object accepted")
	}
	// Bad uid / bad pid payloads.
	if _, _, err := c.Call(h, CmdCheckPermission, []byte("perm\x00notanumber")); err == nil {
		t.Fatal("bad uid accepted")
	}
	if _, _, err := c.Call(h, CmdKillProcess, []byte("notanumber")); err == nil {
		t.Fatal("bad pid accepted")
	}
}

func TestAppStateStringsAndAccessors(t *testing.T) {
	for s, want := range map[AppState]string{
		AppStopped: "stopped", AppRunning: "running", AppKilled: "killed", AppState(9): "AppState(9)",
	} {
		if s.String() != want {
			t.Errorf("String(%d) = %q", int(s), s.String())
		}
	}
	d := binder.NewDriver()
	in := bootVD(t, d, "vd1")
	app := in.Install("pkg", 10001, LifecycleFuncs{})
	if app.Instance() != in {
		t.Fatal("Instance accessor")
	}
	if in.ServiceManager().Proc() == nil {
		t.Fatal("SM proc accessor")
	}
	// LifecycleFuncs with nil members and with set members.
	var created, saved, destroyed bool
	lf := LifecycleFuncs{
		Create:  func(*App, []byte) { created = true },
		Save:    func(*App) []byte { saved = true; return []byte("s") },
		Destroy: func(*App) { destroyed = true },
	}
	lf.OnCreate(app, nil)
	_ = lf.OnSaveInstanceState(app)
	lf.OnDestroy(app)
	if !created || !saved || !destroyed {
		t.Fatal("LifecycleFuncs not invoked")
	}
	if got := (LifecycleFuncs{}).OnSaveInstanceState(app); got != nil {
		t.Fatalf("nil Save returned %v", got)
	}
	// KillProcess on an unknown pid is a no-op.
	in.ActivityManager().KillProcess(999999)
}
