// Package android models the Android Things userspace layers AnDrone builds
// on: the ServiceManager (Binder's Context Manager), the ActivityManager
// with its service permission model, the SystemServer that starts services,
// and the app/activity lifecycle (onSaveInstanceState) that AnDrone uses to
// save and restore virtual drone state.
//
// Apps do not interact with hardware devices directly but via system
// services reached through Binder — the property that lets AnDrone decouple
// devices from the rest of the execution environment and centralize device
// services in the device container.
package android

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"androne/internal/binder"
)

// Well-known service names.
const (
	ActivityService = "activity"
)

// ActivityManager protocol codes (on top of binder.CodeUser).
const (
	CmdCheckPermission = binder.CodeUser + iota
	CmdKillProcess
)

// Errors.
var (
	ErrNoApp      = errors.New("android: no such app")
	ErrAppRunning = errors.New("android: app already running")
)

// ---------------------------------------------------------------------------
// ServiceManager

// PublishHook lets AnDrone customize ServiceManager registration behaviour:
// the device container's ServiceManager publishes whitelisted device
// services to all namespaces, and virtual drone ServiceManagers publish
// their ActivityManager to the device container. A hook error fails the
// registration (the entry is rolled back): a half-published service — in
// particular an ActivityManager the device container cannot reach for
// permission checks — must not linger looking healthy.
type PublishHook func(sm *ServiceManager, name string, h binder.Handle) error

// ServiceManager is the userspace Context Manager: it retains the mapping of
// service names to handles given at registration time and hands out
// references on request.
type ServiceManager struct {
	proc *binder.Proc
	node *binder.Node

	mu       sync.Mutex
	services map[string]*binder.Node
	hook     PublishHook
}

// NewServiceManager starts a ServiceManager in the namespace and registers
// it as the namespace's Context Manager. hook, if non-nil, runs after each
// successful registration.
func NewServiceManager(ns *binder.Namespace, hook PublishHook) (*ServiceManager, error) {
	sm := &ServiceManager{services: make(map[string]*binder.Node), hook: hook}
	sm.proc = ns.Attach(0) // system uid
	sm.node = sm.proc.NewNode("servicemanager:"+ns.Name(), sm.handleTxn)
	if err := sm.proc.BecomeContextManager(sm.node); err != nil {
		return nil, err
	}
	return sm, nil
}

// Proc returns the manager's Binder process, used by publish hooks to issue
// ioctls.
func (sm *ServiceManager) Proc() *binder.Proc { return sm.proc }

func (sm *ServiceManager) handleTxn(txn binder.Txn) (binder.Reply, error) {
	switch txn.Code {
	case binder.CodeAddService:
		if len(txn.Objects) != 1 {
			return binder.Reply{}, fmt.Errorf("android: AddService wants 1 object, got %d", len(txn.Objects))
		}
		name := string(txn.Data)
		node, err := sm.proc.NodeFor(txn.Objects[0])
		if err != nil {
			return binder.Reply{}, err
		}
		sm.mu.Lock()
		sm.services[name] = node
		hook := sm.hook
		sm.mu.Unlock()
		// Drop the registration if the service's process dies, via Binder's
		// death notification.
		_ = sm.proc.LinkToDeath(txn.Objects[0], func() {
			sm.mu.Lock()
			if sm.services[name] == node {
				delete(sm.services, name)
			}
			sm.mu.Unlock()
		})
		if hook != nil {
			if err := hook(sm, name, txn.Objects[0]); err != nil {
				// Roll the registration back so a lookup cannot find a
				// service whose cross-namespace publication failed.
				sm.mu.Lock()
				if sm.services[name] == node {
					delete(sm.services, name)
				}
				sm.mu.Unlock()
				return binder.Reply{}, fmt.Errorf("android: publish hook for %q: %w", name, err)
			}
		}
		return binder.Reply{}, nil
	case binder.CodeGetService, binder.CodeCheckService:
		sm.mu.Lock()
		node, ok := sm.services[string(txn.Data)]
		sm.mu.Unlock()
		if !ok {
			if txn.Code == binder.CodeCheckService {
				return binder.Reply{Data: []byte("absent")}, nil
			}
			return binder.Reply{}, fmt.Errorf("android: no service %q", txn.Data)
		}
		return binder.Reply{Objects: []*binder.Node{node}}, nil
	case binder.CodeListServices:
		sm.mu.Lock()
		names := make([]string, 0, len(sm.services))
		for n := range sm.services {
			names = append(names, n)
		}
		sm.mu.Unlock()
		sort.Strings(names)
		return binder.Reply{Data: []byte(join(names))}, nil
	case binder.CodePing:
		return binder.Reply{}, nil
	}
	return binder.Reply{}, fmt.Errorf("android: servicemanager: unknown code %d", txn.Code)
}

// Services returns the registered service names, sorted.
func (sm *ServiceManager) Services() []string {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	names := make([]string, 0, len(sm.services))
	for n := range sm.services {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------------------
// Client

// Client is a Binder client within a container: an app process or a native
// daemon using the framework's service lookup path.
type Client struct {
	proc *binder.Proc
}

// NewClient attaches a client process with the given uid in the namespace.
func NewClient(ns *binder.Namespace, uid int) *Client {
	return &Client{proc: ns.Attach(uid)}
}

// Proc exposes the underlying Binder process.
func (c *Client) Proc() *binder.Proc { return c.proc }

// GetService asks the namespace's ServiceManager for a handle to name.
func (c *Client) GetService(name string) (binder.Handle, error) {
	_, hs, err := c.proc.Transact(binder.ContextManagerHandle, binder.CodeGetService, []byte(name), nil)
	if err != nil {
		return 0, err
	}
	if len(hs) != 1 {
		return 0, fmt.Errorf("android: GetService(%q) returned %d handles", name, len(hs))
	}
	return hs[0], nil
}

// AddService registers a local node with the namespace's ServiceManager.
func (c *Client) AddService(name string, node *binder.Node) error {
	_, _, err := c.proc.Transact(binder.ContextManagerHandle, binder.CodeAddService, []byte(name), []*binder.Node{node})
	return err
}

// Call transacts with a held handle.
func (c *Client) Call(h binder.Handle, code uint32, data []byte) ([]byte, []binder.Handle, error) {
	return c.proc.Transact(h, code, data, nil)
}

// ---------------------------------------------------------------------------
// ActivityManager

// Permission names for the prototype's devices, mirroring Android's.
const (
	PermCamera        = "android.permission.CAMERA"
	PermLocation      = "android.permission.ACCESS_FINE_LOCATION"
	PermAudio         = "android.permission.RECORD_AUDIO"
	PermSensors       = "android.permission.BODY_SENSORS"
	PermFlightControl = "androne.permission.FLIGHT_CONTROL"
)

// ActivityManager manages app processes and answers permission checks. In
// AnDrone each container runs its own ActivityManager, which knows the
// permissions of the apps in that container.
type ActivityManager struct {
	container string
	proc      *binder.Proc
	node      *binder.Node

	mu      sync.Mutex
	granted map[int]map[string]bool // uid -> permission set
	procs   map[int]*App            // pid -> app
}

// NewActivityManager starts an ActivityManager in the namespace and
// registers it with the local ServiceManager (which may, via its publish
// hook, also publish it to the device container).
func NewActivityManager(ns *binder.Namespace) (*ActivityManager, error) {
	am := &ActivityManager{
		container: ns.Name(),
		granted:   make(map[int]map[string]bool),
		procs:     make(map[int]*App),
	}
	am.proc = ns.Attach(0)
	am.node = am.proc.NewNode("activitymanager:"+ns.Name(), am.handleTxn)
	c := &Client{proc: am.proc}
	if err := c.AddService(ActivityService, am.node); err != nil {
		return nil, err
	}
	return am, nil
}

func (am *ActivityManager) handleTxn(txn binder.Txn) (binder.Reply, error) {
	switch txn.Code {
	case CmdCheckPermission:
		// Data: "<permission>\x00<uid>"
		parts := bytes.SplitN(txn.Data, []byte{0}, 2)
		if len(parts) != 2 {
			return binder.Reply{}, errors.New("android: malformed CheckPermission")
		}
		uid, err := strconv.Atoi(string(parts[1]))
		if err != nil {
			return binder.Reply{}, fmt.Errorf("android: bad uid: %w", err)
		}
		// The uid here names the subject being queried ABOUT, not the
		// caller: devcon derives it from its own Binder-stamped sender
		// before bridging the query across containers. The caller's own
		// identity is txn.Sender, which gates nothing on this path.
		if am.CheckPermission(string(parts[0]), uid) { //vet:allow sendertaint uid is the query subject forwarded by devcon, not the caller identity
			return binder.Reply{Data: []byte("granted")}, nil
		}
		return binder.Reply{Data: []byte("denied")}, nil
	case CmdKillProcess:
		pid, err := strconv.Atoi(string(txn.Data))
		if err != nil {
			return binder.Reply{}, fmt.Errorf("android: bad pid: %w", err)
		}
		am.KillProcess(pid)
		return binder.Reply{}, nil
	case binder.CodePing:
		return binder.Reply{}, nil
	}
	return binder.Reply{}, fmt.Errorf("android: activitymanager: unknown code %d", txn.Code)
}

// Grant grants a permission to a uid, as the package installer does from a
// manifest.
func (am *ActivityManager) Grant(uid int, perm string) {
	am.mu.Lock()
	defer am.mu.Unlock()
	set, ok := am.granted[uid]
	if !ok {
		set = make(map[string]bool)
		am.granted[uid] = set
	}
	set[perm] = true
}

// Revoke removes a permission from a uid.
func (am *ActivityManager) Revoke(uid int, perm string) {
	am.mu.Lock()
	defer am.mu.Unlock()
	if set, ok := am.granted[uid]; ok {
		delete(set, perm)
	}
}

// CheckPermission reports whether uid holds perm. System uid 0 holds
// everything.
func (am *ActivityManager) CheckPermission(perm string, uid int) bool {
	if uid == 0 {
		return true
	}
	am.mu.Lock()
	defer am.mu.Unlock()
	return am.granted[uid][perm]
}

// CheckPermissionData encodes a CheckPermission request payload.
func CheckPermissionData(perm string, uid int) []byte {
	return append(append([]byte(perm), 0), []byte(strconv.Itoa(uid))...)
}

// KillProcess force-stops the app owning pid, without running lifecycle
// callbacks — the enforcement path the VDC uses when an app ignores a
// device-access revocation notice.
func (am *ActivityManager) KillProcess(pid int) {
	am.mu.Lock()
	app := am.procs[pid]
	delete(am.procs, pid)
	am.mu.Unlock()
	if app != nil {
		app.kill()
	}
}

// ---------------------------------------------------------------------------
// Apps and lifecycle

// AppState is an app's lifecycle state.
type AppState int

// App lifecycle states.
const (
	AppStopped AppState = iota
	AppRunning
	AppKilled
)

func (s AppState) String() string {
	switch s {
	case AppStopped:
		return "stopped"
	case AppRunning:
		return "running"
	case AppKilled:
		return "killed"
	}
	return fmt.Sprintf("AppState(%d)", int(s))
}

// Lifecycle is the subset of the Android activity lifecycle AnDrone relies
// on. OnCreate receives any saved instance state from a previous run;
// OnSaveInstanceState is called before termination and its result is
// preserved, which is how virtual drones are saved to the VDR and resumed
// on a later flight.
type Lifecycle interface {
	OnCreate(app *App, savedState []byte)
	OnSaveInstanceState(app *App) []byte
	OnDestroy(app *App)
}

// LifecycleFuncs adapts plain functions to Lifecycle; nil members are no-ops.
type LifecycleFuncs struct {
	Create  func(app *App, savedState []byte)
	Save    func(app *App) []byte
	Destroy func(app *App)
}

// OnCreate implements Lifecycle.
func (l LifecycleFuncs) OnCreate(app *App, saved []byte) {
	if l.Create != nil {
		l.Create(app, saved)
	}
}

// OnSaveInstanceState implements Lifecycle.
func (l LifecycleFuncs) OnSaveInstanceState(app *App) []byte {
	if l.Save != nil {
		return l.Save(app)
	}
	return nil
}

// OnDestroy implements Lifecycle.
func (l LifecycleFuncs) OnDestroy(app *App) {
	if l.Destroy != nil {
		l.Destroy(app)
	}
}

// App is an installed application: a package name, a uid, a Binder client
// process, and lifecycle callbacks.
type App struct {
	Package string
	UID     int

	inst *Instance
	lc   Lifecycle

	mu     sync.Mutex
	state  AppState
	client *Client
	saved  []byte
}

// State returns the app's lifecycle state.
func (a *App) State() AppState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// Client returns the app's Binder client while running, or nil.
func (a *App) Client() *Client {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.client
}

// SavedState returns the most recent onSaveInstanceState result.
func (a *App) SavedState() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte(nil), a.saved...)
}

// SetSavedState seeds the saved state, used when restoring a virtual drone
// from the VDR.
func (a *App) SetSavedState(b []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.saved = append([]byte(nil), b...)
}

// Instance returns the Android instance the app is installed in.
func (a *App) Instance() *Instance { return a.inst }

func (a *App) kill() {
	a.mu.Lock()
	if a.state != AppRunning {
		a.mu.Unlock()
		return
	}
	client := a.client
	a.client = nil
	a.state = AppKilled
	a.mu.Unlock()
	// Exit fires binder death-link callbacks, which may call back into this
	// app or its instance; never hold a.mu across it.
	if client != nil {
		client.proc.Exit()
	}
}

// ---------------------------------------------------------------------------
// Instance (SystemServer)

// Instance is a booted Android Things environment inside one container
// namespace: a ServiceManager, an ActivityManager, and installed apps.
// AnDrone modifies init files and SystemServer so that virtual drone
// instances do not start their own device services; the WithDeviceServices
// option restores vanilla behaviour for the device container.
type Instance struct {
	ns *binder.Namespace
	sm *ServiceManager
	am *ActivityManager

	mu   sync.Mutex
	apps map[string]*App
}

// Option configures instance boot.
type Option func(*bootConfig)

type bootConfig struct {
	smHook PublishHook
}

// WithServiceManagerHook installs a registration hook on the instance's
// ServiceManager (used by the device container to publish device services,
// and by virtual drones to publish their ActivityManager to the device
// container).
func WithServiceManagerHook(h PublishHook) Option {
	return func(c *bootConfig) { c.smHook = h }
}

// Boot starts SystemServer for the namespace: ServiceManager first, then
// ActivityManager.
func Boot(ns *binder.Namespace, opts ...Option) (*Instance, error) {
	var cfg bootConfig
	for _, o := range opts {
		o(&cfg)
	}
	sm, err := NewServiceManager(ns, cfg.smHook)
	if err != nil {
		return nil, fmt.Errorf("android: boot %s: %w", ns.Name(), err)
	}
	am, err := NewActivityManager(ns)
	if err != nil {
		return nil, fmt.Errorf("android: boot %s: %w", ns.Name(), err)
	}
	return &Instance{ns: ns, sm: sm, am: am, apps: make(map[string]*App)}, nil
}

// Namespace returns the instance's Binder namespace.
func (in *Instance) Namespace() *binder.Namespace { return in.ns }

// ServiceManager returns the instance's ServiceManager.
func (in *Instance) ServiceManager() *ServiceManager { return in.sm }

// ActivityManager returns the instance's ActivityManager.
func (in *Instance) ActivityManager() *ActivityManager { return in.am }

// Install installs an app with the given uid and lifecycle.
func (in *Instance) Install(pkg string, uid int, lc Lifecycle) *App {
	app := &App{Package: pkg, UID: uid, inst: in, lc: lc, state: AppStopped}
	in.mu.Lock()
	in.apps[pkg] = app
	in.mu.Unlock()
	return app
}

// App retrieves an installed app.
func (in *Instance) App(pkg string) (*App, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	app, ok := in.apps[pkg]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoApp, pkg)
	}
	return app, nil
}

// Apps returns the installed package names, sorted.
func (in *Instance) Apps() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.apps))
	for p := range in.apps {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// StartApp launches an installed app: allocates its process and runs
// onCreate with any saved state.
func (in *Instance) StartApp(pkg string) error {
	app, err := in.App(pkg)
	if err != nil {
		return err
	}
	app.mu.Lock()
	if app.state == AppRunning {
		app.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrAppRunning, pkg)
	}
	app.client = NewClient(in.ns, app.UID)
	app.state = AppRunning
	saved := append([]byte(nil), app.saved...)
	lc := app.lc
	app.mu.Unlock()

	in.am.mu.Lock()
	in.am.procs[app.client.proc.PID()] = app
	in.am.mu.Unlock()

	if lc != nil {
		lc.OnCreate(app, saved)
	}
	return nil
}

// StopApp gracefully stops an app: onSaveInstanceState, then onDestroy,
// preserving the saved state for a future start.
func (in *Instance) StopApp(pkg string) error {
	app, err := in.App(pkg)
	if err != nil {
		return err
	}
	app.mu.Lock()
	if app.state != AppRunning {
		app.mu.Unlock()
		return nil
	}
	lc := app.lc
	client := app.client
	app.mu.Unlock()

	var saved []byte
	if lc != nil {
		saved = lc.OnSaveInstanceState(app)
	}

	app.mu.Lock()
	if saved != nil {
		app.saved = saved
	}
	app.state = AppStopped
	app.client = nil
	app.mu.Unlock()

	if lc != nil {
		lc.OnDestroy(app)
	}
	if client != nil {
		in.am.mu.Lock()
		delete(in.am.procs, client.proc.PID())
		in.am.mu.Unlock()
		client.proc.Exit()
	}
	return nil
}

// Shutdown stops all running apps gracefully.
func (in *Instance) Shutdown() {
	for _, pkg := range in.Apps() {
		_ = in.StopApp(pkg)
	}
}

func join(ss []string) string {
	var b bytes.Buffer
	for i, s := range ss {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s)
	}
	return b.String()
}
