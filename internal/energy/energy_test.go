package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHoverPowerRealistic(t *testing.T) {
	m := DefaultMultirotor()
	p := m.HoverPowerW(0)
	// F450-class hover draw: 100-250 W.
	if p < 100 || p > 250 {
		t.Fatalf("hover power = %.1f W", p)
	}
	// Payload increases power superlinearly (3/2 exponent).
	p1 := m.HoverPowerW(0.5)
	p2 := m.HoverPowerW(1.0)
	if p1 <= p || p2 <= p1 {
		t.Fatal("power not increasing with payload")
	}
	gain1 := p1 - p
	gain2 := p2 - p1
	if gain2 <= gain1 {
		t.Fatalf("marginal power not increasing: +%.1f then +%.1f", gain1, gain2)
	}
}

func TestEnduranceMatchesConsumerDrones(t *testing.T) {
	m := DefaultMultirotor()
	// 5000 mAh 3S ~ 200 kJ: the paper cites ~20 minute flights.
	e := m.EnduranceS(199800, 0) / 60
	if e < 12 || e > 35 {
		t.Fatalf("endurance = %.1f min", e)
	}
}

func TestCruisePower(t *testing.T) {
	m := DefaultMultirotor()
	hover := m.HoverPowerW(0)
	cruise := m.CruisePowerW(0, 8)
	if cruise <= hover {
		t.Fatal("cruise power not above hover")
	}
	if m.CruisePowerW(0, 0) != hover {
		t.Fatal("zero-speed cruise != hover")
	}
}

func TestLegEnergy(t *testing.T) {
	m := DefaultMultirotor()
	// 1 km at 10 m/s = 100 s of cruise power.
	e := m.LegEnergyJ(1000, 10, 0)
	want := m.CruisePowerW(0, 10) * 100
	if math.Abs(e-want) > 1e-9 {
		t.Fatalf("leg energy = %g, want %g", e, want)
	}
	if m.LegEnergyJ(1000, 0, 0) != 0 {
		t.Fatal("zero speed should cost nothing (degenerate)")
	}
}

func TestLegEnergyProperty(t *testing.T) {
	m := DefaultMultirotor()
	if err := quick.Check(func(rawD, rawV float64) bool {
		d := math.Abs(math.Mod(rawD, 10000))
		v := 1 + math.Abs(math.Mod(rawV, 15))
		e := m.LegEnergyJ(d, v, 0)
		// Energy is non-negative and monotone in distance.
		return e >= 0 && m.LegEnergyJ(d+100, v, 0) > e
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	m := DefaultMultirotor()
	r := m.RangeM(199800, 10, 0)
	// 200 kJ at ~10 m/s: several kilometers.
	if r < 3000 || r > 20000 {
		t.Fatalf("range = %.0f m", r)
	}
}

func TestSBCPowerWithin3PercentOfStock(t *testing.T) {
	// Figure 13: all idle configurations within 3% of stock.
	stock := StockIdleW()
	configs := []SBCConfig{
		{},
		{DevFlightContainers: true},
		{DevFlightContainers: true, VirtualDrones: 1},
		{DevFlightContainers: true, VirtualDrones: 2},
		{DevFlightContainers: true, VirtualDrones: 3},
	}
	for _, cfg := range configs {
		w := SBCPowerW(cfg)
		if rel := math.Abs(w-stock) / stock; rel > 0.03 {
			t.Errorf("config %+v: %.3f W is %.1f%% from stock", cfg, w, rel*100)
		}
	}
	// Three virtual drones: ~1.7 W.
	w3 := SBCPowerW(SBCConfig{DevFlightContainers: true, VirtualDrones: 3})
	if w3 < 1.65 || w3 > 1.75 {
		t.Fatalf("3-drone idle = %.3f W, want ~1.7", w3)
	}
	// Power is monotonically non-decreasing in the number of drones.
	for i := 0; i < 3; i++ {
		a := SBCPowerW(SBCConfig{DevFlightContainers: true, VirtualDrones: i})
		b := SBCPowerW(SBCConfig{DevFlightContainers: true, VirtualDrones: i + 1})
		if b < a {
			t.Fatalf("power decreased from %d to %d drones", i, i+1)
		}
	}
}

func TestSBCStressedSame(t *testing.T) {
	// §6.4: fully stressed, energy usage was the same 3.4 W across stock and
	// all AnDrone configurations.
	for drones := 0; drones <= 3; drones++ {
		w := SBCPowerW(SBCConfig{DevFlightContainers: true, VirtualDrones: drones, Stressed: true})
		if w != 3.4 {
			t.Fatalf("stressed with %d drones = %g W", drones, w)
		}
	}
	// Compute power is insignificant vs flight draw (>100 W).
	if SBCPowerW(SBCConfig{Stressed: true}) > DefaultMultirotor().HoverPowerW(0)*0.05 {
		t.Fatal("SBC draw not negligible vs flight power")
	}
}

func TestBilling(t *testing.T) {
	r := DefaultRates()
	u := Usage{
		EnergyJ:       45000, // the Figure 2 example allotment
		StorageBytes:  2 << 30,
		NetworkBytes:  1 << 30,
		StorageMonths: 1,
	}
	b := r.Compute(u)
	if b.EnergyCharge <= 0 || b.StorageCharge <= 0 || b.NetworkCharge <= 0 {
		t.Fatalf("bill = %v", b)
	}
	wantEnergy := 45000.0 / 3.6e6 * 25
	if math.Abs(b.EnergyCharge-wantEnergy) > 1e-9 {
		t.Fatalf("energy charge = %g, want %g", b.EnergyCharge, wantEnergy)
	}
	if math.Abs(b.Total()-(b.EnergyCharge+b.StorageCharge+b.NetworkCharge)) > 1e-12 {
		t.Fatal("total mismatch")
	}
	if b.String() == "" {
		t.Fatal("empty string")
	}
}

func TestMaxEnergyForCharge(t *testing.T) {
	r := DefaultRates()
	j := r.MaxEnergyForCharge(1.0) // one currency unit
	// Round trip: billing that energy costs the cap.
	b := r.Compute(Usage{EnergyJ: j})
	if math.Abs(b.EnergyCharge-1.0) > 1e-9 {
		t.Fatalf("round trip = %g", b.EnergyCharge)
	}
	free := Rates{}
	if !math.IsInf(free.MaxEnergyForCharge(1), 1) {
		t.Fatal("zero rate should allow unlimited energy")
	}
}

func TestAllotment(t *testing.T) {
	a := NewAllotment(600, 45000) // the Figure 2 example
	if a.Exhausted() {
		t.Fatal("fresh allotment exhausted")
	}
	if a.TimeLeftS() != 600 || a.EnergyLeftJ() != 45000 {
		t.Fatalf("left = %g s, %g J", a.TimeLeftS(), a.EnergyLeftJ())
	}
	a.Consume(100, 10000)
	if a.TimeLeftS() != 500 || a.EnergyLeftJ() != 35000 {
		t.Fatalf("after consume: %g s, %g J", a.TimeLeftS(), a.EnergyLeftJ())
	}
	tl, el := a.Low(0.2)
	if tl || el {
		t.Fatal("not low yet")
	}
	// Energy exhausts first: "whichever is exhausted first dictating when
	// control must be taken away."
	a.Consume(100, 36000)
	if !a.Exhausted() {
		t.Fatal("should be exhausted on energy")
	}
	if a.EnergyLeftJ() != 0 {
		t.Fatalf("energy left = %g, want clamped 0", a.EnergyLeftJ())
	}
	if a.TimeLeftS() != 400 {
		t.Fatalf("time left = %g", a.TimeLeftS())
	}
}

func TestAllotmentLowWarnings(t *testing.T) {
	a := NewAllotment(100, 1000)
	a.Consume(85, 500)
	tl, el := a.Low(0.2)
	if !tl {
		t.Fatal("time should be low at 15% remaining")
	}
	if el {
		t.Fatal("energy not low at 50% remaining")
	}
}
