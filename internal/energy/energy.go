// Package energy implements AnDrone's energy accounting: the multirotor
// energy consumption model of Dorling et al. (the basis of the cloud flight
// planner's routing costs), the single-board-computer power model behind the
// paper's §6.4 measurements, flight-time estimation, and the energy-based
// billing AnDrone uses in place of time-based cloud billing — "a drone's
// flight time is limited and can vary greatly, so AnDrone bills drone usage
// based on energy consumption, like a traditional energy utility service."
package energy

import (
	"fmt"
	"math"
	"sync"
)

// Physical constants.
const (
	Gravity    = 9.80665 // m/s^2
	AirDensity = 1.225   // kg/m^3
)

// Multirotor is the Dorling et al. drone energy model: hover power derives
// from momentum theory, P = (W+m)^{3/2} * sqrt(g^3 / (2 rho n A)) / eta,
// with W the frame+battery weight, m the payload, n the rotor count, and A
// the area of one rotor disk.
type Multirotor struct {
	FrameKg     float64 // frame + avionics mass
	BatteryKg   float64 // battery mass
	Rotors      int     // rotor count
	RotorAreaM2 float64 // area of one rotor disk
	Eta         float64 // power transfer efficiency (0, 1]
	ParasiticW  float64 // avionics/SBC constant draw
	DragN       float64 // equivalent flat-plate drag at 1 m/s (linear model)
}

// DefaultMultirotor matches the paper's F450 prototype.
func DefaultMultirotor() Multirotor {
	return Multirotor{
		FrameKg:     1.19,
		BatteryKg:   0.41,
		Rotors:      4,
		RotorAreaM2: math.Pi * 0.12 * 0.12,
		Eta:         0.60,
		ParasiticW:  3.4,
		DragN:       0.35,
	}
}

// HoverPowerW returns the electrical power to hover with the given payload.
func (m Multirotor) HoverPowerW(payloadKg float64) float64 {
	w := (m.FrameKg + m.BatteryKg + payloadKg) * Gravity
	perRotor := w / float64(m.Rotors)
	induced := float64(m.Rotors) * math.Pow(perRotor, 1.5) /
		math.Sqrt(2*AirDensity*m.RotorAreaM2)
	return induced/m.Eta + m.ParasiticW
}

// CruisePowerW returns power in forward flight at speed with payload: hover
// power plus drag power (drag force times airspeed through the powertrain).
func (m Multirotor) CruisePowerW(payloadKg, speedMS float64) float64 {
	return m.HoverPowerW(payloadKg) + m.DragN*speedMS*speedMS/m.Eta
}

// LegEnergyJ returns the energy to fly distM meters at speedMS with payload.
func (m Multirotor) LegEnergyJ(distM, speedMS, payloadKg float64) float64 {
	if speedMS <= 0 {
		return 0
	}
	return m.CruisePowerW(payloadKg, speedMS) * (distM / speedMS)
}

// HoverEnergyJ returns the energy to hover for the given seconds.
func (m Multirotor) HoverEnergyJ(seconds, payloadKg float64) float64 {
	return m.HoverPowerW(payloadKg) * seconds
}

// EnduranceS estimates hover endurance in seconds on batteryJ joules.
func (m Multirotor) EnduranceS(batteryJ, payloadKg float64) float64 {
	return batteryJ / m.HoverPowerW(payloadKg)
}

// RangeM estimates the distance flyable at speedMS on batteryJ joules.
func (m Multirotor) RangeM(batteryJ, speedMS, payloadKg float64) float64 {
	return batteryJ / m.CruisePowerW(payloadKg, speedMS) * speedMS
}

// --------------------------------------------------------------------------
// SBC power model (§6.4)

// SBCConfig describes one of the §6.4 measurement configurations.
type SBCConfig struct {
	// DevFlightContainers adds the device and flight containers.
	DevFlightContainers bool
	// VirtualDrones is the number of idle virtual drones running.
	VirtualDrones int
	// Stressed runs the stress+iperf workloads at full tilt.
	Stressed bool
}

// SBC power model constants calibrated to the paper: stock Android Things
// idles around 1.65 W; with three virtual drones AnDrone draws ~1.7 W (all
// configurations within 3% of stock); fully stressed, every configuration
// draws the same 3.4 W because the CPU is saturated regardless of how many
// containers share it.
const (
	sbcStockIdleW    = 1.652
	sbcPerContainerW = 0.010
	sbcDevFlightW    = 0.018
	sbcStressedW     = 3.4
)

// SBCPowerW returns the SBC's power draw for a configuration.
func SBCPowerW(cfg SBCConfig) float64 {
	if cfg.Stressed {
		return sbcStressedW
	}
	w := sbcStockIdleW
	if cfg.DevFlightContainers {
		w += sbcDevFlightW
	}
	w += float64(cfg.VirtualDrones) * sbcPerContainerW
	return w
}

// StockIdleW is the stock Android Things idle draw the figure normalizes to.
func StockIdleW() float64 { return sbcStockIdleW }

// --------------------------------------------------------------------------
// Billing

// Rates are AnDrone's utility-style prices.
type Rates struct {
	// EnergyPerKWh is the price per kilowatt-hour of drone energy.
	EnergyPerKWh float64
	// StoragePerGBMonth is the cloud storage price.
	StoragePerGBMonth float64
	// NetworkPerGB is the data transfer price.
	NetworkPerGB float64
}

// DefaultRates returns plausible consumer prices.
func DefaultRates() Rates {
	return Rates{EnergyPerKWh: 25.0, StoragePerGBMonth: 0.03, NetworkPerGB: 0.09}
}

// Usage is one virtual drone's metered consumption for a flight.
type Usage struct {
	EnergyJ       float64
	StorageBytes  int64
	NetworkBytes  int64
	StorageMonths float64
}

// Bill is an itemized charge.
type Bill struct {
	EnergyCharge  float64
	StorageCharge float64
	NetworkCharge float64
}

// Total returns the bill total.
func (b Bill) Total() float64 { return b.EnergyCharge + b.StorageCharge + b.NetworkCharge }

func (b Bill) String() string {
	return fmt.Sprintf("energy %.4f + storage %.4f + network %.4f = %.4f",
		b.EnergyCharge, b.StorageCharge, b.NetworkCharge, b.Total())
}

// Compute prices a usage record. Drone usage is billed on energy; storage
// and network are billed like regular cloud services.
func (r Rates) Compute(u Usage) Bill {
	const gb = 1 << 30
	return Bill{
		EnergyCharge:  u.EnergyJ / 3.6e6 * r.EnergyPerKWh,
		StorageCharge: float64(u.StorageBytes) / gb * u.StorageMonths * r.StoragePerGBMonth,
		NetworkCharge: float64(u.NetworkBytes) / gb * r.NetworkPerGB,
	}
}

// MaxEnergyForCharge inverts the energy charge: given a user's maximum
// billing charge, how many joules may their virtual drone consume at its
// waypoints. This is how the portal turns a price cap into the
// energy-allotted field of the virtual drone definition.
func (r Rates) MaxEnergyForCharge(maxCharge float64) float64 {
	if r.EnergyPerKWh <= 0 {
		return math.Inf(1)
	}
	return maxCharge / r.EnergyPerKWh * 3.6e6
}

// Allotment meters a virtual drone's energy and time budget during flight
// (the max-duration and energy-allotted fields of the definition).
type Allotment struct {
	MaxDurationS float64
	EnergyJ      float64

	mu    sync.Mutex
	usedS float64
	usedJ float64
}

// NewAllotment creates an allotment with the given budgets.
func NewAllotment(maxDurationS, energyJ float64) *Allotment {
	return &Allotment{MaxDurationS: maxDurationS, EnergyJ: energyJ}
}

// Consume records elapsed waypoint time and energy. It is safe for
// concurrent use: metering runs on the flight loop while the VDC reads
// budgets from request handlers.
func (a *Allotment) Consume(seconds, joules float64) {
	a.mu.Lock()
	a.usedS += seconds
	a.usedJ += joules
	a.mu.Unlock()
}

// Used returns the consumed seconds and joules so far.
func (a *Allotment) Used() (seconds, joules float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usedS, a.usedJ
}

// TimeLeftS returns remaining allotted seconds (never negative).
func (a *Allotment) TimeLeftS() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.timeLeftLocked()
}

func (a *Allotment) timeLeftLocked() float64 { return math.Max(0, a.MaxDurationS-a.usedS) }

// EnergyLeftJ returns remaining allotted joules (never negative).
func (a *Allotment) EnergyLeftJ() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.energyLeftLocked()
}

func (a *Allotment) energyLeftLocked() float64 { return math.Max(0, a.EnergyJ-a.usedJ) }

// Exhausted reports whether either budget is spent — "whichever is
// exhausted first dictating when control must be taken away."
func (a *Allotment) Exhausted() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usedS >= a.MaxDurationS || a.usedJ >= a.EnergyJ
}

// Low reports whether less than frac of either budget remains, driving the
// SDK's lowEnergyWarning and lowTimeWarning callbacks.
func (a *Allotment) Low(frac float64) (timeLow, energyLow bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.timeLeftLocked() < frac*a.MaxDurationS, a.energyLeftLocked() < frac*a.EnergyJ
}
