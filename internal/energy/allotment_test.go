package energy

import (
	"sync"
	"testing"
)

// Edge cases around the allotment budgets — the metering path the VDC
// trusts to decide when a virtual drone loses control.

func TestAllotmentZeroBudgets(t *testing.T) {
	a := NewAllotment(0, 0)
	if !a.Exhausted() {
		t.Fatalf("a zero allotment must start exhausted")
	}
	if a.TimeLeftS() != 0 || a.EnergyLeftJ() != 0 {
		t.Fatalf("zero allotment has leftovers: %g s, %g J", a.TimeLeftS(), a.EnergyLeftJ())
	}
	// Low with a zero denominator must not report low (0 < frac*0 is false)
	// — there is no budget to be low on, and Exhausted already fired.
	timeLow, energyLow := a.Low(0.2)
	if timeLow || energyLow {
		t.Fatalf("zero allotment reported low warnings: %v %v", timeLow, energyLow)
	}
}

func TestAllotmentZeroOneBudget(t *testing.T) {
	// Zero time budget but real energy: exhausted immediately on time.
	a := NewAllotment(0, 1000)
	if !a.Exhausted() {
		t.Fatalf("zero time budget must exhaust immediately")
	}
	// Zero energy budget but real time: same.
	a = NewAllotment(600, 0)
	if !a.Exhausted() {
		t.Fatalf("zero energy budget must exhaust immediately")
	}
}

func TestAllotmentDebitPastZero(t *testing.T) {
	a := NewAllotment(10, 100)
	a.Consume(25, 500) // one debit overshoots both budgets
	if !a.Exhausted() {
		t.Fatalf("overshot allotment not exhausted")
	}
	if got := a.TimeLeftS(); got != 0 {
		t.Fatalf("TimeLeftS went negative-ish: %g", got)
	}
	if got := a.EnergyLeftJ(); got != 0 {
		t.Fatalf("EnergyLeftJ went negative-ish: %g", got)
	}
	// The raw used totals keep the overshoot for billing.
	s, j := a.Used()
	if s != 25 || j != 500 {
		t.Fatalf("Used = %g s %g J, want 25 s 500 J", s, j)
	}
	// Further debits past zero stay clamped and exhausted.
	a.Consume(1, 1)
	if a.TimeLeftS() != 0 || a.EnergyLeftJ() != 0 || !a.Exhausted() {
		t.Fatalf("post-zero debit broke clamping")
	}
}

func TestAllotmentConcurrentDebits(t *testing.T) {
	const (
		workers = 8
		debits  = 1000
		perS    = 0.25
		perJ    = 2.0
	)
	a := NewAllotment(workers*debits*perS*2, workers*debits*perJ*2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < debits; i++ {
				a.Consume(perS, perJ)
				// Interleave reads so -race exercises reader/writer pairs.
				if i%100 == 0 {
					a.Exhausted()
					a.Low(0.2)
					a.TimeLeftS()
					a.EnergyLeftJ()
				}
			}
		}()
	}
	wg.Wait()
	s, j := a.Used()
	if s != workers*debits*perS || j != workers*debits*perJ {
		t.Fatalf("lost debits: %g s %g J", s, j)
	}
	if a.Exhausted() {
		t.Fatalf("allotment exhausted at half budget")
	}
}
