// Flight-recorder instrumentation for the binder plane. Transactions are
// the hottest path in the stack — and since the fleet de-contention pass
// they take no lock at all, so they are counted with PID-sharded padded
// atomic cells (telemetry.ShardedCount) that FlushMetrics folds in; trace
// events are reserved for the rare operations (publish ioctls and
// transaction failures). All emissions happen outside d.mu — Emit takes
// the recorder's own locks (enforced by the locksafe analyzer).

package binder

import "androne/internal/telemetry"

var (
	mTransactions = telemetry.NewCounter("androne_binder_transactions_total",
		"Binder transactions submitted via Transact.")
	mTransactErrors = telemetry.NewCounter("androne_binder_transaction_errors_total",
		"Binder transactions that failed (bad handle, dead node, oversized).")
	mPublishes = telemetry.NewCounter("androne_binder_publishes_total",
		"PUBLISH_TO_ALL_NS and PUBLISH_TO_DEV_CON ioctls executed.")
)

// Trace event kinds.
var (
	kTxnError      = telemetry.K("binder.txn-error")
	kPublishAllNS  = telemetry.K("binder.publish-all-ns")
	kPublishDevCon = telemetry.K("binder.publish-devcon")
)

// SetRecorder attaches a flight recorder to the driver. Call once during
// drone bring-up, before any process transacts.
func (d *Driver) SetRecorder(r *telemetry.Recorder) { d.tel = r }

// FlushMetrics folds the driver's sharded transaction count into the
// process counter. The drone's tick loop calls this so /metrics lags by at
// most one tick of transactions. Flush drains each cell with an atomic
// swap, so no driver lock is needed even against concurrent transactions.
func (d *Driver) FlushMetrics() {
	d.txns.Flush()
}
