package binder

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// testManager is a minimal ServiceManager used to exercise the driver: it
// speaks the context-manager protocol (AddService/GetService/ListServices).
type testManager struct {
	mu   sync.Mutex
	proc *Proc
	node *Node
	svcs map[string]*Node
	// addSenders records who performed each AddService, to verify the
	// driver's kernel-originated registrations.
	addSenders []Sender
}

func newTestManager(t *testing.T, ns *Namespace) *testManager {
	t.Helper()
	m := &testManager{svcs: make(map[string]*Node)}
	m.proc = ns.Attach(1000)
	m.node = m.proc.NewNode("servicemanager:"+ns.Name(), m.handle)
	if err := m.proc.BecomeContextManager(m.node); err != nil {
		t.Fatalf("BecomeContextManager(%s): %v", ns.Name(), err)
	}
	return m
}

func (m *testManager) handle(txn Txn) (Reply, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch txn.Code {
	case CodeAddService:
		if len(txn.Objects) != 1 {
			return Reply{}, fmt.Errorf("AddService: want 1 object, got %d", len(txn.Objects))
		}
		node, err := m.proc.NodeFor(txn.Objects[0])
		if err != nil {
			return Reply{}, err
		}
		m.svcs[string(txn.Data)] = node
		m.addSenders = append(m.addSenders, txn.Sender)
		return Reply{}, nil
	case CodeGetService:
		node, ok := m.svcs[string(txn.Data)]
		if !ok {
			return Reply{}, fmt.Errorf("no such service %q", txn.Data)
		}
		return Reply{Objects: []*Node{node}}, nil
	case CodeListServices:
		names := make([]string, 0, len(m.svcs))
		for name := range m.svcs {
			names = append(names, name)
		}
		return Reply{Data: []byte(strings.Join(names, ","))}, nil
	case CodePing:
		return Reply{}, nil
	}
	return Reply{}, fmt.Errorf("unknown code %d", txn.Code)
}

func echoService(p *Proc, name string) *Node {
	return p.NewNode(name, func(txn Txn) (Reply, error) {
		return Reply{Data: append([]byte(name+":"), txn.Data...)}, nil
	})
}

func TestContextManagerSingleton(t *testing.T) {
	d := NewDriver()
	ns, err := d.CreateNamespace("vd1")
	if err != nil {
		t.Fatal(err)
	}
	newTestManager(t, ns)
	p2 := ns.Attach(1000)
	n2 := p2.NewNode("usurper", nil)
	if err := p2.BecomeContextManager(n2); !errors.Is(err, ErrAlreadyManager) {
		t.Fatalf("second context manager: err = %v, want ErrAlreadyManager", err)
	}
}

func TestContextManagerMustOwnNode(t *testing.T) {
	d := NewDriver()
	ns, _ := d.CreateNamespace("vd1")
	p1 := ns.Attach(1000)
	p2 := ns.Attach(1000)
	n := p1.NewNode("svc", nil)
	if err := p2.BecomeContextManager(n); !errors.Is(err, ErrPermission) {
		t.Fatalf("foreign node as manager: err = %v, want ErrPermission", err)
	}
}

func TestHandleZeroResolvesPerNamespace(t *testing.T) {
	d := NewDriver()
	ns1, _ := d.CreateNamespace("vd1")
	ns2, _ := d.CreateNamespace("vd2")
	m1 := newTestManager(t, ns1)
	m2 := newTestManager(t, ns2)

	// Register a distinct service in each namespace.
	p1 := ns1.Attach(1000)
	p2 := ns2.Attach(1000)
	if _, _, err := p1.Transact(0, CodeAddService, []byte("camera"), []*Node{echoService(p1, "cam1")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p2.Transact(0, CodeAddService, []byte("camera"), []*Node{echoService(p2, "cam2")}); err != nil {
		t.Fatal(err)
	}

	if _, ok := m1.svcs["camera"]; !ok {
		t.Fatal("vd1 manager missing camera")
	}
	if m1.svcs["camera"] == m2.svcs["camera"] {
		t.Fatal("namespaces share a service node; isolation broken")
	}

	// Each client gets its own namespace's node back.
	data, handles, err := p1.Transact(0, CodeGetService, []byte("camera"), nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = data
	if len(handles) != 1 {
		t.Fatalf("GetService returned %d handles, want 1", len(handles))
	}
	out, _, err := p1.Transact(handles[0], CodeUser, []byte("hello"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "cam1:hello" {
		t.Fatalf("vd1 client reached %q, want cam1", out)
	}
}

func TestNoManagerNoServices(t *testing.T) {
	d := NewDriver()
	ns, _ := d.CreateNamespace("vd1")
	p := ns.Attach(1000)
	if _, _, err := p.Transact(0, CodeGetService, []byte("camera"), nil); !errors.Is(err, ErrNoContextManager) {
		t.Fatalf("err = %v, want ErrNoContextManager", err)
	}
}

func TestTransactionCarriesSenderAndContainer(t *testing.T) {
	d := NewDriver()
	ns, _ := d.CreateNamespace("vd7")
	newTestManager(t, ns)
	p := ns.Attach(1234)

	var got Sender
	svc := p.NewNode("whoami", func(txn Txn) (Reply, error) {
		got = txn.Sender
		return Reply{}, nil
	})
	if _, _, err := p.Transact(0, CodeAddService, []byte("whoami"), []*Node{svc}); err != nil {
		t.Fatal(err)
	}
	_, hs, err := p.Transact(0, CodeGetService, []byte("whoami"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Transact(hs[0], CodeUser, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got.Container != "vd7" {
		t.Errorf("sender container = %q, want vd7", got.Container)
	}
	if got.EUID != 1234 {
		t.Errorf("sender euid = %d, want 1234", got.EUID)
	}
	if got.PID != p.PID() {
		t.Errorf("sender pid = %d, want %d", got.PID, p.PID())
	}
}

func TestBadHandle(t *testing.T) {
	d := NewDriver()
	ns, _ := d.CreateNamespace("vd1")
	newTestManager(t, ns)
	p := ns.Attach(1000)
	if _, _, err := p.Transact(42, CodeUser, nil, nil); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("err = %v, want ErrBadHandle", err)
	}
}

func TestDeadNode(t *testing.T) {
	d := NewDriver()
	ns, _ := d.CreateNamespace("vd1")
	newTestManager(t, ns)
	owner := ns.Attach(1000)
	client := ns.Attach(1000)
	if _, _, err := owner.Transact(0, CodeAddService, []byte("svc"), []*Node{echoService(owner, "svc")}); err != nil {
		t.Fatal(err)
	}
	_, hs, err := client.Transact(0, CodeGetService, []byte("svc"), nil)
	if err != nil {
		t.Fatal(err)
	}
	owner.Exit()
	if _, _, err := client.Transact(hs[0], CodeUser, nil, nil); !errors.Is(err, ErrDeadNode) {
		t.Fatalf("transact to dead node: err = %v, want ErrDeadNode", err)
	}
}

func TestExitedProcCannotTransact(t *testing.T) {
	d := NewDriver()
	ns, _ := d.CreateNamespace("vd1")
	newTestManager(t, ns)
	p := ns.Attach(1000)
	p.Exit()
	if _, _, err := p.Transact(0, CodePing, nil, nil); !errors.Is(err, ErrDeadProc) {
		t.Fatalf("err = %v, want ErrDeadProc", err)
	}
}

func TestHandleReuseForSameNode(t *testing.T) {
	// Receiving the same node twice yields the same handle (reference
	// identity preserved).
	d := NewDriver()
	ns, _ := d.CreateNamespace("vd1")
	newTestManager(t, ns)
	p := ns.Attach(1000)
	if _, _, err := p.Transact(0, CodeAddService, []byte("svc"), []*Node{echoService(p, "svc")}); err != nil {
		t.Fatal(err)
	}
	_, h1, err := p.Transact(0, CodeGetService, []byte("svc"), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, h2, err := p.Transact(0, CodeGetService, []byte("svc"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if h1[0] != h2[0] {
		t.Fatalf("same node produced different handles: %d vs %d", h1[0], h2[0])
	}
}

func setupDevcon(t *testing.T) (*Driver, *testManager, *Proc) {
	t.Helper()
	d := NewDriver()
	dns, err := d.CreateNamespace("devcon")
	if err != nil {
		t.Fatal(err)
	}
	d.SetDeviceNamespace(dns)
	m := newTestManager(t, dns)
	p := dns.Attach(1000)
	return d, m, p
}

func TestPublishToAllNS(t *testing.T) {
	d, devMgr, devProc := setupDevcon(t)

	// Register a sensor service inside the device container.
	sensor := echoService(devProc, "sensorservice")
	if _, _, err := devProc.Transact(0, CodeAddService, []byte("sensorservice"), []*Node{sensor}); err != nil {
		t.Fatal(err)
	}
	_, hs, err := devProc.Transact(0, CodeGetService, []byte("sensorservice"), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Two virtual drones already running.
	ns1, _ := d.CreateNamespace("vd1")
	ns2, _ := d.CreateNamespace("vd2")
	m1 := newTestManager(t, ns1)
	m2 := newTestManager(t, ns2)

	if err := devProc.PublishToAllNS("sensorservice", hs[0]); err != nil {
		t.Fatal(err)
	}

	for i, m := range []*testManager{m1, m2} {
		if m.svcs["sensorservice"] != devMgr.svcs["sensorservice"] {
			t.Errorf("vd%d did not receive the device container's sensorservice node", i+1)
		}
	}
	// Registrations performed by the driver come from the kernel.
	if len(m1.addSenders) == 0 || m1.addSenders[0].Container != "<kernel>" {
		t.Errorf("publish registration sender = %+v, want kernel", m1.addSenders)
	}

	// A virtual drone app can now reach the shared service via its own
	// ServiceManager, transparently.
	app := ns1.Attach(10001)
	_, appHs, err := app.Transact(0, CodeGetService, []byte("sensorservice"), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := app.Transact(appHs[0], CodeUser, []byte("read"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "sensorservice:read" {
		t.Fatalf("cross-container call returned %q", out)
	}
}

func TestPublishToAllNSReachesFutureNamespaces(t *testing.T) {
	d, _, devProc := setupDevcon(t)
	svc := echoService(devProc, "cameraservice")
	if _, _, err := devProc.Transact(0, CodeAddService, []byte("cameraservice"), []*Node{svc}); err != nil {
		t.Fatal(err)
	}
	_, hs, _ := devProc.Transact(0, CodeGetService, []byte("cameraservice"), nil)
	if err := devProc.PublishToAllNS("cameraservice", hs[0]); err != nil {
		t.Fatal(err)
	}

	// A virtual drone created after the publish still receives the service
	// when its ServiceManager registers.
	ns3, _ := d.CreateNamespace("vd3")
	m3 := newTestManager(t, ns3)
	if _, ok := m3.svcs["cameraservice"]; !ok {
		t.Fatal("future namespace did not receive published service")
	}
}

func TestPublishToAllNSSecurity(t *testing.T) {
	d, _, _ := setupDevcon(t)
	ns1, _ := d.CreateNamespace("vd1")
	newTestManager(t, ns1)
	rogue := ns1.Attach(10001)
	evil := echoService(rogue, "evil")
	if _, _, err := rogue.Transact(0, CodeAddService, []byte("evil"), []*Node{evil}); err != nil {
		t.Fatal(err)
	}
	_, hs, _ := rogue.Transact(0, CodeGetService, []byte("evil"), nil)
	if err := rogue.PublishToAllNS("evil", hs[0]); !errors.Is(err, ErrPermission) {
		t.Fatalf("virtual drone called PUBLISH_TO_ALL_NS: err = %v, want ErrPermission", err)
	}
}

func TestPublishToAllNSRequiresDevconDesignation(t *testing.T) {
	d := NewDriver()
	ns, _ := d.CreateNamespace("notdevcon")
	newTestManager(t, ns)
	p := ns.Attach(1000)
	svc := echoService(p, "svc")
	if _, _, err := p.Transact(0, CodeAddService, []byte("svc"), []*Node{svc}); err != nil {
		t.Fatal(err)
	}
	_, hs, _ := p.Transact(0, CodeGetService, []byte("svc"), nil)
	if err := p.PublishToAllNS("svc", hs[0]); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v, want ErrPermission", err)
	}
}

func TestPublishToDevCon(t *testing.T) {
	d, devMgr, _ := setupDevcon(t)
	ns1, _ := d.CreateNamespace("vd1")
	newTestManager(t, ns1)

	// vd1's ActivityManager registers itself; its ServiceManager calls
	// PUBLISH_TO_DEV_CON.
	amProc := ns1.Attach(1000)
	am := echoService(amProc, "activity")
	if _, _, err := amProc.Transact(0, CodeAddService, []byte("activity"), []*Node{am}); err != nil {
		t.Fatal(err)
	}
	_, hs, _ := amProc.Transact(0, CodeGetService, []byte("activity"), nil)
	if err := amProc.PublishToDevCon("activity", hs[0]); err != nil {
		t.Fatal(err)
	}

	want := ScopedName("activity", "vd1")
	if _, ok := devMgr.svcs[want]; !ok {
		t.Fatalf("device container manager missing %q; has %v", want, keys(devMgr.svcs))
	}

	// A device service in the device container can now call back into vd1's
	// ActivityManager for a permission check.
	devSvc := d.devcon.Attach(1000)
	_, amHs, err := devSvc.Transact(0, CodeGetService, []byte(want), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := devSvc.Transact(amHs[0], CodeUser, []byte("checkPermission"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "activity:checkPermission" {
		t.Fatalf("callback returned %q", out)
	}
}

func TestPublishToDevConRejectsDevcon(t *testing.T) {
	_, _, devProc := setupDevcon(t)
	svc := echoService(devProc, "svc")
	if _, _, err := devProc.Transact(0, CodeAddService, []byte("svc"), []*Node{svc}); err != nil {
		t.Fatal(err)
	}
	_, hs, _ := devProc.Transact(0, CodeGetService, []byte("svc"), nil)
	if err := devProc.PublishToDevCon("svc", hs[0]); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v, want ErrPermission", err)
	}
}

func TestCreateNamespaceDuplicate(t *testing.T) {
	d := NewDriver()
	if _, err := d.CreateNamespace("vd1"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateNamespace("vd1"); err == nil {
		t.Fatal("duplicate namespace accepted")
	}
}

func TestNamespacesListing(t *testing.T) {
	d := NewDriver()
	for _, n := range []string{"a", "b", "c"} {
		if _, err := d.CreateNamespace(n); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(d.Namespaces()); got != 3 {
		t.Fatalf("Namespaces() len = %d, want 3", got)
	}
	d.RemoveNamespace("b")
	if got := len(d.Namespaces()); got != 2 {
		t.Fatalf("after remove, len = %d, want 2", got)
	}
}

func TestConcurrentTransactions(t *testing.T) {
	d := NewDriver()
	ns, _ := d.CreateNamespace("vd1")
	newTestManager(t, ns)
	owner := ns.Attach(1000)
	var mu sync.Mutex
	count := 0
	svc := owner.NewNode("counter", func(txn Txn) (Reply, error) {
		mu.Lock()
		count++
		mu.Unlock()
		return Reply{}, nil
	})
	if _, _, err := owner.Transact(0, CodeAddService, []byte("counter"), []*Node{svc}); err != nil {
		t.Fatal(err)
	}

	const goroutines, calls = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := ns.Attach(2000)
			_, hs, err := p.Transact(0, CodeGetService, []byte("counter"), nil)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < calls; j++ {
				if _, _, err := p.Transact(hs[0], CodeUser, nil, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if count != goroutines*calls {
		t.Fatalf("count = %d, want %d", count, goroutines*calls)
	}
}

func TestScopedName(t *testing.T) {
	if got := ScopedName("activity", "vd1"); got != "activity:vd1" {
		t.Fatalf("ScopedName = %q", got)
	}
}

func keys(m map[string]*Node) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestLinkToDeath(t *testing.T) {
	d := NewDriver()
	ns, _ := d.CreateNamespace("vd1")
	newTestManager(t, ns)
	owner := ns.Attach(1000)
	watcher := ns.Attach(1000)
	if _, _, err := owner.Transact(0, CodeAddService, []byte("svc"), []*Node{echoService(owner, "svc")}); err != nil {
		t.Fatal(err)
	}
	_, hs, err := watcher.Transact(0, CodeGetService, []byte("svc"), nil)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	if err := watcher.LinkToDeath(hs[0], func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("premature death notification")
	}
	owner.Exit()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// Double exit does not re-fire.
	owner.Exit()
	if fired != 1 {
		t.Fatalf("re-fired: %d", fired)
	}
}

func TestLinkToDeathBadHandle(t *testing.T) {
	d := NewDriver()
	ns, _ := d.CreateNamespace("vd1")
	p := ns.Attach(1000)
	if err := p.LinkToDeath(42, func() {}); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("err = %v", err)
	}
}

func TestTransactionSizeLimit(t *testing.T) {
	d := NewDriver()
	ns, _ := d.CreateNamespace("vd1")
	newTestManager(t, ns)
	p := ns.Attach(1000)
	big := make([]byte, MaxTransactionBytes+1)
	if _, _, err := p.Transact(0, CodePing, big, nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized transaction: %v, want ErrTooLarge", err)
	}
	// Exactly at the limit is fine.
	ok := make([]byte, MaxTransactionBytes)
	if _, _, err := p.Transact(0, CodePing, ok, nil); err != nil {
		t.Fatalf("limit-sized transaction: %v", err)
	}
}
