// Race coverage for the copy-on-write hot paths. The fleet work made
// Transact and handle resolution lock-free (snapshots behind
// atomic.Pointer) while namespace creation and the publish ioctls still
// serialize on Driver.mu and swap fresh snapshots in. These tests hammer
// both sides at once so `go test -race` validates the swap ordering: a
// reader must only ever observe a fully-built table, old or new.

package binder

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRaceTransactVsNamespaceChurn runs a steady stream of transactions
// against one namespace while other goroutines create and remove
// namespaces — the driver-level table swap racing the lock-free lookup.
func TestRaceTransactVsNamespaceChurn(t *testing.T) {
	d := NewDriver()
	ns, err := d.CreateNamespace("vd-stable")
	if err != nil {
		t.Fatal(err)
	}
	newTestManager(t, ns)
	owner := ns.Attach(1000)
	var hits atomic.Int64
	svc := owner.NewNode("echo", func(txn Txn) (Reply, error) {
		hits.Add(1)
		return Reply{Data: txn.Data}, nil
	})
	if _, _, err := owner.Transact(0, CodeAddService, []byte("echo"), []*Node{svc}); err != nil {
		t.Fatal(err)
	}

	const senders, churners, iters = 4, 2, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := ns.Attach(2000)
			_, hs, err := p.Transact(0, CodeGetService, []byte("echo"), nil)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iters; i++ {
				if _, _, err := p.Transact(hs[0], CodeUser, []byte("ping"), nil); err != nil {
					t.Error(err)
					return
				}
				// Lock-free namespace lookup racing the churn below.
				if _, ok := d.LookupNamespace("vd-stable"); !ok {
					t.Error("stable namespace vanished")
					return
				}
			}
		}()
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("vd-churn-%d-%d", c, i)
				if _, err := d.CreateNamespace(name); err != nil {
					t.Error(err)
					return
				}
				d.RemoveNamespace(name)
			}
		}(c)
	}
	wg.Wait()
	if got := hits.Load(); got != senders*iters {
		t.Fatalf("service saw %d transactions, want %d", got, senders*iters)
	}
}

// TestRaceTransactVsPublish races the publish ioctls (which install
// handles into every namespace's manager under Driver.mu) against
// lock-free transactions and fresh namespace registration.
func TestRaceTransactVsPublish(t *testing.T) {
	d, _, devProc := setupDevcon(t)

	// Device services to publish, pre-registered in the device container.
	const services = 8
	handles := make([]Handle, services)
	for i := 0; i < services; i++ {
		name := fmt.Sprintf("dev%d", i)
		svc := echoService(devProc, name)
		if _, _, err := devProc.Transact(0, CodeAddService, []byte(name), []*Node{svc}); err != nil {
			t.Fatal(err)
		}
		_, hs, err := devProc.Transact(0, CodeGetService, []byte(name), nil)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = hs[0]
	}

	ns, err := d.CreateNamespace("vd1")
	if err != nil {
		t.Fatal(err)
	}
	newTestManager(t, ns)

	var wg sync.WaitGroup
	// Publisher: alternate PublishToAllNS and PublishToDevCon.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < services; i++ {
			name := fmt.Sprintf("dev%d", i)
			if err := devProc.PublishToAllNS(name, handles[i]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Namespace creator: managers registering mid-publish must still
	// receive every already-published service.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			nsi, err := d.CreateNamespace(fmt.Sprintf("vd-late-%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			newTestManager(t, nsi)
		}
	}()
	// Transactors: hammer the stable namespace's manager throughout.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := ns.Attach(3000)
			for i := 0; i < 200; i++ {
				if _, _, err := p.Transact(0, CodePing, nil, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// After the dust settles every published service must be reachable
	// from the stable namespace.
	p := ns.Attach(3001)
	for i := 0; i < services; i++ {
		name := fmt.Sprintf("dev%d", i)
		_, hs, err := p.Transact(0, CodeGetService, []byte(name), nil)
		if err != nil {
			t.Fatalf("service %s not visible after publish: %v", name, err)
		}
		out, _, err := p.Transact(hs[0], CodeUser, []byte("x"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != name+":x" {
			t.Fatalf("service %s echoed %q", name, out)
		}
	}
}

// TestRaceTransactVsExit races process death against transactions bound
// for the dying process's node: every call must either succeed or fail
// with a dead-node/dead-proc error, never tear.
func TestRaceTransactVsExit(t *testing.T) {
	d := NewDriver()
	ns, err := d.CreateNamespace("vd1")
	if err != nil {
		t.Fatal(err)
	}
	newTestManager(t, ns)
	for round := 0; round < 20; round++ {
		owner := ns.Attach(1000)
		name := fmt.Sprintf("ephemeral-%d", round)
		svc := echoService(owner, name)
		if _, _, err := owner.Transact(0, CodeAddService, []byte(name), []*Node{svc}); err != nil {
			t.Fatal(err)
		}
		caller := ns.Attach(2000)
		_, hs, err := caller.Transact(0, CodeGetService, []byte(name), nil)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, _, err := caller.Transact(hs[0], CodeUser, nil, nil)
				if err != nil {
					return // dead node: the expected terminal outcome
				}
			}
		}()
		go func() {
			defer wg.Done()
			owner.Exit()
		}()
		wg.Wait()
	}
}
