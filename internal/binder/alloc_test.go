// Allocation budget for the Binder hot path. The data-only Transact round
// trip is the fleet's most frequent ioctl and is documented (and
// statically checked by androne-vet's hotpath analyzer) to stay off
// Driver.mu and allocation-free; this test pins the budget at zero so a
// regression shows up as a test failure rather than a silent line in the
// next androne-bench -exp scale run.

package binder

import "testing"

// TestTransactDataOnlyZeroAlloc pins the lock-free data-only transaction
// path — handle resolution through the copy-on-write snapshot, sharded
// transaction count, handler dispatch, data-only reply — at 0 allocs/op.
func TestTransactDataOnlyZeroAlloc(t *testing.T) {
	d := NewDriver()
	ns, err := d.CreateNamespace("vd1")
	if err != nil {
		t.Fatal(err)
	}
	newTestManager(t, ns)

	owner := ns.Attach(1000)
	pong := []byte("pong")
	node := owner.NewNode("echo", func(txn Txn) (Reply, error) {
		return Reply{Data: pong}, nil
	})
	if _, _, err := owner.Transact(ContextManagerHandle, CodeAddService, []byte("echo"), []*Node{node}); err != nil {
		t.Fatalf("AddService: %v", err)
	}

	client := ns.Attach(1001)
	_, handles, err := client.Transact(ContextManagerHandle, CodeGetService, []byte("echo"), nil)
	if err != nil || len(handles) != 1 {
		t.Fatalf("GetService: handles=%v err=%v", handles, err)
	}
	h := handles[0]

	payload := []byte("ping")
	allocs := testing.AllocsPerRun(1000, func() {
		data, objs, err := client.Transact(h, CodeUser, payload, nil)
		if err != nil || len(objs) != 0 || len(data) != len(pong) {
			t.Fatalf("Transact: data=%q objs=%v err=%v", data, objs, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("data-only transact allocated %.1f/op, want 0", allocs)
	}
}
