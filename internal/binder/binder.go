// Package binder models Android's Binder inter-process communication
// mechanism at the level AnDrone modifies it: nodes referenced by
// per-process integer handles, one Context Manager per device namespace
// (reachable as handle 0), synchronous transactions that carry the calling
// process' PID, EUID, and — AnDrone's addition — container identifier, and
// the two new ioctls the paper introduces:
//
//   - PUBLISH_TO_ALL_NS: callable only by the device container, registers a
//     device-container service with the Context Manager of every other
//     namespace (present and future);
//   - PUBLISH_TO_DEV_CON: registers a container's ActivityManager with the
//     device container's Context Manager under a name suffixed with the
//     container identifier, so device services can route permission checks
//     back to the calling container.
//
// Binder inherently provides isolation: no communication can occur without
// first obtaining a handle, and handles can only be obtained from the
// Context Manager (handle 0) or passed in a transaction by someone who
// already holds one. The device-namespace extension scopes handle 0 per
// container, so each virtual drone sees only its own ServiceManager.
package binder

import (
	"errors"
	"fmt"
	"sync"

	"androne/internal/telemetry"
)

// Handle is a per-process reference to a node. Handle 0 always refers to the
// Context Manager of the process' namespace.
type Handle uint32

// ContextManagerHandle is the well-known handle of the namespace's Context
// Manager.
const ContextManagerHandle Handle = 0

// MaxTransactionBytes is the Binder transaction buffer limit (1 MB per
// process in Android, minus bookkeeping). Oversized payloads fail with
// ErrTooLarge, as TransactionTooLargeException does.
const MaxTransactionBytes = 1 << 20

// Context Manager protocol transaction codes. These mirror Android's
// servicemanager protocol; the driver itself speaks AddService when
// executing PUBLISH_TO_ALL_NS, so the codes are defined here rather than in
// the userspace layer.
const (
	CodeAddService uint32 = iota + 1
	CodeGetService
	CodeCheckService
	CodeListServices
	// CodePing is a liveness probe any node should answer.
	CodePing
	// CodeUser is the first code available to user-defined services.
	CodeUser uint32 = 64
)

// Errors returned by driver operations.
var (
	ErrDeadNode         = errors.New("binder: node owner has exited")
	ErrBadHandle        = errors.New("binder: bad handle")
	ErrNoContextManager = errors.New("binder: namespace has no context manager")
	ErrAlreadyManager   = errors.New("binder: namespace already has a context manager")
	ErrPermission       = errors.New("binder: permission denied")
	ErrDeadProc         = errors.New("binder: process has exited")
	ErrTooLarge         = errors.New("binder: transaction exceeds buffer size")
)

// Sender identifies the originator of a transaction. Container is AnDrone's
// addition to the transaction data structure.
type Sender struct {
	PID       int
	EUID      int
	Container string
}

// Txn is a transaction delivered to a node's handler. Objects passed by the
// sender appear as handles valid in the receiving process.
type Txn struct {
	Code    uint32
	Data    []byte
	Objects []Handle
	Sender  Sender
}

// Reply is the synchronous result of a transaction. Objects are node
// references that the driver translates into handles in the caller's
// process.
type Reply struct {
	Data    []byte
	Objects []*Node
}

// Handler services transactions sent to a node. It runs in the context of
// the node's owning process: object handles in the Txn are valid there.
type Handler func(txn Txn) (Reply, error)

// Node is a Binder object: a service endpoint owned by a process.
type Node struct {
	id    uint64
	name  string // debug label
	owner *Proc
	h     Handler
}

// Name returns the node's debug label.
func (n *Node) Name() string { return n.name }

// Namespace is a Binder device namespace. Each container gets one, so each
// container has its own Context Manager and service registry.
type Namespace struct {
	driver *Driver
	name   string
	key    telemetry.Key // interned name, cached for zero-cost emission
	mgr    *Node         // context manager node, nil until registered
}

// Name returns the namespace (container) identifier.
func (ns *Namespace) Name() string { return ns.name }

// Proc is a process attached to the Binder driver within a namespace.
type Proc struct {
	driver  *Driver
	ns      *Namespace
	pid     int
	euid    int
	dead    bool
	next    Handle
	handles map[Handle]*Node
}

// PID returns the process id.
func (p *Proc) PID() int { return p.pid }

// EUID returns the effective uid.
func (p *Proc) EUID() int { return p.euid }

// Namespace returns the namespace the process is attached in.
func (p *Proc) Namespace() *Namespace { return p.ns }

// Driver is the Binder "kernel driver": the authority on namespaces, nodes,
// handle tables, and the AnDrone publish ioctls.
type Driver struct {
	mu         sync.Mutex
	nextNode   uint64
	nextPID    int
	namespaces map[string]*Namespace
	devcon     *Namespace // the device container's namespace, if designated
	// published records PUBLISH_TO_ALL_NS registrations so they can be
	// replayed into namespaces created later ("the same process will be
	// performed in the future for any newly created virtual drone
	// containers").
	published []publishedService
	// deathLinks maps a node's owner to the death-notification callbacks
	// registered against that node (Binder's link-to-death).
	deathLinks map[*Proc][]deathLink
	// tel is the drone's flight recorder; nil when running without one.
	// Set before use (SetRecorder), never written afterwards.
	tel *telemetry.Recorder
	// txns shards mTransactions under d.mu: Transact is the hot ioctl and a
	// plain increment there avoids an atomic fence per call. FlushMetrics
	// folds the batch in.
	txns *telemetry.LocalCount
}

type deathLink struct {
	node *Node
	fn   func()
}

type publishedService struct {
	name string
	node *Node
}

// NewDriver creates an empty Binder driver.
func NewDriver() *Driver {
	return &Driver{
		namespaces: make(map[string]*Namespace),
		nextPID:    100,
		deathLinks: make(map[*Proc][]deathLink),
		txns:       mTransactions.Local(),
	}
}

// CreateNamespace creates a device namespace for a container. Services
// previously published with PUBLISH_TO_ALL_NS are delivered to the new
// namespace's context manager as soon as one registers.
func (d *Driver) CreateNamespace(name string) (*Namespace, error) {
	key := telemetry.K(name) // intern outside d.mu: K takes its own lock
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.namespaces[name]; ok {
		return nil, fmt.Errorf("binder: namespace %q already exists", name)
	}
	ns := &Namespace{driver: d, name: name, key: key}
	d.namespaces[name] = ns
	return ns, nil
}

// RemoveNamespace tears down a container's namespace. All nodes owned by
// processes in it become dead.
func (d *Driver) RemoveNamespace(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.namespaces, name)
}

// SetDeviceNamespace designates ns as the device container's namespace,
// granting it the right to call PUBLISH_TO_ALL_NS.
func (d *Driver) SetDeviceNamespace(ns *Namespace) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.devcon = ns
}

// Namespaces returns the names of all current namespaces.
func (d *Driver) Namespaces() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.namespaces))
	for name := range d.namespaces {
		out = append(out, name)
	}
	return out
}

// Attach creates a process in the namespace with the given effective uid,
// assigning it a fresh PID.
func (ns *Namespace) Attach(euid int) *Proc {
	d := ns.driver
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextPID++
	return &Proc{
		driver:  d,
		ns:      ns,
		pid:     d.nextPID,
		euid:    euid,
		handles: make(map[Handle]*Node),
		next:    1, // handle 0 is reserved for the context manager
	}
}

// NewNode creates a Binder node owned by p with the given handler. The node
// is not reachable by anyone until a handle to it is passed in a transaction
// or it is registered with a context manager.
func (p *Proc) NewNode(name string, h Handler) *Node {
	d := p.driver
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextNode++
	return &Node{id: d.nextNode, name: name, owner: p, h: h}
}

// BecomeContextManager registers node as the Context Manager for p's
// namespace. Binder allows only one Context Manager per namespace; the
// driver identifies the container from which the registration comes, so
// subsequent references to handle 0 within that container resolve here.
func (p *Proc) BecomeContextManager(node *Node) error {
	d := p.driver
	d.mu.Lock()
	if p.dead {
		d.mu.Unlock()
		return ErrDeadProc
	}
	if node.owner != p {
		d.mu.Unlock()
		return fmt.Errorf("%w: context manager node must be owned by caller", ErrPermission)
	}
	if p.ns.mgr != nil && !p.ns.mgr.dead() {
		d.mu.Unlock()
		return ErrAlreadyManager
	}
	p.ns.mgr = node
	// Replay prior PUBLISH_TO_ALL_NS registrations into this new manager,
	// unless this namespace is the device container itself.
	var replay []publishedService
	if p.ns != d.devcon {
		replay = append(replay, d.published...)
	}
	d.mu.Unlock()
	for _, svc := range replay {
		// Registration failures for individual services must not prevent the
		// manager from coming up; the driver keeps going, as a kernel would.
		_, _ = d.transactLocked(kernelSender(), node, CodeAddService, []byte(svc.name), []*Node{svc.node})
	}
	return nil
}

func (n *Node) dead() bool { return n.owner == nil || n.owner.dead }

// Exit detaches the process: all its nodes become dead, its handles are
// released, and death notifications registered against its nodes fire.
func (p *Proc) Exit() {
	d := p.driver
	d.mu.Lock()
	if p.dead {
		d.mu.Unlock()
		return
	}
	p.dead = true
	p.handles = make(map[Handle]*Node)
	links := d.deathLinks[p]
	delete(d.deathLinks, p)
	d.mu.Unlock()
	for _, l := range links {
		l.fn()
	}
}

// LinkToDeath registers a callback that fires when the owner of the node
// behind h exits — Binder's death notification mechanism, which the
// ServiceManager uses to drop registrations of crashed services.
func (p *Proc) LinkToDeath(h Handle, fn func()) error {
	d := p.driver
	d.mu.Lock()
	node, err := p.resolve(h)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.deathLinks[node.owner] = append(d.deathLinks[node.owner], deathLink{node: node, fn: fn})
	d.mu.Unlock()
	return nil
}

// resolve maps a handle to a node under d.mu.
func (p *Proc) resolve(h Handle) (*Node, error) {
	if p.dead {
		return nil, ErrDeadProc
	}
	if h == ContextManagerHandle {
		if p.ns.mgr == nil || p.ns.mgr.dead() {
			return nil, ErrNoContextManager
		}
		return p.ns.mgr, nil
	}
	n, ok := p.handles[h]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadHandle, h)
	}
	if n.dead() {
		return nil, ErrDeadNode
	}
	return n, nil
}

// install adds a node to the process' handle table, returning the handle.
// Caller holds d.mu.
func (p *Proc) install(n *Node) Handle {
	for h, existing := range p.handles {
		if existing == n {
			return h
		}
	}
	h := p.next
	p.next++
	p.handles[h] = n
	return h
}

// NodeFor returns the node a handle refers to, for passing a received
// service reference onward in a Reply.
func (p *Proc) NodeFor(h Handle) (*Node, error) {
	p.driver.mu.Lock()
	defer p.driver.mu.Unlock()
	return p.resolve(h)
}

// Transact sends a synchronous transaction to the node referenced by h,
// passing any local nodes as objects. The reply's object references are
// installed in p's handle table and returned as handles.
func (p *Proc) Transact(h Handle, code uint32, data []byte, objects []*Node) ([]byte, []Handle, error) {
	d := p.driver
	if len(data) > MaxTransactionBytes {
		mTransactions.Inc() // cold error path: direct atomic is fine
		mTransactErrors.Inc()
		d.tel.Emit(p.ns.key, kTxnError, int64(code), int64(len(data)), "too-large")
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	d.mu.Lock()
	d.txns.Inc() // sharded under d.mu; FlushMetrics folds the batch in
	target, err := p.resolve(h)
	if err != nil {
		d.mu.Unlock()
		mTransactErrors.Inc()
		d.tel.Emit(p.ns.key, kTxnError, int64(code), int64(h), "resolve")
		return nil, nil, err
	}
	sender := Sender{PID: p.pid, EUID: p.euid, Container: p.ns.name}
	d.mu.Unlock()

	reply, err := d.transactLocked(sender, target, code, data, objects)
	if err != nil {
		mTransactErrors.Inc()
		d.tel.Emit(p.ns.key, kTxnError, int64(code), 0, "deliver")
		return nil, nil, err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if p.dead {
		return nil, nil, ErrDeadProc
	}
	handles := make([]Handle, len(reply.Objects))
	for i, n := range reply.Objects {
		handles[i] = p.install(n)
	}
	return reply.Data, handles, nil
}

// transactLocked delivers a transaction to target, translating object nodes
// into handles in the target's process. Must be called WITHOUT d.mu held;
// the name records that the driver state it touches is internally locked.
func (d *Driver) transactLocked(sender Sender, target *Node, code uint32, data []byte, objects []*Node) (Reply, error) {
	d.mu.Lock()
	if target.dead() {
		d.mu.Unlock()
		return Reply{}, ErrDeadNode
	}
	owner := target.owner
	objHandles := make([]Handle, len(objects))
	for i, n := range objects {
		objHandles[i] = owner.install(n)
	}
	h := target.h
	d.mu.Unlock()
	if h == nil {
		return Reply{}, fmt.Errorf("binder: node %q has no handler", target.name)
	}
	return h(Txn{Code: code, Data: data, Objects: objHandles, Sender: sender})
}

func kernelSender() Sender { return Sender{PID: 0, EUID: 0, Container: "<kernel>"} }

// PublishToAllNS implements the PUBLISH_TO_ALL_NS ioctl: it takes a service
// name and a handle valid in p, and registers that service with the Context
// Manager of every other namespace by making the driver's own AddService
// registration call. Callable only from the device container's namespace,
// for security. The registration is recorded so namespaces created later
// receive it too.
func (p *Proc) PublishToAllNS(name string, h Handle) error {
	d := p.driver
	d.mu.Lock()
	if d.devcon == nil || p.ns != d.devcon {
		d.mu.Unlock()
		return fmt.Errorf("%w: PUBLISH_TO_ALL_NS is restricted to the device container", ErrPermission)
	}
	node, err := p.resolve(h)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.published = append(d.published, publishedService{name: name, node: node})
	// Snapshot the managers to call outside the lock.
	var managers []*Node
	for _, ns := range d.namespaces {
		if ns == d.devcon {
			continue
		}
		// The presence of a ServiceManager indicates the container is a
		// virtual drone running Android Things.
		if ns.mgr != nil && !ns.mgr.dead() {
			managers = append(managers, ns.mgr)
		}
	}
	d.mu.Unlock()
	for _, mgr := range managers {
		if _, err := d.transactLocked(kernelSender(), mgr, CodeAddService, []byte(name), []*Node{node}); err != nil {
			return fmt.Errorf("binder: publishing %q to %q: %w", name, mgr.owner.ns.name, err)
		}
	}
	mPublishes.Inc()
	d.tel.Emit(0, kPublishAllNS, int64(len(managers)), 0, name)
	return nil
}

// PublishToDevCon implements the PUBLISH_TO_DEV_CON ioctl: it registers the
// node (a container's ActivityManager) with the device container's Context
// Manager under "<name>:<container>", so device services can locate the
// calling container's ActivityManager for permission checks.
func (p *Proc) PublishToDevCon(name string, h Handle) error {
	d := p.driver
	d.mu.Lock()
	if d.devcon == nil {
		d.mu.Unlock()
		return fmt.Errorf("%w: no device container designated", ErrNoContextManager)
	}
	if p.ns == d.devcon {
		d.mu.Unlock()
		return fmt.Errorf("%w: device container cannot publish to itself", ErrPermission)
	}
	node, err := p.resolve(h)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	mgr := d.devcon.mgr
	if mgr == nil || mgr.dead() {
		d.mu.Unlock()
		return ErrNoContextManager
	}
	scoped := ScopedName(name, p.ns.name)
	d.mu.Unlock()
	_, err = d.transactLocked(kernelSender(), mgr, CodeAddService, []byte(scoped), []*Node{node})
	if err == nil {
		mPublishes.Inc()
		d.tel.Emit(p.ns.key, kPublishDevCon, 0, 0, scoped)
	}
	return err
}

// ScopedName is the naming convention PUBLISH_TO_DEV_CON uses: the service
// name appended with the container identifier.
func ScopedName(service, container string) string {
	return service + ":" + container
}
