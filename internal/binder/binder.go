// Package binder models Android's Binder inter-process communication
// mechanism at the level AnDrone modifies it: nodes referenced by
// per-process integer handles, one Context Manager per device namespace
// (reachable as handle 0), synchronous transactions that carry the calling
// process' PID, EUID, and — AnDrone's addition — container identifier, and
// the two new ioctls the paper introduces:
//
//   - PUBLISH_TO_ALL_NS: callable only by the device container, registers a
//     device-container service with the Context Manager of every other
//     namespace (present and future);
//   - PUBLISH_TO_DEV_CON: registers a container's ActivityManager with the
//     device container's Context Manager under a name suffixed with the
//     container identifier, so device services can route permission checks
//     back to the calling container.
//
// Binder inherently provides isolation: no communication can occur without
// first obtaining a handle, and handles can only be obtained from the
// Context Manager (handle 0) or passed in a transaction by someone who
// already holds one. The device-namespace extension scopes handle 0 per
// container, so each virtual drone sees only its own ServiceManager.
//
// Concurrency model (see DESIGN.md "Fleet scaling & hot-path concurrency"):
// the read-mostly structures a transaction touches — the namespace table,
// each namespace's context manager, and each process' handle table — are
// copy-on-write snapshots behind atomic.Pointer. The data-only Transact
// fast path takes no lock at all; every mutation (namespace churn, handle
// installation, process exit) still serializes on Driver.mu and publishes a
// fresh snapshot, so readers observe either the old table or the new one,
// never a half-built map.
package binder

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"androne/internal/telemetry"
)

// Handle is a per-process reference to a node. Handle 0 always refers to the
// Context Manager of the process' namespace.
type Handle uint32

// ContextManagerHandle is the well-known handle of the namespace's Context
// Manager.
const ContextManagerHandle Handle = 0

// MaxTransactionBytes is the Binder transaction buffer limit (1 MB per
// process in Android, minus bookkeeping). Oversized payloads fail with
// ErrTooLarge, as TransactionTooLargeException does.
const MaxTransactionBytes = 1 << 20

// Context Manager protocol transaction codes. These mirror Android's
// servicemanager protocol; the driver itself speaks AddService when
// executing PUBLISH_TO_ALL_NS, so the codes are defined here rather than in
// the userspace layer.
const (
	CodeAddService uint32 = iota + 1
	CodeGetService
	CodeCheckService
	CodeListServices
	// CodePing is a liveness probe any node should answer.
	CodePing
	// CodeUser is the first code available to user-defined services.
	CodeUser uint32 = 64
)

// Errors returned by driver operations.
var (
	ErrDeadNode         = errors.New("binder: node owner has exited")
	ErrBadHandle        = errors.New("binder: bad handle")
	ErrNoContextManager = errors.New("binder: namespace has no context manager")
	ErrAlreadyManager   = errors.New("binder: namespace already has a context manager")
	ErrPermission       = errors.New("binder: permission denied")
	ErrDeadProc         = errors.New("binder: process has exited")
	ErrTooLarge         = errors.New("binder: transaction exceeds buffer size")
)

// Sender identifies the originator of a transaction. Container is AnDrone's
// addition to the transaction data structure.
type Sender struct {
	PID       int
	EUID      int
	Container string
}

// Txn is a transaction delivered to a node's handler. Objects passed by the
// sender appear as handles valid in the receiving process.
type Txn struct {
	Code    uint32
	Data    []byte
	Objects []Handle
	Sender  Sender
}

// Reply is the synchronous result of a transaction. Objects are node
// references that the driver translates into handles in the caller's
// process.
type Reply struct {
	Data    []byte
	Objects []*Node
}

// Handler services transactions sent to a node. It runs in the context of
// the node's owning process: object handles in the Txn are valid there.
type Handler func(txn Txn) (Reply, error)

// Node is a Binder object: a service endpoint owned by a process. All
// fields are set at construction and never written again, which is what
// lets the lock-free transaction path read them without synchronization.
type Node struct {
	id    uint64
	name  string // debug label
	owner *Proc
	h     Handler
}

// Name returns the node's debug label.
func (n *Node) Name() string { return n.name }

// Namespace is a Binder device namespace. Each container gets one, so each
// container has its own Context Manager and service registry.
type Namespace struct {
	driver *Driver
	name   string
	key    telemetry.Key // interned name, cached for zero-cost emission
	// mgr is the context manager node. Handle-0 resolution on the
	// transaction fast path loads it with no lock; BecomeContextManager
	// stores it under driver.mu.
	mgr atomic.Pointer[Node]
}

// Name returns the namespace (container) identifier.
func (ns *Namespace) Name() string { return ns.name }

// Proc is a process attached to the Binder driver within a namespace.
// pid, euid, ns, and driver are immutable after Attach.
type Proc struct {
	driver *Driver
	ns     *Namespace
	pid    int
	euid   int
	dead   atomic.Bool
	next   Handle // next free handle; guarded by driver.mu (mutation side only)
	// handles is the copy-on-write snapshot of the handle table: the
	// transaction fast path loads and indexes it with no lock; mutations
	// clone the map, add the entry, and swap the pointer under driver.mu.
	handles atomic.Pointer[map[Handle]*Node]
}

// PID returns the process id.
func (p *Proc) PID() int { return p.pid }

// EUID returns the effective uid.
func (p *Proc) EUID() int { return p.euid }

// Namespace returns the namespace the process is attached in.
func (p *Proc) Namespace() *Namespace { return p.ns }

// Driver is the Binder "kernel driver": the authority on namespaces, nodes,
// handle tables, and the AnDrone publish ioctls.
type Driver struct {
	mu       sync.Mutex
	nextNode uint64
	nextPID  int
	// namespaces is the copy-on-write snapshot of name → namespace.
	// Lookups load and index it with no lock; CreateNamespace and
	// RemoveNamespace clone-then-swap under d.mu.
	namespaces atomic.Pointer[map[string]*Namespace]
	devcon     *Namespace // the device container's namespace, if designated
	// published records PUBLISH_TO_ALL_NS registrations so they can be
	// replayed into namespaces created later ("the same process will be
	// performed in the future for any newly created virtual drone
	// containers").
	published []publishedService
	// deathLinks maps a node's owner to the death-notification callbacks
	// registered against that node (Binder's link-to-death).
	deathLinks map[*Proc][]deathLink
	// tel is the drone's flight recorder; nil when running without one.
	// Set before use (SetRecorder), never written afterwards.
	tel *telemetry.Recorder
	// txns shards mTransactions across cache-line-padded atomic cells.
	// Transact is the hot ioctl and takes no lock, so a LocalCount (which
	// needs an owning mutex) cannot count it; the sharded cells keep
	// parallel callers off each other's cache lines. FlushMetrics folds
	// the batch in.
	txns *telemetry.ShardedCount
}

type deathLink struct {
	node *Node
	fn   func()
}

type publishedService struct {
	name string
	node *Node
}

// NewDriver creates an empty Binder driver.
func NewDriver() *Driver {
	d := &Driver{
		nextPID:    100,
		deathLinks: make(map[*Proc][]deathLink),
		txns:       mTransactions.Sharded(),
	}
	empty := make(map[string]*Namespace)
	d.namespaces.Store(&empty)
	return d
}

// CreateNamespace creates a device namespace for a container. Services
// previously published with PUBLISH_TO_ALL_NS are delivered to the new
// namespace's context manager as soon as one registers.
func (d *Driver) CreateNamespace(name string) (*Namespace, error) {
	key := telemetry.K(name) // intern outside d.mu: K takes its own lock
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := *d.namespaces.Load()
	if _, ok := cur[name]; ok {
		return nil, fmt.Errorf("binder: namespace %q already exists", name)
	}
	ns := &Namespace{driver: d, name: name, key: key}
	next := make(map[string]*Namespace, len(cur)+1)
	for k, v := range cur { //vet:allow detguard copy-on-write map clone; order-independent
		next[k] = v
	}
	next[name] = ns
	d.namespaces.Store(&next)
	return ns, nil
}

// RemoveNamespace tears down a container's namespace. All nodes owned by
// processes in it become dead.
func (d *Driver) RemoveNamespace(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := *d.namespaces.Load()
	if _, ok := cur[name]; !ok {
		return
	}
	next := make(map[string]*Namespace, len(cur))
	for k, v := range cur { //vet:allow detguard copy-on-write map clone; order-independent
		if k != name {
			next[k] = v
		}
	}
	d.namespaces.Store(&next)
}

// SetDeviceNamespace designates ns as the device container's namespace,
// granting it the right to call PUBLISH_TO_ALL_NS.
func (d *Driver) SetDeviceNamespace(ns *Namespace) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.devcon = ns
}

// Namespaces returns the names of all current namespaces. Lock-free: it
// reads the current snapshot.
func (d *Driver) Namespaces() []string {
	cur := *d.namespaces.Load()
	out := make([]string, 0, len(cur))
	for name := range cur {
		out = append(out, name)
	}
	return out
}

// LookupNamespace returns the namespace registered under name. Lock-free:
// fleet assemblies resolve their containers' namespaces on hot paths
// without touching d.mu.
func (d *Driver) LookupNamespace(name string) (*Namespace, bool) {
	ns, ok := (*d.namespaces.Load())[name]
	return ns, ok
}

// Attach creates a process in the namespace with the given effective uid,
// assigning it a fresh PID.
func (ns *Namespace) Attach(euid int) *Proc {
	d := ns.driver
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextPID++
	p := &Proc{
		driver: d,
		ns:     ns,
		pid:    d.nextPID,
		euid:   euid,
		next:   1, // handle 0 is reserved for the context manager
	}
	empty := make(map[Handle]*Node)
	p.handles.Store(&empty)
	return p
}

// NewNode creates a Binder node owned by p with the given handler. The node
// is not reachable by anyone until a handle to it is passed in a transaction
// or it is registered with a context manager.
func (p *Proc) NewNode(name string, h Handler) *Node {
	d := p.driver
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextNode++
	return &Node{id: d.nextNode, name: name, owner: p, h: h}
}

// BecomeContextManager registers node as the Context Manager for p's
// namespace. Binder allows only one Context Manager per namespace; the
// driver identifies the container from which the registration comes, so
// subsequent references to handle 0 within that container resolve here.
func (p *Proc) BecomeContextManager(node *Node) error {
	d := p.driver
	d.mu.Lock()
	if p.dead.Load() {
		d.mu.Unlock()
		return ErrDeadProc
	}
	if node.owner != p {
		d.mu.Unlock()
		return fmt.Errorf("%w: context manager node must be owned by caller", ErrPermission)
	}
	if mgr := p.ns.mgr.Load(); mgr != nil && !mgr.dead() {
		d.mu.Unlock()
		return ErrAlreadyManager
	}
	p.ns.mgr.Store(node)
	// Replay prior PUBLISH_TO_ALL_NS registrations into this new manager,
	// unless this namespace is the device container itself.
	var replay []publishedService
	if p.ns != d.devcon {
		replay = append(replay, d.published...)
	}
	d.mu.Unlock()
	for _, svc := range replay {
		// Registration failures for individual services must not prevent the
		// manager from coming up; the driver keeps going, as a kernel would.
		_, _ = d.deliver(kernelSender(), node, CodeAddService, []byte(svc.name), []*Node{svc.node})
	}
	return nil
}

func (n *Node) dead() bool { return n.owner == nil || n.owner.dead.Load() }

// Exit detaches the process: all its nodes become dead, its handles are
// released, and death notifications registered against its nodes fire.
func (p *Proc) Exit() {
	d := p.driver
	d.mu.Lock()
	if p.dead.Load() {
		d.mu.Unlock()
		return
	}
	p.dead.Store(true)
	empty := make(map[Handle]*Node)
	p.handles.Store(&empty)
	links := d.deathLinks[p]
	delete(d.deathLinks, p)
	d.mu.Unlock()
	for _, l := range links {
		l.fn()
	}
}

// LinkToDeath registers a callback that fires when the owner of the node
// behind h exits — Binder's death notification mechanism, which the
// ServiceManager uses to drop registrations of crashed services.
func (p *Proc) LinkToDeath(h Handle, fn func()) error {
	d := p.driver
	d.mu.Lock()
	node, err := p.resolve(h)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.deathLinks[node.owner] = append(d.deathLinks[node.owner], deathLink{node: node, fn: fn})
	d.mu.Unlock()
	return nil
}

// resolve maps a handle to a node. Lock-free: it reads the dead flag, the
// namespace's manager pointer, and the handle-table snapshot, all of which
// are published atomically by the mutation paths. A resolution racing a
// mutation observes either the old table or the new one — exactly the
// serialization a locked lookup would have produced on one side of the
// mutation or the other.
func (p *Proc) resolve(h Handle) (*Node, error) {
	if p.dead.Load() {
		return nil, ErrDeadProc
	}
	if h == ContextManagerHandle {
		mgr := p.ns.mgr.Load()
		if mgr == nil || mgr.dead() {
			return nil, ErrNoContextManager
		}
		return mgr, nil
	}
	n, ok := (*p.handles.Load())[h]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadHandle, h) //vet:allow hotpath cold error path (oversized transaction)
	}
	if n.dead() {
		return nil, ErrDeadNode
	}
	return n, nil
}

// installLocked adds a node to the process' handle table, returning the
// handle. Caller holds d.mu. The table is never mutated in place: the
// snapshot readers hold must stay frozen, so installation clones the map,
// adds the entry, and publishes the clone.
func (p *Proc) installLocked(n *Node) Handle {
	cur := *p.handles.Load()
	for h, existing := range cur { //vet:allow detguard identity scan; a node appears at most once
		if existing == n {
			return h
		}
	}
	h := p.next
	p.next++
	next := make(map[Handle]*Node, len(cur)+1) //vet:allow hotpath object-transfer slow path; serializes on d.mu by contract
	for k, v := range cur {                    //vet:allow detguard copy-on-write map clone; order-independent
		next[k] = v
	}
	next[h] = n
	p.handles.Store(&next)
	return h
}

// NodeFor returns the node a handle refers to, for passing a received
// service reference onward in a Reply.
func (p *Proc) NodeFor(h Handle) (*Node, error) {
	return p.resolve(h)
}

// Transact sends a synchronous transaction to the node referenced by h,
// passing any local nodes as objects. The reply's object references are
// installed in p's handle table and returned as handles.
//
// The data-only round trip — no objects sent, none returned — is entirely
// lock-free: handle resolution reads copy-on-write snapshots, the sender
// identity is built from immutable Proc fields, the target's handler is
// immutable after NewNode, and the transaction counter is sharded across
// padded atomic cells. Parallel callers in different processes never touch
// Driver.mu (measured by androne-bench -exp scale). Object transfer still
// serializes on d.mu because it grows a handle table.
//
//vet:hotpath data-only transact is the fleet's de-contended fast path
func (p *Proc) Transact(h Handle, code uint32, data []byte, objects []*Node) ([]byte, []Handle, error) {
	d := p.driver
	if len(data) > MaxTransactionBytes {
		mTransactions.Inc() // cold error path: direct atomic is fine
		mTransactErrors.Inc()
		d.tel.Emit(p.ns.key, kTxnError, int64(code), int64(len(data)), "too-large")
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data)) //vet:allow hotpath cold error path (bad handle)
	}
	d.txns.Inc(p.pid) // sharded by PID; FlushMetrics folds the batch in
	target, err := p.resolve(h)
	if err != nil {
		mTransactErrors.Inc()
		d.tel.Emit(p.ns.key, kTxnError, int64(code), int64(h), "resolve")
		return nil, nil, err
	}
	sender := Sender{PID: p.pid, EUID: p.euid, Container: p.ns.name}

	reply, err := d.deliver(sender, target, code, data, objects)
	if err != nil {
		mTransactErrors.Inc()
		d.tel.Emit(p.ns.key, kTxnError, int64(code), 0, "deliver")
		return nil, nil, err
	}

	if len(reply.Objects) == 0 {
		// Data-only reply: nothing to install, stay off the lock.
		if p.dead.Load() {
			return nil, nil, ErrDeadProc
		}
		return reply.Data, nil, nil
	}
	d.mu.Lock() //vet:allow hotpath object replies serialize on d.mu by contract
	defer d.mu.Unlock()
	if p.dead.Load() {
		return nil, nil, ErrDeadProc
	}
	handles := make([]Handle, len(reply.Objects)) //vet:allow hotpath object-transfer slow path; serializes on d.mu by contract
	for i, n := range reply.Objects {
		handles[i] = p.installLocked(n)
	}
	return reply.Data, handles, nil
}

// deliver hands a transaction to the target's handler, translating object
// nodes into handles in the target's process. The data-only case takes no
// lock (liveness is an atomic read and the handler is immutable); passing
// objects grows the owner's handle table and therefore serializes on d.mu.
func (d *Driver) deliver(sender Sender, target *Node, code uint32, data []byte, objects []*Node) (Reply, error) {
	var objHandles []Handle
	if len(objects) > 0 {
		owner := target.owner
		d.mu.Lock() //vet:allow hotpath object transfer serializes on d.mu by contract
		if target.dead() {
			d.mu.Unlock()
			return Reply{}, ErrDeadNode
		}
		objHandles = make([]Handle, len(objects)) //vet:allow hotpath object-transfer slow path; serializes on d.mu by contract
		for i, n := range objects {
			objHandles[i] = owner.installLocked(n)
		}
		d.mu.Unlock()
	} else if target.dead() {
		return Reply{}, ErrDeadNode
	}
	h := target.h
	if h == nil {
		return Reply{}, fmt.Errorf("binder: node %q has no handler", target.name) //vet:allow hotpath cold error path (node without handler)
	}
	return h(Txn{Code: code, Data: data, Objects: objHandles, Sender: sender})
}

func kernelSender() Sender { return Sender{PID: 0, EUID: 0, Container: "<kernel>"} }

// PublishToAllNS implements the PUBLISH_TO_ALL_NS ioctl: it takes a service
// name and a handle valid in p, and registers that service with the Context
// Manager of every other namespace by making the driver's own AddService
// registration call. Callable only from the device container's namespace,
// for security. The registration is recorded so namespaces created later
// receive it too.
func (p *Proc) PublishToAllNS(name string, h Handle) error {
	d := p.driver
	d.mu.Lock()
	if d.devcon == nil || p.ns != d.devcon {
		d.mu.Unlock()
		return fmt.Errorf("%w: PUBLISH_TO_ALL_NS is restricted to the device container", ErrPermission)
	}
	node, err := p.resolve(h)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.published = append(d.published, publishedService{name: name, node: node})
	// Snapshot the managers to call outside the lock, in namespace-name
	// order: each AddService delivery can emit trace events, so the fan-out
	// sequence must not follow map iteration order.
	var managers []*Node
	for _, ns := range *d.namespaces.Load() {
		if ns == d.devcon {
			continue
		}
		// The presence of a ServiceManager indicates the container is a
		// virtual drone running Android Things.
		if mgr := ns.mgr.Load(); mgr != nil && !mgr.dead() {
			managers = append(managers, mgr)
		}
	}
	d.mu.Unlock()
	sort.Slice(managers, func(i, j int) bool {
		return managers[i].owner.ns.name < managers[j].owner.ns.name
	})
	for _, mgr := range managers {
		if _, err := d.deliver(kernelSender(), mgr, CodeAddService, []byte(name), []*Node{node}); err != nil {
			return fmt.Errorf("binder: publishing %q to %q: %w", name, mgr.owner.ns.name, err)
		}
	}
	mPublishes.Inc()
	d.tel.Emit(0, kPublishAllNS, int64(len(managers)), 0, name)
	return nil
}

// PublishToDevCon implements the PUBLISH_TO_DEV_CON ioctl: it registers the
// node (a container's ActivityManager) with the device container's Context
// Manager under "<name>:<container>", so device services can locate the
// calling container's ActivityManager for permission checks.
func (p *Proc) PublishToDevCon(name string, h Handle) error {
	d := p.driver
	d.mu.Lock()
	if d.devcon == nil {
		d.mu.Unlock()
		return fmt.Errorf("%w: no device container designated", ErrNoContextManager)
	}
	if p.ns == d.devcon {
		d.mu.Unlock()
		return fmt.Errorf("%w: device container cannot publish to itself", ErrPermission)
	}
	node, err := p.resolve(h)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	mgr := d.devcon.mgr.Load()
	if mgr == nil || mgr.dead() {
		d.mu.Unlock()
		return ErrNoContextManager
	}
	scoped := ScopedName(name, p.ns.name)
	d.mu.Unlock()
	_, err = d.deliver(kernelSender(), mgr, CodeAddService, []byte(scoped), []*Node{node})
	if err == nil {
		mPublishes.Inc()
		d.tel.Emit(p.ns.key, kPublishDevCon, 0, 0, scoped)
	}
	return err
}

// ScopedName is the naming convention PUBLISH_TO_DEV_CON uses: the service
// name appended with the container identifier.
func ScopedName(service, container string) string {
	return service + ":" + container
}
