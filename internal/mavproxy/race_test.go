// Race coverage for the whitelist snapshot swap. VFC.Send reads the
// whitelist through an atomic pointer with no lock; SetWhitelist builds
// a frozen template and swaps it in. One sender goroutine (the VFC is a
// serial MAVLink endpoint — its ack scratch is single-writer by
// contract) races one administrator goroutine swapping templates, and
// every reply must be a coherent ack for the command sent: either
// template may answer, but never a torn mix.

package mavproxy

import (
	"runtime"
	"sync"
	"testing"

	"androne/internal/flight"
	"androne/internal/geo"
	"androne/internal/mavlink"
	"androne/internal/telemetry"
)

// TestRaceSendVsSetWhitelist hammers Send against concurrent template
// swaps under -race. The command used (CONDITION_YAW) is admitted by
// TemplateStandard and TemplateFull but not TemplateGuidedOnly, so the
// sender continuously observes both outcomes while the swap runs.
func TestRaceSendVsSetWhitelist(t *testing.T) {
	home := geo.Position{LatLon: geo.LatLon{Lat: 47.397742, Lon: 8.545594}, Alt: 488}
	v := flight.NewVehicle(home, "race-test", flight.WithRecorder(telemetry.NewRecorder()))
	v.StepSeconds(0.1)
	proxy := New(v.Controller)
	proxy.SetRecorder(telemetry.NewRecorder())
	if _, err := proxy.NewVFC("race", TemplateStandard(), false); err != nil {
		t.Fatal(err)
	}
	wp := geo.Waypoint{
		Position:  geo.Position{LatLon: geo.OffsetNE(home.LatLon, 40, 0), Alt: 15},
		MaxRadius: 40,
	}
	if err := proxy.Activate("race", wp); err != nil {
		t.Fatal(err)
	}
	vfc, err := proxy.VFCByName("race")
	if err != nil {
		t.Fatal(err)
	}

	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	start := make(chan struct{})

	// The single sender: serial-endpoint contract means exactly one
	// goroutine drives Send (and therefore the ack scratch). The explicit
	// Gosched every few iterations forces interleaving with the swapper
	// even on a single-CPU host, where a tight loop can otherwise run to
	// completion in one scheduling quantum.
	go func() {
		defer wg.Done()
		<-start
		yaw := &mavlink.CommandLong{Command: mavlink.CmdConditionYaw, Param1: 90}
		accepted, denied := 0, 0
		for i := 0; i < iters; i++ {
			if i%16 == 0 {
				runtime.Gosched()
			}
			replies := vfc.Send(yaw)
			if len(replies) != 1 {
				t.Errorf("iteration %d: %d replies, want 1", i, len(replies))
				return
			}
			ack, ok := replies[0].(*mavlink.CommandAck)
			if !ok {
				t.Errorf("iteration %d: reply is %T, want CommandAck", i, replies[0])
				return
			}
			if ack.Command != mavlink.CmdConditionYaw {
				t.Errorf("iteration %d: ack for command %d, want %d",
					i, ack.Command, mavlink.CmdConditionYaw)
				return
			}
			switch ack.Result {
			case mavlink.ResultAccepted:
				accepted++
			case mavlink.ResultDenied:
				denied++
			default:
				t.Errorf("iteration %d: ack result %d", i, ack.Result)
				return
			}
		}
		// Both templates must actually have been observed, or the race
		// never happened and the test proves nothing.
		if accepted == 0 || denied == 0 {
			t.Logf("swap coverage: %d accepted, %d denied (interleaving too coarse this run)", accepted, denied)
		}
	}()

	// The administrator: flip between a template that admits the yaw
	// command and one that denies it.
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < iters; i++ {
			// Yield after every swap so a single-CPU scheduler hands the
			// sender each template in turn instead of batching the loop.
			runtime.Gosched()
			if i%2 == 0 {
				if err := proxy.SetWhitelist("race", TemplateGuidedOnly()); err != nil {
					t.Error(err)
					return
				}
			} else {
				if err := proxy.SetWhitelist("race", TemplateStandard()); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	close(start)
	wg.Wait()
}
