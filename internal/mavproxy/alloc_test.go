// Allocation budgets for the VFC hot path. BENCH_baseline.json (PR 4)
// recorded vfc-send at 2 allocs/op — the ack and its reply slice built
// fresh on every accepted command. The fleet work replaced both with
// per-endpoint scratch (flight.Controller.ackReply, VFC.deny), and these
// tests pin the budget at zero so a regression shows up as a test failure
// rather than a silent line in the next benchmark run.

package mavproxy

import (
	"testing"

	"androne/internal/flight"
	"androne/internal/geo"
	"androne/internal/mavlink"
	"androne/internal/telemetry"
)

// allocVFC builds an activated VFC in front of a live flight controller —
// the same assembly androne-bench measures as "vfc-send".
func allocVFC(t *testing.T) *VFC {
	t.Helper()
	home := geo.Position{LatLon: geo.LatLon{Lat: 47.397742, Lon: 8.545594}, Alt: 488}
	v := flight.NewVehicle(home, "alloc-test", flight.WithRecorder(telemetry.NewRecorder()))
	v.StepSeconds(0.1)
	proxy := New(v.Controller)
	proxy.SetRecorder(telemetry.NewRecorder())
	if _, err := proxy.NewVFC("alloc", TemplateStandard(), false); err != nil {
		t.Fatal(err)
	}
	wp := geo.Waypoint{
		Position:  geo.Position{LatLon: geo.OffsetNE(home.LatLon, 40, 0), Alt: 15},
		MaxRadius: 40,
	}
	if err := proxy.Activate("alloc", wp); err != nil {
		t.Fatal(err)
	}
	vfc, err := proxy.VFCByName("alloc")
	if err != nil {
		t.Fatal(err)
	}
	return vfc
}

// TestSendAcceptedZeroAlloc pins the accepted-command path (whitelist pass,
// forward to the flight controller, ack from scratch) at 0 allocs/op.
func TestSendAcceptedZeroAlloc(t *testing.T) {
	vfc := allocVFC(t)
	yaw := &mavlink.CommandLong{Command: mavlink.CmdConditionYaw, Param1: 45}
	allocs := testing.AllocsPerRun(1000, func() {
		if vfc.Send(yaw) == nil {
			t.Fatal("whitelisted command was not acknowledged")
		}
	})
	if allocs != 0 {
		t.Fatalf("accepted vfc-send allocated %.1f/op, want 0", allocs)
	}
}

// TestSendDeniedZeroAlloc pins the denial path (whitelist miss, ack from
// the VFC's own scratch) at 0 allocs/op — idle fleets spam denials.
func TestSendDeniedZeroAlloc(t *testing.T) {
	vfc := allocVFC(t)
	arm := &mavlink.CommandLong{Command: mavlink.CmdComponentArmDisarm, Param1: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		replies := vfc.Send(arm)
		ack, ok := replies[0].(*mavlink.CommandAck)
		if !ok || ack.Result != mavlink.ResultDenied {
			t.Fatal("non-whitelisted command was not denied")
		}
	})
	if allocs != 0 {
		t.Fatalf("denied vfc-send allocated %.1f/op, want 0", allocs)
	}
}
