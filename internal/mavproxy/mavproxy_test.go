package mavproxy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"androne/internal/flight"
	"androne/internal/geo"
	"androne/internal/mavlink"
)

var home = geo.Position{LatLon: geo.LatLon{Lat: 43.6084298, Lon: -85.8110359}, Alt: 0}

type rig struct {
	v     *flight.Vehicle
	proxy *Proxy
}

func newRig(t *testing.T) *rig {
	t.Helper()
	v := flight.NewVehicle(home, t.Name())
	v.StepSeconds(0.1)
	return &rig{v: v, proxy: New(v.Controller)}
}

// fly advances the sim and ticks the proxy.
func (r *rig) fly(seconds float64) {
	steps := int(seconds * flight.FastLoopHz)
	for i := 0; i < steps; i++ {
		r.v.Sim.Step(flight.FastLoopDT)
		r.v.Controller.Step(flight.FastLoopDT)
		if i%40 == 0 {
			r.proxy.Tick()
		}
	}
}

// flyUntil advances until cond or timeout, ticking the proxy.
func (r *rig) flyUntil(cond func() bool, timeoutS float64) bool {
	steps := int(timeoutS * flight.FastLoopHz)
	for i := 0; i < steps; i++ {
		r.v.Sim.Step(flight.FastLoopDT)
		r.v.Controller.Step(flight.FastLoopDT)
		if i%40 == 0 {
			r.proxy.Tick()
			if cond() {
				return true
			}
		}
	}
	return cond()
}

// takeoff uses the master connection (the flight planner's role).
func (r *rig) takeoff(t *testing.T, alt float64) {
	t.Helper()
	m := r.proxy.Master()
	m.Send(&mavlink.CommandLong{Command: mavlink.CmdDoSetMode, Param2: mavlink.ModeGuided})
	m.Send(&mavlink.CommandLong{Command: mavlink.CmdComponentArmDisarm, Param1: 1})
	m.Send(&mavlink.CommandLong{Command: mavlink.CmdNavTakeoff, Param7: float32(alt)})
	if !r.flyUntil(func() bool { return math.Abs(r.v.Sim.AltitudeAGL()-alt) < 0.5 }, 30) {
		t.Fatalf("takeoff failed: %.2f m", r.v.Sim.AltitudeAGL())
	}
}

func waypointAt(n, e float64, radius float64) geo.Waypoint {
	return geo.Waypoint{
		Position:  geo.Position{LatLon: geo.OffsetNE(home.LatLon, n, e), Alt: 15},
		MaxRadius: radius,
	}
}

func ackResult(t *testing.T, replies []mavlink.Message) uint8 {
	t.Helper()
	if len(replies) != 1 {
		t.Fatalf("replies = %v", replies)
	}
	return replies[0].(*mavlink.CommandAck).Result
}

func TestMasterUnrestricted(t *testing.T) {
	r := newRig(t)
	r.takeoff(t, 10)
	if !r.v.Controller.Armed() {
		t.Fatal("not armed via master")
	}
}

func TestVFCIdlePresentsGroundedDrone(t *testing.T) {
	r := newRig(t)
	vfc, err := r.proxy.NewVFC("vd1", TemplateStandard(), false)
	if err != nil {
		t.Fatal(err)
	}
	// Assign its waypoint but don't activate.
	wp := waypointAt(50, 0, 30)
	vfc.mu.Lock()
	vfc.waypoint = wp
	vfc.mu.Unlock()

	r.takeoff(t, 15) // real drone flies; virtual view must not change

	tele := vfc.Telemetry()
	var hb *mavlink.Heartbeat
	var gp *mavlink.GlobalPositionInt
	for _, m := range tele {
		switch v := m.(type) {
		case *mavlink.Heartbeat:
			hb = v
		case *mavlink.GlobalPositionInt:
			gp = v
		}
	}
	if hb == nil || gp == nil {
		t.Fatalf("telemetry = %v", tele)
	}
	if hb.Armed() {
		t.Fatal("idle VFC shows armed drone")
	}
	if gp.RelativeAltMM != 0 {
		t.Fatalf("idle VFC altitude = %d mm, want on ground", gp.RelativeAltMM)
	}
	if got := mavlink.E7ToLatLon(gp.LatE7); math.Abs(got-wp.Lat) > 1e-6 {
		t.Fatalf("idle VFC lat = %v, want waypoint %v", got, wp.Lat)
	}

	// Commands are declined while idle.
	res := ackResult(t, vfc.Send(&mavlink.CommandLong{Command: mavlink.CmdNavTakeoff, Param7: 10}))
	if res != mavlink.ResultTemporarilyRejected {
		t.Fatalf("idle command result = %d", res)
	}
}

func TestVFCActiveControlsDrone(t *testing.T) {
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateStandard(), false)
	r.takeoff(t, 15)
	wp := waypointAt(0, 0, 60)
	if err := r.proxy.Activate("vd1", wp); err != nil {
		t.Fatal(err)
	}
	if vfc.State() != VFCActive {
		t.Fatalf("state = %v", vfc.State())
	}

	// Guided position target inside the fence.
	tgt := geo.OffsetNE(home.LatLon, 30, 0)
	vfc.Send(&mavlink.SetPositionTargetGlobalInt{
		LatE7: mavlink.LatLonToE7(tgt.Lat), LonE7: mavlink.LatLonToE7(tgt.Lon), Alt: 15,
	})
	ok := r.flyUntil(func() bool {
		n, _ := r.v.Sim.NE()
		return n > 28
	}, 40)
	if !ok {
		t.Fatal("VFC position target not honored")
	}
	// Active telemetry is real.
	tele := vfc.Telemetry()
	for _, m := range tele {
		if gp, ok := m.(*mavlink.GlobalPositionInt); ok {
			if gp.RelativeAltMM < 10000 {
				t.Fatalf("active VFC altitude = %d mm", gp.RelativeAltMM)
			}
		}
	}
}

func TestWhitelistGuidedOnly(t *testing.T) {
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateGuidedOnly(), false)
	r.takeoff(t, 15)
	if err := r.proxy.Activate("vd1", waypointAt(0, 0, 60)); err != nil {
		t.Fatal(err)
	}

	// Takeoff/land/RTL commands denied.
	for _, cmd := range []uint16{mavlink.CmdNavTakeoff, mavlink.CmdNavLand, mavlink.CmdNavReturnToLaunch, mavlink.CmdDoSetMode} {
		res := ackResult(t, vfc.Send(&mavlink.CommandLong{Command: cmd, Param2: mavlink.ModeGuided, Param7: 10}))
		if res != mavlink.ResultDenied {
			t.Errorf("command %d result = %d, want denied", cmd, res)
		}
	}
	// Speed change allowed.
	res := ackResult(t, vfc.Send(&mavlink.CommandLong{Command: mavlink.CmdDoChangeSpeed, Param2: 3}))
	if res != mavlink.ResultAccepted {
		t.Fatalf("speed change result = %d", res)
	}
	// Position target allowed (inside fence).
	tgt := geo.OffsetNE(home.LatLon, 10, 10)
	replies := vfc.Send(&mavlink.SetPositionTargetGlobalInt{
		LatE7: mavlink.LatLonToE7(tgt.Lat), LonE7: mavlink.LatLonToE7(tgt.Lon), Alt: 15,
	})
	if len(replies) != 0 {
		t.Fatalf("position target replies = %v", replies)
	}
}

func TestFenceRejectsOutsideTargets(t *testing.T) {
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateStandard(), false)
	r.takeoff(t, 15)
	if err := r.proxy.Activate("vd1", waypointAt(0, 0, 30)); err != nil {
		t.Fatal(err)
	}
	out := geo.OffsetNE(home.LatLon, 100, 0)
	res := ackResult(t, vfc.Send(&mavlink.SetPositionTargetGlobalInt{
		LatE7: mavlink.LatLonToE7(out.Lat), LonE7: mavlink.LatLonToE7(out.Lon), Alt: 15,
	}))
	if res != mavlink.ResultDenied {
		t.Fatalf("outside target result = %d, want denied", res)
	}
}

func TestUnsafeModeDenied(t *testing.T) {
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateStandard(), false)
	r.takeoff(t, 15)
	if err := r.proxy.Activate("vd1", waypointAt(0, 0, 60)); err != nil {
		t.Fatal(err)
	}
	// RTL and STABILIZE via SetMode are reserved for the provider.
	for _, mode := range []uint32{mavlink.ModeRTL, mavlink.ModeStabilize, mavlink.ModeAuto} {
		res := ackResult(t, vfc.Send(&mavlink.SetMode{CustomMode: mode}))
		if res != mavlink.ResultDenied {
			t.Errorf("mode %s result = %d, want denied", mavlink.ModeName(mode), res)
		}
	}
	// LOITER is fine.
	res := ackResult(t, vfc.Send(&mavlink.SetMode{CustomMode: mavlink.ModeLoiter}))
	if res != mavlink.ResultAccepted {
		t.Fatalf("loiter result = %d", res)
	}
}

func TestGeofenceBreachSequence(t *testing.T) {
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateStandard(), false)
	r.takeoff(t, 15)
	if err := r.proxy.Activate("vd1", waypointAt(0, 0, 40)); err != nil {
		t.Fatal(err)
	}
	// The provider-side master flies the drone out of the fence (simulating
	// e.g. a gust or an aggressive manual maneuver).
	if err := r.proxy.Master().Controller().GotoPosition(
		geo.Position{LatLon: geo.OffsetNE(home.LatLon, 80, 0), Alt: 15}, 0); err != nil {
		t.Fatal(err)
	}

	// Breach detected: commands disabled, virtual drone informed.
	ok := r.flyUntil(func() bool { return vfc.Recovering() }, 40)
	if !ok {
		t.Fatal("breach never detected")
	}
	res := ackResult(t, vfc.Send(&mavlink.CommandLong{Command: mavlink.CmdDoChangeSpeed, Param2: 2}))
	if res != mavlink.ResultTemporarilyRejected {
		t.Fatalf("command during recovery = %d", res)
	}

	// Recovery completes: drone back inside, loitering, control returned.
	ok = r.flyUntil(func() bool { return !vfc.Recovering() }, 60)
	if !ok {
		t.Fatal("recovery never completed")
	}
	fence := geo.FenceFor(waypointAt(0, 0, 40))
	if !fence.Contains(r.v.Sim.Position()) {
		t.Fatalf("drone still outside fence at %v", r.v.Sim.Position())
	}
	if mode := r.v.Controller.Mode(); mode != mavlink.ModeLoiter {
		t.Fatalf("mode after recovery = %s", mavlink.ModeName(mode))
	}
	// Events delivered: breach warning and recovery notice.
	var texts []string
	for _, m := range vfc.Telemetry() {
		if st, ok := m.(*mavlink.StatusText); ok {
			texts = append(texts, st.Text)
		}
	}
	if len(texts) < 2 {
		t.Fatalf("status texts = %v, want breach + recovery", texts)
	}
	// Commands accepted again.
	res = ackResult(t, vfc.Send(&mavlink.CommandLong{Command: mavlink.CmdDoChangeSpeed, Param2: 2}))
	if res != mavlink.ResultAccepted {
		t.Fatalf("command after recovery = %d", res)
	}
}

func TestDeactivatePresentsLanding(t *testing.T) {
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateStandard(), false)
	r.takeoff(t, 15)
	if err := r.proxy.Activate("vd1", waypointAt(0, 0, 60)); err != nil {
		t.Fatal(err)
	}
	if err := r.proxy.Deactivate("vd1"); err != nil {
		t.Fatal(err)
	}
	if vfc.State() != VFCFinished {
		t.Fatalf("state = %v", vfc.State())
	}
	// Commands declined, view is landed.
	res := ackResult(t, vfc.Send(&mavlink.CommandLong{Command: mavlink.CmdDoChangeSpeed, Param2: 2}))
	if res != mavlink.ResultTemporarilyRejected {
		t.Fatalf("result = %d", res)
	}
	for _, m := range vfc.Telemetry() {
		if gp, ok := m.(*mavlink.GlobalPositionInt); ok && gp.RelativeAltMM != 0 {
			t.Fatalf("finished VFC altitude = %d", gp.RelativeAltMM)
		}
	}
	// The controller's fence was removed so the planner can route on.
	if r.v.Controller.Fence() != nil {
		t.Fatal("fence still installed after deactivation")
	}
}

func TestContinuousDevicesShowRealPosition(t *testing.T) {
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateStandard(), true)
	r.takeoff(t, 15)

	// Inactive but continuous: the real position is shown to avoid
	// discrepancies with device readings...
	var gotAlt int32
	for _, m := range vfc.Telemetry() {
		if gp, ok := m.(*mavlink.GlobalPositionInt); ok {
			gotAlt = gp.RelativeAltMM
		}
	}
	if gotAlt < 10000 {
		t.Fatalf("continuous VFC altitude = %d mm, want real (~15000)", gotAlt)
	}
	// ...but the heartbeat presents an inactive (disarmed) drone and
	// commands are still declined until a waypoint is reached.
	for _, m := range vfc.Telemetry() {
		if hb, ok := m.(*mavlink.Heartbeat); ok && hb.Armed() {
			t.Fatal("continuous inactive VFC shows armed")
		}
	}
	res := ackResult(t, vfc.Send(&mavlink.CommandLong{Command: mavlink.CmdDoChangeSpeed, Param2: 2}))
	if res != mavlink.ResultTemporarilyRejected {
		t.Fatalf("result = %d", res)
	}
}

func TestVFCBookkeeping(t *testing.T) {
	r := newRig(t)
	if _, err := r.proxy.NewVFC("vd1", TemplateStandard(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := r.proxy.NewVFC("vd1", TemplateStandard(), false); !errors.Is(err, ErrVFCExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := r.proxy.VFCByName("nope"); !errors.Is(err, ErrNoVFC) {
		t.Fatalf("missing: %v", err)
	}
	if err := r.proxy.Activate("nope", waypointAt(0, 0, 30)); !errors.Is(err, ErrNoVFC) {
		t.Fatalf("activate missing: %v", err)
	}
	if err := r.proxy.Deactivate("nope"); !errors.Is(err, ErrNoVFC) {
		t.Fatalf("deactivate missing: %v", err)
	}
}

func TestHeartbeatsAlwaysSilent(t *testing.T) {
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateGuidedOnly(), false)
	if replies := vfc.Send(&mavlink.Heartbeat{}); replies != nil {
		t.Fatalf("heartbeat replies = %v", replies)
	}
}

func TestTemplates(t *testing.T) {
	g := TemplateGuidedOnly()
	if g.AllowsCommand(mavlink.CmdNavTakeoff) || !g.AllowsMessage(mavlink.MsgIDSetPositionTargetGlobal) {
		t.Fatal("guided-only template wrong")
	}
	s := TemplateStandard()
	if !s.AllowsCommand(mavlink.CmdNavTakeoff) || s.AllowsCommand(mavlink.CmdNavReturnToLaunch) {
		t.Fatal("standard template wrong")
	}
	f := TemplateFull()
	if !f.AllowsCommand(mavlink.CmdNavReturnToLaunch) {
		t.Fatal("full template wrong")
	}
}

func TestWhitelistPropertyDenyByDefault(t *testing.T) {
	// Property: while active, any command NOT in the whitelist is denied
	// and never reaches the flight controller; any in-fence position target
	// is forwarded; nothing reaches the controller while idle/finished.
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateGuidedOnly(), false)
	r.takeoff(t, 15)
	if err := r.proxy.Activate("vd1", waypointAt(0, 0, 60)); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(cmd uint16) bool {
		armedBefore := r.v.Controller.Armed()
		modeBefore := r.v.Controller.Mode()
		replies := vfc.Send(&mavlink.CommandLong{Command: cmd, Param1: 1, Param2: mavlink.ModeGuided})
		allowed := TemplateGuidedOnly().AllowsCommand(cmd)
		if !allowed {
			// Denied, and no controller state change.
			if len(replies) != 1 {
				return false
			}
			ack := replies[0].(*mavlink.CommandAck)
			if ack.Result != mavlink.ResultDenied {
				return false
			}
			return r.v.Controller.Armed() == armedBefore && r.v.Controller.Mode() == modeBefore
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFencePropertyPositionTargets(t *testing.T) {
	// Property: a position target is accepted iff it lies inside the
	// waypoint's geofence sphere.
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateStandard(), false)
	r.takeoff(t, 15)
	wp := waypointAt(0, 0, 40)
	if err := r.proxy.Activate("vd1", wp); err != nil {
		t.Fatal(err)
	}
	fence := geo.FenceFor(wp)
	if err := quick.Check(func(rawN, rawE, rawAlt float64) bool {
		n := math.Mod(rawN, 100)
		e := math.Mod(rawE, 100)
		alt := math.Abs(math.Mod(rawAlt, 60))
		if math.IsNaN(n) || math.IsNaN(e) || math.IsNaN(alt) {
			return true
		}
		target := geo.Position{LatLon: geo.OffsetNE(home.LatLon, n, e), Alt: alt}
		replies := vfc.Send(&mavlink.SetPositionTargetGlobalInt{
			LatE7: mavlink.LatLonToE7(target.Lat), LonE7: mavlink.LatLonToE7(target.Lon),
			Alt: float32(target.Alt),
		})
		inside := fence.Contains(target)
		if inside {
			return len(replies) == 0 // forwarded silently
		}
		if len(replies) != 1 {
			return false
		}
		return replies[0].(*mavlink.CommandAck).Result == mavlink.ResultDenied
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVFCMissionUploadAndAuto(t *testing.T) {
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateStandard(), false)
	r.takeoff(t, 15)
	if err := r.proxy.Activate("vd1", waypointAt(0, 0, 60)); err != nil {
		t.Fatal(err)
	}

	// AUTO before any upload is denied.
	res := ackResult(t, vfc.Send(&mavlink.SetMode{CustomMode: mavlink.ModeAuto}))
	if res != mavlink.ResultDenied {
		t.Fatalf("AUTO without mission = %d", res)
	}

	// Upload a 2-item mission inside the fence.
	replies := vfc.Send(&mavlink.MissionCount{Count: 2})
	if _, ok := replies[0].(*mavlink.MissionRequestInt); !ok {
		t.Fatalf("replies = %v", replies)
	}
	for i, ne := range [][2]float64{{20, 0}, {0, 20}} {
		ll := geo.OffsetNE(home.LatLon, ne[0], ne[1])
		replies = vfc.Send(&mavlink.MissionItemInt{
			Seq: uint16(i), Command: mavlink.CmdNavWaypoint,
			LatE7: mavlink.LatLonToE7(ll.Lat), LonE7: mavlink.LatLonToE7(ll.Lon), Alt: 15,
		})
	}
	if ack, ok := replies[0].(*mavlink.MissionAck); !ok || ack.Type != mavlink.MissionAccepted {
		t.Fatalf("upload ack = %v", replies)
	}

	// Now AUTO is allowed and the drone flies the mission.
	res = ackResult(t, vfc.Send(&mavlink.SetMode{CustomMode: mavlink.ModeAuto}))
	if res != mavlink.ResultAccepted {
		t.Fatalf("AUTO after upload = %d", res)
	}
	tgt := geo.Position{LatLon: geo.OffsetNE(home.LatLon, 0, 20), Alt: 15}
	if !r.flyUntil(func() bool { return geo.Distance3D(r.v.Sim.Position(), tgt) < 2 }, 90) {
		t.Fatal("mission not flown")
	}
}

func TestVFCMissionItemOutsideFenceDenied(t *testing.T) {
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateStandard(), false)
	r.takeoff(t, 15)
	if err := r.proxy.Activate("vd1", waypointAt(0, 0, 40)); err != nil {
		t.Fatal(err)
	}
	vfc.Send(&mavlink.MissionCount{Count: 1})
	out := geo.OffsetNE(home.LatLon, 200, 0)
	replies := vfc.Send(&mavlink.MissionItemInt{
		Seq: 0, Command: mavlink.CmdNavWaypoint,
		LatE7: mavlink.LatLonToE7(out.Lat), LonE7: mavlink.LatLonToE7(out.Lon), Alt: 15,
	})
	ack, ok := replies[0].(*mavlink.MissionAck)
	if !ok || ack.Type != mavlink.MissionDenied {
		t.Fatalf("replies = %v", replies)
	}
	// AUTO remains locked.
	res := ackResult(t, vfc.Send(&mavlink.SetMode{CustomMode: mavlink.ModeAuto}))
	if res != mavlink.ResultDenied {
		t.Fatalf("AUTO after denied item = %d", res)
	}
}

func TestVFCMissionGuidedOnlyDenied(t *testing.T) {
	r := newRig(t)
	vfc, _ := r.proxy.NewVFC("vd1", TemplateGuidedOnly(), false)
	r.takeoff(t, 15)
	if err := r.proxy.Activate("vd1", waypointAt(0, 0, 60)); err != nil {
		t.Fatal(err)
	}
	res := ackResult(t, vfc.Send(&mavlink.MissionCount{Count: 1}))
	if res != mavlink.ResultDenied {
		t.Fatalf("guided-only mission upload = %d", res)
	}
}

func TestVFCParamGating(t *testing.T) {
	r := newRig(t)
	std, _ := r.proxy.NewVFC("std", TemplateStandard(), false)
	full, _ := r.proxy.NewVFC("full", TemplateFull(), false)
	r.takeoff(t, 15)
	if err := r.proxy.Activate("std", waypointAt(0, 0, 60)); err != nil {
		t.Fatal(err)
	}

	// Standard: reads allowed, writes denied.
	replies := std.Send(&mavlink.ParamRequestList{})
	if len(replies) == 0 {
		t.Fatal("standard template cannot read params")
	}
	res := ackResult(t, std.Send(&mavlink.ParamSet{ParamID: flight.ParamWPNavSpeed, Value: 300}))
	if res != mavlink.ResultDenied {
		t.Fatalf("standard param write = %d, want denied", res)
	}

	// Full: writes pass through (and get clamped by the controller).
	if err := r.proxy.Deactivate("std"); err != nil {
		t.Fatal(err)
	}
	if err := r.proxy.Activate("full", waypointAt(0, 0, 60)); err != nil {
		t.Fatal(err)
	}
	replies = full.Send(&mavlink.ParamSet{ParamID: flight.ParamWPNavSpeed, Value: 99999})
	if len(replies) != 1 {
		t.Fatalf("full param write replies = %v", replies)
	}
	if got := replies[0].(*mavlink.ParamValue).Value; got != 1200 {
		t.Fatalf("clamped value = %g, want 1200", got)
	}
}
