package mavproxy

import (
	"fmt"
	"math"
	"testing"

	"androne/internal/flight"
	"androne/internal/geo"
	"androne/internal/mavlink"
)

// TestTemplateMonotonicity proves the whitelist templates form a chain:
// everything guided-only admits is admitted by standard, and everything
// standard admits is admitted by full — over the ENTIRE id space, not just
// the ids we happen to use. A template edit that breaks the ordering (e.g.
// full losing a message standard keeps) fails here immediately.
func TestTemplateMonotonicity(t *testing.T) {
	g, s, fl := TemplateGuidedOnly(), TemplateStandard(), TemplateFull()
	for id := 0; id <= math.MaxUint8; id++ {
		mid := uint8(id)
		if g.AllowsMessage(mid) && !s.AllowsMessage(mid) {
			t.Errorf("message %d: guided-only ⊄ standard", mid)
		}
		if s.AllowsMessage(mid) && !fl.AllowsMessage(mid) {
			t.Errorf("message %d: standard ⊄ full", mid)
		}
	}
	for cmd := 0; cmd <= math.MaxUint16; cmd++ {
		c := uint16(cmd)
		if g.AllowsCommand(c) && !s.AllowsCommand(c) {
			t.Errorf("command %d: guided-only ⊄ standard", c)
		}
		if s.AllowsCommand(c) && !fl.AllowsCommand(c) {
			t.Errorf("command %d: standard ⊄ full", c)
		}
	}
	// The chain is strict: each step adds something.
	if len(s.Commands) <= len(g.Commands) || len(fl.Messages) <= len(s.Messages) {
		t.Error("template chain is not strictly increasing")
	}
	// Arming stays the provider's at every level (§4.2: the whitelist can
	// range up to full control, but arm/disarm is never delegated).
	for _, w := range []Whitelist{g, s, fl} {
		if w.AllowsCommand(mavlink.CmdComponentArmDisarm) {
			t.Errorf("template %q delegates arm/disarm", w.Name)
		}
	}
}

// FuzzVFCStateMachine drives a VFC through random Activate / Deactivate /
// Send / SetWhitelist / Tick / Telemetry sequences decoded from the fuzz
// input. Whatever the order, the proxy must not panic and the confinement
// invariants must hold at every step: a VFC that is not active temporarily
// rejects everything, an active VFC accepts a whitelisted command and
// denies arm/disarm, and the lifecycle state is always one of the three
// legal values.
func FuzzVFCStateMachine(f *testing.F) {
	f.Add([]byte{0, 2, 3, 4, 1, 5, 0, 6, 7, 2})
	f.Add([]byte{1, 1, 0, 0, 2, 2, 7, 7, 3})
	f.Add([]byte{5, 6, 4, 0, 2, 1, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		v := flight.NewVehicle(home, fmt.Sprintf("fuzz-vfc-%x", ops))
		v.StepSeconds(0.1) // GPS fix
		proxy := New(v.Controller)
		vfc, err := proxy.NewVFC("vd", TemplateStandard(), false)
		if err != nil {
			t.Fatal(err)
		}
		wp := waypointAt(0, 0, 60)

		for i, op := range ops {
			switch op % 8 {
			case 0:
				if err := proxy.Activate("vd", wp); err != nil {
					t.Fatalf("op %d: activate: %v", i, err)
				}
				if vfc.State() != VFCActive {
					t.Fatalf("op %d: state after activate = %v", i, vfc.State())
				}
			case 1:
				if err := proxy.Deactivate("vd"); err != nil {
					t.Fatalf("op %d: deactivate: %v", i, err)
				}
				if vfc.State() != VFCFinished {
					t.Fatalf("op %d: state after deactivate = %v", i, vfc.State())
				}
			case 2:
				// A command in every template: accepted iff active.
				active := vfc.State() == VFCActive
				res := sendResult(t, vfc, &mavlink.CommandLong{Command: mavlink.CmdDoChangeSpeed, Param2: 3})
				switch {
				case !active && res != mavlink.ResultTemporarilyRejected:
					t.Fatalf("op %d: inactive speed change = %d", i, res)
				case active && res != mavlink.ResultAccepted:
					t.Fatalf("op %d: active speed change = %d", i, res)
				}
			case 3:
				// Arm/disarm is never whitelisted: denied while active,
				// temporarily rejected otherwise — never accepted.
				active := vfc.State() == VFCActive
				res := sendResult(t, vfc, &mavlink.CommandLong{Command: mavlink.CmdComponentArmDisarm, Param1: 1})
				want := uint8(mavlink.ResultTemporarilyRejected)
				if active {
					want = mavlink.ResultDenied
				}
				if res != want {
					t.Fatalf("op %d: arm/disarm = %d, want %d", i, res, want)
				}
			case 4:
				// An out-of-fence position target is never forwarded.
				out := geo.OffsetNE(home.LatLon, 500, 0)
				replies := vfc.Send(&mavlink.SetPositionTargetGlobalInt{
					LatE7: mavlink.LatLonToE7(out.Lat), LonE7: mavlink.LatLonToE7(out.Lon), Alt: 15,
				})
				if len(replies) == 0 {
					t.Fatalf("op %d: out-of-fence target forwarded", i)
				}
			case 5:
				proxy.Tick()
			case 6:
				if tele := vfc.Telemetry(); len(tele) == 0 {
					t.Fatalf("op %d: empty telemetry", i)
				}
			case 7:
				// Swap templates mid-sequence; op parity picks the level.
				wl := TemplateGuidedOnly()
				if op >= 128 {
					wl = TemplateFull()
				}
				if err := proxy.SetWhitelist("vd", wl); err != nil {
					t.Fatalf("op %d: set whitelist: %v", i, err)
				}
				// Restore standard so the case-2/3 oracles stay valid.
				if err := proxy.SetWhitelist("vd", TemplateStandard()); err != nil {
					t.Fatalf("op %d: restore whitelist: %v", i, err)
				}
			}
			if s := vfc.State(); s != VFCIdle && s != VFCActive && s != VFCFinished {
				t.Fatalf("op %d: illegal state %d", i, int(s))
			}
		}
	})
}

func sendResult(t *testing.T, vfc *VFC, msg mavlink.Message) uint8 {
	t.Helper()
	replies := vfc.Send(msg)
	if len(replies) != 1 {
		t.Fatalf("replies = %v", replies)
	}
	ack, ok := replies[0].(*mavlink.CommandAck)
	if !ok {
		t.Fatalf("reply = %T", replies[0])
	}
	return ack.Result
}
