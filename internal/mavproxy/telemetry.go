// Flight-recorder instrumentation for the virtualized flight-control
// plane. Accepted traffic pays one atomic counter; denials, breaches, and
// recovery retries emit trace events; completed (or escalated) breach
// recoveries take a black-box dump that carries the retry count — the
// breach-recovery retry counter used to be invisible outside the package.
// All emissions happen outside p.mu/v.mu (locksafe enforces this).

package mavproxy

import "androne/internal/telemetry"

var (
	mSends = telemetry.NewCounter("androne_vfc_sends_total",
		"Non-heartbeat messages processed by VFC Send.")
	mRejects = telemetry.NewCounter("androne_vfc_rejects_total",
		"Messages a VFC declined (whitelist, fence, state, or mode-safety).")
	mBreaches = telemetry.NewCounter("androne_vfc_breaches_total",
		"Geofence breach sequences started.")
	mRecoverRetries = telemetry.NewCounter("androne_vfc_recover_retries_total",
		"Rejected breach-recovery guidance attempts that were retried.")
	mModeRequests = telemetry.NewCounter("androne_vfc_mode_requests_total",
		"Mode changes requested through a VFC and allowed by policy.")
)

// Trace event kinds.
var (
	kReject        = telemetry.K("vfc.reject")
	kModeRequest   = telemetry.K("vfc.mode-request")
	kActivate      = telemetry.K("vfc.activate")
	kDeactivate    = telemetry.K("vfc.deactivate")
	kBreach        = telemetry.K("vfc.breach")
	kRetry         = telemetry.K("vfc.recover-retry")
	kRecovered     = telemetry.K("vfc.recovered")
	kRecoverFailed = telemetry.K("vfc.recover-failed")
	kWhitelistSwap = telemetry.K("vfc.whitelist-swap")
)

// SetRecorder attaches a flight recorder to the proxy. Call during drone
// bring-up, before VFCs are created: each VFC caches the recorder at
// construction time.
func (p *Proxy) SetRecorder(r *telemetry.Recorder) { p.tel = r }

// RecoverTries returns the current count of consecutive rejected
// breach-recovery attempts — nonzero only mid-recovery.
func (v *VFC) RecoverTries() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.recoverTries
}
