// Package mavproxy implements AnDrone's modified MAVProxy: the intermediary
// between clients and the flight controller that virtualizes flight control.
// It provides one standard, unrestricted connection for the cloud flight
// planner and service provider, and a virtual flight controller (VFC)
// connection per virtual drone that
//
//   - restricts which MAVLink commands are accepted via configurable
//     whitelist templates (from guided-only up to full control);
//   - geofences accepted commands to the virtual drone's waypoint volume;
//   - presents a virtualized view of the drone: idle on the ground at the
//     waypoint before activation, live telemetry while active, landing and
//     parked after the virtual drone finishes — unless the virtual drone has
//     continuous device access, in which case real positions are shown but
//     commands are still declined;
//   - handles geofence breaches without interrupting the flight: inform the
//     virtual drone, disable its commands, guide the drone back inside the
//     fence, switch to loiter, then return control.
package mavproxy

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"androne/internal/flight"
	"androne/internal/geo"
	"androne/internal/mavlink"
	"androne/internal/telemetry"
)

// Errors. Command-level refusals are reported in-band as MAVLink acks
// (denied / temporarily rejected), not as Go errors.
var (
	ErrNoVFC     = errors.New("mavproxy: no such VFC")
	ErrVFCExists = errors.New("mavproxy: VFC already exists")
)

// Whitelist is the set of MAVLink traffic a VFC accepts while active.
// Once installed on a VFC (NewVFC or SetWhitelist) a template is frozen:
// Send reads it through an atomic snapshot with no lock, so the installer
// must not mutate the maps afterwards — build a new template and swap it.
type Whitelist struct {
	// Name identifies the template.
	Name string
	// Messages are accepted message ids (commands go through CommandLong
	// and are checked against Commands).
	Messages map[uint8]bool
	// Commands are accepted MAV_CMD numbers within COMMAND_LONG.
	Commands map[uint16]bool
}

// AllowsMessage reports whether a non-command message id is accepted.
func (w Whitelist) AllowsMessage(id uint8) bool { return w.Messages[id] }

// AllowsCommand reports whether a MAV_CMD is accepted.
func (w Whitelist) AllowsCommand(cmd uint16) bool { return w.Commands[cmd] }

// TemplateGuidedOnly is the most restrictive template: the drone may only be
// given a desired GPS position (and a velocity with which to reach it).
func TemplateGuidedOnly() Whitelist {
	return Whitelist{
		Name:     "guided-only",
		Messages: map[uint8]bool{mavlink.MsgIDSetPositionTargetGlobal: true},
		Commands: map[uint16]bool{mavlink.CmdDoChangeSpeed: true},
	}
}

// TemplateStandard allows guided flight plus takeoff, landing, loiter, yaw,
// and speed control.
func TemplateStandard() Whitelist {
	return Whitelist{
		Name: "standard",
		Messages: map[uint8]bool{
			mavlink.MsgIDSetPositionTargetGlobal: true,
			mavlink.MsgIDSetMode:                 true,
			mavlink.MsgIDMissionCount:            true,
			mavlink.MsgIDMissionItemInt:          true,
			mavlink.MsgIDMissionClearAll:         true,
			mavlink.MsgIDParamRequestRead:        true,
			mavlink.MsgIDParamRequestList:        true,
		},
		Commands: map[uint16]bool{
			mavlink.CmdNavTakeoff:     true,
			mavlink.CmdNavLand:        true,
			mavlink.CmdNavLoiterUnlim: true,
			mavlink.CmdConditionYaw:   true,
			mavlink.CmdDoChangeSpeed:  true,
			mavlink.CmdDoSetMode:      true,
		},
	}
}

// TemplateFull allows full control of the drone so long as it remains
// within the geofence; arming remains the provider's.
func TemplateFull() Whitelist {
	w := TemplateStandard()
	w.Name = "full"
	w.Commands[mavlink.CmdNavReturnToLaunch] = true
	// Full control may retune flight parameters; the controller still
	// clamps them to the provider's hard safety bounds.
	w.Messages[mavlink.MsgIDParamSet] = true
	return w
}

// VFCState is the lifecycle of a virtual flight controller connection.
type VFCState int

// VFC lifecycle states.
const (
	// VFCIdle: before the virtual drone's waypoint is reached, the VFC
	// presents the drone as idle on the ground at the waypoint and declines
	// commands.
	VFCIdle VFCState = iota
	// VFCActive: the real drone is at the waypoint; commands control it.
	VFCActive
	// VFCFinished: the virtual drone is done; the VFC presents the drone as
	// landed and declines commands for the remainder of the flight.
	VFCFinished
)

func (s VFCState) String() string {
	switch s {
	case VFCIdle:
		return "idle"
	case VFCActive:
		return "active"
	case VFCFinished:
		return "finished"
	}
	return fmt.Sprintf("VFCState(%d)", int(s))
}

// Proxy is the modified MAVProxy instance in the flight container.
type Proxy struct {
	mu   sync.Mutex
	fc   *flight.Controller
	vfcs map[string]*VFC
	// tel is the drone's flight recorder; nil when running without one.
	// Set during bring-up (SetRecorder), before VFCs exist.
	tel *telemetry.Recorder
}

// New creates a proxy in front of the flight controller.
func New(fc *flight.Controller) *Proxy {
	return &Proxy{fc: fc, vfcs: make(map[string]*VFC)}
}

// Master returns the unrestricted connection used by the cloud flight
// planner and the service provider.
func (p *Proxy) Master() *Master { return &Master{fc: p.fc} }

// Master is the unrestricted flight controller connection.
type Master struct {
	fc *flight.Controller
}

// Send forwards a message with no restrictions.
func (m *Master) Send(msg mavlink.Message) []mavlink.Message {
	return m.fc.HandleMessage(msg)
}

// Telemetry returns the flight controller's real telemetry.
func (m *Master) Telemetry() []mavlink.Message { return m.fc.Telemetry() }

// Controller exposes the underlying controller to the trusted side (the
// flight planner pilots the drone programmatically between waypoints).
func (m *Master) Controller() *flight.Controller { return m.fc }

// NewVFC creates a virtual flight controller connection for a virtual
// drone. continuous marks virtual drones with continuous device access,
// whose VFC shows real positions between waypoints (commands still
// declined).
func (p *Proxy) NewVFC(name string, wl Whitelist, continuous bool) (*VFC, error) {
	key := telemetry.K(name) // intern outside p.mu: K takes its own lock
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.vfcs[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrVFCExists, name)
	}
	v := &VFC{proxy: p, name: name, key: key, tel: p.tel, continuous: continuous, state: VFCIdle,
		sends: mSends.Local()}
	v.wl.Store(&wl)
	p.vfcs[name] = v
	return v, nil
}

// RemoveVFC tears down a virtual drone's connection (the VDC calls this
// when saving a virtual drone to the VDR). A removed name can be reused by
// a future flight.
func (p *Proxy) RemoveVFC(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.vfcs, name)
}

// SetWhitelist swaps a VFC's whitelist template in place — the provider
// upgrading or downgrading a customer's control level mid-service (the
// paper's templates range from guided-only up to full control). The new
// template applies to the next message; in-flight state (waypoint, fence,
// breach recovery) is untouched. The swap is an atomic pointer store, so
// concurrent Sends read either the old template or the new one in full;
// the caller must not mutate wl's maps after this call.
func (p *Proxy) SetWhitelist(name string, wl Whitelist) error {
	v, err := p.VFCByName(name)
	if err != nil {
		return err
	}
	v.wl.Store(&wl)
	v.tel.Emit(v.key, kWhitelistSwap, 0, 0, wl.Name)
	return nil
}

// VFCByName retrieves a VFC.
func (p *Proxy) VFCByName(name string) (*VFC, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.vfcs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoVFC, name)
	}
	return v, nil
}

// Activate hands flight control to the named VFC at the waypoint: the
// geofence defined by the waypoint is installed on the flight controller
// with the AnDrone breach action, and the VFC starts accepting whitelisted
// commands.
func (p *Proxy) Activate(name string, wp geo.Waypoint) error {
	v, err := p.VFCByName(name)
	if err != nil {
		return err
	}
	v.mu.Lock()
	v.waypoint = wp
	v.fence = geo.FenceFor(wp)
	v.state = VFCActive
	v.cmdsDisabled = false
	v.missionOwned = false
	v.mu.Unlock()

	fence := geo.FenceFor(wp)
	p.fc.SetFence(&fence, func(c *flight.Controller) { p.onBreach(v) })
	v.pushEvent(&mavlink.StatusText{Severity: mavlink.SeverityInfo, Text: "waypoint active: " + name})
	v.tel.Emit(v.key, kActivate, 0, 0, "")
	return nil
}

// Deactivate takes flight control away from the VFC (waypoint finished or
// allotment exhausted). The VFC presents the drone as landing and declines
// further commands; the controller's fence and breach action are removed so
// the flight planner can route on.
func (p *Proxy) Deactivate(name string) error {
	v, err := p.VFCByName(name)
	if err != nil {
		return err
	}
	v.mu.Lock()
	wasActive := v.state == VFCActive
	v.state = VFCFinished
	v.cmdsDisabled = false
	v.recovering = false
	v.missionOwned = false
	v.mu.Unlock()
	if wasActive {
		p.fc.SetFence(nil, flight.FailsafeLand)
		v.pushEvent(&mavlink.StatusText{Severity: mavlink.SeverityInfo, Text: "waypoint finished: " + name})
		v.tel.Emit(v.key, kDeactivate, 0, 0, "")
	}
	return nil
}

// onBreach runs the AnDrone geofence breach sequence. It is invoked from the
// flight controller's fast loop when the fence is breached.
func (p *Proxy) onBreach(v *VFC) {
	v.mu.Lock()
	if v.state != VFCActive || v.recovering {
		v.mu.Unlock()
		return
	}
	// Steps 1-2: inform the virtual drone; disable commands on the VFC.
	v.cmdsDisabled = true
	v.recovering = true
	fence := v.fence
	v.mu.Unlock()
	v.pushEvent(&mavlink.StatusText{Severity: mavlink.SeverityWarning, Text: "geofence breached"})
	mBreaches.Inc()
	v.tel.Emit(v.key, kBreach, 0, 0, "")

	// Step 3: guide the drone back inside the geofence. A rejected command
	// must not strand the drone outside the fence with the VFC locked out:
	// Tick retries until the guidance sticks, then escalates to the land
	// failsafe.
	if err := p.guideBack(fence); err != nil {
		v.mu.Lock()
		v.guidePending = true
		v.mu.Unlock()
		v.pushEvent(&mavlink.StatusText{Severity: mavlink.SeverityWarning, Text: "breach recovery command rejected; retrying"})
	}
}

// guideBack points the flight controller at the closest position inside
// the fence under guided mode.
func (p *Proxy) guideBack(fence geo.Fence) error {
	target := fence.ClosestInside(p.fc.Estimate())
	if err := p.fc.SetModeNum(mavlink.ModeGuided); err != nil {
		return err
	}
	return p.fc.GotoPosition(target, 0)
}

// maxRecoverAttempts bounds guided-recovery retries before the proxy gives
// up and lands the drone.
const maxRecoverAttempts = 10

// Tick progresses breach recoveries; the flight container runs it
// periodically (the orchestrator calls it between control steps). When a
// recovering drone is back inside its fence, the proxy switches to loiter to
// hold position and returns control to the virtual drone.
func (p *Proxy) Tick() {
	p.mu.Lock()
	vfcs := make([]*VFC, 0, len(p.vfcs))
	for _, v := range p.vfcs {
		vfcs = append(vfcs, v)
	}
	p.mu.Unlock()
	// Recovery progresses (and emits trace events) per VFC; run them in
	// name order so replays do not inherit map iteration order.
	sort.Slice(vfcs, func(i, j int) bool { return vfcs[i].name < vfcs[j].name })

	for _, v := range vfcs {
		v.mu.Lock()
		v.sends.Flush()
		needsCheck := v.recovering && v.state == VFCActive
		fence := v.fence
		pending := v.guidePending
		v.mu.Unlock()
		if !needsCheck {
			continue
		}
		pos := p.fc.Estimate()
		if fence.Margin(pos) > 0.05*fence.Radius {
			// Step 4: hold position, then return control. If the hold
			// command is rejected, keep the VFC locked out and retry on the
			// next tick rather than handing back control mid-drift.
			if err := p.fc.SetModeNum(mavlink.ModeLoiter); err != nil {
				continue
			}
			v.mu.Lock()
			tries := v.recoverTries
			v.recovering = false
			v.cmdsDisabled = false
			v.guidePending = false
			v.recoverTries = 0
			v.mu.Unlock()
			v.pushEvent(&mavlink.StatusText{Severity: mavlink.SeverityInfo, Text: "geofence recovered; control returned"})
			v.tel.Emit(v.key, kRecovered, int64(tries), 0, "")
			// Black-box the whole breach episode, retry count included, so
			// escalation-to-land (or the lack of it) is explainable.
			v.tel.Dump(v.key, "geofence-breach", map[string]float64{"recover-tries": float64(tries)})
			continue
		}
		if !pending {
			continue
		}
		// Still outside the fence with no accepted guidance: retry, and
		// land as a last resort when the controller keeps refusing.
		if err := p.guideBack(fence); err != nil {
			v.mu.Lock()
			v.recoverTries++
			tries := v.recoverTries
			giveUp := tries >= maxRecoverAttempts
			if giveUp {
				v.guidePending = false
			}
			v.mu.Unlock()
			mRecoverRetries.Inc()
			v.tel.Emit(v.key, kRetry, int64(tries), 0, "")
			if giveUp {
				v.pushEvent(&mavlink.StatusText{Severity: mavlink.SeverityCritical, Text: "breach recovery failed; landing"})
				v.tel.Emit(v.key, kRecoverFailed, int64(tries), 0, "")
				v.tel.Dump(v.key, "geofence-breach", map[string]float64{"recover-tries": float64(tries)})
				flight.FailsafeLand(p.fc)
			}
			continue
		}
		v.mu.Lock()
		v.guidePending = false
		v.recoverTries = 0
		v.mu.Unlock()
	}
}

// VFC is a virtual flight controller connection.
type VFC struct {
	proxy *Proxy
	name  string
	key   telemetry.Key       // interned name, cached for zero-cost emission
	tel   *telemetry.Recorder // copied from the proxy at construction; may be nil

	// wl is the whitelist template, published atomically: the Send hot
	// path loads it with no lock, SetWhitelist swaps in a frozen copy
	// (never mutated after installation — the COW discipline locksafe
	// enforces).
	wl atomic.Pointer[Whitelist]

	mu           sync.Mutex
	state        VFCState
	waypoint     geo.Waypoint
	fence        geo.Fence
	continuous   bool
	cmdsDisabled bool
	recovering   bool
	guidePending bool // breach guidance not yet accepted; Tick retries
	recoverTries int  // consecutive rejected recovery attempts
	missionOwned bool // this VFC uploaded the currently loaded mission
	events       []mavlink.Message
	seq          uint32
	// sends shards mSends under v.mu: Send is the proxy's hottest path and
	// a plain increment there avoids an atomic fence per message. Tick
	// flushes the batch.
	sends *telemetry.LocalCount

	// Denial reply scratch. A VFC is a serial MAVLink endpoint — one
	// in-flight Send per connection, as on a real telemetry link — so the
	// scratch is single-writer without v.mu; the returned slice and the
	// ack it points at are valid until the next Send on this VFC.
	ackScratch        mavlink.CommandAck
	missionAckScratch mavlink.MissionAck
	replyScratch      [1]mavlink.Message
}

// Name returns the VFC's virtual drone name.
func (v *VFC) Name() string { return v.name }

// State returns the VFC lifecycle state.
func (v *VFC) State() VFCState {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.state
}

// Recovering reports whether a geofence recovery is in progress.
func (v *VFC) Recovering() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.recovering
}

func (v *VFC) pushEvent(m mavlink.Message) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.events = append(v.events, m)
}

// deny counts and traces a refusal, then synthesizes the denial ack into
// the VFC's reply scratch (allocation-free; see the scratch field's serial
// endpoint contract). It runs with no VFC lock held.
func (v *VFC) deny(msg mavlink.Message, result uint8, reason string) []mavlink.Message {
	mRejects.Inc()
	v.tel.Emit(v.key, kReject, int64(msg.ID()), cmdOf(msg), reason)
	v.ackScratch = mavlink.CommandAck{Command: denyCmd(msg), Result: result}
	v.replyScratch[0] = &v.ackScratch
	return v.replyScratch[:]
}

// missionDeny is deny's counterpart for the mission protocol, where the
// rejection is a MissionAck rather than a CommandAck. Same serial-endpoint
// scratch contract as deny: valid until the next Send on this VFC.
func (v *VFC) missionDeny(t uint8) []mavlink.Message {
	v.missionAckScratch = mavlink.MissionAck{Type: t}
	v.replyScratch[0] = &v.missionAckScratch
	return v.replyScratch[:]
}

// cmdOf extracts the MAV_CMD number when the message carries one.
func cmdOf(msg mavlink.Message) int64 {
	if m, ok := msg.(*mavlink.CommandLong); ok {
		return int64(m.Command)
	}
	return 0
}

// denyCmd is the command number a denial ack reports for a message.
func denyCmd(msg mavlink.Message) uint16 {
	switch m := msg.(type) {
	case *mavlink.CommandLong:
		return m.Command
	case *mavlink.SetMode:
		return mavlink.CmdDoSetMode
	case *mavlink.SetPositionTargetGlobalInt:
		return mavlink.MsgIDSetPositionTargetGlobal
	}
	return 0
}

// Send processes a message from the virtual drone. Until the waypoint is
// reached (and after it is finished) all commands are declined. While
// active, the whitelist and geofence are enforced, then the message is
// forwarded to the real flight controller.
//
//vet:hotpath per-message dispatch, 0 allocs/op pinned by TestSendAcceptedZeroAlloc
func (v *VFC) Send(msg mavlink.Message) []mavlink.Message {
	if _, isHB := msg.(*mavlink.Heartbeat); isHB {
		return nil // heartbeats are always accepted silently
	}
	wl := v.wl.Load() // atomic snapshot; SetWhitelist swaps concurrently
	v.mu.Lock()
	state := v.state
	disabled := v.cmdsDisabled
	fence := v.fence
	v.sends.Inc() // sharded under v.mu; Tick flushes
	v.mu.Unlock()
	if state != VFCActive {
		return v.deny(msg, mavlink.ResultTemporarilyRejected, "inactive")
	}
	if disabled {
		return v.deny(msg, mavlink.ResultTemporarilyRejected, "disabled")
	}

	modeRequested := int64(-1)
	switch m := msg.(type) {
	case *mavlink.CommandLong:
		if !wl.AllowsCommand(m.Command) {
			return v.deny(msg, mavlink.ResultDenied, "whitelist")
		}
		// DO_SET_MODE may only select modes that keep the drone controllable
		// within the fence.
		if m.Command == mavlink.CmdDoSetMode {
			if !v.safeMode(uint32(m.Param2)) {
				return v.deny(msg, mavlink.ResultDenied, "unsafe-mode")
			}
			modeRequested = int64(m.Param2)
		}
	case *mavlink.SetMode:
		if !wl.AllowsMessage(mavlink.MsgIDSetMode) || !v.safeMode(m.CustomMode) {
			return v.deny(msg, mavlink.ResultDenied, "unsafe-mode")
		}
		modeRequested = int64(m.CustomMode)
	case *mavlink.SetPositionTargetGlobalInt:
		if !wl.AllowsMessage(mavlink.MsgIDSetPositionTargetGlobal) {
			return v.deny(msg, mavlink.ResultDenied, "whitelist")
		}
		target := geo.Position{
			LatLon: geo.LatLon{Lat: mavlink.E7ToLatLon(m.LatE7), Lon: mavlink.E7ToLatLon(m.LonE7)},
			Alt:    float64(m.Alt),
		}
		if !fence.Contains(target) {
			return v.deny(msg, mavlink.ResultDenied, "fence")
		}
	case *mavlink.MissionCount, *mavlink.MissionClearAll,
		*mavlink.ParamRequestRead, *mavlink.ParamRequestList, *mavlink.ParamSet:
		if !wl.AllowsMessage(msg.ID()) {
			return v.deny(msg, mavlink.ResultDenied, "whitelist")
		}
	case *mavlink.MissionItemInt:
		if !wl.AllowsMessage(mavlink.MsgIDMissionItemInt) {
			return v.deny(msg, mavlink.ResultDenied, "whitelist")
		}
		// Every uploaded mission item must lie inside the geofence; AUTO
		// flight then stays contained by construction (and the controller's
		// fence still guards the trajectory between items).
		target := geo.Position{
			LatLon: geo.LatLon{Lat: mavlink.E7ToLatLon(m.LatE7), Lon: mavlink.E7ToLatLon(m.LonE7)},
			Alt:    float64(m.Alt),
		}
		if !fence.Contains(target) {
			mRejects.Inc()
			v.tel.Emit(v.key, kReject, int64(msg.ID()), 0, "fence")
			return v.missionDeny(mavlink.MissionDenied)
		}
	default:
		return v.deny(msg, mavlink.ResultDenied, "unlisted")
	}
	if modeRequested >= 0 {
		mModeRequests.Inc()
		v.tel.Emit(v.key, kModeRequest, modeRequested, 0, "")
	}
	replies := v.proxy.fc.HandleMessage(msg)
	// Track mission ownership: a fully accepted upload through THIS VFC
	// unlocks AUTO mode (every item was fence-checked above).
	if _, isItem := msg.(*mavlink.MissionItemInt); isItem {
		for _, r := range replies {
			if ack, ok := r.(*mavlink.MissionAck); ok && ack.Type == mavlink.MissionAccepted {
				v.mu.Lock()
				v.missionOwned = true
				v.mu.Unlock()
			}
		}
	}
	if _, isClear := msg.(*mavlink.MissionClearAll); isClear {
		v.mu.Lock()
		v.missionOwned = false
		v.mu.Unlock()
	}
	return replies
}

// safeMode reports whether a virtual drone may switch the drone into the
// mode: modes that would leave the fence (RTL) or relinquish control
// entirely are reserved for the provider. AUTO is allowed only after this
// VFC uploaded a mission, since every uploaded item was fence-checked.
func (v *VFC) safeMode(mode uint32) bool {
	switch mode {
	case mavlink.ModeGuided, mavlink.ModeLoiter, mavlink.ModeLand:
		return true
	case mavlink.ModeAuto:
		v.mu.Lock()
		defer v.mu.Unlock()
		return v.missionOwned
	}
	return false
}

// Telemetry returns the virtualized telemetry stream plus any queued event
// notifications (STATUSTEXT).
func (v *VFC) Telemetry() []mavlink.Message {
	v.mu.Lock()
	state := v.state
	continuous := v.continuous
	wp := v.waypoint
	events := v.events
	v.events = nil
	v.seq++
	v.mu.Unlock()

	var out []mavlink.Message
	switch {
	case state == VFCActive || continuous:
		// Real telemetry; while inactive with continuous devices, commands
		// are still declined but positions are real to avoid discrepancies
		// with device readings.
		out = v.proxy.fc.Telemetry()
		if state != VFCActive {
			out = stripArmed(out)
		}
	case state == VFCIdle:
		out = v.syntheticTelemetry(wp, 0, "on ground at waypoint")
	default: // VFCFinished
		out = v.syntheticTelemetry(wp, 0, "landed")
	}
	return append(out, events...)
}

// stripArmed presents the drone as disarmed/idle in heartbeats while
// keeping real positions.
func stripArmed(msgs []mavlink.Message) []mavlink.Message {
	for i, m := range msgs {
		if hb, ok := m.(*mavlink.Heartbeat); ok {
			cp := *hb
			cp.BaseMode &^= mavlink.ModeFlagSafetyArmed
			cp.CustomMode = mavlink.ModeLoiter
			msgs[i] = &cp
		}
	}
	return msgs
}

// syntheticTelemetry fabricates the idle-on-ground view: disarmed heartbeat
// and a position fixed at the waypoint's ground location.
func (v *VFC) syntheticTelemetry(wp geo.Waypoint, altAGL float64, _ string) []mavlink.Message {
	hb := &mavlink.Heartbeat{
		CustomMode: mavlink.ModeStabilize, Type: 2, Autopilot: 3,
		BaseMode: mavlink.ModeFlagCustomModeEnabled, SystemStatus: 3, MavlinkVersion: 3,
	}
	gp := &mavlink.GlobalPositionInt{
		LatE7:         mavlink.LatLonToE7(wp.Lat),
		LonE7:         mavlink.LatLonToE7(wp.Lon),
		AltMM:         int32(math.Round(altAGL * 1000)),
		RelativeAltMM: int32(math.Round(altAGL * 1000)),
	}
	ss := &mavlink.SysStatus{VoltageBatteryMV: 12600, BatteryRemaining: 100}
	return []mavlink.Message{hb, gp, ss}
}
