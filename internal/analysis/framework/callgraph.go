package framework

import (
	"go/ast"
	"go/types"
)

// A CallSite is one resolved call edge: the declared function whose body
// contains the call expression, and the callee it resolves to. Calls inside
// func literals are attributed to the enclosing declared function. For
// interface calls, Callee is the concrete method of one in-Program
// implementer and Interface is true — one syntactic call can therefore
// produce several CallSites.
type CallSite struct {
	Caller    *FuncSource
	Call      *ast.CallExpr
	Callee    *types.Func
	Interface bool
}

// CallGraph is the Program's static call graph. Static function and method
// calls resolve exactly; calls through interface values fan out to every
// in-Program named type whose method set satisfies the interface. Calls
// through plain function values (fields, parameters of func type) and
// reflection are not resolved — analyzers building soundness arguments on
// reachability must note that caveat (see DESIGN.md).
type CallGraph struct {
	prog *Program
	out  map[*types.Func][]*CallSite // edges by caller
	in   map[*types.Func][]*CallSite // edges by callee
}

// CallGraph builds (once, memoized) the Program's call graph.
func (p *Program) CallGraph() *CallGraph {
	p.mu.Lock()
	g := p.graph
	p.mu.Unlock()
	if g != nil {
		return g
	}
	g = buildCallGraph(p)
	p.mu.Lock()
	if p.graph != nil {
		g = p.graph
	} else {
		p.graph = g
	}
	p.mu.Unlock()
	return g
}

// CallsFrom returns fn's outgoing call edges in syntactic order.
func (g *CallGraph) CallsFrom(fn *types.Func) []*CallSite { return g.out[fn] }

// CallsTo returns fn's incoming call edges.
func (g *CallGraph) CallsTo(fn *types.Func) []*CallSite { return g.in[fn] }

// ReverseClosure returns the set of declared functions from which some
// function matching seed is reachable over the call graph, including the
// seed functions themselves when they are declared in the Program. This is
// the "may eventually call" relation analyzers use to find guards and
// wrappers.
func (g *CallGraph) ReverseClosure(seed func(*types.Func) bool) map[*types.Func]bool {
	closure := make(map[*types.Func]bool)
	var work []*types.Func
	add := func(fn *types.Func) {
		if !closure[fn] {
			closure[fn] = true
			work = append(work, fn)
		}
	}
	// Seed from every callee mentioned by any edge, plus declared functions,
	// so seeds without bodies (or never-called seeds) still participate.
	for _, src := range g.prog.Funcs() {
		if seed(src.Fn) {
			add(src.Fn)
		}
	}
	for callee := range g.in {
		if seed(callee) {
			add(callee)
		}
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, site := range g.in[fn] {
			add(site.Caller.Fn)
		}
	}
	return closure
}

func buildCallGraph(p *Program) *CallGraph {
	g := &CallGraph{
		prog: p,
		out:  make(map[*types.Func][]*CallSite),
		in:   make(map[*types.Func][]*CallSite),
	}
	impls := make(map[*types.Func][]*types.Func) // interface method -> concrete methods
	for _, src := range p.Funcs() {
		caller := src
		ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, edge := range resolveCall(p, caller, call, impls) {
				g.out[edge.Caller.Fn] = append(g.out[edge.Caller.Fn], edge)
				g.in[edge.Callee] = append(g.in[edge.Callee], edge)
			}
			return true
		})
	}
	return g
}

// resolveCall resolves one call expression to zero or more edges.
func resolveCall(p *Program, caller *FuncSource, call *ast.CallExpr, impls map[*types.Func][]*types.Func) []*CallSite {
	info := caller.Pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []*CallSite{{Caller: caller, Call: call, Callee: fn}}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn := sel.Obj().(*types.Func)
			if !types.IsInterface(sel.Recv()) {
				return []*CallSite{{Caller: caller, Call: call, Callee: fn}}
			}
			var edges []*CallSite
			for _, impl := range implementersOf(p, fn, impls) {
				edges = append(edges, &CallSite{Caller: caller, Call: call, Callee: impl, Interface: true})
			}
			return edges
		}
		// Package-qualified call: pkg.F(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return []*CallSite{{Caller: caller, Call: call, Callee: fn}}
		}
	}
	return nil
}

// implementersOf finds, for an interface method, the corresponding concrete
// methods of every named non-interface type declared in the Program whose
// method set (value or pointer) satisfies the interface. Results are cached
// in impls; buildCallGraph is single-goroutine so no locking is needed.
func implementersOf(p *Program, method *types.Func, impls map[*types.Func][]*types.Func) []*types.Func {
	if cached, ok := impls[method]; ok {
		return cached
	}
	var out []*types.Func
	iface, _ := method.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		impls[method] = nil
		return nil
	}
	for _, pkg := range p.Packages {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			// Look the method up through the pointer method set, which
			// includes both value and pointer receivers.
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, method.Pkg(), method.Name())
			if fn, ok := obj.(*types.Func); ok {
				out = append(out, fn)
			}
		}
	}
	impls[method] = out
	return out
}
