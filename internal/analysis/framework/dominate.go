package framework

import (
	"go/ast"
	"go/token"
)

// Dominates reports whether position a dominates position b inside body:
// on every execution path that reaches b, the code at a has already
// executed. It is proven over Go's structured control flow (if/for/range/
// switch/select nesting), without building a CFG:
//
//   - Within a statement list, an earlier statement dominates a later one
//     provided a executes unconditionally whenever its statement is
//     reached (a is not buried in a conditional arm, short-circuit RHS,
//     func literal, or go/defer).
//   - Regions of one statement are ordered: if/for/switch Init and Cond
//     (and a range's X, a type switch's Assign) execute before the
//     conditional arms; a for's Post and the arms of if/switch/select are
//     mutually parallel and never dominate each other.
//   - goto can cut arbitrary forward paths, so any function containing one
//     proves nothing (labeled break/continue only exit early and are fine).
//
// The result errs toward false: a false return means "not proven", not
// "not dominated" — the safe direction for guard checks.
func Dominates(body *ast.BlockStmt, a, b token.Pos) bool {
	if body == nil || !within(body, a) || !within(body, b) {
		return false
	}
	hasGoto := false
	ast.Inspect(body, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
			hasGoto = true
		}
		return !hasGoto
	})
	if hasGoto {
		return false
	}
	return domList(body.List, a, b)
}

// within reports whether pos falls inside n's source span.
func within(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos < n.End()
}

// domList handles a and b inside one statement list: sequential order plus
// unconditional execution of a, or recursion when they share a statement.
func domList(list []ast.Stmt, a, b token.Pos) bool {
	ia, ib := -1, -1
	for i, s := range list {
		if within(s, a) {
			ia = i
		}
		if within(s, b) {
			ib = i
		}
	}
	switch {
	case ia < 0 || ib < 0:
		return false
	case ia < ib:
		return uncondIn(list[ia], a)
	case ia > ib:
		return false
	default:
		return domStmt(list[ia], a, b)
	}
}

// domStmt handles a and b inside the same statement, comparing the
// execution-ordered regions of that statement.
func domStmt(s ast.Stmt, a, b token.Pos) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return domList(s.List, a, b)
	case *ast.LabeledStmt:
		return domStmt(s.Stmt, a, b)
	case *ast.IfStmt:
		return domRegions(a, b, []ast.Node{s.Init, s.Cond}, []ast.Node{s.Body, s.Else})
	case *ast.ForStmt:
		// Post is an arm, not part of the linear chain: continue can reach
		// Post while skipping the tail of Body, so Body never dominates it.
		return domRegions(a, b, []ast.Node{s.Init, s.Cond}, []ast.Node{s.Body, s.Post})
	case *ast.RangeStmt:
		return domRegions(a, b, []ast.Node{s.X}, []ast.Node{s.Body})
	case *ast.SwitchStmt:
		return domRegions(a, b, []ast.Node{s.Init, s.Tag}, clauseNodes(s.Body))
	case *ast.TypeSwitchStmt:
		return domRegions(a, b, []ast.Node{s.Init, s.Assign}, clauseNodes(s.Body))
	case *ast.SelectStmt:
		return domRegions(a, b, nil, clauseNodes(s.Body))
	case *ast.CaseClause:
		// Case expressions are evaluated only until one matches, so they
		// prove nothing; dominance continues inside the body only.
		return domList(s.Body, a, b)
	case *ast.CommClause:
		if s.Comm != nil && within(s.Comm, a) {
			if within(s.Comm, b) {
				return domStmt(s.Comm, a, b)
			}
			// Reaching the clause body implies its comm completed.
			return uncondIn(s.Comm, a)
		}
		return domList(s.Body, a, b)
	default:
		// A single simple statement; no ordering is proven inside it.
		return false
	}
}

func clauseNodes(body *ast.BlockStmt) []ast.Node {
	nodes := make([]ast.Node, len(body.List))
	for i, c := range body.List {
		nodes[i] = c
	}
	return nodes
}

// domRegions compares positions across one statement's regions: linear
// regions execute in order before any arm, arms are mutually exclusive.
func domRegions(a, b token.Pos, linear, arms []ast.Node) bool {
	find := func(pos token.Pos) (int, ast.Node, bool) {
		for i, n := range linear {
			if within(n, pos) {
				return i, n, false
			}
		}
		for i, n := range arms {
			if within(n, pos) {
				return len(linear) + i, n, true
			}
		}
		return -1, nil, false
	}
	ia, na, armA := find(a)
	ib, _, _ := find(b)
	if ia < 0 || ib < 0 {
		return false
	}
	if ia == ib {
		if st, ok := na.(ast.Stmt); ok {
			return domStmt(st, a, b)
		}
		return false // both inside one expression region: not proven
	}
	if ia > ib || armA {
		return false
	}
	return uncondIn(na, a)
}

// uncondIn reports whether the code at pos executes unconditionally
// whenever node n is reached: the nesting path from n down to pos passes
// through no conditional arm, short-circuit right operand, func literal,
// or deferred/spawned call.
func uncondIn(n ast.Node, pos token.Pos) bool {
	if !within(n, pos) {
		return false
	}
	path := pathTo(n, pos)
	for i := 0; i+1 < len(path); i++ {
		if !uncondHop(path[i], path[i+1]) {
			return false
		}
	}
	return true
}

// pathTo returns the chain of nodes containing pos, from root inward.
func pathTo(root ast.Node, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil || !within(n, pos) {
			return false
		}
		path = append(path, n)
		return true
	})
	return path
}

// uncondHop reports whether child executes whenever parent is reached.
func uncondHop(parent, child ast.Node) bool {
	switch p := parent.(type) {
	case *ast.IfStmt:
		return child == p.Init || child == p.Cond
	case *ast.ForStmt:
		// Cond is evaluated at least once whenever the loop is reached.
		return child == p.Init || child == p.Cond
	case *ast.RangeStmt:
		return child == p.X
	case *ast.SwitchStmt:
		return child == p.Init || child == p.Tag
	case *ast.TypeSwitchStmt:
		return child == p.Init || child == p.Assign
	case *ast.SelectStmt, *ast.CaseClause, *ast.CommClause:
		return false
	case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
		return false
	case *ast.BinaryExpr:
		if p.Op == token.LAND || p.Op == token.LOR {
			return child == p.X
		}
		return true
	default:
		return true
	}
}
