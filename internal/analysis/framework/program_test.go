package framework_test

import (
	"go/ast"
	"go/token"
	"go/types"
	"testing"

	"androne/internal/analysis/framework"
)

// riskyFact is a test fact type; Fact implementations must be pointers.
type riskyFact struct{ Label string }

func (*riskyFact) AFact() {}

// otherFact shares no type with riskyFact: facts are keyed per concrete
// type, so the two must not collide on one object.
type otherFact struct{ N int }

func (*otherFact) AFact() {}

func TestProgramFactsAndMemo(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrc(t, fset, "androne/internal/devices", `package devices

type Camera struct{}

func (*Camera) Capture() error { return nil }

func Free() {}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})

	captureFn := findFunc(t, prog, "Capture")
	freeFn := findFunc(t, prog, "Free")

	// Facts round-trip by (object, concrete type).
	prog.ExportFact(captureFn, &riskyFact{Label: "sink"})
	var got riskyFact
	if !prog.ImportFact(captureFn, &got) || got.Label != "sink" {
		t.Errorf("ImportFact(Capture) = %+v, want Label=sink", got)
	}
	if prog.ImportFact(freeFn, &got) {
		t.Error("ImportFact(Free) found a fact never exported")
	}
	var other otherFact
	if prog.ImportFact(captureFn, &other) {
		t.Error("ImportFact with a different fact type matched riskyFact")
	}

	// Memo computes once per key and caches the result.
	calls := 0
	compute := func() any { calls++; return calls }
	if v := prog.Memo("k", compute); v != 1 {
		t.Errorf("first Memo = %v, want 1", v)
	}
	if v := prog.Memo("k", compute); v != 1 || calls != 1 {
		t.Errorf("second Memo = %v (calls=%d), want cached 1", v, calls)
	}
	if v := prog.Memo("k2", compute); v != 2 {
		t.Errorf("Memo under a fresh key = %v, want recomputed 2", v)
	}

	// Source resolves declared functions and rejects foreign ones;
	// PackageOf maps positions back to their package.
	if src := prog.Source(captureFn); src == nil || src.Decl.Name.Name != "Capture" {
		t.Errorf("Source(Capture) = %v, want its declaration", src)
	}
	if pkg := prog.PackageOf(prog.Source(freeFn).Decl.Pos()); pkg != pp {
		t.Errorf("PackageOf(Free) = %v, want the devices fixture", pkg)
	}
	if pkg := prog.PackageOf(token.NoPos); pkg != nil {
		t.Errorf("PackageOf(NoPos) = %v, want nil", pkg)
	}

	// Match helpers, against the fixture's suffix path.
	if !framework.HasPkgSuffix(pp.Pkg, "internal/devices") {
		t.Error("HasPkgSuffix(internal/devices) = false")
	}
	if framework.HasPkgSuffix(pp.Pkg, "internal/binder") {
		t.Error("HasPkgSuffix(internal/binder) = true")
	}
	if !framework.IsMethod(captureFn, "androne/internal/devices", "Camera", "Capture") {
		t.Error("IsMethod(Capture) = false")
	}
	if framework.IsMethod(freeFn, "androne/internal/devices", "Camera", "Free") {
		t.Error("IsMethod(Free) = true for a plain function")
	}
	if !framework.IsFunc(freeFn, "androne/internal/devices", "Free") {
		t.Error("IsFunc(Free) = false")
	}
	if framework.IsFunc(captureFn, "androne/internal/devices", "Capture") {
		t.Error("IsFunc(Capture) = true for a method")
	}
	camType := pp.Pkg.Scope().Lookup("Camera").Type()
	if !framework.IsNamed(types.NewPointer(camType), "androne/internal/devices", "Camera") {
		t.Error("IsNamed(*Camera) = false")
	}
	if framework.IsNamed(types.Typ[types.Int], "androne/internal/devices", "Camera") {
		t.Error("IsNamed(int) = true")
	}
	if recv := framework.MethodRecv(freeFn); recv != nil {
		t.Errorf("MethodRecv(Free) = %v, want nil", recv)
	}
}

// findFunc locates a declared function by name through Program.Funcs.
func findFunc(t *testing.T, prog *framework.Program, name string) *types.Func {
	t.Helper()
	for _, src := range prog.Funcs() {
		if src.Fn.Name() == name {
			return src.Fn
		}
	}
	t.Fatalf("no declared func %s", name)
	return nil
}

func TestReportf(t *testing.T) {
	var got framework.Diagnostic
	pass := &framework.Pass{Report: func(d framework.Diagnostic) { got = d }}
	pass.Reportf(token.Pos(42), "found %d issue(s)", 3)
	if got.Pos != token.Pos(42) || got.Message != "found 3 issue(s)" {
		t.Errorf("Reportf delivered %+v", got)
	}
}

func TestDataflow(t *testing.T) {
	const (
		payload framework.Origin = 1 << iota
		pTxn
		pPtr
	)
	if !framework.Origin(3).Has(1) || framework.Origin(3).Has(4) {
		t.Error("Origin.Has bitset arithmetic is wrong")
	}

	fset := token.NewFileSet()
	pp := loadSrc(t, fset, "flowpkg", `package flowpkg

type Txn struct {
	Data []byte
	N    int
}

func split(b []byte) (int, error) { return len(b), nil }

func fill(dst *int, n int) { *dst = n }

func compute(t Txn, p *int) int {
	a := t.Data
	b := string(a)
	var c = b
	x, err := split(a)
	_ = err
	sum := 0
	for _, v := range t.Data {
		sum += int(v)
	}
	fill(&sum, t.N)
	if x > 0 {
		return len(c)
	}
	return *p
}
`)
	decl := declNamed(t, pp.Files, "compute")
	fn := pp.Info.Defs[decl.Name].(*types.Func)
	sig := fn.Type().(*types.Signature)

	flow := &framework.Flow{
		Info: pp.Info,
		Source: func(e ast.Expr) framework.Origin {
			if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "Data" {
				return payload
			}
			return 0
		},
	}
	res := flow.Analyze(decl, map[types.Object]framework.Origin{
		sig.Params().At(0): pTxn,
		sig.Params().At(1): pPtr,
	})

	varObj := func(name string) types.Object {
		for id, obj := range pp.Info.Defs {
			if id.Name == name && obj != nil && decl.Body.Pos() <= id.Pos() && id.Pos() < decl.Body.End() {
				return obj
			}
		}
		t.Fatalf("no local %s", name)
		return nil
	}

	// a := t.Data claims the payload source; the chain a -> b -> c needs the
	// fixpoint to carry it through the conversion and the var declaration.
	if o := res.VarOrigin(varObj("c")); !o.Has(payload) {
		t.Errorf("origin(c) = %b, want payload via a -> string(a) -> c", o)
	}
	// Tuple assignment from a call: both results inherit the argument.
	if o := res.VarOrigin(varObj("x")); !o.Has(payload) {
		t.Errorf("origin(x) = %b, want payload through split(a)", o)
	}
	// Range over a payload value taints the element, and += folds it in.
	if o := res.VarOrigin(varObj("v")); !o.Has(payload) {
		t.Errorf("origin(v) = %b, want payload from range t.Data", o)
	}
	sum := res.VarOrigin(varObj("sum"))
	if !sum.Has(payload) {
		t.Errorf("origin(sum) = %b, want payload via the range body", sum)
	}
	// The out-parameter rule: fill(&sum, t.N) may write t's data into sum.
	if !sum.Has(pTxn) {
		t.Errorf("origin(sum) = %b, want the Txn parameter bit via fill(&sum, t.N)", sum)
	}
	// res.Origin on an expression: the final return reads through *p.
	var lastRet *ast.ReturnStmt
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			lastRet = r
		}
		return true
	})
	if o := res.Origin(lastRet.Results[0]); !o.Has(pPtr) {
		t.Errorf("origin(*p) = %b, want the pointer parameter bit", o)
	}
}
