// Effect summaries: a bottom-up interprocedural engine that computes, for
// every function declared in a Program, a bitset of the side effects its
// body may perform — directly or through anything it (transitively) calls.
// Contract analyzers (detguard, hotpath) consume the summaries to convict,
// at vet time, code that would break the repository's determinism or
// zero-allocation contracts long before a replay test or AllocsPerRun pin
// catches it at run time.
//
// The engine is deliberately syntactic and conservative-by-category rather
// than sound in the escape-analysis sense:
//
//   - Allocates covers make/new, map and slice literals, &T{} literals,
//     func literals, go statements, string concatenation, and
//     string<->[]byte/[]rune conversions. `append` is deliberately NOT an
//     allocation: the repo's hot paths append into preallocated scratch
//     (amortized, zero-alloc in steady state), and the AllocsPerRun pins
//     cross-check that assumption dynamically. Interface boxing and map
//     growth on assignment are likewise out of scope (documented caveat).
//   - RangesMap marks `range` over a map — nondeterministic iteration
//     order — except in functions that also call into package sort, the
//     range-then-sort idiom that re-establishes a deterministic order.
//   - Clock, scheduler, and global-rand reads, blocking operations, and
//     multi-case selects come from a small table of standard-library leaf
//     functions plus direct syntax (select statements, channel operations).
//
// Calls to functions outside the Program that are not in the leaf table
// default to "no effect" (optimistic): the alternative — pessimism — would
// drown every analyzer in findings about fmt.Println-shaped unknowns. The
// stats record how many callees were defaulted so a report can surface the
// trust surface.
//
// A function may override its computed summary with a declaration directive
// in its doc comment:
//
//	//vet:summary effects=none <reason>
//	//vet:summary effects=Allocates,BlocksOnLock <reason>
//
// Overridden functions are trusted: their declared bitset is used verbatim
// and their bodies and callees are not traversed. Like //vet:allow, the
// directive is for documented, reviewed exceptions.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Effect is a bitset of side-effect categories.
type Effect uint16

// The effect categories the engine tracks.
const (
	// EffAllocates: the function may allocate on the heap.
	EffAllocates Effect = 1 << iota
	// EffRangesMap: the function ranges over a map without re-sorting.
	EffRangesMap
	// EffReadsClock: the function reads the wall clock (time.Now et al).
	EffReadsClock
	// EffReadsGlobalRand: the function draws from math/rand's global source.
	EffReadsGlobalRand
	// EffReadsSchedulerState: the function reads runtime.NumCPU/GOMAXPROCS/
	// NumGoroutine — values that differ across hosts and worker counts.
	EffReadsSchedulerState
	// EffSelectsUnordered: the function executes a select with two or more
	// cases, whose winner is scheduler-dependent when several are ready.
	EffSelectsUnordered
	// EffSpawnsGoroutine: the function starts a goroutine.
	EffSpawnsGoroutine
	// EffBlocksOnLock: the function may block — mutex/RWMutex lock,
	// WaitGroup/Cond wait, channel operation, or time.Sleep.
	EffBlocksOnLock
)

// effectNames maps bit order to canonical names (the //vet:summary syntax).
var effectNames = []struct {
	bit  Effect
	name string
}{
	{EffAllocates, "Allocates"},
	{EffRangesMap, "RangesMap"},
	{EffReadsClock, "ReadsClock"},
	{EffReadsGlobalRand, "ReadsGlobalRand"},
	{EffReadsSchedulerState, "ReadsSchedulerState"},
	{EffSelectsUnordered, "SelectsUnordered"},
	{EffSpawnsGoroutine, "SpawnsGoroutine"},
	{EffBlocksOnLock, "BlocksOnLock"},
}

// String renders the bitset as "Allocates|RangesMap", or "none".
func (e Effect) String() string {
	if e == 0 {
		return "none"
	}
	var parts []string
	for _, en := range effectNames {
		if e&en.bit != 0 {
			parts = append(parts, en.name)
		}
	}
	return strings.Join(parts, "|")
}

// Has reports whether every bit of f is set in e.
func (e Effect) Has(f Effect) bool { return e&f == f }

// ParseEffects parses a comma-separated effect list ("Allocates,ReadsClock")
// or the literal "none".
func ParseEffects(s string) (Effect, error) {
	if s == "none" {
		return 0, nil
	}
	var out Effect
	for _, name := range strings.Split(s, ",") {
		found := false
		for _, en := range effectNames {
			if en.name == name {
				out |= en.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("unknown effect %q", name)
		}
	}
	return out, nil
}

// EffectSite is one local source position contributing an effect, with a
// human-readable detail ("make", "range over map", "lock pkg.Type.field").
type EffectSite struct {
	Pos    token.Pos
	Effect Effect
	Detail string
}

// Summary is one function's effect summary.
type Summary struct {
	Fn *types.Func
	// Local is the union of the function's own Sites.
	Local Effect
	// Total is Local plus the Total of every traversed callee (fixpoint).
	Total Effect
	// Sites are the local effect sites in source order. Transitive effects
	// are reported at the callee's own sites, never duplicated here.
	Sites []EffectSite
	// Overridden marks a //vet:summary declaration: Local and Total carry
	// the declared bitset, Sites and the callee lists are empty.
	Overridden bool
	// Callees are the deduplicated in-Program callees reached through
	// static (non-interface) calls.
	Callees []*types.Func
	// IfaceCallees are the deduplicated in-Program callees reached through
	// interface dispatch, after fan-out bounding. Analyzers that treat
	// interface calls as trust boundaries traverse Callees only.
	IfaceCallees []*types.Func
}

// EffectStats describes one engine run, for the vet report.
type EffectStats struct {
	// Functions is the number of summarized declarations.
	Functions int
	// Passes is the number of fixpoint sweeps until convergence.
	Passes int
	// Overrides counts //vet:summary-declared functions.
	Overrides int
	// LeafCalls counts call edges resolved through the stdlib leaf table.
	LeafCalls int
	// UnknownCallees counts distinct out-of-Program callees defaulted to
	// "no effect" — the engine's optimistic trust surface.
	UnknownCallees int
	// BoundedCalls counts interface call sites whose fan-out exceeded
	// MaxInterfaceFanOut and were dropped (treated as unknown).
	BoundedCalls int
}

// EffectConfig parameterizes an engine run.
type EffectConfig struct {
	// MaxInterfaceFanOut bounds how many in-Program implementations one
	// interface call site may fan out to before the engine gives up on the
	// site (treating it as an unknown callee). Guards against
	// one-method-interface explosions like fmt.Stringer.
	MaxInterfaceFanOut int
}

// DefaultMaxInterfaceFanOut is the fan-out bound analyzers run with.
const DefaultMaxInterfaceFanOut = 16

// EffectWorld is the result of one engine run over a Program.
type EffectWorld struct {
	summaries map[*types.Func]*Summary
	stats     EffectStats
	// BadDirectives are malformed //vet:summary comments (Detail holds the
	// parse error); analyzers report them as findings.
	BadDirectives []EffectSite
}

// Summary returns fn's summary, or nil for functions not declared in the
// Program.
func (w *EffectWorld) Summary(fn *types.Func) *Summary { return w.summaries[fn] }

// Stats returns the engine-run statistics.
func (w *EffectWorld) Stats() EffectStats { return w.stats }

// effectsMemoKey is the Program memo key for the default-config engine run.
const effectsMemoKey = "framework.effects"

// Effects computes (once, memoized) the Program's effect summaries with the
// default configuration. Analyzers share this run, so the fixpoint cost is
// paid once per vet session.
func (p *Program) Effects() *EffectWorld {
	return p.Memo(effectsMemoKey, func() any {
		return ComputeEffects(p, EffectConfig{MaxInterfaceFanOut: DefaultMaxInterfaceFanOut})
	}).(*EffectWorld)
}

// EffectsIfComputed returns the memoized default engine run without forcing
// a computation — the report path uses it to expose cache stats only when
// some analyzer actually needed summaries.
func (p *Program) EffectsIfComputed() (*EffectWorld, bool) {
	v, ok := p.PeekMemo(effectsMemoKey)
	if !ok {
		return nil, false
	}
	return v.(*EffectWorld), true
}

// ComputeEffects runs the engine over the Program with an explicit
// configuration. Tests use it to exercise fan-out bounding directly.
func ComputeEffects(p *Program, cfg EffectConfig) *EffectWorld {
	if cfg.MaxInterfaceFanOut <= 0 {
		cfg.MaxInterfaceFanOut = DefaultMaxInterfaceFanOut
	}
	w := &EffectWorld{summaries: make(map[*types.Func]*Summary)}
	g := p.CallGraph()
	unknown := make(map[*types.Func]bool)

	for _, src := range p.Funcs() {
		s := &Summary{Fn: src.Fn}
		w.summaries[src.Fn] = s
		w.stats.Functions++

		if eff, found, err := parseSummaryDirective(src.Decl); err != nil {
			w.BadDirectives = append(w.BadDirectives, EffectSite{
				Pos: src.Decl.Pos(), Effect: 0, Detail: err.Error(),
			})
		} else if found {
			s.Overridden = true
			s.Local, s.Total = eff, eff
			w.stats.Overrides++
			continue
		}

		s.Sites = localSites(src)
		for _, site := range s.Sites {
			s.Local |= site.Effect
		}
		w.collectCallees(src, g, cfg, unknown, s)
		sort.Slice(s.Sites, func(i, j int) bool { return s.Sites[i].Pos < s.Sites[j].Pos })
		s.Total = s.Local
	}
	w.stats.UnknownCallees = len(unknown)

	// Bottom-up fixpoint: effects only accumulate, so iteration converges
	// in at most (longest acyclic call chain) sweeps; mutual recursion is
	// handled by re-sweeping until nothing changes.
	for changed := true; changed; {
		changed = false
		w.stats.Passes++
		for _, src := range p.Funcs() {
			s := w.summaries[src.Fn]
			if s.Overridden {
				continue
			}
			total := s.Local
			for _, callee := range s.Callees {
				if cs := w.summaries[callee]; cs != nil {
					total |= cs.Total
				}
			}
			for _, callee := range s.IfaceCallees {
				if cs := w.summaries[callee]; cs != nil {
					total |= cs.Total
				}
			}
			if total != s.Total {
				s.Total = total
				changed = true
			}
		}
	}
	return w
}

// collectCallees splits fn's call edges into in-Program callees (static and
// interface, fan-out bounded) and leaf-table effect sites.
func (w *EffectWorld) collectCallees(src *FuncSource, g *CallGraph, cfg EffectConfig, unknown map[*types.Func]bool, s *Summary) {
	edges := g.CallsFrom(src.Fn)

	// Count interface fan-out per syntactic call site first.
	fanOut := make(map[*ast.CallExpr]int)
	for _, e := range edges {
		if e.Interface {
			fanOut[e.Call]++
		}
	}
	bounded := make(map[*ast.CallExpr]bool)
	for call, n := range fanOut {
		if n > cfg.MaxInterfaceFanOut {
			bounded[call] = true
			w.stats.BoundedCalls++
		}
	}

	seenStatic := make(map[*types.Func]bool)
	seenIface := make(map[*types.Func]bool)
	for _, e := range edges {
		if e.Interface && bounded[e.Call] {
			continue // fan-out too wide: treat the site as an unknown callee
		}
		// Canonicalize: under the vet driver a cross-package callee is a
		// distinct export-data object from the declaring package's own.
		if callee := g.prog.CanonicalSource(e.Callee); callee != nil {
			fn := callee.Fn
			if e.Interface {
				if !seenIface[fn] {
					seenIface[fn] = true
					s.IfaceCallees = append(s.IfaceCallees, fn)
				}
			} else if !seenStatic[fn] {
				seenStatic[fn] = true
				s.Callees = append(s.Callees, fn)
			}
			continue
		}
		// Out-of-Program callee: leaf table or optimistic default.
		if eff, detail, ok := leafEffect(e.Callee); ok {
			w.stats.LeafCalls++
			if eff&EffBlocksOnLock != 0 {
				detail = lockDetail(src, e)
			}
			site := EffectSite{Pos: e.Call.Pos(), Effect: eff, Detail: detail}
			s.Sites = append(s.Sites, site)
			s.Local |= eff
		} else {
			unknown[e.Callee] = true
		}
	}
}

// funcKey renders a *types.Func as the leaf-table key: "pkgpath.Name" for
// package functions, "recvtype.Name" (with full package paths) for methods.
func funcKey(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), nil) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// leafEffects is the standard-library leaf table: functions whose effects
// the engine declares rather than computes.
var leafEffects = map[string]Effect{
	"time.Now":   EffReadsClock,
	"time.Since": EffReadsClock,
	"time.Until": EffReadsClock,

	"runtime.NumCPU":       EffReadsSchedulerState,
	"runtime.GOMAXPROCS":   EffReadsSchedulerState,
	"runtime.NumGoroutine": EffReadsSchedulerState,

	"time.Sleep":           EffBlocksOnLock,
	"*sync.Mutex.Lock":     EffBlocksOnLock,
	"*sync.RWMutex.Lock":   EffBlocksOnLock,
	"*sync.RWMutex.RLock":  EffBlocksOnLock,
	"*sync.WaitGroup.Wait": EffBlocksOnLock,
	"*sync.Cond.Wait":      EffBlocksOnLock,
	"*sync.Once.Do":        EffBlocksOnLock,

	"fmt.Errorf":   EffAllocates,
	"fmt.Sprintf":  EffAllocates,
	"fmt.Sprint":   EffAllocates,
	"fmt.Sprintln": EffAllocates,
	"fmt.Fprintf":  EffAllocates,
	"fmt.Fprintln": EffAllocates,
	"errors.New":   EffAllocates,

	"strconv.Itoa":        EffAllocates,
	"strconv.FormatInt":   EffAllocates,
	"strconv.FormatUint":  EffAllocates,
	"strconv.FormatFloat": EffAllocates,
	"strconv.Quote":       EffAllocates,
	"strings.Join":        EffAllocates,
	"strings.Repeat":      EffAllocates,
	"strings.Split":       EffAllocates,
	"strings.Fields":      EffAllocates,
	"strings.ToUpper":     EffAllocates,
	"strings.ToLower":     EffAllocates,

	"*strings.Builder.String": EffAllocates,
}

// leafEffect looks fn up in the leaf table, with math/rand's global-source
// functions handled by package: top-level draws read the shared default
// Source, while *rand.Rand methods are deterministic under a caller-owned
// seed and constructors just build state.
func leafEffect(fn *types.Func) (Effect, string, bool) {
	key := funcKey(fn)
	if eff, ok := leafEffects[key]; ok {
		return eff, "call to " + key, true
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "math/rand" {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil {
			switch fn.Name() {
			case "New", "NewSource", "NewZipf":
			default:
				return EffReadsGlobalRand, "call to " + key, true
			}
		}
	}
	return 0, "", false
}

// lockDetail renders a blocking call's identity for the sanctioned-lock
// check: "lock <pkgpath>.<OwnerType>.<field>" when the receiver is a struct
// field (v.mu.Lock()), otherwise "call to <key>".
func lockDetail(src *FuncSource, e *CallSite) string {
	sel, ok := ast.Unparen(e.Call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "call to " + funcKey(e.Callee)
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "call to " + funcKey(e.Callee)
	}
	tv, ok := src.Pkg.Info.Types[inner.X]
	if !ok {
		return "call to " + funcKey(e.Callee)
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return "lock " + types.TypeString(t, nil) + "." + inner.Sel.Name
}

// parseSummaryDirective extracts a //vet:summary declaration from fd's doc
// comment.
func parseSummaryDirective(fd *ast.FuncDecl) (Effect, bool, error) {
	if fd.Doc == nil {
		return 0, false, nil
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//vet:summary")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "effects=") {
			return 0, false, fmt.Errorf("malformed //vet:summary: want `//vet:summary effects=<list|none> <reason>`")
		}
		eff, err := ParseEffects(strings.TrimPrefix(fields[0], "effects="))
		if err != nil {
			return 0, false, fmt.Errorf("malformed //vet:summary: %v", err)
		}
		return eff, true, nil
	}
	return 0, false, nil
}

// localSites extracts the function's own effect sites from its syntax. Func
// literal bodies are included: the call graph attributes their calls to the
// enclosing declaration, and the engine attributes their effects the same
// way (a deferred or spawned closure still performs them).
func localSites(src *FuncSource) []EffectSite {
	var sites []EffectSite
	info := src.Pkg.Info
	launders := callsSort(src, info)
	ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			sites = append(sites, EffectSite{n.Pos(), EffSpawnsGoroutine | EffAllocates, "go statement"})
		case *ast.SelectStmt:
			if len(n.Body.List) >= 2 {
				sites = append(sites, EffectSite{n.Pos(), EffSelectsUnordered | EffBlocksOnLock,
					fmt.Sprintf("select with %d cases", len(n.Body.List))})
			} else {
				sites = append(sites, EffectSite{n.Pos(), EffBlocksOnLock, "select"})
			}
		case *ast.SendStmt:
			sites = append(sites, EffectSite{n.Pos(), EffBlocksOnLock, "channel send"})
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				sites = append(sites, EffectSite{n.Pos(), EffBlocksOnLock, "channel receive"})
			case token.AND:
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					sites = append(sites, EffectSite{n.Pos(), EffAllocates, "&composite literal"})
				}
			}
		case *ast.RangeStmt:
			if !launders {
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						sites = append(sites, EffectSite{n.Pos(), EffRangesMap,
							"range over " + types.TypeString(tv.Type, relativeTo(src.Pkg.Pkg))})
					}
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					sites = append(sites, EffectSite{n.Pos(), EffAllocates, "map literal"})
				case *types.Slice:
					sites = append(sites, EffectSite{n.Pos(), EffAllocates, "slice literal"})
				}
			}
		case *ast.FuncLit:
			sites = append(sites, EffectSite{n.Pos(), EffAllocates, "func literal"})
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				sites = append(sites, EffectSite{n.Pos(), EffAllocates, "string concatenation"})
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(info, n.Lhs[0]) {
				sites = append(sites, EffectSite{n.Pos(), EffAllocates, "string concatenation"})
			}
		case *ast.CallExpr:
			sites = append(sites, callSites(info, n)...)
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool { return sites[i].Pos < sites[j].Pos })
	return sites
}

// callSites classifies one call expression's local allocation effects:
// make/new builtins and string<->bytes/runes conversions. Calls to declared
// functions are handled through the call graph, not here.
func callSites(info *types.Info, call *ast.CallExpr) []EffectSite {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				return []EffectSite{{call.Pos(), EffAllocates, "make"}}
			case "new":
				return []EffectSite{{call.Pos(), EffAllocates, "new"}}
			}
			return nil
		}
	}
	// Type conversion T(x): allocation when converting between string and
	// []byte/[]rune.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		argTV, ok := info.Types[call.Args[0]]
		if !ok {
			return nil
		}
		if conversionAllocates(dst, argTV.Type) {
			return []EffectSite{{call.Pos(), EffAllocates, "string conversion"}}
		}
	}
	return nil
}

func conversionAllocates(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value == nil && isString(tv.Type)
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isString(tv.Type)
}

// callsSort reports whether the function body calls into package sort or
// slices — the range-then-sort idiom that launders map iteration order back
// into a deterministic sequence.
func callsSort(src *FuncSource, info *types.Info) bool {
	found := false
	ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sort", "slices":
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// HasDirective reports whether fd's doc comment contains a line starting
// with the given //vet: directive.
func HasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// EffectClosure walks the Program's effect summaries from every function
// whose doc comment carries the given root directive (//vet:hotpath,
// //vet:detpath) and returns each reached function mapped to the first
// root that reaches it. Roots are visited in declaration order and the
// walk is breadth-first, so the attribution is deterministic. Overridden
// (//vet:summary) functions are reached but not descended into — their
// declared bitset stands for the whole subtree. Interface callees are
// followed only when followIface is set: determinism contracts must hold
// for every implementer, while hot-path contracts treat dynamic dispatch
// as a trust boundary.
func EffectClosure(p *Program, directive string, followIface bool) map[*types.Func]*types.Func {
	w := p.Effects()
	reached := make(map[*types.Func]*types.Func)
	for _, src := range p.Funcs() {
		if !HasDirective(src.Decl, directive) {
			continue
		}
		root := src.Fn
		queue := []*types.Func{root}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			if _, seen := reached[fn]; seen {
				continue
			}
			reached[fn] = root
			s := w.Summary(fn)
			if s == nil || s.Overridden {
				continue
			}
			queue = append(queue, s.Callees...)
			if followIface {
				queue = append(queue, s.IfaceCallees...)
			}
		}
	}
	return reached
}

// FuncLabel renders fn for diagnostics: "Type.Method" for methods,
// "Func" otherwise.
func FuncLabel(fn *types.Func) string {
	if named := MethodRecv(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// relativeTo renders type names relative to pkg (short names for same-
// package types, import paths elsewhere).
func relativeTo(pkg *types.Package) types.Qualifier {
	return func(other *types.Package) string {
		if other == pkg {
			return ""
		}
		return other.Path()
	}
}
