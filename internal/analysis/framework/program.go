package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sync"
)

// A Fact is a datum an analyzer computes about a types.Object (usually a
// *types.Func) and shares across packages within one analysis session —
// the same idea as golang.org/x/tools/go/analysis facts, shrunk to an
// in-memory store: no serialization, one process, one Program.
//
// Fact types must be pointers; AFact is a marker method.
type Fact interface{ AFact() }

// ProgramPackage is one package of a Program: syntax plus type information.
type ProgramPackage struct {
	Path  string
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info
}

// FuncSource is a function's declaration site within a Program: the
// types.Func object, its syntax, and the package that declares it. Only
// functions with bodies in the Program have a FuncSource; imported or
// synthesized functions do not.
type FuncSource struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *ProgramPackage
}

// Program is the whole-repo (or whole-fixture) view interprocedural
// analyzers work against. Drivers build one Program per session and hand it
// to every Pass; analyzers memoize whole-program results on it so the work
// is done once even though Run is invoked once per package.
type Program struct {
	Fset     *token.FileSet
	Packages []*ProgramPackage

	mu    sync.Mutex
	facts map[factKey]Fact
	memos map[string]any
	graph *CallGraph
	funcs map[*types.Func]*FuncSource
	byKey map[string]*FuncSource // funcKey -> declaration, for export-data aliases
	order []*FuncSource          // declaration order, for deterministic iteration
}

type factKey struct {
	obj types.Object
	typ reflect.Type
}

// NewProgram assembles a Program over the given packages.
func NewProgram(fset *token.FileSet, pkgs []*ProgramPackage) *Program {
	return &Program{
		Fset:     fset,
		Packages: pkgs,
		facts:    make(map[factKey]Fact),
		memos:    make(map[string]any),
	}
}

// indexFuncs builds the *types.Func -> declaration map. Caller holds p.mu.
func (p *Program) indexFuncs() {
	if p.funcs != nil {
		return
	}
	p.funcs = make(map[*types.Func]*FuncSource)
	p.byKey = make(map[string]*FuncSource)
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				src := &FuncSource{Fn: fn, Decl: fd, Pkg: pkg}
				p.funcs[fn] = src
				p.byKey[funcKey(fn)] = src
				p.order = append(p.order, src)
			}
		}
	}
}

// Source returns the declaration site of fn within the Program, or nil for
// functions declared outside it (imported packages, func literals).
func (p *Program) Source(fn *types.Func) *FuncSource {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.indexFuncs()
	return p.funcs[fn]
}

// CanonicalSource resolves fn to its in-Program declaration, matching by
// object identity first and falling back to the package-path-qualified
// function key. The fallback matters under the vet driver: each package is
// type-checked against compiled export data, so a cross-package callee's
// *types.Func is a distinct object from the declaring package's own even
// though both name the same function. Interprocedural engines must
// canonicalize through this method before comparing or indexing by
// function identity.
func (p *Program) CanonicalSource(fn *types.Func) *FuncSource {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.indexFuncs()
	if src, ok := p.funcs[fn]; ok {
		return src
	}
	return p.byKey[funcKey(fn)]
}

// Funcs returns every declared function in the Program in declaration
// order (package order, then file order, then position).
func (p *Program) Funcs() []*FuncSource {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.indexFuncs()
	return p.order
}

// PackageOf returns the ProgramPackage whose file set covers pos, or nil.
func (p *Program) PackageOf(pos token.Pos) *ProgramPackage {
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			if f.Pos() <= pos && pos <= f.End() {
				return pkg
			}
		}
	}
	return nil
}

// ExportFact attaches a fact to obj, replacing any existing fact of the
// same concrete type.
func (p *Program) ExportFact(obj types.Object, f Fact) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.facts[factKey{obj, reflect.TypeOf(f)}] = f
}

// ImportFact copies the fact of f's concrete type attached to obj into f,
// reporting whether one was present. f must be a non-nil pointer, as in
// go/analysis.
func (p *Program) ImportFact(obj types.Object, f Fact) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	got, ok := p.facts[factKey{obj, reflect.TypeOf(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// Memo returns the value previously computed under key, or runs compute
// and caches its result. Interprocedural analyzers use it to do
// whole-program work once even though they are invoked once per package;
// key must therefore be unique per analyzer (conventionally the analyzer
// name). compute runs without the Program lock held, so it may itself use
// the Program; concurrent first calls under the same key may both compute,
// with one result kept.
// PeekMemo returns the value previously memoized under key without
// computing anything — for report paths that surface a cache's stats only
// when some analyzer actually populated it.
func (p *Program) PeekMemo(key string) (any, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.memos[key]
	return v, ok
}

func (p *Program) Memo(key string, compute func() any) any {
	p.mu.Lock()
	v, ok := p.memos[key]
	p.mu.Unlock()
	if ok {
		return v
	}
	v = compute()
	p.mu.Lock()
	if prev, ok := p.memos[key]; ok {
		v = prev
	} else {
		p.memos[key] = v
	}
	p.mu.Unlock()
	return v
}
