package framework_test

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"

	"androne/internal/analysis/framework"
)

// loadSrcStd is loadSrc with standard-library imports resolved through the
// go tool's build cache — for effect-engine tests that exercise the leaf
// table (time, sync, math/rand, ...).
func loadSrcStd(t *testing.T, fset *token.FileSet, path string, files ...string) *framework.ProgramPackage {
	t.Helper()
	var asts []*ast.File
	for i, src := range files {
		f, err := parser.ParseFile(fset, fmt.Sprintf("%s/file%d.go", path, i), src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	lookup := func(path string) (io.ReadCloser, error) {
		var out, stderr bytes.Buffer
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Stdout = &out
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
		}
		export := strings.TrimSpace(out.String())
		if export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(export)
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := cfg.Check(path, fset, asts, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &framework.ProgramPackage{Path: path, Pkg: pkg, Files: asts, Info: info}
}

func summaryOf(t *testing.T, w *framework.EffectWorld, pp *framework.ProgramPackage, name string) *framework.Summary {
	t.Helper()
	obj := pp.Pkg.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("no func %s in %s", name, pp.Path)
	}
	s := w.Summary(fn)
	if s == nil {
		t.Fatalf("no summary for %s", name)
	}
	return s
}

func TestEffectStringAndParse(t *testing.T) {
	cases := []struct {
		eff  framework.Effect
		want string
	}{
		{0, "none"},
		{framework.EffAllocates, "Allocates"},
		{framework.EffAllocates | framework.EffRangesMap, "Allocates|RangesMap"},
		{framework.EffReadsClock | framework.EffBlocksOnLock, "ReadsClock|BlocksOnLock"},
	}
	for _, c := range cases {
		if got := c.eff.String(); got != c.want {
			t.Errorf("String(%#x) = %q, want %q", uint16(c.eff), got, c.want)
		}
	}
	if eff, err := framework.ParseEffects("Allocates,ReadsGlobalRand"); err != nil ||
		eff != framework.EffAllocates|framework.EffReadsGlobalRand {
		t.Errorf("ParseEffects = %v, %v", eff, err)
	}
	if eff, err := framework.ParseEffects("none"); err != nil || eff != 0 {
		t.Errorf("ParseEffects(none) = %v, %v", eff, err)
	}
	if _, err := framework.ParseEffects("Allocates,Bogus"); err == nil {
		t.Error("ParseEffects accepted unknown effect")
	}
}

func TestLocalEffectExtraction(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrc(t, fset, "local", `package local

func allocs(m map[int]int, b []byte) string {
	_ = make([]int, 4)
	_ = new(int)
	_ = map[string]int{}
	_ = []int{1, 2}
	type box struct{ v int }
	_ = &box{v: 1}
	s := string(b)
	s = s + "x"
	return s
}

func ranges(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func spawns(ch chan int) {
	go func() { ch <- 1 }()
	<-ch
	select {
	case <-ch:
	case ch <- 2:
	}
}

func clean(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	xs = append(xs, total)
	return len(xs)
}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.Effects()

	if s := summaryOf(t, w, pp, "allocs"); s.Local != framework.EffAllocates {
		t.Errorf("allocs Local = %v, want Allocates", s.Local)
	} else if len(s.Sites) < 7 {
		t.Errorf("allocs has %d sites, want >= 7 (make, new, map lit, slice lit, &lit, conversion, concat)", len(s.Sites))
	}
	if s := summaryOf(t, w, pp, "ranges"); s.Local != framework.EffRangesMap {
		t.Errorf("ranges Local = %v, want RangesMap", s.Local)
	}
	s := summaryOf(t, w, pp, "spawns")
	want := framework.EffSpawnsGoroutine | framework.EffAllocates | framework.EffBlocksOnLock | framework.EffSelectsUnordered
	if s.Local != want {
		t.Errorf("spawns Local = %v, want %v", s.Local, want)
	}
	// Ranging a slice and appending are not effects: the hot paths append
	// into preallocated scratch, and AllocsPerRun pins check that claim.
	if s := summaryOf(t, w, pp, "clean"); s.Local != 0 {
		t.Errorf("clean Local = %v, want none", s.Local)
	}
}

func TestSortLaunderingSuppressesMapRange(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrcStd(t, fset, "launder", `package launder

import "sort"

func sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.Effects()
	if s := summaryOf(t, w, pp, "sorted"); s.Local&framework.EffRangesMap != 0 {
		t.Errorf("sorted flagged RangesMap despite sort call: %v", s.Local)
	}
	if s := summaryOf(t, w, pp, "unsorted"); s.Local&framework.EffRangesMap == 0 {
		t.Errorf("unsorted Local = %v, want RangesMap", s.Local)
	}
}

func TestFixpointMutualRecursion(t *testing.T) {
	fset := token.NewFileSet()
	// ping and pong call each other; the allocation lives three hops down.
	// The fixpoint must converge with both Totals carrying Allocates.
	pp := loadSrc(t, fset, "mutual", `package mutual

func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) {
	if n > 0 {
		ping(n - 1)
	}
	leaf()
}

func leaf() {
	_ = make([]int, 1)
}

func outside() {}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.Effects()
	for _, name := range []string{"ping", "pong", "leaf"} {
		if s := summaryOf(t, w, pp, name); !s.Total.Has(framework.EffAllocates) {
			t.Errorf("%s Total = %v, want Allocates", name, s.Total)
		}
	}
	if s := summaryOf(t, w, pp, "ping"); s.Local != 0 {
		t.Errorf("ping Local = %v, want none (effect is transitive)", s.Local)
	}
	if s := summaryOf(t, w, pp, "outside"); s.Total != 0 {
		t.Errorf("outside Total = %v, want none", s.Total)
	}
	if w.Stats().Passes < 2 || w.Stats().Passes > 10 {
		t.Errorf("fixpoint took %d passes, want small and > 1", w.Stats().Passes)
	}
}

func TestSummaryOverrides(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrc(t, fset, "override", `package override

//vet:summary effects=none verified allocation-free by inspection
func trusted() {
	_ = make([]int, 1024)
}

//vet:summary effects=BlocksOnLock wraps a futex syscall
func declared() {}

//vet:summary wrong syntax here
func malformed() {}

func caller() {
	trusted()
	declared()
}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.Effects()

	s := summaryOf(t, w, pp, "trusted")
	if !s.Overridden || s.Total != 0 || len(s.Sites) != 0 {
		t.Errorf("trusted = {Overridden:%v Total:%v Sites:%d}, want override to none", s.Overridden, s.Total, len(s.Sites))
	}
	if s := summaryOf(t, w, pp, "declared"); !s.Overridden || s.Total != framework.EffBlocksOnLock {
		t.Errorf("declared Total = %v, want BlocksOnLock", s.Total)
	}
	// The caller inherits declared effects but not the body trusted() hides.
	if s := summaryOf(t, w, pp, "caller"); s.Total != framework.EffBlocksOnLock {
		t.Errorf("caller Total = %v, want BlocksOnLock only", s.Total)
	}
	if len(w.BadDirectives) != 1 || !strings.Contains(w.BadDirectives[0].Detail, "malformed //vet:summary") {
		t.Errorf("BadDirectives = %+v, want one malformed entry", w.BadDirectives)
	}
	if w.Stats().Overrides != 2 {
		t.Errorf("Overrides = %d, want 2", w.Stats().Overrides)
	}
}

func TestInterfaceFanOutBounding(t *testing.T) {
	src := `package bound

type Dev interface{ Op() }

type A struct{}
func (A) Op() { _ = make([]int, 1) }
type B struct{}
func (B) Op() {}
type C struct{}
func (C) Op() {}

func drive(d Dev) { d.Op() }
`
	build := func(maxFan int) (*framework.EffectWorld, *framework.ProgramPackage) {
		fs := token.NewFileSet()
		pp := loadSrc(t, fs, "bound", src)
		prog := framework.NewProgram(fs, []*framework.ProgramPackage{pp})
		return framework.ComputeEffects(prog, framework.EffectConfig{MaxInterfaceFanOut: maxFan}), pp
	}

	// Wide enough bound: the interface call fans out and A's allocation
	// propagates into drive.
	w, pp := build(16)
	if s := summaryOf(t, w, pp, "drive"); !s.Total.Has(framework.EffAllocates) {
		t.Errorf("unbounded drive Total = %v, want Allocates via fan-out", s.Total)
	} else if len(s.IfaceCallees) != 3 {
		t.Errorf("unbounded drive IfaceCallees = %d, want 3", len(s.IfaceCallees))
	}
	if w.Stats().BoundedCalls != 0 {
		t.Errorf("unbounded BoundedCalls = %d, want 0", w.Stats().BoundedCalls)
	}

	// Bound below the implementer count: the site is dropped (optimistic)
	// and counted in the stats.
	w, pp = build(2)
	if s := summaryOf(t, w, pp, "drive"); s.Total != 0 || len(s.IfaceCallees) != 0 {
		t.Errorf("bounded drive = {Total:%v IfaceCallees:%d}, want dropped site", s.Total, len(s.IfaceCallees))
	}
	if w.Stats().BoundedCalls != 1 {
		t.Errorf("bounded BoundedCalls = %d, want 1", w.Stats().BoundedCalls)
	}
}

func TestEffectPropagationThroughFunclitsDeferGo(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrc(t, fset, "prop", `package prop

func alloc() { _ = make([]int, 1) }

func viaFunclit() {
	f := func() { alloc() }
	f()
}

func viaDefer() {
	defer alloc()
}

func viaGo() {
	go alloc()
}

func viaDeferLit(m map[int]int) {
	defer func() {
		for range m {
		}
	}()
}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.Effects()

	// Calls inside func literals are attributed to the enclosing declared
	// function; defer and go arguments are ordinary call edges.
	for _, name := range []string{"viaFunclit", "viaDefer", "viaGo"} {
		if s := summaryOf(t, w, pp, name); !s.Total.Has(framework.EffAllocates) {
			t.Errorf("%s Total = %v, want Allocates", name, s.Total)
		}
	}
	if s := summaryOf(t, w, pp, "viaGo"); !s.Total.Has(framework.EffSpawnsGoroutine) {
		t.Errorf("viaGo Total = %v, want SpawnsGoroutine", s.Total)
	}
	if s := summaryOf(t, w, pp, "viaDeferLit"); !s.Total.Has(framework.EffRangesMap) {
		t.Errorf("viaDeferLit Total = %v, want RangesMap from deferred literal body", s.Total)
	}
}

func TestLeafTableAndLockDetail(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrcStd(t, fset, "leaf", `package leaf

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

type Guarded struct {
	mu sync.Mutex
	n  int
}

func (g *Guarded) bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func clocky() time.Time { return time.Now() }

func sched() int { return runtime.NumCPU() }

func globalRand() int { return rand.Intn(6) }

func seededRand(r *rand.Rand) int { return r.Intn(6) }

func wrapped(err error) error { return fmt.Errorf("leaf: %w", err) }
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.Effects()

	cases := []struct {
		fn   string
		want framework.Effect
	}{
		{"clocky", framework.EffReadsClock},
		{"sched", framework.EffReadsSchedulerState},
		{"globalRand", framework.EffReadsGlobalRand},
		{"seededRand", 0}, // *rand.Rand methods are caller-seeded: deterministic
		{"wrapped", framework.EffAllocates},
	}
	for _, c := range cases {
		if s := summaryOf(t, w, pp, c.fn); s.Total != c.want {
			t.Errorf("%s Total = %v, want %v", c.fn, s.Total, c.want)
		}
	}

	// The lock site carries the owner-type identity the hotpath analyzer
	// checks against its sanctioned-lock list.
	obj := pp.Pkg.Scope().Lookup("Guarded").(*types.TypeName)
	bump, _, _ := types.LookupFieldOrMethod(types.NewPointer(obj.Type()), true, pp.Pkg, "bump")
	s := w.Summary(bump.(*types.Func))
	if s == nil || !s.Total.Has(framework.EffBlocksOnLock) {
		t.Fatalf("bump summary = %+v, want BlocksOnLock", s)
	}
	found := false
	for _, site := range s.Sites {
		if site.Detail == "lock leaf.Guarded.mu" {
			found = true
		}
	}
	if !found {
		t.Errorf("bump sites = %+v, want one with detail %q", s.Sites, "lock leaf.Guarded.mu")
	}
	if w.Stats().LeafCalls == 0 {
		t.Error("Stats.LeafCalls = 0, want > 0")
	}
	// Unknown out-of-Program callees (mu.Unlock, r.Intn, ...) are counted.
	if w.Stats().UnknownCallees == 0 {
		t.Error("Stats.UnknownCallees = 0, want > 0")
	}
}

func TestEffectsMemoized(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrc(t, fset, "memo", `package memo

func f() {}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	if _, ok := prog.EffectsIfComputed(); ok {
		t.Fatal("EffectsIfComputed reported a world before any computation")
	}
	w1 := prog.Effects()
	w2 := prog.Effects()
	if w1 != w2 {
		t.Error("Effects() computed twice, want memoized")
	}
	if peek, ok := prog.EffectsIfComputed(); !ok || peek != w1 {
		t.Error("EffectsIfComputed did not return the memoized world")
	}
}
