package framework

import (
	"go/ast"
	"go/types"
)

// Origin is a small bitset lattice of value provenances. The framework
// assigns no meaning to individual bits — each analyzer defines its own
// (e.g. "from the Binder-stamped sender", "from payload bytes") and joins
// are bitwise union, so the engine is monotone by construction.
type Origin uint32

// Has reports whether o includes every bit of b.
func (o Origin) Has(b Origin) bool { return o&b == b }

// Flow configures the forward dataflow engine for one function body. The
// engine is flow-insensitive: it unions origins over all assignments to a
// variable, iterating to a fixpoint. That over-approximates "may
// originate from", which is the safe direction for taint checks.
type Flow struct {
	Info *types.Info

	// Source classifies leaf expressions. A non-zero result claims the
	// expression: the engine uses it instead of descending further. Typical
	// clients claim selector chains (txn.Sender.EUID), literals, and
	// payload roots here.
	Source func(e ast.Expr) Origin

	// Call, if non-nil, gives the origin of a call's results from the
	// origins of its arguments. Nil means the union of the argument
	// origins, a coarse default that treats every callee as a pass-through.
	Call func(call *ast.CallExpr, args []Origin) Origin
}

// FlowResult holds the per-variable origin environment computed for one
// function body.
type FlowResult struct {
	flow *Flow
	env  map[types.Object]Origin
}

// Analyze runs the engine over decl's body. seed pre-assigns origins
// (typically to parameters); it may be nil.
func (f *Flow) Analyze(decl *ast.FuncDecl, seed map[types.Object]Origin) *FlowResult {
	r := &FlowResult{flow: f, env: make(map[types.Object]Origin)}
	for obj, o := range seed {
		r.env[obj] = o
	}
	if decl.Body == nil {
		return r
	}
	// Flow-insensitive fixpoint. Each pass unions the origin of every RHS
	// into its LHS variable; origins only grow, so iteration terminates.
	// The bound caps pathological chains (a=b; b=c; ... resolved one link
	// per pass) without changing results for realistic bodies.
	for i := 0; i < 8; i++ {
		if !r.pass(decl.Body) {
			break
		}
	}
	return r
}

// pass walks the body once, returning whether any variable's origin grew.
func (r *FlowResult) pass(body *ast.BlockStmt) bool {
	changed := false
	join := func(obj types.Object, o Origin) {
		if obj == nil || o == 0 {
			return
		}
		if r.env[obj]|o != r.env[obj] {
			r.env[obj] |= o
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					join(r.lhsObj(lhs), r.Origin(n.Rhs[i]))
				}
			} else if len(n.Rhs) == 1 {
				// x, y := f(...) — every LHS gets the call's origin.
				o := r.Origin(n.Rhs[0])
				for _, lhs := range n.Lhs {
					join(r.lhsObj(lhs), o)
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					switch {
					case len(vs.Values) == len(vs.Names):
						join(r.flow.Info.Defs[name], r.Origin(vs.Values[i]))
					case len(vs.Values) == 1:
						join(r.flow.Info.Defs[name], r.Origin(vs.Values[0]))
					}
				}
			}
		case *ast.RangeStmt:
			o := r.Origin(n.X)
			if n.Key != nil {
				join(r.lhsObj(n.Key), o)
			}
			if n.Value != nil {
				join(r.lhsObj(n.Value), o)
			}
		case *ast.CallExpr:
			// Out-parameter rule: a call passing &x may write into x
			// (json.Unmarshal(data, &req), binary.Read, ...). Union the
			// other arguments' origins into x. Coarse, but errs toward
			// tainting, which is the safe direction.
			var fromArgs Origin
			for _, arg := range n.Args {
				if _, ok := ast.Unparen(arg).(*ast.UnaryExpr); !ok {
					fromArgs |= r.Origin(arg)
				}
			}
			if fromArgs != 0 {
				for _, arg := range n.Args {
					if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
						if id, ok := ast.Unparen(u.X).(*ast.Ident); ok {
							join(r.flow.Info.Uses[id], fromArgs)
						}
					}
				}
			}
		}
		return true
	})
	return changed
}

// lhsObj resolves an assignment target to its variable object, or nil for
// blank, field, and index targets (which the environment does not track).
func (r *FlowResult) lhsObj(lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := r.flow.Info.Defs[id]; obj != nil {
		return obj
	}
	return r.flow.Info.Uses[id]
}

// Origin computes the origin of an expression under the current
// environment: Source claims leaves, variables read from the environment,
// and compound expressions union their operands.
func (r *FlowResult) Origin(e ast.Expr) Origin {
	if e == nil {
		return 0
	}
	if r.flow.Source != nil {
		if o := r.flow.Source(e); o != 0 {
			return o
		}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return r.Origin(e.X)
	case *ast.Ident:
		if obj := r.flow.Info.Uses[e]; obj != nil {
			return r.env[obj]
		}
		return 0
	case *ast.SelectorExpr:
		// Unclaimed field access inherits the origin of its operand.
		return r.Origin(e.X)
	case *ast.CallExpr:
		args := make([]Origin, len(e.Args))
		var union Origin
		for i, a := range e.Args {
			args[i] = r.Origin(a)
			union |= args[i]
		}
		if r.flow.Call != nil {
			return r.flow.Call(e, args)
		}
		return union
	case *ast.UnaryExpr:
		return r.Origin(e.X)
	case *ast.StarExpr:
		return r.Origin(e.X)
	case *ast.BinaryExpr:
		return r.Origin(e.X) | r.Origin(e.Y)
	case *ast.IndexExpr:
		return r.Origin(e.X) | r.Origin(e.Index)
	case *ast.SliceExpr:
		return r.Origin(e.X)
	case *ast.TypeAssertExpr:
		return r.Origin(e.X)
	case *ast.CompositeLit:
		var union Origin
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				union |= r.Origin(kv.Value)
			} else {
				union |= r.Origin(elt)
			}
		}
		return union
	case *ast.KeyValueExpr:
		return r.Origin(e.Value)
	}
	return 0
}

// VarOrigin returns the computed origin of a variable.
func (r *FlowResult) VarOrigin(obj types.Object) Origin { return r.env[obj] }
