// Package framework is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer bundles a named
// check, a Pass hands it one type-checked package, and diagnostics are
// reported through the Pass. The build environment vendors no external
// modules, so androne-vet carries its own framework; the API mirrors
// go/analysis closely enough that analyzers port in either direction with
// mechanical edits.
//
// Suppression: a diagnostic whose source line carries a comment of the form
//
//	//vet:allow <analyzer-name> [reason]
//
// is dropped by the drivers (cmd/androne-vet and the analysistest harness).
// Suppressions are for documented, reviewed exceptions only.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string
	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then details.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass provides one analyzer run over one package with the inputs it needs
// and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Program is the whole-session view shared by every pass: all loaded
	// packages, the call graph, the fact store. Interprocedural analyzers
	// compute whole-program results once (memoized on the Program) and
	// report only the diagnostics positioned inside this pass's package, so
	// running once per package never duplicates findings.
	Program *Program

	// Report receives each diagnostic. Drivers install this.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// EnclosingFunc returns the function declaration enclosing pos within the
// pass' files, or nil. Analyzers use it to scope rules to specific methods.
func (p *Pass) EnclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, f := range p.Files {
		if f.Pos() > pos || f.End() < pos {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
				return fd
			}
		}
	}
	return nil
}

// ReceiverTypeName returns the name of fd's receiver base type ("" for
// plain functions), with any pointer indirection stripped.
func ReceiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := tt.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
