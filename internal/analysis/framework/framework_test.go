package framework_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"androne/internal/analysis/framework"
)

// loadSrc type-checks the given files as one package and wraps it as a
// ProgramPackage. The sources must not import anything.
func loadSrc(t *testing.T, fset *token.FileSet, path string, files ...string) *framework.ProgramPackage {
	t.Helper()
	var asts []*ast.File
	for i, src := range files {
		f, err := parser.ParseFile(fset, fmt.Sprintf("%s/file%d.go", path, i), src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{}
	pkg, err := cfg.Check(path, fset, asts, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &framework.ProgramPackage{Path: path, Pkg: pkg, Files: asts, Info: info}
}

// declNamed finds the function declaration with the given name.
func declNamed(t *testing.T, files []*ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

// callPos finds the position of the call to the named function inside body.
func callPos(t *testing.T, body *ast.BlockStmt, name string) token.Pos {
	t.Helper()
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name && pos == token.NoPos {
			pos = call.Pos()
		}
		return true
	})
	if pos == token.NoPos {
		t.Fatalf("no call to %s", name)
	}
	return pos
}

func TestEnclosingFuncAcrossFiles(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrc(t, fset, "encl",
		`package encl

var topLevel = 1

func first() int { return topLevel }
`,
		`package encl

func second() int {
	x := 2
	return x
}
`)
	pass := &framework.Pass{Fset: fset, Files: pp.Files, Pkg: pp.Pkg, TypesInfo: pp.Info}

	// A position inside second (declared in the second file) must resolve to
	// second, not fall off the first file's span.
	secondDecl := declNamed(t, pp.Files, "second")
	inSecond := secondDecl.Body.List[0].Pos()
	if fd := pass.EnclosingFunc(inSecond); fd == nil || fd.Name.Name != "second" {
		t.Errorf("EnclosingFunc(in second) = %v, want second", fd)
	}
	firstDecl := declNamed(t, pp.Files, "first")
	if fd := pass.EnclosingFunc(firstDecl.Body.Pos()); fd == nil || fd.Name.Name != "first" {
		t.Errorf("EnclosingFunc(in first) = %v, want first", fd)
	}
	// A package-level position outside any function yields nil.
	var varPos token.Pos
	for _, d := range pp.Files[0].Decls {
		if gd, ok := d.(*ast.GenDecl); ok {
			varPos = gd.Pos()
		}
	}
	if fd := pass.EnclosingFunc(varPos); fd != nil {
		t.Errorf("EnclosingFunc(top-level var) = %s, want nil", fd.Name.Name)
	}
	// A position before every file yields nil rather than a bogus match.
	if fd := pass.EnclosingFunc(token.NoPos); fd != nil {
		t.Errorf("EnclosingFunc(NoPos) = %s, want nil", fd.Name.Name)
	}
}

func TestReceiverTypeName(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrc(t, fset, "recv", `package recv

type Box[T any] struct{ v T }

type Plain struct{}

func (p Plain) Value() {}

func (p *Plain) Pointer() {}

func (b *Box[T]) Generic() T { return b.v }

func Free() {}
`)
	want := map[string]string{
		"Value":   "Plain",
		"Pointer": "Plain",
		"Generic": "Box",
		"Free":    "",
	}
	for name, recv := range want {
		fd := declNamed(t, pp.Files, name)
		if got := framework.ReceiverTypeName(fd); got != recv {
			t.Errorf("ReceiverTypeName(%s) = %q, want %q", name, got, recv)
		}
	}
}

func TestCallGraphInterfaceFanOut(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrc(t, fset, "fanout", `package fanout

type Device interface{ Op() error }

type Cam struct{}

func (*Cam) Op() error { return nil }

type Mic struct{}

func (Mic) Op() error { return nil }

type Idle struct{}

func drive(d Device) error { return d.Op() }

func use(c *Cam) error { return c.Op() }
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	g := prog.CallGraph()

	scope := pp.Pkg.Scope()
	driveFn := scope.Lookup("drive").(*types.Func)
	useFn := scope.Lookup("use").(*types.Func)

	// The interface call fans out to every in-Program implementer — and only
	// to implementers (Idle has no Op).
	edges := g.CallsFrom(driveFn)
	got := make(map[string]bool)
	for _, e := range edges {
		if !e.Interface {
			t.Errorf("drive edge to %s: Interface = false, want true", e.Callee.Name())
		}
		recv := framework.MethodRecv(e.Callee)
		if recv == nil {
			t.Fatalf("drive edge to non-method %s", e.Callee.Name())
		}
		got[recv.Obj().Name()] = true
	}
	if len(edges) != 2 || !got["Cam"] || !got["Mic"] {
		t.Errorf("drive fan-out = %v (%d edges), want {Cam, Mic}", got, len(edges))
	}

	// The static method call resolves exactly, not through the interface.
	edges = g.CallsFrom(useFn)
	if len(edges) != 1 || edges[0].Interface {
		t.Fatalf("use edges = %+v, want one non-interface edge", edges)
	}
	if recv := framework.MethodRecv(edges[0].Callee); recv == nil || recv.Obj().Name() != "Cam" {
		t.Errorf("use callee = %v, want Cam.Op", edges[0].Callee)
	}

	// Both callers appear in the reverse closure of the Op seed.
	closure := g.ReverseClosure(func(fn *types.Func) bool { return fn.Name() == "Op" })
	if !closure[driveFn] || !closure[useFn] {
		t.Errorf("ReverseClosure(Op) misses callers: drive=%v use=%v", closure[driveFn], closure[useFn])
	}
}

func TestDominates(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrc(t, fset, "dom", `package dom

func guard() bool  { return true }
func armGuard()    {}
func scGuard() bool { return true }
func initGuard() bool { return true }
func sinkA()       {}
func sinkB()       {}
func sinkLoop()    {}
func sinkSC()      {}
func sinkInit()    {}
func sinkGoto()    {}

func flow(cond bool) {
	guard()
	if cond {
		armGuard()
		sinkA()
	}
	sinkB()
	for i := 0; i < 3; i++ {
		sinkLoop()
	}
	if cond && scGuard() {
		sinkSC()
	}
	if ok := initGuard(); ok {
		sinkInit()
	}
}

func jumpy() {
	guard()
	goto done
done:
	sinkGoto()
}
`)
	flowBody := declNamed(t, pp.Files, "flow").Body
	at := func(name string) token.Pos { return callPos(t, flowBody, name) }

	cases := []struct {
		a, b string
		want bool
	}{
		{"guard", "sinkB", true},        // straight-line prefix
		{"guard", "sinkA", true},        // prefix dominates inside later arms
		{"guard", "sinkLoop", true},     // and inside loop bodies
		{"armGuard", "sinkA", true},     // sequential within one arm
		{"armGuard", "sinkB", false},    // conditional arm does not dominate after
		{"sinkA", "sinkB", false},       // same
		{"sinkB", "guard", false},       // order matters
		{"scGuard", "sinkSC", false},    // short-circuit RHS is conditional
		{"initGuard", "sinkInit", true}, // if Init runs before the arms
	}
	for _, c := range cases {
		if got := framework.Dominates(flowBody, at(c.a), at(c.b)); got != c.want {
			t.Errorf("Dominates(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}

	// Any goto in the body disables the structural proof entirely.
	jumpyBody := declNamed(t, pp.Files, "jumpy").Body
	if framework.Dominates(jumpyBody, callPos(t, jumpyBody, "guard"), callPos(t, jumpyBody, "sinkGoto")) {
		t.Error("Dominates proved a claim in a body containing goto")
	}
}
