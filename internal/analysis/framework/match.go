package framework

import (
	"go/types"
	"strings"
)

// The androne guard analyzers identify program elements by import-path
// suffix rather than exact path, so fixture packages placed under
// testdata/src/androne/... match the same policies as the real tree.

// HasPkgSuffix reports whether pkg's import path ends in suffix.
func HasPkgSuffix(pkg *types.Package, suffix string) bool {
	return pkg != nil && strings.HasSuffix(pkg.Path(), suffix)
}

// IsMethod reports whether fn is the method recvType.name declared in a
// package whose import path ends in pkgSuffix, with pointer indirection on
// the receiver stripped.
func IsMethod(fn *types.Func, pkgSuffix, recvType, name string) bool {
	if fn == nil || fn.Name() != name || !HasPkgSuffix(fn.Pkg(), pkgSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsNamed(sig.Recv().Type(), pkgSuffix, recvType)
}

// IsFunc reports whether fn is the package-level function pkgSuffix.name.
func IsFunc(fn *types.Func, pkgSuffix, name string) bool {
	if fn == nil || fn.Name() != name || !HasPkgSuffix(fn.Pkg(), pkgSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsNamed reports whether t, after stripping one level of pointer, is the
// named type pkgSuffix.name.
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && HasPkgSuffix(obj.Pkg(), pkgSuffix)
}

// MethodRecv returns the receiver's named base type of fn, or nil for
// plain functions.
func MethodRecv(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
