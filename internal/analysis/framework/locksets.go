// Lock sets: a bottom-up interprocedural engine that propagates held-lock
// sets over the call graph and builds the global lock-acquisition-order
// graph. The lockorder analyzer consumes it to convict potential deadlocks
// (cycles and inconsistent A→B/B→A acquisition pairs) and violations of the
// //vet:lockrank-declared global order, and to enforce the critical-path
// contract: flight-critical (//vet:hotpath-rooted) code must never acquire
// a lock that tenant-reachable code can also hold.
//
// Lock identities are canonical "pkgpath.OwnerType.field" strings — the
// same rendering PR 6's effect engine uses for its sanctioned-lock check —
// plus "pkgpath.var" for package-level mutexes. Locks whose receiver the
// engine cannot name (local mutex variables, mutexes reached through
// function results) have no global identity and are skipped: a lock the
// engine cannot name cannot participate in a cross-function order anyway
// without first being nameable at both sites. Function values and
// reflection are unresolved, as everywhere in the framework (see DESIGN.md
// for the honest-limits list).
//
// The intra-function walk is a may-hold approximation:
//
//   - mu.Lock()/mu.RLock() add the lock to the held set; Unlock/RUnlock
//     remove it. defer mu.Unlock() keeps the lock held to the end of the
//     walk (the lock is genuinely held for the remainder of the body).
//   - Branches (if/for/switch/select) are walked with a copy of the entry
//     set and joined by UNION: a lock held on any arm is treated as held
//     after the merge. Over-approximating "held" can only add order edges,
//     never hide one.
//   - mu.TryLock() cannot block, so no edge points INTO a try-acquired
//     lock; but a successful TryLock is held afterwards, so edges OUT of
//     it are real. In `if mu.TryLock() { ... }` the lock is held in the
//     then-branch only; a try-lock in any other position is conservatively
//     held from that point on.
//   - go-statement bodies run concurrently: they are walked with an EMPTY
//     held set (their acquisitions attributed to the enclosing declaration,
//     as the call graph does). Immediately-invoked func literals inherit
//     the current held set; other func literals are walked with an empty
//     set — when they actually run is unknown, and the framework defaults
//     to optimism at unknowns.
//
// Interprocedural propagation is the usual fixpoint: AcquiresTotal(f) =
// local acquisitions ∪ AcquiresTotal of every resolved callee, so a call
// made while holding A yields an edge A→B for every B the callee may
// (transitively, blocking-ly) acquire. Recursion terminates because the
// domain (the finite set of named locks) is monotone — mutual recursion
// just converges in more sweeps.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// LockID is a canonical lock identity: "pkgpath.OwnerType.field" for
// struct-field mutexes, "pkgpath.var" for package-level ones.
type LockID string

// LockAcq is one local acquisition site.
type LockAcq struct {
	Pos  token.Pos
	Lock LockID
	// Held is the may-held set at the acquisition, in first-acquired order,
	// not including Lock itself.
	Held []LockID
	// Try marks TryLock/TryRLock: the site cannot block, so it receives no
	// incoming order edge, but the lock is held afterwards.
	Try bool
	// Read marks RLock/TryRLock.
	Read bool
}

// LockTrace records where a lock in a function's transitive acquire set is
// actually taken, for witness rendering.
type LockTrace struct {
	Fn  *types.Func
	Pos token.Pos
	// Try is true only while every known acquisition of the lock in the
	// subtree is a try-acquisition (which cannot block).
	Try bool
}

// lockCall is one resolved call edge annotated with the held set at the
// call site.
type lockCall struct {
	pos    token.Pos
	callee *types.Func
	held   []LockID
}

// LockFuncInfo is one function's lock summary.
type LockFuncInfo struct {
	Fn *types.Func
	// Acqs are the local acquisition sites in source order.
	Acqs []LockAcq
	// AcquiresTotal maps every lock this function may (transitively)
	// acquire to a trace of one acquisition site.
	AcquiresTotal map[LockID]LockTrace

	calls []lockCall
}

// LockEdge is one edge of the global acquisition-order graph: To is
// acquired (at Pos, inside Fn) while From is held. When the acquisition is
// transitive, Via names the direct callee and AcqFn/AcqPos the function and
// site that actually take To; for direct acquisitions Via is nil and
// AcqFn == Fn.
type LockEdge struct {
	From, To LockID
	Fn       *types.Func
	Pos      token.Pos
	Via      *types.Func
	AcqFn    *types.Func
	AcqPos   token.Pos
}

// LockRank is one //vet:lockrank declaration: the sanctioned global
// acquisition order is ascending rank.
type LockRank struct {
	Rank int
	Pos  token.Pos
}

// LockWorld is the result of one lock-set engine run.
type LockWorld struct {
	infos map[*types.Func]*LockFuncInfo
	// Edges is the deduplicated acquisition-order graph in deterministic
	// (declaration, then source) order: one edge per (From, To) pair, first
	// witness kept.
	Edges []*LockEdge
	// Ranks are the //vet:lockrank declarations found in the Program.
	Ranks map[LockID]LockRank
	// BadRankDirectives are malformed or conflicting //vet:lockrank
	// comments (Detail holds the error).
	BadRankDirectives []EffectSite
}

// Info returns fn's lock summary, or nil for functions not declared in the
// Program.
func (w *LockWorld) Info(fn *types.Func) *LockFuncInfo { return w.infos[fn] }

// Edge returns the recorded edge From→To, or nil.
func (w *LockWorld) Edge(from, to LockID) *LockEdge {
	for _, e := range w.Edges {
		if e.From == from && e.To == to {
			return e
		}
	}
	return nil
}

// lockSetsMemoKey is the Program memo key for the shared engine run.
const lockSetsMemoKey = "framework.locksets"

// LockSets computes (once, memoized) the Program's lock-set world.
func (p *Program) LockSets() *LockWorld {
	return p.Memo(lockSetsMemoKey, func() any { return ComputeLockSets(p) }).(*LockWorld)
}

// ComputeLockSets runs the lock-set engine over the Program.
func ComputeLockSets(p *Program) *LockWorld {
	w := &LockWorld{
		infos: make(map[*types.Func]*LockFuncInfo),
		Ranks: make(map[LockID]LockRank),
	}
	w.collectRanks(p)
	g := p.CallGraph()

	for _, src := range p.Funcs() {
		lw := &lockWalker{
			prog: p,
			src:  src,
			info: &LockFuncInfo{Fn: src.Fn, AcquiresTotal: make(map[LockID]LockTrace)},
		}
		lw.indexCallees(g)
		lw.walkBlock(src.Decl.Body, nil)
		for _, a := range lw.info.Acqs {
			prev, seen := lw.info.AcquiresTotal[a.Lock]
			// A blocking acquisition beats a try-only trace.
			if !seen || (prev.Try && !a.Try) {
				lw.info.AcquiresTotal[a.Lock] = LockTrace{Fn: src.Fn, Pos: a.Pos, Try: a.Try}
			}
		}
		w.infos[src.Fn] = lw.info
	}

	// Bottom-up fixpoint over the finite lock domain: monotone, so mutual
	// recursion converges rather than diverging.
	for changed := true; changed; {
		changed = false
		for _, src := range p.Funcs() {
			info := w.infos[src.Fn]
			for _, c := range info.calls {
				ci := w.infos[c.callee]
				if ci == nil {
					continue
				}
				for lock, tr := range ci.AcquiresTotal {
					prev, seen := info.AcquiresTotal[lock]
					if !seen || (prev.Try && !tr.Try) {
						info.AcquiresTotal[lock] = tr
						changed = true
					}
				}
			}
		}
	}

	w.buildEdges(p)
	return w
}

// buildEdges assembles the deduplicated acquisition-order graph: direct
// edges from local acquisition sites, transitive edges from calls made with
// locks held. Self-edges are locksafe's double-lock jurisdiction and are
// skipped here.
func (w *LockWorld) buildEdges(p *Program) {
	seen := make(map[[2]LockID]bool)
	add := func(e *LockEdge) {
		if e.From == e.To {
			return
		}
		key := [2]LockID{e.From, e.To}
		if seen[key] {
			return
		}
		seen[key] = true
		w.Edges = append(w.Edges, e)
	}
	for _, src := range p.Funcs() {
		info := w.infos[src.Fn]
		for _, a := range info.Acqs {
			if a.Try {
				continue // cannot block: no incoming edge
			}
			for _, h := range a.Held {
				add(&LockEdge{From: h, To: a.Lock, Fn: src.Fn, Pos: a.Pos, AcqFn: src.Fn, AcqPos: a.Pos})
			}
		}
		for _, c := range info.calls {
			if len(c.held) == 0 {
				continue
			}
			ci := w.infos[c.callee]
			if ci == nil {
				continue
			}
			// Deterministic lock order within the callee's acquire set.
			locks := make([]string, 0, len(ci.AcquiresTotal))
			for lock := range ci.AcquiresTotal {
				locks = append(locks, string(lock))
			}
			sort.Strings(locks)
			for _, ls := range locks {
				lock := LockID(ls)
				tr := ci.AcquiresTotal[lock]
				if tr.Try {
					continue
				}
				for _, h := range c.held {
					add(&LockEdge{From: h, To: lock, Fn: src.Fn, Pos: c.pos, Via: c.callee, AcqFn: tr.Fn, AcqPos: tr.Pos})
				}
			}
		}
	}
}

// collectRanks scans every file's comments for //vet:lockrank directives:
//
//	//vet:lockrank <rank> <lockID> [reason]
//
// The sanctioned global order is ascending rank; equal-ranked locks must
// never nest. Conflicting re-declarations are reported as bad directives.
func (w *LockWorld) collectRanks(p *Program) {
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//vet:lockrank")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						w.BadRankDirectives = append(w.BadRankDirectives, EffectSite{
							Pos: c.Pos(), Detail: "malformed //vet:lockrank: want `//vet:lockrank <rank> <lock> [reason]`",
						})
						continue
					}
					rank, err := strconv.Atoi(fields[0])
					if err != nil {
						w.BadRankDirectives = append(w.BadRankDirectives, EffectSite{
							Pos: c.Pos(), Detail: fmt.Sprintf("malformed //vet:lockrank: bad rank %q", fields[0]),
						})
						continue
					}
					lock := LockID(fields[1])
					if prev, dup := w.Ranks[lock]; dup {
						if prev.Rank != rank {
							w.BadRankDirectives = append(w.BadRankDirectives, EffectSite{
								Pos: c.Pos(), Detail: fmt.Sprintf("conflicting //vet:lockrank for %s: %d here, %d earlier", lock, rank, prev.Rank),
							})
						}
						continue
					}
					w.Ranks[lock] = LockRank{Rank: rank, Pos: c.Pos()}
				}
			}
		}
	}
}

// lockWalker tracks the may-held set through one function body.
type lockWalker struct {
	prog    *Program
	src     *FuncSource
	info    *LockFuncInfo
	callees map[*ast.CallExpr][]*types.Func
}

// indexCallees groups the function's resolved call edges by call
// expression, canonicalized to in-Program declarations, with interface
// fan-out bounded as in the effect engine.
func (lw *lockWalker) indexCallees(g *CallGraph) {
	edges := g.CallsFrom(lw.src.Fn)
	fanOut := make(map[*ast.CallExpr]int)
	for _, e := range edges {
		if e.Interface {
			fanOut[e.Call]++
		}
	}
	lw.callees = make(map[*ast.CallExpr][]*types.Func)
	for _, e := range edges {
		if e.Interface && fanOut[e.Call] > DefaultMaxInterfaceFanOut {
			continue
		}
		if callee := lw.prog.CanonicalSource(e.Callee); callee != nil {
			lw.callees[e.Call] = append(lw.callees[e.Call], callee.Fn)
		}
	}
}

// held-set helpers: ordered slices treated as sets, union preserving
// first-seen order so witnesses render deterministically.

func heldHas(held []LockID, id LockID) bool {
	for _, h := range held {
		if h == id {
			return true
		}
	}
	return false
}

func heldAdd(held []LockID, id LockID) []LockID {
	if heldHas(held, id) {
		return held
	}
	return append(held[:len(held):len(held)], id)
}

func heldRemove(held []LockID, id LockID) []LockID {
	out := make([]LockID, 0, len(held))
	for _, h := range held {
		if h != id {
			out = append(out, h)
		}
	}
	return out
}

func heldUnion(a, b []LockID) []LockID {
	out := a
	for _, h := range b {
		out = heldAdd(out, h)
	}
	return out
}

func heldClone(held []LockID) []LockID { return held[:len(held):len(held)] }

// walkBlock walks a statement list, threading the held set through.
func (lw *lockWalker) walkBlock(b *ast.BlockStmt, held []LockID) []LockID {
	if b == nil {
		return held
	}
	return lw.walkStmts(b.List, held)
}

func (lw *lockWalker) walkStmts(stmts []ast.Stmt, held []LockID) []LockID {
	for _, s := range stmts {
		held = lw.walkStmt(s, held)
	}
	return held
}

func (lw *lockWalker) walkStmt(s ast.Stmt, held []LockID) []LockID {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return lw.walkBlock(s, held)
	case *ast.ExprStmt:
		return lw.walkExpr(s.X, held, nil)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = lw.walkExpr(e, held, nil)
		}
		for _, e := range s.Lhs {
			held = lw.walkExpr(e, held, nil)
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = lw.walkExpr(e, held, nil)
					}
				}
			}
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = lw.walkExpr(e, held, nil)
		}
		return held
	case *ast.IncDecStmt:
		return lw.walkExpr(s.X, held, nil)
	case *ast.SendStmt:
		held = lw.walkExpr(s.Chan, held, nil)
		return lw.walkExpr(s.Value, held, nil)
	case *ast.LabeledStmt:
		return lw.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = lw.walkStmt(s.Init, held)
		}
		// Try-locks acquired in the condition are held in the then-branch
		// only: `if mu.TryLock() { ... }`.
		var tries []LockID
		held = lw.walkExpr(s.Cond, held, &tries)
		thenEntry := heldClone(held)
		for _, id := range tries {
			thenEntry = heldAdd(thenEntry, id)
		}
		thenOut := lw.walkBlock(s.Body, thenEntry)
		elseOut := heldClone(held)
		if s.Else != nil {
			elseOut = lw.walkStmt(s.Else, heldClone(held))
		}
		return heldUnion(heldClone(thenOut), elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			held = lw.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			held = lw.walkExpr(s.Cond, held, nil)
		}
		bodyOut := lw.walkBlock(s.Body, heldClone(held))
		if s.Post != nil {
			bodyOut = lw.walkStmt(s.Post, bodyOut)
		}
		return heldUnion(heldClone(held), bodyOut)
	case *ast.RangeStmt:
		held = lw.walkExpr(s.X, held, nil)
		bodyOut := lw.walkBlock(s.Body, heldClone(held))
		return heldUnion(heldClone(held), bodyOut)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = lw.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			held = lw.walkExpr(s.Tag, held, nil)
		}
		return lw.walkClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = lw.walkStmt(s.Init, held)
		}
		held = lw.walkStmt(s.Assign, held)
		return lw.walkClauses(s.Body, held)
	case *ast.SelectStmt:
		out := heldClone(held)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			entry := heldClone(held)
			if comm.Comm != nil {
				entry = lw.walkStmt(comm.Comm, entry)
			}
			out = heldUnion(out, lw.walkStmts(comm.Body, entry))
		}
		return out
	case *ast.GoStmt:
		// Arguments evaluate in the spawning context; the spawned body runs
		// concurrently with an empty held set.
		for _, e := range s.Call.Args {
			held = lw.walkExpr(e, held, nil)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			lw.walkBlock(lit.Body, nil)
		} else {
			lw.walkCall(s.Call, nil, nil)
		}
		return held
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the body;
		// deferred closures run at an unknown point with an unknown held
		// set — skipped, like the effect engine's optimistic unknowns.
		return held
	}
	return held
}

func (lw *lockWalker) walkClauses(body *ast.BlockStmt, held []LockID) []LockID {
	out := heldClone(held)
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		entry := heldClone(held)
		for _, e := range cc.List {
			entry = lw.walkExpr(e, entry, nil)
		}
		out = heldUnion(out, lw.walkStmts(cc.Body, entry))
	}
	return out
}

// walkExpr walks an expression, threading the held set; tries, when
// non-nil, collects try-acquired locks for the caller (the if-condition
// special case) instead of adding them to the flowing set.
func (lw *lockWalker) walkExpr(e ast.Expr, held []LockID, tries *[]LockID) []LockID {
	switch e := e.(type) {
	case *ast.CallExpr:
		held = lw.walkExpr(e.Fun, held, nil)
		for _, arg := range e.Args {
			held = lw.walkExpr(arg, held, nil)
		}
		if lit, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			// Immediately-invoked literal: runs here, under the held set.
			return lw.walkBlock(lit.Body, held)
		}
		return lw.walkCall(e, held, tries)
	case *ast.FuncLit:
		// A literal not invoked here runs at an unknown time: walk with an
		// empty held set so its acquisitions still register.
		lw.walkBlock(e.Body, nil)
		return held
	case *ast.ParenExpr:
		return lw.walkExpr(e.X, held, tries)
	case *ast.UnaryExpr:
		return lw.walkExpr(e.X, held, tries)
	case *ast.BinaryExpr:
		held = lw.walkExpr(e.X, held, tries)
		return lw.walkExpr(e.Y, held, tries)
	case *ast.SelectorExpr:
		return lw.walkExpr(e.X, held, nil)
	case *ast.IndexExpr:
		held = lw.walkExpr(e.X, held, nil)
		return lw.walkExpr(e.Index, held, nil)
	case *ast.SliceExpr:
		held = lw.walkExpr(e.X, held, nil)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				held = lw.walkExpr(idx, held, nil)
			}
		}
		return held
	case *ast.StarExpr:
		return lw.walkExpr(e.X, held, nil)
	case *ast.TypeAssertExpr:
		return lw.walkExpr(e.X, held, nil)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			held = lw.walkExpr(el, held, nil)
		}
		return held
	case *ast.KeyValueExpr:
		held = lw.walkExpr(e.Key, held, nil)
		return lw.walkExpr(e.Value, held, nil)
	}
	return held
}

// walkCall handles one (non-literal) call expression: lock operations
// mutate the held set, resolved calls record the held set for the
// interprocedural pass.
func (lw *lockWalker) walkCall(call *ast.CallExpr, held []LockID, tries *[]LockID) []LockID {
	if id, op, ok := lw.lockOp(call); ok {
		switch op {
		case "Lock", "RLock":
			acq := LockAcq{Pos: call.Pos(), Lock: id, Held: heldClone(held), Read: op == "RLock"}
			lw.info.Acqs = append(lw.info.Acqs, acq)
			return heldAdd(held, id)
		case "TryLock", "TryRLock":
			acq := LockAcq{Pos: call.Pos(), Lock: id, Held: heldClone(held), Try: true, Read: op == "TryRLock"}
			lw.info.Acqs = append(lw.info.Acqs, acq)
			if tries != nil {
				*tries = append(*tries, id)
				return held
			}
			return heldAdd(held, id)
		case "Unlock", "RUnlock":
			return heldRemove(held, id)
		}
		return held
	}
	for _, callee := range lw.callees[call] {
		lw.info.calls = append(lw.info.calls, lockCall{pos: call.Pos(), callee: callee, held: heldClone(held)})
	}
	return held
}

// lockOp reports whether call is a lock operation on a nameable sync.Mutex
// or sync.RWMutex, resolving the canonical LockID.
func (lw *lockWalker) lockOp(call *ast.CallExpr) (LockID, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	info := lw.src.Pkg.Info
	tv, ok := info.Types[sel.X]
	if !ok || !isSyncLockType(tv.Type) {
		return "", "", false
	}
	id, ok := canonicalLockID(info, sel.X)
	if !ok {
		return "", "", false
	}
	return id, op, true
}

func isSyncLockType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// canonicalLockID names the mutex expression: "pkgpath.OwnerType.field"
// for a struct-field selector (v.mu), "pkgpath.var" for a package-level
// variable. Anything else — a local mutex variable, a mutex returned from
// a call — has no global identity and reports !ok.
func canonicalLockID(info *types.Info, e ast.Expr) (LockID, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		// otherpkg.Mu: a qualified reference to another package's exported
		// mutex (package idents carry no type entry, so this comes first).
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return LockID(v.Pkg().Path() + "." + v.Name()), true
		}
		// v.mu: owner type (pointer-stripped) + field name.
		tv, ok := info.Types[e.X]
		if !ok {
			return "", false
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if _, isNamed := t.(*types.Named); !isNamed {
			return "", false
		}
		return LockID(types.TypeString(t, nil) + "." + e.Sel.Name), true
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return LockID(v.Pkg().Path() + "." + v.Name()), true
		}
	}
	return "", false
}

// SanctionedHotPathLocks is the reviewed list of owner-lock idioms a hot
// path may block on — short, leaf-ordered critical sections documented in
// DESIGN.md "Fleet scaling & hot-path concurrency". The hotpath analyzer
// exempts them from its no-blocking rule and lockorder's critical-path
// rule exempts them from the tenant-overlap ban.
var SanctionedHotPathLocks = map[LockID]bool{
	"androne/internal/mavproxy.VFC.mu":        true, // VFC serial endpoint
	"androne/internal/flight.Controller.mu":   true, // flight fast-loop owner lock
	"androne/internal/telemetry.Recorder.gmu": true, // global ring
	"androne/internal/telemetry.Recorder.rmu": true, // black-box archive
	"androne/internal/telemetry.stripe.mu":    true, // per-drone ring stripes
}

// tenantMemoKey is the Program memo key for the tenant-reachable closure.
const tenantMemoKey = "framework.tenant"

// TenantReachable computes (once, memoized) the set of functions reachable
// from tenant entry points — binder transaction handlers (functions
// assignable to the binder Handler func type) and portal HTTP handlers
// (func(http.ResponseWriter, *http.Request)) — mapped to the entry that
// reaches them, breadth-first in declaration order so the attribution is
// deterministic. Interface edges are followed with the usual fan-out
// bound; function values and reflection stay unresolved.
func (p *Program) TenantReachable() map[*types.Func]*types.Func {
	return p.Memo(tenantMemoKey, func() any { return computeTenantReachable(p) }).(map[*types.Func]*types.Func)
}

func computeTenantReachable(p *Program) map[*types.Func]*types.Func {
	g := p.CallGraph()
	handlerSig := binderHandlerSignature(p)
	reached := make(map[*types.Func]*types.Func)
	for _, src := range p.Funcs() {
		if !isTenantEntry(src.Fn, handlerSig) {
			continue
		}
		root := src.Fn
		queue := []*types.Func{root}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			if _, seen := reached[fn]; seen {
				continue
			}
			reached[fn] = root
			edges := g.CallsFrom(fn)
			fanOut := make(map[*ast.CallExpr]int)
			for _, e := range edges {
				if e.Interface {
					fanOut[e.Call]++
				}
			}
			for _, e := range edges {
				if e.Interface && fanOut[e.Call] > DefaultMaxInterfaceFanOut {
					continue
				}
				if callee := p.CanonicalSource(e.Callee); callee != nil {
					queue = append(queue, callee.Fn)
				}
			}
		}
	}
	return reached
}

// binderHandlerSignature finds the binder package's Handler func type in
// the Program, or nil (fixture worlds without a binder package).
func binderHandlerSignature(p *Program) *types.Signature {
	for _, pkg := range p.Packages {
		if !strings.HasSuffix(pkg.Path, "internal/binder") {
			continue
		}
		if tn, ok := pkg.Pkg.Scope().Lookup("Handler").(*types.TypeName); ok {
			if sig, ok := tn.Type().Underlying().(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// isTenantEntry reports whether fn is a tenant entry point: a binder
// transaction handler or an HTTP handler.
func isTenantEntry(fn *types.Func, handlerSig *types.Signature) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if handlerSig != nil && types.Identical(sig, handlerSig) {
		return true
	}
	return isHTTPHandlerSig(sig)
}

// isHTTPHandlerSig matches func(net/http.ResponseWriter, *net/http.Request).
func isHTTPHandlerSig(sig *types.Signature) bool {
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	isHTTP := func(t types.Type, name string) bool {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
	}
	return isHTTP(sig.Params().At(0).Type(), "ResponseWriter") &&
		isHTTP(sig.Params().At(1).Type(), "Request")
}
