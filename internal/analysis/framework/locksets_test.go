package framework_test

import (
	"go/token"
	"go/types"
	"sort"
	"testing"

	"androne/internal/analysis/framework"
)

// lockInfoOf fetches the lock summary for a package-scope function.
func lockInfoOf(t *testing.T, w *framework.LockWorld, pp *framework.ProgramPackage, name string) *framework.LockFuncInfo {
	t.Helper()
	fn, ok := pp.Pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no func %s in %s", name, pp.Path)
	}
	info := w.Info(fn)
	if info == nil {
		t.Fatalf("no lock info for %s", name)
	}
	return info
}

// acquires returns the sorted transitive acquire set of a function.
func acquires(info *framework.LockFuncInfo) []string {
	var out []string
	for id := range info.AcquiresTotal {
		out = append(out, string(id))
	}
	sort.Strings(out)
	return out
}

// heldAt returns the held set recorded at the i-th local acquisition of lock.
func heldAt(t *testing.T, info *framework.LockFuncInfo, lock string) []string {
	t.Helper()
	for _, a := range info.Acqs {
		if string(a.Lock) == lock {
			var out []string
			for _, h := range a.Held {
				out = append(out, string(h))
			}
			return out
		}
	}
	t.Fatalf("no acquisition of %s", lock)
	return nil
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const lockHarness = `package locks

import "sync"

type S struct {
	a  sync.Mutex
	b  sync.Mutex
	rw sync.RWMutex
}

var global sync.Mutex
`

// TestLockSetJoinAtMerge pins the may-hold union join: a lock taken on one
// branch of an if/switch is treated as held after the merge, and the held
// set recorded at a later acquisition includes every branch's locks.
func TestLockSetJoinAtMerge(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrcStd(t, fset, "locks", lockHarness+`
func ifJoin(s *S, cond bool) {
	if cond {
		s.a.Lock()
	} else {
		s.b.Lock()
	}
	global.Lock()
	global.Unlock()
}

func switchJoin(s *S, n int) {
	switch n {
	case 0:
		s.a.Lock()
	case 1:
		s.b.Lock()
	}
	global.Lock()
	global.Unlock()
}

func balanced(s *S, cond bool) {
	if cond {
		s.a.Lock()
		s.a.Unlock()
	}
	global.Lock()
	global.Unlock()
}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.LockSets()

	ifInfo := lockInfoOf(t, w, pp, "ifJoin")
	want := []string{"locks.S.a", "locks.S.b"}
	if got := heldAt(t, ifInfo, "locks.global"); !eqStrings(got, want) {
		t.Errorf("ifJoin held at global = %v, want %v", got, want)
	}
	swInfo := lockInfoOf(t, w, pp, "switchJoin")
	if got := heldAt(t, swInfo, "locks.global"); !eqStrings(got, want) {
		t.Errorf("switchJoin held at global = %v, want %v", got, want)
	}
	// A lock released on the branch that took it must not leak past the merge.
	balInfo := lockInfoOf(t, w, pp, "balanced")
	if got := heldAt(t, balInfo, "locks.global"); len(got) != 0 {
		t.Errorf("balanced held at global = %v, want empty", got)
	}
}

// TestLockSetDeferUnlock pins defer semantics: defer mu.Unlock() keeps the
// lock held for the remainder of the walk, so later acquisitions see it.
func TestLockSetDeferUnlock(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrcStd(t, fset, "locks", lockHarness+`
func deferred(s *S) {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	s.b.Unlock()
}

func eager(s *S) {
	s.a.Lock()
	s.a.Unlock()
	s.b.Lock()
	s.b.Unlock()
}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.LockSets()

	defInfo := lockInfoOf(t, w, pp, "deferred")
	if got := heldAt(t, defInfo, "locks.S.b"); !eqStrings(got, []string{"locks.S.a"}) {
		t.Errorf("deferred held at b = %v, want [locks.S.a]", got)
	}
	if e := w.Edge("locks.S.a", "locks.S.b"); e == nil {
		t.Error("missing edge locks.S.a -> locks.S.b from deferred")
	}
	eagInfo := lockInfoOf(t, w, pp, "eager")
	if got := heldAt(t, eagInfo, "locks.S.b"); len(got) != 0 {
		t.Errorf("eager held at b = %v, want empty", got)
	}
}

// TestLockSetTryLock pins try-acquisition semantics: a TryLock gets no
// incoming order edge (it cannot block), is held inside the guarded
// then-branch only for the if-condition form, and still contributes
// outgoing edges for locks taken under it.
func TestLockSetTryLock(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrcStd(t, fset, "locks", lockHarness+`
func try(s *S) {
	s.a.Lock()
	if s.b.TryLock() {
		global.Lock()
		global.Unlock()
		s.b.Unlock()
	}
	s.a.Unlock()
}

func after(s *S) {
	if s.b.TryLock() {
		s.b.Unlock()
	}
	global.Lock()
	global.Unlock()
}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.LockSets()

	// No incoming edge into the try-acquired lock...
	if e := w.Edge("locks.S.a", "locks.S.b"); e != nil {
		t.Errorf("unexpected edge into try-acquired lock: %+v", e)
	}
	// ...but outgoing edges from it are real.
	if e := w.Edge("locks.S.b", "locks.global"); e == nil {
		t.Error("missing outgoing edge locks.S.b -> locks.global")
	}
	info := lockInfoOf(t, w, pp, "try")
	if got := heldAt(t, info, "locks.global"); !eqStrings(got, []string{"locks.S.a", "locks.S.b"}) {
		t.Errorf("held at global = %v, want [locks.S.a locks.S.b]", got)
	}
	var tryAcq *framework.LockAcq
	for i, a := range info.Acqs {
		if a.Lock == "locks.S.b" {
			tryAcq = &info.Acqs[i]
		}
	}
	if tryAcq == nil || !tryAcq.Try {
		t.Fatalf("TryLock acquisition not marked Try: %+v", tryAcq)
	}
	// The try-held lock is confined to the then-branch.
	afterInfo := lockInfoOf(t, w, pp, "after")
	if got := heldAt(t, afterInfo, "locks.global"); len(got) != 0 {
		t.Errorf("after: held at global = %v, want empty (try confined to then-branch)", got)
	}
}

// TestLockSetInterprocedural pins the bottom-up fixpoint: calling a
// lock-taking callee while holding a lock yields a transitive order edge
// with the callee recorded as the via-function, and mutual recursion
// converges instead of diverging.
func TestLockSetInterprocedural(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrcStd(t, fset, "locks", lockHarness+`
func leaf(s *S) {
	s.b.Lock()
	s.b.Unlock()
}

func caller(s *S) {
	s.a.Lock()
	leaf(s)
	s.a.Unlock()
}

func ping(s *S, n int) {
	global.Lock()
	global.Unlock()
	if n > 0 {
		pong(s, n-1)
	}
}

func pong(s *S, n int) {
	s.a.Lock()
	s.a.Unlock()
	ping(s, n)
}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.LockSets()

	callerInfo := lockInfoOf(t, w, pp, "caller")
	if got := acquires(callerInfo); !eqStrings(got, []string{"locks.S.a", "locks.S.b"}) {
		t.Errorf("caller acquires %v, want [locks.S.a locks.S.b]", got)
	}
	e := w.Edge("locks.S.a", "locks.S.b")
	if e == nil {
		t.Fatal("missing transitive edge locks.S.a -> locks.S.b")
	}
	if e.Via == nil || e.Via.Name() != "leaf" {
		t.Errorf("edge via = %v, want leaf", e.Via)
	}
	if e.AcqFn == nil || e.AcqFn.Name() != "leaf" {
		t.Errorf("edge acq fn = %v, want leaf", e.AcqFn)
	}

	// Recursion cutoff: ping and pong each end with both locks, finitely.
	for _, name := range []string{"ping", "pong"} {
		info := lockInfoOf(t, w, pp, name)
		if got := acquires(info); !eqStrings(got, []string{"locks.S.a", "locks.global"}) {
			t.Errorf("%s acquires %v, want [locks.S.a locks.global]", name, got)
		}
	}
}

// TestLockSetGoroutineAndLiterals pins the concurrency boundaries: a go
// statement's body runs with an empty held set (no false edge from the
// spawner's locks), while an immediately-invoked literal inherits the
// current held set.
func TestLockSetGoroutineAndLiterals(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrcStd(t, fset, "locks", lockHarness+`
func spawner(s *S) {
	s.a.Lock()
	go func() {
		s.b.Lock()
		s.b.Unlock()
	}()
	s.a.Unlock()
}

func iife(s *S) {
	s.a.Lock()
	func() {
		global.Lock()
		global.Unlock()
	}()
	s.a.Unlock()
}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.LockSets()

	if e := w.Edge("locks.S.a", "locks.S.b"); e != nil {
		t.Errorf("go body must not inherit spawner's held set, got edge %+v", e)
	}
	if e := w.Edge("locks.S.a", "locks.global"); e == nil {
		t.Error("immediately-invoked literal must inherit held set: missing edge locks.S.a -> locks.global")
	}
}

// TestLockRankDirectives pins //vet:lockrank parsing: good declarations
// land in Ranks, malformed and conflicting ones in BadRankDirectives.
func TestLockRankDirectives(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrcStd(t, fset, "locks", lockHarness+`
//vet:lockrank 10 locks.S.a outer lock
//vet:lockrank 20 locks.S.b inner lock
//vet:lockrank 20 locks.S.b restated identically - fine
//vet:lockrank 30 locks.S.b conflicting rank
//vet:lockrank oops locks.global bad rank
//vet:lockrank 40
func ranked() {}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.LockSets()

	if r, ok := w.Ranks["locks.S.a"]; !ok || r.Rank != 10 {
		t.Errorf("rank of locks.S.a = %+v, want 10", r)
	}
	if r, ok := w.Ranks["locks.S.b"]; !ok || r.Rank != 20 {
		t.Errorf("rank of locks.S.b = %+v, want 20 (first declaration wins)", r)
	}
	if len(w.BadRankDirectives) != 3 {
		t.Errorf("BadRankDirectives = %d, want 3 (conflict, bad rank, missing lock)", len(w.BadRankDirectives))
	}
}

// TestLockSetUnnamedLocks pins the naming boundary: local mutex variables
// have no canonical identity and must not register acquisitions.
func TestLockSetUnnamedLocks(t *testing.T) {
	fset := token.NewFileSet()
	pp := loadSrcStd(t, fset, "locks", lockHarness+`
func local() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}
`)
	prog := framework.NewProgram(fset, []*framework.ProgramPackage{pp})
	w := prog.LockSets()
	info := lockInfoOf(t, w, pp, "local")
	if len(info.Acqs) != 0 {
		t.Errorf("local mutex registered %d acquisitions, want 0", len(info.Acqs))
	}
}
