// Package detbad exercises the detguard analyzer: every nondeterministic
// effect class on an annotated deterministic path (directly and
// transitively), interface implementers behind a seam (followed, unlike
// hotpath), the //vet:summary override in both directions, the laundered
// range-then-sort idiom (accepted), and the reviewed //vet:allow path.
package detbad

import (
	"math/rand"
	"runtime"
	"sort"
	"time"
)

//vet:detpath fixture trace-rendering path
func render(m map[string]int, ch chan int) int {
	total := 0
	for _, v := range m { // want `nondeterminism on deterministic path from render: range over map\[string\]int`
		total += v
	}
	total += stamp()
	total += workers()
	total += draw()
	select { // want `nondeterminism on deterministic path from render: select with 2 cases`
	case v := <-ch:
		total += v
	default:
	}
	return total
}

// stamp is convicted transitively: it is only on the path because render
// calls it.
func stamp() int {
	return time.Now().Nanosecond() // want `nondeterminism on deterministic path from render: call to time.Now`
}

func workers() int {
	return runtime.NumCPU() // want `nondeterminism on deterministic path from render: call to runtime.NumCPU`
}

func draw() int {
	return rand.Intn(6) // want `nondeterminism on deterministic path from render: call to math/rand.Intn`
}

// Source is a seam detguard crosses: a trace renders identically only if
// every implementer is deterministic.
type Source interface{ Value() int }

// Clock hides a wall-clock read behind the interface.
type Clock struct{}

func (Clock) Value() int {
	return time.Now().Nanosecond() // want `nondeterminism on deterministic path from pull: call to time.Now`
}

//vet:detpath fixture root: interface implementers are followed
func pull(s Source) int { return s.Value() }

// sortedKeys is the repo's standard laundering idiom: the map range feeds
// a sort, so iteration order never reaches the output.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

//vet:detpath fixture root: laundered ranges are deterministic
func renderSorted(m map[string]int) []string { return sortedKeys(m) }

// trusted's computed summary would say ReadsClock, but the override is
// trusted and the analyzer does not descend.
//
//vet:summary effects=none reads a cached, tick-frozen time
func trusted() int { return time.Now().Nanosecond() }

// confessed declares the nondeterminism it hides, so the declaration is
// convicted — an override cannot launder a real effect.
//
//vet:summary effects=ReadsGlobalRand draws jitter from the global source
func confessed() int { return 0 } // want `nondeterminism on deterministic path from uses: //vet:summary declares ReadsGlobalRand`

//vet:detpath fixture root: overrides in both directions
func uses() int { return trusted() + confessed() }

//vet:detpath fixture root: reviewed exceptions stay suppressed
func sampled() int {
	return time.Now().Nanosecond() //vet:allow detguard 1-in-64 latency sample feeds a histogram, never a trace
}

// offPath is not reachable from any root: wall-clock reads are fine here.
func offPath() int { return time.Now().Nanosecond() }
