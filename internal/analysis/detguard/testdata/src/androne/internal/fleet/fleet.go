// Package fleet is a fixture standing in for the real fleet runner: the
// detguard roots mirror the production //vet:detpath annotations (the
// per-drone run and the result hasher) and exercise the clean idioms the
// analyzer must accept — range-then-sort key collection and caller-seeded
// *rand.Rand draws.
package fleet

import (
	"math/rand"
	"sort"
)

// Result is one drone's run outcome.
type Result struct {
	Name   string
	Events map[string]int
}

// hashResult folds a result into a replay-stable digest: map keys are
// sorted before iteration and the jitter source is caller-seeded, so the
// path is deterministic end to end.
//
//vet:detpath per-drone digests must be bit-identical at any worker count
func hashResult(res Result, r *rand.Rand) uint64 {
	keys := make([]string, 0, len(res.Events))
	for k := range res.Events {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var h uint64 = 1469598103934665603
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h = (h ^ uint64(k[i])) * 1099511628211
		}
		h = (h ^ uint64(res.Events[k])) * 1099511628211
	}
	h ^= uint64(r.Intn(1)) // seeded draw: deterministic under the run seed
	return h
}

// runOne drives one drone and hashes its trace.
//
//vet:detpath one drone's run must replay identically
func runOne(name string, seed int64) uint64 {
	r := rand.New(rand.NewSource(seed))
	res := Result{Name: name, Events: map[string]int{"tick": int(seed)}}
	return hashResult(res, r)
}
