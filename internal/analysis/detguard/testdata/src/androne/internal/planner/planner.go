// Package planner is a fixture standing in for the real flight planner:
// the detguard root mirrors the production //vet:detpath annotation on
// Plan/annealRestarts and exercises the clean idioms the analyzer must
// accept — a bounded worker pool that writes results into an indexed
// slice (no ordering dependence on goroutine interleaving) and first-seen
// slice collection instead of ranging a map.
package planner

import "sync"

// restart is one annealing chain's outcome.
type restart struct {
	cost int64
	next []int32
}

// plan fans restarts across a worker pool and picks the winner by
// (cost, index): results land in a slice indexed by restart, so the
// outcome is independent of which worker ran which chain.
//
//vet:detpath plans must be bit-identical across runs and worker counts
func plan(seeds []int64, workers int) []int32 {
	results := make([]restart, len(seeds))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = chain(seeds[i])
			}
		}()
	}
	for i := range seeds {
		idx <- i
	}
	close(idx)
	wg.Wait()
	best := 0
	for i := 1; i < len(results); i++ {
		if results[i].cost < results[best].cost {
			best = i
		}
	}
	return repair(results[best].next)
}

// chain is one deterministic annealing chain (seeded arithmetic only).
func chain(seed int64) restart {
	state := uint64(seed)
	next := make([]int32, 8)
	for i := range next {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		next[i] = int32(state % 8)
	}
	return restart{cost: int64(state % 1000), next: next}
}

// repair reorders stops per task in first-seen order: tasks are collected
// into a slice as they appear, not by ranging a map, so the output order
// is a pure function of the input.
func repair(next []int32) []int32 {
	seen := make(map[int32]bool, len(next))
	var order []int32
	for _, t := range next {
		if !seen[t] {
			seen[t] = true
			order = append(order, t)
		}
	}
	out := make([]int32, 0, len(next))
	for _, t := range order {
		for _, u := range next {
			if u == t {
				out = append(out, u)
			}
		}
	}
	return out
}
