package detguard_test

import (
	"testing"

	"androne/internal/analysis/analysistest"
	"androne/internal/analysis/detguard"
)

// TestDetGuard covers both directions: the clean fleet fixture (sorted map
// ranges, caller-seeded rand) must stay silent, and every sabotaged site in
// detbad must be convicted (an unmatched want fails the test, so this
// doubles as the sabotage smoke assertion CI runs).
func TestDetGuard(t *testing.T) {
	analysistest.Run(t, "testdata", detguard.Analyzer,
		"androne/internal/fleet",
		"androne/internal/planner",
		"detbad",
	)
}
