// Package detguard statically enforces the determinism contract on the
// call paths that feed trace rendering, result hashing, and violation
// reporting. PR 5 made the contract load-bearing — the same fleet run
// serially and across a worker pool must yield bit-identical per-drone
// trace hashes — but until now only the replay tests enforced it. Functions
// annotated with a
//
//	//vet:detpath <reason>
//
// doc-comment directive are determinism roots (the fleet's per-drone run
// and hash functions, the scenario runner, the flight-recorder dump and
// decode paths): the root and everything it transitively calls must be
// free of nondeterministic effects — map iteration whose order reaches
// output, wall-clock reads, draws from math/rand's global source,
// scheduler-state reads (runtime.NumCPU, GOMAXPROCS), and multi-case
// selects whose winner is scheduler-dependent.
//
// Unlike hotpath, detguard follows interface call edges: a trace renders
// identically only if every implementer behind the seam is deterministic.
// Allocation and blocking are fine here — dumps are cold paths.
//
// The engine's range-then-sort laundering rule keeps the repo's standard
// idiom (collect map keys, sort, iterate) clean without annotations.
// Reviewed exceptions — a 1-in-N latency sample whose wall-clock read feeds
// a histogram, never a trace — carry //vet:allow detguard with a reason;
// false summaries are corrected with //vet:summary, whose declared bitset
// is still enforced so an override cannot launder real nondeterminism.
package detguard

import (
	"go/types"

	"androne/internal/analysis/framework"
)

// Analyzer is the detguard analyzer.
var Analyzer = &framework.Analyzer{
	Name: "detguard",
	Doc: "//vet:detpath-annotated functions and everything they transitively " +
		"call (interface implementers included) must be free of " +
		"nondeterministic effects: unordered map ranges, wall-clock reads, " +
		"global math/rand, scheduler-state reads, multi-case selects",
	Run: run,
}

// RootDirective marks a determinism contract root in a function's doc
// comment.
const RootDirective = "//vet:detpath"

// forbidden is the effect mask detguard convicts.
const forbidden = framework.EffRangesMap |
	framework.EffReadsClock |
	framework.EffReadsGlobalRand |
	framework.EffReadsSchedulerState |
	framework.EffSelectsUnordered

// closure computes, once per Program, the deterministic closure: every
// function reachable from a //vet:detpath root over static AND interface
// edges, mapped to the first root that reaches it.
func closure(prog *framework.Program) map[*types.Func]*types.Func {
	return prog.Memo("detguard.closure", func() any {
		return framework.EffectClosure(prog, RootDirective, true)
	}).(map[*types.Func]*types.Func)
}

func run(pass *framework.Pass) error {
	prog := pass.Program
	if prog == nil {
		return nil
	}
	world := prog.Effects()
	reached := closure(prog)

	for _, src := range prog.Funcs() {
		if src.Pkg.Pkg != pass.Pkg {
			continue
		}
		root, ok := reached[src.Fn]
		if !ok {
			continue
		}
		s := world.Summary(src.Fn)
		if s == nil {
			continue
		}
		from := framework.FuncLabel(root)
		if s.Overridden {
			if declared := s.Total & forbidden; declared != 0 {
				pass.Reportf(src.Decl.Pos(),
					"nondeterminism on deterministic path from %s: //vet:summary declares %s",
					from, declared)
			}
			continue
		}
		for _, site := range s.Sites {
			if site.Effect&forbidden == 0 {
				continue
			}
			pass.Reportf(site.Pos, "nondeterminism on deterministic path from %s: %s", from, site.Detail)
		}
	}
	return nil
}
