// Package whitelistguard enforces the VFC command-whitelist boundary from
// the AnDrone paper (§4.3): a tenant's virtual drone may only reach the
// flight controller through its virtual flight controller, which checks
// every MAVLink message against the rental's whitelist template and
// geofence before forwarding. The raw dispatch entry point —
// (*flight.Controller).HandleMessage — is therefore restricted to exactly
// two call sites:
//
//	(*mavproxy.Master).Send — the provider's unrestricted master channel
//	(*mavproxy.VFC).Send    — after the whitelist + geofence checks
//
// The unrestricted master handle itself, (*mavproxy.Proxy).Master, is
// provider plumbing and restricted to internal/core (mission execution).
//
// Checks:
//   - any call to flight.Controller.HandleMessage outside those two
//     methods of internal/mavproxy;
//   - HandleMessage used as a method value anywhere (a bound method value
//     escapes the whitelist boundary and can be invoked later unchecked);
//   - Proxy.Master called outside internal/core and internal/mavproxy.
package whitelistguard

import (
	"go/ast"
	"go/types"
	"strings"

	"androne/internal/analysis/framework"
)

// Analyzer is the whitelistguard analyzer.
var Analyzer = &framework.Analyzer{
	Name: "whitelistguard",
	Doc: "restrict MAVLink dispatch into the flight controller to the " +
		"whitelist-checked VFC path and the provider master channel",
	Run: run,
}

const (
	flightPath   = "androne/internal/flight"
	mavproxyPath = "androne/internal/mavproxy"
)

// masterAllowed are packages permitted to obtain the unrestricted master
// channel: the VDC/flight planner, the proxy itself, and the scenario
// harness, which plays the cloud flight planner's trusted role (takeoff,
// transit routing, deterministic fault injection).
var masterAllowed = []string{"androne/internal/core", mavproxyPath, "androne/internal/simharness"}

func run(pass *framework.Pass) error {
	pkgPath := pass.Pkg.Path()
	if strings.HasSuffix(pkgPath, flightPath) {
		return nil // the controller may call its own dispatch internals
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			switch {
			case isMethod(fn, flightPath, "Controller", "HandleMessage"):
				checkDispatch(pass, file, sel, pkgPath)
			case isMethod(fn, mavproxyPath, "Proxy", "Master"):
				if !pkgAllowed(pkgPath, masterAllowed) {
					pass.Reportf(sel.Pos(),
						"Proxy.Master hands out the unrestricted MAVLink channel and is reserved for %s; tenant traffic goes through a VFC",
						strings.Join(masterAllowed, ", "))
				}
			}
			return true
		})
	}
	return nil
}

// checkDispatch validates one reference to Controller.HandleMessage.
func checkDispatch(pass *framework.Pass, file *ast.File, sel *ast.SelectorExpr, pkgPath string) {
	if !isCalled(file, sel) {
		pass.Reportf(sel.Pos(),
			"flight.Controller.HandleMessage captured as a method value escapes the VFC whitelist boundary; call it only inside the checked Send paths")
		return
	}
	if !strings.HasSuffix(pkgPath, mavproxyPath) {
		pass.Reportf(sel.Pos(),
			"flight.Controller.HandleMessage bypasses the VFC whitelist; send through (*mavproxy.VFC).Send or the provider's Master channel")
		return
	}
	fd := pass.EnclosingFunc(sel.Pos())
	if fd == nil || fd.Name.Name != "Send" {
		pass.Reportf(sel.Pos(),
			"within mavproxy, flight.Controller.HandleMessage may only be invoked from the Send methods that enforce the whitelist, not %s",
			funcName(fd))
		return
	}
	if recv := framework.ReceiverTypeName(fd); recv != "Master" && recv != "VFC" {
		pass.Reportf(sel.Pos(),
			"flight.Controller.HandleMessage may only be dispatched from (*Master).Send or (*VFC).Send, not (%s).Send", recv)
	}
}

// isCalled reports whether sel appears as the callee of a call expression
// (as opposed to a bound method value).
func isCalled(file *ast.File, sel *ast.SelectorExpr) bool {
	called := false
	ast.Inspect(file, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			called = true
		}
		return !called
	})
	return called
}

// isMethod reports whether fn is the named method on the named receiver
// base type declared in a package whose import path has the given suffix.
func isMethod(fn *types.Func, pkgSuffix, recvType, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), pkgSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recvType
}

func funcName(fd *ast.FuncDecl) string {
	if fd == nil {
		return "package scope"
	}
	return fd.Name.Name
}

func pkgAllowed(pkgPath string, allowed []string) bool {
	for _, a := range allowed {
		if strings.HasSuffix(pkgPath, a) {
			return true
		}
	}
	return false
}
