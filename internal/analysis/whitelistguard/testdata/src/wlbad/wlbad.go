// Package wlbad is the known-bad fixture: tenant-side code reaching the
// flight controller without the whitelist check.
package wlbad

import (
	"androne/internal/flight"
	"androne/internal/mavproxy"
)

// Direct dispatch from outside mavproxy bypasses the whitelist.
func Direct(fc *flight.Controller, msg flight.Message) []flight.Message {
	return fc.HandleMessage(msg) // want `bypasses the VFC whitelist`
}

// Captured method values escape the boundary: the value can be invoked
// later from anywhere with no check.
func Capture(fc *flight.Controller) func(flight.Message) []flight.Message {
	h := fc.HandleMessage // want `captured as a method value escapes the VFC whitelist boundary`
	return h
}

// Tenants may not take the master channel.
func TakeMaster(p *mavproxy.Proxy) *mavproxy.Master {
	return p.Master() // want `Proxy\.Master hands out the unrestricted MAVLink channel`
}

// Suppressed demonstrates a reviewed exception.
func Suppressed(fc *flight.Controller, msg flight.Message) {
	fc.HandleMessage(msg) //vet:allow whitelistguard fixture: documented exception
}
