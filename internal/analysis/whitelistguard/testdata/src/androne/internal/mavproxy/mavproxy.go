// Package mavproxy is a fixture with the two legal dispatch sites and two
// illegal ones inside the proxy package itself.
package mavproxy

import "androne/internal/flight"

// Proxy owns the flight controller connection.
type Proxy struct {
	fc *flight.Controller
}

// Master returns the provider's unrestricted channel.
func (p *Proxy) Master() *Master { return &Master{fc: p.fc} }

// Master is the unrestricted master channel.
type Master struct {
	fc *flight.Controller
}

// Send forwards without filtering: the master channel is the provider's.
func (m *Master) Send(msg flight.Message) []flight.Message {
	return m.fc.HandleMessage(msg)
}

// VFC is a tenant's whitelist-enforcing virtual flight controller.
type VFC struct {
	proxy *Proxy
}

// Send is the whitelist-checked dispatch path.
func (v *VFC) Send(msg flight.Message) []flight.Message {
	return v.proxy.fc.HandleMessage(msg)
}

// Telemetry must not dispatch commands, even from inside mavproxy.
func (v *VFC) Telemetry(msg flight.Message) []flight.Message {
	return v.proxy.fc.HandleMessage(msg) // want `may only be invoked from the Send methods that enforce the whitelist, not Telemetry`
}

// Rogue has a Send method but is not one of the two sanctioned senders.
type Rogue struct {
	fc *flight.Controller
}

// Send dispatches from the wrong receiver type.
func (r *Rogue) Send(msg flight.Message) []flight.Message {
	return r.fc.HandleMessage(msg) // want `only be dispatched from \(\*Master\)\.Send or \(\*VFC\)\.Send, not \(Rogue\)\.Send`
}
