// Package flight is a fixture standing in for the flight controller; the
// whitelistguard analyzer resolves its methods by import-path suffix and
// receiver type name.
package flight

// Message is a MAVLink message.
type Message interface {
	ID() uint8
}

// Controller is the flight controller.
type Controller struct{}

// HandleMessage is the raw MAVLink dispatch entry point.
func (c *Controller) HandleMessage(m Message) []Message { return nil }
