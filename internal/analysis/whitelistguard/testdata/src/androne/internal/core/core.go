// Package core is the known-good fixture for the master channel: mission
// execution is provider code and may take the unrestricted handle.
package core

import "androne/internal/mavproxy"

// Fly drives the drone over the master channel.
func Fly(p *mavproxy.Proxy, msg ...interface{}) {
	m := p.Master()
	_ = m
}
