package whitelistguard_test

import (
	"testing"

	"androne/internal/analysis/analysistest"
	"androne/internal/analysis/whitelistguard"
)

func TestWhitelistGuard(t *testing.T) {
	analysistest.Run(t, "testdata", whitelistguard.Analyzer,
		"androne/internal/flight", // the controller itself: exempt
		"androne/internal/mavproxy",
		"androne/internal/core",
		"wlbad",
	)
}
