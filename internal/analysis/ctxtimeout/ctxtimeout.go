// Package ctxtimeout flags unbounded blocking in AnDrone's service plane —
// the packages that face the network or spawn workers (internal/cloud,
// internal/gcs, internal/service, and the cmd/ entry points). A virtual
// drone service sells flight time by the minute; a handler wedged on a
// dead peer or a goroutine with no cancellation path holds real drone
// resources hostage. Every blocking network call must carry a deadline and
// every spawned goroutine must have a way to be told to stop.
//
// Checks:
//   - http.ListenAndServe / ListenAndServeTLS: no server timeouts at all
//     (Slowloris-trivial); construct an http.Server with ReadHeaderTimeout.
//   - http.Server composite literals without ReadHeaderTimeout or
//     ReadTimeout.
//   - http.Client composite literals without Timeout: such a client blocks
//     forever on a dead peer (the androne-load client pool is the shape
//     this guards).
//   - http.Get / Post / PostForm / Head: http.DefaultClient has no timeout.
//   - net.Dial: no deadline; use net.DialTimeout or a net.Dialer (ideally
//     DialContext).
//   - go statements launching a function literal with no coordination
//     mechanism — no context.Context reference, no select, and no channel
//     operation — meaning nothing can ever stop or observe it.
package ctxtimeout

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"androne/internal/analysis/framework"
)

// Analyzer is the ctxtimeout analyzer.
var Analyzer = &framework.Analyzer{
	Name: "ctxtimeout",
	Doc: "require deadlines on blocking network calls and cancellation " +
		"paths on goroutines in the service plane",
	Run: run,
}

// scoped returns whether pkgPath is in the analyzer's jurisdiction. The
// service plane owns network entry points; flight-side packages have their
// own timing discipline (the 400 Hz loop) and are out of scope. The
// telemetry plane is in scope because its background flusher is the one
// long-lived goroutine outside the service plane: an uncancellable flusher
// would pin a drone's recorder forever.
func scoped(pkgPath string) bool {
	for _, s := range []string{
		"androne/internal/cloud",
		"androne/internal/gcs",
		"androne/internal/loadgen",
		"androne/internal/service",
		"androne/internal/telemetry",
		"androne/cmd/",
	} {
		if strings.Contains(pkgPath, s) || strings.HasSuffix(pkgPath, strings.TrimSuffix(s, "/")) {
			return true
		}
	}
	return false
}

// bannedCalls maps stdlib package path -> function name -> advice.
var bannedCalls = map[string]map[string]string{
	"net/http": {
		"ListenAndServe":    "serves with no timeouts (trivially wedged by slow clients); build an http.Server with ReadHeaderTimeout set and call its ListenAndServe",
		"ListenAndServeTLS": "serves with no timeouts (trivially wedged by slow clients); build an http.Server with ReadHeaderTimeout set and call its ListenAndServeTLS",
		"Get":               "uses http.DefaultClient, which has no timeout; use a Client with Timeout or NewRequestWithContext",
		"Post":              "uses http.DefaultClient, which has no timeout; use a Client with Timeout or NewRequestWithContext",
		"PostForm":          "uses http.DefaultClient, which has no timeout; use a Client with Timeout or NewRequestWithContext",
		"Head":              "uses http.DefaultClient, which has no timeout; use a Client with Timeout or NewRequestWithContext",
	},
	"net": {
		"Dial": "blocks with no deadline; use net.DialTimeout or a net.Dialer with DialContext",
	},
}

func run(pass *framework.Pass) error {
	if !scoped(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.CompositeLit:
				checkServerLit(pass, n)
				checkClientLit(pass, n)
			case *ast.GoStmt:
				checkGo(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if byName, ok := bannedCalls[fn.Pkg().Path()]; ok {
		// Package-level functions only; methods like (*http.Server).ListenAndServe
		// are the recommended replacement, not a violation.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			if advice, ok := byName[fn.Name()]; ok {
				pass.Reportf(call.Pos(), "%s.%s %s", fn.Pkg().Name(), fn.Name(), advice)
			}
		}
	}
}

// checkServerLit flags http.Server literals configured without read
// timeouts.
func checkServerLit(pass *framework.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !isHTTPServer(tv.Type) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok &&
			(key.Name == "ReadHeaderTimeout" || key.Name == "ReadTimeout") {
			return
		}
	}
	pass.Reportf(lit.Pos(), "http.Server without ReadHeaderTimeout or ReadTimeout never times out slow clients; set ReadHeaderTimeout")
}

// checkClientLit flags http.Client literals constructed without a Timeout:
// every client in the service plane (including the load harness's client
// pool) must bound its requests, or a dead peer wedges the caller forever.
func checkClientLit(pass *framework.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !isHTTPType(tv.Type, "Client") {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Timeout" {
			return
		}
	}
	pass.Reportf(lit.Pos(), "http.Client without Timeout blocks forever on a dead peer; set Timeout (or use NewRequestWithContext per call)")
}

func isHTTPServer(t types.Type) bool { return isHTTPType(t, "Server") }

func isHTTPType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// checkGo requires a spawned function literal to carry some coordination
// mechanism: a context.Context reference, a select statement, or any
// channel operation (send, receive, close, range). A goroutine with none of
// these can neither be stopped nor observed.
func checkGo(pass *framework.Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return // named function: its body is checked where it is defined
	}
	if hasCoordination(pass, lit) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine has no cancellation or completion path (no context, select, or channel operation); it can outlive its work and leak")
}

func hasCoordination(pass *framework.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && isContext(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
