package ctxtimeout_test

import (
	"testing"

	"androne/internal/analysis/analysistest"
	"androne/internal/analysis/ctxtimeout"
)

func TestCtxTimeout(t *testing.T) {
	analysistest.Run(t, "testdata", ctxtimeout.Analyzer,
		"androne/internal/cloud",
		"androne/internal/telemetry",
		"unscoped",
	)
}
