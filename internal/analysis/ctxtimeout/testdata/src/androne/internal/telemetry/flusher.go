// Package telemetry is a fixture stub at the real import path so
// ctxtimeout's jurisdiction applies: the flight recorder's background
// flusher is a long-lived goroutine and must carry a cancellation path.
package telemetry

import "time"

// StartFlusher mirrors the production flusher: ticker with deferred Stop,
// a done channel selected alongside the tick — compliant, no findings.
func StartFlusher(interval time.Duration, flush func()) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				flush()
			}
		}
	}()
	return func() { close(done) }
}

// startSpinner is the anti-pattern: a flusher loop nothing can ever stop.
func startSpinner(flush func()) {
	go func() { // want `goroutine has no cancellation or completion path`
		for {
			flush()
			time.Sleep(time.Millisecond)
		}
	}()
}
