package cloud

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Good shows the sanctioned counterparts: deadlines on every blocking call
// and a coordination mechanism in every goroutine.
func Good(ctx context.Context, addr string) {
	srv := &http.Server{Addr: addr, ReadHeaderTimeout: 5 * time.Second}
	_ = srv.ListenAndServe() // method on a configured Server: fine

	_, _ = net.DialTimeout("tcp", addr, time.Second)
	var d net.Dialer
	_, _ = d.DialContext(ctx, "tcp", addr)

	client := &http.Client{Timeout: 30 * time.Second}
	_ = client

	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done

	go func() {
		select {
		case <-ctx.Done():
		case <-time.After(time.Minute):
		}
	}()

	results := make(chan int, 1)
	go func() {
		results <- 1
	}()
}
