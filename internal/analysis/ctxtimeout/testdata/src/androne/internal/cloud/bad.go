// Package cloud is a fixture at a service-plane import path, so the
// ctxtimeout analyzer has jurisdiction.
package cloud

import (
	"net"
	"net/http"
)

// Bad gathers every unbounded-blocking shape the analyzer flags.
func Bad(addr string) {
	_ = http.ListenAndServe(addr, nil)    // want `http\.ListenAndServe serves with no timeouts`
	_, _ = http.Get("http://example.com") // want `http\.Get uses http\.DefaultClient, which has no timeout`
	_, _ = net.Dial("tcp", addr)          // want `net\.Dial blocks with no deadline`

	srv := &http.Server{Addr: addr} // want `http\.Server without ReadHeaderTimeout or ReadTimeout`
	_ = srv

	c := &http.Client{} // want `http\.Client without Timeout`
	_ = c
	c2 := http.Client{Transport: http.DefaultTransport} // want `http\.Client without Timeout`
	_ = c2

	go func() { // want `goroutine has no cancellation or completion path`
		for {
			work()
		}
	}()
}

// Suppressed demonstrates a reviewed exception.
func Suppressed(addr string) {
	_, _ = net.Dial("tcp", addr) //vet:allow ctxtimeout fixture: documented exception
}

func work() {}
