// Package unscoped sits outside the service plane; ctxtimeout must stay
// silent here even for patterns it would flag in scope.
package unscoped

import "net/http"

// Serve would be flagged inside internal/cloud, internal/gcs,
// internal/service, or cmd/.
func Serve(addr string) {
	_ = http.ListenAndServe(addr, nil)
}
