// Package analysistest runs an analyzer over small fixture packages and
// checks its diagnostics against expectations written in the fixtures —
// the same convention as golang.org/x/tools/go/analysis/analysistest:
//
//	testdata/src/<pkgpath>/*.go
//
// where a line expecting diagnostics carries a comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// Every reported diagnostic must match a want on its line and every want
// must be matched, or the test fails. Fixture packages may import each
// other (by their path under testdata/src) and the standard library; the
// androne guard analyzers use fixture packages placed at the real
// androne/... import paths so their path-based policies apply unchanged.
//
// The //vet:allow suppression filter runs exactly as in the androne-vet
// driver, so fixtures can also assert that suppressed lines stay silent.
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"androne/internal/analysis/framework"
	"androne/internal/analysis/load"
)

// Run applies analyzer to each fixture package (a path under
// testdata/src) and reports mismatches through t.
func Run(t *testing.T, testdata string, analyzer *framework.Analyzer, pkgPaths ...string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	ld := &loader{
		src:  src,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*fixturePkg),
	}
	ld.stdlib = importer.ForCompiler(ld.fset, "gc", stdlibLookup(t))

	// Load every target (and, transitively, every fixture import) first, so
	// the Program handed to each pass spans the whole fixture world — the
	// same shape the androne-vet driver gives interprocedural analyzers.
	var targets []*fixturePkg
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("analysistest: loading %s: %v", path, err)
			continue
		}
		targets = append(targets, pkg)
	}
	prog := ld.program()
	for _, pkg := range targets {
		check(t, ld.fset, analyzer, prog, pkg)
	}
}

// program assembles a framework.Program over every fixture package loaded
// so far, in deterministic path order.
func (l *loader) program() *framework.Program {
	paths := make([]string, 0, len(l.pkgs))
	for path, pkg := range l.pkgs {
		if pkg.err == nil {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	var pps []*framework.ProgramPackage
	for _, path := range paths {
		pkg := l.pkgs[path]
		pps = append(pps, &framework.ProgramPackage{
			Path:  path,
			Pkg:   pkg.types,
			Files: pkg.files,
			Info:  pkg.info,
		})
	}
	return framework.NewProgram(l.fset, pps)
}

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
	err   error
}

type loader struct {
	src    string
	fset   *token.FileSet
	stdlib types.Importer
	pkgs   map[string]*fixturePkg
}

// Import lets fixture packages import one another; anything not under
// testdata/src falls through to the compiled standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.src, path)); err == nil {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return l.stdlib.Import(path)
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, pkg.err
	}
	pkg := &fixturePkg{path: path}
	l.pkgs[path] = pkg // pre-insert to fail fast on import cycles

	dir := filepath.Join(l.src, path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err == nil && len(names) == 0 {
		err = fmt.Errorf("no .go files in %s", dir)
	}
	if err != nil {
		pkg.err = err
		return pkg, err
	}
	sort.Strings(names)
	for _, name := range names {
		f, perr := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if perr != nil {
			pkg.err = perr
			return pkg, perr
		}
		pkg.files = append(pkg.files, f)
	}
	pkg.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{Importer: l}
	pkg.types, pkg.err = cfg.Check(path, l.fset, pkg.files, pkg.info)
	return pkg, pkg.err
}

// stdlibLookup resolves standard-library export data through the go tool's
// build cache, which works without network or pre-installed .a files.
func stdlibLookup(t *testing.T) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		t.Helper()
		var out, stderr bytes.Buffer
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Stdout = &out
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
		}
		export := strings.TrimSpace(out.String())
		if export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(export)
	}
}

// expectation is one want regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func check(t *testing.T, fset *token.FileSet, analyzer *framework.Analyzer, prog *framework.Program, pkg *fixturePkg) {
	t.Helper()
	expectations := collectWants(t, fset, pkg.files)

	pass := &framework.Pass{
		Analyzer:  analyzer,
		Fset:      fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
		Program:   prog,
	}
	var findings []load.Finding
	pass.Report = func(d framework.Diagnostic) {
		findings = append(findings, load.Finding{
			Analyzer: analyzer.Name,
			Pos:      fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	if err := analyzer.Run(pass); err != nil {
		t.Errorf("%s: running on %s: %v", analyzer.Name, pkg.path, err)
		return
	}
	findings = load.Filter(findings)

	for _, f := range findings {
		if !claim(expectations, f) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s",
				analyzer.Name, f.Pos.Filename, f.Pos.Line, f.Message)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q",
				analyzer.Name, e.file, e.line, e.raw)
		}
	}
}

// collectWants parses the `// want "re" ...` comments of every file.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(m[1]) {
					pattern, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, raw, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
				}
			}
		}
	}
	return out
}

// splitQuoted extracts the double- or backtick-quoted segments of a want
// comment.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(s) {
				return out
			}
			out = append(out, s[i:j+1])
			i = j
		case '`':
			j := i + 1
			for j < len(s) && s[j] != '`' {
				j++
			}
			if j >= len(s) {
				return out
			}
			out = append(out, s[i:j+1])
			i = j
		}
	}
	return out
}

// claim marks the first unmatched expectation on the finding's line whose
// regexp matches.
func claim(expectations []*expectation, f load.Finding) bool {
	for _, e := range expectations {
		if !e.matched && e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}
