// Package waitleak convicts goroutines that can block forever — the
// liveness half of the concurrency contract, next to lockorder's deadlock
// half. A leaked goroutine on the cloud side is quota a tenant burned for
// free; on the flight side it is a stalled stop path. Three rules, all
// deliberately syntactic and local (the suite's usual posture — convict
// what can be proven from one function's body, document the rest):
//
//   - Channel with no counterparty: an unbuffered channel created in a
//     function that never escapes it (not passed, stored, returned, or
//     captured into anything but sends/receives/close) and is only ever
//     sent to — or only ever received from, with no close — blocks its
//     user forever. Each orphan operation is convicted. Buffered
//     channels and escaping channels are out of jurisdiction.
//
//   - Spawned goroutine with no way out: a `go func() { ... }` whose body
//     contains an unconditional `for` loop (or an empty `select{}`) with
//     no return, no break out of the loop, and no panic can never
//     terminate. The fix the finding names is the repo idiom: a stop
//     channel or context case in the loop's select that returns.
//
//   - WaitGroup misuse across branches: wg.Add inside the spawned
//     goroutine races with the parent's Wait (Wait may run before Add);
//     and a goroutine whose wg.Done sits only on some branches (inside an
//     if/switch/select/loop, or positioned after a possible early return)
//     under-counts on the paths that skip it, hanging Wait forever. The
//     guaranteed forms — top-level `defer wg.Done()`, or a top-level call
//     in a body with no early return — stay silent.
//
// Suppression is the usual reviewed //vet:allow waitleak on the line.
package waitleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"androne/internal/analysis/framework"
)

// Analyzer is the waitleak analyzer.
var Analyzer = &framework.Analyzer{
	Name: "waitleak",
	Doc: "convict goroutines that can block forever: channel operations " +
		"with no counterparty, spawned goroutines with no stop path, and " +
		"WaitGroup Add/Done mismatches across branches",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkChannels(pass, fd)
			checkGoroutines(pass, fd)
		}
	}
	return nil
}

// chanUse accumulates one local channel's uses across the function.
type chanUse struct {
	makePos  token.Pos
	name     string
	sends    []token.Pos
	receives []token.Pos
	closes   int
	escapes  bool
}

// checkChannels implements the no-counterparty rule for unbuffered
// channels local to fd.
func checkChannels(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	chans := make(map[*types.Var]*chanUse)

	// Pass 1: find `ch := make(chan T)` (and var forms) with no buffer or
	// a constant-zero buffer, binding a plain local identifier.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				registerChan(info, chans, n.Lhs[i], rhs)
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, val := range vs.Values {
							if i < len(vs.Names) {
								registerChan(info, chans, vs.Names[i], val)
							}
						}
					}
				}
			}
		}
		return true
	})
	if len(chans) == 0 {
		return
	}

	// Pass 2: classify every use of each tracked channel.
	classifyUses(pass, fd.Body, chans)

	// Verdicts, in source order of the tracked channels.
	for _, cu := range chans {
		if cu.escapes {
			continue
		}
		if len(cu.sends) > 0 && len(cu.receives) == 0 {
			for _, pos := range cu.sends {
				pass.Reportf(pos,
					"send on %s can block forever: the unbuffered channel (created at %s) never escapes %s and nothing in it receives",
					cu.name, shortPos(pass, cu.makePos), fd.Name.Name)
			}
		}
		if len(cu.receives) > 0 && len(cu.sends) == 0 && cu.closes == 0 {
			for _, pos := range cu.receives {
				pass.Reportf(pos,
					"receive from %s can block forever: the unbuffered channel (created at %s) never escapes %s and nothing in it sends or closes it",
					cu.name, shortPos(pass, cu.makePos), fd.Name.Name)
			}
		}
	}
}

// registerChan records lhs as a tracked channel when rhs is an unbuffered
// make(chan T).
func registerChan(info *types.Info, chans map[*types.Var]*chanUse, lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "make" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	if tv, ok := info.Types[call.Args[0]]; !ok || tv.Type == nil {
		return
	} else if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return
	}
	if len(call.Args) >= 2 {
		tv, ok := info.Types[call.Args[1]]
		if !ok || tv.Value == nil || tv.Value.String() != "0" {
			return // buffered (or unknown capacity): out of jurisdiction
		}
	}
	var obj *types.Var
	if def, ok := info.Defs[id].(*types.Var); ok {
		obj = def
	} else if use, ok := info.Uses[id].(*types.Var); ok {
		obj = use
	}
	if obj == nil {
		return
	}
	chans[obj] = &chanUse{makePos: call.Pos(), name: id.Name}
}

// classifyUses walks the body once, attributing each appearance of a
// tracked channel to a send, receive, close, or escape.
func classifyUses(pass *framework.Pass, body *ast.BlockStmt, chans map[*types.Var]*chanUse) {
	info := pass.TypesInfo
	lookup := func(e ast.Expr) *chanUse {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj, _ := info.Uses[id].(*types.Var)
		if obj == nil {
			obj, _ = info.Defs[id].(*types.Var)
		}
		return chans[obj]
	}
	// claimed marks identifier nodes consumed by a recognized operation so
	// the generic escape pass below skips them.
	claimed := make(map[ast.Node]bool)
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			claimed[id] = true
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if cu := lookup(n.Chan); cu != nil {
				cu.sends = append(cu.sends, n.Arrow)
				mark(n.Chan)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if cu := lookup(n.X); cu != nil {
					cu.receives = append(cu.receives, n.OpPos)
					mark(n.X)
				}
			}
		case *ast.RangeStmt:
			if cu := lookup(n.X); cu != nil {
				cu.receives = append(cu.receives, n.For)
				mark(n.X)
			}
		case *ast.CallExpr:
			if fn, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[fn].(*types.Builtin); ok {
					switch b.Name() {
					case "close":
						if len(n.Args) == 1 {
							if cu := lookup(n.Args[0]); cu != nil {
								cu.closes++
								mark(n.Args[0])
							}
						}
					case "len", "cap":
						if len(n.Args) == 1 {
							mark(n.Args[0]) // neutral use
						}
					}
				}
			}
		}
		return true
	})

	// Escape pass: any remaining appearance (argument, assignment source,
	// return value, composite element, redefinition target...) of a
	// tracked channel forfeits the proof.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || claimed[id] {
			return true
		}
		obj, _ := info.Uses[id].(*types.Var)
		if obj == nil {
			return true
		}
		if cu := chans[obj]; cu != nil {
			cu.escapes = true
		}
		return true
	})
}

// checkGoroutines implements the no-way-out and WaitGroup rules over every
// go statement in fd.
func checkGoroutines(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true // go f(): the callee's own body is checked where declared
		}
		checkForever(pass, lit.Body)
		checkWaitGroup(pass, lit.Body)
		return true
	})
}

// checkForever convicts unconditional loops (and empty selects) in a
// spawned goroutine body that no statement can ever exit.
func checkForever(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested literal: its go sites are checked separately
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 {
				pass.Reportf(n.Pos(), "spawned goroutine blocks forever: empty select has no case and no way out")
				return false
			}
		case *ast.ForStmt:
			if n.Cond == nil && !loopExits(pass, n) {
				pass.Reportf(n.Pos(),
					"spawned goroutine never terminates: the for loop has no return, break, or panic on any path — give it a stop channel or context case that returns")
				return false // inner loops are moot once the outer can't exit
			}
		}
		return true
	})
}

// loopExits reports whether the unconditional loop has any way out: a
// return, a break targeting it (directly or by label), a goto, a call to
// panic or runtime.Goexit. Nested function literals don't count (their
// returns exit the literal, not the loop).
func loopExits(pass *framework.Pass, loop *ast.ForStmt) bool {
	exits := false
	var visit func(n ast.Node, depth int)
	visit = func(n ast.Node, depth int) {
		if exits || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			exits = true
			return
		case *ast.BranchStmt:
			switch n.Tok {
			case token.GOTO:
				exits = true // the target may be outside; give the benefit of the doubt
			case token.BREAK:
				// Unlabeled break exits the innermost for/switch/select; it
				// exits OUR loop only at depth zero. A labeled break is
				// assumed to target an enclosing statement and counts.
				if depth == 0 || n.Label != nil {
					exits = true
				}
			}
			return
		case *ast.CallExpr:
			if isPanicOrGoexit(pass, n) {
				exits = true
			}
			return
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, c := range children(n) {
				visit(c, depth+1)
			}
			return
		}
		for _, c := range children(n) {
			visit(c, depth)
		}
	}
	for _, s := range loop.Body.List {
		visit(s, 0)
	}
	return exits
}

// children returns n's direct AST children.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if c == n {
			return true
		}
		out = append(out, c)
		return false
	})
	return out
}

func isPanicOrGoexit(pass *framework.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin)
		return ok && b.Name() == "panic"
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return ok && fn.Pkg() != nil && fn.Pkg().Path() == "runtime" && fn.Name() == "Goexit"
	}
	return false
}

// checkWaitGroup convicts WaitGroup misuse inside one spawned goroutine
// body: Add after the spawn, and Done calls that some branch can skip.
func checkWaitGroup(pass *framework.Pass, body *ast.BlockStmt) {
	var dones []*ast.CallExpr
	guaranteed := false
	earlyReturn := false

	// Top-level statements: defer wg.Done() (runs on every exit) or a
	// plain wg.Done() call (runs unless an early return skips it).
	topLevelDone := false
	for _, s := range body.List {
		switch s := s.(type) {
		case *ast.DeferStmt:
			if isWGCall(pass, s.Call, "Done") {
				guaranteed = true
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isWGCall(pass, call, "Done") {
				topLevelDone = true
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			earlyReturn = true
		case *ast.CallExpr:
			if isWGCall(pass, n, "Add") {
				pass.Reportf(n.Pos(),
					"WaitGroup.Add inside the spawned goroutine races with Wait: Add before the go statement")
			}
			if isWGCall(pass, n, "Done") {
				dones = append(dones, n)
			}
		}
		return true
	})

	if topLevelDone && !earlyReturn {
		guaranteed = true
	}
	if len(dones) > 0 && !guaranteed {
		pass.Reportf(dones[0].Pos(),
			"WaitGroup.Done can be skipped on some path (Add/Done mismatch hangs Wait forever): defer wg.Done() at the top of the goroutine")
	}
}

// isWGCall reports whether call is method(...) on a sync.WaitGroup.
func isWGCall(pass *framework.Pass, call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func shortPos(pass *framework.Pass, pos token.Pos) string {
	return fmt.Sprintf("line %d", pass.Fset.Position(pos).Line)
}
