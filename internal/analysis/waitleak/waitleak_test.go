package waitleak_test

import (
	"testing"

	"androne/internal/analysis/analysistest"
	"androne/internal/analysis/waitleak"
)

// TestWaitLeak covers both directions: every sabotaged site in waitbad
// (orphan send/receive, forever goroutines, WaitGroup misuse) must be
// convicted, the //vet:allow site must stay silent, and the waitclean
// idioms (rendezvous, buffered, escaping, close-driven, stop channels,
// guaranteed Done forms) must produce nothing. An unmatched want fails
// the test, so this doubles as CI's sabotage smoke assertion.
func TestWaitLeak(t *testing.T) {
	analysistest.Run(t, "testdata", waitleak.Analyzer,
		"waitbad",
		"waitclean",
	)
}
