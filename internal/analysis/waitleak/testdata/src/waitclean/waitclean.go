// Package waitclean is the clean direction for waitleak: counterparty
// pairs, buffered and escaping channels, close-driven receives, stop
// channels that let a loop return, breaks at loop depth, and the
// guaranteed WaitGroup.Done forms — none of it may produce a finding.
package waitclean

import "sync"

func work() int { return 1 }

func producer(ch chan<- int) { ch <- 1 }

// Send and receive both present: a real rendezvous.
func rendezvous() int {
	ch := make(chan int)
	go func() {
		ch <- work()
	}()
	return <-ch
}

// A buffered send cannot park on the first value: out of jurisdiction.
func buffered() {
	ch := make(chan int, 1)
	ch <- 1
}

// The channel escapes into a callee, so the counterparty may exist
// anywhere: the proof is forfeited, not the programmer convicted.
func escapes() int {
	ch := make(chan int)
	go producer(ch)
	return <-ch
}

// Returned channels escape too.
func returned() chan int {
	ch := make(chan int)
	return ch
}

// A close satisfies a receive: the done-channel idiom.
func closed() {
	done := make(chan int)
	go func() {
		work()
		close(done)
	}()
	<-done
}

// The repo idiom the forever finding names: a stop case that returns.
func stoppable(stop chan struct{}, tick chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-tick:
				work()
			}
		}
	}()
}

// An unlabeled break at loop depth is a way out.
func breaksOut() {
	go func() {
		for {
			if work() > 0 {
				break
			}
		}
	}()
}

// A labeled break from the nested loop exits the outer one.
func labeledBreak() {
	go func() {
	outer:
		for {
			for {
				if work() > 0 {
					break outer
				}
			}
		}
	}()
}

// Conditional loops are not convicted: their condition is the way out.
func conditional() {
	go func() {
		for work() > 0 {
		}
	}()
}

// defer wg.Done() at the top is exit-proof on every path.
func deferredDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		if work() == 0 {
			return
		}
		work()
	}()
}

// A top-level Done with no early return runs on the only path there is.
func plainDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		work()
		wg.Done()
	}()
}
