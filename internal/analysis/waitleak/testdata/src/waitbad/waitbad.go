// Package waitbad exercises the waitleak analyzer: orphaned channel
// operations (send with no receiver, receive with no sender or close,
// including inside a spawned goroutine), goroutines with no way out
// (empty select, unconditional for), WaitGroup Add inside the spawned
// goroutine, Done calls a branch can skip, and the reviewed //vet:allow
// suppression path.
package waitbad

import "sync"

func work() int { return 1 }

// The unbuffered channel never escapes and nothing receives: the send
// parks forever.
func orphanSend() {
	ch := make(chan int)
	ch <- 1 // want `send on ch can block forever: the unbuffered channel \(created at line \d+\) never escapes orphanSend and nothing in it receives`
}

// The mirror image: a receive with no sender and no close.
func orphanReceive() {
	ch := make(chan int)
	<-ch // want `receive from ch can block forever: the unbuffered channel \(created at line \d+\) never escapes orphanReceive and nothing in it sends or closes it`
}

// The classic goroutine leak: the result send has no receiver because the
// caller returned early — here distilled to its provable core, a channel
// that never escapes the function at all.
func goSend() {
	ch := make(chan int)
	go func() {
		ch <- work() // want `send on ch can block forever`
	}()
}

// An empty select has no case and can never be woken.
func spawnEmptySelect() {
	go func() {
		select {} // want `spawned goroutine blocks forever: empty select has no case and no way out`
	}()
}

// An unconditional loop with no return, break, or panic on any path: the
// goroutine outlives every owner.
func spawnForever() {
	go func() {
		for { // want `spawned goroutine never terminates: the for loop has no return, break, or panic on any path`
			work()
		}
	}()
}

// An unlabeled break inside a nested loop exits the inner loop only — the
// outer one is still inescapable.
func spawnNestedBreak() {
	go func() {
		for { // want `spawned goroutine never terminates`
			for {
				if work() > 0 {
					break
				}
			}
		}
	}()
}

// Add inside the spawned goroutine races with the parent's Wait.
func addInside(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine races with Wait: Add before the go statement`
		defer wg.Done()
		work()
	}()
}

// Done on one branch only: the other path under-counts and Wait hangs.
func conditionalDone(wg *sync.WaitGroup) {
	go func() {
		if work() > 0 {
			wg.Done() // want `WaitGroup.Done can be skipped on some path \(Add/Done mismatch hangs Wait forever\): defer wg.Done\(\) at the top of the goroutine`
		}
	}()
}

// A top-level Done positioned after a possible early return is skippable
// too — only defer is exit-proof.
func doneAfterReturn(wg *sync.WaitGroup) {
	go func() {
		if work() == 0 {
			return
		}
		wg.Done() // want `WaitGroup.Done can be skipped on some path`
	}()
}

// The reviewed suppression path.
func allowed() {
	ch := make(chan int)
	<-ch //vet:allow waitleak fixture: reviewed, the send arrives over a side channel the analyzer cannot see
}
