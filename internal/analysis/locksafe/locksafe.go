// Package locksafe checks sync.Mutex / sync.RWMutex discipline along every
// straight-line path of each function:
//
//   - a manually acquired lock must be released (directly or via defer) on
//     every return path;
//   - acquiring a lock already held by the same function is a deadlock
//     (sync.Mutex is not reentrant);
//   - channel operations and dynamic calls (interface methods, function
//     values) must not happen while a lock is held: the callee can block
//     indefinitely or call back into the locked component, which is exactly
//     how the paper's WaypointListener / VDC callback paths deadlock;
//   - the flight recorder's emission and interning entry points (Emit,
//     Dump, K) must not be called while a lock is held: they take the
//     recorder's own stripe/table locks, nesting lock orders across
//     components. The telemetry package itself is exempt (its internals
//     run under those locks by construction), as are its lock-sharded
//     counters (LocalCount), which exist precisely for under-lock use;
//   - conditional branches and loop bodies must leave the lock state they
//     found, otherwise later code runs with an unknowable lock state;
//   - copy-on-write snapshot discipline: a map obtained through an
//     atomic.Pointer Load is shared with lock-free readers, so writing or
//     deleting through it in place is a data race no matter what locks the
//     writer holds. Mutations must clone the map, edit the clone, and
//     Store the fresh map under the owning mutex (the pattern the binder
//     driver, device registry, and VFC whitelist follow).
//
// The analysis is a per-function abstract interpretation over lock "keys"
// (the printed receiver expression, e.g. "c.mu"): no alias analysis, no
// interprocedural reasoning. Helpers that run with a caller's lock held
// follow the repo convention of an xxxLocked name and may release and
// re-acquire that lock; locksafe models this "borrowed" state with a
// negative depth.
package locksafe

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"androne/internal/analysis/framework"
)

// Analyzer is the locksafe analyzer.
var Analyzer = &framework.Analyzer{
	Name: "locksafe",
	Doc: "check mutex discipline: unlock on every path, no double-lock, " +
		"no channel ops or dynamic calls while a lock is held",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, snap: make(map[string]token.Pos)}
			st := make(state)
			st, terminated := c.stmts(fd.Body.List, st)
			if !terminated {
				c.checkReturnState(st, fd.Body.Rbrace)
			}
		}
	}
	return nil
}

// lockInfo tracks one lock key within a function.
type lockInfo struct {
	// depth is the net number of acquisitions performed by this function.
	// Negative depth means the function released a lock its caller holds
	// (the xxxLocked helper convention).
	depth int
	// deferred reports a pending `defer mu.Unlock()`.
	deferred bool
	// lockPos is where the outstanding acquisition happened (diagnostics).
	lockPos token.Pos
}

// state maps lock keys to their tracked info. Keys for read locks carry an
// "/r" suffix so RLock and Lock are tracked independently.
type state map[string]lockInfo

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s state) equal(o state) bool {
	norm := func(m state) map[string]lockInfo {
		out := make(map[string]lockInfo, len(m))
		for k, v := range m {
			if v.depth != 0 || v.deferred {
				v.lockPos = token.NoPos // positions don't affect semantics
				out[k] = v
			}
		}
		return out
	}
	a, b := norm(s), norm(o)
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// anyHeld returns a held lock key ("" if none). Deferred-release locks are
// still held until the function returns.
func (s state) anyHeld() string {
	for k, v := range s {
		if v.depth > 0 {
			return k
		}
	}
	return ""
}

type checker struct {
	pass *framework.Pass
	// snap maps variable names to the position of the atomic.Pointer Load
	// their value came from — the COW-snapshot taint set. Tracking is
	// linear (last assignment wins) and name-based, matching the lock-key
	// granularity of the rest of the checker.
	snap map[string]token.Pos
}

// stmts interprets a statement sequence, returning the resulting state and
// whether the sequence always terminates the enclosing path (return, panic,
// branch out).
func (c *checker) stmts(list []ast.Stmt, st state) (state, bool) {
	for _, s := range list {
		var terminated bool
		st, terminated = c.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (c *checker) stmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return c.scanExpr(s.X, st), false
	case *ast.SendStmt:
		st = c.scanExpr(s.Chan, st)
		st = c.scanExpr(s.Value, st)
		if key := st.anyHeld(); key != "" {
			c.pass.Reportf(s.Arrow, "channel send while holding %s (locked at %s)",
				key, c.pos(st[key].lockPos))
		}
		return st, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			st = c.scanExpr(e, st)
		}
		for _, e := range s.Lhs {
			st = c.scanExpr(e, st)
		}
		c.checkSnapshotMutation(s)
		c.trackSnapshots(s)
		return st, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						st = c.scanExpr(e, st)
					}
				}
			}
		}
		return st, false
	case *ast.DeferStmt:
		return c.deferStmt(s, st), false
	case *ast.GoStmt:
		// The goroutine body runs concurrently without the lock; only the
		// argument expressions evaluate now.
		for _, arg := range s.Call.Args {
			st = c.scanExpr(arg, st)
		}
		return st, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st = c.scanExpr(e, st)
		}
		c.checkReturnState(st, s.Return)
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear path; treat as terminating so
		// the post-statement state is not polluted.
		return st, true
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.IfStmt:
		return c.ifStmt(s, st)
	case *ast.ForStmt:
		return c.loop(s.Init, s.Cond, s.Post, s.Body, s.For, st)
	case *ast.RangeStmt:
		st = c.scanExpr(s.X, st)
		return c.loop(nil, nil, nil, s.Body, s.For, st)
	case *ast.SwitchStmt:
		var bodies []ast.Stmt
		if s.Body != nil {
			bodies = s.Body.List
		}
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		st = c.scanExpr(s.Tag, st)
		return c.branches(bodies, s.Switch, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		var bodies []ast.Stmt
		if s.Body != nil {
			bodies = s.Body.List
		}
		return c.branches(bodies, s.Switch, st)
	case *ast.SelectStmt:
		if key := st.anyHeld(); key != "" {
			c.pass.Reportf(s.Select, "select (channel operations) while holding %s (locked at %s)",
				key, c.pos(st[key].lockPos))
		}
		var bodies []ast.Stmt
		if s.Body != nil {
			bodies = s.Body.List
		}
		return c.branches(bodies, s.Select, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.IncDecStmt:
		if ix, ok := ast.Unparen(s.X).(*ast.IndexExpr); ok && c.isMapExpr(ix.X) {
			if pos, ok := c.snapshotView(ix.X); ok {
				c.reportSnapshotWrite(s.X.Pos(), pos)
			}
		}
		return c.scanExpr(s.X, st), false
	}
	return st, false
}

// ifStmt merges the two arms: arms that terminate drop out; surviving arms
// must agree on the lock state.
func (c *checker) ifStmt(s *ast.IfStmt, st state) (state, bool) {
	if s.Init != nil {
		st, _ = c.stmt(s.Init, st)
	}
	st = c.scanExpr(s.Cond, st)

	thenSt, thenTerm := c.stmts(s.Body.List, st.clone())
	elseSt, elseTerm := st.clone(), false
	if s.Else != nil {
		elseSt, elseTerm = c.stmt(s.Else, st.clone())
	}
	switch {
	case thenTerm && elseTerm:
		return st, true
	case thenTerm:
		return elseSt, false
	case elseTerm:
		return thenSt, false
	default:
		if !thenSt.equal(elseSt) {
			c.pass.Reportf(s.If, "lock state differs between branches of this if")
		}
		return thenSt, false
	}
}

// branches handles switch/type-switch/select case bodies: each runs from
// the entry state; all non-terminating cases must agree with each other
// (and with skipping every case, for switches without default).
func (c *checker) branches(cases []ast.Stmt, pos token.Pos, st state) (state, bool) {
	var surviving []state
	hasDefault := false
	for _, cs := range cases {
		var body []ast.Stmt
		switch cl := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				st = c.scanExpr(e, st)
			}
			if cl.List == nil {
				hasDefault = true
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			body = cl.Body
		default:
			continue
		}
		caseSt, term := c.stmts(body, st.clone())
		if !term {
			surviving = append(surviving, caseSt)
		}
	}
	if !hasDefault {
		surviving = append(surviving, st.clone())
	}
	if len(surviving) == 0 {
		return st, true
	}
	for _, other := range surviving[1:] {
		if !surviving[0].equal(other) {
			c.pass.Reportf(pos, "lock state differs between branches of this switch/select")
			break
		}
	}
	return surviving[0], false
}

// loop interprets a loop body once from the entry state; a body that leaves
// a different lock state compounds on every iteration.
func (c *checker) loop(init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt, pos token.Pos, st state) (state, bool) {
	if init != nil {
		st, _ = c.stmt(init, st)
	}
	st = c.scanExpr(cond, st)
	bodySt, term := c.stmts(body.List, st.clone())
	if !term {
		if post != nil {
			bodySt, _ = c.stmt(post, bodySt)
		}
		if !bodySt.equal(st) {
			c.pass.Reportf(pos, "lock state changes across loop iteration (lock/unlock not balanced in loop body)")
		}
	}
	return st, false
}

// deferStmt handles `defer mu.Unlock()` (directly or wrapped in a function
// literal). Other deferred calls are scanned for argument effects only.
func (c *checker) deferStmt(s *ast.DeferStmt, st state) state {
	if key, op, ok := c.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
		k := key
		if op == "RUnlock" {
			k += "/r"
		}
		info := st[k]
		info.deferred = true
		st[k] = info
		return st
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		// A deferred closure that unlocks counts as a deferred unlock.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, op, ok := c.lockOp(call); ok && (op == "Unlock" || op == "RUnlock") {
				k := key
				if op == "RUnlock" {
					k += "/r"
				}
				info := st[k]
				info.deferred = true
				st[k] = info
			}
			return true
		})
		return st
	}
	for _, arg := range s.Call.Args {
		st = c.scanExpr(arg, st)
	}
	return st
}

// scanExpr walks an expression in evaluation order, applying lock
// operations and checking channel receives and dynamic calls against the
// current state. Function literal bodies are skipped: they do not execute
// here.
func (c *checker) scanExpr(e ast.Expr, st state) state {
	if e == nil {
		return st
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if key := st.anyHeld(); key != "" {
					c.pass.Reportf(n.OpPos, "channel receive while holding %s (locked at %s)",
						key, c.pos(st[key].lockPos))
				}
			}
		case *ast.CallExpr:
			if key, op, ok := c.lockOp(n); ok {
				st = c.applyLockOp(n, key, op, st)
				return false // receiver already accounted for
			}
			c.checkDynamicCall(n, st)
			c.checkTelemetryCall(n, st)
			c.checkSnapshotDelete(n)
		}
		return true
	})
	return st
}

// applyLockOp transitions the state for a Lock/Unlock/RLock/RUnlock call.
func (c *checker) applyLockOp(call *ast.CallExpr, key, op string, st state) state {
	rkey := key + "/r"
	switch op {
	case "Lock":
		info := st[key]
		if info.depth > 0 {
			c.pass.Reportf(call.Pos(), "%s.Lock: already locked at %s (double lock deadlocks)",
				key, c.pos(info.lockPos))
		}
		info.depth++
		info.lockPos = call.Pos()
		st[key] = info
	case "Unlock":
		info := st[key]
		info.depth--
		st[key] = info
	case "RLock":
		info := st[rkey]
		// Double RLock is legal for distinct readers but self-deadlocks
		// under writer pressure when nested in one goroutine; we only track
		// depth for release checking.
		info.depth++
		if info.lockPos == token.NoPos {
			info.lockPos = call.Pos()
		}
		st[rkey] = info
	case "RUnlock":
		info := st[rkey]
		info.depth--
		st[rkey] = info
	}
	return st
}

// checkReturnState reports locks still held (and not deferred) at a return
// point.
func (c *checker) checkReturnState(st state, pos token.Pos) {
	for key, info := range st {
		if info.depth > 0 && !info.deferred {
			c.pass.Reportf(pos, "returning with %s held (locked at %s); unlock or defer the unlock",
				trimReadSuffix(key), c.pos(info.lockPos))
		}
	}
}

func trimReadSuffix(key string) string {
	if len(key) > 2 && key[len(key)-2:] == "/r" {
		return key[:len(key)-2] + " (read lock)"
	}
	return key
}

// checkDynamicCall reports interface-method and function-value calls made
// while a lock is held. Static calls to declared functions are allowed: the
// analysis is intraprocedural and flags only dynamic dispatch, which is
// where the repo's callback deadlocks live (Sensors/MotorSink, Binder
// handlers, BreachAction, WaypointListener).
func (c *checker) checkDynamicCall(call *ast.CallExpr, st state) {
	key := st.anyHeld()
	if key == "" {
		return
	}
	info := c.pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Conversions and builtins are not calls.
	if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fn].(type) {
		case *types.Func:
			return // static call
		case *types.Builtin, *types.TypeName, nil:
			return
		case *types.Var:
			_ = obj // function-valued variable or parameter: dynamic
		}
		if _, ok := info.Types[fn].Type.Underlying().(*types.Signature); !ok {
			return
		}
		c.pass.Reportf(call.Pos(), "call through function value %q while holding %s (locked at %s): callee may block or re-enter the lock",
			fn.Name, key, c.pos(st[key].lockPos))
	case *ast.SelectorExpr:
		sel, ok := info.Selections[fn]
		if !ok {
			// Package-qualified call (fmt.Errorf): static.
			return
		}
		switch sel.Kind() {
		case types.MethodVal:
			recv := sel.Recv()
			if types.IsInterface(recv) {
				c.pass.Reportf(call.Pos(), "interface method call %s.%s while holding %s (locked at %s): callee may block or re-enter the lock",
					exprString(fn.X), fn.Sel.Name, key, c.pos(st[key].lockPos))
			}
		case types.FieldVal:
			// Calling a function-typed struct field.
			c.pass.Reportf(call.Pos(), "call through function field %q while holding %s (locked at %s): callee may block or re-enter the lock",
				fn.Sel.Name, key, c.pos(st[key].lockPos))
		}
	}
}

// telemetryPkgSuffix identifies the flight-recorder package. Matching by
// suffix keeps the rule working for the analyzer fixtures, which place a
// stub at the same androne/internal/telemetry import path.
const telemetryPkgSuffix = "internal/telemetry"

// telemetryEntryPoints are the telemetry calls that take recorder-internal
// locks (ring stripes, the key-intern table). Counter/Gauge updates are
// lock-free atomics and LocalCount is designed for under-lock use, so none
// of those are listed.
var telemetryEntryPoints = map[string]bool{
	"Emit": true,
	"Dump": true,
	"K":    true,
}

// checkTelemetryCall reports Emit/Dump/K calls into the telemetry package
// made while a lock is held. The telemetry package itself is exempt: its
// striped rings run under their own locks by construction.
func (c *checker) checkTelemetryCall(call *ast.CallExpr, st state) {
	key := st.anyHeld()
	if key == "" {
		return
	}
	if strings.HasSuffix(c.pass.Pkg.Path(), telemetryPkgSuffix) {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), telemetryPkgSuffix) {
		return
	}
	if !telemetryEntryPoints[fn.Name()] {
		return
	}
	c.pass.Reportf(call.Pos(), "telemetry %s while holding %s (locked at %s): emission and interning take recorder locks; hoist the call outside the critical section",
		fn.Name(), key, c.pos(st[key].lockPos))
}

// --- copy-on-write snapshot discipline -------------------------------
//
// A map published through an atomic.Pointer is indexed by readers that
// hold no lock at all; the only safe mutation is clone-then-swap. The
// rule taints every variable whose value flows from a Pointer.Load and
// flags index writes, deletes, and m[k]++ through any tainted view —
// with or without a mutex held, because the readers never take one.
// Fresh maps (make, composite literals, maps.Clone results) clear the
// taint on assignment, which is exactly what admits the clone path.

// isAtomicPointerLoad reports whether e is a zero-argument Load() call on
// a sync/atomic.Pointer value.
func (c *checker) isAtomicPointerLoad(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// snapshotView resolves an expression to its snapshot origin, if it is a
// view of an atomic.Pointer snapshot: the Load() call itself, a deref of
// one, or a variable the taint set already tracks.
func (c *checker) snapshotView(e ast.Expr) (token.Pos, bool) {
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	if c.isAtomicPointerLoad(e) {
		return e.Pos(), true
	}
	if id, ok := e.(*ast.Ident); ok {
		if pos, ok := c.snap[id.Name]; ok {
			return pos, true
		}
	}
	return token.NoPos, false
}

// isMapExpr reports whether e's type is (or points to) a map.
func (c *checker) isMapExpr(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// trackSnapshots updates the taint set for a 1:1 assignment: a snapshot
// view taints the target; any other value (make, clone, literal) clears
// it — the clearing is what lets clone-then-swap pass.
func (c *checker) trackSnapshots(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if pos, ok := c.snapshotView(s.Rhs[i]); ok {
			c.snap[id.Name] = pos
		} else {
			delete(c.snap, id.Name)
		}
	}
}

// checkSnapshotMutation flags index writes through a snapshot view on the
// left-hand side of an assignment.
func (c *checker) checkSnapshotMutation(s *ast.AssignStmt) {
	for _, lhs := range s.Lhs {
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok || !c.isMapExpr(ix.X) {
			continue
		}
		if pos, ok := c.snapshotView(ix.X); ok {
			c.reportSnapshotWrite(lhs.Pos(), pos)
		}
	}
}

// checkSnapshotDelete flags delete() on a snapshot view.
func (c *checker) checkSnapshotDelete(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "delete" || len(call.Args) != 2 {
		return
	}
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; !ok || !tv.IsBuiltin() {
		return
	}
	if !c.isMapExpr(call.Args[0]) {
		return
	}
	if pos, ok := c.snapshotView(call.Args[0]); ok {
		c.pass.Reportf(call.Pos(), "delete from a map loaded from an atomic.Pointer snapshot (loaded at %s): readers index it lock-free; clone, mutate the clone, and Store the fresh map under the owning mutex",
			c.pos(pos))
	}
}

func (c *checker) reportSnapshotWrite(at, loadPos token.Pos) {
	c.pass.Reportf(at, "write to a map loaded from an atomic.Pointer snapshot (loaded at %s): readers index it lock-free; clone, mutate the clone, and Store the fresh map under the owning mutex",
		c.pos(loadPos))
}

// lockOp reports whether call is a Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the printed receiver expression as
// the lock key.
func (c *checker) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, okT := c.pass.TypesInfo.Types[sel.X]
	if !okT || !isSyncLock(tv.Type) {
		return "", "", false
	}
	return exprString(sel.X), name, true
}

func isSyncLock(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return fmt.Sprintf("%T", e)
	}
	return buf.String()
}

func (c *checker) pos(p token.Pos) string {
	if !p.IsValid() {
		return "?"
	}
	pos := c.pass.Fset.Position(p)
	return fmt.Sprintf("line %d", pos.Line)
}
