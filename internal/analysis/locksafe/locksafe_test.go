package locksafe_test

import (
	"testing"

	"androne/internal/analysis/analysistest"
	"androne/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer,
		"locktest",
		"teltest",
		"cowtest",
		"androne/internal/telemetry",
	)
}
