// Package telemetry is a fixture stub standing in for the real
// androne/internal/telemetry: same import path (under testdata/src) and the
// same entry-point shapes, so locksafe's path-scoped telemetry rule applies
// to importers exactly as in the real tree. It is also analyzed itself to
// prove the self-package exemption: telemetry's striped internals may call
// the entry points under their own locks without findings.
package telemetry

import "sync"

// Key is an interned label.
type Key uint32

var keyTab = struct {
	mu     sync.Mutex
	byName map[string]Key
	next   Key
}{byName: make(map[string]Key)}

// K interns name, taking the intern-table lock.
func K(name string) Key {
	keyTab.mu.Lock()
	defer keyTab.mu.Unlock()
	if k, ok := keyTab.byName[name]; ok {
		return k
	}
	keyTab.next++
	keyTab.byName[name] = keyTab.next
	return keyTab.next
}

// Recorder is the ring-buffer trace recorder.
type Recorder struct {
	mu      sync.Mutex
	flushMu sync.Mutex
	seq     uint64
}

// Emit records one event, taking a ring-stripe lock.
func (r *Recorder) Emit(drone, kind Key, a, b int64, note string) {
	r.mu.Lock()
	r.seq++
	r.mu.Unlock()
}

// Dump snapshots the rings into a black-box record.
func (r *Recorder) Dump(drone Key, trigger string, meta map[string]float64) {
	r.mu.Lock()
	r.seq++
	r.mu.Unlock()
}

// flush exercises the self-package exemption: inside internal/telemetry,
// calling the entry points under a held lock produces no findings.
func (r *Recorder) flush() {
	r.flushMu.Lock()
	k := K("flush")         // exempt: telemetry's own package
	r.Emit(k, k, 0, 0, "")  // exempt: telemetry's own package
	r.Dump(k, "flush", nil) // exempt: telemetry's own package
	r.flushMu.Unlock()
}

// Counter is a lock-free metric.
type Counter struct{ n uint64 }

// Inc adds one with an atomic; safe anywhere.
func (c *Counter) Inc() { c.n++ }

// LocalCount is a single-writer shard of a Counter, designed to be
// incremented under the owner's lock.
type LocalCount struct {
	c *Counter
	n uint32
}

// Local returns a new shard of c.
func (c *Counter) Local() *LocalCount { return &LocalCount{c: c} }

// Inc adds one to the shard; the caller holds the serializing lock.
func (l *LocalCount) Inc() { l.n++ }

// Flush folds the shard into the parent.
func (l *LocalCount) Flush() {
	l.c.n += uint64(l.n)
	l.n = 0
}
