// Package locktest exercises the locksafe analyzer: each function is one
// known-good or known-bad lock-discipline pattern drawn from the shapes in
// the androne tree.
package locktest

import "sync"

// Dev stands in for the device interfaces (Sensors, MotorSink) whose
// implementations take their own locks.
type Dev interface {
	Ping() int
}

type S struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	dev Dev
	fn  func()
	ch  chan int
	n   int
}

// Good: canonical lock + deferred unlock.
func (s *S) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}

// Good: manual but balanced on the single path.
func (s *S) GoodManual() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// Good: early-return path unlocks before returning.
func (s *S) GoodEarlyReturn() int {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		return 0
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// Good: the xxxLocked convention — runs with the caller's lock held and
// temporarily releases it around a callback (the checkFenceLocked shape).
func (s *S) breachLocked(action func()) {
	s.mu.Unlock()
	action()
	s.mu.Lock()
}

// Good: static calls and goroutine launches are allowed under a lock; only
// dynamic dispatch is flagged.
func (s *S) GoodStatic() {
	s.mu.Lock()
	defer s.mu.Unlock()
	helper()
	go drain(s.ch)
}

func helper() {}

func drain(ch chan int) {}

// Good: read lock with deferred release.
func (s *S) GoodRead() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

// Bad: falls off the end of the function with the lock held.
func (s *S) MissingUnlock() {
	s.mu.Lock()
	s.n++
} // want `returning with s\.mu held`

// Bad: one return path keeps the lock.
func (s *S) ReturnHeld() int {
	s.mu.Lock()
	if s.n > 0 {
		return s.n // want `returning with s\.mu held`
	}
	s.mu.Unlock()
	return 0
}

// Bad: read lock never released.
func (s *S) ReadHeld() int {
	s.rw.RLock()
	return s.n // want `returning with s\.rw \(read lock\) held`
}

// Bad: sync.Mutex is not reentrant.
func (s *S) DoubleLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `s\.mu\.Lock: already locked`
	s.mu.Unlock()
}

// Bad: interface method call under the lock (the Sensors/MotorSink shape).
func (s *S) IfaceUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dev.Ping() // want `interface method call s\.dev\.Ping while holding s\.mu`
}

// Bad: calling a function-typed field under the lock (the Binder handler /
// BreachAction shape).
func (s *S) FieldUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fn() // want `call through function field "fn" while holding s\.mu`
}

// Bad: calling a function-valued parameter under the lock (the
// WaypointListener shape).
func (s *S) VarUnderLock(cb func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cb() // want `call through function value "cb" while holding s\.mu`
}

// Bad: channel send under the lock.
func (s *S) SendUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `channel send while holding s\.mu`
}

// Bad: channel receive under the lock.
func (s *S) RecvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive while holding s\.mu`
}

// Bad: select under the lock.
func (s *S) SelectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select \(channel operations\) while holding s\.mu`
	case v := <-s.ch:
		s.n = v
	default:
	}
}

// Bad: the two arms of the if disagree about the lock.
func (s *S) BranchDiff(b bool) {
	s.mu.Lock()
	if b { // want `lock state differs between branches of this if`
		s.mu.Unlock()
	}
	s.mu.Unlock()
}

// Bad: each iteration acquires without releasing.
func (s *S) LoopImbalance() {
	for i := 0; i < 3; i++ { // want `lock state changes across loop iteration`
		s.mu.Lock()
	}
}

// Suppressed: the //vet:allow comment keeps a reviewed exception silent.
func (s *S) Suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dev.Ping() //vet:allow locksafe fixture: documents the suppression syntax
}
