// Package cowtest exercises the locksafe copy-on-write snapshot rule: a
// map published through an atomic.Pointer is indexed by readers holding
// no lock, so in-place mutation of a loaded snapshot is a data race no
// matter what the writer locks. The only admitted mutation is the
// clone-then-swap path goodCloneThenSwap demonstrates.
package cowtest

import (
	"sync"
	"sync/atomic"
)

type registry struct {
	mu    sync.Mutex
	table atomic.Pointer[map[string]int]
}

// badDirect mutates the shared snapshot through the Load expression
// itself, outside any mutex.
func (r *registry) badDirect(k string) {
	(*r.table.Load())[k] = 1 // want `write to a map loaded from an atomic\.Pointer snapshot`
}

// badVar mutates through a variable holding the snapshot.
func (r *registry) badVar(k string) {
	m := *r.table.Load()
	m[k] = 2 // want `write to a map loaded from an atomic\.Pointer snapshot`
}

// badUnderLock shows the owning mutex does not excuse in-place mutation:
// readers index the same map without taking r.mu.
func (r *registry) badUnderLock(k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := r.table.Load()
	(*snap)[k] = 3 // want `write to a map loaded from an atomic\.Pointer snapshot`
}

// badDelete deletes through a snapshot view.
func (r *registry) badDelete(k string) {
	m := *r.table.Load()
	delete(m, k) // want `delete from a map loaded from an atomic\.Pointer snapshot`
}

// badIncrement bumps a counter in place through the snapshot.
func (r *registry) badIncrement(k string) {
	m := *r.table.Load()
	m[k]++ // want `write to a map loaded from an atomic\.Pointer snapshot`
}

// goodCloneThenSwap is the allowed mutation path: snapshot under the
// mutex, copy into a fresh map, mutate the copy, publish it with Store.
// The fresh make() clears the taint, so none of this is flagged.
func (r *registry) goodCloneThenSwap(k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.table.Load()
	next := make(map[string]int, len(old)+1)
	for key, v := range old {
		next[key] = v
	}
	next[k] = 4
	r.table.Store(&next)
}

// goodRead indexes the snapshot lock-free — reads are the whole point.
func (r *registry) goodRead(k string) int {
	return (*r.table.Load())[k]
}

// goodReuse shows a tainted name reassigned to a fresh map is clean again.
func (r *registry) goodReuse(k string) {
	m := *r.table.Load()
	_ = len(m)
	m = make(map[string]int)
	m[k] = 5
	_ = m
}
