// Package teltest exercises locksafe's telemetry rule: the flight
// recorder's Emit/Dump/K entry points take recorder-internal locks and must
// be called outside any production critical section, while the lock-sharded
// counters (LocalCount) are the sanctioned under-lock instrument.
package teltest

import (
	"sync"

	"androne/internal/telemetry"
)

// VFC stands in for an instrumented production component.
type VFC struct {
	mu    sync.Mutex
	tel   *telemetry.Recorder
	key   telemetry.Key
	state int
	sends *telemetry.LocalCount
}

// Bad: an event emitted under a held production lock is flagged — Emit
// takes the recorder's stripe locks.
func (v *VFC) BadEmit(kind telemetry.Key) {
	v.mu.Lock()
	v.state++
	v.tel.Emit(v.key, kind, 0, 0, "") // want `telemetry Emit while holding v\.mu`
	v.mu.Unlock()
}

// Bad: interning under a lock takes the global key table's lock.
func (v *VFC) BadIntern(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.key = telemetry.K(name) // want `telemetry K while holding v\.mu`
}

// Bad: a black-box dump under a lock walks every ring stripe.
func (v *VFC) BadDump() {
	v.mu.Lock()
	v.tel.Dump(v.key, "trigger", nil) // want `telemetry Dump while holding v\.mu`
	v.mu.Unlock()
}

// Good: the production pattern — copy state under the lock, emit after.
func (v *VFC) GoodHoisted(kind telemetry.Key) {
	v.mu.Lock()
	key := v.key
	v.state++
	v.mu.Unlock()
	v.tel.Emit(key, kind, 0, 0, "")
}

// Good: interning before the critical section.
func (v *VFC) GoodInternFirst(name string) {
	key := telemetry.K(name)
	v.mu.Lock()
	v.key = key
	v.mu.Unlock()
}

// Good: sharded counters exist precisely for under-lock use.
func (v *VFC) GoodShard() {
	v.mu.Lock()
	v.sends.Inc()
	v.mu.Unlock()
}

// Good: flushing the shard is likewise an under-lock operation.
func (v *VFC) GoodShardFlush() {
	v.mu.Lock()
	v.sends.Flush()
	v.mu.Unlock()
}
