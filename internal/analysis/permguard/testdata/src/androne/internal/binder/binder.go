// Package binder is a fixture standing in for the real binder driver:
// permguard finds its entry points through the binder.Handler type, matched
// by import-path suffix, so this fake at the androne/internal/binder path
// exercises the same discovery.
package binder

// Sender is the driver-stamped identity of a transaction's caller.
type Sender struct{ UID int }

// Txn is one transaction as delivered to a handler.
type Txn struct {
	Code   int
	Sender Sender
	Data   []byte
}

// Reply is a handler's response.
type Reply struct{ Data []byte }

// Handler serves transactions on a node.
type Handler func(Txn) (Reply, error)

// Proc is a process attached to a namespace.
type Proc struct{}

// NewNode registers a transaction handler.
func (*Proc) NewNode(name string, h Handler) int { _ = name; _ = h; return 0 }
