// Package android is a fixture standing in for the real framework: the
// ActivityManager.CheckPermission primitive is matched by import-path
// suffix, receiver, and name.
package android

// ActivityManager answers permission queries.
type ActivityManager struct{}

// CheckPermission reports whether uid holds perm.
func (*ActivityManager) CheckPermission(perm string, uid int) bool {
	_ = perm
	_ = uid
	return true
}
