// Package devices is a fixture standing in for the real hardware layer:
// permguard's sinks are Capture/Read/Play/HeadingDeg/Write/Open methods on
// types declared in a package with this import-path suffix.
package devices

// Camera is a hardware camera.
type Camera struct{}

// Capture grabs one frame.
func (*Camera) Capture() error { return nil }

// Read returns the last captured frame.
func (*Camera) Read() ([]byte, error) { return nil, nil }

// Open powers the sensor up.
func (*Camera) Open() error { return nil }
