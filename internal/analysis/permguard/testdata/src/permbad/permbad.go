// Package permbad exercises the permguard analyzer: a handler whose sink
// paths are properly dominated by the combined permission+policy guard, a
// handler with a bypassable fast path (the guard is present but one branch
// reaches the sink without it), a guard buried in a conditional, and a
// reviewed //vet:allow suppression.
package permbad

import (
	"errors"

	"androne/internal/android"
	"androne/internal/binder"
	"androne/internal/devices"
)

var errDenied = errors.New("denied")

// policy stands in for the VDC policy: AllowDevice is the policy primitive.
type policy struct{}

func (policy) AllowDevice(container, kind string) bool { _ = container; _ = kind; return true }

type svc struct {
	am  *android.ActivityManager
	pol policy
	cam *devices.Camera
}

// authorize is a guard: both the permission primitive and the policy
// primitive are reachable from it over the call graph.
func (s *svc) authorize(txn binder.Txn) error {
	if !s.am.CheckPermission("CAMERA", txn.Sender.UID) {
		return errDenied
	}
	if !s.pol.AllowDevice("tenant", "camera") {
		return errDenied
	}
	return nil
}

// handleGood is clean: the guard dominates every path to the sink.
func (s *svc) handleGood(txn binder.Txn) (binder.Reply, error) {
	if err := s.authorize(txn); err != nil {
		return binder.Reply{}, err
	}
	return binder.Reply{}, s.cam.Capture()
}

// handleBypass carries the classic defect: the guard is present, but the
// fast-path dispatch above it reaches the sink unchecked.
func (s *svc) handleBypass(txn binder.Txn) (binder.Reply, error) {
	if txn.Code == 99 {
		return s.serve(txn) // fast path skips authorize
	}
	if err := s.authorize(txn); err != nil {
		return binder.Reply{}, err
	}
	return s.serve(txn)
}

func (s *svc) serve(txn binder.Txn) (binder.Reply, error) {
	_ = txn
	err := s.cam.Capture() // want `hardware sink Camera\.Capture is reachable from handler handleBypass without a dominating permission\+policy check`
	return binder.Reply{}, err
}

// handleConditional guards only one branch; the sink below is reachable
// with the guard skipped, so presence alone does not count.
func (s *svc) handleConditional(txn binder.Txn) (binder.Reply, error) {
	if txn.Code == 1 {
		if err := s.authorize(txn); err != nil {
			return binder.Reply{}, err
		}
	}
	frame, err := s.cam.Read() // want `hardware sink Camera\.Read is reachable from handler handleConditional without a dominating permission\+policy check`
	return binder.Reply{Data: frame}, err
}

// handleBoot is reviewed: the sink runs before any tenant can attach.
func (s *svc) handleBoot(txn binder.Txn) (binder.Reply, error) {
	_ = txn
	return binder.Reply{}, s.cam.Open() //vet:allow permguard boot-time self-test before tenants attach
}

// Register wires the handlers, making them entry points.
func Register(p *binder.Proc, s *svc) {
	p.NewNode("good", s.handleGood)
	p.NewNode("bypass", s.handleBypass)
	p.NewNode("cond", s.handleConditional)
	p.NewNode("boot", s.handleBoot)
}
